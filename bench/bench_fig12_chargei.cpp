// Figure 12 reproduction: CHARGEI hot-spot selection on BG/Q. The paper:
// two dominating hot spots (~44% and ~38% — the charge scatter and the field
// gather); the model projects the correct ranking, possibly swapping
// adjacent spots whose coverage is within a few percent.
#include "common.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig12_chargei", argc, argv);
  bench::banner("Figure 12: CHARGEI hot spots on BG/Q");

  core::CodesignFramework fw(workloads::chargei());
  auto a = fw.analyze(MachineModel::bgq(), bench::scaledCriteria());

  std::printf("%s\n", bench::rankTable(a, 8).c_str());
  std::printf("%s\n", bench::coverageFigure(a, 8).c_str());
  bench::printQualityLine(a);

  if (a.profRanking.size() >= 2) {
    std::printf("\ntwo dominating measured spots: %s (%.1f%%) and %s (%.1f%%)\n",
                a.profRanking[0].label.c_str(), a.profRanking[0].fraction * 100,
                a.profRanking[1].label.c_str(), a.profRanking[1].fraction * 100);
    bool sameTop2 = (a.profRanking[0].origin == a.modelRanking[0].origin &&
                     a.profRanking[1].origin == a.modelRanking[1].origin);
    std::printf("model reproduces the top-2 ordering: %s\n", sameTop2 ? "yes" : "no");
  }
  return 0;
}
