// Ablation bench for the design choices DESIGN.md calls out: how much do the
// paper's roofline extensions matter for selection quality?
//   1. partial-overlap extension (T = Tc + Tm - To) vs textbook max(Tc, Tm)
//   2. the constant cache-hit-rate value (paper fn. 1: 0.85)
//   3. uniform flops (paper behavior) vs divide-aware costing
#include "common.h"

using namespace skope;

namespace {

double meanQuality(roofline::RooflineParams params) {
  double qSum = 0;
  size_t n = 0;
  for (const auto* w : workloads::allWorkloads()) {
    core::CodesignFramework fw(*w);
    for (const auto& machine : {MachineModel::bgq(), MachineModel::xeonE5_2420()}) {
      auto prof = fw.profileOn(machine);
      auto model = fw.project(machine, params);
      auto profRanking = hotspot::rankingFromProfile(prof);
      auto modelRanking = hotspot::rankingFromModel(model);
      size_t total = fw.module().totalStaticInstrs();
      auto profSel = hotspot::selectHotSpots(profRanking, total, bench::scaledCriteria());
      auto modelSel = hotspot::selectHotSpots(modelRanking, total, bench::scaledCriteria());
      auto measured = hotspot::fractionsByOrigin(profRanking);
      qSum += hotspot::selectionQuality(modelSel, profSel, measured).quality;
      ++n;
    }
  }
  return qSum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_ablation", argc, argv);
  bench::banner("Ablation: roofline model variants vs selection quality");

  report::Table t({"variant", "mean selection quality"});

  roofline::RooflineParams paper;  // defaults = paper configuration
  t.addRow({"paper model (overlap, hit=0.85, uniform flops)",
            format("%.1f%%", meanQuality(paper) * 100)});

  roofline::RooflineParams noOverlap = paper;
  noOverlap.modelOverlap = false;
  t.addRow({"textbook roofline max(Tc,Tm)", format("%.1f%%", meanQuality(noOverlap) * 100)});

  for (double hit : {0.70, 0.85, 0.95}) {
    roofline::RooflineParams p = paper;
    p.cacheHitRate = hit;
    t.addRow({format("cache hit rate = %.2f", hit), format("%.1f%%", meanQuality(p) * 100)});
  }

  roofline::RooflineParams divAware = paper;
  divAware.uniformFlops = false;
  t.addRow({"divide-aware flop costing", format("%.1f%%", meanQuality(divAware) * 100)});

  std::printf("%s\n", t.str().c_str());
  std::printf("note: each row re-projects all 5 workloads on both machines against\n"
              "the same ground-truth profiles; only the analytic model varies.\n");
  return 0;
}
