// Figures 6 & 7 reproduction: model-projected per-hot-spot performance
// breakdown for SORD — time in computation (Tc), memory (Tm), and the
// overlapped portion (To) — on BG/Q (Fig. 6) and Xeon (Fig. 7). The paper's
// observation: on Xeon a larger share of each spot's time is memory.
#include "common.h"

using namespace skope;

namespace {

void breakdownFor(core::CodesignFramework& fw, const MachineModel& machine) {
  auto analysis = fw.analyze(machine, bench::scaledCriteria());
  std::printf("--- %s: projected breakdown of the top-10 model hot spots ---\n",
              machine.name.c_str());

  std::vector<report::BarSegments> bars;
  double memShareSum = 0;
  size_t n = 0;
  for (size_t i = 0; i < 10 && i < analysis.modelRanking.size(); ++i) {
    uint32_t origin = analysis.modelRanking[i].origin;
    const auto& bc = analysis.model.blocks.at(origin);
    // report non-overlapped compute, non-overlapped memory, and the overlap
    double overlap = bc.toSeconds;
    bars.push_back({bc.label,
                    {bc.tcSeconds - overlap, bc.tmSeconds - overlap, overlap}});
    double total = bc.tcSeconds + bc.tmSeconds - overlap;
    if (total > 0) {
      memShareSum += (bc.tmSeconds - overlap) / total;
      ++n;
    }
  }
  std::printf("%s", report::barChart(bars, {"compute", "memory", "overlap"}, 50).c_str());
  std::printf("mean non-overlapped memory share across top spots: %.1f%%\n\n",
              n ? memShareSum / n * 100 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig6_fig7_sord_breakdown", argc, argv);
  bench::banner("Figures 6 & 7: SORD per-hot-spot Tc/Tm/To breakdown");
  core::CodesignFramework fw(workloads::sord());
  breakdownFor(fw, MachineModel::bgq());
  breakdownFor(fw, MachineModel::xeonE5_2420());
  std::printf("paper: the Xeon breakdown shows a significant increase in the\n"
              "percentage of time spent in memory accesses (§VII-A).\n");
  return 0;
}
