// Figure 4 reproduction: SORD hot-spot selection curves on BG/Q and Xeon —
// Prof, Modl(p), Modl(m), plus the cross-machine portability curves
// Prof.Q(x) (Xeon-suggested spots evaluated with BG/Q-measured times) and
// Prof.X(q) (the converse). The paper's point: cross-machine selections are
// poor representatives, while the model tracks each machine.
#include "common.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig4_sord_quality", argc, argv);
  bench::banner("Figure 4: SORD selection quality and cross-machine portability");

  core::CodesignFramework fw(workloads::sord());
  auto bgq = fw.analyze(MachineModel::bgq(), bench::scaledCriteria());
  auto xeon = fw.analyze(MachineModel::xeonE5_2420(), bench::scaledCriteria());

  auto bgqMeasured = hotspot::fractionsByOrigin(bgq.profRanking);
  auto xeonMeasured = hotspot::fractionsByOrigin(xeon.profRanking);
  const size_t topN = 12;

  std::printf("--- BG/Q curves (x = top-k hot spots, y = runtime coverage) ---\n");
  std::vector<report::Series> qSeries = {
      {"Prof", hotspot::coverageCurve(bgq.profRanking, bgqMeasured, topN)},
      {"Modl(p)", hotspot::coverageCurve(bgq.modelRanking,
                                         hotspot::fractionsByOrigin(bgq.modelRanking), topN)},
      {"Modl(m)", hotspot::coverageCurve(bgq.modelRanking, bgqMeasured, topN)},
      {"Prof.Q(x)", hotspot::coverageCurve(xeon.profRanking, bgqMeasured, topN)},
  };
  std::printf("%s\n", report::seriesChart(qSeries).c_str());

  std::printf("--- Xeon curves ---\n");
  std::vector<report::Series> xSeries = {
      {"Prof", hotspot::coverageCurve(xeon.profRanking, xeonMeasured, topN)},
      {"Modl(p)", hotspot::coverageCurve(xeon.modelRanking,
                                         hotspot::fractionsByOrigin(xeon.modelRanking), topN)},
      {"Modl(m)", hotspot::coverageCurve(xeon.modelRanking, xeonMeasured, topN)},
      {"Prof.X(q)", hotspot::coverageCurve(bgq.profRanking, xeonMeasured, topN)},
  };
  std::printf("%s\n", report::seriesChart(xSeries).c_str());

  std::printf("BG/Q: ");
  bench::printQualityLine(bgq);
  std::printf("Xeon: ");
  bench::printQualityLine(xeon);

  // cross-machine "selection quality": apply machine A's profiler selection
  // to machine B's measured times (the paper's portability argument)
  auto xeonSelOnBgq = hotspot::measuredCoverage(xeon.profSelection, bgqMeasured);
  auto bgqSelOnXeon = hotspot::measuredCoverage(bgq.profSelection, xeonMeasured);
  std::printf("\nportability: Xeon-selected spots cover %.1f%% of BG/Q time "
              "(model-selected: %.1f%%)\n",
              xeonSelOnBgq * 100, bgq.quality.modelCoverage * 100);
  std::printf("portability: BG/Q-selected spots cover %.1f%% of Xeon time "
              "(model-selected: %.1f%%)\n",
              bgqSelOnXeon * 100, xeon.quality.modelCoverage * 100);
  return 0;
}
