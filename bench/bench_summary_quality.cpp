// §VIII headline reproduction: hot-spot selection quality across all five
// workloads on both validation machines. Paper: average 95.8%, never below
// 80%.
#include "common.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_summary_quality", argc, argv);
  bench::banner("Summary: selection quality over all workloads and machines (§VIII)");

  report::Table t({"workload", "machine", "prof cov", "model cov", "quality"});
  double qSum = 0, qMin = 1;
  size_t n = 0;
  for (const auto* w : workloads::allWorkloads()) {
    core::CodesignFramework fw(*w);
    for (const auto& machine : {MachineModel::bgq(), MachineModel::xeonE5_2420()}) {
      auto a = fw.analyze(machine, bench::scaledCriteria());
      t.addRow({w->name, machine.name, format("%.1f%%", a.quality.profCoverage * 100),
                format("%.1f%%", a.quality.modelCoverage * 100),
                format("%.1f%%", a.quality.quality * 100)});
      qSum += a.quality.quality;
      qMin = std::min(qMin, a.quality.quality);
      ++n;
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("average selection quality: %.1f%% (paper: 95.8%%)\n", qSum / n * 100);
  std::printf("minimum selection quality: %.1f%% (paper floor: 80%%)\n", qMin * 100);
  return 0;
}
