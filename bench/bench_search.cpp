// Search economics: the SIMD combine and the guided search driver.
//
// Part 1 — the lane-parallel combine. The node-major batched back-end
// factors the BET once and combines per config; this half times that combine
// alone (BatchedEstimator::estimateGrid) on the 256-config cache stress grid,
// scalar walk vs SIMD lanes, median of BENCH_REPS repetitions. Asserts the
// two modes produce byte-identical ranked sweep reports and that the SIMD
// combine clears a 2x speedup.
//
// Part 2 — guided search. On a 4096-point design space (freq x mlp x memlat
// x issuewidth, every axis projection-sensitive for SORD) the successive
// halving driver must land within 1% of the exhaustive optimum while
// evaluating at most 15% of the lattice. Gauges land in BENCH_search.json.
#include <cstring>

#include "common.h"
#include "core/backend.h"
#include "roofline/estimate.h"
#include "search/report.h"
#include "search/search.h"
#include "search/space.h"
#include "sweep/report.h"
#include "sweep/sweep.h"

using namespace skope;

namespace {

// The 256-config, 4-geometry stress grid bench_sweep uses for its
// batched-vs-scalar comparison — the same workload for the combine itself.
MachineGrid stressGrid() {
  return parseGridSpec("base=bgq;"
                       "l1kb=8,16,32,64;"
                       "freq=1.2,1.4,1.6,1.8;"
                       "membw=15,30,45,60;"
                       "memlat=90,150,210,270");
}

// 8^4 = 4096 lattice points; every axis moves SORD's projected time, so the
// search has a real surface to descend.
search::DesignSpace searchSpace() {
  return search::parseDesignSpace("base=bgq;"
                                  "freq=1.0:2.4:0.2;"
                                  "mlp=1:8:1;"
                                  "memlat=60:270:30;"
                                  "issuewidth=1:8:1;"
                                  "cost = freq*4 + issuewidth*2 + mlp + 600/memlat");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_search", argc, argv);

  bench::banner("SIMD vs scalar combine (SORD, 256-config stress grid)");
  auto frontend = core::loadFrontend("sord");
  auto grid = stressGrid();
  auto configs = grid.expand();

  std::vector<roofline::Roofline> models;
  models.reserve(configs.size());
  for (const auto& c : configs) models.emplace_back(c.machine, roofline::RooflineParams{});

  roofline::BatchedEstimator estimator(frontend->bet(), &frontend->module(),
                                       &core::WorkloadFrontend::libProfile().mixes);

  // Time the combine itself through estimateTotals — the ranking-only path
  // that skips per-config ModelResult materialization (which costs the same
  // in every mode and would otherwise drown the comparison). One pass on a
  // 256-config grid is sub-millisecond; batch enough inner iterations per
  // sample for the clock to resolve it.
  const int inner = 50;
  const int reps = bench::benchReps();
  double scalarS = bench::medianSeconds([&] {
    for (int i = 0; i < inner; ++i) {
      (void)estimator.estimateTotals(models, {}, roofline::CombineMode::Scalar);
    }
  }) / inner;
  double simdS = bench::medianSeconds([&] {
    for (int i = 0; i < inner; ++i) {
      (void)estimator.estimateTotals(models, {}, roofline::CombineMode::Simd);
    }
  }) / inner;
  double combineSpeedup = simdS > 0 ? scalarS / simdS : 0;

  // Bit-identity at every level: both combine modes' totals must equal the
  // full estimateGrid totals exactly, and full sweeps with the combine forced
  // each way must render byte-identical ranked reports.
  auto totScalar = estimator.estimateTotals(models, {}, roofline::CombineMode::Scalar);
  auto totSimd = estimator.estimateTotals(models, {}, roofline::CombineMode::Simd);
  auto gridResults = estimator.estimateGrid(models, {}, roofline::CombineMode::Simd);
  bool totalsIdentical = true;
  for (size_t i = 0; i < models.size(); ++i) {
    totalsIdentical = totalsIdentical && totScalar[i] == totSimd[i] &&
                      totSimd[i] == gridResults[i].totalSeconds;
  }
  sweep::SweepOptions sopts;
  sopts.criteria = bench::scaledCriteria();
  sopts.threads = 1;
  sopts.combine = roofline::CombineMode::Scalar;
  auto sweepScalar = sweep::runSweep(*frontend, grid, sopts);
  sopts.combine = roofline::CombineMode::Simd;
  auto sweepSimd = sweep::runSweep(*frontend, grid, sopts);
  bool identical = totalsIdentical &&
                   sweep::toCsv(sweepScalar) == sweep::toCsv(sweepSimd) &&
                   sweep::toMarkdown(sweepScalar) == sweep::toMarkdown(sweepSimd);

  report::Table ct({"combine", "per-pass", "speedup"});
  ct.addRow({"scalar walk (reference)", format("%.3f ms", scalarS * 1e3), "1.0x"});
  ct.addRow({format("SIMD, %d lanes", roofline::BatchedEstimator::simdLanes()),
             format("%.3f ms", simdS * 1e3), format("%.1fx", combineSpeedup)});
  std::printf("%s\n", ct.str().c_str());
  std::printf("median of %d reps x %d passes; totals bit-identical: %s; "
              "scalar vs SIMD reports byte-identical: %s\n",
              reps, inner, totalsIdentical ? "yes" : "NO — BUG",
              identical ? "yes" : "NO — BUG");

  metrics.gauge("search/combine_scalar_s", scalarS);
  metrics.gauge("search/combine_simd_s", simdS);
  metrics.gauge("search/combine_speedup", combineSpeedup);
  metrics.gauge("search/combine_identical", identical ? 1 : 0);
  metrics.gauge("search/simd_lanes", roofline::BatchedEstimator::simdLanes());

  if (!identical) return 1;
  if (combineSpeedup < 2.0) {
    std::printf("\nFAIL: SIMD combine speedup %.2fx < 2x target\n", combineSpeedup);
    return 1;
  }

  bench::banner("guided search vs exhaustive (SORD, 4096-point space)");
  auto space = searchSpace();
  const auto lattice = static_cast<double>(space.gridCount());

  search::SearchOptions ex;
  ex.algorithm = search::SearchAlgorithm::Exhaustive;
  ex.sweep.criteria = bench::scaledCriteria();
  ex.sweep.threads = 0;
  auto exact = search::runSearch(*frontend, space, ex);

  search::SearchOptions sh = ex;
  sh.algorithm = search::SearchAlgorithm::SuccessiveHalving;
  sh.seed = 42;
  auto guided = search::runSearch(*frontend, space, sh);

  if (!exact.bestIndex || !guided.bestIndex) {
    std::printf("FAIL: no usable best point (exhaustive %d, shalving %d)\n",
                exact.bestIndex.has_value(), guided.bestIndex.has_value());
    return 1;
  }
  double exactBest = exact.evaluated[*exact.bestIndex].projectedSeconds;
  double guidedBest = guided.evaluated[*guided.bestIndex].projectedSeconds;
  double gapPct = exactBest > 0 ? (guidedBest / exactBest - 1.0) * 100 : 0;
  double evalFraction = static_cast<double>(guided.evals()) / lattice;

  report::Table st({"driver", "evals", "lattice %", "best projected", "gap"});
  st.addRow({"exhaustive", std::to_string(exact.evals()), "100%",
             format("%.6e s", exactBest), "-"});
  st.addRow({"shalving (seed 42)", std::to_string(guided.evals()),
             format("%.1f%%", evalFraction * 100), format("%.6e s", guidedBest),
             format("%.3f%%", gapPct)});
  std::printf("%s\n", st.str().c_str());
  std::printf("exhaustive best:  %s\n",
              exact.evaluated[*exact.bestIndex].config.c_str());
  std::printf("shalving best:    %s\n",
              guided.evaluated[*guided.bestIndex].config.c_str());
  std::printf("shalving status:  %s\n", guided.provenance.c_str());
  if (guided.cheapestWithin) {
    const auto& cw = guided.evaluated[*guided.cheapestWithin];
    std::printf("cheapest within %.0f%%: %s (cost %.2f)\n", guided.withinPct,
                cw.config.c_str(), cw.cost);
  }
  std::printf("Pareto front: %zu points\n", guided.front.size());

  metrics.gauge("search/space_size", lattice);
  metrics.gauge("search/exhaustive_evals", static_cast<double>(exact.evals()));
  metrics.gauge("search/shalving_evals", static_cast<double>(guided.evals()));
  metrics.gauge("search/eval_fraction", evalFraction);
  metrics.gauge("search/quality_gap_pct", gapPct);
  metrics.gauge("search/front_size", static_cast<double>(guided.front.size()));
  metrics.gauge("search/exhaustive_s", exact.searchSeconds);
  metrics.gauge("search/shalving_s", guided.searchSeconds);

  if (gapPct > 1.0) {
    std::printf("\nFAIL: shalving best %.3f%% worse than exhaustive optimum "
                "(> 1%% target)\n", gapPct);
    return 1;
  }
  if (evalFraction > 0.15) {
    std::printf("\nFAIL: shalving evaluated %.1f%% of the lattice (> 15%% target)\n",
                evalFraction * 100);
    return 1;
  }
  return 0;
}
