// Figure 13 reproduction: STASSUIJ hot-spot selection on BG/Q. The paper:
// the top measured spot (the sparse x dense complex scaling loop) takes
// ~68% and the butterfly exchange ~23%; the model identifies the selection
// and ordering correctly but OVER-estimates the first spot because IBM XL
// vectorizes that loop while the roofline model does not account for SIMD.
#include "common.h"
#include "sim/simulator.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig13_stassuij", argc, argv);
  bench::banner("Figure 13: STASSUIJ hot spots on BG/Q");

  core::CodesignFramework fw(workloads::stassuij());
  auto a = fw.analyze(MachineModel::bgq(), bench::scaledCriteria());

  std::printf("%s\n", bench::rankTable(a, 8).c_str());
  std::printf("%s\n", bench::coverageFigure(a, 8).c_str());
  bench::printQualityLine(a);

  // quantify the vectorization-driven over-projection of the top spot
  if (!a.profRanking.empty()) {
    const auto& top = a.profRanking[0];
    auto it = a.model.blocks.find(top.origin);
    if (it != a.model.blocks.end()) {
      std::printf("\ntop spot %s: measured %.1f%% of runtime, projected %.1f%%\n",
                  top.label.c_str(), top.fraction * 100, it->second.fraction * 100);
      sim::Simulator simulator(fw.program(), fw.module(), MachineModel::bgq());
      std::printf("XL vectorizes this loop in the ground truth: %s; the roofline\n"
                  "model is vectorization-blind, hence the over-estimate (§VII-B).\n",
                  simulator.isVectorized(top.origin) ? "yes" : "no");
    }
  }
  return 0;
}
