// Robustness economics: what fault isolation costs when nothing goes wrong,
// and what it buys when something does.
//
//   * "clean"   — the 256-config cache-axis sweep with no cancellation token
//     armed: every poll site pays one null-token pointer test.
//   * "guarded" — the same sweep under a (far-future) --deadline-ms root
//     token plus a per-config --config-timeout-ms child token: every poll
//     site now reads the shared state and, at the bounded check interval,
//     the monotonic clock. The headline gauge robustness/cancel_overhead is
//     guarded/clean wall time (min over repetitions, so scheduler noise
//     cannot manufacture an overhead) and the bench fails if it exceeds 3%
//     in optimized builds — the budget docs/ROBUSTNESS.md promises.
//   * "faulty"  — the same sweep with 5% of pool tasks throwing via the
//     deterministic fault-injection registry (pool/task:0.05:9): the sweep
//     must complete with exactly firedCount() Error rows, every other row
//     still ranked, and wall time comparable to clean (failed configs do
//     strictly less work; isolation adds no serialization).
#include <algorithm>
#include <chrono>
#include <cstring>

#include "common.h"
#include "machine/grid.h"
#include "support/cancel.h"
#include "support/faultinject.h"
#include "sweep/report.h"
#include "sweep/sweep.h"

using namespace skope;

namespace {

// 4 axes x 4 values = 256 configs around the BG/Q node (bench_sweep's
// stress grid: 4 distinct L1 geometries shared by all configs).
MachineGrid grid256() {
  return parseGridSpec("base=bgq;"
                       "l1kb=8,16,32,64;"
                       "freq=1.2,1.4,1.6,1.8;"
                       "membw=15,30,45,60;"
                       "memlat=90,150,210,270");
}

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double minSweepSeconds(const core::WorkloadFrontend& fe, const MachineGrid& grid,
                       const sweep::SweepOptions& opts, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, sweep::runSweep(fe, grid, opts).sweepSeconds);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_robustness", argc, argv);
  bench::banner("fault isolation: cancellation overhead + injected-failure sweep "
                "(SORD, 256 configs)");

  auto frontend = core::loadFrontend("sord");
  auto grid = grid256();
  constexpr int kReps = 5;
  int failures = 0;

  sweep::SweepOptions clean;
  clean.threads = 0;  // all hardware threads, like the sweep CLI default
  clean.criteria = bench::scaledCriteria();

  sweep::SweepOptions guarded = clean;
  guarded.cancel = CancelToken::withTimeoutMs(10 * 60 * 1000);  // never expires
  guarded.configTimeoutMs = 60 * 1000;  // every config derives a child token

  // Warm up caches/pool before timing anything.
  auto warm = sweep::runSweep(*frontend, grid, clean);
  std::printf("grid: %zu configs, %d threads\n\n", warm.outcomes.size(),
              warm.threadsUsed);

  double cleanS = minSweepSeconds(*frontend, grid, clean, kReps);
  double guardedS = minSweepSeconds(*frontend, grid, guarded, kReps);
  double overhead = cleanS > 0 ? guardedS / cleanS : 1.0;
  std::printf("clean    %8.2f ms  (min of %d)\n", cleanS * 1000, kReps);
  std::printf("guarded  %8.2f ms  (deadline + per-config timeout armed)\n",
              guardedS * 1000);
  std::printf("cancellation-check overhead: %.2fx\n\n", overhead);
  metrics.gauge("robustness/clean_ms", cleanS * 1000);
  metrics.gauge("robustness/guarded_ms", guardedS * 1000);
  metrics.gauge("robustness/cancel_overhead", overhead);
#if defined(NDEBUG)
  if (overhead > 1.03) {
    std::fprintf(stderr, "FAIL: cancellation overhead %.3fx exceeds the 1.03x "
                 "budget\n", overhead);
    ++failures;
  }
#endif

  // Injected failures: 5% of pool tasks throw. The sweep must finish with
  // exactly firedCount() error rows and everything else still ranked.
  faultinject::configure("pool/task:0.05:9");
  double t0 = now();
  auto faulty = sweep::runSweep(*frontend, grid, clean);
  double faultyS = now() - t0;
  uint64_t fired = faultinject::firedCount("pool/task");
  faultinject::clear();

  size_t errorRows = faulty.countWithStatus(sweep::ConfigStatus::Error);
  size_t okRows = faulty.countWithStatus(sweep::ConfigStatus::Ok);
  std::printf("faulty   %8.2f ms  (%llu/%zu tasks injected to fail)\n",
              faultyS * 1000, static_cast<unsigned long long>(fired),
              faulty.outcomes.size());
  std::printf("outcomes: %zu ok, %zu error; ranked rows: %zu\n",
              okRows, errorRows, faulty.ranked().size());
  metrics.gauge("robustness/faulty_wall_ms", faultyS * 1000);
  metrics.gauge("robustness/injected_faults", static_cast<double>(fired));
  if (errorRows != fired || okRows + errorRows != faulty.outcomes.size()) {
    std::fprintf(stderr, "FAIL: expected %llu error rows out of %zu, got %zu "
                 "(%zu ok)\n", static_cast<unsigned long long>(fired),
                 faulty.outcomes.size(), errorRows, okRows);
    ++failures;
  }
  if (fired == 0) {
    std::fprintf(stderr, "FAIL: fault spec pool/task:0.05:9 never fired over "
                 "%zu tasks\n", faulty.outcomes.size());
    ++failures;
  }

  if (failures == 0) std::printf("\nall robustness checks passed\n");
  return failures == 0 ? 0 : 1;
}
