// Figure 11 reproduction: SRAD hot-spot selection on BG/Q. The paper's
// notable detail: two of the top three measured hot spots are the math
// library's exp and rand, which the framework handles with the semi-analytic
// empirical mixes of §IV-C — and closely-sized spots may swap order.
#include "common.h"
#include "minic/builtins.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig11_srad", argc, argv);
  bench::banner("Figure 11: SRAD hot spots on BG/Q");

  core::CodesignFramework fw(workloads::srad());
  auto a = fw.analyze(MachineModel::bgq(), bench::scaledCriteria());

  std::printf("%s\n", bench::rankTable(a, 10).c_str());
  std::printf("%s\n", bench::coverageFigure(a, 10).c_str());
  bench::printQualityLine(a);

  // library hot spots present in both rankings?
  auto inTop = [](const hotspot::Ranking& r, const char* label, size_t n) {
    for (size_t i = 0; i < n && i < r.size(); ++i) {
      if (r[i].label == label) return static_cast<int>(i) + 1;
    }
    return 0;
  };
  std::printf("\nlibrary hot spots (semi-analytic modeling, §IV-C):\n");
  for (const char* lib : {"lib:exp", "lib:rand", "lib:log"}) {
    int pr = inTop(a.profRanking, lib, 10);
    int mr = inTop(a.modelRanking, lib, 10);
    if (pr || mr) {
      std::printf("  %-9s measured rank %d, projected rank %d\n", lib, pr, mr);
    }
  }

  const auto& mixes = core::CodesignFramework::libProfile().mixes;
  auto expMix = mixes.at(minic::findBuiltin("exp"));
  std::printf("\nempirical exp mix (per call, averaged over sampled inputs): "
              "%.1f flops, %.1f iops, %.1f loads\n",
              expMix.totalFlops(), expMix.iops, expMix.loads);
  return 0;
}
