// Figure 9 reproduction: the SORD hot path on BG/Q — all control flow
// reaching the selected hot spots from main, with per-node probability,
// expected repetition counts and context values, distinguishing multiple
// invocations of the same spot.
#include "common.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig9_sord_hotpath", argc, argv);
  bench::banner("Figure 9: SORD hot path on BG/Q");
  core::CodesignFramework fw(workloads::sord());
  std::printf("%s\n", fw.hotPathReport(MachineModel::bgq(), bench::scaledCriteria()).c_str());
  std::printf("legend: '*' = selected hot spot, xN = expected iterations,\n"
              "p = conditional probability, enr = expected repetitions,\n"
              "t = projected total seconds, ctx{...} = context values.\n");
  return 0;
}
