// Table I reproduction: the top-10 SORD hot spots on BG/Q and on Xeon, from
// both the profiler (Prof) and the model (Modl). The paper's headline: the
// two machines' measured top-10 lists differ in membership and order (only 4
// of 10 shared at production scale), while the model tracks each machine.
#include "common.h"
#include "hotspot/hotspot.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_table1_sord_hotspots", argc, argv);
  bench::banner("Table I: SORD top-10 hot spots across machines");

  core::CodesignFramework fw(workloads::sord());
  auto bgq = fw.analyze(MachineModel::bgq(), bench::scaledCriteria());
  auto xeon = fw.analyze(MachineModel::xeonE5_2420(), bench::scaledCriteria());

  std::printf("--- BG/Q ---\n%s\n", bench::rankTable(bgq, 10).c_str());
  std::printf("--- Xeon E5-2420 ---\n%s\n", bench::rankTable(xeon, 10).c_str());

  size_t profOverlap = hotspot::topNOverlap(bgq.profRanking, xeon.profRanking, 10);
  std::printf("measured top-10 shared between machines : %zu / 10 (paper: 4 / 10 at "
              "production scale)\n", profOverlap);

  // ordering agreement: positions where the two machines' measured lists differ
  size_t diffPos = 0;
  for (size_t i = 0; i < 10 && i < bgq.profRanking.size() && i < xeon.profRanking.size(); ++i) {
    if (bgq.profRanking[i].origin != xeon.profRanking[i].origin) ++diffPos;
  }
  std::printf("rank positions that differ between machines: %zu / 10\n", diffPos);

  std::printf("model top-10 matches profiler top-10 on BG/Q: %zu / 10\n",
              hotspot::topNOverlap(bgq.profRanking, bgq.modelRanking, 10));
  std::printf("model top-10 matches profiler top-10 on Xeon: %zu / 10\n",
              hotspot::topNOverlap(xeon.profRanking, xeon.modelRanking, 10));
  return 0;
}
