// Shared helpers for the experiment binaries (one per paper table/figure).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/framework.h"
#include "report/chart.h"
#include "report/table.h"
#include "support/text.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace skope::bench {

/// Uniform metrics emission for every bench binary: construct one at the top
/// of main and every BENCH_*.json file comes out in the shared
/// "skope-metrics-v1" schema (telemetry counters/gauges/histograms/stages
/// plus the bench name and a top-level wall_ms).
///
/// The output path comes from the command line: `--metrics-json=PATH` or a
/// bare argument ending in ".json" (the historical bench_trace convention).
/// No path means no file — the bench still prints its stdout report.
class BenchMetrics {
 public:
  BenchMetrics(std::string name, int argc, char** argv)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--metrics-json=", 15) == 0) {
        path_ = a + 15;
      } else if (std::strlen(a) > 5 &&
                 std::strcmp(a + std::strlen(a) - 5, ".json") == 0 &&
                 a[0] != '-') {
        path_ = a;
      }
    }
    // Spans/counters only cost anything when someone will read them.
    if (!path_.empty()) telemetry::Registry::global().setEnabled(true);
  }

  BenchMetrics(const BenchMetrics&) = delete;
  BenchMetrics& operator=(const BenchMetrics&) = delete;

  /// Records a headline figure (e.g. "trace/speedup") into the metrics dump.
  void gauge(const std::string& name, double v) {
    if (!path_.empty()) telemetry::Registry::global().gauge(name).set(v);
  }

  ~BenchMetrics() {
    if (path_.empty()) return;
    double wallMs = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    if (double kb = peakRssKb(); kb > 0) gauge("bench/peak_rss_kb", kb);
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", name_.c_str(), path_.c_str());
      return;
    }
    out << telemetry::toMetricsJson(telemetry::Registry::global(), name_, wallMs);
    std::printf("wrote %s\n", path_.c_str());
  }

 private:
  /// Process peak resident set ("VmHWM" from /proc/self/status) in kB, or 0
  /// where the kernel does not report it (non-Linux).
  static double peakRssKb() {
#ifdef __linux__
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmHWM:", 0) == 0) return std::atof(line.c_str() + 6);
    }
#endif
    return 0;
  }

  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Timing repetitions for the perf sections of a bench, from the BENCH_REPS
/// environment variable (default 3, floor 1). CI and local runs report the
/// median of this many repetitions, which rides out one-off scheduling
/// noise — the difference between a perf gate that flaps and one that holds.
inline int benchReps() {
  const char* env = std::getenv("BENCH_REPS");
  if (env == nullptr || *env == '\0') return 3;
  int reps = std::atoi(env);
  return reps < 1 ? 1 : reps;
}

/// Median of the samples (empty -> 0). Even counts take the lower middle so
/// the result is always one of the measured values.
inline double median(std::vector<double> samples) {
  if (samples.empty()) return 0;
  size_t mid = (samples.size() - 1) / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<ptrdiff_t>(mid),
                   samples.end());
  return samples[mid];
}

/// Runs `body` benchReps() times and returns the median wall-clock seconds.
template <typename Fn>
double medianSeconds(Fn&& body) {
  std::vector<double> samples;
  int reps = benchReps();
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    body();
    samples.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return median(std::move(samples));
}

/// The paper's criteria are {coverage >= 90%, leanness <= 10%} on production
/// codes. Our workload ports are ~20x smaller, so a single hot loop is a much
/// larger share of the static code; 45% leanness applies the same selective
/// pressure at this scale (see EXPERIMENTS.md, "criteria scaling").
inline hotspot::SelectionCriteria scaledCriteria() { return {0.90, 0.45}; }

inline void banner(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  std::printf("\n%s\n==  %s  ==\n%s\n\n", bar.c_str(), title.c_str(), bar.c_str());
}

/// Side-by-side Prof vs Modl top-N table (the layout of the paper's Table I).
inline std::string rankTable(const core::Analysis& a, size_t topN) {
  report::Table t({"#", "Prof (measured)", "time%", "Modl (projected)", "time%"});
  for (size_t i = 0; i < topN; ++i) {
    std::vector<std::string> row(5);
    row[0] = std::to_string(i + 1);
    if (i < a.profRanking.size()) {
      row[1] = a.profRanking[i].label;
      row[2] = format("%.2f%%", a.profRanking[i].fraction * 100);
    }
    if (i < a.modelRanking.size()) {
      row[3] = a.modelRanking[i].label;
      row[4] = format("%.2f%%", a.modelRanking[i].fraction * 100);
    }
    t.addRow(std::move(row));
  }
  return t.str();
}

/// The paper's standard coverage-curve figure: Prof (measured coverage of the
/// profiler ranking), Modl(p) (projected coverage of the model ranking) and
/// Modl(m) (measured coverage of the model ranking).
inline std::string coverageFigure(const core::Analysis& a, size_t topN) {
  auto measured = hotspot::fractionsByOrigin(a.profRanking);
  auto projected = hotspot::fractionsByOrigin(a.modelRanking);
  std::vector<report::Series> series = {
      {"Prof", hotspot::coverageCurve(a.profRanking, measured, topN)},
      {"Modl(p)", hotspot::coverageCurve(a.modelRanking, projected, topN)},
      {"Modl(m)", hotspot::coverageCurve(a.modelRanking, measured, topN)},
  };
  return report::seriesChart(series);
}

inline void printQualityLine(const core::Analysis& a) {
  std::printf(
      "selection (coverage>=%.0f%%, leanness<=%.0f%%): prof %zu spots "
      "(measured %.1f%%), model %zu spots (measured %.1f%%) -> quality %.1f%%\n",
      scaledCriteria().timeCoverage * 100, scaledCriteria().codeLeanness * 100,
      a.profSelection.spots.size(), a.quality.profCoverage * 100,
      a.modelSelection.spots.size(), a.quality.modelCoverage * 100,
      a.quality.quality * 100);
}

}  // namespace skope::bench
