// Shared helpers for the experiment binaries (one per paper table/figure).
#pragma once

#include <cstdio>
#include <string>

#include "core/framework.h"
#include "report/chart.h"
#include "report/table.h"
#include "support/text.h"

namespace skope::bench {

/// The paper's criteria are {coverage >= 90%, leanness <= 10%} on production
/// codes. Our workload ports are ~20x smaller, so a single hot loop is a much
/// larger share of the static code; 45% leanness applies the same selective
/// pressure at this scale (see EXPERIMENTS.md, "criteria scaling").
inline hotspot::SelectionCriteria scaledCriteria() { return {0.90, 0.45}; }

inline void banner(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  std::printf("\n%s\n==  %s  ==\n%s\n\n", bar.c_str(), title.c_str(), bar.c_str());
}

/// Side-by-side Prof vs Modl top-N table (the layout of the paper's Table I).
inline std::string rankTable(const core::Analysis& a, size_t topN) {
  report::Table t({"#", "Prof (measured)", "time%", "Modl (projected)", "time%"});
  for (size_t i = 0; i < topN; ++i) {
    std::vector<std::string> row(5);
    row[0] = std::to_string(i + 1);
    if (i < a.profRanking.size()) {
      row[1] = a.profRanking[i].label;
      row[2] = format("%.2f%%", a.profRanking[i].fraction * 100);
    }
    if (i < a.modelRanking.size()) {
      row[3] = a.modelRanking[i].label;
      row[4] = format("%.2f%%", a.modelRanking[i].fraction * 100);
    }
    t.addRow(std::move(row));
  }
  return t.str();
}

/// The paper's standard coverage-curve figure: Prof (measured coverage of the
/// profiler ranking), Modl(p) (projected coverage of the model ranking) and
/// Modl(m) (measured coverage of the model ranking).
inline std::string coverageFigure(const core::Analysis& a, size_t topN) {
  auto measured = hotspot::fractionsByOrigin(a.profRanking);
  auto projected = hotspot::fractionsByOrigin(a.modelRanking);
  std::vector<report::Series> series = {
      {"Prof", hotspot::coverageCurve(a.profRanking, measured, topN)},
      {"Modl(p)", hotspot::coverageCurve(a.modelRanking, projected, topN)},
      {"Modl(m)", hotspot::coverageCurve(a.modelRanking, measured, topN)},
  };
  return report::seriesChart(series);
}

inline void printQualityLine(const core::Analysis& a) {
  std::printf(
      "selection (coverage>=%.0f%%, leanness<=%.0f%%): prof %zu spots "
      "(measured %.1f%%), model %zu spots (measured %.1f%%) -> quality %.1f%%\n",
      scaledCriteria().timeCoverage * 100, scaledCriteria().codeLeanness * 100,
      a.profSelection.spots.size(), a.quality.profCoverage * 100,
      a.modelSelection.spots.size(), a.quality.modelCoverage * 100,
      a.quality.quality * 100);
}

}  // namespace skope::bench
