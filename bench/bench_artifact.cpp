// Compile-once / serve-many economics — the headline numbers of the
// persistent artifact cache (docs/ARTIFACTS.md):
//
//   1. Warm-start speedup: the five bundled workloads, each swept over a
//      64-config machine grid with ground truth per config
//      (--cache-model=reuse-dist --trace-roofline), cold (empty cache
//      directory: every front-end profiles, every histogram set is computed)
//      vs warm (same directory: profile + trace + reuse-dist histograms all
//      restored from the store). Target: >= 10x, gated in bench/baselines.json
//      via artifact/warm_speedup.
//   2. Correctness: the warm reports are byte-identical to the cold ones —
//      the cache may only change WHERE results come from, never the results.
//
// Writes a machine-readable summary (BENCH_artifact.json) for CI when a path
// is given — in the shared "skope-metrics-v1" schema (bench::BenchMetrics).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include <unistd.h>

#include "artifact/cache.h"
#include "common.h"
#include "core/frontend.h"
#include "machine/grid.h"
#include "sweep/report.h"
#include "sweep/sweep.h"

using namespace skope;

namespace {

namespace fs = std::filesystem;

// Each workload's iteration count is scaled up ~3x from the bundled default:
// the cold cost the cache amortizes (profiling run + trace capture + reuse
// histograms) grows with the input, while the warm serve path does not — the
// realistic compile-once / serve-many regime is long-running inputs, and the
// tiny defaults would understate it.
struct BenchWorkload {
  const char* name;
  const char* params;
};
constexpr BenchWorkload kWorkloads[] = {
    {"sord", "NT=12"},        {"chargei", "NSTEP=6"}, {"srad", "NITER=6"},
    {"cfd", "NSTEP=9"},       {"stassuij", "NPASS=15"},
};

// 4 x 4 x 4 = 64 configs across the co-design axes the artifact cache leaves
// untouched: everything here is machine-dependent back-end work, so the whole
// front-end (profile + trace + histograms) is reusable across the grid AND
// across repeated invocations — the compile-once / serve-many case.
MachineGrid grid64() {
  return parseGridSpec("base=bgq;"
                       "membw=15:60:15;"
                       "peakflops=2,4,8,16;"
                       "memlat=90:270:60");
}

/// One full "serve" pass: build each workload's front-end and sweep the grid,
/// everything keyed through `cache` (nullptr = no cache). Returns the
/// concatenated deterministic reports so cold and warm passes can be compared
/// byte-for-byte.
std::vector<std::string> runAll(const artifact::ArtifactCache* cache,
                                const MachineGrid& grid) {
  std::vector<std::string> reports;
  for (const BenchWorkload& w : kWorkloads) {
    core::FrontendOptions fopts;
    fopts.artifacts = cache;
    auto frontend = core::loadFrontend(w.name, w.params, "", fopts);
    sweep::SweepOptions opts;
    opts.criteria = bench::scaledCriteria();
    opts.threads = 1;
    opts.groundTruth = true;
    opts.cacheModel = sweep::CacheModelMode::ReuseDist;
    opts.traceInformedRoofline = true;
    opts.artifacts = cache;
    auto result = sweep::runSweep(*frontend, grid, opts);
    reports.push_back(sweep::toMarkdown(result) + sweep::toCsv(result));
  }
  return reports;
}

uint64_t counterValue(const char* name) {
  auto snap = telemetry::Registry::global().metrics();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_artifact", argc, argv);
  // The hit/corrupt assertions below read the artifact counters, so the
  // registry must record regardless of whether a metrics file was requested.
  telemetry::Registry::global().setEnabled(true);
  bench::banner("compile-once / serve-many: artifact-cache warm-start speedup");

  auto grid = grid64();
  std::printf("%zu workloads x %zu configs, ground truth per config "
              "(reuse-dist + trace-informed roofline)\n\n",
              std::size(kWorkloads), grid.configCount());

  const fs::path root =
      fs::temp_directory_path() /
      ("skope-bench-artifact-" + std::to_string(::getpid()));
  fs::remove_all(root);

  // --- cold: empty store every repetition (the last one stays populated) ---
  std::vector<std::string> coldReports;
  double coldSec = bench::medianSeconds([&] {
    fs::remove_all(root);
    artifact::ArtifactCache cache(root.string());
    coldReports = runAll(&cache, grid);
  });

  // --- warm: every artifact served from the store the last cold rep left ---
  uint64_t hitsBefore = counterValue("artifact/hit");
  std::vector<std::string> warmReports;
  double warmSec = bench::medianSeconds([&] {
    artifact::ArtifactCache cache(root.string());
    warmReports = runAll(&cache, grid);
  });
  uint64_t warmHits = counterValue("artifact/hit") - hitsBefore;

  double speedup = warmSec > 0 ? coldSec / warmSec : 0;
  bool identical = coldReports == warmReports;

  report::Table t({"pass", "wall-clock (median)", "speedup"});
  t.addRow({"cold (empty cache)", format("%.3f s", coldSec), "1.0x"});
  t.addRow({"warm (served from store)", format("%.3f s", warmSec),
            format("%.1fx", speedup)});
  std::printf("%s\n", t.str().c_str());
  std::printf("warm store hits: %llu; reports byte-identical: %s\n\n",
              static_cast<unsigned long long>(warmHits),
              identical ? "yes" : "NO — BUG");

  uint64_t storeBytes = artifact::ArtifactCache(root.string()).store().storeBytes();
  fs::remove_all(root);

  metrics.gauge("artifact/workloads", static_cast<double>(std::size(kWorkloads)));
  metrics.gauge("artifact/configs", static_cast<double>(grid.configCount()));
  metrics.gauge("artifact/cold_s", coldSec);
  metrics.gauge("artifact/warm_s", warmSec);
  metrics.gauge("artifact/warm_speedup", speedup);
  metrics.gauge("artifact/warm_hits", static_cast<double>(warmHits));
  metrics.gauge("artifact/store_bytes", static_cast<double>(storeBytes));
  metrics.gauge("artifact/identical", identical ? 1 : 0);

  if (!identical) {
    std::printf("FAIL: warm reports differ from cold reports\n");
    return 1;
  }
  if (warmHits == 0) {
    std::printf("FAIL: warm pass never hit the store\n");
    return 1;
  }
  if (speedup < 10.0) {
    std::printf("FAIL: warm-start speedup %.1fx below 10x\n", speedup);
    return 1;
  }
  if (counterValue("artifact/corrupt") != 0) {
    std::printf("FAIL: artifact/corrupt nonzero on a healthy store\n");
    return 1;
  }
  std::printf("PASS: warm start %.1fx faster, %llu hits, byte-identical reports\n",
              speedup, static_cast<unsigned long long>(warmHits));
  return 0;
}
