// Figure 10 + Table II reproduction: CFD hot-spot selection on BG/Q. The
// paper's diagnostic story: the division-heavy velocity-recovery spot is
// significantly under-estimated because the roofline treats all flops as
// equal, while XL expands each divide into a reciprocal-estimate + Newton
// sequence ("expected <3% of runtime, took 15%"). This bench quantifies the
// same effect per block and shows the ablation (uniformFlops=false) snapping
// the projection back.
#include "common.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig10_cfd", argc, argv);
  bench::banner("Figure 10 / Table II: CFD hot spots on BG/Q");

  core::CodesignFramework fw(workloads::cfd());
  auto a = fw.analyze(MachineModel::bgq(), bench::scaledCriteria());

  std::printf("%s\n", bench::rankTable(a, 10).c_str());
  std::printf("%s\n", bench::coverageFigure(a, 10).c_str());
  bench::printQualityLine(a);

  // per-block measured vs projected seconds, highlighting divide-heavy blocks
  std::printf("\nper-block projection error (divide-heavy blocks are under-projected):\n");
  report::Table t({"block", "measured s", "projected s", "ratio", "fpdivs/invocation"});
  auto measured = hotspot::fractionsByOrigin(a.profRanking);
  for (size_t i = 0; i < 8 && i < a.profRanking.size(); ++i) {
    const auto& pe = a.profRanking[i];
    auto it = a.model.blocks.find(pe.origin);
    if (it == a.model.blocks.end()) continue;
    double ratio = it->second.seconds > 0 ? pe.seconds / it->second.seconds : 0;
    t.addRow({pe.label, format("%.5f", pe.seconds), format("%.5f", it->second.seconds),
              format("%.2fx", ratio), format("%.2f", it->second.perInvocation.fpdivs)});
  }
  std::printf("%s", t.str().c_str());

  // ablation: charge divides at their true latency
  roofline::RooflineParams exact;
  exact.uniformFlops = false;
  auto exactModel = fw.project(MachineModel::bgq(), exact);
  std::printf("\nablation (divides charged at fpDivLat, non-paper mode):\n");
  for (size_t i = 0; i < 8 && i < a.profRanking.size(); ++i) {
    const auto& pe = a.profRanking[i];
    auto it = exactModel.blocks.find(pe.origin);
    if (it == exactModel.blocks.end() || it->second.perInvocation.fpdivs == 0) continue;
    double ratio = it->second.seconds > 0 ? pe.seconds / it->second.seconds : 0;
    std::printf("  %-24s measured/projected now %.2fx\n", pe.label.c_str(), ratio);
  }
  return 0;
}
