// Figure 8 reproduction: profiled issue rate and instructions-per-L1-miss
// for SORD's top hot spots on BG/Q. In the paper these hardware-counter
// readings corroborate the model's Tc/Tm split: spots the model calls
// memory-bound show low issue rates and few instructions per L1 miss.
#include "common.h"
#include "sim/profile_report.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_fig8_sord_counters", argc, argv);
  bench::banner("Figure 8: SORD profiled issue rate and instructions per L1 miss (BG/Q)");

  core::CodesignFramework fw(workloads::sord());
  const sim::ProfileReport& prof = fw.profileOn(MachineModel::bgq());

  report::Table t({"#", "hot spot", "time%", "issue rate", "instr/L1miss"});
  for (size_t i = 0; i < 10 && i < prof.ranked.size(); ++i) {
    const auto& e = prof.ranked[i];
    t.addRow({std::to_string(i + 1), e.label, format("%.2f%%", e.fraction * 100),
              format("%.3f", e.issueRate), format("%.1f", e.instrsPerL1Miss)});
  }
  std::printf("%s\n", t.str().c_str());

  // correlation check: the model's memory-bound spots should sit at the low
  // end of the profiled issue-rate range (paper: "closely correlates")
  auto model = fw.project(MachineModel::bgq());
  std::printf("model-projected memory share vs profiled issue rate:\n");
  for (size_t i = 0; i < 10 && i < prof.ranked.size(); ++i) {
    const auto& e = prof.ranked[i];
    auto it = model.blocks.find(e.region);
    if (it == model.blocks.end()) continue;
    const auto& bc = it->second;
    double total = bc.tcSeconds + bc.tmSeconds - bc.toSeconds;
    double memShare = total > 0 ? (bc.tmSeconds - bc.toSeconds) / total : 0;
    std::printf("  %-26s projected-mem=%5.1f%%  issue-rate=%6.3f\n", e.label.c_str(),
                memShare * 100, e.issueRate);
  }
  return 0;
}
