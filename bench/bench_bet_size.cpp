// §IV-B claim reproduction: "the size of the BET averages at 88% of that of
// the source code statements, and it never exceeds a factor of two" — and the
// BET size does not grow with the input size.
#include "common.h"

using namespace skope;

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_bet_size", argc, argv);
  bench::banner("BET size vs source statements (paper §IV-B)");

  report::Table t({"workload", "source stmts", "BET nodes", "ratio", "BET @ 4x input"});
  double ratioSum = 0;
  double ratioMax = 0;
  size_t n = 0;

  for (const auto* w : workloads::allWorkloads()) {
    core::CodesignFramework fw(*w);
    size_t stmts = fw.program().countStatements();
    size_t betSize = fw.bet().size();
    double ratio = static_cast<double>(betSize) / static_cast<double>(stmts);
    ratioSum += ratio;
    ratioMax = std::max(ratioMax, ratio);
    ++n;

    // same skeleton re-modeled with every param quadrupled: identical BET
    // size (the skeleton and its profiled statistics are reused, per §I —
    // "local profiling is needed only once")
    std::map<std::string, double> big = w->params;
    for (auto& [k, v] : big) v = v * 4;
    size_t betBig = bet::buildBet(fw.skeleton(), ParamEnv(big)).size();

    t.addRow({w->name, std::to_string(stmts), std::to_string(betSize),
              format("%.2f", ratio), std::to_string(betBig)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("mean BET/source ratio: %.2f (paper: 0.88)\n", ratioSum / n);
  std::printf("max  BET/source ratio: %.2f (paper bound: < 2.0) -> %s\n", ratioMax,
              ratioMax < 2.0 ? "HOLDS" : "VIOLATED");
  return 0;
}
