// Layer-condition cache model — accuracy vs exact replay and per-config cost
// (docs/CACHE_MODELS.md gets its headline numbers here):
//
//   1. Accuracy: for all five bundled workloads, the analytic layer-condition
//      model's predicted L1 / LLC miss rates vs the reuse-distance replay on
//      the recorded reference stream, BG/Q geometry. Per-workload absolute
//      errors become gauges; the documented envelope is L1 <= 9 points, LLC
//      <= 5 points absolute.
//   2. Cost: per-config evaluation time on a 1024-config cache-geometry grid.
//      Layer conditions are O(1) per config (a closed-form walk over the
//      loop nest); replay re-runs the per-set LRU simulation per geometry.
//      Target: >= 50x.
//
// Writes a machine-readable summary (BENCH_cachemodel.json) for CI when a
// path is given — shared "skope-metrics-v1" schema via bench::BenchMetrics.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cachemodel/layercond.h"
#include "common.h"
#include "machine/grid.h"
#include "trace/cache_model.h"

using namespace skope;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// 8 x 4 x 8 x 4 = 1024 cache geometries: the co-design sweep the analytic
// model exists for. Every config is a distinct (size, assoc) pair at both
// levels, so replay cannot reuse a single simulation.
MachineGrid cacheGrid1024() {
  return parseGridSpec("base=bgq;"
                       "l1kb=4,8,16,32,64,128,256,512;"
                       "l1assoc=2,4,8,16;"
                       "llcmb=1,2,4,8,16,32,64,128;"
                       "llcassoc=2,4,8,16");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_cachemodel", argc, argv);
  bench::banner("layer conditions: accuracy vs replay + O(1)-per-config cost");

  // --- 1. per-workload accuracy, layer-cond vs reuse-dist replay ---
  MachineModel machine = MachineModel::bgq();
  report::Table acc({"workload", "refs (symbolic)", "L1 replay", "L1 layer-cond",
                     "LLC replay", "LLC layer-cond", "|err| L1", "|err| LLC"});
  double worstL1 = 0, worstLlc = 0;
  for (const char* name : {"sord", "chargei", "srad", "cfd", "stassuij"}) {
    auto fe = core::loadFrontend(name);
    cachemodel::LayerConditionModel model(fe->program(), fe->bet(), fe->params());
    if (!model.usable()) {
      std::printf("FAIL: %s not analyzable (modeled fraction %.2f)\n", name,
                  model.stats().modeledFraction());
      return 1;
    }
    if (!fe->memoryTrace().usable()) {
      std::printf("FAIL: %s trace unusable, no replay reference\n", name);
      return 1;
    }
    trace::CacheModel replay(fe->memoryTrace());
    auto lc = model.evaluate(machine);
    auto ref = replay.evaluate(machine);
    double errL1 = std::abs(lc.l1MissRate - ref.l1MissRate);
    double errLlc = std::abs(lc.llcMissRate - ref.llcMissRate);
    worstL1 = std::max(worstL1, errL1);
    worstLlc = std::max(worstLlc, errLlc);
    acc.addRow({name, format("%llu", static_cast<unsigned long long>(lc.accesses)),
                format("%.4f", ref.l1MissRate), format("%.4f", lc.l1MissRate),
                format("%.4f", ref.llcMissRate), format("%.4f", lc.llcMissRate),
                format("%.4f", errL1), format("%.4f", errLlc)});
    metrics.gauge(format("cachemodel/%s_l1_abs_error", name), errL1);
    metrics.gauge(format("cachemodel/%s_llc_abs_error", name), errLlc);
  }
  std::printf("miss-rate accuracy, %s geometry (reuse-dist replay vs layer conditions):\n%s\n",
              machine.name.c_str(), acc.str().c_str());

  // --- 2. per-config evaluation cost on the 1024-config grid ---
  // Both models amortize a one-time build (access extraction here, the trace
  // recording + histogram for replay); the sweep-relevant cost is evaluate()
  // per geometry, so that is what the grid loop times.
  auto frontend = core::loadFrontend("sord");
  auto grid = cacheGrid1024();
  auto configs = grid.expand();
  std::printf("cache-geometry grid: %zu configs, SORD\n", configs.size());

  cachemodel::LayerConditionModel model(frontend->program(), frontend->bet(),
                                        frontend->params());
  trace::CacheModel replay(frontend->memoryTrace());

  double sink = 0;  // keep the optimizer honest
  double t0 = now();
  for (const auto& cfg : configs) sink += model.evaluate(cfg.machine).l1MissRate;
  double layerSec = now() - t0;

  t0 = now();
  for (const auto& cfg : configs) sink += replay.evaluate(cfg.machine).l1MissRate;
  double replaySec = now() - t0;
  double speedup = replaySec / layerSec;

  report::Table sw({"model", "1024-config wall-clock", "per config", "speedup"});
  sw.addRow({"reuse-dist (histogram + per-set replay)", format("%.3f s", replaySec),
             format("%.3f ms", replaySec / configs.size() * 1e3), "1.0x"});
  sw.addRow({"layer-cond (closed form)", format("%.3f s", layerSec),
             format("%.3f ms", layerSec / configs.size() * 1e3),
             format("%.0fx", speedup)});
  std::printf("%s(checksum %.3f)\n\n", sw.str().c_str(), sink);

  bool accuracyOk = worstL1 <= 0.09 && worstLlc <= 0.05;
  bool speedupOk = speedup >= 50.0;

  metrics.gauge("cachemodel/configs", static_cast<double>(configs.size()));
  metrics.gauge("cachemodel/layer_seconds", layerSec);
  metrics.gauge("cachemodel/replay_seconds", replaySec);
  metrics.gauge("cachemodel/speedup", speedup);
  metrics.gauge("cachemodel/worst_l1_abs_error", worstL1);
  metrics.gauge("cachemodel/worst_llc_abs_error", worstLlc);
  metrics.gauge("cachemodel/accuracy_ok", accuracyOk ? 1 : 0);
  metrics.gauge("cachemodel/speedup_ok", speedupOk ? 1 : 0);

  if (!accuracyOk) {
    std::printf("FAIL: worst error L1 %.4f / LLC %.4f exceeds the 0.09 / 0.05 envelope\n",
                worstL1, worstLlc);
    return 1;
  }
  if (!speedupOk) {
    std::printf("FAIL: layer-cond speedup %.1fx below 50x\n", speedup);
    return 1;
  }
  std::printf("PASS: L1 within %.1f points, LLC within %.1f, %.0fx per config\n",
              worstL1 * 100, worstLlc * 100, speedup);
  return 0;
}
