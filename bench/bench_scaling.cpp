// Abstract-claim reproduction: "our technique's analysis time does not
// increase with the input data size". Measured with google-benchmark: the
// analytic pipeline (BET construction + roofline projection) is timed against
// the ground-truth simulation over growing SRAD images. Simulation time grows
// linearly with pixels; analysis time stays flat.
#include <benchmark/benchmark.h>

#include "core/framework.h"
#include "machine/machine.h"
#include "sim/simulator.h"

using namespace skope;

namespace {

std::map<std::string, double> sradParams(int64_t edge) {
  return {{"NI", static_cast<double>(edge)},
          {"NJ", static_cast<double>(edge)},
          {"NITER", 2},
          {"SAMPLE", 16}};
}

// One-time local profiling per image size (the paper profiles once too);
// kept outside the timed region.
core::CodesignFramework& frameworkFor(int64_t edge) {
  static std::map<int64_t, std::unique_ptr<core::CodesignFramework>> cache;
  auto& slot = cache[edge];
  if (!slot) {
    slot = std::make_unique<core::CodesignFramework>(
        "srad" + std::to_string(edge), workloads::srad().source, sradParams(edge));
    slot->skeleton();  // profile + annotate now
  }
  return *slot;
}

void BM_AnalyticProjection(benchmark::State& state) {
  auto& fw = frameworkFor(state.range(0));
  skel::SkeletonProgram const& sk = fw.skeleton();
  for (auto _ : state) {
    // full modeling pass: BET + ENR + roofline for BG/Q
    bet::Bet b = bet::buildBet(sk, ParamEnv(sradParams(state.range(0))));
    roofline::Roofline model(MachineModel::bgq());
    auto result = roofline::estimate(b, model, &fw.module());
    benchmark::DoNotOptimize(result.totalSeconds);
  }
  state.counters["pixels"] = static_cast<double>(state.range(0) * state.range(0));
}
BENCHMARK(BM_AnalyticProjection)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_GroundTruthSimulation(benchmark::State& state) {
  auto& fw = frameworkFor(state.range(0));
  MachineModel machine = MachineModel::bgq();
  for (auto _ : state) {
    sim::Simulator simulator(fw.program(), fw.module(), machine);
    auto result = simulator.run(sradParams(state.range(0)));
    benchmark::DoNotOptimize(result.dynamicInstrs);
  }
  state.counters["pixels"] = static_cast<double>(state.range(0) * state.range(0));
}
BENCHMARK(BM_GroundTruthSimulation)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
