// Sweep-engine economics: what sharing the front-end buys, and what threads
// buy on top — the batch co-design workflow (one workload model, a 64-config
// machine grid) that kerncraft-style tools ship as their headline feature.
//
//   * "naive"  — what the facade did before src/sweep existed: rebuild the
//     entire front-end (parse, compile, profiling run, BET) per config.
//     Measured on a sample of configs and extrapolated; the front-end is
//     identical work each time, so the extrapolation is honest.
//   * "shared" — build the front-end once, run only the machine-dependent
//     back-end per config (the sweep engine, 1 thread).
//   * "shared xN" — the same with the work-stealing pool on all hardware
//     threads. On a multi-core box the back-end scales near-linearly since
//     configs are independent; single-core CI boxes will show ~1x here
//     while still showing the full amortization win above.
//
// Also verifies, every run, that the 1-thread and N-thread sweeps render
// byte-identical reports.
//
// The second half measures the node-major batched back-end against the
// scalar reference on a cache-axis grid with the trace-informed roofline —
// the worst case for the scalar path (it re-runs the cache model and
// re-walks the BET per config) and the case the batched path was built for
// (4 distinct L1 geometries shared by 64 configs). Both halves assert their
// reports byte-identical; the batched half additionally asserts the >= 5x
// speedup claim. `--grid-axes=stress` swaps in a 256-config 4-axis grid.
#include <chrono>
#include <cstring>

#include "common.h"
#include "core/backend.h"
#include "machine/grid.h"
#include "sweep/report.h"
#include "sweep/sweep.h"

using namespace skope;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// 4 x 4 x 4 = 64 configs around the BG/Q node.
MachineGrid grid64() {
  return parseGridSpec("base=bgq;"
                       "membw=15:60:15;"
                       "peakflops=2,4,8,16;"
                       "memlat=90:270:60");
}

// Cache-axis grid for the batched-vs-scalar comparison: 64 configs sharing 4
// distinct L1 geometries, so the geometry memo turns 64 cache-model
// evaluations into 4.
MachineGrid cacheGrid() {
  return parseGridSpec("base=bgq;"
                       "l1kb=8,16,32,64;"
                       "freq=1.2,1.4,1.6,1.8;"
                       "membw=15,30,45,60");
}

// --grid-axes=stress: a 4th axis on the comparison grid (256 configs, still 4
// geometries).
MachineGrid cacheGridStress() {
  return parseGridSpec("base=bgq;"
                       "l1kb=8,16,32,64;"
                       "freq=1.2,1.4,1.6,1.8;"
                       "membw=15,30,45,60;"
                       "memlat=90,150,210,270");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_sweep", argc, argv);
  bench::banner("sweep engine: front-end sharing + thread scaling (SORD, 64 configs)");

  auto grid = grid64();
  auto configs = grid.expand();
  std::printf("grid: base %s, %zu axes, %zu configs\n\n", grid.base.name.c_str(),
              grid.axes.size(), configs.size());

  // --- front-end, built once ---
  double t0 = now();
  auto frontend = core::loadFrontend("sord");
  double frontendSec = now() - t0;

  // --- naive baseline: front-end redone per config (sampled) ---
  constexpr size_t kSample = 4;
  t0 = now();
  for (size_t i = 0; i < kSample; ++i) {
    auto fe = core::loadFrontend("sord");  // parse + compile + profile + BET
    core::evaluateMachine(*fe, configs[i].machine,
                          {.criteria = bench::scaledCriteria()});
  }
  double naivePerConfig = (now() - t0) / kSample;
  double naiveTotal = naivePerConfig * static_cast<double>(configs.size());

  // --- shared front-end, 1 thread ---
  sweep::SweepOptions opts;
  opts.criteria = bench::scaledCriteria();
  opts.threads = 1;
  auto serial = sweep::runSweep(*frontend, grid, opts);

  // --- shared front-end, all hardware threads ---
  opts.threads = 0;
  auto parallel = sweep::runSweep(*frontend, grid, opts);

  bool identical = sweep::toCsv(serial) == sweep::toCsv(parallel) &&
                   sweep::toMarkdown(serial) == sweep::toMarkdown(parallel);

  report::Table t({"variant", "wall-clock", "speedup vs naive", "speedup vs 1-thread"});
  t.addRow({"naive: front-end per config (extrapolated)", format("%.2f s", naiveTotal),
            "1.0x", "-"});
  t.addRow({format("shared front-end, 1 thread (+%.2f s once)", frontendSec),
            format("%.3f s", serial.sweepSeconds),
            format("%.0fx", naiveTotal / serial.sweepSeconds), "1.0x"});
  t.addRow({format("shared front-end, %d threads", parallel.threadsUsed),
            format("%.3f s", parallel.sweepSeconds),
            format("%.0fx", naiveTotal / parallel.sweepSeconds),
            format("%.2fx", serial.sweepSeconds / parallel.sweepSeconds)});
  std::printf("%s\n", t.str().c_str());

  std::printf("1-thread vs %d-thread reports byte-identical: %s\n\n",
              parallel.threadsUsed, identical ? "yes" : "NO — BUG");

  std::printf("top designs (projected):\n%s",
              sweep::toMarkdown(parallel, 5).c_str());

  metrics.gauge("sweep/naive_total_s", naiveTotal);
  metrics.gauge("sweep/serial_s", serial.sweepSeconds);
  metrics.gauge("sweep/parallel_s", parallel.sweepSeconds);
  metrics.gauge("sweep/threads", parallel.threadsUsed);
  metrics.gauge("sweep/deterministic", identical ? 1 : 0);

  if (!identical) return 1;
  // The amortization claim: sharing must beat redoing the front-end by >= 3x
  // even before threads enter the picture.
  if (naiveTotal < 3 * serial.sweepSeconds) {
    std::printf("\nFAIL: shared sweep not >= 3x faster than naive\n");
    return 1;
  }

  // --- batched vs scalar back-end, cache-axis grid, trace-informed ---
  bool stress = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--grid-axes=stress") == 0) stress = true;
  }
  auto cgrid = stress ? cacheGridStress() : cacheGrid();
  auto cconfigs = cgrid.expand();
  bench::banner(format("batched vs scalar back-end (SORD, %zu-config cache grid, "
                       "trace-informed roofline)", cconfigs.size()));

  sweep::SweepOptions bopts;
  bopts.criteria = bench::scaledCriteria();
  bopts.threads = 1;  // isolate the back-end algorithm, not the pool
  bopts.traceInformedRoofline = true;
  bopts.cacheModel = sweep::CacheModelMode::ReuseDist;

  // Median of BENCH_REPS repetitions: one bad scheduling slice must not
  // decide the perf gate either way.
  const int reps = bench::benchReps();
  sweep::SweepResult scalar;
  sweep::SweepResult batched;
  std::vector<double> scalarSamples;
  std::vector<double> batchedSamples;
  for (int r = 0; r < reps; ++r) {
    bopts.backend = sweep::SweepBackend::Scalar;
    scalar = sweep::runSweep(*frontend, cgrid, bopts);
    scalarSamples.push_back(scalar.sweepSeconds);
    bopts.backend = sweep::SweepBackend::Batched;
    batched = sweep::runSweep(*frontend, cgrid, bopts);
    batchedSamples.push_back(batched.sweepSeconds);
  }
  double scalarS = bench::median(scalarSamples);
  double batchedS = bench::median(batchedSamples);

  bool sameReports = sweep::toCsv(scalar) == sweep::toCsv(batched) &&
                     sweep::toMarkdown(scalar) == sweep::toMarkdown(batched);
  double speedup = batchedS > 0 ? scalarS / batchedS : 0;

  report::Table bt({"back-end", "wall-clock", "speedup"});
  bt.addRow({"scalar: BET walk + cache model per config",
             format("%.3f s", scalarS), "1.0x"});
  bt.addRow({"batched: node-major, geometry-memoized",
             format("%.3f s", batchedS), format("%.1fx", speedup)});
  std::printf("%s\n", bt.str().c_str());
  std::printf("median of %d reps; scalar vs batched reports byte-identical: %s\n",
              reps, sameReports ? "yes" : "NO — BUG");

  metrics.gauge("sweep/scalar_s", scalarS);
  metrics.gauge("sweep/batched_s", batchedS);
  metrics.gauge("sweep/batched_speedup", speedup);
  metrics.gauge("sweep/batched_configs", static_cast<double>(cconfigs.size()));
  metrics.gauge("sweep/batched_identical", sameReports ? 1 : 0);

  if (!sameReports) return 1;
  if (speedup < 1.0) {
    std::printf("\nFAIL: batched back-end slower than scalar (%.2fx)\n", speedup);
    return 1;
  }
  if (speedup < 5.0) {
    std::printf("\nFAIL: batched back-end speedup %.2fx < 5x target\n", speedup);
    return 1;
  }
  return 0;
}
