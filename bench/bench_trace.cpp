// Trace-once / replay-many economics and accuracy — the headline numbers of
// the reuse-distance cache-modeling layer (docs/TRACE.md):
//
//   1. Accuracy: for all five bundled workloads, the analytic CacheModel's
//      predicted L1 / LLC miss rates vs the set-associative LRU simulator on
//      the recorded reference stream (target: within 2% absolute).
//   2. Speedup: a 64-config cache-axis sweep of SORD with ground truth per
//      config, --cache-model=simulate (re-simulate each config) vs
//      --cache-model=reuse-dist (histogram replay). Target: >= 10x.
//   3. Determinism: both modes render byte-identical reports for 1 vs N
//      threads.
//
// Writes a machine-readable summary (BENCH_trace.json) for CI when a path is
// given as argv[1] — in the shared "skope-metrics-v1" schema (the headline
// figures are gauges; bench::BenchMetrics owns the file).
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "machine/cache.h"
#include "machine/grid.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "trace/cache_model.h"

using namespace skope;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct AccuracyRow {
  std::string workload;
  uint64_t refs = 0;
  double simL1 = 0, predL1 = 0, simLlc = 0, predLlc = 0;

  [[nodiscard]] double worstError() const {
    return std::max(std::abs(predL1 - simL1), std::abs(predLlc - simLlc));
  }
};

// 4 x 2 x 4 x 2 = 64 configs across the cache axes (the sweep the analytic
// model exists for: geometry changes that force per-config re-simulation).
MachineGrid cacheGrid64() {
  return parseGridSpec("base=bgq;"
                       "l1kb=4,8,16,32;"
                       "l1assoc=2,8;"
                       "llcmb=4,8,16,32;"
                       "llcassoc=8,16");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_trace", argc, argv);
  bench::banner("trace-once / replay-many: accuracy + sweep speedup");

  // --- 1. miss-rate accuracy on all five workloads (bgq geometry) ---
  MachineModel machine = MachineModel::bgq();
  std::vector<AccuracyRow> rows;
  double worst = 0;
  for (const char* name : {"sord", "chargei", "srad", "cfd", "stassuij"}) {
    auto fe = core::loadFrontend(name);
    const trace::MemoryTrace& mt = fe->memoryTrace();
    if (!mt.usable()) {
      std::printf("FAIL: %s trace unusable (truncated=%d refs=%llu)\n", name,
                  mt.truncated, static_cast<unsigned long long>(mt.numRefs));
      return 1;
    }
    AccuracyRow row;
    row.workload = name;
    row.refs = mt.recordedRefs;
    CacheHierarchy sim(machine);
    mt.forEachRef([&](uint32_t, uint64_t word) { sim.access(word * 8); });
    row.simL1 = sim.l1().missRate();
    row.simLlc = sim.llc().missRate();
    trace::CacheModel model(mt);
    trace::CachePrediction pred = model.evaluate(machine);
    row.predL1 = pred.l1MissRate;
    row.predLlc = pred.llcMissRate;
    worst = std::max(worst, row.worstError());
    rows.push_back(row);
  }

  report::Table acc({"workload", "refs", "L1 sim", "L1 model", "LLC sim", "LLC model",
                     "max |err|"});
  for (const auto& r : rows) {
    acc.addRow({r.workload, format("%llu", static_cast<unsigned long long>(r.refs)),
                format("%.4f", r.simL1), format("%.4f", r.predL1),
                format("%.4f", r.simLlc), format("%.4f", r.predLlc),
                format("%.4f", r.worstError())});
  }
  std::printf("miss-rate accuracy, %s geometry (simulated stream vs analytic model):\n%s\n",
              machine.name.c_str(), acc.str().c_str());

  // --- 2. the 64-config cache-axis sweep, both ground-truth engines ---
  auto frontend = core::loadFrontend("sord");
  auto grid = cacheGrid64();
  std::printf("cache-axis sweep: %zu configs, SORD, ground truth per config\n",
              grid.configCount());

  sweep::SweepOptions opts;
  opts.criteria = bench::scaledCriteria();
  opts.groundTruth = true;
  opts.threads = 1;

  opts.cacheModel = sweep::CacheModelMode::Simulate;
  double t0 = now();
  auto simulateSerial = sweep::runSweep(*frontend, grid, opts);
  double simulateSec = now() - t0;

  opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  t0 = now();
  auto replaySerial = sweep::runSweep(*frontend, grid, opts);
  double replaySec = now() - t0;
  double speedup = simulateSec / replaySec;

  report::Table sw({"ground-truth engine", "wall-clock (1 thread)", "speedup"});
  sw.addRow({"simulate (per-config cache simulation)", format("%.3f s", simulateSec),
             "1.0x"});
  sw.addRow({"reuse-dist (trace replay)", format("%.3f s", replaySec),
             format("%.0fx", speedup)});
  std::printf("%s\n", sw.str().c_str());

  // --- 3. determinism across thread counts, both modes ---
  bool identical = true;
  for (auto mode : {sweep::CacheModelMode::Simulate, sweep::CacheModelMode::ReuseDist}) {
    opts.cacheModel = mode;
    opts.threads = 1;
    auto serial = mode == sweep::CacheModelMode::Simulate ? simulateSerial : replaySerial;
    opts.threads = 0;
    auto parallel = sweep::runSweep(*frontend, grid, opts);
    bool same = sweep::toCsv(serial) == sweep::toCsv(parallel) &&
                sweep::toMarkdown(serial) == sweep::toMarkdown(parallel);
    std::printf("%s mode: 1-thread vs %d-thread reports byte-identical: %s\n",
                mode == sweep::CacheModelMode::Simulate ? "simulate" : "reuse-dist",
                parallel.threadsUsed, same ? "yes" : "NO — BUG");
    identical = identical && same;
  }
  std::printf("\n");

  bool accuracyOk = worst <= 0.02;
  bool speedupOk = speedup >= 10.0;

  metrics.gauge("trace/configs", static_cast<double>(grid.configCount()));
  metrics.gauge("trace/simulate_seconds", simulateSec);
  metrics.gauge("trace/replay_seconds", replaySec);
  metrics.gauge("trace/speedup", speedup);
  metrics.gauge("trace/worst_missrate_abs_error", worst);
  metrics.gauge("trace/deterministic", identical ? 1 : 0);
  metrics.gauge("trace/accuracy_ok", accuracyOk ? 1 : 0);
  metrics.gauge("trace/speedup_ok", speedupOk ? 1 : 0);

  if (!accuracyOk) {
    std::printf("FAIL: worst miss-rate error %.4f exceeds 0.02\n", worst);
    return 1;
  }
  if (!speedupOk) {
    std::printf("FAIL: replay speedup %.1fx below 10x\n", speedup);
    return 1;
  }
  if (!identical) return 1;
  std::printf("PASS: accuracy <= 2%% abs, replay %.0fx faster, deterministic\n", speedup);
  return 0;
}
