// Future-work extension (paper §VIII, first item): multi-node projection.
//
// Projects SORD's single-node model across node counts on the BG/Q torus and
// a 10x-faster conceptual fabric, reporting the compute/communication split
// and the node count where communication starts to dominate — the kind of
// early co-design answer the paper's framework is meant to give before any
// multi-node system exists.
#include "common.h"
#include "roofline/multinode.h"

using namespace skope;

namespace {

void scalingFor(const roofline::ModelResult& single, const MachineModel& machine,
                const roofline::HaloDecomposition& halo) {
  std::vector<int> counts;
  for (int n = 1; n <= 1024; n *= 2) counts.push_back(n);
  auto scaling = roofline::projectStrongScaling(single, machine, halo, counts);

  std::printf("--- %s (alpha=%.1f us, beta=%.1f GB/s) ---\n", machine.name.c_str(),
              machine.network.linkLatencySec * 1e6, machine.network.linkBandwidthGBs);
  report::Table t({"nodes", "compute s", "comm s", "comm%", "speedup", "efficiency"});
  for (const auto& p : scaling) {
    t.addRow({std::to_string(p.nodes), format("%.6f", p.computeSeconds),
              format("%.6f", p.commSeconds), format("%.1f%%", p.commFraction * 100),
              format("%.1fx", p.speedup), format("%.0f%%", p.parallelEfficiency * 100)});
  }
  std::printf("%s", t.str().c_str());
  int cross = roofline::commDominanceCrossover(scaling);
  if (cross > 0) {
    std::printf("communication dominates from %d nodes on.\n\n", cross);
  } else {
    std::printf("communication never dominates within the sweep.\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetrics metrics("bench_multinode", argc, argv);
  bench::banner("Extension: SORD multi-node strong-scaling projection (§VIII)");

  core::CodesignFramework fw(workloads::sord());
  auto single = fw.project(MachineModel::bgq());

  roofline::HaloDecomposition halo;
  halo.totalCells = fw.params().at("NX") * fw.params().at("NY") * fw.params().at("NZ");
  halo.bytesPerCell = 8;
  halo.fields = 4;  // vx, vy, vz + one stress component cross the boundary
  halo.stepsPerRun = static_cast<int>(fw.params().at("NT"));

  scalingFor(single, MachineModel::bgq(), halo);

  MachineModel fastNet = MachineModel::bgq();
  fastNet.name = "BG/Q + 10x fabric";
  fastNet.network.linkBandwidthGBs *= 10;
  fastNet.network.linkLatencySec /= 10;
  scalingFor(single, fastNet, halo);

  std::printf("co-design reading: the crossover node count is the largest machine\n"
              "this problem size can use efficiently; the 10x fabric moves it out\n"
              "by a predictable factor — computed in milliseconds, with no cluster.\n");
  return 0;
}
