// Unit tests for the MiniC frontend: lexer, parser, sema, printer.
#include <gtest/gtest.h>

#include "minic/builtins.h"
#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "minic/sema.h"

namespace skope::minic {
namespace {

std::unique_ptr<Program> parseOk(std::string_view src) {
  auto p = parseProgram(src, "test.mc");
  analyzeOrThrow(*p);
  return p;
}

void expectSemaError(std::string_view src, std::string_view needle) {
  auto p = parseProgram(src, "test.mc");
  DiagSink diags;
  analyze(*p, diags);
  ASSERT_TRUE(diags.hasErrors()) << "expected error containing '" << needle << "'";
  EXPECT_NE(diags.str().find(needle), std::string::npos) << diags.str();
}

// ---------------- lexer ----------------

TEST(Lexer, BasicTokens) {
  Lexer lex("func void main() { var int x = 1; }", "t");
  auto toks = lex.tokenize();
  ASSERT_GE(toks.size(), 13u);
  EXPECT_EQ(toks[0].kind, Tok::KwFunc);
  EXPECT_EQ(toks[1].kind, Tok::KwVoid);
  EXPECT_EQ(toks[2].kind, Tok::Ident);
  EXPECT_EQ(toks[2].text, "main");
  EXPECT_EQ(toks.back().kind, Tok::Eof);
}

TEST(Lexer, NumbersAndOperators) {
  Lexer lex("1 2.5 1e3 0.5e-2 == != <= >= && || !", "t");
  auto toks = lex.tokenize();
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[1].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(toks[1].numValue, 2.5);
  EXPECT_EQ(toks[2].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(toks[2].numValue, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].numValue, 0.005);
  EXPECT_EQ(toks[4].kind, Tok::EqEq);
  EXPECT_EQ(toks[5].kind, Tok::NotEq);
  EXPECT_EQ(toks[6].kind, Tok::Le);
  EXPECT_EQ(toks[7].kind, Tok::Ge);
  EXPECT_EQ(toks[8].kind, Tok::AmpAmp);
  EXPECT_EQ(toks[9].kind, Tok::PipePipe);
  EXPECT_EQ(toks[10].kind, Tok::Bang);
}

TEST(Lexer, Comments) {
  Lexer lex("1 // line comment\n/* block\ncomment */ 2", "t");
  auto toks = lex.tokenize();
  ASSERT_EQ(toks.size(), 3u);  // 1, 2, EOF
  EXPECT_DOUBLE_EQ(toks[1].numValue, 2.0);
}

TEST(Lexer, LocationTracking) {
  Lexer lex("a\n  b", "t");
  auto toks = lex.tokenize();
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.col, 3u);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(Lexer("$", "t").tokenize(), Error);
  EXPECT_THROW(Lexer("1e+", "t").tokenize(), Error);
  EXPECT_THROW(Lexer("/* unterminated", "t").tokenize(), Error);
  EXPECT_THROW(Lexer("a & b", "t").tokenize(), Error);
}

// ---------------- parser ----------------

TEST(Parser, MinimalProgram) {
  auto p = parseOk("func void main() { }");
  ASSERT_EQ(p->funcs.size(), 1u);
  EXPECT_EQ(p->funcs[0]->name, "main");
  EXPECT_EQ(p->funcs[0]->retType, Type::Void);
}

TEST(Parser, ParamsGlobalsAndFuncs) {
  auto p = parseOk(R"(
    param int N = 16;
    param real ALPHA;
    global real a[N][N];
    global int counter;
    func real f(int i, real x) { return x + i; }
    func void main() { var real y = f(1, 2.0); }
  )");
  ASSERT_EQ(p->params.size(), 2u);
  EXPECT_EQ(p->params[0].name, "N");
  ASSERT_TRUE(p->params[0].defaultValue.has_value());
  EXPECT_DOUBLE_EQ(*p->params[0].defaultValue, 16.0);
  EXPECT_FALSE(p->params[1].defaultValue.has_value());
  ASSERT_EQ(p->globals.size(), 2u);
  EXPECT_TRUE(p->globals[0].isArray());
  EXPECT_EQ(p->globals[0].dims.size(), 2u);
  EXPECT_FALSE(p->globals[1].isArray());
  ASSERT_EQ(p->funcs.size(), 2u);
  ASSERT_EQ(p->funcs[0]->params.size(), 2u);
}

TEST(Parser, ControlFlow) {
  auto p = parseOk(R"(
    param int N = 4;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) {
        if (a[i] > 0.5) { a[i] = 0.0; } else { continue; }
      }
      while (a[0] < 1.0) {
        a[0] = a[0] + 0.25;
        if (a[0] > 0.9) { break; }
      }
    }
  )");
  const auto& body = p->funcs[0]->body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[1]->kind, StmtKind::For);
  EXPECT_EQ(body[2]->kind, StmtKind::While);
  EXPECT_EQ(body[1]->body[0]->kind, StmtKind::If);
  EXPECT_EQ(body[1]->body[0]->elseBody[0]->kind, StmtKind::Continue);
}

TEST(Parser, ElseIfChain) {
  auto p = parseOk(R"(
    func void main() {
      var int x = 1;
      if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
    }
  )");
  const auto& ifStmt = p->funcs[0]->body[1];
  ASSERT_EQ(ifStmt->elseBody.size(), 1u);
  EXPECT_EQ(ifStmt->elseBody[0]->kind, StmtKind::If);
}

TEST(Parser, NodeIdsUnique) {
  auto p = parseOk("func void main() { var int i; for (i=0;i<3;i=i+1) { i = i; } }");
  std::vector<NodeId> ids;
  forEachStmt(p->funcs[0]->body, [&](const StmtNode& s) { ids.push_back(s.id); });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parseProgram("func void main( { }"), Error);
  EXPECT_THROW(parseProgram("func void main() { var int; }"), Error);
  EXPECT_THROW(parseProgram("banana"), Error);
  EXPECT_THROW(parseProgram("func void main() { for (1; 2; 3) {} }"), Error);
  EXPECT_THROW(parseProgram("param int N = x;"), Error);
  EXPECT_THROW(parseProgram("global real a[2][2][2][2];"), Error);
}

// ---------------- sema ----------------

TEST(Sema, RequiresMain) { expectSemaError("func void notmain() { }", "no 'main'"); }

TEST(Sema, MainSignature) {
  expectSemaError("func void main(int x) { }", "must take no parameters");
  expectSemaError("func int main() { return 1; }", "must return void");
}

TEST(Sema, UndeclaredVariable) {
  expectSemaError("func void main() { x = 1; }", "undeclared");
  expectSemaError("func void main() { var int y = x + 1; }", "undeclared");
}

TEST(Sema, DuplicateNames) {
  expectSemaError("param int N; global real N[4]; func void main() { }", "redefines");
  expectSemaError("func void main() { var int x; var real x; }", "redeclaration");
}

TEST(Sema, ParamReadOnly) {
  expectSemaError("param int N = 1; func void main() { N = 2; }", "read-only");
}

TEST(Sema, BreakOutsideLoop) {
  expectSemaError("func void main() { break; }", "outside of a loop");
  expectSemaError("func void main() { continue; }", "outside of a loop");
}

TEST(Sema, ArrayChecks) {
  expectSemaError("global real a[4]; func void main() { a[0][1] = 1.0; }", "dimension");
  expectSemaError("global real a[4]; func void main() { var real x = a; }",
                  "without indices");
  expectSemaError("global real a[4]; func void main() { a = 1.0; }", "whole array");
  expectSemaError("global real a[4]; func void main() { a[0.5] = 1.0; }", "must be int");
}

TEST(Sema, ArrayDimsReferenceParamsOnly) {
  expectSemaError("global int x; global real a[x]; func void main() { }",
                  "may only reference params");
}

TEST(Sema, ModRequiresInt) {
  expectSemaError("func void main() { var real x = 1.5 % 2.0; }", "must be int");
}

TEST(Sema, CallChecks) {
  expectSemaError("func void main() { undefined_fn(); }", "undeclared function");
  expectSemaError("func real f(int a) { return a; } func void main() { var real x = f(); }",
                  "expects 1 argument");
  expectSemaError("func void main() { var real x = exp(); }", "expects 1 argument");
}

TEST(Sema, TypesInferred) {
  auto p = parseOk(R"(
    param int N = 2;
    global real a[N];
    func void main() {
      var int i = 1;
      var real x = a[i] * 2.0 + i;
    }
  )");
  // the initializer of x is Real because one operand is Real
  const auto& decl = p->funcs[0]->body[1];
  EXPECT_EQ(decl->rhs->type, Type::Real);
}

TEST(Sema, ReturnTypeChecks) {
  expectSemaError("func void f() { return 1; } func void main() { }", "returns a value");
  expectSemaError("func int f() { return; } func void main() { }", "returns nothing");
}

TEST(Sema, LocalShadowingRejected) {
  expectSemaError("param int N = 1; func void main() { var int N; }", "shadows");
}

// ---------------- builtins ----------------

TEST(Builtins, TableLookup) {
  EXPECT_GE(findBuiltin("exp"), 0);
  EXPECT_GE(findBuiltin("rand"), 0);
  EXPECT_EQ(findBuiltin("nope"), -1);
  const auto& info = builtinTable()[static_cast<size_t>(findBuiltin("pow"))];
  EXPECT_EQ(info.arity, 2);
  EXPECT_TRUE(info.isLibraryCall);
  const auto& fabsInfo = builtinTable()[static_cast<size_t>(findBuiltin("fabs"))];
  EXPECT_FALSE(fabsInfo.isLibraryCall);
}

// ---------------- printer ----------------

TEST(Printer, RoundTripParses) {
  auto p = parseOk(R"(
    param int N = 8;
    global real a[N][N];
    func real avg(int n) {
      var real s = 0.0;
      var int i;
      for (i = 0; i < n; i = i + 1) {
        var int j;
        for (j = 0; j < n; j = j + 1) {
          s = s + a[i][j];
        }
      }
      return s / (n * n);
    }
    func void main() {
      var real m = avg(N);
      if (m > 0.5 && m < 1.0) { a[0][0] = m; } else { a[0][0] = 0.0; }
      while (a[0][0] < 0.1) { a[0][0] = a[0][0] + 0.05; }
    }
  )");
  std::string printed = printProgram(*p);
  auto p2 = parseProgram(printed, "printed.mc");
  EXPECT_NO_THROW(analyzeOrThrow(*p2));
  // printing the reparsed program must be a fixed point
  EXPECT_EQ(printProgram(*p2), printed);
}

TEST(Program, CountStatements) {
  auto p = parseOk("func void main() { var int i; for (i=0;i<3;i=i+1) { i = i; } }");
  // function header + vardecl + for + init + step + body assign = 6
  EXPECT_EQ(p->countStatements(), 6u);
}

}  // namespace
}  // namespace skope::minic
