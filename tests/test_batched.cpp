// Batched back-end contracts: the node-major grid evaluation must be
// indistinguishable from the scalar reference —
//   1. equivalence: for every workload, a batched sweep's ConfigOutcome
//      vector (and both rendered reports) equals the scalar sweep's exactly,
//      with and without the trace-informed roofline and ground truth;
//   2. memoization: the geometry memo does exactly one cache-model
//      evaluation per distinct (L1, LLC) geometry pair, counted by the
//      "sweep/memo-hit" / "sweep/memo-miss" telemetry counters;
//   3. the supporting pieces: bet::flatten preorder, the deterministic
//      tie rule for the bound label, and the sharded reuse-distance
//      histogram construction matching the serial one.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bet/bet.h"
#include "core/backend.h"
#include "machine/grid.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "telemetry/telemetry.h"
#include "trace/reuse.h"

namespace skope::sweep {
namespace {

hotspot::SelectionCriteria scaledCriteria() { return {0.90, 0.45}; }

/// One front-end per workload for the whole binary (profiling runs are the
/// expensive part; every test reads them concurrently-safely).
const core::WorkloadFrontend& frontendFor(const std::string& name) {
  static std::map<std::string, std::shared_ptr<const core::WorkloadFrontend>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, core::loadFrontend(name)).first;
  return *it->second;
}

/// Mixed axes: one cache-geometry axis (2 distinct L1 geometries) plus two
/// non-geometry axes — 8 configs total.
MachineGrid mixedGrid() {
  return parseGridSpec("base=bgq; l1kb=16,32; membw=20,40; freq=1.0,1.4");
}

/// Full field-by-field equality of two sweeps' outcome vectors. EXPECT_EQ on
/// the doubles: the batched back-end claims bit-identical results, not
/// merely close ones.
void expectOutcomesEqual(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.baseProjectedSeconds, b.baseProjectedSeconds);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    const ConfigOutcome& x = a.outcomes[i];
    const ConfigOutcome& y = b.outcomes[i];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.config, y.config);
    EXPECT_EQ(x.projectedSeconds, y.projectedSeconds) << x.config;
    EXPECT_EQ(x.speedupVsBase, y.speedupVsBase) << x.config;
    EXPECT_EQ(x.coverage, y.coverage) << x.config;
    EXPECT_EQ(x.leanness, y.leanness) << x.config;
    EXPECT_EQ(x.spotCount, y.spotCount) << x.config;
    EXPECT_EQ(x.topSpots, y.topSpots) << x.config;
    EXPECT_EQ(x.topBound, y.topBound) << x.config;
    EXPECT_EQ(x.hotPathNodes, y.hotPathNodes) << x.config;
    EXPECT_EQ(x.hotSpotInstances, y.hotSpotInstances) << x.config;
    EXPECT_EQ(x.measuredSeconds, y.measuredSeconds) << x.config;
    EXPECT_EQ(x.quality, y.quality) << x.config;
  }
}

// ---------------------------------------------------- scalar == batched

class BatchedEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchedEquivalence, MatchesScalarOutcomes) {
  const auto& fe = frontendFor(GetParam());
  SweepOptions opts;
  opts.threads = 2;
  opts.criteria = scaledCriteria();
  opts.hotPaths = true;
  for (bool traceRoofline : {false, true}) {
    if (traceRoofline && !fe.memoryTrace().usable()) continue;
    opts.traceInformedRoofline = traceRoofline;
    opts.cacheModel =
        traceRoofline ? CacheModelMode::ReuseDist : CacheModelMode::Simulate;

    opts.backend = SweepBackend::Scalar;
    auto scalar = runSweep(fe, mixedGrid(), opts);
    opts.backend = SweepBackend::Batched;
    auto batched = runSweep(fe, mixedGrid(), opts);

    expectOutcomesEqual(scalar, batched);
    EXPECT_EQ(toCsv(scalar), toCsv(batched)) << "trace-roofline=" << traceRoofline;
    EXPECT_EQ(toMarkdown(scalar), toMarkdown(batched))
        << "trace-roofline=" << traceRoofline;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, BatchedEquivalence,
                         ::testing::Values("sord", "chargei", "srad", "cfd",
                                           "stassuij"));

TEST(Batched, GroundTruthReplayMatchesScalar) {
  const auto& fe = frontendFor("sord");
  auto grid = parseGridSpec("base=bgq; l1kb=16,32; membw=30,60");
  SweepOptions opts;
  opts.threads = 1;
  opts.criteria = scaledCriteria();
  opts.groundTruth = true;
  opts.cacheModel = CacheModelMode::ReuseDist;
  opts.traceInformedRoofline = true;

  opts.backend = SweepBackend::Scalar;
  auto scalar = runSweep(fe, grid, opts);
  opts.backend = SweepBackend::Batched;
  auto batched = runSweep(fe, grid, opts);

  ASSERT_TRUE(scalar.outcomes.front().measuredSeconds.has_value());
  expectOutcomesEqual(scalar, batched);
}

TEST(Batched, GridModelsAreBitIdenticalToScalar) {
  const auto& fe = frontendFor("sord");
  auto configs = mixedGrid().expand();
  std::vector<MachineModel> machines;
  for (const auto& c : configs) machines.push_back(c.machine);

  core::BackendOptions opts;
  opts.criteria = scaledCriteria();
  core::GridBackend backend(fe, machines, opts);
  ASSERT_EQ(backend.size(), machines.size());
  for (size_t i = 0; i < machines.size(); ++i) {
    auto scalar = core::evaluateMachine(fe, machines[i], opts);
    const auto& model = backend.models()[i];
    EXPECT_EQ(model.totalSeconds, scalar.model.totalSeconds) << machines[i].name;
    ASSERT_EQ(model.blocks.size(), scalar.model.blocks.size());
    for (const auto& [origin, sb] : scalar.model.blocks) {
      const auto& bb = model.blocks.at(origin);
      EXPECT_EQ(bb.label, sb.label);
      EXPECT_EQ(bb.enr, sb.enr) << sb.label;
      EXPECT_EQ(bb.tcSeconds, sb.tcSeconds) << sb.label;
      EXPECT_EQ(bb.tmSeconds, sb.tmSeconds) << sb.label;
      EXPECT_EQ(bb.toSeconds, sb.toSeconds) << sb.label;
      EXPECT_EQ(bb.seconds, sb.seconds) << sb.label;
      EXPECT_EQ(bb.fraction, sb.fraction) << sb.label;
      EXPECT_EQ(bb.staticInstrs, sb.staticInstrs) << sb.label;
      EXPECT_EQ(bb.isComm, sb.isComm) << sb.label;
      EXPECT_EQ(bb.commBytes, sb.commBytes) << sb.label;
    }
  }
}

TEST(Batched, SingleConfigGridFallsBackToScalar) {
  const auto& fe = frontendFor("sord");
  core::BackendOptions opts;
  opts.criteria = scaledCriteria();
  opts.wantHotPath = true;
  std::vector<MachineModel> one{machineByName("bgq")};
  auto evs = core::evaluateMachineGrid(fe, one, opts);
  ASSERT_EQ(evs.size(), 1u);
  // The scalar fallback keeps the renderings the batched path skips.
  EXPECT_FALSE(evs[0].hotPathText.empty());
  EXPECT_FALSE(evs[0].annotations.empty());
  auto scalar = core::evaluateMachine(fe, one[0], opts);
  EXPECT_EQ(evs[0].model.totalSeconds, scalar.model.totalSeconds);
  EXPECT_EQ(evs[0].hotPathText, scalar.hotPathText);
}

// ----------------------------------------------------- geometry memoization

TEST(Batched, GeometryMemoCountsHitsAndMisses) {
  auto& reg = telemetry::Registry::global();
  bool wasEnabled = reg.enabled();
  reg.setEnabled(true);
  reg.counter("sweep/memo-hit").reset();
  reg.counter("sweep/memo-miss").reset();
  reg.counter("roofline/batched-nodes").reset();

  SweepOptions opts;
  opts.threads = 1;
  opts.criteria = scaledCriteria();
  opts.traceInformedRoofline = true;
  opts.cacheModel = CacheModelMode::ReuseDist;
  opts.backend = SweepBackend::Batched;
  // 8 configs, 2 distinct L1 geometries (the membw / freq axes do not touch
  // the caches): exactly 2 misses, configs - 2 hits.
  runSweep(frontendFor("sord"), mixedGrid(), opts);

  EXPECT_EQ(reg.counter("sweep/memo-miss").value(), 2u);
  EXPECT_EQ(reg.counter("sweep/memo-hit").value(), 8u - 2u);
  EXPECT_GT(reg.counter("roofline/batched-nodes").value(), 0u);
  reg.setEnabled(wasEnabled);
}

// ------------------------------------------------------- supporting pieces

TEST(Batched, FlattenIsPreorderWithParents) {
  const auto& bet = frontendFor("sord").bet();
  auto flat = bet::flatten(bet);
  ASSERT_GT(flat.size(), 0u);
  ASSERT_EQ(flat.size(), bet.size());

  std::vector<const bet::BetNode*> visitOrder;
  bet.root->visit([&](const bet::BetNode& n) { visitOrder.push_back(&n); });
  EXPECT_EQ(flat.nodes, visitOrder);  // flatten IS the visit() preorder

  ASSERT_EQ(flat.parent.size(), flat.size());
  EXPECT_EQ(flat.parent[0], -1);
  for (size_t i = 1; i < flat.size(); ++i) {
    ASSERT_GE(flat.parent[i], 0) << i;
    ASSERT_LT(flat.parent[i], static_cast<int32_t>(i)) << i;  // parents precede kids
    const bet::BetNode* p = flat.nodes[static_cast<size_t>(flat.parent[i])];
    bool isChild = false;
    for (const auto& k : p->kids) {
      if (k.get() == flat.nodes[i]) isChild = true;
    }
    EXPECT_TRUE(isChild) << "node " << i << " not a child of its parent index";
  }
}

TEST(Batched, EmptyBetFlattensEmpty) {
  bet::Bet empty;
  auto flat = bet::flatten(empty);
  EXPECT_EQ(flat.size(), 0u);
}

TEST(Batched, TopBoundTieReportsMemory) {
  // tm == tc is a legitimate model outcome (e.g. a block sitting exactly on
  // the roofline ridge); the label must not depend on FP rounding luck.
  EXPECT_EQ(boundLabel(1.0, 1.0), "memory");
  EXPECT_EQ(boundLabel(0.0, 0.0), "memory");
  EXPECT_EQ(boundLabel(2.0, 1.0), "memory");
  EXPECT_EQ(boundLabel(1.0, 2.0), "compute");
}

TEST(Batched, ShardedReuseHistogramsMatchSerial) {
  const auto& trace = frontendFor("sord").memoryTrace();
  ASSERT_TRUE(trace.usable());
  trace::ReuseDistanceAnalyzer serial(trace, 1);
  trace::ReuseDistanceAnalyzer sharded(trace, 4);
  for (uint32_t line : {32u, 64u, 128u}) {
    const auto& a = serial.histograms(line);
    const auto& b = sharded.histograms(line);
    EXPECT_EQ(a.lineBytes, b.lineBytes);
    EXPECT_EQ(a.totalRefs, b.totalRefs);
    EXPECT_EQ(a.totalCold, b.totalCold);
    ASSERT_EQ(a.regions.size(), b.regions.size()) << line;
    for (size_t i = 0; i < a.regions.size(); ++i) {
      EXPECT_EQ(a.regions[i].region, b.regions[i].region);
      EXPECT_EQ(a.regions[i].coldRefs, b.regions[i].coldRefs);
      EXPECT_EQ(a.regions[i].totalRefs, b.regions[i].totalRefs);
      EXPECT_EQ(a.regions[i].dist, b.regions[i].dist)
          << "line " << line << " region " << a.regions[i].region;
    }
  }
}

}  // namespace
}  // namespace skope::sweep
