// Fault-isolation contracts: cancellation tokens, the deterministic
// fault-injection registry, the pool's per-task exception barrier, and the
// sweep-level guarantees they combine into —
//   1. one bad config is one non-Ok row, never a dead sweep;
//   2. rows that did evaluate are byte-identical to a fault-free run
//      (compared by config name — which configs fail varies with thread
//      interleaving, what the survivors report must not);
//   3. a deadline expiring mid-grid drains into Timeout rows instead of
//      escaping runSweep or deadlocking the pool.
// See docs/ROBUSTNESS.md for the status schema these tests pin down.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "machine/grid.h"
#include "parallel/pool.h"
#include "support/cancel.h"
#include "support/faultinject.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "telemetry/telemetry.h"

namespace skope {
namespace {

using parallel::WorkStealingPool;

// ------------------------------------------------------------- CancelToken

TEST(CancelToken, NullTokenNeverExpires) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.expired());
  EXPECT_EQ(t.reason(), CancelReason::None);
  EXPECT_NO_THROW(t.throwIfExpired("test"));
  t.cancel();  // no-op on the null token
  EXPECT_FALSE(t.expired());
}

TEST(CancelToken, CancelPropagatesToChildrenNotParents) {
  CancelToken parent = CancelToken::cancellable();
  CancelToken child = parent.childWithTimeoutMs(0);
  EXPECT_FALSE(parent.expired());
  EXPECT_FALSE(child.expired());

  // Child cancellation stays scoped to the child.
  child.cancel();
  EXPECT_TRUE(child.expired());
  EXPECT_FALSE(parent.expired());

  // Parent cancellation reaches every derived token.
  CancelToken sibling = parent.childWithTimeoutMs(0);
  parent.cancel();
  EXPECT_TRUE(parent.expired());
  EXPECT_TRUE(sibling.expired());
  EXPECT_EQ(sibling.reason(), CancelReason::Cancelled);
}

TEST(CancelToken, DeadlineExpiryThrowsWithReason) {
  CancelToken t = CancelToken::withTimeoutMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(t.expired());
  EXPECT_EQ(t.reason(), CancelReason::DeadlineExceeded);
  try {
    t.throwIfExpired("vm");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::DeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("vm"), std::string::npos) << e.what();
  }
}

TEST(CancelToken, ChildrenTightenButNeverLoosenDeadlines) {
  CancelToken loose = CancelToken::withTimeoutMs(1000000);
  CancelToken tightened = loose.childWithTimeoutMs(1);
  EXPECT_LT(tightened.deadline(), loose.deadline());

  CancelToken tight = CancelToken::withTimeoutMs(1);
  CancelToken wouldLoosen = tight.childWithTimeoutMs(1000000);
  EXPECT_EQ(wouldLoosen.deadline(), tight.deadline());
}

TEST(CancelToken, TimeoutZeroMeansNoDeadline) {
  CancelToken t = CancelToken::withTimeoutMs(0);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.deadline(), CancelToken::Clock::time_point::max());
  EXPECT_FALSE(t.expired());
}

// --------------------------------------------------------- fault injection

TEST(FaultInject, ParsesSpecGrammar) {
  EXPECT_TRUE(faultinject::parseFaultSpec("").empty());

  auto specs = faultinject::parseFaultSpec("pool/task:0.05:7");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].point, "pool/task");
  EXPECT_DOUBLE_EQ(specs[0].rate, 0.05);
  EXPECT_EQ(specs[0].seed, 7u);

  specs = faultinject::parseFaultSpec("a:0:1,trace/record:1:42");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].point, "trace/record");
  EXPECT_DOUBLE_EQ(specs[1].rate, 1.0);

  EXPECT_THROW(faultinject::parseFaultSpec("pool/task"), Error);        // no fields
  EXPECT_THROW(faultinject::parseFaultSpec("pool/task:0.5"), Error);    // no seed
  EXPECT_THROW(faultinject::parseFaultSpec("pool/task:2:1"), Error);    // rate > 1
  EXPECT_THROW(faultinject::parseFaultSpec("pool/task:-0.1:1"), Error); // rate < 0
  EXPECT_THROW(faultinject::parseFaultSpec("pool/task:x:1"), Error);    // bad rate
  EXPECT_THROW(faultinject::parseFaultSpec("pool/task:0.5:zz"), Error); // bad seed
}

TEST(FaultInject, FiringIsDeterministicPerInvocationIndex) {
  // The decision depends only on (n, rate, seed) — re-asking gives the same
  // answer, which is what makes fault counts reproducible across thread
  // interleavings.
  for (uint64_t n = 0; n < 200; ++n) {
    EXPECT_EQ(faultinject::wouldFire(n, 0.3, 7), faultinject::wouldFire(n, 0.3, 7));
    EXPECT_FALSE(faultinject::wouldFire(n, 0.0, 7));
    EXPECT_TRUE(faultinject::wouldFire(n, 1.0, 7));
  }
  // The empirical rate over many invocations tracks the configured rate.
  uint64_t fired = 0;
  constexpr uint64_t kN = 20000;
  for (uint64_t n = 0; n < kN; ++n) fired += faultinject::wouldFire(n, 0.05, 9) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fired) / kN, 0.05, 0.01);
}

TEST(FaultInject, RegistryArmsFiresAndClears) {
  EXPECT_FALSE(faultinject::armed());
  faultinject::configure("test/point:1:1");
  EXPECT_TRUE(faultinject::armed());

  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    SKOPE_FAULT_POINT("test/point", ++fired);
    SKOPE_FAULT_POINT("test/other", FAIL() << "unarmed point fired");
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(faultinject::firedCount("test/point"), 5u);

  faultinject::clear();
  EXPECT_FALSE(faultinject::armed());
  EXPECT_EQ(faultinject::firedCount("test/point"), 0u);
  SKOPE_FAULT_POINT("test/point", FAIL() << "cleared point fired");
}

// ---------------------------------------------------- pool exception barrier

TEST(Pool, ThrowingTaskNeitherDeadlocksNorSkipsWork) {
  WorkStealingPool pool(4);
  constexpr size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  std::mutex mu;
  std::vector<size_t> failed;
  std::atomic<size_t> doneCalls{0};

  pool.run(
      kTasks,
      [&](size_t i) {
        if (i % 10 == 3) throw Error("boom " + std::to_string(i));
        hits[i].fetch_add(1);
      },
      [&](size_t done, size_t total) {
        EXPECT_EQ(total, kTasks);
        EXPECT_GE(done, 1u);
        doneCalls.fetch_add(1);
      },
      [&](size_t index, std::exception_ptr error) {
        ASSERT_TRUE(error != nullptr);
        std::lock_guard<std::mutex> lock(mu);
        failed.push_back(index);
      });

  // Every non-throwing task ran exactly once; every throwing one reported.
  EXPECT_EQ(failed.size(), kTasks / 10);
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), i % 10 == 3 ? 0 : 1) << "task " << i;
  }
  // Failed tasks still count toward completion (progress bars reach 100%).
  EXPECT_EQ(doneCalls.load(), kTasks);
}

TEST(Pool, SerialPoolHonorsErrorBarrier) {
  WorkStealingPool pool(1);
  std::vector<size_t> ran, failed;
  pool.run(
      6, [&](size_t i) { if (i == 2 || i == 4) throw Error("boom"); ran.push_back(i); },
      {}, [&](size_t index, std::exception_ptr) { failed.push_back(index); });
  EXPECT_EQ(ran, (std::vector<size_t>{0, 1, 3, 5}));
  EXPECT_EQ(failed, (std::vector<size_t>{2, 4}));
}

TEST(Pool, AbortPathStillJoinsAndPoolStaysUsable) {
  WorkStealingPool pool(3);
  // Without an error barrier the first exception aborts and rethrows ...
  EXPECT_THROW(pool.run(64, [&](size_t i) { if (i == 9) throw Error("boom"); }),
               Error);
  // ... but the pool spawned-and-joined cleanly: the next batch works.
  std::atomic<int> ran{0};
  pool.run(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}

// ------------------------------------------------------ sweep fault isolation

/// One shared SORD front-end for the whole binary (profiling once is the
/// point of the artifact).
const core::WorkloadFrontend& sordFrontend() {
  static std::shared_ptr<const core::WorkloadFrontend> fe = core::loadFrontend("sord");
  return *fe;
}

MachineGrid faultGrid() {
  return parseGridSpec("base=bgq; membw=15,30,45,60; peakflops=2,4,8; memlat=120,240");
}

/// CSV data rows keyed by quoted config name, with the leading rank field
/// stripped (fault injection shifts ranks; the per-config payload must not
/// move).
std::map<std::string, std::string> rowsByConfig(const std::string& csv) {
  std::map<std::string, std::string> rows;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t eol = csv.find('\n', pos);
    if (eol == std::string::npos) eol = csv.size();
    std::string line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    size_t comma = line.find(',');
    if (comma == std::string::npos || line.compare(0, 4, "rank") == 0) continue;
    std::string rest = line.substr(comma + 1);  // "config",...
    size_t q2 = rest.find('"', 1);
    if (rest.empty() || rest[0] != '"' || q2 == std::string::npos) continue;
    rows[rest.substr(1, q2 - 1)] = rest;
  }
  return rows;
}

TEST(SweepFaults, InjectedTaskFaultsBecomeErrorRowsNotAbortedSweeps) {
  sweep::SweepOptions opts;
  opts.threads = 4;

  auto clean = sweep::runSweep(sordFrontend(), faultGrid(), opts);
  EXPECT_EQ(clean.countWithStatus(sweep::ConfigStatus::Error), 0u);

  faultinject::configure("pool/task:0.2:7");
  auto faulty = sweep::runSweep(sordFrontend(), faultGrid(), opts);
  uint64_t fired = faultinject::firedCount("pool/task");
  faultinject::clear();

  ASSERT_EQ(faulty.outcomes.size(), clean.outcomes.size());
  EXPECT_GE(fired, 1u) << "0.2 over 24 configs should fire at least once";
  EXPECT_EQ(faulty.countWithStatus(sweep::ConfigStatus::Error), fired);
  for (const auto& o : faulty.outcomes) {
    if (o.status == sweep::ConfigStatus::Error) {
      EXPECT_NE(o.error.find("fault injected: pool/task"), std::string::npos)
          << o.error;
    }
  }

  // Survivor rows are byte-identical to the fault-free run, keyed by config
  // name (rank stripped: failures shift ranks, never payloads).
  auto cleanRows = rowsByConfig(sweep::toCsv(clean));
  auto faultyRows = rowsByConfig(sweep::toCsv(faulty));
  ASSERT_EQ(cleanRows.size(), faulty.outcomes.size());
  size_t okRows = 0;
  for (const auto& o : faulty.outcomes) {
    if (o.status != sweep::ConfigStatus::Ok) continue;
    ++okRows;
    ASSERT_TRUE(cleanRows.count(o.config)) << o.config;
    EXPECT_EQ(faultyRows.at(o.config), cleanRows.at(o.config)) << o.config;
  }
  EXPECT_EQ(okRows, faulty.outcomes.size() - fired);

  // Reports render the failures without dying: the markdown gets an
  // unranked-configs section, the CSV a status column.
  if (fired > 0) {
    EXPECT_NE(sweep::toMarkdown(faulty).find("unranked configs"), std::string::npos);
    EXPECT_NE(sweep::toCsv(faulty).find(",error,fault injected"), std::string::npos);
  }
}

TEST(SweepFaults, CancelMidGridDrainsIntoTimeoutRows) {
  sweep::SweepOptions opts;
  opts.threads = 1;  // deterministic: configs complete in grid order
  CancelToken root = CancelToken::cancellable();
  opts.cancel = root;
  opts.progress = [&](size_t done, size_t) {
    if (done == 3) root.cancel();  // expire mid-grid
  };

  auto result = sweep::runSweep(sordFrontend(), faultGrid(), opts);
  ASSERT_EQ(result.outcomes.size(), 24u);
  EXPECT_EQ(result.countWithStatus(sweep::ConfigStatus::Ok), 3u);
  EXPECT_EQ(result.countWithStatus(sweep::ConfigStatus::Timeout), 21u);
  for (const auto& o : result.outcomes) {
    if (o.status == sweep::ConfigStatus::Timeout) {
      EXPECT_FALSE(o.error.empty());
      EXPECT_EQ(o.projectedSeconds, 0.0);
    }
  }

  // ranked() keeps the three evaluated configs first; timeouts follow in
  // grid order with rank "-" in the CSV.
  auto order = result.ranked();
  ASSERT_EQ(order.size(), 24u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.outcomes[order[i]].status, sweep::ConfigStatus::Ok);
  }
  for (size_t i = 4; i < order.size(); ++i) {
    EXPECT_GT(order[i], order[i - 1]) << "timeouts must keep grid order";
  }
}

TEST(SweepFaults, DeadlineKilledRowsCarryFlightRecorderDump) {
  // A sweep under a telemetry Context: when the deadline cuts a config off,
  // its outcome row must carry the flight recorder's tail (the "what was
  // happening right before" black-box dump), and the markdown report must
  // render it under the unranked section when asked to.
  telemetry::Context ctx("req-deadline");
  sweep::SweepOptions opts;
  opts.threads = 1;  // deterministic: configs complete in grid order
  CancelToken root = CancelToken::cancellable();
  opts.cancel = root;
  opts.progress = [&](size_t done, size_t) {
    if (done == 2) root.cancel();
  };

  auto result = sweep::runSweep(sordFrontend(), faultGrid(), opts);
  ASSERT_EQ(result.countWithStatus(sweep::ConfigStatus::Timeout), 22u);
  for (const auto& o : result.outcomes) {
    if (o.status == sweep::ConfigStatus::Ok) {
      EXPECT_TRUE(o.lastEvents.empty());  // dumps accompany failures only
      EXPECT_GT(o.evalMs, 0.0);           // evaluated rows carry attribution
    } else {
      ASSERT_FALSE(o.lastEvents.empty()) << o.config;
      // The classifier appends the failure itself before capturing the tail,
      // so the last line names this config's timeout.
      EXPECT_NE(o.lastEvents.back().find("sweep/timeout"), std::string::npos)
          << o.lastEvents.back();
      EXPECT_NE(o.lastEvents.back().find(o.config), std::string::npos)
          << o.lastEvents.back();
    }
  }

  // Default reports stay on the deterministic surface: no eval_ms column,
  // no flight trace. The opt-in flags add both.
  std::string plainCsv = sweep::toCsv(result);
  EXPECT_EQ(plainCsv.find("eval_ms"), std::string::npos);
  std::string plainMd = sweep::toMarkdown(result);
  EXPECT_EQ(plainMd.find("last events"), std::string::npos);

  sweep::ReportOptions ropts;
  ropts.evalMs = true;
  ropts.flightTrace = true;
  std::string csv = sweep::toCsv(result, ropts);
  EXPECT_NE(csv.find(",eval_ms"), std::string::npos);
  std::string md = sweep::toMarkdown(result, 0, ropts);
  EXPECT_NE(md.find("eval ms"), std::string::npos);
  EXPECT_NE(md.find("last events:"), std::string::npos);
  EXPECT_NE(md.find("sweep/timeout"), std::string::npos);
}

TEST(SweepFaults, PerConfigTimeoutCannotStallTheSweep) {
  // An aggressive per-config budget with the ground-truth simulator: some
  // configs may finish, the rest must land as Timeout — never a hang and
  // never an escape from runSweep.
  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.groundTruth = true;
  opts.configTimeoutMs = 1;
  auto result =
      sweep::runSweep(sordFrontend(), parseGridSpec("membw=15,30; peakflops=2,4"), opts);
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (const auto& o : result.outcomes) {
    EXPECT_TRUE(o.status == sweep::ConfigStatus::Ok ||
                o.status == sweep::ConfigStatus::Timeout)
        << configStatusLabel(o.status);
  }
}

TEST(SweepFaults, TraceBudgetDegradesReuseDistWithProvenance) {
  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.groundTruth = true;
  opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  opts.traceBudgetBytes = 1;  // any real trace exceeds one byte

  auto result =
      sweep::runSweep(sordFrontend(), parseGridSpec("membw=15,30"), opts);
  EXPECT_TRUE(result.missModel == "reuse-dist:layer-cond-fallback" ||
              result.missModel == "reuse-dist:constant-fallback")
      << result.missModel;
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const auto& o : result.outcomes) {
    EXPECT_EQ(o.status, sweep::ConfigStatus::Degraded);
    EXPECT_NE(o.error.find("reuse-dist degraded"), std::string::npos) << o.error;
    EXPECT_GT(o.projectedSeconds, 0.0);  // degraded configs still evaluate
  }
  // Degraded rows stay rankable.
  EXPECT_EQ(result.ranked().size(), 2u);
  EXPECT_GT(result.outcomes[result.ranked()[0]].projectedSeconds, 0.0);
}

TEST(SweepFaults, ReplayOpsBudgetDegradesToo) {
  sweep::SweepOptions opts;
  opts.threads = 1;
  opts.groundTruth = true;
  opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  opts.replayBudgetOps = 1;

  auto result = sweep::runSweep(sordFrontend(), parseGridSpec("membw=15"), opts);
  EXPECT_EQ(result.countWithStatus(sweep::ConfigStatus::Degraded), 1u);
  EXPECT_NE(result.missModel.find("reuse-dist:"), std::string::npos)
      << result.missModel;
}

}  // namespace
}  // namespace skope
