// Unit tests for semi-analytic library function modeling (§IV-C).
#include <gtest/gtest.h>

#include <cmath>

#include "libmodel/libmodel.h"
#include "minic/builtins.h"

namespace skope::libmodel {
namespace {

TEST(LibModel, ProfilesAllKernels) {
  LibProfile p = profileLibraryFunctions(32, 7);
  for (const char* name : {"exp", "log", "sqrt", "sin", "cos", "pow", "rand"}) {
    int bi = minic::findBuiltin(name);
    ASSERT_GE(bi, 0) << name;
    EXPECT_TRUE(p.has(bi)) << name;
    EXPECT_EQ(p.samples.at(bi), 32u) << name;
  }
}

TEST(LibModel, MixesAreNonTrivial) {
  LibProfile p = profileLibraryFunctions(32, 7);
  const auto& exp = p.mixes.at(minic::findBuiltin("exp"));
  // polynomial core: a couple dozen flops per call on average
  EXPECT_GT(exp.totalFlops(), 8.0);
  EXPECT_GT(exp.iops, 2.0);
  const auto& rand = p.mixes.at(minic::findBuiltin("rand"));
  EXPECT_GT(rand.iops, 2.0);      // LCG is integer-dominated
  EXPECT_LT(rand.totalFlops(), exp.totalFlops());
}

TEST(LibModel, PowIncludesExpAndLog) {
  LibProfile p = profileLibraryFunctions(32, 7);
  double powFlops = p.mixes.at(minic::findBuiltin("pow")).totalFlops();
  double expFlops = p.mixes.at(minic::findBuiltin("exp")).totalFlops();
  double logFlops = p.mixes.at(minic::findBuiltin("log")).totalFlops();
  EXPECT_GT(powFlops, expFlops);
  EXPECT_GT(powFlops, logFlops);
}

TEST(LibModel, DeterministicForSeed) {
  LibProfile a = profileLibraryFunctions(16, 3);
  LibProfile b = profileLibraryFunctions(16, 3);
  int bi = minic::findBuiltin("exp");
  EXPECT_DOUBLE_EQ(a.mixes.at(bi).flops, b.mixes.at(bi).flops);
  EXPECT_DOUBLE_EQ(a.mixes.at(bi).iops, b.mixes.at(bi).iops);
}

TEST(LibModel, AveragingConvergesOverSamples) {
  // exp's scaling loop is input-dependent; with more samples the mean mix
  // should stabilize (§IV-C's averaging argument).
  LibProfile small1 = profileLibraryFunctions(8, 1);
  LibProfile small2 = profileLibraryFunctions(8, 99);
  LibProfile big1 = profileLibraryFunctions(512, 1);
  LibProfile big2 = profileLibraryFunctions(512, 99);
  int bi = minic::findBuiltin("exp");
  double smallSpread = std::fabs(small1.mixes.at(bi).totalFlops() -
                                 small2.mixes.at(bi).totalFlops());
  double bigSpread = std::fabs(big1.mixes.at(bi).totalFlops() -
                               big2.mixes.at(bi).totalFlops());
  EXPECT_LE(bigSpread, smallSpread + 1e-9);
}

TEST(LibModel, ReferenceSourceExposed) {
  EXPECT_NE(referenceKernelSource().find("kernel_exp"), std::string_view::npos);
}

}  // namespace
}  // namespace skope::libmodel
