// Sweep engine contracts: grid parsing, the work-stealing pool, and the two
// properties the subsystem exists for —
//   1. determinism: a 1-thread and an N-thread sweep over the same grid
//      render byte-identical reports (results land by grid index; nothing
//      about scheduling leaks into the output), and
//   2. front-end sharing is lossless: evaluating a machine against the
//      shared immutable front-end gives exactly the projection, hot-spot
//      selection, hot path and quality the single-shot CodesignFramework
//      facade computes when it rebuilds everything itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "core/backend.h"
#include "core/framework.h"
#include "machine/grid.h"
#include "sweep/pool.h"
#include "sweep/report.h"
#include "sweep/sweep.h"

namespace skope::sweep {
namespace {

hotspot::SelectionCriteria scaledCriteria() { return {0.90, 0.45}; }

/// One shared SORD front-end for the whole binary (profiling once is the
/// point of the artifact; tests exercise concurrent reads of it).
const core::WorkloadFrontend& sordFrontend() {
  static std::shared_ptr<const core::WorkloadFrontend> fe = core::loadFrontend("sord");
  return *fe;
}

MachineGrid smallGrid() {
  return parseGridSpec("base=bgq; membw=15,30,60; peakflops=4,8; memlat=120,240");
}

// ---------------------------------------------------------------- grid spec

TEST(Grid, ParsesListsRangesAndBase) {
  auto grid = parseGridSpec("base = xeon\nmembw = 20, 40\npeakflops = 2:8:2\n");
  EXPECT_EQ(grid.base.name, MachineModel::xeonE5_2420().name);
  ASSERT_EQ(grid.axes.size(), 2u);
  EXPECT_EQ(grid.axes[0].field, "membw");
  EXPECT_EQ(grid.axes[0].values, (std::vector<double>{20, 40}));
  EXPECT_EQ(grid.axes[1].values, (std::vector<double>{2, 4, 6, 8}));
  EXPECT_EQ(grid.configCount(), 8u);
}

TEST(Grid, InlineSemicolonsAndComments) {
  auto grid = parseGridSpec("membw=15:60:15; memlat=90 # tail comment");
  EXPECT_EQ(grid.base.name, MachineModel::bgq().name);  // default base
  EXPECT_EQ(grid.configCount(), 4u);
  EXPECT_EQ(grid.axes[1].values, (std::vector<double>{90}));
}

TEST(Grid, ExpandsRowMajorWithLastAxisFastest) {
  auto grid = parseGridSpec("membw=15,30; memlat=90,180");
  auto configs = grid.expand();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].name, "BG/Q{membw=15,memlat=90}");
  EXPECT_EQ(configs[1].name, "BG/Q{membw=15,memlat=180}");
  EXPECT_EQ(configs[2].name, "BG/Q{membw=30,memlat=90}");
  EXPECT_DOUBLE_EQ(configs[3].machine.memBandwidthGBs, 30);
  EXPECT_DOUBLE_EQ(configs[3].machine.memLatencyCycles, 180);
  // untouched fields keep the base's values
  EXPECT_EQ(configs[3].machine.cores, MachineModel::bgq().cores);
}

TEST(Grid, AppliesUnitScaledFields) {
  auto configs = parseGridSpec("l1kb=64; llcmb=8").expand();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].machine.l1.sizeBytes, 64u * 1024);
  EXPECT_EQ(configs[0].machine.llc.sizeBytes, 8u * 1024 * 1024);
}

TEST(Grid, RejectsMalformedSpecs) {
  EXPECT_THROW(parseGridSpec("nonsense=1"), Error);          // unknown field
  EXPECT_THROW(parseGridSpec("membw=1:0:1"), Error);         // hi < lo
  EXPECT_THROW(parseGridSpec("membw=1:9:0"), Error);         // step 0
  EXPECT_THROW(parseGridSpec("membw=abc"), Error);           // non-numeric
  EXPECT_THROW(parseGridSpec("membw=1; membw=2"), Error);    // duplicate axis
  EXPECT_THROW(parseGridSpec("base=bgq; base=xeon"), Error); // duplicate base
  EXPECT_THROW(parseGridSpec("base=vax"), Error);            // unknown machine
  EXPECT_THROW(parseGridSpec("membw"), Error);               // no '='
}

TEST(Grid, FieldHelpListsEveryField) {
  std::string help = gridFieldHelp();
  for (const auto& f : gridFields()) {
    EXPECT_NE(help.find(std::string(f.name)), std::string::npos) << f.name;
  }
}

// --------------------------------------------------------------- thread pool

TEST(Pool, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(Pool, SerialPoolRunsInline) {
  WorkStealingPool pool(1);
  std::vector<size_t> order;
  pool.run(5, [&](size_t i) { order.push_back(i); });  // single-threaded: safe
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Pool, PropagatesTaskExceptions) {
  WorkStealingPool pool(3);
  EXPECT_THROW(pool.run(64,
                        [&](size_t i) {
                          if (i == 17) throw Error("boom");
                        }),
               Error);
}

TEST(Pool, AutoThreadCountIsPositive) {
  EXPECT_GE(WorkStealingPool(0).threadCount(), 1);
  EXPECT_EQ(WorkStealingPool(7).threadCount(), 7);
}

TEST(Pool, CompletionCallbackDeliversEveryCountOnce) {
  WorkStealingPool pool(4);
  constexpr size_t kTasks = 200;
  std::mutex mu;
  std::vector<size_t> dones;
  pool.run(
      kTasks, [](size_t) {},
      [&](size_t done, size_t total) {
        EXPECT_EQ(total, kTasks);
        std::lock_guard<std::mutex> lock(mu);
        dones.push_back(done);
      });
  ASSERT_EQ(dones.size(), kTasks);
  std::sort(dones.begin(), dones.end());
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(dones[i], i + 1);  // each of 1..total exactly once
  }
}

TEST(Pool, SerialCompletionCallbackRunsInOrder) {
  WorkStealingPool pool(1);
  std::vector<size_t> dones;
  pool.run(
      5, [](size_t) {}, [&](size_t done, size_t) { dones.push_back(done); });
  EXPECT_EQ(dones, (std::vector<size_t>{1, 2, 3, 4, 5}));
}

// -------------------------------------------------------------- determinism

TEST(Sweep, ReportsAreByteIdenticalAcrossThreadCounts) {
  SweepOptions opts;
  opts.criteria = scaledCriteria();
  opts.hotPaths = true;

  opts.threads = 1;
  auto serial = runSweep(sordFrontend(), smallGrid(), opts);
  ASSERT_EQ(serial.outcomes.size(), 12u);

  for (int threads : {2, 4, 8}) {
    opts.threads = threads;
    auto parallel = runSweep(sordFrontend(), smallGrid(), opts);
    EXPECT_EQ(toCsv(serial), toCsv(parallel)) << threads << " threads";
    EXPECT_EQ(toMarkdown(serial), toMarkdown(parallel)) << threads << " threads";
  }
}

TEST(Sweep, OutcomesLandInGridOrder) {
  SweepOptions opts;
  opts.threads = 4;
  opts.criteria = scaledCriteria();
  auto result = runSweep(sordFrontend(), smallGrid(), opts);
  auto configs = smallGrid().expand();
  ASSERT_EQ(result.outcomes.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].index, i);
    EXPECT_EQ(result.outcomes[i].config, configs[i].name);
  }
}

TEST(Sweep, RankedOrdersByProjectedTime) {
  SweepOptions opts;
  opts.criteria = scaledCriteria();
  auto result = runSweep(sordFrontend(), smallGrid(), opts);
  auto order = result.ranked();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(result.outcomes[order[i - 1]].projectedSeconds,
              result.outcomes[order[i]].projectedSeconds);
  }
  // the base machine's own point is on this grid (membw=30, peakflops=8,
  // memlat=180 is not; but speedups must still be finite and positive)
  for (const auto& c : result.outcomes) {
    EXPECT_GT(c.speedupVsBase, 0);
    EXPECT_GT(c.projectedSeconds, 0);
  }
}

// ------------------------------------- shared front-end == single-shot facade

TEST(Sweep, SharedFrontendMatchesSingleShotFacade) {
  // The facade rebuilds its own front-end from scratch; the sweep evaluates
  // against the shared one. Identical inputs must give identical models.
  core::CodesignFramework fw(workloads::sord());
  MachineModel machine = machineByName("xeon");
  auto facadeModel = fw.project(machine);

  auto ev = core::evaluateMachine(sordFrontend(), machine,
                                  {.criteria = scaledCriteria()});
  EXPECT_DOUBLE_EQ(ev.model.totalSeconds, facadeModel.totalSeconds);
  ASSERT_EQ(ev.model.blocks.size(), facadeModel.blocks.size());
  for (const auto& [origin, bc] : facadeModel.blocks) {
    const auto& sb = ev.model.blocks.at(origin);
    EXPECT_DOUBLE_EQ(sb.seconds, bc.seconds) << bc.label;
    EXPECT_DOUBLE_EQ(sb.enr, bc.enr) << bc.label;
    EXPECT_EQ(sb.label, bc.label);
  }
}

TEST(Sweep, ConstHotPathMatchesFacadeHotPath) {
  MachineModel machine = machineByName("bgq");
  core::BackendOptions opts;
  opts.criteria = scaledCriteria();
  opts.wantHotPath = true;
  auto ev = core::evaluateMachine(sordFrontend(), machine, opts);
  ASSERT_FALSE(ev.hotPathText.empty());

  core::CodesignFramework fw(workloads::sord());
  std::string facade = fw.hotPathReport(machine, scaledCriteria());
  // The facade prepends one header line; the tree underneath (including the
  // ENR / time annotations, which the sweep reads from its side table rather
  // than from mutated BET nodes) must match byte for byte.
  auto body = facade.substr(facade.find('\n') + 1);
  EXPECT_EQ(ev.hotPathText, body);
}

TEST(Sweep, GroundTruthQualityMatchesFacadeAnalyze) {
  MachineModel machine = machineByName("bgq");
  core::BackendOptions opts;
  opts.criteria = scaledCriteria();
  opts.groundTruth = true;
  auto ev = core::evaluateMachine(sordFrontend(), machine, opts);
  ASSERT_TRUE(ev.quality.has_value());

  core::CodesignFramework fw(workloads::sord());
  auto analysis = fw.analyze(machine, scaledCriteria());
  EXPECT_DOUBLE_EQ(ev.quality->quality, analysis.quality.quality);
  EXPECT_DOUBLE_EQ(ev.quality->modelCoverage, analysis.quality.modelCoverage);
  EXPECT_DOUBLE_EQ(ev.prof->totalSeconds, analysis.prof.totalSeconds);
  ASSERT_TRUE(ev.profSelection.has_value());
  ASSERT_EQ(ev.profSelection->spots.size(), analysis.profSelection.spots.size());
}

TEST(Sweep, FrontendSharedAcrossFacadesGivesSameBet) {
  auto fe = core::loadFrontend("srad");
  core::CodesignFramework a(fe);
  core::CodesignFramework b(fe);
  EXPECT_EQ(&a.frontend()->bet(), &b.frontend()->bet());  // genuinely shared
  EXPECT_EQ(bet::printBet(a.bet()), bet::printBet(fe->bet()));
}

TEST(Sweep, GroundTruthSweepCarriesQualityColumns) {
  // 2 configs only — each runs a full simulation.
  auto grid = parseGridSpec("base=bgq; membw=30,60");
  SweepOptions opts;
  opts.threads = 2;
  opts.criteria = scaledCriteria();
  opts.groundTruth = true;
  auto result = runSweep(sordFrontend(), grid, opts);
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const auto& c : result.outcomes) {
    ASSERT_TRUE(c.measuredSeconds.has_value());
    ASSERT_TRUE(c.quality.has_value());
    EXPECT_GT(*c.measuredSeconds, 0);
    EXPECT_GT(*c.quality, 0);
  }
  EXPECT_NE(toCsv(result).find("measured_s,quality"), std::string::npos);
}

}  // namespace
}  // namespace skope::sweep
