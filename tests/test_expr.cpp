// Unit tests for the symbolic expression library (src/expr).
#include <gtest/gtest.h>

#include "expr/expr.h"

namespace skope {
namespace {

ParamEnv env(std::map<std::string, double> m) { return ParamEnv(std::move(m)); }

TEST(Expr, ConstantEval) {
  EXPECT_DOUBLE_EQ(constant(3.5)->eval({}), 3.5);
  EXPECT_TRUE(constant(1)->isConstant());
}

TEST(Expr, ParamEval) {
  auto e = param("N");
  EXPECT_DOUBLE_EQ(e->eval(env({{"N", 42}})), 42.0);
  EXPECT_FALSE(e->isConstant());
  EXPECT_THROW((void)e->eval({}), Error);
}

TEST(Expr, ArithmeticEval) {
  auto n = param("N");
  auto e = add(mul(n, constant(2)), constant(1));  // 2N + 1
  EXPECT_DOUBLE_EQ(e->eval(env({{"N", 10}})), 21.0);
}

TEST(Expr, ConstantFolding) {
  EXPECT_EQ(add(constant(2), constant(3))->op, ExprOp::Const);
  EXPECT_DOUBLE_EQ(add(constant(2), constant(3))->value, 5.0);
  EXPECT_EQ(mul(constant(4), constant(5))->value, 20.0);
  EXPECT_EQ(sub(constant(4), constant(5))->value, -1.0);
  EXPECT_EQ(divide(constant(9), constant(3))->value, 3.0);
}

TEST(Expr, Identities) {
  auto n = param("N");
  EXPECT_EQ(add(n, constant(0)).get(), n.get());
  EXPECT_EQ(mul(n, constant(1)).get(), n.get());
  EXPECT_EQ(mul(n, constant(0))->op, ExprOp::Const);
  EXPECT_DOUBLE_EQ(mul(n, constant(0))->value, 0.0);
  EXPECT_EQ(divide(n, constant(1)).get(), n.get());
}

TEST(Expr, MinMax) {
  auto e = exprMin(param("A"), param("B"));
  EXPECT_DOUBLE_EQ(e->eval(env({{"A", 3}, {"B", 7}})), 3.0);
  auto f = exprMax(param("A"), param("B"));
  EXPECT_DOUBLE_EQ(f->eval(env({{"A", 3}, {"B", 7}})), 7.0);
}

TEST(Expr, CeilDivAndLog2) {
  EXPECT_DOUBLE_EQ(ceilDiv(constant(10), constant(4))->value, 3.0);
  EXPECT_DOUBLE_EQ(log2e(constant(8))->value, 3.0);
  auto e = ceilDiv(param("N"), constant(32));
  EXPECT_DOUBLE_EQ(e->eval(env({{"N", 33}})), 2.0);
}

TEST(Expr, DivisionByZeroThrows) {
  auto e = divide(param("A"), param("B"));
  EXPECT_THROW((void)e->eval(env({{"A", 1}, {"B", 0}})), Error);
}

TEST(Expr, CollectParams) {
  auto e = add(mul(param("N"), param("M")), param("N"));
  std::vector<std::string> names;
  e->collectParams(names);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "N");
  EXPECT_EQ(names[1], "M");
}

TEST(Expr, Printing) {
  auto e = add(mul(param("N"), constant(2)), constant(1));
  EXPECT_EQ(e->str(), "N*2 + 1");
  auto f = mul(add(param("N"), constant(1)), param("M"));
  EXPECT_EQ(f->str(), "(N + 1)*M");
}

TEST(ExprParser, Numbers) {
  EXPECT_DOUBLE_EQ(parseExpr("42")->eval({}), 42.0);
  EXPECT_DOUBLE_EQ(parseExpr("3.25")->eval({}), 3.25);
  EXPECT_DOUBLE_EQ(parseExpr("1e3")->eval({}), 1000.0);
  EXPECT_DOUBLE_EQ(parseExpr("2.5e-2")->eval({}), 0.025);
}

TEST(ExprParser, Precedence) {
  EXPECT_DOUBLE_EQ(parseExpr("2 + 3 * 4")->eval({}), 14.0);
  EXPECT_DOUBLE_EQ(parseExpr("(2 + 3) * 4")->eval({}), 20.0);
  EXPECT_DOUBLE_EQ(parseExpr("10 - 4 - 3")->eval({}), 3.0);
  EXPECT_DOUBLE_EQ(parseExpr("-2 * 3")->eval({}), -6.0);
}

TEST(ExprParser, Params) {
  auto e = parseExpr("NX*NY - 1");
  EXPECT_DOUBLE_EQ(e->eval(env({{"NX", 4}, {"NY", 5}})), 19.0);
}

TEST(ExprParser, Functions) {
  EXPECT_DOUBLE_EQ(parseExpr("min(3, 5)")->eval({}), 3.0);
  EXPECT_DOUBLE_EQ(parseExpr("max(3, 5)")->eval({}), 5.0);
  EXPECT_DOUBLE_EQ(parseExpr("ceildiv(10, 3)")->eval({}), 4.0);
  EXPECT_DOUBLE_EQ(parseExpr("log2(16)")->eval({}), 4.0);
}

TEST(ExprParser, RoundTrip) {
  const char* cases[] = {"N*2 + 1", "min(N, M)", "ceildiv(N, 32)*M", "N % 4", "N/2 - M"};
  ParamEnv e = env({{"N", 37}, {"M", 5}});
  for (const char* c : cases) {
    auto first = parseExpr(c);
    auto second = parseExpr(first->str());
    EXPECT_DOUBLE_EQ(first->eval(e), second->eval(e)) << c;
  }
}

TEST(ExprParser, Errors) {
  EXPECT_THROW(parseExpr(""), Error);
  EXPECT_THROW(parseExpr("1 +"), Error);
  EXPECT_THROW(parseExpr("(1"), Error);
  EXPECT_THROW(parseExpr("foo(1)"), Error);
  EXPECT_THROW(parseExpr("min(1)"), Error);
  EXPECT_THROW(parseExpr("1 @ 2"), Error);
  EXPECT_THROW(parseExpr("1 2"), Error);
}

}  // namespace
}  // namespace skope
