// Hostile-input corpus: every file under tests/bad_inputs/ is a MiniC
// program that is malformed in a way real usage produces — truncated
// sources, absurd loop bounds, zero-extent arrays, binary garbage. The
// contract is the same for all of them: the front-end diagnoses and the
// skopec driver exits nonzero; neither ever crashes, hangs, or silently
// succeeds.
//
// The corpus is exercised twice: in-process through core::loadFrontend
// (the API contract — throws Error) and out-of-process through the built
// skopec binary (the CLI contract — clean nonzero exit, which also catches
// aborts/segfaults a try/catch would miss).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/framework.h"
#include "support/diagnostics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

namespace skope {
namespace {

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kFiles = {
      "truncated.mc",     // cut off mid-expression
      "absurd_bounds.mc", // 4e18 iterations; must stop at --max-ops
      "zero_dim.mc",      // zero-extent array
      "non_utf8.mc",      // invalid byte sequences in the source
      "empty.mc",         // no main
      "bad_params.mc",    // malformed param default, negative extent
  };
  return kFiles;
}

std::string corpusPath(const std::string& file) {
  return std::string(SKOPE_BAD_INPUTS_DIR) + "/" + file;
}

TEST(BadInputs, FrontendThrowsErrorInsteadOfCrashing) {
  for (const auto& file : corpus()) {
    core::FrontendOptions fopts;
    fopts.maxOps = 100000;  // absurd_bounds must hit the budget, not spin
    try {
      core::loadFrontend(corpusPath(file), "", "", fopts);
      FAIL() << file << ": expected Error, got a successful front-end";
    } catch (const Error& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << file;
    }
    // Anything else (std::bad_alloc, segfault, ...) fails the test harness.
  }
}

TEST(BadInputs, SkopecExitsNonzeroWithDiagnostic) {
  for (const auto& file : corpus()) {
    std::string cmd = std::string("\"") + SKOPE_SKOPEC_PATH + "\" \"" +
                      corpusPath(file) +
                      "\" --max-ops=100000 --log-level=quiet >/dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1) << file << ": could not spawn skopec";
#if defined(__unix__) || defined(__APPLE__)
    ASSERT_TRUE(WIFEXITED(rc)) << file << ": skopec died on a signal "
                               << "(raw status " << rc << ")";
    EXPECT_NE(WEXITSTATUS(rc), 0) << file << ": skopec accepted bad input";
#else
    EXPECT_NE(rc, 0) << file;
#endif
  }
}

}  // namespace
}  // namespace skope
