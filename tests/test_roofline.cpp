// Unit tests for the extended roofline model and the BET estimator (§V-A).
#include <gtest/gtest.h>

#include "minic/builtins.h"
#include "bet/builder.h"
#include "roofline/estimate.h"
#include "roofline/roofline.h"
#include "skeleton/parser.h"

namespace skope::roofline {
namespace {

TEST(Roofline, ComputeBoundBlock) {
  Roofline model(MachineModel::bgq());
  // many flops, single access: Tc dominates
  Breakdown b = model.blockTime({1000, 0, 0, 1, 0});
  EXPECT_GT(b.tcCycles, b.tmCycles);
  EXPECT_GT(b.totalCycles(), 0);
}

TEST(Roofline, MemoryBoundBlock) {
  Roofline model(MachineModel::bgq());
  // pure data movement: Tm dominates
  Breakdown b = model.blockTime({1, 0, 0, 500, 500});
  EXPECT_GT(b.tmCycles, b.tcCycles);
}

TEST(Roofline, OverlapFormula) {
  Roofline model(MachineModel::bgq());
  Breakdown b = model.blockTime({100, 0, 0, 100, 0});
  // δ = 1 - 1/100 → To = 0.99 min(Tc, Tm)
  double expected = std::min(b.tcCycles, b.tmCycles) * (1.0 - 1.0 / 100.0);
  EXPECT_NEAR(b.toCycles, expected, 1e-9);
  EXPECT_NEAR(b.totalCycles(), b.tcCycles + b.tmCycles - b.toCycles, 1e-9);
}

TEST(Roofline, SingleFlopHasNoOverlap) {
  Roofline model(MachineModel::bgq());
  Breakdown b = model.blockTime({1, 0, 0, 10, 0});
  EXPECT_DOUBLE_EQ(b.toCycles, 0.0);  // δ = 1 - 1/1 = 0
}

TEST(Roofline, TextbookModeIsMax) {
  RooflineParams p;
  p.modelOverlap = false;
  Roofline model(MachineModel::bgq(), p);
  Breakdown b = model.blockTime({100, 0, 0, 100, 0});
  EXPECT_NEAR(b.totalCycles(), std::max(b.tcCycles, b.tmCycles), 1e-9);
}

TEST(Roofline, UniformFlopsIgnoresDivides) {
  // This is the deliberate §VII-B modeling simplification: swapping every
  // flop for a divide changes nothing under the default parameters...
  Roofline uniform(MachineModel::bgq());
  double tAdds = uniform.blockTime({100, 0, 0, 0, 0}).totalCycles();
  double tDivs = uniform.blockTime({0, 100, 0, 0, 0}).totalCycles();
  EXPECT_DOUBLE_EQ(tAdds, tDivs);

  // ...but the ablation flag charges divides at their true latency.
  RooflineParams p;
  p.uniformFlops = false;
  Roofline exact(MachineModel::bgq(), p);
  EXPECT_GT(exact.blockTime({0, 100, 0, 0, 0}).totalCycles(), tDivs * 5);
}

TEST(Roofline, MachineDifferencesShow) {
  skel::SkMetrics heavyCompute{200, 0, 20, 10, 10};
  double bgq = Roofline(MachineModel::bgq()).blockTime(heavyCompute).totalCycles();
  double xeon = Roofline(MachineModel::xeonE5_2420()).blockTime(heavyCompute).totalCycles();
  // the wider Xeon core needs fewer cycles for the same compute block
  EXPECT_LT(xeon, bgq);
}

TEST(Roofline, CacheHitRateSensitivity) {
  RooflineParams good;
  good.cacheHitRate = 0.99;
  RooflineParams bad;
  bad.cacheHitRate = 0.5;
  skel::SkMetrics mem{1, 0, 0, 100, 100};
  double tGood = Roofline(MachineModel::bgq(), good).blockTime(mem).tmCycles;
  double tBad = Roofline(MachineModel::bgq(), bad).blockTime(mem).tmCycles;
  EXPECT_GT(tBad, tGood * 5);
}

// ---------------- estimator ----------------

struct Estimated {
  bet::Bet bet;
  ModelResult result;
};

Estimated estimateFrom(std::string_view sk, std::map<std::string, double> input,
                       const MachineModel& m = MachineModel::bgq()) {
  Estimated e{bet::buildBet(skel::parseSkeleton(sk), ParamEnv(std::move(input))), {}};
  Roofline model(m);
  e.result = estimate(e.bet, model);
  return e;
}

TEST(Estimate, EnrFollowsPaperFormula) {
  auto e = estimateFrom(R"(
    params N;
    def main() @1 {
      loop @2 iter=N {
        branch @3 p=0.5 {
          loop @4 iter=10 { comp @5 flops=1; }
        }
      }
    }
  )", {{"N", 100}});
  // ENR(inner loop) = 10 (its iters) × 0.5 (branch) × 100 (outer) = 500
  const bet::BetNode* inner = nullptr;
  e.bet.root->visit([&](const bet::BetNode& n) {
    if (n.kind == bet::BetKind::Loop && n.origin == 4) inner = &n;
  });
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(inner->enr, 500.0);
}

TEST(Estimate, BlockTimesScaleWithEnr) {
  auto small = estimateFrom("params N; def main() @1 { loop @2 iter=N { comp flops=8 loads=2; } }",
                            {{"N", 100}});
  auto big = estimateFrom("params N; def main() @1 { loop @2 iter=N { comp flops=8 loads=2; } }",
                          {{"N", 10000}});
  double tSmall = small.result.blocks.at(2).seconds;
  double tBig = big.result.blocks.at(2).seconds;
  EXPECT_NEAR(tBig / tSmall, 100.0, 1e-6);
}

TEST(Estimate, BranchArmsFoldIntoEnclosingBlock) {
  auto e = estimateFrom(R"(
    def main() @1 {
      loop @2 iter=100 {
        branch @3 p=0.25 { comp flops=40; } else { comp flops=8; }
      }
    }
  )", {});
  // per-invocation mix of loop block = 0.25*40 + 0.75*8 = 16 flops
  const BlockCost& loop = e.result.blocks.at(2);
  EXPECT_NEAR(loop.perInvocation.flops, 16.0, 1e-9);
  // branch arms are NOT separate blocks
  EXPECT_EQ(e.result.blocks.count(3), 0u);
}

TEST(Estimate, MultipleMountsAggregateByOrigin) {
  auto e = estimateFrom(R"(
    def main() @1 { call foo(100); call foo(300); }
    def foo(n) @7 { loop @8 iter=n { comp flops=1; } }
  )", {});
  const BlockCost& loop = e.result.blocks.at(8);
  EXPECT_DOUBLE_EQ(loop.enr, 400.0);  // 100 + 300 iterations across mounts
}

TEST(Estimate, LibCallsGetPseudoOrigins) {
  auto e = estimateFrom("def main() @1 { loop @2 iter=50 { libcall exp; } }", {});
  uint32_t expRegion = vm::libRegion(minic::findBuiltin("exp"));
  ASSERT_EQ(e.result.blocks.count(expRegion), 1u);
  EXPECT_DOUBLE_EQ(e.result.blocks.at(expRegion).enr, 50.0);
  EXPECT_EQ(e.result.blocks.at(expRegion).label, "lib:exp");
}

TEST(Estimate, FractionsSumToOne) {
  auto e = estimateFrom(R"(
    def main() @1 {
      loop @2 iter=100 { comp flops=5 loads=2; }
      loop @3 iter=200 { comp flops=1 loads=8 stores=4; }
      libcall rand count=30;
    }
  )", {});
  double total = 0;
  for (const auto& [origin, bc] : e.result.blocks) total += bc.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(e.result.totalSeconds, 0);
}

TEST(Estimate, EmpiricalLibMixOverridesStatic) {
  bet::Bet b = bet::buildBet(skel::parseSkeleton("def main() @1 { libcall exp count=1000; }"),
                             ParamEnv{});
  Roofline model(MachineModel::bgq());
  ModelResult plain = estimate(b, model);
  LibMixes mixes;
  mixes[minic::findBuiltin("exp")] = skel::SkMetrics{500, 0, 100, 0, 0};  // huge mix
  ModelResult boosted = estimate(b, model, nullptr, &mixes);
  uint32_t r = vm::libRegion(minic::findBuiltin("exp"));
  EXPECT_GT(boosted.blocks.at(r).seconds, plain.blocks.at(r).seconds * 3);
}

}  // namespace
}  // namespace skope::roofline
