// Unit tests for src/support: text utilities, RNG determinism, diagnostics,
// flag parsing with "did you mean" suggestions, and the logging level ladder.
#include <gtest/gtest.h>

#include <set>

#include "support/argparse.h"
#include "support/diagnostics.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/text.h"

namespace skope {
namespace {

TEST(Text, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Text, SplitSingleField) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Text, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(startsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(startsWith("pre", "prefix"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(Text, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Text, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("abcdef", 3), "abc");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng r(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.range(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, GaussianMoments) {
  Rng r(17);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Diagnostics, LocFormatting) {
  SourceLoc loc{"f.mc", 3, 7};
  EXPECT_EQ(loc.str(), "f.mc:3:7");
  EXPECT_TRUE(loc.valid());
  EXPECT_FALSE(SourceLoc{}.valid());
}

TEST(Diagnostics, SinkCollectsAndCounts) {
  DiagSink sink;
  sink.note(SourceLoc{"f", 1, 1}, "n");
  sink.warning(SourceLoc{"f", 2, 1}, "w");
  EXPECT_FALSE(sink.hasErrors());
  sink.error(SourceLoc{"f", 3, 1}, "e");
  EXPECT_TRUE(sink.hasErrors());
  EXPECT_EQ(sink.errorCount(), 1u);
  EXPECT_EQ(sink.all().size(), 3u);
  EXPECT_NE(sink.str().find("f:3:1: error: e"), std::string::npos);
}

TEST(Diagnostics, ThrowIfErrors) {
  DiagSink ok;
  EXPECT_NO_THROW(ok.throwIfErrors());
  DiagSink bad;
  bad.error(SourceLoc{"g", 1, 2}, "boom");
  EXPECT_THROW(bad.throwIfErrors(), Error);
}

TEST(Diagnostics, ErrorCarriesLocation) {
  try {
    throw Error(SourceLoc{"h.mc", 9, 4}, "bad thing");
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "h.mc:9:4: bad thing");
  }
}

TEST(Diagnostics, ThresholdDropsBelowSeverity) {
  DiagSink sink;
  sink.setThreshold(Severity::Warning);
  sink.note(SourceLoc{"f", 1, 1}, "dropped note");
  sink.warning(SourceLoc{"f", 2, 1}, "kept warning");
  ASSERT_EQ(sink.all().size(), 1u);
  EXPECT_EQ(sink.all()[0].severity, Severity::Warning);
}

TEST(Diagnostics, ErrorsSurviveAnyThreshold) {
  DiagSink sink;
  sink.setThreshold(Severity::Error);
  sink.note(SourceLoc{"f", 1, 1}, "n");
  sink.warning(SourceLoc{"f", 2, 1}, "w");
  sink.error(SourceLoc{"f", 3, 1}, "e");
  ASSERT_EQ(sink.all().size(), 1u);
  EXPECT_TRUE(sink.hasErrors());
  EXPECT_EQ(sink.errorCount(), 1u);
}

TEST(Text, EditDistance) {
  EXPECT_EQ(editDistance("", ""), 0u);
  EXPECT_EQ(editDistance("abc", "abc"), 0u);
  EXPECT_EQ(editDistance("", "abc"), 3u);
  EXPECT_EQ(editDistance("abc", ""), 3u);
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(editDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(editDistance("trace-rofline", "trace-roofline"), 1u);
  // symmetric (the implementation swaps to keep the shorter string first)
  EXPECT_EQ(editDistance("sunday", "saturday"), editDistance("saturday", "sunday"));
}

TEST(ArgParse, UnknownFlagSuggestsNearestKnown) {
  ArgParser args("t", "test");
  args.addBool("trace-roofline", "x");
  args.addFlag("threads", "y", "0");
  const char* argv[] = {"t", "--trace-rofline"};
  try {
    args.parse(2, argv);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("unknown flag --trace-rofline"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean --trace-roofline?"), std::string::npos) << msg;
  }
}

TEST(ArgParse, UnknownFlagWithNoNearNeighborGetsNoSuggestion) {
  ArgParser args("t", "test");
  args.addFlag("threads", "y", "0");
  const char* argv[] = {"t", "--zzzzqqqq"};
  try {
    args.parse(2, argv);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--help"), std::string::npos) << msg;
  }
}

TEST(ArgParse, ChoiceFlagAcceptsListedValues) {
  ArgParser args("t", "test");
  args.addChoice("cache-model", "x", {"simulate", "reuse-dist", "layer-cond"},
                 "simulate");
  const char* argv[] = {"t", "--cache-model=layer-cond"};
  ASSERT_TRUE(args.parse(2, argv));
  EXPECT_EQ(args.get("cache-model"), "layer-cond");

  ArgParser dflt("t", "test");
  dflt.addChoice("cache-model", "x", {"simulate", "reuse-dist"}, "simulate");
  const char* none[] = {"t"};
  ASSERT_TRUE(dflt.parse(1, none));
  EXPECT_EQ(dflt.get("cache-model"), "simulate");
}

TEST(ArgParse, ChoiceFlagRejectsUnknownValueListingChoices) {
  ArgParser args("t", "test");
  args.addChoice("cache-model", "x", {"simulate", "reuse-dist", "layer-cond"},
                 "simulate");
  const char* argv[] = {"t", "--cache-model=exact"};
  try {
    args.parse(2, argv);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("invalid value 'exact' for --cache-model"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("simulate, reuse-dist, layer-cond"), std::string::npos) << msg;
  }
}

TEST(ArgParse, ChoiceFlagSuggestsNearestChoiceOnTypo) {
  ArgParser args("t", "test");
  args.addChoice("cache-model", "x", {"simulate", "reuse-dist", "layer-cond"},
                 "simulate");
  const char* argv[] = {"t", "--cache-model", "layercond"};
  try {
    args.parse(3, argv);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("did you mean 'layer-cond'?"), std::string::npos) << msg;
  }
}

TEST(ArgParse, ChoiceListAppearsInHelpText) {
  ArgParser args("t", "test");
  args.addChoice("format", "report format", {"md", "csv", "both"}, "md");
  EXPECT_NE(args.helpText().find("[md|csv|both]"), std::string::npos);
}

TEST(ArgParse, GetIntParsesAndRangeChecks) {
  ArgParser args("t", "test");
  args.addFlag("threads", "workers", "0");
  args.addFlag("delta", "signed", "0");

  const char* argv[] = {"t", "--threads=8", "--delta=-3"};
  ASSERT_TRUE(args.parse(3, argv));
  EXPECT_EQ(args.getInt("threads", 0, 4096), 8);
  EXPECT_EQ(args.getInt("delta"), -3);
  // Out of the caller's range: the diagnostic names flag, range and value.
  try {
    (void)args.getInt("delta", 0, 4096);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("--delta"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 4096]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'-3'"), std::string::npos) << msg;
  }
}

TEST(ArgParse, IntAccessorsRejectOverflowGarbageAndNegativeUnsigned) {
  auto parseWith = [](const std::string& value) {
    ArgParser a("t", "test");
    a.addFlag("max-ops", "budget", "0");
    std::string flag = "--max-ops=" + value;
    const char* argv[] = {"t", flag.c_str()};
    EXPECT_TRUE(a.parse(2, argv));
    return a;
  };

  // The UB/wraparound family getDouble+cast lets through:
  EXPECT_THROW((void)parseWith("99999999999999999999").getUint64("max-ops"), Error);
  EXPECT_THROW((void)parseWith("99999999999999999999").getInt("max-ops"), Error);
  EXPECT_THROW((void)parseWith("-1").getUint64("max-ops"), Error);
  EXPECT_THROW((void)parseWith("1.5").getInt("max-ops"), Error);
  EXPECT_THROW((void)parseWith("12abc").getInt("max-ops"), Error);
  EXPECT_THROW((void)parseWith("abc").getUint64("max-ops"), Error);
  EXPECT_THROW((void)parseWith(" 7").getInt("max-ops"), Error);

  // Extremes that do fit parse exactly.
  EXPECT_EQ(parseWith("18446744073709551615").getUint64("max-ops"), UINT64_MAX);
  EXPECT_EQ(parseWith("9223372036854775807").getInt("max-ops"), INT64_MAX);
  EXPECT_EQ(parseWith("-9223372036854775808").getInt("max-ops"), INT64_MIN);
  EXPECT_EQ(parseWith("0").getUint64("max-ops"), 0u);
}

TEST(ArgParse, ArtifactCacheFlagsParseStrictAndSuggestOnTypo) {
  // The CLIs parse --artifact-cache-max-mb with getUint64 capped so that
  // `mb << 20` cannot overflow; the parser itself suggests the real flag on
  // the near-miss spellings users actually type.
  ArgParser args("t", "test");
  args.addFlag("artifact-cache", "cache dir", "");
  args.addFlag("artifact-cache-max-mb", "size cap", "0");

  const char* typo[] = {"t", "--artifact-cache-max-md=100"};
  try {
    args.parse(2, typo);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("unknown flag --artifact-cache-max-md"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("did you mean --artifact-cache-max-mb?"), std::string::npos)
        << msg;
  }

  constexpr uint64_t kMaxMb = UINT64_MAX >> 20;
  auto parseCap = [](const std::string& value) {
    ArgParser a("t", "test");
    a.addFlag("artifact-cache-max-mb", "size cap", "0");
    std::string flag = "--artifact-cache-max-mb=" + value;
    const char* argv[] = {"t", flag.c_str()};
    EXPECT_TRUE(a.parse(2, argv));
    return a;
  };
  EXPECT_EQ(parseCap("2048").getUint64("artifact-cache-max-mb", 0, kMaxMb), 2048u);
  EXPECT_EQ(parseCap("0").getUint64("artifact-cache-max-mb", 0, kMaxMb), 0u);
  // One MiB past the shiftable maximum: rejected by range, not wrapped.
  EXPECT_THROW((void)parseCap("17592186044416").getUint64("artifact-cache-max-mb",
                                                          0, kMaxMb),
               Error);
  EXPECT_THROW((void)parseCap("-5").getUint64("artifact-cache-max-mb", 0, kMaxMb),
               Error);
  EXPECT_THROW((void)parseCap("1g").getUint64("artifact-cache-max-mb", 0, kMaxMb),
               Error);
}

TEST(Logging, ParseLevelAndThresholds) {
  EXPECT_EQ(logging::parseLevel("quiet"), logging::Level::Quiet);
  EXPECT_EQ(logging::parseLevel("info"), logging::Level::Info);
  EXPECT_EQ(logging::parseLevel("debug"), logging::Level::Debug);
  EXPECT_THROW(logging::parseLevel("verbose"), Error);

  logging::Level saved = logging::level();
  logging::setLevel(logging::Level::Quiet);
  EXPECT_FALSE(logging::infoEnabled());
  EXPECT_FALSE(logging::debugEnabled());
  EXPECT_EQ(logging::severityThreshold(), Severity::Error);

  logging::setLevel(logging::Level::Debug);
  EXPECT_TRUE(logging::infoEnabled());
  EXPECT_TRUE(logging::debugEnabled());
  EXPECT_EQ(logging::severityThreshold(), Severity::Note);

  DiagSink sink;
  logging::configureSink(sink);
  EXPECT_EQ(sink.threshold(), Severity::Note);
  logging::setLevel(saved);
}

}  // namespace
}  // namespace skope
