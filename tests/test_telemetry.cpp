// Telemetry contracts: span nesting and ordering (also under the
// work-stealing pool, where aggregate totals must be thread-count
// independent), histogram bucket-edge semantics, the disabled mode's
// zero-allocation guarantee, and well-formedness of both JSON exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/diagnostics.h"
#include "support/log.h"
#include "support/text.h"
#include "sweep/pool.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

// Counting global operator new: the disabled-mode test asserts that span
// construction performs no heap allocation at all.
static std::atomic<uint64_t> g_newCalls{0};

void* operator new(std::size_t n) {
  g_newCalls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace skope::telemetry {
namespace {

/// Resets the global registry around each test so state never leaks.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().setEnabled(false);
    Registry::global().clear();
  }
  void TearDown() override {
    Registry::global().setEnabled(false);
    Registry::global().clear();
  }
};

// ------------------------------------------------------------------ metrics

TEST_F(TelemetryTest, CounterIsExactUnderConcurrency) {
  Counter& c = Registry::global().counter("t/hits");
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : crew) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST_F(TelemetryTest, MetricReferencesSurviveClear) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("t/stable");
  c.add(5);
  reg.clear();
  EXPECT_EQ(c.value(), 0u);             // value reset...
  c.add(1);
  EXPECT_EQ(&c, &reg.counter("t/stable"));  // ...entry (and address) kept
  EXPECT_EQ(reg.metrics().counters.at("t/stable"), 1u);
}

TEST_F(TelemetryTest, HistogramBucketEdgesAreUpperInclusive) {
  Histogram& h = Registry::global().histogram("t/h", {1.0, 10.0});
  h.observe(0.5);   // <= 1           -> bucket 0
  h.observe(1.0);   // == edge        -> bucket 0 (upper-inclusive)
  h.observe(1.5);   // (1, 10]        -> bucket 1
  h.observe(10.0);  // == edge        -> bucket 1
  h.observe(11.0);  // > last edge    -> overflow
  auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);  // edges + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 11.0);
}

TEST_F(TelemetryTest, HistogramRejectsBadEdges) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST_F(TelemetryTest, GaugeAddAccumulates) {
  Gauge& g = Registry::global().gauge("t/g");
  g.set(1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

// -------------------------------------------------------------------- spans

// Span-recording tests need SKOPE_SPAN to exist; the -DSKOPE_NO_TELEMETRY
// build compiles the macro to nothing (direct Span construction and all
// metric/registry machinery stay live and are covered below).
#ifndef SKOPE_NO_TELEMETRY

TEST_F(TelemetryTest, SpanNestingRecordsDepthAndContainment) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  {
    SKOPE_SPAN("outer");
    {
      SKOPE_SPAN("inner");
    }
    { Span dyn("config/", std::string("bgq{membw=30}")); }
  }
  reg.setEnabled(false);

  auto tracks = reg.spanTracks();
  const ThreadTrack* mine = nullptr;
  for (const auto& t : tracks) {
    if (!t.events.empty()) mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 3u);
  // Events land in end order: inner, dynamic, outer.
  EXPECT_EQ(mine->events[0].name(), "inner");
  EXPECT_EQ(mine->events[1].name(), "config/bgq{membw=30}");
  EXPECT_EQ(mine->events[2].name(), "outer");
  EXPECT_EQ(mine->events[0].depth, 1u);
  EXPECT_EQ(mine->events[1].depth, 1u);
  EXPECT_EQ(mine->events[2].depth, 0u);
  // Both children sit inside the outer interval.
  const SpanEvent& outer = mine->events[2];
  for (size_t i = 0; i < 2; ++i) {
    const SpanEvent& kid = mine->events[i];
    EXPECT_GE(kid.startNs, outer.startNs);
    EXPECT_LE(kid.startNs + kid.durNs, outer.startNs + outer.durNs);
  }
}

TEST_F(TelemetryTest, AggregateStagesComputesSelfTime) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  for (int i = 0; i < 3; ++i) {
    SKOPE_SPAN("stage/outer");
    SKOPE_SPAN("stage/inner");
  }
  reg.setEnabled(false);

  auto stages = aggregateStages(reg);
  ASSERT_EQ(stages.size(), 2u);
  const StageStat* outer = nullptr;
  const StageStat* inner = nullptr;
  for (const auto& s : stages) {
    if (s.name == "stage/outer") outer = &s;
    if (s.name == "stage/inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  // Inner spans are leaves: self == total. Outer excludes its child.
  EXPECT_DOUBLE_EQ(inner->selfMs, inner->totalMs);
  EXPECT_LE(outer->selfMs, outer->totalMs);
  EXPECT_NEAR(outer->selfMs, outer->totalMs - inner->totalMs, 1e-9);
}

TEST_F(TelemetryTest, AggregateTotalsAreThreadCountIndependent) {
  // The same batch through a 1-thread and an N-thread pool must produce the
  // same per-stage span counts and the same counter values; only wall-clock
  // durations may differ.
  constexpr size_t kTasks = 64;
  auto runBatch = [&](int threads) {
    Registry& reg = Registry::global();
    reg.clear();
    reg.setEnabled(true);
    sweep::WorkStealingPool pool(threads);
    pool.run(kTasks, [&reg](size_t i) {
      SKOPE_SPAN("t/task");
      reg.counter("t/work").add(i + 1);
    });
    reg.setEnabled(false);
    auto stages = aggregateStages(reg);
    uint64_t spanCount = 0;
    for (const auto& s : stages) {
      if (s.name == "t/task") spanCount = s.count;
    }
    return std::pair<uint64_t, uint64_t>(spanCount,
                                         reg.metrics().counters.at("t/work"));
  };

  auto serial = runBatch(1);
  auto parallel = runBatch(4);
  EXPECT_EQ(serial.first, kTasks);
  EXPECT_EQ(parallel.first, kTasks);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(serial.second, kTasks * (kTasks + 1) / 2);
}

#endif  // SKOPE_NO_TELEMETRY

TEST_F(TelemetryTest, DisabledSpansAllocateNothing) {
  Registry& reg = Registry::global();
  ASSERT_FALSE(reg.enabled());
  // Warm the thread-local log path and the suffix string outside the
  // measured window.
  reg.setEnabled(true);
  { SKOPE_SPAN("warmup"); }
  reg.setEnabled(false);
  std::string suffix = "dynamic-name-longer-than-sso-buffers-everywhere";

  uint64_t before = g_newCalls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    SKOPE_SPAN("t/disabled");
    Span dyn("config/", suffix);
  }
  uint64_t after = g_newCalls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  reg.clear();
}

// ---------------------------------------------------- JSON well-formedness

/// Minimal recursive-descent JSON validator — accepts exactly the RFC 8259
/// grammar, which is all the tests need to prove the exports are loadable.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

#ifndef SKOPE_NO_TELEMETRY

TEST_F(TelemetryTest, ChromeTraceJsonIsWellFormed) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  reg.nameCurrentThread("main");
  {
    SKOPE_SPAN("json/outer");
    Span dyn("config/", std::string("quotes \" and \\ backslash\tand tab"));
  }
  reg.setEnabled(false);

  std::string trace = toChromeTrace(reg);
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"json/outer\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
}

#endif  // SKOPE_NO_TELEMETRY

TEST_F(TelemetryTest, MetricsJsonIsWellFormedAndCarriesWallMs) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  reg.counter("j/count").add(7);
  reg.gauge("j/gauge").set(2.5);
  reg.histogram("j/hist", {0.1, 1.0}).observe(0.05);
  { SKOPE_SPAN("j/stage"); }
  reg.setEnabled(false);

  std::string metrics = toMetricsJson(reg, "bench_unit", 12.5);
  EXPECT_TRUE(JsonChecker(metrics).valid()) << metrics;
  EXPECT_NE(metrics.find("\"skope-metrics-v1\""), std::string::npos);
  EXPECT_NE(metrics.find("\"bench\": \"bench_unit\""), std::string::npos);
  EXPECT_NE(metrics.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(metrics.find("\"j/count\": 7"), std::string::npos);

  // Without a bench name / wall time the optional fields stay out.
  std::string bare = toMetricsJson(reg);
  EXPECT_TRUE(JsonChecker(bare).valid()) << bare;
  EXPECT_EQ(bare.find("\"bench\""), std::string::npos);
  EXPECT_EQ(bare.find("\"wall_ms\""), std::string::npos);
}

#ifndef SKOPE_NO_TELEMETRY

TEST_F(TelemetryTest, SelfHotSpotTablesRankStages) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  { SKOPE_SPAN("rank/a"); }
  { SKOPE_SPAN("rank/b"); }
  reg.setEnabled(false);

  std::string table = selfHotSpotTable(reg);
  EXPECT_NE(table.find("rank/a"), std::string::npos);
  EXPECT_NE(table.find("self ms"), std::string::npos);
  std::string md = selfHotSpotMarkdown(reg);
  EXPECT_NE(md.find("| stage |"), std::string::npos);
  EXPECT_NE(md.find("rank/b"), std::string::npos);
}

#endif  // SKOPE_NO_TELEMETRY

// ------------------------------------------------------------- percentiles

TEST_F(TelemetryTest, PercentileSummaryInterpolatesWithinBuckets) {
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("p/h", {10.0, 100.0});
  // 100 observations uniform in (0, 10]: p50 interpolates to ~5, p90 to ~9.
  for (int i = 1; i <= 100; ++i) h.observe(i * 0.1);
  auto snap = reg.metrics();
  HistogramSummary s = summarizeHistogram(snap.histograms.at("p/h"));
  EXPECT_NEAR(s.p50, 5.0, 0.6);
  EXPECT_NEAR(s.p90, 9.0, 0.6);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  // p99 interpolates past p90 but can never exceed the tracked max.
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.p99, s.p90);
}

TEST_F(TelemetryTest, PercentileSummaryClampsOverflowBucketToMax) {
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("p/over", {1.0});
  // Everything overflows the last edge; interpolation would otherwise invent
  // values up to an arbitrary synthetic upper bound.
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  HistogramSummary s = summarizeHistogram(reg.metrics().histograms.at("p/over"));
  EXPECT_DOUBLE_EQ(s.max, 50.0);
  EXPECT_LE(s.p50, 50.0);
  EXPECT_LE(s.p99, 50.0);
  EXPECT_GT(s.p50, 1.0);  // in the overflow bucket, not below the edge
}

TEST_F(TelemetryTest, HistogramMergeRequiresMatchingEdges) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  a.observe(0.5);
  MetricsSnapshot::Hist snap;
  snap.edges = {1.0, 3.0};
  snap.counts = {1, 0, 0};
  snap.total = 1;
  snap.sum = 0.5;
  snap.max = 0.5;
  EXPECT_FALSE(a.merge(snap));   // edge mismatch: refused, unchanged
  EXPECT_EQ(a.total(), 1u);
  EXPECT_TRUE(b.merge(snap));
  EXPECT_EQ(b.total(), 1u);
  EXPECT_DOUBLE_EQ(b.max(), 0.5);
}

// ----------------------------------------------------------------- interning

TEST_F(TelemetryTest, InternNameReturnsOneStablePointerPerName) {
  Registry reg;
  const char* a = reg.internName("config/alpha");
  const char* b = reg.internName(std::string("config/") + "alpha");
  const char* c = reg.internName("config/beta");
  EXPECT_EQ(a, b);  // same name, same storage
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "config/alpha");
  // clear() keeps interned names alive (span events may still point at them).
  reg.clear();
  EXPECT_EQ(reg.internName("config/alpha"), a);
}

TEST_F(TelemetryTest, DynamicSpanNamesAreInternedNotCopiedPerEvent) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  std::string suffix = "the-same-config-name-longer-than-any-sso-buffer";
  { Span warm("config/", suffix); }  // first event interns the name
  uint64_t before = g_newCalls.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    Span s("config/", suffix);
  }
  uint64_t after = g_newCalls.load(std::memory_order_relaxed);
  reg.setEnabled(false);
  // One transient prefix+suffix concatenation per span is allowed; what must
  // NOT happen is a per-event copy surviving in the log (2+ allocs/event).
  EXPECT_LE(after - before, 150u);
  auto tracks = reg.spanTracks();
  size_t events = 0;
  for (const auto& t : tracks) {
    for (const auto& e : t.events) {
      if (e.name() == "config/" + suffix) ++events;
    }
  }
  EXPECT_EQ(events, 101u);
}

// ------------------------------------------------------------ flight recorder

TEST_F(TelemetryTest, FlightRecorderKeepsABoundedOrderedTail) {
  FlightRecorder fr(16);
  for (int i = 0; i < 100; ++i) {
    fr.record(FlightRecorder::Kind::Counter, "t/evt", i, "detail",
              static_cast<uint64_t>(i) * 1000000);
  }
  // Capacity is divided across the lock stripes and a thread writes only its
  // own stripe, so a single-threaded writer keeps at most capacity/stripes
  // events — bounded is the contract, the exact count is an implementation
  // detail.
  auto events = fr.snapshot();
  ASSERT_LE(events.size(), 16u);
  ASSERT_GE(events.size(), 1u);
  // Global sequence numbers come back sorted and from the most recent writes.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events.back().value, 99.0);

  auto tail = fr.lastEvents(1);
  ASSERT_EQ(tail.size(), 1u);
  // "+<ms>ms counter <name> +<delta> — <detail>"
  EXPECT_NE(tail.back().find("counter t/evt"), std::string::npos);
  EXPECT_NE(tail.back().find("+99.000ms"), std::string::npos);
  EXPECT_NE(tail.back().find("detail"), std::string::npos);

  fr.clear();
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST_F(TelemetryTest, FlightRecorderCapturesSpansAndKeptLogLines) {
  Context ctx("req-flight");
  { Span s("stage/compile"); }
  logging::info("flight test message %d", 42);
  auto dump = ctx.registry().flight().dump();
  EXPECT_NE(dump.find("span stage/compile"), std::string::npos);
  EXPECT_NE(dump.find("flight test message 42"), std::string::npos);
}

// ----------------------------------------------------------------- contexts

TEST_F(TelemetryTest, ContextOverridesCurrentAndRestoresOnClose) {
  Registry& global = Registry::global();
  EXPECT_EQ(&Registry::current(), &global);
  {
    Context ctx("req-1");
    EXPECT_EQ(&Registry::current(), &ctx.registry());
    EXPECT_TRUE(ctx.registry().enabled());  // opening is the opt-in
    EXPECT_EQ(ctx.requestId(), "req-1");
    Registry::current().counter("ctx/hits").add(3);
    EXPECT_EQ(ctx.registry().metrics().counters.at("ctx/hits"), 3u);
  }
  EXPECT_EQ(&Registry::current(), &global);
  // No rollup target was given: the global registry saw nothing.
  EXPECT_EQ(global.metrics().counters.count("ctx/hits"), 0u);
}

TEST_F(TelemetryTest, ContextRollsTotalsUpIntoParent) {
  Registry parent;
  parent.counter("ctx/hits").add(10);
  parent.gauge("ctx/gauge").set(1.0);
  parent.histogram("ctx/h", {1.0, 10.0}).observe(0.5);
  {
    Context ctx("req-2", &parent);
    Registry::current().counter("ctx/hits").add(5);
    Registry::current().gauge("ctx/gauge").set(7.5);
    Registry::current().histogram("ctx/h", {1.0, 10.0}).observe(4.0);
    // Mismatched edges must NOT merge into the parent's histogram.
    Registry::current().histogram("ctx/other", {99.0}).observe(1.0);
  }
  auto snap = parent.metrics();
  EXPECT_EQ(snap.counters.at("ctx/hits"), 15u);      // counters add
  EXPECT_DOUBLE_EQ(snap.gauges.at("ctx/gauge"), 7.5);  // gauges last-write-win
  EXPECT_EQ(snap.histograms.at("ctx/h").total, 2u);  // matching edges merge
  EXPECT_DOUBLE_EQ(snap.histograms.at("ctx/h").max, 4.0);
  EXPECT_EQ(snap.histograms.at("ctx/other").total, 1u);  // created in parent
}

TEST_F(TelemetryTest, PoolHandoffLandsInSubmittingContext) {
  Registry& global = Registry::global();
  Context ctx("req-pool");
  sweep::WorkStealingPool pool(4);
  pool.run(64, [](size_t i) {
    Registry::current().counter("ctx/pool-work").add(i + 1);
  });
  // Every worker recorded into the submitting thread's context...
  EXPECT_EQ(ctx.registry().metrics().counters.at("ctx/pool-work"),
            64u * 65u / 2);
  // ...and none of it leaked into the global registry.
  EXPECT_EQ(global.metrics().counters.count("ctx/pool-work"), 0u);
}

/// Serializes a snapshot's counters/gauges/histogram totals minus the
/// nondeterministic scheduling metrics ("sweep/pool/*" counts steals and
/// idle time, which vary run to run).
std::string deterministicDigest(const MetricsSnapshot& snap) {
  MetricsSnapshot copy = snap;
  auto scrub = [](auto& m) {
    for (auto it = m.begin(); it != m.end();) {
      it = it->first.rfind("sweep/pool/", 0) == 0 ? m.erase(it) : std::next(it);
    }
  };
  scrub(copy.counters);
  scrub(copy.gauges);
  scrub(copy.histograms);
  return toMetricsJson(copy, {});
}

TEST_F(TelemetryTest, ConcurrentContextsStayDisjointAndDeterministic) {
  // Two threads, each under its own Context, running the same pool batch
  // concurrently: per-context metrics must be fully disjoint (no cross-talk)
  // and byte-identical run to run and across pool thread counts.
  auto runOne = [](const std::string& id, int threads) {
    Context ctx(id);
    sweep::WorkStealingPool pool(threads);
    pool.run(32, [&](size_t i) {
      Registry::current().counter("ctx/" + id).add(i + 1);
      Registry::current().histogram("ctx/lat", {1.0, 8.0}).observe(double(i % 10));
    });
    return deterministicDigest(ctx.registry().metrics());
  };

  std::string a1, b1;
  {
    std::thread ta([&] { a1 = runOne("req-A", 4); });
    std::thread tb([&] { b1 = runOne("req-B", 4); });
    ta.join();
    tb.join();
  }
  // Disjoint: each digest names only its own counter.
  EXPECT_NE(a1.find("ctx/req-A"), std::string::npos);
  EXPECT_EQ(a1.find("ctx/req-B"), std::string::npos);
  EXPECT_NE(b1.find("ctx/req-B"), std::string::npos);
  EXPECT_EQ(b1.find("ctx/req-A"), std::string::npos);
  // Deterministic: same batch serially and at another thread count ==
  // byte-identical digest (request_id included).
  EXPECT_EQ(a1, runOne("req-A", 1));
  EXPECT_EQ(b1, runOne("req-B", 2));
}

TEST_F(TelemetryTest, ConcurrentContextEnterExitRollupIsExact) {
  Registry parent;
  constexpr int kThreads = 8, kIters = 50;
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&parent, t] {
      for (int i = 0; i < kIters; ++i) {
        Context ctx(std::string("req-") + std::to_string(t), &parent);
        Registry::current().counter("race/total").add(1);
        Registry::current().histogram("race/h", {0.5}).observe(1.0);
      }
    });
  }
  for (auto& t : crew) t.join();
  auto snap = parent.metrics();
  EXPECT_EQ(snap.counters.at("race/total"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.histograms.at("race/h").total,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST_F(TelemetryTest, ClearRacingExportersIsSafe) {
  // clear() on one thread while others export: no torn reads, no crashes
  // (values may be mid-reset; TSan in CI proves the absence of data races).
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  reg.counter("race/c").add(1);
  reg.histogram("race/h", {1.0}).observe(0.5);
  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)toMetricsJson(reg);
      (void)toPrometheusText(reg);
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      reg.counter("race/c").add(1);
      reg.histogram("race/h", {1.0}).observe(double(i));
      reg.flight().record(FlightRecorder::Kind::Log, "race", 0, "msg", 0);
    }
  });
  for (int i = 0; i < 100; ++i) reg.clear();
  writer.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();
  reg.setEnabled(false);
}

// ------------------------------------------------------ Prometheus exposition

/// Line-oriented validator for the Prometheus text exposition format
/// (version 0.0.4): every line is a comment (# HELP / # TYPE with a valid
/// metric name) or a sample `name[{label="value",...}] number`, names match
/// [a-zA-Z_:][a-zA-Z0-9_:]*, label values escape `\`, `"` and newline, and
/// every sample's name was announced by a preceding # TYPE.
class PromChecker {
 public:
  bool valid(const std::string& text, std::string* why) {
    size_t start = 0;
    int lineNo = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) {
        *why = "missing trailing newline";
        return false;
      }
      ++lineNo;
      std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      if (!checkLine(line, why)) {
        *why += format(" (line %d: %s)", lineNo, line.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  static bool nameOk(const std::string& n) {
    if (n.empty()) return false;
    auto head = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    };
    if (!head(n[0])) return false;
    for (char c : n) {
      if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    return true;
  }

  bool checkLine(const std::string& line, std::string* why) {
    if (line[0] == '#') {
      // "# HELP <name> <text>" or "# TYPE <name> <type>"
      size_t sp1 = line.find(' ', 2);
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        *why = "bad comment";
        return false;
      }
      sp1 = line.find(' ', 7);
      std::string name = line.substr(7, sp1 == std::string::npos
                                            ? std::string::npos
                                            : sp1 - 7);
      if (!nameOk(name)) {
        *why = "bad metric name in comment";
        return false;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string type = sp1 == std::string::npos ? "" : line.substr(sp1 + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          *why = "bad type";
          return false;
        }
        typed_.insert(name);
      }
      return true;
    }
    // Sample line: name[{labels}] value
    size_t brace = line.find('{');
    size_t nameEnd = brace != std::string::npos ? brace : line.find(' ');
    if (nameEnd == std::string::npos) {
      *why = "no value";
      return false;
    }
    std::string name = line.substr(0, nameEnd);
    if (!nameOk(name)) {
      *why = "bad sample name";
      return false;
    }
    // Histogram series announce the base name; _bucket/_sum/_count/_p50...
    // samples belong to it.
    bool announced = typed_.count(name) != 0;
    for (const char* suffix :
         {"_bucket", "_sum", "_count", "_total", "_p50", "_p90", "_p99", "_max"}) {
      std::string s(suffix);
      if (!announced && name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        announced = typed_.count(name.substr(0, name.size() - s.size())) != 0 ||
                    typed_.count(name) != 0;
      }
    }
    if (!announced) {
      *why = "sample without # TYPE";
      return false;
    }
    size_t pos = nameEnd;
    if (brace != std::string::npos) {
      if (!checkLabels(line, &pos, why)) return false;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      *why = "no space before value";
      return false;
    }
    std::string value = line.substr(pos + 1);
    char* parseEnd = nullptr;
    if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
    std::strtod(value.c_str(), &parseEnd);
    if (parseEnd == value.c_str() || *parseEnd != '\0') {
      *why = "bad value";
      return false;
    }
    return true;
  }

  bool checkLabels(const std::string& line, size_t* pos, std::string* why) {
    ++*pos;  // '{'
    while (*pos < line.size() && line[*pos] != '}') {
      size_t eq = line.find('=', *pos);
      if (eq == std::string::npos || !nameOk(line.substr(*pos, eq - *pos))) {
        *why = "bad label name";
        return false;
      }
      *pos = eq + 1;
      if (*pos >= line.size() || line[*pos] != '"') {
        *why = "unquoted label value";
        return false;
      }
      ++*pos;
      while (*pos < line.size() && line[*pos] != '"') {
        if (line[*pos] == '\\') {
          ++*pos;
          if (*pos >= line.size() ||
              (line[*pos] != '\\' && line[*pos] != '"' && line[*pos] != 'n')) {
            *why = "bad escape in label value";
            return false;
          }
        }
        ++*pos;
      }
      if (*pos >= line.size()) {
        *why = "unterminated label value";
        return false;
      }
      ++*pos;  // closing quote
      if (*pos < line.size() && line[*pos] == ',') ++*pos;
    }
    if (*pos >= line.size()) {
      *why = "unterminated label set";
      return false;
    }
    ++*pos;  // '}'
    return true;
  }

  std::set<std::string> typed_;
};

TEST_F(TelemetryTest, PrometheusTextPassesFormatValidator) {
  Context ctx("req-prom-1");
  Registry& reg = ctx.registry();
  reg.counter("sweep/configs evaluated").add(12);  // space needs mangling
  reg.gauge("search/eval-fraction").set(0.033);    // dash needs mangling
  reg.histogram("sweep/eval_ms", {1.0, 10.0, 100.0}).observe(2.0);
  reg.histogram("sweep/eval_ms", {1.0, 10.0, 100.0}).observe(50.0);

  std::string prom = toPrometheusText(reg);
  std::string why;
  EXPECT_TRUE(PromChecker().valid(prom, &why)) << why << "\n" << prom;

  // Mangling: outside [a-zA-Z0-9_] -> '_', "skope_" prefix, counters _total.
  EXPECT_NE(prom.find("skope_sweep_configs_evaluated_total"), std::string::npos);
  EXPECT_NE(prom.find("skope_search_eval_fraction"), std::string::npos);
  // Histograms: cumulative buckets, +Inf == count, sum, derived percentiles.
  EXPECT_NE(prom.find("skope_sweep_eval_ms_bucket{"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("skope_sweep_eval_ms_count"), std::string::npos);
  EXPECT_NE(prom.find("skope_sweep_eval_ms_p99"), std::string::npos);
  // Correlation: every sample carries the context's request_id label.
  EXPECT_NE(prom.find("request_id=\"req-prom-1\""), std::string::npos);
  // HELP lines preserve the original (unmangled) name for humans.
  EXPECT_NE(prom.find("sweep/configs evaluated"), std::string::npos);
}

TEST_F(TelemetryTest, PrometheusBucketsAreCumulative) {
  Registry reg;
  Histogram& h = reg.histogram("c/h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  std::string prom = toPrometheusText(reg);
  EXPECT_NE(prom.find("le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("skope_c_h_count 3\n"), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonCarriesRequestIdAndPercentiles) {
  Context ctx("req-json-7");
  Registry& reg = ctx.registry();
  reg.histogram("j/lat", {1.0, 10.0}).observe(0.5);
  std::string json = toMetricsJson(reg);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"request_id\": \"req-json-7\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"max\""), std::string::npos);
}

}  // namespace
}  // namespace skope::telemetry
