// Telemetry contracts: span nesting and ordering (also under the
// work-stealing pool, where aggregate totals must be thread-count
// independent), histogram bucket-edge semantics, the disabled mode's
// zero-allocation guarantee, and well-formedness of both JSON exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "support/diagnostics.h"
#include "sweep/pool.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

// Counting global operator new: the disabled-mode test asserts that span
// construction performs no heap allocation at all.
static std::atomic<uint64_t> g_newCalls{0};

void* operator new(std::size_t n) {
  g_newCalls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace skope::telemetry {
namespace {

/// Resets the global registry around each test so state never leaks.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().setEnabled(false);
    Registry::global().clear();
  }
  void TearDown() override {
    Registry::global().setEnabled(false);
    Registry::global().clear();
  }
};

// ------------------------------------------------------------------ metrics

TEST_F(TelemetryTest, CounterIsExactUnderConcurrency) {
  Counter& c = Registry::global().counter("t/hits");
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : crew) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST_F(TelemetryTest, MetricReferencesSurviveClear) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("t/stable");
  c.add(5);
  reg.clear();
  EXPECT_EQ(c.value(), 0u);             // value reset...
  c.add(1);
  EXPECT_EQ(&c, &reg.counter("t/stable"));  // ...entry (and address) kept
  EXPECT_EQ(reg.metrics().counters.at("t/stable"), 1u);
}

TEST_F(TelemetryTest, HistogramBucketEdgesAreUpperInclusive) {
  Histogram& h = Registry::global().histogram("t/h", {1.0, 10.0});
  h.observe(0.5);   // <= 1           -> bucket 0
  h.observe(1.0);   // == edge        -> bucket 0 (upper-inclusive)
  h.observe(1.5);   // (1, 10]        -> bucket 1
  h.observe(10.0);  // == edge        -> bucket 1
  h.observe(11.0);  // > last edge    -> overflow
  auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);  // edges + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 11.0);
}

TEST_F(TelemetryTest, HistogramRejectsBadEdges) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST_F(TelemetryTest, GaugeAddAccumulates) {
  Gauge& g = Registry::global().gauge("t/g");
  g.set(1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

// -------------------------------------------------------------------- spans

TEST_F(TelemetryTest, SpanNestingRecordsDepthAndContainment) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  {
    SKOPE_SPAN("outer");
    {
      SKOPE_SPAN("inner");
    }
    { Span dyn("config/", std::string("bgq{membw=30}")); }
  }
  reg.setEnabled(false);

  auto tracks = reg.spanTracks();
  const ThreadTrack* mine = nullptr;
  for (const auto& t : tracks) {
    if (!t.events.empty()) mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 3u);
  // Events land in end order: inner, dynamic, outer.
  EXPECT_EQ(mine->events[0].name(), "inner");
  EXPECT_EQ(mine->events[1].name(), "config/bgq{membw=30}");
  EXPECT_EQ(mine->events[2].name(), "outer");
  EXPECT_EQ(mine->events[0].depth, 1u);
  EXPECT_EQ(mine->events[1].depth, 1u);
  EXPECT_EQ(mine->events[2].depth, 0u);
  // Both children sit inside the outer interval.
  const SpanEvent& outer = mine->events[2];
  for (size_t i = 0; i < 2; ++i) {
    const SpanEvent& kid = mine->events[i];
    EXPECT_GE(kid.startNs, outer.startNs);
    EXPECT_LE(kid.startNs + kid.durNs, outer.startNs + outer.durNs);
  }
}

TEST_F(TelemetryTest, AggregateStagesComputesSelfTime) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  for (int i = 0; i < 3; ++i) {
    SKOPE_SPAN("stage/outer");
    SKOPE_SPAN("stage/inner");
  }
  reg.setEnabled(false);

  auto stages = aggregateStages(reg);
  ASSERT_EQ(stages.size(), 2u);
  const StageStat* outer = nullptr;
  const StageStat* inner = nullptr;
  for (const auto& s : stages) {
    if (s.name == "stage/outer") outer = &s;
    if (s.name == "stage/inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  // Inner spans are leaves: self == total. Outer excludes its child.
  EXPECT_DOUBLE_EQ(inner->selfMs, inner->totalMs);
  EXPECT_LE(outer->selfMs, outer->totalMs);
  EXPECT_NEAR(outer->selfMs, outer->totalMs - inner->totalMs, 1e-9);
}

TEST_F(TelemetryTest, AggregateTotalsAreThreadCountIndependent) {
  // The same batch through a 1-thread and an N-thread pool must produce the
  // same per-stage span counts and the same counter values; only wall-clock
  // durations may differ.
  constexpr size_t kTasks = 64;
  auto runBatch = [&](int threads) {
    Registry& reg = Registry::global();
    reg.clear();
    reg.setEnabled(true);
    sweep::WorkStealingPool pool(threads);
    pool.run(kTasks, [&reg](size_t i) {
      SKOPE_SPAN("t/task");
      reg.counter("t/work").add(i + 1);
    });
    reg.setEnabled(false);
    auto stages = aggregateStages(reg);
    uint64_t spanCount = 0;
    for (const auto& s : stages) {
      if (s.name == "t/task") spanCount = s.count;
    }
    return std::pair<uint64_t, uint64_t>(spanCount,
                                         reg.metrics().counters.at("t/work"));
  };

  auto serial = runBatch(1);
  auto parallel = runBatch(4);
  EXPECT_EQ(serial.first, kTasks);
  EXPECT_EQ(parallel.first, kTasks);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(serial.second, kTasks * (kTasks + 1) / 2);
}

TEST_F(TelemetryTest, DisabledSpansAllocateNothing) {
  Registry& reg = Registry::global();
  ASSERT_FALSE(reg.enabled());
  // Warm the thread-local log path and the suffix string outside the
  // measured window.
  reg.setEnabled(true);
  { SKOPE_SPAN("warmup"); }
  reg.setEnabled(false);
  std::string suffix = "dynamic-name-longer-than-sso-buffers-everywhere";

  uint64_t before = g_newCalls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    SKOPE_SPAN("t/disabled");
    Span dyn("config/", suffix);
  }
  uint64_t after = g_newCalls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  reg.clear();
}

// ---------------------------------------------------- JSON well-formedness

/// Minimal recursive-descent JSON validator — accepts exactly the RFC 8259
/// grammar, which is all the tests need to prove the exports are loadable.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST_F(TelemetryTest, ChromeTraceJsonIsWellFormed) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  reg.nameCurrentThread("main");
  {
    SKOPE_SPAN("json/outer");
    Span dyn("config/", std::string("quotes \" and \\ backslash\tand tab"));
  }
  reg.setEnabled(false);

  std::string trace = toChromeTrace(reg);
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"json/outer\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonIsWellFormedAndCarriesWallMs) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  reg.counter("j/count").add(7);
  reg.gauge("j/gauge").set(2.5);
  reg.histogram("j/hist", {0.1, 1.0}).observe(0.05);
  { SKOPE_SPAN("j/stage"); }
  reg.setEnabled(false);

  std::string metrics = toMetricsJson(reg, "bench_unit", 12.5);
  EXPECT_TRUE(JsonChecker(metrics).valid()) << metrics;
  EXPECT_NE(metrics.find("\"skope-metrics-v1\""), std::string::npos);
  EXPECT_NE(metrics.find("\"bench\": \"bench_unit\""), std::string::npos);
  EXPECT_NE(metrics.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(metrics.find("\"j/count\": 7"), std::string::npos);

  // Without a bench name / wall time the optional fields stay out.
  std::string bare = toMetricsJson(reg);
  EXPECT_TRUE(JsonChecker(bare).valid()) << bare;
  EXPECT_EQ(bare.find("\"bench\""), std::string::npos);
  EXPECT_EQ(bare.find("\"wall_ms\""), std::string::npos);
}

TEST_F(TelemetryTest, SelfHotSpotTablesRankStages) {
  Registry& reg = Registry::global();
  reg.setEnabled(true);
  { SKOPE_SPAN("rank/a"); }
  { SKOPE_SPAN("rank/b"); }
  reg.setEnabled(false);

  std::string table = selfHotSpotTable(reg);
  EXPECT_NE(table.find("rank/a"), std::string::npos);
  EXPECT_NE(table.find("self ms"), std::string::npos);
  std::string md = selfHotSpotMarkdown(reg);
  EXPECT_NE(md.find("| stage |"), std::string::npos);
  EXPECT_NE(md.find("rank/b"), std::string::npos);
}

}  // namespace
}  // namespace skope::telemetry
