// Layer-condition cache model contracts:
//   1. the access extractor classifies every reference of the bundled
//      workloads (fully affine for the regular ones, randomized-base for the
//      indirect particle/sparse loops, never silently dropped),
//   2. closed-form microkernels come out exact: a unit-stride streaming loop
//      misses once per line (1/8 for 8-byte elements on 64-byte lines), a
//      line-stride loop misses every reference, and a small repeated array
//      that fits L1 hits after the cold sweep,
//   3. on all five bundled workloads and two real machine geometries the
//      symbolic prediction lands within the documented envelope of exact
//      trace replay (L1 within 9 points absolute, LLC within 5) — with NO
//      access to the trace,
//   4. a structurally unanalyzable workload reports itself unusable and the
//      sweep engine degrades to trace replay (provenance recorded).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "cachemodel/access.h"
#include "cachemodel/layercond.h"
#include "core/frontend.h"
#include "machine/grid.h"
#include "machine/machine.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "trace/cache_model.h"

namespace skope::cachemodel {
namespace {

/// One shared front-end per workload for the whole binary.
const core::WorkloadFrontend& frontendFor(const std::string& name) {
  static std::map<std::string, std::shared_ptr<const core::WorkloadFrontend>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, core::loadFrontend(name)).first;
  return *it->second;
}

/// Raw-source front-ends need the parameter binding spelled out (for bundled
/// workloads the Workload carries it); the BET's trip counts come from it.
std::shared_ptr<const core::WorkloadFrontend> microFrontend(
    const std::string& name, const std::string& source,
    std::map<std::string, double> params) {
  return std::make_shared<const core::WorkloadFrontend>(name, source, std::move(params));
}

LayerConditionModel modelFor(const core::WorkloadFrontend& fe,
                             const LayerConditionOptions& opts = {}) {
  return LayerConditionModel(fe.program(), fe.bet(), fe.params(), opts);
}

// ---------------------------------------------------------------- extraction

TEST(Extraction, RegularWorkloadsAreFullyAffine) {
  for (const char* name : {"sord", "srad"}) {
    ExtractionResult r = extractAccesses(frontendFor(name).program());
    EXPECT_GT(r.affineRefs, 0u) << name;
    EXPECT_EQ(r.indirectRefs, 0u) << name;
    EXPECT_EQ(r.opaqueRefs, 0u) << name;
    EXPECT_EQ(r.accesses.size(), r.affineRefs) << name;
  }
}

TEST(Extraction, IndirectWorkloadsTakeRandomizedTier) {
  // The particle scatter/gather (chargei), the unstructured-mesh neighbor
  // loads (cfd) and the sparse row walk (stassuij) are data-dependent: they
  // must come back on the randomized-base tier, not opaque.
  for (const char* name : {"chargei", "cfd", "stassuij"}) {
    ExtractionResult r = extractAccesses(frontendFor(name).program());
    EXPECT_GT(r.indirectRefs, 0u) << name;
    EXPECT_EQ(r.opaqueRefs, 0u) << name;
    EXPECT_EQ(r.accesses.size(), r.affineRefs + r.indirectRefs) << name;
  }
}

TEST(Extraction, DimHelpersFollowRowMajorLayout) {
  auto fe = microFrontend("dims", R"(
param int NI = 8;
param int NJ = 16;
global real a[NI][NJ];
global real s;
func void main() {
  var int i;
  for (i = 0; i < NI; i = i + 1) { s = s + a[i][0]; }
}
)",
                          {{"NI", 8}, {"NJ", 16}});
  const auto& g = fe->program().globals;
  ASSERT_FALSE(g.empty());
  ParamEnv env{{{"NI", 8.0}, {"NJ", 16.0}}};
  ASSERT_TRUE(g[0].isArray());
  EXPECT_DOUBLE_EQ(dimStrideElems(g[0], 0)->eval(env), 16.0);
  EXPECT_DOUBLE_EQ(dimStrideElems(g[0], 1)->eval(env), 1.0);
  EXPECT_DOUBLE_EQ(totalElems(g[0])->eval(env), 128.0);
}

// -------------------------------------------------- closed-form microkernels

TEST(LayerCond, UnitStrideStreamMissesOncePerLine) {
  // 4096 x 8B = 32 KB does not fit BG/Q's 16 KB L1: one miss per 64-byte
  // line, 8 elements per line -> miss rate exactly 1/8.
  auto fe = microFrontend("stream", R"(
param int N = 4096;
global real a[N];
global real s;
func void main() {
  var int i;
  for (i = 0; i < N; i = i + 1) { s = s + a[i]; }
}
)",
                          {{"N", 4096}});
  auto model = modelFor(*fe);
  ASSERT_TRUE(model.usable());
  auto pred = model.evaluate(MachineModel::bgq());
  EXPECT_NEAR(pred.l1MissRate, 0.125, 0.005);
}

TEST(LayerCond, LineStrideMissesEveryReference) {
  // Stride 8 elements = exactly one 64-byte line per iteration.
  auto fe = microFrontend("strided", R"(
param int N = 4096;
global real a[N];
global real s;
func void main() {
  var int i;
  for (i = 0; i < N; i = i + 8) { s = s + a[i]; }
}
)",
                          {{"N", 4096}});
  auto model = modelFor(*fe);
  ASSERT_TRUE(model.usable());
  auto pred = model.evaluate(MachineModel::bgq());
  EXPECT_NEAR(pred.l1MissRate, 1.0, 0.005);
}

TEST(LayerCond, ResidentArrayHitsAfterColdSweep) {
  // 512 x 8B = 4 KB fits L1: the repeat loop carries the reuse, so only the
  // first sweep's 64 line fills miss out of 100 x 512 references.
  auto fe = microFrontend("resident", R"(
param int N = 512;
param int R = 100;
global real a[N];
global real s;
func void main() {
  var int r;
  var int i;
  for (r = 0; r < R; r = r + 1) {
    for (i = 0; i < N; i = i + 1) { s = s + a[i]; }
  }
}
)",
                          {{"N", 512}, {"R", 100}});
  auto model = modelFor(*fe);
  ASSERT_TRUE(model.usable());
  auto pred = model.evaluate(MachineModel::bgq());
  EXPECT_LT(pred.l1MissRate, 0.01);
  EXPECT_GT(pred.l1MissRate, 0.0);
}

// ------------------------------------------- cross-validation vs exact replay

TEST(LayerCond, MatchesTraceReplayWithinEnvelopeOnAllWorkloads) {
  // The documented accuracy envelope (docs/CACHE_MODELS.md): per-level miss
  // rates within 9 points absolute of exact trace replay for L1, 5 for LLC,
  // on every bundled workload and both validated machine geometries — from
  // loop bounds and strides alone.
  constexpr double kL1Tol = 0.09;
  constexpr double kLlcTol = 0.05;
  for (const char* name : {"sord", "chargei", "srad", "cfd", "stassuij"}) {
    const auto& fe = frontendFor(name);
    auto model = modelFor(fe);
    EXPECT_TRUE(model.usable()) << name;
    EXPECT_GE(model.stats().modeledFraction(), 0.9) << name;

    trace::CacheModel replay(fe.memoryTrace());
    for (const MachineModel& m : {MachineModel::bgq(), MachineModel::xeonE5_2420()}) {
      auto lc = model.evaluate(m);
      auto ref = replay.evaluate(m);
      EXPECT_NEAR(lc.l1MissRate, ref.l1MissRate, kL1Tol) << name << " " << m.name;
      EXPECT_NEAR(lc.llcMissRate, ref.llcMissRate, kLlcTol) << name << " " << m.name;
      // The symbolic reference count comes from BET trip counts and branch
      // probabilities, not a trace — it must still land on the real count.
      double refs = static_cast<double>(ref.accesses);
      EXPECT_NEAR(static_cast<double>(lc.accesses), refs, refs * 0.05)
          << name << " " << m.name;
    }
  }
}

TEST(LayerCond, EvaluateIsDeterministic) {
  const auto& fe = frontendFor("srad");
  auto model = modelFor(fe);
  auto a = model.evaluate(MachineModel::xeonE5_2420());
  auto b = model.evaluate(MachineModel::xeonE5_2420());
  EXPECT_EQ(a.l1Misses, b.l1Misses);
  EXPECT_EQ(a.llcMisses, b.llcMisses);
  EXPECT_EQ(a.regions.size(), b.regions.size());
}

// ------------------------------------------------------------------ fallback

const char* kOpaqueSource = R"(
param int N = 4096;
global real a[N];
global real s;
func void main() {
  var int i;
  for (i = 0; i < N; i = i + 1) { s = s + a[(i * i) % N]; }
}
)";

TEST(LayerCond, NonAffinePatternReportsUnusable) {
  auto fe = microFrontend("opaque", kOpaqueSource, {{"N", 4096}});
  auto model = modelFor(*fe);
  EXPECT_GT(model.stats().opaqueRefs, 0u);
  EXPECT_LT(model.stats().modeledFraction(), 0.5);
  EXPECT_FALSE(model.usable());
  // Even unusable, evaluate() must stay well-defined (callers may probe it).
  auto pred = model.evaluate(MachineModel::bgq());
  EXPECT_GE(pred.l1MissRate, 0.0);
  EXPECT_LE(pred.l1MissRate, 1.0);
}

TEST(Sweep, LayerCondRecordsProvenanceAndFallsBack) {
  auto grid = parseGridSpec("base=bgq; l1kb=16,32");
  sweep::SweepOptions opts;
  opts.cacheModel = sweep::CacheModelMode::LayerCond;

  // Analyzable workload: the analytic model runs and informs the roofline.
  auto result = sweep::runSweep(frontendFor("sord"), grid, opts);
  EXPECT_EQ(result.missModel, "layer-cond");
  EXPECT_EQ(result.outcomes.size(), 2u);
  EXPECT_NE(sweep::toCsv(result).find(",miss_model"), std::string::npos);
  EXPECT_NE(sweep::toCsv(result).find("layer-cond"), std::string::npos);

  // Unanalyzable workload: degrade to trace replay, provenance says so.
  auto fe = microFrontend("opaque-sweep", kOpaqueSource, {{"N", 4096}});
  auto fallback = sweep::runSweep(*fe, grid, opts);
  EXPECT_EQ(fallback.missModel, "layer-cond:replay-fallback");
  EXPECT_EQ(fallback.outcomes.size(), 2u);
}

TEST(Sweep, LayerCondChangesRooflineWithCacheGeometry) {
  // The point of the model: a cache-axis sweep sees different projected
  // times per geometry without any trace or simulation. srad's stencil rows
  // flip their layer condition between a 4 KB and a 64 KB L1.
  auto grid = parseGridSpec("base=bgq; l1kb=4,64");
  sweep::SweepOptions opts;
  opts.cacheModel = sweep::CacheModelMode::LayerCond;
  auto result = sweep::runSweep(frontendFor("srad"), grid, opts);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_NE(result.outcomes[0].projectedSeconds, result.outcomes[1].projectedSeconds);
}

}  // namespace
}  // namespace skope::cachemodel
