// Unit tests for the source-to-skeleton translator and the profile annotator.
#include <gtest/gtest.h>

#include "minic/parser.h"
#include "minic/sema.h"
#include "skeleton/printer.h"
#include "translate/annotate.h"
#include "translate/translate.h"
#include "vm/compiler.h"
#include "vm/profile.h"

namespace skope::translate {
namespace {

using skel::SkKind;
using skel::SkNode;

struct Ctx {
  std::unique_ptr<minic::Program> prog;
  skel::SkeletonProgram sk;
};

Ctx translateSrc(std::string_view src) {
  Ctx c;
  c.prog = minic::parseProgram(src, "t.mc");
  minic::analyzeOrThrow(*c.prog);
  c.sk = translateProgram(*c.prog);
  return c;
}

const SkNode* firstOfKind(const SkNode& n, SkKind k) {
  if (n.kind == k) return &n;
  for (const auto& c : n.kids) {
    if (const SkNode* f = firstOfKind(*c, k)) return f;
  }
  for (const auto& c : n.elseKids) {
    if (const SkNode* f = firstOfKind(*c, k)) return f;
  }
  return nullptr;
}

TEST(Translate, AffineLoopBoundsDerivedStatically) {
  auto c = translateSrc(R"(
    param int N = 8;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = 1.0; }
    }
  )");
  const SkNode* loop = firstOfKind(*c.sk.defs[0], SkKind::Loop);
  ASSERT_NE(loop, nullptr);
  ASSERT_NE(loop->iter, nullptr) << "affine bound should not need profiling";
  ParamEnv env({{"N", 8}});
  EXPECT_DOUBLE_EQ(loop->iter->eval(env), 8.0);
}

TEST(Translate, BoundShapes) {
  struct Case {
    const char* loop;
    double expect;  // with N = 10
  };
  const Case cases[] = {
      {"for (i = 0; i < N; i = i + 1)", 10},
      {"for (i = 0; i <= N; i = i + 1)", 11},
      {"for (i = 2; i < N; i = i + 2)", 4},
      {"for (i = N; i > 0; i = i - 1)", 10},
      {"for (i = N - 1; i >= 0; i = i - 1)", 10},
      {"for (i = 0; N > i; i = i + 1)", 10},
  };
  for (const Case& tc : cases) {
    std::string src = std::string("param int N = 10; global real a[N + 3];\n"
                                  "func void main() { var int i; ") +
                      tc.loop + " { a[i] = 1.0; } }";
    auto c = translateSrc(src);
    const SkNode* loop = firstOfKind(*c.sk.defs[0], SkKind::Loop);
    ASSERT_NE(loop, nullptr) << tc.loop;
    ASSERT_NE(loop->iter, nullptr) << tc.loop;
    EXPECT_DOUBLE_EQ(loop->iter->eval(ParamEnv({{"N", 10}})), tc.expect) << tc.loop;
  }
}

TEST(Translate, DataDependentLoopLeftUnresolved) {
  auto c = translateSrc(R"(
    global real x;
    func void main() {
      while (x < 10.0) { x = x + 1.0; }
    }
  )");
  const SkNode* loop = firstOfKind(*c.sk.defs[0], SkKind::Loop);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->iter, nullptr);
  EXPECT_EQ(unresolvedSites(c.sk).size(), 1u);
}

TEST(Translate, BranchProbLeftForProfiler) {
  auto c = translateSrc(R"(
    global real a[4];
    func void main() {
      if (a[0] > 0.5) { a[1] = 1.0; } else { a[2] = 2.0; }
    }
  )");
  const SkNode* branch = firstOfKind(*c.sk.defs[0], SkKind::Branch);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->prob, nullptr);
}

TEST(Translate, MixCharacterization) {
  auto c = translateSrc(R"(
    param int N = 4;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) {
        a[i] = a[i] * 2.0 + 1.0 / a[i];
      }
    }
  )");
  const SkNode* loop = firstOfKind(*c.sk.defs[0], SkKind::Loop);
  ASSERT_NE(loop, nullptr);
  skel::SkMetrics total;
  for (const auto& k : loop->kids) {
    if (k->kind == SkKind::Comp) total += k->metrics;
  }
  EXPECT_DOUBLE_EQ(total.fpdivs, 1);   // the divide
  EXPECT_DOUBLE_EQ(total.flops, 2);    // mul + add
  EXPECT_DOUBLE_EQ(total.loads, 2);    // two reads of a[i]
  EXPECT_DOUBLE_EQ(total.stores, 1);
  EXPECT_GE(total.iops, 2);            // loop cond + step + branch
}

TEST(Translate, LibCallsBecomeNodes) {
  auto c = translateSrc(R"(
    global real x;
    func void main() { x = exp(x) + fabs(x); }
  )");
  const SkNode* lib = firstOfKind(*c.sk.defs[0], SkKind::LibCall);
  ASSERT_NE(lib, nullptr);  // exp is a library call
  // fabs is a cheap intrinsic: folded into comp, so exactly one LibCall node
  size_t libCount = 0;
  std::function<void(const SkNode&)> walk = [&](const SkNode& n) {
    if (n.kind == SkKind::LibCall) ++libCount;
    for (const auto& k : n.kids) walk(*k);
    for (const auto& k : n.elseKids) walk(*k);
  };
  walk(*c.sk.defs[0]);
  EXPECT_EQ(libCount, 1u);
}

TEST(Translate, UserCallsWithSymbolicArgs) {
  auto c = translateSrc(R"(
    param int N = 8;
    global real out;
    func real f(int n) { return n * 2.0; }
    func void main() { out = f(N / 2); }
  )");
  const SkNode* call = firstOfKind(*c.sk.findDef("main"), SkKind::Call);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->name, "f");
  ASSERT_EQ(call->args.size(), 1u);
  EXPECT_DOUBLE_EQ(call->args[0]->eval(ParamEnv({{"N", 8}})), 4.0);
}

TEST(Translate, SetEmittedForTrackableLocals) {
  auto c = translateSrc(R"(
    param int N = 8;
    global real a[N];
    func void main() {
      var int half = N / 2;
      var int i;
      for (i = 0; i < half; i = i + 1) { a[i] = 1.0; }
    }
  )");
  const SkNode* set = firstOfKind(*c.sk.defs[0], SkKind::Set);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->name, "half");
  const SkNode* loop = firstOfKind(*c.sk.defs[0], SkKind::Loop);
  ASSERT_NE(loop->iter, nullptr);
  // bound references the tracked variable
  EXPECT_DOUBLE_EQ(loop->iter->eval(ParamEnv({{"half", 4}})), 4.0);
}

TEST(Annotate, FillsFromProfile) {
  auto prog = minic::parseProgram(R"(
    param int N = 1000;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = rand(); }
      var int j = 0;
      while (a[j] < 0.9) { j = j + 1; }
      for (i = 0; i < N; i = i + 1) {
        if (a[i] < 0.5) { out = out + a[i]; }
      }
    }
  )", "t.mc");
  minic::analyzeOrThrow(*prog);
  auto sk = translateProgram(*prog);
  EXPECT_FALSE(unresolvedSites(sk).empty());

  vm::Module mod = vm::compile(*prog);
  vm::ProfileData pd = vm::profileRun(mod, {}, 99);
  annotate(sk, pd);
  EXPECT_TRUE(unresolvedSites(sk).empty());

  // the annotated if-branch probability should be near 0.5
  std::function<const SkNode*(const SkNode&)> findIf = [&](const SkNode& n) -> const SkNode* {
    if (n.kind == SkKind::Branch) return &n;
    for (const auto& k : n.kids) {
      if (const SkNode* f = findIf(*k)) return f;
    }
    return nullptr;
  };
  // the branch lives inside the last loop of main
  const SkNode* main = sk.findDef("main");
  const SkNode* branch = findIf(*main);
  ASSERT_NE(branch, nullptr);
  EXPECT_NEAR(branch->prob->eval({}), 0.5, 0.1);
}

TEST(Annotate, UnreachedSitesBecomeDead) {
  auto prog = minic::parseProgram(R"(
    global real x;
    func void main() {
      if (0) { while (x < 1.0) { x = x + 1.0; } }
    }
  )", "t.mc");
  minic::analyzeOrThrow(*prog);
  auto sk = translateProgram(*prog);
  vm::Module mod = vm::compile(*prog);
  vm::ProfileData pd = vm::profileRun(mod, {});
  annotate(sk, pd);
  const SkNode* loop = firstOfKind(*sk.defs[0], SkKind::Loop);
  ASSERT_NE(loop, nullptr);
  EXPECT_DOUBLE_EQ(loop->iter->eval({}), 0.0);
}

TEST(Annotate, DeveloperHintsOverride) {
  auto prog = minic::parseProgram(R"(
    param int N = 100;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = rand(); }
      var int k = 0;
      while (a[k] < 2.0) {
        k = k + 1;
        if (k >= N - 1) { break; }
        if (a[k] > 0.5) { out = out + 1.0; }
      }
    }
  )", "t.mc");
  minic::analyzeOrThrow(*prog);
  auto sk = translateProgram(*prog);
  vm::Module mod = vm::compile(*prog);
  annotate(sk, vm::profileRun(mod, {}, 5));

  // locate the data-dependent if and the while loop in the AST
  uint32_t ifSite = 0, whileSite = 0;
  minic::forEachStmt(prog->funcs[0]->body, [&](const minic::StmtNode& s) {
    if (s.kind == minic::StmtKind::If && s.cond->kind == minic::ExprKind::Binary &&
        s.cond->bin == minic::BinOp::Gt) {
      ifSite = s.id;
    }
    if (s.kind == minic::StmtKind::While) whileSite = s.id;
  });
  ASSERT_NE(ifSite, 0u);
  ASSERT_NE(whileSite, 0u);

  // a developer who knows the production input skews the branch to 0.9
  size_t n = applyHints(sk, {{ifSite, 0.9}}, {{whileSite, 250.0}});
  EXPECT_EQ(n, 2u);

  const SkNode* branch = nullptr;
  const SkNode* loop = nullptr;
  std::function<void(const SkNode&)> walk = [&](const SkNode& node) {
    if (node.kind == SkKind::Branch && node.origin == ifSite) branch = &node;
    if (node.kind == SkKind::Loop && node.origin == whileSite) loop = &node;
    for (const auto& k : node.kids) walk(*k);
    for (const auto& k : node.elseKids) walk(*k);
  };
  walk(*sk.findDef("main"));
  ASSERT_NE(branch, nullptr);
  ASSERT_NE(loop, nullptr);
  EXPECT_DOUBLE_EQ(branch->prob->eval({}), 0.9);
  EXPECT_DOUBLE_EQ(loop->iter->eval({}), 250.0);

  // probabilities are clamped, trips floored at zero
  applyHints(sk, {{ifSite, 7.0}}, {{whileSite, -3.0}});
  EXPECT_DOUBLE_EQ(branch->prob->eval({}), 1.0);
  EXPECT_DOUBLE_EQ(loop->iter->eval({}), 0.0);

  // unknown origins apply nothing
  EXPECT_EQ(applyHints(sk, {{999999u, 0.5}}), 0u);
}

TEST(Translate, SkeletonPrintsAndSizes) {
  auto c = translateSrc(R"(
    param int N = 4;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = exp(a[i]); }
    }
  )");
  std::string text = skel::printSkeleton(c.sk);
  EXPECT_NE(text.find("def main()"), std::string::npos);
  EXPECT_NE(text.find("loop"), std::string::npos);
  EXPECT_NE(text.find("libcall"), std::string::npos);
  EXPECT_NE(text.find(" exp;"), std::string::npos);
}

}  // namespace
}  // namespace skope::translate
