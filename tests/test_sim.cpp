// Unit tests for the ground-truth timing simulator, the cost model, the
// vectorization model and the profiler report.
#include <gtest/gtest.h>

#include "minic/builtins.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "sim/profile_report.h"
#include "sim/simulator.h"
#include "sim/vectorize.h"
#include "vm/compiler.h"

namespace skope::sim {
namespace {

struct Compiled {
  std::unique_ptr<minic::Program> prog;
  vm::Module mod;
};

Compiled compileSrc(std::string_view src) {
  Compiled c;
  c.prog = minic::parseProgram(src, "t.mc");
  minic::analyzeOrThrow(*c.prog);
  c.mod = vm::compile(*c.prog);
  return c;
}

TEST(CostModel, DividesCostMore) {
  CostModel cm(MachineModel::bgq());
  EXPECT_GT(cm.opCycles(vm::OpClass::FpDiv), cm.opCycles(vm::OpClass::FpMul) * 10);
  EXPECT_GT(cm.opCycles(vm::OpClass::IntDiv), cm.opCycles(vm::OpClass::IntAlu) * 10);
}

TEST(CostModel, VectorizationSpeedsUpCompute) {
  CostModel cm(MachineModel::xeonE5_2420());
  EXPECT_LT(cm.opCyclesVectorized(vm::OpClass::FpAdd), cm.opCycles(vm::OpClass::FpAdd));
  // branches are not narrowed by SIMD
  EXPECT_DOUBLE_EQ(cm.opCyclesVectorized(vm::OpClass::Branch),
                   cm.opCycles(vm::OpClass::Branch));
}

TEST(CostModel, MemPenaltiesOrdered) {
  CostModel cm(MachineModel::bgq());
  EXPECT_DOUBLE_EQ(cm.memPenalty(CacheHierarchy::Level::L1), 0.0);
  EXPECT_GT(cm.memPenalty(CacheHierarchy::Level::Llc), 0.0);
  EXPECT_GT(cm.memPenalty(CacheHierarchy::Level::Memory),
            cm.memPenalty(CacheHierarchy::Level::Llc));
}

TEST(CostModel, BuiltinCyclesPositive) {
  CostModel cm(MachineModel::bgq());
  EXPECT_GT(cm.builtinCycles(minic::findBuiltin("exp")), 5.0);
  skel::SkMetrics divHeavy{0, 4, 0, 0, 0};
  EXPECT_GT(cm.builtinCycles(divHeavy), 100.0);  // 4 divides at 44 cycles
}

constexpr const char* kVecSource = R"(
  param int N = 64;
  global real a[N];
  global real b[N][N];
  global real out;
  func void main() {
    var int i; var int j;
    for (i = 0; i < N; i = i + 1) { a[i] = a[i] * 2.0; }        // simple: score 1
    for (i = 0; i < N; i = i + 1) {                              // has branch
      if (a[i] > 0.5) { a[i] = 0.0; }
    }
    for (i = 0; i < N; i = i + 1) {                              // strided (not unit)
      b[i][0] = a[i];
    }
    for (i = 0; i < N; i = i + 1) {
      for (j = 0; j < N; j = j + 1) {                            // long body
        var real t1 = b[i][j] * 2.0;
        var real t2 = t1 + 1.0;
        var real t3 = t2 * t2;
        var real t4 = t3 - b[i][j];
        var real t5 = t4 * 0.5;
        var real t6 = t5 + t1;
        b[i][j] = t6;
      }
    }
    out = a[0];
  }
)";

TEST(Vectorize, StructuralRules) {
  auto c = compileSrc(kVecSource);
  auto scores = vectorizableLoops(*c.prog);
  // collect loop regions by line for identification
  std::map<uint32_t, double> byLine;
  for (const auto& [id, score] : scores) {
    byLine[c.mod.regions.at(id).line] = score;
  }
  ASSERT_GE(byLine.size(), 2u);
  // the 1-statement loop scores 1.0
  double best = 0;
  for (auto& [line, s] : byLine) best = std::max(best, s);
  EXPECT_DOUBLE_EQ(best, 1.0);
  // branchy loop and outer loops are not in the map at all:
  // count loops in module vs vectorizable ones
  size_t loops = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == vm::RegionKind::Loop) ++loops;
  }
  EXPECT_GT(loops, scores.size());
}

TEST(Vectorize, MachineQualityGates) {
  auto c = compileSrc(kVecSource);
  auto bgq = vectorizedLoops(*c.prog, MachineModel::bgq());
  auto xeon = vectorizedLoops(*c.prog, MachineModel::xeonE5_2420());
  size_t bgqCount = 0, xeonCount = 0;
  for (auto& [id, v] : bgq) bgqCount += v;
  for (auto& [id, v] : xeon) xeonCount += v;
  EXPECT_GT(xeonCount, bgqCount);  // GFortran vectorizes more than XL
}

TEST(Simulator, AttributesTimeToRegions) {
  auto c = compileSrc(R"(
    param int N = 1000;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = a[i] * 2.0 + 1.0; }
      out = a[5];
    }
  )");
  Simulator simulator(*c.prog, c.mod, MachineModel::bgq());
  SimResult r = simulator.run({});
  EXPECT_GT(r.totalCycles(), 0);
  EXPECT_GT(r.seconds(), 0);
  EXPECT_GT(r.dynamicInstrs, 4000u);
  // the loop region dominates
  uint32_t loopRegion = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == vm::RegionKind::Loop) loopRegion = id;
  }
  EXPECT_GT(r.regionSeconds(loopRegion) / r.seconds(), 0.5);
}

TEST(Simulator, ColdMissesCharged) {
  auto c = compileSrc(R"(
    param int N = 100000;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = 1.0; }
    }
  )");
  Simulator simulator(*c.prog, c.mod, MachineModel::bgq());
  SimResult r = simulator.run({});
  uint32_t loopRegion = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == vm::RegionKind::Loop) loopRegion = id;
  }
  const RegionCost& rc = r.regions.at(loopRegion);
  // streaming 800 KB: every 8th store misses the 64B line
  EXPECT_NEAR(static_cast<double>(rc.l1Misses), 100000.0 / 8, 2000);
  EXPECT_GT(rc.memCycles, 0);
}

TEST(Simulator, DivLoopsCostMoreOnBgq) {
  const char* src = R"(
    param int N = 20000;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = 1.0 / (a[i] + 1.5); }
      out = a[7];
    }
  )";
  auto c = compileSrc(src);
  SimResult bgq = Simulator(*c.prog, c.mod, MachineModel::bgq()).run({});
  SimResult xeon = Simulator(*c.prog, c.mod, MachineModel::xeonE5_2420()).run({});
  // BG/Q's expanded divide sequence costs about twice Xeon's per op
  EXPECT_GT(bgq.totalCycles(), xeon.totalCycles() * 1.3);
}

TEST(Simulator, VectorizationChangesMachineBalance) {
  // a simple unit-stride loop is vectorized on Xeon but not BG/Q
  const char* src = R"(
    param int N = 3000;
    global real a[N];
    global real out;
    func void main() {
      var int i; var int t;
      for (t = 0; t < 10; t = t + 1) {
        for (i = 0; i < N; i = i + 1) {
          var real x1 = a[i] * 1.01;
          var real x2 = x1 + 0.5;
          var real x3 = x2 * x2;
          a[i] = x3 - x1;
        }
      }
      out = a[3];
    }
  )";
  auto c = compileSrc(src);
  Simulator bgqSim(*c.prog, c.mod, MachineModel::bgq());
  Simulator xeonSim(*c.prog, c.mod, MachineModel::xeonE5_2420());
  uint32_t innerLoop = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == vm::RegionKind::Loop && info.depth == 2) innerLoop = id;
  }
  ASSERT_NE(innerLoop, 0u);
  EXPECT_FALSE(bgqSim.isVectorized(innerLoop));  // 4-stmt body, XL declines
  EXPECT_TRUE(xeonSim.isVectorized(innerLoop));
}

TEST(Simulator, LibCallsGoToPseudoRegions) {
  auto c = compileSrc(R"(
    param int N = 500;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = exp(0.001 * i); }
    }
  )");
  SimResult r = Simulator(*c.prog, c.mod, MachineModel::bgq()).run({});
  uint32_t expRegion = libRegion(minic::findBuiltin("exp"));
  ASSERT_EQ(r.regions.count(expRegion), 1u);
  EXPECT_GT(r.regions.at(expRegion).libCycles, 0);
  EXPECT_EQ(regionLabel(c.mod, expRegion), "lib:exp");
}

TEST(Simulator, EmpiricalLibMixChangesCost) {
  auto c = compileSrc(R"(
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < 100; i = i + 1) { out = out + exp(0.01); }
    }
  )");
  LibMixMap mixes;
  mixes[minic::findBuiltin("exp")] = skel::SkMetrics{1000, 0, 0, 0, 0};
  SimResult plain = Simulator(*c.prog, c.mod, MachineModel::bgq()).run({});
  SimResult heavy = Simulator(*c.prog, c.mod, MachineModel::bgq(), &mixes).run({});
  uint32_t expRegion = libRegion(minic::findBuiltin("exp"));
  EXPECT_GT(heavy.regions.at(expRegion).libCycles,
            plain.regions.at(expRegion).libCycles * 5);
}

TEST(Simulator, DeterministicForSeed) {
  auto c = compileSrc(R"(
    param int N = 1000;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = rand(); }
    }
  )");
  Simulator s1(*c.prog, c.mod, MachineModel::bgq());
  Simulator s2(*c.prog, c.mod, MachineModel::bgq());
  EXPECT_DOUBLE_EQ(s1.run({}, 42).totalCycles(), s2.run({}, 42).totalCycles());
}

TEST(ProfileReport, RankedAndCoverage) {
  auto c = compileSrc(R"(
    param int N = 2000;
    global real a[N];
    global real out;
    func void main() {
      var int i; var int j;
      for (i = 0; i < N; i = i + 1) {
        a[i] = a[i] * 3.0 + 1.0;
        a[i] = a[i] * a[i] + 2.0;
      }
      for (j = 0; j < 10; j = j + 1) { out = out + a[j]; }
    }
  )");
  SimResult r = Simulator(*c.prog, c.mod, MachineModel::bgq()).run({});
  ProfileReport rep = makeReport(r, c.mod);
  ASSERT_GE(rep.ranked.size(), 2u);
  // descending order
  for (size_t i = 1; i < rep.ranked.size(); ++i) {
    EXPECT_GE(rep.ranked[i - 1].seconds, rep.ranked[i].seconds);
  }
  // fractions sum to ~1
  double total = 0;
  for (const auto& e : rep.ranked) total += e.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(rep.coverageOfTop(rep.ranked.size()), 1.0, 1e-9);
  EXPECT_EQ(rep.rankOf(rep.ranked[0].region), 0);
  EXPECT_EQ(rep.rankOf(99999), -1);
  // the big loop is rank 0
  EXPECT_NE(formatReport(rep, 5).find("main@L"), std::string::npos);
}

}  // namespace
}  // namespace skope::sim
