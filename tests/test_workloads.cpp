// Integration tests over the five benchmark workloads: each parses, checks,
// compiles, executes, profiles and translates cleanly, and basic structural
// facts from the paper's §VI descriptions hold.
#include <gtest/gtest.h>

#include "minic/parser.h"
#include "minic/sema.h"
#include "translate/annotate.h"
#include "translate/translate.h"
#include "vm/compiler.h"
#include "vm/profile.h"
#include "workloads/workloads.h"

namespace skope::workloads {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<const Workload*> {};

TEST_P(WorkloadSuite, ParsesAndChecks) {
  const Workload& w = *GetParam();
  auto prog = minic::parseProgram(w.source, w.name);
  EXPECT_NO_THROW(minic::analyzeOrThrow(*prog));
  EXPECT_GT(prog->funcs.size(), 2u);
  EXPECT_NE(prog->findFunc("main"), nullptr);
}

TEST_P(WorkloadSuite, ExecutesWithinBudget) {
  const Workload& w = *GetParam();
  auto prog = minic::parseProgram(w.source, w.name);
  minic::analyzeOrThrow(*prog);
  vm::Module mod = vm::compile(*prog);
  vm::Vm machine(mod);
  machine.bindParams(w.params);
  machine.setSeed(w.seed);
  machine.setMaxOps(600'000'000ULL);
  EXPECT_NO_THROW(machine.run());
  EXPECT_GT(machine.dynamicInstrs(), 100'000u) << "workload suspiciously small";
}

TEST_P(WorkloadSuite, ProfilesAndAnnotatesFully) {
  const Workload& w = *GetParam();
  auto prog = minic::parseProgram(w.source, w.name);
  minic::analyzeOrThrow(*prog);
  vm::Module mod = vm::compile(*prog);
  auto sk = translate::translateProgram(*prog);
  vm::ProfileData pd = vm::profileRun(mod, w.params, w.seed);
  translate::annotate(sk, pd);
  EXPECT_TRUE(translate::unresolvedSites(sk).empty());
  EXPECT_GT(sk.totalNodes(), 20u);
}

TEST_P(WorkloadSuite, DeterministicAcrossRuns) {
  const Workload& w = *GetParam();
  auto prog = minic::parseProgram(w.source, w.name);
  minic::analyzeOrThrow(*prog);
  vm::Module mod = vm::compile(*prog);
  vm::ProfileData a = vm::profileRun(mod, w.params, w.seed);
  vm::ProfileData b = vm::profileRun(mod, w.params, w.seed);
  EXPECT_EQ(a.opCounters.grandTotal(), b.opCounters.grandTotal());
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadSuite, ::testing::ValuesIn(allWorkloads()),
                         [](const ::testing::TestParamInfo<const Workload*>& info) {
                           return info.param->name;
                         });

TEST(Workloads, FiveDistinctWorkloads) {
  auto all = allWorkloads();
  ASSERT_EQ(all.size(), 5u);
  std::set<std::string> names;
  for (const auto* w : all) names.insert(w->name);
  EXPECT_EQ(names.size(), 5u);
}

TEST(Workloads, SradUsesLibraryHotSpots) {
  // SRAD's measured hot spots include exp and rand (§VII-B)
  EXPECT_NE(srad().source.find("exp("), std::string::npos);
  EXPECT_NE(srad().source.find("rand()"), std::string::npos);
}

TEST(Workloads, StassuijHasTwoPhases) {
  EXPECT_NE(stassuij().source.find("sparse_apply"), std::string::npos);
  EXPECT_NE(stassuij().source.find("butterfly_exchange"), std::string::npos);
}

TEST(Workloads, ChargeiHasEightLoopFunctions) {
  // the paper: "contains eight loop structures"
  auto prog = minic::parseProgram(chargei().source, "chargei");
  minic::analyzeOrThrow(*prog);
  EXPECT_GE(prog->funcs.size(), 8u);
}

}  // namespace
}  // namespace skope::workloads
