// Unit tests for hot-path extraction (§V-C).
#include <gtest/gtest.h>

#include "minic/builtins.h"
#include "bet/builder.h"
#include "hotpath/hotpath.h"
#include "skeleton/parser.h"

namespace skope::hotpath {
namespace {

bet::Bet buildBetFrom(const char* sk, std::map<std::string, double> input = {}) {
  return bet::buildBet(skel::parseSkeleton(sk), ParamEnv(std::move(input)));
}

hotspot::Selection selectionOf(std::initializer_list<uint32_t> origins) {
  hotspot::Selection s;
  for (uint32_t o : origins) s.spots.push_back({o, "", 0, 0, 0});
  return s;
}

constexpr const char* kTwoPathSkeleton = R"(
  params N;
  def main() @1 {
    loop @2 iter=N {
      call work(N);
      comp @3 flops=1;
    }
    loop @4 iter=N {
      comp @5 flops=100 loads=10;
    }
    loop @6 iter=N {
      comp @7 iops=1;
    }
  }
  def work(n) @10 {
    loop @11 iter=n { comp @12 flops=50; }
  }
)";

TEST(HotPath, BackTraceReachesRoot) {
  bet::Bet b = buildBetFrom(kTwoPathSkeleton, {{"N", 8}});
  HotPath path = extractHotPath(b, selectionOf({11}));
  ASSERT_NE(path.root, nullptr);
  EXPECT_EQ(path.root->node->kind, bet::BetKind::Func);  // main
  EXPECT_EQ(path.hotSpotInstances, 1u);
  // chain: main -> loop@2 -> func work -> loop@11
  const HotPathNode* n = path.root.get();
  ASSERT_EQ(n->kids.size(), 1u);
  EXPECT_EQ(n->kids[0]->node->origin, 2u);
  ASSERT_EQ(n->kids[0]->kids.size(), 1u);
  EXPECT_EQ(n->kids[0]->kids[0]->node->kind, bet::BetKind::Func);
  ASSERT_EQ(n->kids[0]->kids[0]->kids.size(), 1u);
  EXPECT_TRUE(n->kids[0]->kids[0]->kids[0]->isHotSpot);
}

TEST(HotPath, MergeSharesPrefixes) {
  bet::Bet b = buildBetFrom(kTwoPathSkeleton, {{"N", 8}});
  HotPath both = extractHotPath(b, selectionOf({11, 4}));
  EXPECT_EQ(both.hotSpotInstances, 2u);
  // root has two children: loop@2 (leading to work) and loop@4 itself
  ASSERT_EQ(both.root->kids.size(), 2u);
  EXPECT_EQ(both.root->kids[0]->node->origin, 2u);
  EXPECT_EQ(both.root->kids[1]->node->origin, 4u);
  EXPECT_TRUE(both.root->kids[1]->isHotSpot);
  // loop@6 is not on any hot path
  for (const auto& k : both.root->kids) EXPECT_NE(k->node->origin, 6u);
}

TEST(HotPath, ExcludesColdSiblings) {
  bet::Bet b = buildBetFrom(kTwoPathSkeleton, {{"N", 8}});
  HotPath path = extractHotPath(b, selectionOf({4}));
  EXPECT_LT(path.size(), b.size());
  ASSERT_EQ(path.root->kids.size(), 1u);
  EXPECT_EQ(path.root->kids[0]->node->origin, 4u);
}

TEST(HotPath, MultipleInstancesOfSameSpot) {
  const char* sk = R"(
    def main() @1 { call f(10); call f(20); }
    def f(n) @5 { loop @6 iter=n { comp @7 flops=1; } }
  )";
  bet::Bet b = buildBetFrom(sk);
  HotPath path = extractHotPath(b, selectionOf({6}));
  EXPECT_EQ(path.hotSpotInstances, 2u);  // both mounts back-traced
  EXPECT_EQ(path.root->kids.size(), 2u);
}

TEST(HotPath, LibCallSpots) {
  const char* sk = "def main() @1 { loop @2 iter=5 { libcall exp; } }";
  bet::Bet b = buildBetFrom(sk);
  uint32_t expOrigin = vm::libRegion(minic::findBuiltin("exp"));
  HotPath path = extractHotPath(b, selectionOf({expOrigin}));
  EXPECT_EQ(path.hotSpotInstances, 1u);
  ASSERT_EQ(path.root->kids.size(), 1u);
  EXPECT_EQ(path.root->kids[0]->node->origin, 2u);
}

TEST(HotPath, EmptySelection) {
  bet::Bet b = buildBetFrom(kTwoPathSkeleton, {{"N", 2}});
  HotPath path = extractHotPath(b, selectionOf({}));
  EXPECT_EQ(path.root, nullptr);
  EXPECT_EQ(printHotPath(path), "(empty hot path)\n");
}

TEST(HotPath, PrintAnnotations) {
  bet::Bet b = buildBetFrom(kTwoPathSkeleton, {{"N", 8}});
  HotPath path = extractHotPath(b, selectionOf({11}));
  std::string text = printHotPath(path);
  EXPECT_NE(text.find("func main"), std::string::npos);
  EXPECT_NE(text.find("* "), std::string::npos);      // hot-spot marker
  EXPECT_NE(text.find("x8"), std::string::npos);      // loop iteration count
  EXPECT_NE(text.find("ctx{"), std::string::npos);    // context values shown
}

}  // namespace
}  // namespace skope::hotpath
