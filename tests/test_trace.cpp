// Trace-once / replay-many contracts:
//   1. the delta-encoded trace round-trips exactly (recorder -> forEachRef),
//   2. the O(N log N) reuse-distance analyzer matches a naive O(N^2) LRU
//      stack simulation distance for distance,
//   3. the analytic CacheModel is EXACT for fully-associative geometries and
//      within 2% absolute miss rate of the set-associative simulator on real
//      workloads (SORD, SRAD),
//   4. replay reconstructs the simulator's result: compute and branch cycles
//      exactly, totals within the documented envelope,
//   5. a reuse-dist sweep is byte-identical across thread counts,
//   6. the --max-ops diagnostic names the flag.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/backend.h"
#include "machine/cache.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "trace/cache_model.h"
#include "trace/replay.h"
#include "trace/reuse.h"
#include "trace/trace.h"

namespace skope::trace {
namespace {

/// One shared front-end per workload for the whole binary.
const core::WorkloadFrontend& frontendFor(const std::string& name) {
  static std::map<std::string, std::shared_ptr<const core::WorkloadFrontend>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, core::loadFrontend(name)).first;
  return *it->second;
}

/// Builds a MemoryTrace from an explicit (region, byte address) sequence.
MemoryTrace makeTrace(const std::vector<std::pair<uint32_t, uint64_t>>& refs,
                      uint64_t maxRefs = kDefaultMaxRefs) {
  TraceRecorder rec(maxRefs);
  for (const auto& [region, addr] : refs) rec.onLoad(region, addr);
  vm::Module empty;
  vm::Vm vm(empty);
  return rec.finish(vm);
}

/// Naive exact stack-distance oracle: an explicit LRU stack of lines. A
/// reference's distance is its line's depth in the stack (distinct more
/// recently used lines); first touches are cold.
struct NaiveHistogram {
  std::map<uint32_t, std::map<uint64_t, uint64_t>> dist;  // region -> d -> n
  std::map<uint32_t, uint64_t> cold;
};

NaiveHistogram naiveDistances(const std::vector<std::pair<uint32_t, uint64_t>>& refs,
                              uint32_t lineBytes) {
  NaiveHistogram out;
  std::vector<uint64_t> stack;  // front = most recently used line
  for (const auto& [region, addr] : refs) {
    uint64_t line = addr / lineBytes;
    auto it = std::find(stack.begin(), stack.end(), line);
    if (it == stack.end()) {
      ++out.cold[region];
    } else {
      ++out.dist[region][static_cast<uint64_t>(it - stack.begin())];
      stack.erase(it);
    }
    stack.insert(stack.begin(), line);
  }
  return out;
}

std::vector<std::pair<uint32_t, uint64_t>> randomRefs(size_t n, uint64_t lines,
                                                      uint32_t regions, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint64_t>> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    refs.emplace_back(static_cast<uint32_t>(rng.below(regions)), rng.below(lines) * 8);
  }
  return refs;
}

// ----------------------------------------------------------- trace encoding

TEST(TraceRecorder, RoundTripsInterleavedRegions) {
  std::vector<std::pair<uint32_t, uint64_t>> refs = {
      {7, 4096}, {7, 4104}, {42, 1 << 20}, {7, 4112}, {42, (1 << 20) + 8},
      {7, 64},   {3, 0},    {3, 4096},     {42, 8},   {7, 4096},
  };
  MemoryTrace trace = makeTrace(refs);
  EXPECT_EQ(trace.numRefs, refs.size());
  EXPECT_EQ(trace.recordedRefs, refs.size());
  EXPECT_TRUE(trace.usable());

  std::vector<std::pair<uint32_t, uint64_t>> decoded;
  trace.forEachRef([&](uint32_t region, uint64_t word) {
    decoded.emplace_back(region, word * 8);  // word granularity -> bytes
  });
  EXPECT_EQ(decoded, refs);
}

TEST(TraceRecorder, SequentialSweepEncodesCompactly) {
  std::vector<std::pair<uint32_t, uint64_t>> refs;
  for (uint64_t i = 0; i < 10000; ++i) refs.emplace_back(5, 4096 + i * 8);
  MemoryTrace trace = makeTrace(refs);
  // unit stride, one region: ~1 byte per reference
  EXPECT_LE(trace.stream.size(), refs.size() + 16);
}

TEST(TraceRecorder, TruncationDisablesUse) {
  auto refs = randomRefs(64, 1024, 3, 1);
  MemoryTrace trace = makeTrace(refs, /*maxRefs=*/16);
  EXPECT_TRUE(trace.truncated);
  EXPECT_EQ(trace.numRefs, 64u);
  EXPECT_EQ(trace.recordedRefs, 16u);
  EXPECT_FALSE(trace.usable());
  EXPECT_THROW(ReuseDistanceAnalyzer{trace}, Error);
}

// --------------------------------------------------- reuse-distance analysis

TEST(ReuseDistance, MatchesNaiveStackOnRandomTraces) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto refs = randomRefs(2000, 64, 4, seed);
    MemoryTrace trace = makeTrace(refs);
    ReuseDistanceAnalyzer analyzer(trace);
    for (uint32_t lineBytes : {8u, 64u}) {
      const ReuseHistograms& got = analyzer.histograms(lineBytes);
      NaiveHistogram want = naiveDistances(refs, lineBytes);
      for (const RegionHistogram& rh : got.regions) {
        EXPECT_EQ(rh.coldRefs, want.cold[rh.region]) << "region " << rh.region;
        std::map<uint64_t, uint64_t> gotDist(rh.dist.begin(), rh.dist.end());
        EXPECT_EQ(gotDist, want.dist[rh.region])
            << "region " << rh.region << " line " << lineBytes << " seed " << seed;
      }
    }
  }
}

TEST(ReuseDistance, SequentialStreamIsAllCold) {
  std::vector<std::pair<uint32_t, uint64_t>> refs;
  for (uint64_t i = 0; i < 512; ++i) refs.emplace_back(1, i * 64);
  MemoryTrace trace = makeTrace(refs);
  ReuseDistanceAnalyzer analyzer(trace);
  const ReuseHistograms& h = analyzer.histograms(64);
  ASSERT_EQ(h.regions.size(), 1u);
  EXPECT_EQ(h.regions[0].coldRefs, 512u);
  EXPECT_TRUE(h.regions[0].dist.empty());
}

TEST(ReuseDistance, RepeatedLineHasDistanceZero) {
  MemoryTrace trace = makeTrace({{1, 0}, {1, 8}, {1, 16}});  // same 64B line
  ReuseDistanceAnalyzer analyzer(trace);
  const ReuseHistograms& h = analyzer.histograms(64);
  ASSERT_EQ(h.regions.size(), 1u);
  EXPECT_EQ(h.regions[0].coldRefs, 1u);
  ASSERT_EQ(h.regions[0].dist.size(), 1u);
  EXPECT_EQ(h.regions[0].dist[0], (std::pair<uint64_t, uint64_t>{0, 2}));
}

// ------------------------------------------------------ analytic cache model

TEST(CacheModel, ExactForFullyAssociativeCaches) {
  // One set => the stack property is exact: predicted misses equal the
  // simulated LRU cache's, integer for integer.
  auto refs = randomRefs(5000, 96, 3, 11);
  MemoryTrace trace = makeTrace(refs);
  ReuseDistanceAnalyzer analyzer(trace);
  for (uint32_t capacityLines : {4u, 16u, 64u}) {
    CacheLevelDesc desc{static_cast<uint64_t>(capacityLines) * 64, 64, capacityLines, 1};
    ASSERT_EQ(cacheGeometry(desc).numSets, 1u);
    Cache sim(desc);
    for (const auto& [region, addr] : refs) sim.access(addr);

    const ReuseHistograms& h = analyzer.histograms(64);
    double predicted = 0;
    for (const RegionHistogram& rh : h.regions) {
      predicted += static_cast<double>(rh.coldRefs);
      for (const auto& [d, count] : rh.dist) {
        predicted += static_cast<double>(count) *
                     (1.0 - setAssocHitProbability(d, 1, capacityLines));
      }
    }
    EXPECT_DOUBLE_EQ(predicted, static_cast<double>(sim.misses()))
        << capacityLines << " lines";
  }
}

TEST(CacheModel, SetAssocHitProbabilityIsSane) {
  EXPECT_DOUBLE_EQ(setAssocHitProbability(0, 64, 8), 1.0);
  EXPECT_DOUBLE_EQ(setAssocHitProbability(7, 64, 8), 1.0);   // d < assoc
  EXPECT_DOUBLE_EQ(setAssocHitProbability(100, 1, 8), 0.0);  // fully assoc miss
  double p = setAssocHitProbability(64, 64, 8);
  EXPECT_GT(p, 0.99);  // 64 lines over 64 sets: ~1 per set, 8 ways
  // monotone in distance
  double prev = 1.0;
  for (uint64_t d = 8; d < 4096; d *= 2) {
    double cur = setAssocHitProbability(d, 64, 8);
    EXPECT_LE(cur, prev + 1e-12) << d;
    prev = cur;
  }
  EXPECT_LT(prev, 1e-6);  // deep distances converge to certain miss
}

/// Simulated vs predicted miss rates for one workload's recorded trace on
/// one machine; returns (simL1, predL1, simLlc, predLlc) rates.
struct MissRates {
  double simL1, predL1, simLlc, predLlc;
};

MissRates missRates(const core::WorkloadFrontend& fe, const MachineModel& machine) {
  const MemoryTrace& trace = fe.memoryTrace();
  CacheHierarchy sim(machine);
  trace.forEachRef([&](uint32_t, uint64_t word) { sim.access(word * 8); });

  CacheModel model(trace);
  CachePrediction pred = model.evaluate(machine);
  return {sim.l1().missRate(), pred.l1MissRate, sim.llc().missRate(), pred.llcMissRate};
}

TEST(CacheModel, WithinTwoPercentOfSimulatorOnSord) {
  for (const char* m : {"bgq", "xeon"}) {
    MissRates r = missRates(frontendFor("sord"), machineByName(m));
    EXPECT_NEAR(r.predL1, r.simL1, 0.02) << m;
    EXPECT_NEAR(r.predLlc, r.simLlc, 0.02) << m;
  }
}

TEST(CacheModel, WithinTwoPercentOfSimulatorOnSrad) {
  for (const char* m : {"bgq", "xeon"}) {
    MissRates r = missRates(frontendFor("srad"), machineByName(m));
    EXPECT_NEAR(r.predL1, r.simL1, 0.02) << m;
    EXPECT_NEAR(r.predLlc, r.simLlc, 0.02) << m;
  }
}

// ------------------------------------------------------------------- replay

TEST(Replay, ReconstructsSimulatorResult) {
  const core::WorkloadFrontend& fe = frontendFor("sord");
  MachineModel machine = machineByName("bgq");

  sim::Simulator simulator(fe.program(), fe.module(), machine,
                           &core::WorkloadFrontend::libProfile().mixes);
  sim::SimResult sim = simulator.run(fe.params(), fe.seed());

  CacheModel model(fe.memoryTrace());
  ReplayInputs inputs{fe.memoryTrace(), model, fe.profile(),
                      &core::WorkloadFrontend::libProfile().mixes};
  sim::SimResult rep = replaySimulate(fe.program(), machine, inputs);

  EXPECT_EQ(rep.dynamicInstrs, sim.dynamicInstrs);
  // Compute and branch attribution are machine-independent counts times
  // per-machine costs: identical term for term.
  for (const auto& [region, rc] : sim.regions) {
    const auto& rr = rep.regions.at(region);
    EXPECT_DOUBLE_EQ(rr.computeCycles, rc.computeCycles) << "region " << region;
    EXPECT_DOUBLE_EQ(rr.branchCycles, rc.branchCycles) << "region " << region;
    EXPECT_EQ(rr.instrs, rc.instrs) << "region " << region;
    EXPECT_EQ(rr.loads, rc.loads) << "region " << region;
    EXPECT_EQ(rr.stores, rc.stores) << "region " << region;
    EXPECT_NEAR(rr.libCycles, rc.libCycles, 1e-6 * (1 + rc.libCycles))
        << "region " << region;
  }
  // Memory cycles come from the analytic prediction: hold them to the same
  // envelope as the miss rates (2% absolute on the rates themselves).
  EXPECT_NEAR(rep.l1MissRate, sim.l1MissRate, 0.02);
  EXPECT_NEAR(rep.llcMissRate, sim.llcMissRate, 0.02);
  EXPECT_NEAR(rep.totalCycles(), sim.totalCycles(), 0.05 * sim.totalCycles());
}

// -------------------------------------------------------------------- sweep

TEST(ReuseDistSweep, ByteIdenticalAcrossThreadCounts) {
  auto grid = parseGridSpec(
      "base=bgq; l1kb=8,16,32; l1assoc=2,8; llcmb=4,32");
  sweep::SweepOptions opts;
  opts.criteria = {0.90, 0.45};
  opts.groundTruth = true;
  opts.cacheModel = sweep::CacheModelMode::ReuseDist;

  opts.threads = 1;
  auto serial = sweep::runSweep(frontendFor("sord"), grid, opts);
  ASSERT_EQ(serial.outcomes.size(), 12u);
  for (const auto& c : serial.outcomes) {
    ASSERT_TRUE(c.measuredSeconds.has_value());
    EXPECT_GT(*c.measuredSeconds, 0);
  }

  for (int threads : {2, 8}) {
    opts.threads = threads;
    auto parallel = sweep::runSweep(frontendFor("sord"), grid, opts);
    EXPECT_EQ(sweep::toCsv(serial), sweep::toCsv(parallel)) << threads << " threads";
    EXPECT_EQ(sweep::toMarkdown(serial), sweep::toMarkdown(parallel))
        << threads << " threads";
  }
}

TEST(ReuseDistSweep, CacheAxesChangeMeasuredTime) {
  // Shrinking L1 and LLC must cost simulated-memory time in replay mode —
  // i.e. the analytic model actually responds to the swept geometry.
  auto grid = parseGridSpec("base=bgq; l1kb=1,16; llcmb=1,32");
  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.groundTruth = true;
  opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  auto result = sweep::runSweep(frontendFor("srad"), grid, opts);
  ASSERT_EQ(result.outcomes.size(), 4u);
  double tiny = *result.outcomes[0].measuredSeconds;   // l1=1KB, llc=1MB
  double large = *result.outcomes[3].measuredSeconds;  // l1=16KB, llc=32MB
  EXPECT_GT(tiny, large);
}

TEST(ReuseDistSweep, TraceInformedRooflineRespondsToCacheSize) {
  auto grid = parseGridSpec("base=bgq; l1kb=1,16");
  sweep::SweepOptions opts;
  opts.threads = 1;
  opts.traceInformedRoofline = true;
  opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  auto result = sweep::runSweep(frontendFor("sord"), grid, opts);
  ASSERT_EQ(result.outcomes.size(), 2u);
  // A 1 KB L1 misses more, so the trace-informed projection must be slower.
  EXPECT_GT(result.outcomes[0].projectedSeconds, result.outcomes[1].projectedSeconds);
}

TEST(ReuseDistSweep, RefusesUnusableTrace) {
  core::FrontendOptions fopts;
  fopts.recordTrace = false;
  auto fe = core::loadFrontend("sord", "", "", fopts);
  EXPECT_FALSE(fe->memoryTrace().usable());

  sweep::SweepOptions opts;
  opts.groundTruth = true;
  opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  auto grid = parseGridSpec("base=bgq; membw=30,60");
  try {
    sweep::runSweep(*fe, grid, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("reuse-dist"), std::string::npos);
  }
}

// ----------------------------------------------------------------- max-ops

TEST(MaxOps, DiagnosticNamesTheFlag) {
  core::FrontendOptions fopts;
  fopts.maxOps = 1000;  // SORD's profiling run needs far more
  try {
    core::loadFrontend("sord", "", "", fopts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--max-ops"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace skope::trace
