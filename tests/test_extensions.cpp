// Tests for the post-reproduction extensions: the argument parser, the
// conceptual machine models, the `comm` skeleton statement, and the
// multi-node strong-scaling projection (paper §VIII future work).
#include <gtest/gtest.h>

#include "bet/builder.h"
#include "core/framework.h"
#include "roofline/multinode.h"
#include "skeleton/parser.h"
#include "skeleton/printer.h"
#include "support/argparse.h"

namespace skope {
namespace {

// ---------------- ArgParser ----------------

bool parseArgs(ArgParser& p, std::initializer_list<const char*> argv) {
  std::vector<const char*> full = {"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return p.parse(static_cast<int>(full.size()), full.data());
}

TEST(ArgParser, FlagsAndDefaults) {
  ArgParser p("prog", "test");
  p.addFlag("machine", "target", "bgq");
  p.addFlag("coverage", "cov", "0.9");
  ASSERT_TRUE(parseArgs(p, {"--machine=xeon"}));
  EXPECT_EQ(p.get("machine"), "xeon");
  EXPECT_DOUBLE_EQ(p.getDouble("coverage"), 0.9);
}

TEST(ArgParser, SpaceSeparatedValue) {
  ArgParser p("prog", "test");
  p.addFlag("name", "n");
  ASSERT_TRUE(parseArgs(p, {"--name", "value"}));
  EXPECT_EQ(p.get("name"), "value");
}

TEST(ArgParser, BooleanFlags) {
  ArgParser p("prog", "test");
  p.addBool("verbose", "talk");
  ASSERT_TRUE(parseArgs(p, {"--verbose"}));
  EXPECT_TRUE(p.getBool("verbose"));
  ArgParser q("prog", "test");
  q.addBool("verbose", "talk");
  ASSERT_TRUE(parseArgs(q, {}));
  EXPECT_FALSE(q.getBool("verbose"));
}

TEST(ArgParser, Positionals) {
  ArgParser p("prog", "test");
  p.addPositional("input", "the input");
  p.addFlag("machine", "m", "bgq");
  ASSERT_TRUE(parseArgs(p, {"file.mc", "--machine=arm"}));
  EXPECT_EQ(p.get("input"), "file.mc");
  EXPECT_EQ(p.get("machine"), "arm");
}

TEST(ArgParser, Errors) {
  {
    ArgParser p("prog", "test");
    EXPECT_THROW(parseArgs(p, {"--nope"}), Error);
  }
  {
    ArgParser p("prog", "test");
    p.addFlag("need", "n", "", true);
    EXPECT_THROW(parseArgs(p, {}), Error);
  }
  {
    ArgParser p("prog", "test");
    p.addPositional("input", "i");
    EXPECT_THROW(parseArgs(p, {}), Error);
  }
  {
    ArgParser p("prog", "test");
    p.addFlag("num", "n", "1");
    ASSERT_TRUE(parseArgs(p, {"--num=abc"}));
    EXPECT_THROW((void)p.getDouble("num"), Error);
  }
  {
    ArgParser p("prog", "test");
    p.addBool("b", "bb");
    EXPECT_THROW(parseArgs(p, {"--b=1"}), Error);
  }
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p("prog", "description text");
  p.addFlag("x", "an x flag", "1");
  EXPECT_FALSE(parseArgs(p, {"--help"}));
  EXPECT_NE(p.helpText().find("description text"), std::string::npos);
  EXPECT_NE(p.helpText().find("--x"), std::string::npos);
}

// ---------------- core helpers used by the CLI ----------------

TEST(CoreHelpers, MachineByName) {
  EXPECT_EQ(core::machineByName("bgq").name, "BG/Q");
  EXPECT_EQ(core::machineByName("xeon").name, "Xeon E5-2420");
  EXPECT_EQ(core::machineByName("knl").name, "Manycore-KNL");
  EXPECT_EQ(core::machineByName("arm").name, "ARM-server");
  EXPECT_THROW(core::machineByName("vax"), Error);
}

TEST(CoreHelpers, ParseHintText) {
  auto p = core::parseHintText(R"(
# SORD production-ish input
NX = 40      # grid
NY = 40
NZ = 40
NT = 4
)");
  EXPECT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.at("NX"), 40);
  EXPECT_DOUBLE_EQ(p.at("NT"), 4);
  EXPECT_THROW(core::parseHintText("NX"), Error);
  EXPECT_THROW(core::parseHintText("NX = forty"), Error);
  EXPECT_TRUE(core::parseHintText("# only comments\n\n").empty());
  EXPECT_THROW(core::loadHintFile("/no/such/file.hints"), Error);
}

TEST(CoreHelpers, ParseParamSpec) {
  auto p = core::parseParamSpec("N=64, STEPS = 10,ALPHA=0.5");
  EXPECT_DOUBLE_EQ(p.at("N"), 64);
  EXPECT_DOUBLE_EQ(p.at("STEPS"), 10);
  EXPECT_DOUBLE_EQ(p.at("ALPHA"), 0.5);
  EXPECT_TRUE(core::parseParamSpec("").empty());
  EXPECT_TRUE(core::parseParamSpec("  ").empty());
  EXPECT_THROW(core::parseParamSpec("N"), Error);
  EXPECT_THROW(core::parseParamSpec("N=abc"), Error);
  EXPECT_THROW(core::parseParamSpec("=5"), Error);
}

// ---------------- conceptual machines ----------------

TEST(Machines, ConceptualModelsWellFormed) {
  for (const auto& m : {MachineModel::manycoreKnl(), MachineModel::armServer()}) {
    EXPECT_GT(m.freqGHz, 0);
    EXPECT_GT(m.cores, 0);
    EXPECT_GT(m.memBandwidthGBs, 0);
    EXPECT_GT(m.network.linkBandwidthGBs, 0);
    EXPECT_GT(m.l1.sizeBytes, 0u);
  }
  EXPECT_GT(MachineModel::manycoreKnl().memBandwidthGBs,
            MachineModel::bgq().memBandwidthGBs * 5);  // HBM
}

// ---------------- comm statements ----------------

TEST(Comm, ParsesPrintsAndModels) {
  const char* text = R"(
params N, NODES;

def main() @1 {
  loop @2 iter=10 {
    comp @3 flops=100 loads=10;
    comm @4 bytes=N*8/NODES;
  }
}
)";
  skel::SkeletonProgram sk = skel::parseSkeleton(text);
  std::string printed = skel::printSkeleton(sk);
  EXPECT_NE(printed.find("comm @4 bytes="), std::string::npos);
  // round trip
  EXPECT_EQ(skel::printSkeleton(skel::parseSkeleton(printed)), printed);

  bet::Bet b = bet::buildBet(sk, ParamEnv({{"N", 4096}, {"NODES", 8}}));
  const bet::BetNode* comm = nullptr;
  b.root->visit([&](const bet::BetNode& n) {
    if (n.kind == bet::BetKind::Comm) comm = &n;
  });
  ASSERT_NE(comm, nullptr);
  EXPECT_DOUBLE_EQ(comm->commBytes, 4096.0 * 8 / 8);
  EXPECT_TRUE(comm->isBlock());

  roofline::Roofline model(MachineModel::bgq());
  auto result = roofline::estimate(b, model);
  ASSERT_EQ(result.blocks.count(4), 1u);
  const auto& bc = result.blocks.at(4);
  EXPECT_TRUE(bc.isComm);
  EXPECT_EQ(bc.label, "comm@4");
  EXPECT_DOUBLE_EQ(bc.enr, 10.0);
  // postal model: 10 messages x (alpha + bytes/beta)
  const auto& net = MachineModel::bgq().network;
  double expected = 10.0 * (net.linkLatencySec + 4096.0 / (net.linkBandwidthGBs * 1e9));
  EXPECT_NEAR(bc.seconds, expected, expected * 1e-9);
}

TEST(Comm, ZeroBytesStillLatencyBound) {
  skel::SkeletonProgram sk = skel::parseSkeleton(
      "def main() @1 { comm @2 bytes=0; }");
  bet::Bet b = bet::buildBet(sk, ParamEnv{});
  roofline::Roofline model(MachineModel::bgq());
  auto result = roofline::estimate(b, model);
  EXPECT_NEAR(result.blocks.at(2).seconds, MachineModel::bgq().network.linkLatencySec,
              1e-12);
}

// ---------------- parallel loops (degree of parallelism) ----------------

TEST(ParallelLoop, ParsedPrintedAndCarriedToBet) {
  const char* text = "def main() @1 { loop parallel @2 iter=1000 { comp @3 flops=8; } }";
  skel::SkeletonProgram sk = skel::parseSkeleton(text);
  EXPECT_TRUE(sk.defs[0]->kids[0]->parallel);
  std::string printed = skel::printSkeleton(sk);
  EXPECT_NE(printed.find("loop parallel"), std::string::npos);
  EXPECT_EQ(skel::printSkeleton(skel::parseSkeleton(printed)), printed);

  bet::Bet b = bet::buildBet(sk, ParamEnv{});
  const bet::BetNode* loop = nullptr;
  b.root->visit([&](const bet::BetNode& n) {
    if (n.kind == bet::BetKind::Loop) loop = &n;
  });
  ASSERT_NE(loop, nullptr);
  EXPECT_TRUE(loop->parallel);
}

TEST(ParallelLoop, SpreadsAcrossCores) {
  const char* serial = "def main() @1 { loop @2 iter=1000 { comp @3 flops=64 loads=4; } }";
  const char* par = "def main() @1 { loop parallel @2 iter=1000 { comp @3 flops=64 loads=4; } }";
  roofline::Roofline model(MachineModel::bgq());

  bet::Bet bs = bet::buildBet(skel::parseSkeleton(serial), ParamEnv{});
  bet::Bet bp = bet::buildBet(skel::parseSkeleton(par), ParamEnv{});
  double ts = roofline::estimate(bs, model).blocks.at(2).seconds;
  double tp = roofline::estimate(bp, model).blocks.at(2).seconds;

  // a compute-bound parallel loop approaches cores-x speedup
  EXPECT_GT(ts / tp, MachineModel::bgq().cores * 0.5);
  EXPECT_LE(ts / tp, MachineModel::bgq().cores * 1.01);
}

TEST(ParallelLoop, SpeedupCappedByTripCount) {
  const char* par = "def main() @1 { loop parallel @2 iter=3 { comp @3 flops=64; } }";
  const char* serial = "def main() @1 { loop @2 iter=3 { comp @3 flops=64; } }";
  roofline::Roofline model(MachineModel::bgq());
  bet::Bet bp = bet::buildBet(skel::parseSkeleton(par), ParamEnv{});
  bet::Bet bs = bet::buildBet(skel::parseSkeleton(serial), ParamEnv{});
  double tp = roofline::estimate(bp, model).blocks.at(2).seconds;
  double ts = roofline::estimate(bs, model).blocks.at(2).seconds;
  // only 3 iterations: at most 3x, regardless of 16 cores
  EXPECT_NEAR(ts / tp, 3.0, 0.2);
}

TEST(ParallelLoop, BandwidthBoundLoopScalesSublinearly) {
  // almost no flops, heavy traffic: the DRAM bandwidth floor limits scaling
  const char* par =
      "def main() @1 { loop parallel @2 iter=10000 { comp @3 flops=1 loads=64 stores=64; } }";
  const char* serial =
      "def main() @1 { loop @2 iter=10000 { comp @3 flops=1 loads=64 stores=64; } }";
  roofline::Roofline model(MachineModel::bgq());
  bet::Bet bp = bet::buildBet(skel::parseSkeleton(par), ParamEnv{});
  bet::Bet bs = bet::buildBet(skel::parseSkeleton(serial), ParamEnv{});
  double speedup = roofline::estimate(bs, model).blocks.at(2).seconds /
                   roofline::estimate(bp, model).blocks.at(2).seconds;
  EXPECT_GT(speedup, 1.0);
  // still bounded by cores even for the latency term
  EXPECT_LE(speedup, MachineModel::bgq().cores + 1e-9);
}

// ---------------- multi-node projection ----------------

TEST(MultiNode, PerfectScalingWithoutComm) {
  roofline::ModelResult single;
  single.totalSeconds = 8.0;
  roofline::HaloDecomposition halo;  // totalCells = 0: no communication
  auto scaling = roofline::projectStrongScaling(single, MachineModel::bgq(), halo,
                                                {1, 2, 4, 8});
  ASSERT_EQ(scaling.size(), 4u);
  EXPECT_DOUBLE_EQ(scaling[3].totalSeconds, 1.0);
  EXPECT_DOUBLE_EQ(scaling[3].speedup, 8.0);
  EXPECT_DOUBLE_EQ(scaling[3].parallelEfficiency, 1.0);
  EXPECT_EQ(roofline::commDominanceCrossover(scaling), -1);
}

TEST(MultiNode, CommErodesEfficiency) {
  roofline::ModelResult single;
  single.totalSeconds = 0.05;
  roofline::HaloDecomposition halo;
  halo.totalCells = 64000;
  halo.bytesPerCell = 8;
  halo.fields = 4;
  halo.stepsPerRun = 4;
  std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  auto scaling = roofline::projectStrongScaling(single, MachineModel::bgq(), halo, counts);

  // efficiency is monotonically non-increasing
  for (size_t i = 1; i < scaling.size(); ++i) {
    EXPECT_LE(scaling[i].parallelEfficiency, scaling[i - 1].parallelEfficiency + 1e-12);
  }
  // and communication eventually dominates
  EXPECT_GT(roofline::commDominanceCrossover(scaling), 1);
  // per-node comm shrinks with nodes (smaller faces) but slower than compute
  EXPECT_LT(scaling.back().commSeconds, scaling[1].commSeconds);
  EXPECT_GT(scaling.back().commFraction, scaling[1].commFraction);
}

TEST(MultiNode, FasterNetworkDelaysCrossover) {
  roofline::ModelResult single;
  single.totalSeconds = 0.05;
  roofline::HaloDecomposition halo;
  halo.totalCells = 64000;
  halo.fields = 4;
  halo.stepsPerRun = 4;
  std::vector<int> counts;
  for (int n = 1; n <= 4096; n *= 2) counts.push_back(n);

  MachineModel slow = MachineModel::bgq();
  MachineModel fast = MachineModel::bgq();
  fast.network.linkBandwidthGBs *= 10;
  fast.network.linkLatencySec /= 10;

  int slowCross = roofline::commDominanceCrossover(
      roofline::projectStrongScaling(single, slow, halo, counts));
  int fastCross = roofline::commDominanceCrossover(
      roofline::projectStrongScaling(single, fast, halo, counts));
  ASSERT_GT(slowCross, 0);
  // the faster network pushes the crossover out (or past the sweep)
  EXPECT_TRUE(fastCross == -1 || fastCross > slowCross);
}

}  // namespace
}  // namespace skope
