// Unit tests for hot-spot selection (§V-B) and selection quality (§VI).
#include <gtest/gtest.h>

#include "hotspot/quality.h"

namespace skope::hotspot {
namespace {

Ranking makeRanking(std::initializer_list<RankedBlock> blocks) { return Ranking(blocks); }

TEST(Selection, GreedyPicksTopUntilCoverage) {
  Ranking r = makeRanking({
      {1, "a", 5.0, 0.50, 100},
      {2, "b", 3.0, 0.30, 100},
      {3, "c", 1.5, 0.15, 100},
      {4, "d", 0.5, 0.05, 100},
  });
  Selection s = selectHotSpots(r, 4000, {0.90, 0.10});  // budget = 400 instrs
  ASSERT_EQ(s.spots.size(), 3u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));  // coverage already >= 0.90
  EXPECT_NEAR(s.coverage, 0.95, 1e-12);
  EXPECT_TRUE(s.coverageMet);
}

TEST(Selection, LeannessTakesPrecedence) {
  Ranking r = makeRanking({
      {1, "huge", 5.0, 0.50, 900},   // exceeds the whole budget
      {2, "small", 3.0, 0.30, 50},
      {3, "tiny", 1.0, 0.10, 30},
  });
  Selection s = selectHotSpots(r, 1000, {0.90, 0.10});  // budget = 100
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.coverageMet);           // 0.40 < 0.90
  EXPECT_LE(s.leanness, 0.10 + 1e-12);   // budget respected
}

TEST(Selection, SkipsBigBlockButKeepsSmallerOnes) {
  Ranking r = makeRanking({
      {1, "a", 5.0, 0.40, 60},
      {2, "b", 4.0, 0.35, 60},   // would blow the budget after a
      {3, "c", 3.0, 0.20, 30},   // but c still fits
  });
  Selection s = selectHotSpots(r, 1000, {0.90, 0.10});  // budget = 100
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
}

TEST(Selection, EmptyRanking) {
  Selection s = selectHotSpots({}, 1000, {});
  EXPECT_TRUE(s.spots.empty());
  EXPECT_DOUBLE_EQ(s.coverage, 0);
  EXPECT_FALSE(s.coverageMet);
}

TEST(Selection, ZeroTotalInstrs) {
  Ranking r = makeRanking({{1, "a", 1.0, 1.0, 10}});
  Selection s = selectHotSpots(r, 0, {});
  EXPECT_TRUE(s.spots.empty());  // no budget at all
}

TEST(CoverageCurve, CumulativeUnderOtherFractions) {
  Ranking order = makeRanking({{1, "a", 0, 0.5, 0}, {2, "b", 0, 0.3, 0}, {3, "c", 0, 0.2, 0}});
  std::map<uint32_t, double> measured{{1, 0.4}, {2, 0.1}, {3, 0.5}};
  auto curve = coverageCurve(order, measured, 3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0], 0.4, 1e-12);
  EXPECT_NEAR(curve[1], 0.5, 1e-12);
  EXPECT_NEAR(curve[2], 1.0, 1e-12);
}

TEST(CoverageCurve, MissingOriginsContributeZero) {
  Ranking order = makeRanking({{9, "x", 0, 0.5, 0}});
  auto curve = coverageCurve(order, {{1, 0.7}}, 1);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
}

TEST(TopNOverlap, CountsCommonOrigins) {
  Ranking a = makeRanking({{1, "", 0, 0, 0}, {2, "", 0, 0, 0}, {3, "", 0, 0, 0}});
  Ranking b = makeRanking({{3, "", 0, 0, 0}, {4, "", 0, 0, 0}, {1, "", 0, 0, 0}});
  EXPECT_EQ(topNOverlap(a, b, 3), 2u);
  EXPECT_EQ(topNOverlap(a, b, 1), 0u);
  EXPECT_EQ(topNOverlap(a, a, 3), 3u);
}

TEST(Quality, IdenticalSelectionsAreperfect) {
  Ranking r = makeRanking({{1, "a", 5, 0.6, 10}, {2, "b", 3, 0.4, 10}});
  Selection s = selectHotSpots(r, 1000, {0.9, 0.5});
  auto measured = fractionsByOrigin(r);
  QualityResult q = selectionQuality(s, s, measured);
  EXPECT_DOUBLE_EQ(q.quality, 1.0);
}

TEST(Quality, RatioOfMeasuredCoverages) {
  Selection model;
  model.spots = {{1, "a", 0, 0, 0}};
  Selection prof;
  prof.spots = {{2, "b", 0, 0, 0}};
  std::map<uint32_t, double> measured{{1, 0.4}, {2, 0.8}};
  QualityResult q = selectionQuality(model, prof, measured);
  EXPECT_DOUBLE_EQ(q.modelCoverage, 0.4);
  EXPECT_DOUBLE_EQ(q.profCoverage, 0.8);
  EXPECT_DOUBLE_EQ(q.quality, 0.5);
}

TEST(Quality, BothEmptyIsPerfect) {
  QualityResult q = selectionQuality({}, {}, {});
  EXPECT_DOUBLE_EQ(q.quality, 1.0);
}

TEST(Quality, ModelBetterThanProfStillPenalized) {
  // similarity is symmetric: over-covering relative to prof also counts
  Selection model;
  model.spots = {{1, "", 0, 0, 0}, {2, "", 0, 0, 0}};
  Selection prof;
  prof.spots = {{1, "", 0, 0, 0}};
  std::map<uint32_t, double> measured{{1, 0.5}, {2, 0.4}};
  QualityResult q = selectionQuality(model, prof, measured);
  EXPECT_NEAR(q.quality, 0.5 / 0.9, 1e-12);
}

// Property sweep: for any fraction split the greedy selection never exceeds
// the leanness budget and is monotone in the budget.
class SelectionProperty : public ::testing::TestWithParam<double> {};

TEST_P(SelectionProperty, BudgetRespectedAndMonotone) {
  double lean = GetParam();
  Ranking r;
  for (uint32_t i = 0; i < 20; ++i) {
    r.push_back({i + 1, "b" + std::to_string(i), 20.0 - i, (20.0 - i) / 210.0,
                 static_cast<size_t>(10 + i * 7)});
  }
  const size_t total = 2000;
  Selection s = selectHotSpots(r, total, {0.9, lean});
  EXPECT_LE(static_cast<double>(s.instrs), lean * total + 1e-9);
  Selection bigger = selectHotSpots(r, total, {0.99, std::min(1.0, lean * 2)});
  EXPECT_GE(bigger.spots.size(), s.spots.size());
  EXPECT_GE(bigger.coverage + 1e-12, s.coverage);
}

INSTANTIATE_TEST_SUITE_P(LeannessSweep, SelectionProperty,
                         ::testing::Values(0.05, 0.1, 0.2, 0.35, 0.5, 0.8));

}  // namespace
}  // namespace skope::hotspot
