// Guided-search contracts (docs/SEARCH.md):
//   1. Pareto dominance and hand-checked fronts — order and tie handling are
//      value-determined, never evaluation-order-determined;
//   2. design-space parsing: geometric ranges, derives, constraints, cost
//      models, and the parse-time rejection of malformed specs;
//   3. search determinism: the same seed renders byte-identical reports at
//      any thread count, and budget exhaustion is recorded as provenance,
//      not an error;
//   4. the sweep-level config dedup that backs search generations;
//   5. SIMD-vs-scalar combine bit-identity on every workload (the combine
//      side of the same contract tests/test_batched.cpp pins for the
//      batched-vs-scalar back-ends).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "machine/grid.h"
#include "roofline/estimate.h"
#include "search/pareto.h"
#include "search/report.h"
#include "search/search.h"
#include "search/space.h"
#include "support/diagnostics.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "telemetry/telemetry.h"

namespace skope::search {
namespace {

hotspot::SelectionCriteria scaledCriteria() { return {0.90, 0.45}; }

const core::WorkloadFrontend& frontendFor(const std::string& name) {
  static std::map<std::string, std::shared_ptr<const core::WorkloadFrontend>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, core::loadFrontend(name)).first;
  return *it->second;
}

// -------------------------------------------------------------- Pareto front

TEST(Pareto, DominatesRequiresStrictlyBetterSomewhere) {
  EXPECT_TRUE(dominates({1, 5, 0}, {2, 6, 1}));   // better in both
  EXPECT_TRUE(dominates({1, 5, 0}, {1, 6, 1}));   // equal time, cheaper
  EXPECT_TRUE(dominates({1, 5, 0}, {2, 5, 1}));   // equal cost, faster
  EXPECT_FALSE(dominates({1, 5, 0}, {1, 5, 1}));  // equal in both: neither
  EXPECT_FALSE(dominates({1, 5, 0}, {2, 4, 1}));  // trade-off: neither
  EXPECT_FALSE(dominates({2, 6, 0}, {1, 5, 1}));  // strictly worse
}

TEST(Pareto, HandCheckedFront) {
  // (1,5) (2,3) (3,1) form the frontier; (2,4) loses to (2,3), (1.5,6)
  // loses to (1,5).
  std::vector<ParetoPoint> pts = {
      {2, 4, 0}, {3, 1, 1}, {1.5, 6, 2}, {1, 5, 3}, {2, 3, 4}};
  auto front = paretoFront(pts);
  ASSERT_EQ(front.size(), 3u);
  // Sorted by (time, cost, tag): (1,5) then (2,3) then (3,1).
  EXPECT_EQ(pts[front[0]].tag, 3u);
  EXPECT_EQ(pts[front[1]].tag, 4u);
  EXPECT_EQ(pts[front[2]].tag, 1u);
}

TEST(Pareto, ExactDuplicatesBothStay) {
  std::vector<ParetoPoint> pts = {{1, 2, 0}, {1, 2, 1}, {2, 3, 2}};
  auto front = paretoFront(pts);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(pts[front[0]].tag, 0u);
  EXPECT_EQ(pts[front[1]].tag, 1u);
}

TEST(Pareto, SingleObjectiveDegeneratesToMinimum) {
  // All costs equal: only the fastest point (and its exact duplicates)
  // survive.
  std::vector<ParetoPoint> pts = {{3, 0, 0}, {1, 0, 1}, {2, 0, 2}, {1, 0, 3}};
  auto front = paretoFront(pts);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(pts[front[0]].tag, 1u);
  EXPECT_EQ(pts[front[1]].tag, 3u);
}

TEST(Pareto, EmptyInputEmptyFront) {
  EXPECT_TRUE(paretoFront({}).empty());
}

// ------------------------------------------------------------- design spaces

TEST(DesignSpace, ParsesAxesDerivesConstraintsAndCost) {
  auto space = parseDesignSpace(
      "base=bgq;"
      "membw=15,30,60;"
      "peakflops=4:8:2;"
      "l1kb=16:64:*2;"
      "derive llcmb = l1kb / 2;"
      "constraint = membw <= peakflops * 10;"
      "cost = membw / 4 + l1kb / 16");
  EXPECT_EQ(space.axes.size(), 3u);
  EXPECT_EQ(space.derived.size(), 1u);
  EXPECT_EQ(space.constraints.size(), 1u);
  ASSERT_NE(space.cost, nullptr);
  // 3 (membw) x 3 (peakflops 4,6,8) x 3 (l1kb 16,32,64).
  EXPECT_EQ(space.gridCount(), 27u);
}

TEST(DesignSpace, GeometricRangeExpandsByFactor) {
  auto space = parseDesignSpace("base=bgq; l1kb=16:256:*2");
  ASSERT_EQ(space.axes.size(), 1u);
  std::vector<double> expect = {16, 32, 64, 128, 256};
  EXPECT_EQ(space.axes[0].values, expect);
}

TEST(DesignSpace, MaterializeAppliesDerivesAndNamesBoth) {
  auto space = parseDesignSpace("base=bgq; l1kb=16,32; derive llcmb = l1kb");
  double cost = 0;
  auto cfg = space.materialize({1}, &cost);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_NE(cfg->name.find("l1kb=32"), std::string::npos);
  EXPECT_NE(cfg->name.find("llcmb=32"), std::string::npos);
  EXPECT_TRUE(std::isnan(cost));  // no cost model in this spec
}

TEST(DesignSpace, ConstraintRejectsViolatingPoints) {
  auto space = parseDesignSpace(
      "base=bgq; membw=15,30,60; constraint = membw < 50");
  EXPECT_TRUE(space.materialize({0}).has_value());
  EXPECT_TRUE(space.materialize({1}).has_value());
  EXPECT_FALSE(space.materialize({2}).has_value());
}

TEST(DesignSpace, CostModelPricesCandidates) {
  auto space = parseDesignSpace("base=bgq; membw=15,30; cost = membw * 2");
  double cost = 0;
  ASSERT_TRUE(space.materialize({1}, &cost).has_value());
  EXPECT_EQ(cost, 60.0);
}

TEST(DesignSpace, DecodeIsRowMajorLastAxisFastest) {
  auto space = parseDesignSpace("base=bgq; membw=15,30; freq=1.0,1.2,1.4");
  EXPECT_EQ(space.decode(0), (std::vector<size_t>{0, 0}));
  EXPECT_EQ(space.decode(1), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(space.decode(3), (std::vector<size_t>{1, 0}));
  EXPECT_EQ(space.decode(5), (std::vector<size_t>{1, 2}));
}

TEST(DesignSpace, FromGridWrapsPlainGrid) {
  auto space = DesignSpace::fromGrid(parseGridSpec("base=bgq; membw=15,30"));
  EXPECT_EQ(space.gridCount(), 2u);
  EXPECT_TRUE(space.constraints.empty());
  EXPECT_EQ(space.cost, nullptr);
}

TEST(DesignSpace, RejectsMalformedSpecs) {
  EXPECT_THROW(parseDesignSpace("base=bgq; nosuchfield=1,2"), Error);
  EXPECT_THROW(parseDesignSpace("base=bgq; derive nosuchfield = 1"), Error);
  EXPECT_THROW(parseDesignSpace("base=bgq; membw=15; cost = notafield * 2"), Error);
  EXPECT_THROW(parseDesignSpace("base=bgq; constraint = membw"), Error);  // no cmp op
  EXPECT_THROW(parseDesignSpace("base=bgq; membw=15:60:*1"), Error);  // factor <= 1
  EXPECT_THROW(parseDesignSpace("base=bgq; cost = 1; cost = 2"), Error);
}

// ------------------------------------------------------- search determinism

SearchOptions smallSearch(SearchAlgorithm algo, uint64_t seed, int threads) {
  SearchOptions opts;
  opts.algorithm = algo;
  opts.seed = seed;
  opts.generationSize = 16;
  opts.rounds = 2;
  opts.survivors = 4;
  opts.sweep.criteria = scaledCriteria();
  opts.sweep.threads = threads;
  return opts;
}

TEST(Search, SameSeedAnyThreadCountRendersByteIdenticalReports) {
  auto space = parseDesignSpace(
      "base=bgq; freq=1.0:1.8:0.2; mlp=1:4:1; memlat=90:210:60;"
      "cost = freq * 4 + mlp");
  const auto& fe = frontendFor("sord");
  auto serial =
      runSearch(fe, space, smallSearch(SearchAlgorithm::SuccessiveHalving, 7, 1));
  auto parallel =
      runSearch(fe, space, smallSearch(SearchAlgorithm::SuccessiveHalving, 7, 3));
  EXPECT_EQ(searchToCsv(serial), searchToCsv(parallel));
  EXPECT_EQ(searchToMarkdown(serial), searchToMarkdown(parallel));
  EXPECT_GT(serial.evals(), 0u);
  ASSERT_TRUE(serial.bestIndex.has_value());
  EXPECT_TRUE(serial.hasCost);
  EXPECT_FALSE(serial.front.empty());
}

TEST(Search, ExhaustiveFindsTheLatticeOptimum) {
  auto space = parseDesignSpace("base=bgq; freq=1.0,1.4,1.8; mlp=1,2,4");
  const auto& fe = frontendFor("sord");
  auto result =
      runSearch(fe, space, smallSearch(SearchAlgorithm::Exhaustive, 1, 1));
  ASSERT_EQ(result.evals(), 9u);
  ASSERT_TRUE(result.bestIndex.has_value());
  const auto& best = result.evaluated[*result.bestIndex];
  for (const auto& p : result.evaluated) {
    EXPECT_GE(p.projectedSeconds, best.projectedSeconds) << p.config;
  }
  EXPECT_EQ(result.provenance.rfind("complete", 0), 0u) << result.provenance;
}

TEST(Search, BudgetExhaustionIsProvenanceNotAnError) {
  auto space = parseDesignSpace("base=bgq; freq=1.0:1.8:0.2; mlp=1:8:1");
  auto opts = smallSearch(SearchAlgorithm::SuccessiveHalving, 3, 1);
  opts.evalBudget = 10;
  auto result = runSearch(frontendFor("sord"), space, opts);
  EXPECT_TRUE(result.budgetExhausted);
  EXPECT_LE(result.evals(), 10u);
  EXPECT_EQ(result.provenance.rfind("budget-exhausted", 0), 0u)
      << result.provenance;
  ASSERT_TRUE(result.bestIndex.has_value());  // partial answers still land
}

TEST(Search, ThrowsOnAxislessSpace) {
  auto space = parseDesignSpace("base=bgq");
  EXPECT_THROW(runSearch(frontendFor("sord"), space, {}), Error);
}

// ------------------------------------------------------------- sweep dedup

TEST(SweepDedup, DuplicateConfigsEvaluateOnceAndMirrorOutcomes) {
  auto& reg = telemetry::Registry::global();
  bool wasEnabled = reg.enabled();
  reg.setEnabled(true);
  reg.counter("sweep/dedup").reset();

  auto configs = parseGridSpec("base=bgq; membw=15,30").expand();
  ASSERT_EQ(configs.size(), 2u);
  std::vector<MachineConfig> withDups = {configs[0], configs[1], configs[0],
                                         configs[1]};
  withDups[2].name = "dup-of-0";
  withDups[3].name = "dup-of-1";

  sweep::SweepOptions opts;
  opts.threads = 1;
  opts.criteria = scaledCriteria();
  auto result = sweep::runSweep(frontendFor("sord"), withDups, opts);

  EXPECT_EQ(reg.counter("sweep/dedup").value(), 2u);
  ASSERT_EQ(result.outcomes.size(), 4u);
  EXPECT_EQ(result.outcomes[2].config, "dup-of-0");
  EXPECT_EQ(result.outcomes[2].projectedSeconds,
            result.outcomes[0].projectedSeconds);
  EXPECT_EQ(result.outcomes[3].config, "dup-of-1");
  EXPECT_EQ(result.outcomes[3].projectedSeconds,
            result.outcomes[1].projectedSeconds);
  EXPECT_EQ(result.outcomes[2].index, 2u);
  reg.setEnabled(wasEnabled);
}

// ------------------------------------------- SIMD combine == scalar combine

class SimdCombine : public ::testing::TestWithParam<const char*> {};

TEST_P(SimdCombine, BitIdenticalAcrossModesAndTotals) {
  const auto& fe = frontendFor(GetParam());
  auto configs =
      parseGridSpec("base=bgq; membw=20,40; freq=1.0,1.4; mlp=2,4").expand();
  std::vector<roofline::Roofline> models;
  for (const auto& c : configs) {
    models.emplace_back(c.machine, roofline::RooflineParams{});
  }
  roofline::BatchedEstimator estimator(fe.bet(), &fe.module(),
                                       &core::WorkloadFrontend::libProfile().mixes);

  auto scalar =
      estimator.estimateGrid(models, {}, roofline::CombineMode::Scalar);
  auto simd = estimator.estimateGrid(models, {}, roofline::CombineMode::Simd);
  ASSERT_EQ(scalar.size(), simd.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].totalSeconds, simd[i].totalSeconds) << configs[i].name;
    ASSERT_EQ(scalar[i].blocks.size(), simd[i].blocks.size());
    for (const auto& [origin, sb] : scalar[i].blocks) {
      const auto& vb = simd[i].blocks.at(origin);
      EXPECT_EQ(vb.label, sb.label);
      EXPECT_EQ(vb.tcSeconds, sb.tcSeconds) << sb.label;
      EXPECT_EQ(vb.tmSeconds, sb.tmSeconds) << sb.label;
      EXPECT_EQ(vb.toSeconds, sb.toSeconds) << sb.label;
      EXPECT_EQ(vb.seconds, sb.seconds) << sb.label;
      EXPECT_EQ(vb.fraction, sb.fraction) << sb.label;
    }
  }

  // The totals-only combine must agree with the materializing one bitwise,
  // in every mode.
  auto totScalar =
      estimator.estimateTotals(models, {}, roofline::CombineMode::Scalar);
  auto totSimd = estimator.estimateTotals(models, {}, roofline::CombineMode::Simd);
  ASSERT_EQ(totScalar.size(), scalar.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(totScalar[i], scalar[i].totalSeconds) << configs[i].name;
    EXPECT_EQ(totSimd[i], scalar[i].totalSeconds) << configs[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SimdCombine,
                         ::testing::Values("sord", "chargei", "srad", "cfd",
                                           "stassuij"));

TEST(SimdCombine, SweepReportsByteIdenticalAcrossCombineModes) {
  sweep::SweepOptions opts;
  opts.threads = 1;
  opts.criteria = scaledCriteria();
  auto grid = parseGridSpec("base=bgq; l1kb=16,32; membw=20,40; freq=1.0,1.4");
  opts.combine = roofline::CombineMode::Scalar;
  auto scalar = sweep::runSweep(frontendFor("sord"), grid, opts);
  opts.combine = roofline::CombineMode::Simd;
  auto simd = sweep::runSweep(frontendFor("sord"), grid, opts);
  EXPECT_EQ(sweep::toCsv(scalar), sweep::toCsv(simd));
  EXPECT_EQ(sweep::toMarkdown(scalar), sweep::toMarkdown(simd));
}

TEST(SimdCombine, LanesMatchBuildTarget) {
  // 1 (portable), 2 (SSE2/NEON), 4 (AVX) or 8 (AVX-512), never anything else.
  int lanes = roofline::BatchedEstimator::simdLanes();
  EXPECT_TRUE(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8);
}

}  // namespace
}  // namespace skope::search
