// Cross-cutting property tests.
//
// The deepest invariant of the whole framework: for programs whose control
// flow the translator can resolve statically, the BET's expected operation
// counts must equal the VM's *measured* dynamic counts — the model and the
// ground truth agree on "what executes", and disagree only on "how long it
// takes". Plus randomized invariants on expressions, contexts and BETs.
#include <gtest/gtest.h>

#include <cmath>

#include "bet/builder.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "roofline/estimate.h"
#include "skeleton/parser.h"
#include "skeleton/printer.h"
#include "support/rng.h"
#include "translate/annotate.h"
#include "translate/translate.h"
#include "vm/compiler.h"
#include "vm/profile.h"

namespace skope {
namespace {

// ---------------------------------------------------------------------------
// Model-vs-measurement count agreement
// ---------------------------------------------------------------------------

struct CountCase {
  const char* name;
  const char* source;
  std::map<std::string, double> params;
};

class CountAgreement : public ::testing::TestWithParam<CountCase> {};

TEST_P(CountAgreement, BetExpectedOpsMatchVmMeasuredOps) {
  const CountCase& tc = GetParam();
  auto prog = minic::parseProgram(tc.source, tc.name);
  minic::analyzeOrThrow(*prog);
  vm::Module mod = vm::compile(*prog);

  vm::ProfileData pd = vm::profileRun(mod, tc.params, 11);
  auto sk = translate::translateProgram(*prog);
  translate::annotate(sk, pd);
  bet::Bet b = bet::buildBet(sk, ParamEnv(tc.params));
  roofline::Roofline model(MachineModel::bgq());
  auto result = roofline::estimate(b, model, &mod);

  // total expected flops / loads / stores from the model
  skel::SkMetrics modelTotal;
  for (const auto& [origin, bc] : result.blocks) {
    if (vm::isLibRegion(origin)) continue;
    modelTotal += bc.perInvocation.scaled(bc.enr);
  }
  const vm::OpCounters& oc = pd.opCounters;
  auto vmFlops = static_cast<double>(oc.classTotal(vm::OpClass::FpAdd) +
                                     oc.classTotal(vm::OpClass::FpMul) +
                                     oc.classTotal(vm::OpClass::FpDiv));
  auto vmLoads = static_cast<double>(oc.classTotal(vm::OpClass::Load));
  auto vmStores = static_cast<double>(oc.classTotal(vm::OpClass::Store));

  // statistical modeling of branches introduces small error; 5% tolerance
  EXPECT_NEAR(modelTotal.totalFlops(), vmFlops, 0.05 * vmFlops + 5) << tc.name;
  EXPECT_NEAR(modelTotal.loads, vmLoads, 0.05 * vmLoads + 5) << tc.name;
  EXPECT_NEAR(modelTotal.stores, vmStores, 0.05 * vmStores + 5) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, CountAgreement,
    ::testing::Values(
        CountCase{"affine_nest", R"(
          param int N = 50;
          global real a[N][N];
          func void main() {
            var int i; var int j;
            for (i = 0; i < N; i = i + 1) {
              for (j = 0; j < N; j = j + 1) { a[i][j] = a[i][j] * 2.0 + 1.0; }
            }
          }
        )", {{"N", 50}}},
        CountCase{"triangular_via_profile", R"(
          param int N = 60;
          global real a[N];
          func void main() {
            var int i; var int j;
            for (i = 0; i < N; i = i + 1) {
              j = i;
              while (j < N) { a[j] = a[j] + 1.0; j = j + 1; }
            }
          }
        )", {{"N", 60}}},
        CountCase{"branchy", R"(
          param int N = 4000;
          global real a[N];
          global real out;
          func void main() {
            var int i;
            for (i = 0; i < N; i = i + 1) { a[i] = rand(); }
            for (i = 0; i < N; i = i + 1) {
              if (a[i] < 0.3) { out = out + a[i] * a[i]; }
              else { out = out - a[i]; }
            }
          }
        )", {{"N", 4000}}},
        CountCase{"calls_in_loop", R"(
          param int N = 30;
          global real acc[N];
          func real work(int n) {
            var int k;
            var real s = 0.0;
            for (k = 0; k < n; k = k + 1) { s = s + k * 0.5; }
            return s;
          }
          func void main() {
            var int i;
            for (i = 0; i < N; i = i + 1) { acc[i] = work(N); }
          }
        )", {{"N", 30}}}),
    [](const ::testing::TestParamInfo<CountCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Randomized expression round-trip
// ---------------------------------------------------------------------------

ExprPtr randomExpr(Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.3)) {
    if (rng.chance(0.5)) return constant(rng.range(1, 9));
    return param(rng.chance(0.5) ? "N" : "M");
  }
  switch (rng.below(6)) {
    case 0: return add(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 1: return sub(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 2: return mul(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 3: return exprMin(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 4: return exprMax(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    default: return ceilDiv(randomExpr(rng, depth - 1), constant(rng.range(1, 4)));
  }
}

class ExprRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ExprRoundTrip, PrintParseEvalAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  ParamEnv env({{"N", 13}, {"M", 4}});
  for (int i = 0; i < 50; ++i) {
    ExprPtr e = randomExpr(rng, 4);
    ExprPtr reparsed = parseExpr(e->str());
    EXPECT_DOUBLE_EQ(e->eval(env), reparsed->eval(env)) << e->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTrip, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Randomized BET invariants
// ---------------------------------------------------------------------------

// Generates a random (valid, resolved) skeleton program.
skel::SkNodeUP randomBody(Rng& rng, int depth, uint32_t& nextOrigin);

void fillBlock(Rng& rng, std::vector<skel::SkNodeUP>& kids, int depth,
               uint32_t& nextOrigin) {
  int n = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < n; ++i) kids.push_back(randomBody(rng, depth, nextOrigin));
}

skel::SkNodeUP randomBody(Rng& rng, int depth, uint32_t& nextOrigin) {
  uint32_t origin = nextOrigin++;
  if (depth <= 0 || rng.chance(0.4)) {
    return skel::makeComp({rng.uniform(0, 8), 0, rng.uniform(0, 4),
                           rng.uniform(0, 3), rng.uniform(0, 2)}, origin);
  }
  if (rng.chance(0.5)) {
    auto loop = skel::makeLoop(constant(rng.range(1, 20)), origin);
    fillBlock(rng, loop->kids, depth - 1, nextOrigin);
    if (rng.chance(0.3)) {
      auto guard = skel::makeBranch(constant(rng.uniform(0, 0.3)), nextOrigin++);
      guard->kids.push_back(skel::makeSimple(skel::SkKind::Break, nextOrigin++));
      loop->kids.push_back(std::move(guard));
    }
    return loop;
  }
  auto branch = skel::makeBranch(constant(rng.uniform()), origin);
  fillBlock(rng, branch->kids, depth - 1, nextOrigin);
  if (rng.chance(0.5)) fillBlock(rng, branch->elseKids, depth - 1, nextOrigin);
  return branch;
}

class BetInvariants : public ::testing::TestWithParam<int> {};

TEST_P(BetInvariants, ProbabilitiesAndEnrWellFormed) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  skel::SkeletonProgram sk;
  uint32_t nextOrigin = 100;
  auto def = skel::makeDef("main", {}, 1);
  fillBlock(rng, def->kids, 4, nextOrigin);
  sk.defs.push_back(std::move(def));

  bet::Bet b = bet::buildBet(sk, ParamEnv{});
  roofline::Roofline model(MachineModel::bgq());
  auto result = roofline::estimate(b, model);

  b.root->visit([&](const bet::BetNode& n) {
    EXPECT_GE(n.prob, 0.0);
    EXPECT_LE(n.prob, 1.0 + 1e-9);
    EXPECT_GE(n.numIter, 0.0);
    EXPECT_GE(n.enr, 0.0);
    EXPECT_FALSE(std::isnan(n.enr));
    if (n.parent) {
      // ENR formula holds exactly
      EXPECT_NEAR(n.enr, n.numIter * n.prob * n.parent->enr, 1e-9 * (1 + n.enr));
    }
  });

  double fracSum = 0;
  for (const auto& [origin, bc] : result.blocks) {
    EXPECT_GE(bc.seconds, 0.0);
    fracSum += bc.fraction;
  }
  if (!result.blocks.empty() && result.totalSeconds > 0) {
    EXPECT_NEAR(fracSum, 1.0, 1e-9);
  }

  // determinism: rebuilding gives an identical tree size and total
  bet::Bet b2 = bet::buildBet(sk, ParamEnv{});
  auto result2 = roofline::estimate(b2, model);
  EXPECT_EQ(b.size(), b2.size());
  EXPECT_DOUBLE_EQ(result.totalSeconds, result2.totalSeconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetInvariants, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Skeleton print/parse round trip on random trees
// ---------------------------------------------------------------------------

class SkeletonRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SkeletonRoundTrip, PrintParseFixedPoint) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  skel::SkeletonProgram sk;
  sk.params = {"N"};
  uint32_t nextOrigin = 10;
  auto def = skel::makeDef("main", {}, 1);
  fillBlock(rng, def->kids, 3, nextOrigin);
  sk.defs.push_back(std::move(def));

  std::string once = skel::printSkeleton(sk);
  skel::SkeletonProgram reparsed = skel::parseSkeleton(once);
  EXPECT_EQ(skel::printSkeleton(reparsed), once);
  EXPECT_EQ(reparsed.totalNodes(), sk.totalNodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonRoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace skope
