// Artifact-cache contracts (docs/ARTIFACTS.md):
//   1. the blob primitives round-trip and the reader rejects every overrun,
//   2. SHA-256 / FNV-1a match their published test vectors,
//   3. the front-end key moves with every input that determines the bytes,
//   4. profile + trace + histograms round-trip exactly, the trace as a
//      zero-copy view into the blob,
//   5. corruption of ANY kind (including the checked-in hostile corpus in
//      tests/bad_inputs/artifact_*.blob) falls back to recompute with the
//      artifact/corrupt counter bumped and the bad entry removed,
//   6. concurrent same-key writers converge to one valid entry and a reader
//      racing the evictor never observes a torn blob,
//   7. the size cap evicts oldest-first,
//   8. a warm front-end build equals its cold build and a warm sweep report
//      is byte-identical to the cold one at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "artifact/blob.h"
#include "artifact/cache.h"
#include "artifact/sha256.h"
#include "artifact/store.h"
#include "core/frontend.h"
#include "support/diagnostics.h"
#include "support/text.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "telemetry/telemetry.h"
#include "trace/cache_model.h"
#include "trace/reuse.h"
#include "trace/trace.h"
#include "vm/interp.h"
#include "vm/profile.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace skope::artifact {
namespace {

namespace fs = std::filesystem;

/// Fresh store directory per test, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    static std::atomic<uint64_t> seq{0};
    path = (fs::temp_directory_path() /
            format("skope-artifact-test-%d-%llu", static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(seq.fetch_add(1))))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

uint64_t counterValue(const char* name) {
  auto snap = telemetry::Registry::global().metrics();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

class ArtifactTelemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::Registry::global().clear();
    telemetry::Registry::global().setEnabled(true);
  }
  void TearDown() override {
    telemetry::Registry::global().setEnabled(false);
    telemetry::Registry::global().clear();
  }
};

/// A syntactically valid 64-hex key for store-level tests.
std::string testKey(char fill = 'a') { return std::string(64, fill); }

trace::MemoryTrace makeTrace(const std::vector<std::pair<uint32_t, uint64_t>>& refs,
                             uint64_t maxRefs = trace::kDefaultMaxRefs) {
  trace::TraceRecorder rec(maxRefs);
  for (const auto& [region, addr] : refs) rec.onLoad(region, addr);
  vm::Module empty;
  vm::Vm vm(empty);
  return rec.finish(vm);
}

vm::ProfileData makeProfile() {
  vm::ProfileData p;
  p.branchSites[3] = {40, 50};
  p.branchSites[9] = {0, 7};
  p.libCalls[{2, 1}] = 11;
  p.libCalls[{5, 0}] = 3;
  p.calls[{2, 4}] = 19;
  p.opCounters.reset(3);
  for (size_t i = 0; i < p.opCounters.flat.size(); ++i) {
    p.opCounters.flat[i] = i * 17 + 1;
  }
  return p;
}

std::vector<std::pair<uint32_t, uint64_t>> strideRefs(size_t n) {
  std::vector<std::pair<uint32_t, uint64_t>> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    refs.emplace_back(static_cast<uint32_t>(i % 3 + 1), (i * 24) % 4096);
  }
  return refs;
}

void expectHistogramsEqual(const trace::ReuseHistograms& a,
                           const trace::ReuseHistograms& b) {
  EXPECT_EQ(a.lineBytes, b.lineBytes);
  EXPECT_EQ(a.totalRefs, b.totalRefs);
  EXPECT_EQ(a.totalCold, b.totalCold);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].region, b.regions[i].region);
    EXPECT_EQ(a.regions[i].coldRefs, b.regions[i].coldRefs);
    EXPECT_EQ(a.regions[i].totalRefs, b.regions[i].totalRefs);
    EXPECT_EQ(a.regions[i].dist, b.regions[i].dist);
  }
}

// ---------------------------------------------------------------- primitives

TEST(Sha256, MatchesPublishedVectors) {
  EXPECT_EQ(sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Incremental updates hash identically to one-shot.
  Sha256 h;
  h.update("ab");
  h.update("c");
  EXPECT_EQ(h.hex(), sha256Hex("abc"));
}

TEST(Fnv1a64, MatchesPublishedVectors) {
  EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a64(a, 1), 0xaf63dc4c8601ec8cull);
}

TEST(Blob, PrimitivesRoundTrip) {
  BlobWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-1.5e300);
  w.varint(0);
  w.varint(300);
  w.varint(UINT64_MAX);
  w.str("hello");
  BlobWriter inner;
  inner.u32(7);
  w.bytes(inner.data().data(), inner.data().size());

  BlobReader r(w.data().data(), w.data().size());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1.5e300);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 300u);
  EXPECT_EQ(r.varint(), UINT64_MAX);
  EXPECT_EQ(r.str(), "hello");
  BlobReader sub = r.section();
  EXPECT_EQ(sub.u32(), 7u);
  sub.expectEnd();
  r.expectEnd();
}

TEST(Blob, ReaderRejectsEveryOverrun) {
  BlobWriter w;
  w.u32(42);
  BlobReader r(w.data().data(), w.data().size());
  (void)r.u32();
  EXPECT_THROW(r.u8(), Error);   // past the end
  EXPECT_THROW(r.u64(), Error);

  // Length prefix larger than the remaining payload.
  BlobWriter w2;
  w2.varint(1000);
  w2.u8(1);
  BlobReader r2(w2.data().data(), w2.data().size());
  EXPECT_THROW(r2.bytes(), Error);

  // A varint that never terminates within 64 bits.
  std::vector<uint8_t> runaway(11, 0x80);
  BlobReader r3(runaway.data(), runaway.size());
  EXPECT_THROW(r3.varint(), Error);

  // Trailing bytes after a decode that believed it was done.
  BlobWriter w4;
  w4.u8(1);
  w4.u8(2);
  BlobReader r4(w4.data().data(), w4.data().size());
  (void)r4.u8();
  EXPECT_THROW(r4.expectEnd(), Error);
}

// ---------------------------------------------------------------------- keys

TEST(FrontendKey, MovesWithEveryInput) {
  const std::map<std::string, double> params{{"N", 64.0}, {"STEPS", 2.0}};
  std::string base = ArtifactCache::frontendKey("src", params, 1, 0, true, 100);
  EXPECT_EQ(base.size(), 64u);
  EXPECT_EQ(base, ArtifactCache::frontendKey("src", params, 1, 0, true, 100));

  EXPECT_NE(base, ArtifactCache::frontendKey("src2", params, 1, 0, true, 100));
  EXPECT_NE(base, ArtifactCache::frontendKey("src", {{"N", 65.0}, {"STEPS", 2.0}},
                                             1, 0, true, 100));
  EXPECT_NE(base, ArtifactCache::frontendKey("src", {{"N", 64.0}}, 1, 0, true, 100));
  EXPECT_NE(base, ArtifactCache::frontendKey("src", params, 2, 0, true, 100));
  EXPECT_NE(base, ArtifactCache::frontendKey("src", params, 1, 7, true, 100));
  EXPECT_NE(base, ArtifactCache::frontendKey("src", params, 1, 0, false, 100));
  EXPECT_NE(base, ArtifactCache::frontendKey("src", params, 1, 0, true, 101));
}

TEST(FrontendKey, EnvDirReflectsEnvironment) {
  ::setenv("SKOPE_ARTIFACT_CACHE", "/tmp/some-cache", 1);
  EXPECT_EQ(ArtifactCache::envDir(), "/tmp/some-cache");
  ::unsetenv("SKOPE_ARTIFACT_CACHE");
  EXPECT_EQ(ArtifactCache::envDir(), "");
}

// --------------------------------------------------------------------- store

TEST_F(ArtifactTelemetry, StoreRoundTripsAndCounts) {
  TempDir dir;
  ArtifactStore store(dir.path);
  std::vector<uint8_t> payload{1, 2, 3, 4, 5};

  EXPECT_FALSE(store.load(testKey()).has_value());
  EXPECT_EQ(counterValue("artifact/miss"), 1u);

  store.store(testKey(), payload);
  EXPECT_EQ(counterValue("artifact/write"), 1u);

  auto loaded = store.load(testKey());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size, payload.size());
  EXPECT_EQ(std::vector<uint8_t>(loaded->payload, loaded->payload + loaded->size),
            payload);
  EXPECT_EQ(counterValue("artifact/hit"), 1u);
  EXPECT_EQ(counterValue("artifact/bytes"), payload.size());
  EXPECT_EQ(store.storeBytes(), payload.size() + 32);  // container header
}

TEST(ArtifactStore, RejectsMalformedKeys) {
  TempDir dir;
  ArtifactStore store(dir.path);
  EXPECT_THROW(store.pathFor("short"), Error);
  EXPECT_THROW(store.pathFor(std::string(64, 'G')), Error);   // not hex
  EXPECT_THROW(store.pathFor("../" + std::string(61, 'a')), Error);
}

TEST_F(ArtifactTelemetry, ContainerCorruptionFallsBackToMiss) {
  struct Case {
    const char* name;
    void (*mutate)(const std::string& path);
  };
  const Case cases[] = {
      {"bad magic",
       [](const std::string& p) {
         std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
         f.seekp(0);
         f.write("XXXX", 4);
       }},
      {"flipped payload byte",
       [](const std::string& p) {
         std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
         f.seekp(35);
         f.put(static_cast<char>(0x5a));
       }},
      {"truncated file",
       [](const std::string& p) { fs::resize_file(p, 33); }},
      {"short header",
       [](const std::string& p) { fs::resize_file(p, 10); }},
      {"future format version",
       [](const std::string& p) {
         std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
         f.seekp(8);
         f.put(static_cast<char>(0xee));  // version LSB
       }},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    TempDir dir;
    ArtifactStore store(dir.path);
    store.store(testKey(), {10, 20, 30, 40, 50, 60});
    const std::string path = store.pathFor(testKey());
    c.mutate(path);
    uint64_t corruptBefore = counterValue("artifact/corrupt");
    bool corrupt = false;
    EXPECT_FALSE(store.load(testKey(), &corrupt).has_value());
    EXPECT_TRUE(corrupt);
    EXPECT_EQ(counterValue("artifact/corrupt"), corruptBefore + 1);
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be removed";
    // The slot is reusable: a rewrite serves hits again.
    store.store(testKey(), {10, 20, 30, 40, 50, 60});
    EXPECT_TRUE(store.load(testKey()).has_value());
  }
}

TEST_F(ArtifactTelemetry, HostileCorpusBlobsAllFallBackToRecompute) {
  // The checked-in corpus: hand-built containers covering every header
  // failure plus a checksum-valid blob whose payload fails the strict
  // section decode. Planted directly at a key's path, each must produce a
  // clean recompute signal — corrupt counted, entry removed, no throw.
  const char* corpus[] = {
      "artifact_bad_magic.blob",      "artifact_version_999.blob",
      "artifact_truncated.blob",      "artifact_bad_checksum.blob",
      "artifact_garbage_payload.blob", "artifact_short_header.blob",
  };
  for (const char* file : corpus) {
    SCOPED_TRACE(file);
    TempDir dir;
    ArtifactCache cache(dir.path);
    const std::string key = testKey('b');
    const std::string path = cache.store().pathFor(key);
    fs::create_directories(fs::path(path).parent_path());
    fs::copy_file(std::string(SKOPE_BAD_INPUTS_DIR) + "/" + file, path);
    uint64_t corruptBefore = counterValue("artifact/corrupt");
    Outcome outcome = Outcome::kOff;
    EXPECT_FALSE(cache.loadFrontend(key, &outcome).has_value());
    EXPECT_EQ(outcome, Outcome::kCorrupt);
    EXPECT_EQ(counterValue("artifact/corrupt"), corruptBefore + 1);
    EXPECT_FALSE(fs::exists(path));
  }
}

// ------------------------------------------------------------ serialization

TEST(ArtifactCacheRoundTrip, FrontendBlobRestoresProfileAndZeroCopyTrace) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  vm::ProfileData profile = makeProfile();
  trace::MemoryTrace trace = makeTrace(strideRefs(500));
  trace.mispredictsByRegion[1] = 12;
  const std::string key = testKey('c');

  cache.storeFrontend(key, profile, trace);
  Outcome outcome = Outcome::kOff;
  auto loaded = cache.loadFrontend(key, &outcome);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(outcome, Outcome::kHit);

  EXPECT_EQ(loaded->profile.branchSites.size(), profile.branchSites.size());
  EXPECT_EQ(loaded->profile.branchSites.at(3).takenCount, 40u);
  EXPECT_EQ(loaded->profile.branchSites.at(3).total, 50u);
  EXPECT_EQ(loaded->profile.libCalls, profile.libCalls);
  EXPECT_EQ(loaded->profile.calls, profile.calls);
  EXPECT_EQ(loaded->profile.opCounters.flat, profile.opCounters.flat);

  EXPECT_EQ(loaded->trace.numRefs, trace.numRefs);
  EXPECT_EQ(loaded->trace.recordedRefs, trace.recordedRefs);
  EXPECT_EQ(loaded->trace.truncated, trace.truncated);
  EXPECT_EQ(loaded->trace.dynamicInstrs, trace.dynamicInstrs);
  EXPECT_EQ(loaded->trace.mispredictsByRegion, trace.mispredictsByRegion);

  // Zero-copy contract: the loaded stream is a view into the blob's mapping
  // (no owned bytes), same length, same decoded reference sequence.
  EXPECT_NE(loaded->trace.view, nullptr);
  EXPECT_TRUE(loaded->trace.stream.empty());
  EXPECT_NE(loaded->trace.backing, nullptr);
  ASSERT_EQ(loaded->trace.sizeBytes(), trace.sizeBytes());
  std::vector<std::pair<uint32_t, uint64_t>> a, b;
  trace.forEachRef([&](uint32_t r, uint64_t w) { a.emplace_back(r, w); });
  loaded->trace.forEachRef([&](uint32_t r, uint64_t w) { b.emplace_back(r, w); });
  EXPECT_EQ(a, b);

  // The view must stay valid after the cache object is gone (backing holds
  // the mapping) — copy out through it once more.
  trace::MemoryTrace survivor = loaded->trace;
  loaded.reset();
  size_t n = 0;
  survivor.forEachRef([&](uint32_t, uint64_t) { ++n; });
  EXPECT_EQ(n, static_cast<size_t>(trace.recordedRefs));
}

TEST(ArtifactCacheRoundTrip, ReadFallbackMatchesMmap) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  vm::ProfileData profile = makeProfile();
  trace::MemoryTrace trace = makeTrace(strideRefs(100));
  const std::string key = testKey('d');
  cache.storeFrontend(key, profile, trace);

  ::setenv("SKOPE_ARTIFACT_NO_MMAP", "1", 1);
  auto loaded = cache.loadFrontend(key);
  ::unsetenv("SKOPE_ARTIFACT_NO_MMAP");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->trace.recordedRefs, trace.recordedRefs);
  std::vector<std::pair<uint32_t, uint64_t>> a, b;
  trace.forEachRef([&](uint32_t r, uint64_t w) { a.emplace_back(r, w); });
  loaded->trace.forEachRef([&](uint32_t r, uint64_t w) { b.emplace_back(r, w); });
  EXPECT_EQ(a, b);
}

TEST(ArtifactCacheRoundTrip, HistogramsRoundTripExactly) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  trace::MemoryTrace trace = makeTrace(strideRefs(400));
  trace::ReuseDistanceAnalyzer analyzer(trace);
  const trace::ReuseHistograms& computed = analyzer.histograms(64);

  const std::string key = testKey('e');
  cache.storeHistograms(key, computed);
  auto loaded = cache.loadHistograms(key, 64);
  ASSERT_NE(loaded, nullptr);
  expectHistogramsEqual(computed, *loaded);

  // Different line size is a different content address: a miss.
  EXPECT_EQ(cache.loadHistograms(key, 128), nullptr);
  // And a different front-end key too.
  EXPECT_EQ(cache.loadHistograms(testKey('f'), 64), nullptr);
}

// --------------------------------------------------------------------- hooks

TEST_F(ArtifactTelemetry, AnalyzerHookServesPersistedHistograms) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  trace::MemoryTrace trace = makeTrace(strideRefs(600));
  const std::string key = testKey('a');

  auto hook1 = cache.makeReuseHook(key);
  trace::ReuseDistanceAnalyzer first(trace, 1, {}, hook1.get());
  const trace::ReuseHistograms& computed = first.histograms(64);
  EXPECT_GE(counterValue("artifact/write"), 1u);

  uint64_t hitsBefore = counterValue("artifact/hit");
  auto hook2 = cache.makeReuseHook(key);
  trace::ReuseDistanceAnalyzer second(trace, 1, {}, hook2.get());
  const trace::ReuseHistograms& served = second.histograms(64);
  EXPECT_GT(counterValue("artifact/hit"), hitsBefore) << "second analyzer must load";
  expectHistogramsEqual(computed, served);
}

TEST_F(ArtifactTelemetry, ExactReplayRoundTripsThroughCacheModel) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  trace::MemoryTrace trace = makeTrace(strideRefs(800));
  const std::string key = testKey('a');
  // A tiny L1 forces the exact-replay tier (few sets), which the hook must
  // persist and the second model must serve without re-walking the trace.
  MachineModel machine = MachineModel::bgq();

  auto hook1 = cache.makeReuseHook(key);
  trace::CacheModel first(trace, 1, {}, hook1.get());
  trace::CachePrediction cold = first.evaluate(machine);
  ASSERT_TRUE(trace::CacheModel::usesExactReplay(machine.l1))
      << "test premise: bgq L1 takes the exact tier";
  EXPECT_GE(counterValue("artifact/write"), 2u);  // histograms + replay blob

  uint64_t hitsBefore = counterValue("artifact/hit");
  auto hook2 = cache.makeReuseHook(key);
  trace::CacheModel second(trace, 1, {}, hook2.get());
  trace::CachePrediction warm = second.evaluate(machine);
  EXPECT_GT(counterValue("artifact/hit"), hitsBefore);

  EXPECT_EQ(warm.accesses, cold.accesses);
  EXPECT_EQ(warm.l1Misses, cold.l1Misses);
  EXPECT_EQ(warm.llcMisses, cold.llcMisses);
  EXPECT_EQ(warm.l1MissRate, cold.l1MissRate);
  ASSERT_EQ(warm.regions.size(), cold.regions.size());
  for (const auto& [region, r] : cold.regions) {
    EXPECT_EQ(warm.regions.at(region).accesses, r.accesses);
    EXPECT_EQ(warm.regions.at(region).l1Misses, r.l1Misses);
  }
}

TEST(ArtifactCacheHooks, MismatchedExactReplayIsRecomputedNotServed) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  trace::MemoryTrace trace = makeTrace(strideRefs(400));
  const std::string key = testKey('a');
  MachineModel machine = MachineModel::bgq();

  // Plant a decodable but wrong replay entry: refsTotal disagrees with the
  // trace, so the model must recompute instead of trusting it.
  trace::ExactReplayArtifact doctored;
  doctored.sizeBytes = machine.l1.sizeBytes;
  doctored.lineBytes = machine.l1.lineBytes;
  doctored.assoc = machine.l1.assoc;
  doctored.regionMisses = {1e9};
  doctored.refsByRegion = {trace.recordedRefs + 1};
  doctored.refsTotal = trace.recordedRefs + 1;
  cache.storeExactReplay(key, doctored);

  auto hook = cache.makeReuseHook(key);
  trace::CacheModel model(trace, 1, {}, hook.get());
  trace::CachePrediction got = model.evaluate(machine);

  trace::CacheModel oracle(trace);
  trace::CachePrediction want = oracle.evaluate(machine);
  EXPECT_EQ(got.accesses, want.accesses);
  EXPECT_EQ(got.l1Misses, want.l1Misses);
  EXPECT_EQ(got.llcMisses, want.llcMisses);
}

TEST(ArtifactCacheHooks, MismatchedTotalRefsIsRecomputedNotServed) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  trace::MemoryTrace trace = makeTrace(strideRefs(300));
  const std::string key = testKey('a');

  // Plant a decodable but wrong entry under the key: totalRefs disagrees
  // with the trace, which the analyzer's validation must reject.
  trace::ReuseHistograms doctored;
  doctored.lineBytes = 64;
  doctored.totalRefs = trace.recordedRefs + 1;
  doctored.totalCold = 1;
  cache.storeHistograms(key, doctored);

  auto hook = cache.makeReuseHook(key);
  trace::ReuseDistanceAnalyzer analyzer(trace, 1, {}, hook.get());
  const trace::ReuseHistograms& h = analyzer.histograms(64);
  EXPECT_EQ(h.totalRefs, trace.recordedRefs);
  EXPECT_FALSE(h.regions.empty());

  trace::ReuseDistanceAnalyzer oracle(trace);
  expectHistogramsEqual(oracle.histograms(64), h);
}

// --------------------------------------------------------------- concurrency

TEST(ArtifactStoreConcurrency, SameKeyWritersConvergeToOneValidEntry) {
  TempDir dir;
  ArtifactStore store(dir.path);
  const std::vector<uint8_t> payload(4096, 0x7e);
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 25;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) store.store(testKey(), payload);
    });
  }
  for (auto& th : writers) th.join();

  auto loaded = store.load(testKey());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::vector<uint8_t>(loaded->payload, loaded->payload + loaded->size),
            payload);
  // Exactly one published entry, zero leaked temp files.
  size_t files = 0, tmps = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    if (!e.is_regular_file()) continue;
    ++files;
    if (e.path().string().find(".tmp.") != std::string::npos) ++tmps;
  }
  EXPECT_EQ(files, 1u);
  EXPECT_EQ(tmps, 0u);
}

TEST_F(ArtifactTelemetry, ReaderRacingEvictionNeverSeesTornData) {
  TempDir dir;
  // Cap so small that every write triggers an eviction pass over the
  // previous entries — the reader keeps loading under constant unlinks.
  ArtifactStore writerStore(dir.path, /*maxBytes=*/2048);
  ArtifactStore readerStore(dir.path);
  const std::vector<uint8_t> payload(1024, 0x3c);
  std::vector<std::string> keys;
  for (char c : {'a', 'b', 'c', 'd'}) keys.push_back(testKey(c));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> loads{0};
  std::thread reader([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (auto got = readerStore.load(keys[i % keys.size()])) {
        // Verified by checksum: if a load succeeds its bytes are exact.
        ASSERT_EQ(got->size, payload.size());
        ASSERT_EQ(std::memcmp(got->payload, payload.data(), got->size), 0);
        loads.fetch_add(1, std::memory_order_relaxed);
      }
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    writerStore.store(keys[static_cast<size_t>(round) % keys.size()], payload);
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(loads.load(), 0u) << "reader should have observed some entries";
  EXPECT_GT(counterValue("artifact/evict"), 0u);
  // No entry the final pass left behind is torn.
  for (const auto& key : keys) {
    if (auto got = readerStore.load(key)) {
      EXPECT_EQ(std::memcmp(got->payload, payload.data(), got->size), 0);
    }
  }
  EXPECT_LE(writerStore.storeBytes(), 2048u + payload.size() + 32);
}

TEST_F(ArtifactTelemetry, SizeCapEvictsOldestFirst) {
  TempDir dir;
  const std::vector<uint8_t> payload(512, 1);  // 544 B on disk with header
  ArtifactStore store(dir.path, /*maxBytes=*/3 * 544);
  const std::string k1 = testKey('1'), k2 = testKey('2'), k3 = testKey('3'),
                    k4 = testKey('4');
  store.store(k1, payload);
  store.store(k2, payload);
  store.store(k3, payload);
  // Age the first two entries explicitly (mtime granularity is too coarse to
  // rely on write order within one test).
  auto old = fs::last_write_time(store.pathFor(k3)) - std::chrono::hours(2);
  fs::last_write_time(store.pathFor(k1), old);
  fs::last_write_time(store.pathFor(k2), old + std::chrono::minutes(1));

  store.store(k4, payload);  // over cap: must evict k1 (oldest), keep the rest
  EXPECT_FALSE(store.load(k1).has_value());
  EXPECT_TRUE(store.load(k2).has_value());
  EXPECT_TRUE(store.load(k3).has_value());
  EXPECT_TRUE(store.load(k4).has_value());
  EXPECT_GE(counterValue("artifact/evict"), 1u);
  EXPECT_LE(store.storeBytes(), 3u * 544);
}

// ------------------------------------------------------------ front-end/sweep

constexpr const char* kToySource = R"(
  param int N = 600;
  global real a[N];
  global real out;
  func void main() {
    var int i;
    var int t;
    for (t = 0; t < 3; t = t + 1) {
      for (i = 0; i < N; i = i + 1) { a[i] = a[i] * 0.5 + 1.0; }
    }
    out = a[7];
  }
)";

TEST(ArtifactFrontend, WarmBuildMatchesColdAndReportsProvenance) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  core::FrontendOptions opts;
  opts.artifacts = &cache;

  core::WorkloadFrontend cold("toy", kToySource, {{"N", 600}}, 0x5eed, opts);
  EXPECT_EQ(cold.artifactProvenance(), "miss:stored");
  ASSERT_TRUE(cold.memoryTrace().usable());

  core::WorkloadFrontend warm("toy", kToySource, {{"N", 600}}, 0x5eed, opts);
  EXPECT_EQ(warm.artifactProvenance(), "hit");
  EXPECT_EQ(warm.artifactKey(), cold.artifactKey());

  // Restored profiling outputs are exactly the computed ones.
  EXPECT_EQ(warm.profile().branchSites.size(), cold.profile().branchSites.size());
  EXPECT_EQ(warm.profile().opCounters.flat, cold.profile().opCounters.flat);
  EXPECT_EQ(warm.memoryTrace().recordedRefs, cold.memoryTrace().recordedRefs);
  EXPECT_NE(warm.memoryTrace().view, nullptr) << "warm trace should be zero-copy";
  std::vector<std::pair<uint32_t, uint64_t>> a, b;
  cold.memoryTrace().forEachRef([&](uint32_t r, uint64_t w) { a.emplace_back(r, w); });
  warm.memoryTrace().forEachRef([&](uint32_t r, uint64_t w) { b.emplace_back(r, w); });
  EXPECT_EQ(a, b);

  // Without a cache the provenance stays off, and the key is still exposed.
  core::WorkloadFrontend plain("toy", kToySource, {{"N", 600}}, 0x5eed, {});
  EXPECT_EQ(plain.artifactProvenance(), "off");
  EXPECT_EQ(plain.artifactKey(), cold.artifactKey());
}

TEST(ArtifactFrontend, CorruptEntryRecomputesAndHeals) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  core::FrontendOptions opts;
  opts.artifacts = &cache;
  core::WorkloadFrontend cold("toy", kToySource, {{"N", 600}}, 0x5eed, opts);

  // Truncate the published blob mid-payload.
  const std::string path = cache.store().pathFor(cold.artifactKey());
  fs::resize_file(path, fs::file_size(path) / 2);

  core::WorkloadFrontend healed("toy", kToySource, {{"N", 600}}, 0x5eed, opts);
  EXPECT_EQ(healed.artifactProvenance(), "corrupt:recomputed");
  EXPECT_EQ(healed.memoryTrace().recordedRefs, cold.memoryTrace().recordedRefs);

  // The recompute re-published the entry, so a third build hits.
  core::WorkloadFrontend warm("toy", kToySource, {{"N", 600}}, 0x5eed, opts);
  EXPECT_EQ(warm.artifactProvenance(), "hit");
}

TEST(ArtifactSweep, WarmSweepReportIsByteIdenticalAtAnyThreadCount) {
  TempDir dir;
  ArtifactCache cache(dir.path);
  MachineGrid grid = parseGridSpec("membw = 15:45:15\npeakflops = 2,4");
  grid.base = MachineModel::bgq();

  auto runOnce = [&](const ArtifactCache* artifacts, int threads) {
    core::FrontendOptions fopts;
    fopts.artifacts = artifacts;
    core::WorkloadFrontend frontend("toy", kToySource, {{"N", 600}}, 0x5eed, fopts);
    sweep::SweepOptions sopts;
    sopts.threads = threads;
    sopts.cacheModel = sweep::CacheModelMode::ReuseDist;
    sopts.traceInformedRoofline = true;
    sopts.groundTruth = true;
    sopts.artifacts = artifacts;
    auto result = sweep::runSweep(frontend, grid, sopts);
    return sweep::toMarkdown(result, 0);
  };

  std::string cold = runOnce(&cache, 1);
  std::string warmSerial = runOnce(&cache, 1);
  std::string warmThreaded = runOnce(&cache, 3);
  std::string uncached = runOnce(nullptr, 1);
  EXPECT_EQ(cold, warmSerial);
  EXPECT_EQ(cold, warmThreaded);
  EXPECT_EQ(cold, uncached) << "cache must never change results";
}

}  // namespace
}  // namespace skope::artifact
