// End-to-end integration tests of the CodesignFramework facade: the full
// Figure-1 pipeline on real workloads, plus the paper's headline invariants
// (BET size, selection quality floor, cross-machine hot-spot differences).
#include <gtest/gtest.h>

#include "core/framework.h"
#include "minic/builtins.h"
#include "hotpath/hotpath.h"

namespace skope::core {
namespace {

hotspot::SelectionCriteria scaledCriteria() {
  // The paper uses {coverage >= 90%, leanness <= 10%} on production codes;
  // our ports are ~20x smaller, so each hot loop is a larger share of the
  // static code. 45% leanness keeps the same selective pressure (see
  // EXPERIMENTS.md).
  return {0.90, 0.45};
}

TEST(Framework, PipelineRunsOnSmallProgram) {
  CodesignFramework fw("toy", R"(
    param int N = 5000;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = rand(); }
      for (i = 0; i < N; i = i + 1) { a[i] = a[i] * 2.0 + 1.0; }
      out = a[42];
    }
  )", {{"N", 5000}});

  EXPECT_GT(fw.skeleton().totalNodes(), 5u);
  EXPECT_GT(fw.bet().size(), 5u);

  auto analysis = fw.analyze(MachineModel::bgq(), scaledCriteria());
  EXPECT_GT(analysis.prof.totalSeconds, 0);
  EXPECT_GT(analysis.model.totalSeconds, 0);
  EXPECT_FALSE(analysis.profRanking.empty());
  EXPECT_FALSE(analysis.modelRanking.empty());
  EXPECT_GT(analysis.quality.quality, 0.3);
  EXPECT_NE(analysis.summary().find("toy"), std::string::npos);
}

TEST(Framework, RejectsBadSource) {
  EXPECT_THROW(CodesignFramework("bad", "func nope", {}), Error);
  EXPECT_THROW(CodesignFramework("bad2", "func void f() { }", {}), Error);  // no main
}

TEST(Framework, SimulationsAreCachedPerMachine) {
  CodesignFramework fw(workloads::srad());
  const auto& a = fw.profileOn(MachineModel::bgq());
  const auto& b = fw.profileOn(MachineModel::bgq());
  EXPECT_EQ(&a, &b);  // same cached object
}

TEST(Framework, LibProfileShared) {
  const auto& a = CodesignFramework::libProfile();
  const auto& b = CodesignFramework::libProfile();
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(a.has(minic::findBuiltin("exp")));
}

class FrameworkWorkloads : public ::testing::TestWithParam<const workloads::Workload*> {};

TEST_P(FrameworkWorkloads, BetSizeComparableToSource) {
  // §IV-B: BET size averages 88% of source statements and never exceeds 2x.
  CodesignFramework fw(*GetParam());
  double ratio = static_cast<double>(fw.bet().size()) /
                 static_cast<double>(fw.program().countStatements());
  EXPECT_GT(ratio, 0.2) << "BET suspiciously small";
  EXPECT_LT(ratio, 2.0) << "BET exceeded the paper's 2x bound";
}

TEST_P(FrameworkWorkloads, SelectionQualityFloor) {
  // §VIII: quality averages 95.8% and is never below 80%. Our scaled
  // reproduction holds a slightly looser floor (see EXPERIMENTS.md).
  CodesignFramework fw(*GetParam());
  for (const auto& machine : {MachineModel::bgq(), MachineModel::xeonE5_2420()}) {
    auto a = fw.analyze(machine, scaledCriteria());
    EXPECT_GT(a.quality.quality, 0.75)
        << GetParam()->name << " on " << machine.name;
  }
}

TEST_P(FrameworkWorkloads, ModelRecoversTopSpot) {
  // the model's #1 projected block should be within the profiler's top 3
  CodesignFramework fw(*GetParam());
  auto a = fw.analyze(MachineModel::bgq(), scaledCriteria());
  ASSERT_FALSE(a.modelRanking.empty());
  bool found = false;
  for (size_t i = 0; i < 3 && i < a.profRanking.size(); ++i) {
    if (a.profRanking[i].origin == a.modelRanking[0].origin) found = true;
  }
  EXPECT_TRUE(found) << GetParam()->name << ": model #1 = " << a.modelRanking[0].label;
}

TEST_P(FrameworkWorkloads, HotPathReachesEverySelectedSpot) {
  CodesignFramework fw(*GetParam());
  auto model = fw.project(MachineModel::bgq());
  auto ranking = hotspot::rankingFromModel(model);
  auto sel = hotspot::selectHotSpots(ranking, fw.module().totalStaticInstrs(),
                                     scaledCriteria());
  auto path = hotpath::extractHotPath(fw.bet(), sel);
  EXPECT_GE(path.hotSpotInstances, sel.spots.size() > 0 ? 1u : 0u);
  if (!sel.spots.empty()) {
    ASSERT_NE(path.root, nullptr);
    EXPECT_LE(path.size(), fw.bet().size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, FrameworkWorkloads,
                         ::testing::ValuesIn(workloads::allWorkloads()),
                         [](const ::testing::TestParamInfo<const workloads::Workload*>& info) {
                           return info.param->name;
                         });

TEST(Framework, SordHotSpotsDifferAcrossMachines) {
  // the intro's observation: hot spots found on one machine are not a good
  // representative of another — orderings differ between BG/Q and Xeon.
  CodesignFramework fw(workloads::sord());
  auto bgq = fw.analyze(MachineModel::bgq(), scaledCriteria());
  auto xeon = fw.analyze(MachineModel::xeonE5_2420(), scaledCriteria());
  bool orderDiffers = false;
  for (size_t i = 0; i < 10 && i < bgq.profRanking.size() && i < xeon.profRanking.size();
       ++i) {
    if (bgq.profRanking[i].origin != xeon.profRanking[i].origin) orderDiffers = true;
  }
  EXPECT_TRUE(orderDiffers);
}

TEST(Framework, HotPathReportPrints) {
  CodesignFramework fw(workloads::stassuij());
  std::string report = fw.hotPathReport(MachineModel::bgq(), scaledCriteria());
  EXPECT_NE(report.find("Hot path of STASSUIJ"), std::string::npos);
  EXPECT_NE(report.find("func main"), std::string::npos);
  EXPECT_NE(report.find("*"), std::string::npos);
}

TEST(Framework, AnalysisTimeIndependentOfInput) {
  // the abstract's claim: BET construction + projection cost does not grow
  // with the input size (loop nodes are never unrolled).
  CodesignFramework small("s", workloads::srad().source,
                          {{"NI", 64}, {"NJ", 64}, {"NITER", 1}, {"SAMPLE", 16}});
  CodesignFramework large("l", workloads::srad().source,
                          {{"NI", 512}, {"NJ", 512}, {"NITER", 4}, {"SAMPLE", 64}});
  EXPECT_EQ(small.bet().size(), large.bet().size());
}

}  // namespace
}  // namespace skope::core
