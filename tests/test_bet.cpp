// Unit tests for contexts and Bayesian Execution Tree construction (§IV).
#include <gtest/gtest.h>

#include <cmath>

#include "bet/builder.h"
#include "skeleton/parser.h"

namespace skope::bet {
namespace {

Bet buildFrom(std::string_view skeletonText, std::map<std::string, double> input,
              BuilderOptions opts = {}) {
  skel::SkeletonProgram sk = skel::parseSkeleton(skeletonText);
  return buildBet(sk, ParamEnv(std::move(input)), opts);
}

const BetNode* findKind(const BetNode& n, BetKind k) {
  if (n.kind == k) return &n;
  for (const auto& c : n.kids) {
    if (const BetNode* f = findKind(*c, k)) return f;
  }
  return nullptr;
}

// ---------------- ContextSet ----------------

TEST(ContextSet, WeightsAndScaling) {
  ContextSet c({{"N", 10}});
  EXPECT_DOUBLE_EQ(c.totalWeight(), 1.0);
  c.scale(0.5);
  EXPECT_DOUBLE_EQ(c.totalWeight(), 0.5);
  c.normalize();
  EXPECT_DOUBLE_EQ(c.totalWeight(), 1.0);
}

TEST(ContextSet, SplitByProb) {
  ContextSet c({{"N", 10}});
  auto [t, e] = c.splitByProb(constant(0.3), 0.5);
  EXPECT_NEAR(t.totalWeight(), 0.3, 1e-12);
  EXPECT_NEAR(e.totalWeight(), 0.7, 1e-12);
}

TEST(ContextSet, SetVarAndEval) {
  ContextSet c({{"N", 10}});
  c.setVar("half", parseExpr("N/2"));
  EXPECT_DOUBLE_EQ(c.evalMean(param("half")), 5.0);
  // unknown-value assignment drops the variable
  c.setVar("half", param("mystery"));
  EXPECT_DOUBLE_EQ(c.evalMean(param("half"), -1.0), -1.0);
}

TEST(ContextSet, MergeDeduplicates) {
  ContextSet a({{"k", 1}});
  a.scale(0.5);
  ContextSet b({{"k", 1}});
  b.scale(0.5);
  ContextSet m = ContextSet::merged(a, b, 8);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.totalWeight(), 1.0);
}

TEST(ContextSet, CompactPreservesMass) {
  ContextSet c({{"k", 0}});
  // create 4 distinct contexts via repeated splits + setVar
  auto [a, b] = c.splitByProb(constant(0.5), 0.5);
  a.setVar("k", constant(1));
  ContextSet m = ContextSet::merged(a, b, 1);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_NEAR(m.totalWeight(), 1.0, 1e-12);
}

// ---------------- BET construction ----------------

TEST(Bet, LoopIsSingleNode) {
  Bet bet = buildFrom(R"(
    params N;
    def main() {
      loop @7 iter=N {
        comp @8 flops=2;
      }
    }
  )", {{"N", 1000000}});
  // 3 nodes regardless of N: func, loop, comp — the paper's core property
  EXPECT_EQ(bet.size(), 3u);
  const BetNode* loop = findKind(*bet.root, BetKind::Loop);
  ASSERT_NE(loop, nullptr);
  EXPECT_DOUBLE_EQ(loop->numIter, 1e6);
  EXPECT_DOUBLE_EQ(loop->prob, 1.0);
}

TEST(Bet, SizeIndependentOfInput) {
  const char* sk = R"(
    params N;
    def main() { loop iter=N { loop iter=N { comp flops=1; } } }
  )";
  EXPECT_EQ(buildFrom(sk, {{"N", 10}}).size(), buildFrom(sk, {{"N", 100000}}).size());
}

TEST(Bet, BranchProbabilities) {
  Bet bet = buildFrom(R"(
    def main() {
      branch @3 p=0.25 { comp @4 flops=1; } else { comp @5 iops=1; }
    }
  )", {});
  const BetNode* thenArm = findKind(*bet.root, BetKind::BranchThen);
  const BetNode* elseArm = findKind(*bet.root, BetKind::BranchElse);
  ASSERT_NE(thenArm, nullptr);
  ASSERT_NE(elseArm, nullptr);
  EXPECT_DOUBLE_EQ(thenArm->prob, 0.25);
  EXPECT_DOUBLE_EQ(elseArm->prob, 0.75);
}

TEST(Bet, CallMountsCalleeWithBoundFormals) {
  Bet bet = buildFrom(R"(
    params N;
    def main() { call foo(N/2); }
    def foo(n) { loop @9 iter=n { comp flops=1; } }
  )", {{"N", 20}});
  const BetNode* mounted = nullptr;
  bet.root->visit([&](const BetNode& n) {
    if (n.kind == BetKind::Func && n.name == "foo") mounted = &n;
  });
  ASSERT_NE(mounted, nullptr);
  const BetNode* loop = findKind(*mounted, BetKind::Loop);
  ASSERT_NE(loop, nullptr);
  EXPECT_DOUBLE_EQ(loop->numIter, 10.0);  // n = N/2 bound at the call
}

TEST(Bet, SameFunctionDifferentContexts) {
  Bet bet = buildFrom(R"(
    params N;
    def main() { call foo(N); call foo(N*2); }
    def foo(n) { loop iter=n { comp flops=1; } }
  )", {{"N", 5}});
  std::vector<double> iters;
  bet.root->visit([&](const BetNode& n) {
    if (n.kind == BetKind::Loop) iters.push_back(n.numIter);
  });
  ASSERT_EQ(iters.size(), 2u);
  EXPECT_DOUBLE_EQ(iters[0], 5.0);
  EXPECT_DOUBLE_EQ(iters[1], 10.0);
}

TEST(Bet, BreakCapsExpectedIterations) {
  // break with p = 0.1 per iteration over range 1000:
  // E[iters] = (1 - 0.9^1000) / 0.1 ≈ 10
  Bet bet = buildFrom(R"(
    def main() {
      loop @2 iter=1000 {
        comp flops=1;
        branch @3 p=0.1 { break; }
      }
    }
  )", {});
  const BetNode* loop = findKind(*bet.root, BetKind::Loop);
  ASSERT_NE(loop, nullptr);
  EXPECT_NEAR(loop->numIter, 10.0, 1e-6);
}

TEST(Bet, BreakNeverFiresKeepsFullRange) {
  Bet bet = buildFrom(R"(
    def main() {
      loop iter=50 {
        branch p=0 { break; }
        comp flops=1;
      }
    }
  )", {});
  const BetNode* loop = findKind(*bet.root, BetKind::Loop);
  EXPECT_DOUBLE_EQ(loop->numIter, 50.0);
}

TEST(Bet, BreakFormulaLimits) {
  // small n: E[iters] <= n even with p > 0
  Bet bet = buildFrom(R"(
    def main() { loop iter=3 { comp flops=1; branch p=0.5 { break; } } }
  )", {});
  const BetNode* loop = findKind(*bet.root, BetKind::Loop);
  // (1 - 0.5^3) / 0.5 = 1.75
  EXPECT_NEAR(loop->numIter, 1.75, 1e-9);
}

TEST(Bet, ReturnZerosTail) {
  Bet bet = buildFrom(R"(
    def main() {
      branch @2 p=0.4 { return; }
      comp @9 flops=1;
    }
  )", {});
  const BetNode* comp = findKind(*bet.root, BetKind::Comp);
  ASSERT_NE(comp, nullptr);
  EXPECT_NEAR(comp->prob, 0.6, 1e-12);
}

TEST(Bet, ContinueDoesNotChangeIterations) {
  Bet bet = buildFrom(R"(
    def main() {
      loop iter=100 {
        branch p=0.5 { continue; }
        comp @5 flops=1;
      }
    }
  )", {});
  const BetNode* loop = findKind(*bet.root, BetKind::Loop);
  EXPECT_DOUBLE_EQ(loop->numIter, 100.0);
  const BetNode* comp = findKind(*loop, BetKind::Comp);
  EXPECT_NEAR(comp->prob, 0.5, 1e-12);  // skipped half the time
}

TEST(Bet, SetCreatesDivergentContexts) {
  // The pedagogical example of the paper's Fig. 2: a branch assigns knob, a
  // later branch tests knob — outcomes are perfectly correlated.
  Bet bet = buildFrom(R"(
    def main() {
      set knob = 0;
      branch @2 p=0.3 { set knob = 1; }
      branch @3 p=knob { call foo(10); }
    }
    def foo(n) { comp @5 flops=1; }
  )", {});
  const BetNode* foo = nullptr;
  bet.root->visit([&](const BetNode& n) {
    if (n.kind == BetKind::Func && n.name == "foo") foo = &n;
  });
  ASSERT_NE(foo, nullptr);
  // foo executes exactly when knob was set. Without context tracking the
  // branch on knob would fall back to p=0.5; with tracking, the arm carries
  // exactly 0.3 and foo is certain within it — cumulative probability 0.3.
  double cumulative = 1.0;
  for (const BetNode* n = foo; n != nullptr; n = n->parent) cumulative *= n->prob;
  EXPECT_NEAR(cumulative, 0.3, 1e-12);
  ASSERT_NE(foo->parent, nullptr);
  EXPECT_EQ(foo->parent->kind, BetKind::BranchThen);
  EXPECT_NEAR(foo->parent->prob, 0.3, 1e-12);  // not the 0.5 fallback
}

TEST(Bet, LibCallNode) {
  Bet bet = buildFrom(R"(
    def main() { loop iter=10 { libcall exp count=2; } }
  )", {});
  const BetNode* lib = findKind(*bet.root, BetKind::LibCall);
  ASSERT_NE(lib, nullptr);
  EXPECT_EQ(lib->name, "exp");
  EXPECT_DOUBLE_EQ(lib->callsPerExec, 2.0);
}

TEST(Bet, RecursionGuard) {
  BuilderOptions opts;
  opts.maxCallDepth = 8;
  Bet bet = buildFrom(R"(
    def main() { call f(); }
    def f() { comp flops=1; call f(); }
  )", {}, opts);
  EXPECT_GT(bet.droppedCalls, 0u);
  EXPECT_LT(bet.size(), 100u);
}

TEST(Bet, UnresolvedSkeletonRejected) {
  skel::SkeletonProgram sk = skel::parseSkeleton("def main() { comp flops=1; }");
  // manufacture an unresolved loop
  auto loop = skel::makeLoop(nullptr, 42);
  sk.defs[0]->kids.push_back(std::move(loop));
  EXPECT_THROW(buildBet(sk, ParamEnv{}), Error);
}

TEST(Bet, MissingEntryRejected) {
  skel::SkeletonProgram sk = skel::parseSkeleton("def notmain() { comp flops=1; }");
  EXPECT_THROW(buildBet(sk, ParamEnv{}), Error);
}

TEST(Bet, PrintContainsStructure) {
  Bet bet = buildFrom(R"(
    params N;
    def main() { loop @3 iter=N { comp @4 flops=2 loads=1; } }
  )", {{"N", 7}});
  std::string text = printBet(bet);
  EXPECT_NE(text.find("func main"), std::string::npos);
  EXPECT_NE(text.find("iter=7"), std::string::npos);
  EXPECT_NE(text.find("flops=2"), std::string::npos);
}

}  // namespace
}  // namespace skope::bet
