// Additional depth tests: simulator branch-prediction behavior, VM edge
// semantics, deeper frontend coverage, and framework behavior on the
// conceptual machines.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "minic/builtins.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "minic/sema.h"
#include "sim/simulator.h"
#include "vm/compiler.h"
#include "vm/interp.h"

namespace skope {
namespace {

struct Compiled {
  std::unique_ptr<minic::Program> prog;
  vm::Module mod;
};

Compiled compileSrc(std::string_view src) {
  Compiled c;
  c.prog = minic::parseProgram(src, "t.mc");
  minic::analyzeOrThrow(*c.prog);
  c.mod = vm::compile(*c.prog);
  return c;
}

// ---------------- branch predictor in the simulator ----------------

TEST(Predictor, RegularBranchesCostLessThanRandom) {
  // same instruction stream, but one branch pattern is periodic and the
  // other data-random: the 2-bit predictor should penalize the random one
  const char* regular = R"(
    param int N = 40000;
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) {
        if (i % 2 == 0) { out = out + 1.0; } else { out = out - 1.0; }
      }
    }
  )";
  const char* random = R"(
    param int N = 40000;
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) {
        if (rand() < 0.5) { out = out + 1.0; } else { out = out - 1.0; }
      }
    }
  )";
  auto cr = compileSrc(regular);
  auto cx = compileSrc(random);
  auto branchCycles = [](Compiled& c) {
    sim::Simulator s(*c.prog, c.mod, MachineModel::bgq());
    sim::SimResult r = s.run({});
    double total = 0;
    for (const auto& [id, rc] : r.regions) total += rc.branchCycles;
    return total;
  };
  // alternating branches defeat a 2-bit counter too, but rand() also costs
  // mispredicts; compare against an always-taken pattern instead:
  const char* biased = R"(
    param int N = 40000;
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) {
        if (i >= 0) { out = out + 1.0; }
      }
    }
  )";
  auto cb = compileSrc(biased);
  double biasedCost = branchCycles(cb);
  double randomCost = branchCycles(cx);
  double regularCost = branchCycles(cr);
  EXPECT_LT(biasedCost, randomCost * 0.2);  // predictable ≪ random
  (void)regularCost;
}

// ---------------- VM edge semantics ----------------

TEST(VmDepth, RecursionGuardTriggers) {
  auto c = compileSrc(R"(
    global real out;
    func real inf(real x) { return inf(x + 1.0); }
    func void main() { out = inf(0.0); }
  )");
  vm::Vm machine(c.mod);
  EXPECT_THROW(machine.run(), Error);
}

TEST(VmDepth, NegativeModulo) {
  auto c = compileSrc(R"(
    global real out;
    func void main() { var int a = -7; out = a % 3; }
  )");
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), -1.0);  // C-style truncation
}

TEST(VmDepth, IntExactnessToLargeValues) {
  auto c = compileSrc(R"(
    global real out;
    func void main() {
      var int big = 1048576;
      out = big * big + 1;    // 2^40 + 1: exact in doubles
    }
  )");
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), 1099511627777.0);
}

TEST(VmDepth, GlobalScalarsPersistAcrossCalls) {
  auto c = compileSrc(R"(
    global real acc;
    func void bump() { acc = acc + 1.0; }
    func void main() {
      var int i;
      for (i = 0; i < 10; i = i + 1) { bump(); }
    }
  )");
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("acc"), 10.0);
}

TEST(VmDepth, ArrayReadsAreZeroInitialized) {
  auto c = compileSrc(R"(
    param int N = 16;
    global real a[N];
    global real out;
    func void main() { out = a[15]; }
  )");
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), 0.0);
}

TEST(VmDepth, RerunReallocatesAndRepeats) {
  auto c = compileSrc(R"(
    param int N = 8;
    global real a[N];
    global real out;
    func void main() {
      a[0] = a[0] + 1.0;   // would accumulate if storage survived
      out = a[0];
    }
  )");
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), 1.0);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), 1.0);  // fresh storage per run
}

// ---------------- frontend depth ----------------

TEST(FrontendDepth, DeeplyNestedControlFlow) {
  std::string src = "global real out;\nfunc void main() {\n var int i0;\n";
  std::string open, close;
  for (int d = 0; d < 10; ++d) {
    std::string v = "i" + std::to_string(d);
    if (d > 0) src += std::string(2 * d, ' ') + "var int " + v + ";\n";
    open += "for (" + v + " = 0; " + v + " < 2; " + v + " = " + v + " + 1) { ";
    close += "}";
  }
  src += open + " out = out + 1.0; " + close + "\n}";
  auto c = compileSrc(src);
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), 1024.0);  // 2^10
}

TEST(FrontendDepth, CallExpressionsNest) {
  auto c = compileSrc(R"(
    global real out;
    func real twice(real x) { return x * 2.0; }
    func real plus(real a, real b) { return a + b; }
    func void main() {
      out = plus(twice(plus(1.0, 2.0)), twice(4.0));  // (3*2) + (4*2) = 14
    }
  )");
  vm::Vm machine(c.mod);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.scalar("out"), 14.0);
}

TEST(FrontendDepth, PrinterHandlesAllForms) {
  auto prog = minic::parseProgram(R"(
    param int N = 2;
    global int flags[N];
    func int pick(int a, int b) {
      if (a > b) { return a; }
      return b;
    }
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) {
        flags[i] = pick(i, N - i) % 2;
        while (flags[i] > 0) { flags[i] = flags[i] - 1; }
        if (!(flags[i])) { continue; }
      }
    }
  )", "t.mc");
  minic::analyzeOrThrow(*prog);
  std::string printed = minic::printProgram(*prog);
  auto again = minic::parseProgram(printed, "p.mc");
  EXPECT_NO_THROW(minic::analyzeOrThrow(*again));
  EXPECT_EQ(minic::printProgram(*again), printed);
}

// ---------------- conceptual machines end-to-end ----------------

TEST(ConceptualMachines, ProjectionsRunOnAllMachines) {
  core::CodesignFramework fw(workloads::srad());
  for (const auto& m : {MachineModel::bgq(), MachineModel::xeonE5_2420(),
                        MachineModel::manycoreKnl(), MachineModel::armServer()}) {
    auto model = fw.project(m);
    EXPECT_GT(model.totalSeconds, 0) << m.name;
    EXPECT_FALSE(model.blocks.empty()) << m.name;
  }
}

TEST(ConceptualMachines, SimulatorRunsOnConceptualMachines) {
  // the conceptual machines are full MachineModels: the ground-truth
  // simulator accepts them too (useful for sanity-checking design sweeps)
  auto c = compileSrc(R"(
    param int N = 5000;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = a[i] * 1.5 + 2.0; }
    }
  )");
  sim::SimResult knl = sim::Simulator(*c.prog, c.mod, MachineModel::manycoreKnl()).run({});
  sim::SimResult arm = sim::Simulator(*c.prog, c.mod, MachineModel::armServer()).run({});
  EXPECT_GT(knl.totalCycles(), 0);
  EXPECT_GT(arm.totalCycles(), 0);
}

}  // namespace
}  // namespace skope
