// Unit tests for the table / chart report renderers.
#include <gtest/gtest.h>

#include "report/chart.h"
#include "report/table.h"
#include "support/text.h"

namespace skope::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer-name", "22"});
  std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // all data lines align: the "value" column starts at the same offset
  auto lines = split(s, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[1].find_first_not_of('-'), std::string::npos);  // separator
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.addRow({"1"});
  EXPECT_EQ(t.numRows(), 1u);
  EXPECT_NO_THROW(t.str());
}

TEST(BarChart, RendersSegmentsAndLegend) {
  std::vector<BarSegments> bars = {
      {"spot1", {10, 5, 2}},
      {"spot2", {3, 8, 1}},
  };
  std::string s = barChart(bars, {"Tc", "Tm", "To"}, 40);
  EXPECT_NE(s.find("legend:"), std::string::npos);
  EXPECT_NE(s.find("#=Tc"), std::string::npos);
  EXPECT_NE(s.find("spot1"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('='), std::string::npos);
}

TEST(BarChart, EmptyBarsHandled) {
  EXPECT_NO_THROW(barChart({}, {"a"}));
  std::string s = barChart({{"zero", {0, 0}}}, {"x", "y"});
  EXPECT_NE(s.find("legend"), std::string::npos);
}

TEST(SeriesChart, RendersAllSeries) {
  std::vector<Series> series = {
      {"Prof", {0.3, 0.6, 0.9, 1.0}},
      {"Modl", {0.25, 0.55, 0.85, 0.95}},
  };
  std::string s = seriesChart(series, 10);
  EXPECT_NE(s.find("P=Prof"), std::string::npos);
  EXPECT_NE(s.find("p=Modl"), std::string::npos);
  EXPECT_NE(s.find("100%"), std::string::npos);
  EXPECT_NE(s.find("0%"), std::string::npos);
  EXPECT_NE(s.find("top-k hot spots"), std::string::npos);
}

TEST(SeriesChart, EmptyData) {
  EXPECT_EQ(seriesChart({}), "(no data)\n");
}

}  // namespace
}  // namespace skope::report
