// Unit tests for the bytecode compiler and VM: execution semantics, op-mix
// counters, branch profiling, and the flat address space used by the cache
// simulator.
#include <gtest/gtest.h>

#include "minic/builtins.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "vm/compiler.h"
#include "vm/interp.h"
#include "vm/profile.h"

namespace skope::vm {
namespace {

struct Compiled {
  std::unique_ptr<minic::Program> prog;
  Module mod;
};

Compiled compileSrc(std::string_view src) {
  Compiled c;
  c.prog = minic::parseProgram(src, "test.mc");
  minic::analyzeOrThrow(*c.prog);
  c.mod = compile(*c.prog);
  return c;
}

// Runs and returns the value of global scalar `out`.
double runAndRead(std::string_view src, const std::map<std::string, double>& params = {}) {
  auto c = compileSrc(src);
  Vm vm(c.mod);
  vm.bindParams(params);
  vm.run();
  return vm.scalar("out");
}

TEST(Vm, ArithmeticAndAssignment) {
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 2.0 * 3.0 + 4.0; }"),
                   10.0);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 7 / 2; }"), 3.0);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 7.0 / 2.0; }"), 3.5);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 7 % 3; }"), 1.0);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = -(3) + 1; }"), -2.0);
}

TEST(Vm, IntRealConversions) {
  // int = real truncates
  EXPECT_DOUBLE_EQ(
      runAndRead("global real out; func void main() { var int i = 0; i = 2.9; out = i; }"),
      2.0);
  // mixed arithmetic promotes
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 1 + 0.5; }"), 1.5);
}

TEST(Vm, ComparisonsAndLogic) {
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 3 < 5; }"), 1.0);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = 3.0 >= 5.0; }"), 0.0);
  EXPECT_DOUBLE_EQ(
      runAndRead("global real out; func void main() { out = (1 < 2) && (3 > 4); }"), 0.0);
  EXPECT_DOUBLE_EQ(
      runAndRead("global real out; func void main() { out = (1 < 2) || (3 > 4); }"), 1.0);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = !(0); }"), 1.0);
}

TEST(Vm, ForLoopSum) {
  double v = runAndRead(R"(
    global real out;
    func void main() {
      var int i;
      var real s = 0.0;
      for (i = 1; i <= 100; i = i + 1) { s = s + i; }
      out = s;
    }
  )");
  EXPECT_DOUBLE_EQ(v, 5050.0);
}

TEST(Vm, WhileBreakContinue) {
  double v = runAndRead(R"(
    global real out;
    func void main() {
      var int i = 0;
      var real s = 0.0;
      while (1) {
        i = i + 1;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        s = s + i;
      }
      out = s;  // 1+3+5+7+9 = 25
    }
  )");
  EXPECT_DOUBLE_EQ(v, 25.0);
}

TEST(Vm, NestedLoopsWithBreak) {
  double v = runAndRead(R"(
    global real out;
    func void main() {
      var int i; var int j;
      var real c = 0.0;
      for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 10; j = j + 1) {
          if (j == 2) { break; }
          c = c + 1.0;
        }
      }
      out = c;  // inner loop counts 2 per outer iter
    }
  )");
  EXPECT_DOUBLE_EQ(v, 8.0);
}

TEST(Vm, FunctionsAndRecursion) {
  double v = runAndRead(R"(
    global real out;
    func int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    func void main() { out = fib(12); }
  )");
  EXPECT_DOUBLE_EQ(v, 144.0);
}

TEST(Vm, ArraysMultiDim) {
  double v = runAndRead(R"(
    param int N = 3;
    global real m[N][N][2];
    global real out;
    func void main() {
      var int i; var int j; var int k;
      for (i = 0; i < N; i = i + 1) {
        for (j = 0; j < N; j = j + 1) {
          for (k = 0; k < 2; k = k + 1) { m[i][j][k] = i * 100 + j * 10 + k; }
        }
      }
      out = m[2][1][1];
    }
  )");
  EXPECT_DOUBLE_EQ(v, 211.0);
}

TEST(Vm, ParamBindingOverridesDefault) {
  const char* src = R"(
    param int N = 4;
    global real out;
    func void main() { out = N; }
  )";
  EXPECT_DOUBLE_EQ(runAndRead(src), 4.0);
  EXPECT_DOUBLE_EQ(runAndRead(src, {{"N", 9}}), 9.0);
}

TEST(Vm, UnboundParamThrows) {
  auto c = compileSrc("param int N; global real out; func void main() { out = N; }");
  Vm vm(c.mod);
  EXPECT_THROW(vm.run(), Error);
}

TEST(Vm, OutOfBoundsThrows) {
  auto c = compileSrc(R"(
    param int N = 2;
    global real a[N];
    func void main() { a[5] = 1.0; }
  )");
  Vm vm(c.mod);
  EXPECT_THROW(vm.run(), Error);
}

TEST(Vm, MaxOpsGuard) {
  auto c = compileSrc("func void main() { while (1) { } }");
  Vm vm(c.mod);
  vm.setMaxOps(10000);
  EXPECT_THROW(vm.run(), Error);
}

TEST(Vm, BuiltinsWork) {
  EXPECT_NEAR(runAndRead("global real out; func void main() { out = exp(1.0); }"), 2.71828,
              1e-4);
  EXPECT_NEAR(runAndRead("global real out; func void main() { out = sqrt(2.0); }"), 1.41421,
              1e-4);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = fmax(1.0, 2.5); }"),
                   2.5);
  EXPECT_DOUBLE_EQ(runAndRead("global real out; func void main() { out = floor(2.9); }"),
                   2.0);
  EXPECT_NEAR(runAndRead("global real out; func void main() { out = pow(2.0, 10.0); }"),
              1024.0, 1e-9);
}

TEST(Vm, RandDeterministicPerSeed) {
  auto c = compileSrc("global real out; func void main() { out = rand(); }");
  Vm vm1(c.mod), vm2(c.mod), vm3(c.mod);
  vm1.setSeed(42);
  vm2.setSeed(42);
  vm3.setSeed(43);
  vm1.run();
  vm2.run();
  vm3.run();
  EXPECT_DOUBLE_EQ(vm1.scalar("out"), vm2.scalar("out"));
  EXPECT_NE(vm1.scalar("out"), vm3.scalar("out"));
}

TEST(Vm, OpCountersClassifyMix) {
  auto c = compileSrc(R"(
    param int N = 10;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = a[i] * 2.0 + 1.0; }
      out = a[3];
    }
  )");
  Vm vm(c.mod);
  vm.run();
  const OpCounters& oc = vm.counters();
  // loop body: per iteration one load, one store, one FpMul, one FpAdd
  uint32_t loopRegion = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == RegionKind::Loop) loopRegion = id;
  }
  ASSERT_NE(loopRegion, 0u);
  EXPECT_EQ(oc.get(loopRegion, OpClass::Load), 10u);
  EXPECT_EQ(oc.get(loopRegion, OpClass::Store), 10u);
  EXPECT_EQ(oc.get(loopRegion, OpClass::FpMul), 10u);
  EXPECT_EQ(oc.get(loopRegion, OpClass::FpAdd), 10u);
  EXPECT_EQ(oc.get(loopRegion, OpClass::Branch), 11u);  // 10 taken + 1 exit
  // the final read of a[3] happens in the function region
  uint32_t funcRegion = c.mod.funcs[static_cast<size_t>(c.mod.mainIndex)].regionId;
  EXPECT_EQ(oc.get(funcRegion, OpClass::Load), 1u);
}

TEST(Vm, RegionsTrackNestingAndStaticCounts) {
  auto c = compileSrc(R"(
    func void main() {
      var int i; var int j;
      for (i = 0; i < 2; i = i + 1) {
        for (j = 0; j < 2; j = j + 1) { j = j; }
      }
    }
  )");
  int loops = 0;
  uint32_t outer = 0, inner = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == RegionKind::Loop) {
      ++loops;
      if (info.depth == 1) outer = id;
      if (info.depth == 2) inner = id;
    }
  }
  EXPECT_EQ(loops, 2);
  ASSERT_NE(outer, 0u);
  ASSERT_NE(inner, 0u);
  EXPECT_EQ(c.mod.regions.at(inner).parent, outer);
  EXPECT_GT(c.mod.totalStaticInstrs(), 0u);
}

TEST(Vm, ArrayAddressesDisjointAndAligned) {
  auto c = compileSrc(R"(
    param int N = 100;
    global real a[N];
    global real b[N][2];
    func void main() { a[0] = 1.0; b[0][0] = 2.0; }
  )");
  Vm vm(c.mod);
  vm.run();
  const ArrayInfo& a = vm.arrayInfo("a");
  const ArrayInfo& b = vm.arrayInfo("b");
  EXPECT_EQ(a.baseAddr % 4096, 0u);
  EXPECT_EQ(b.baseAddr % 4096, 0u);
  EXPECT_GE(b.baseAddr, a.baseAddr + 100 * 8);
  EXPECT_EQ(b.totalElems, 200);
}

TEST(Profile, BranchProbabilities) {
  auto c = compileSrc(R"(
    param int N = 1000;
    global real a[N];
    global real out;
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = rand(); }
      for (i = 0; i < N; i = i + 1) {
        if (a[i] < 0.25) { out = out + 1.0; }
      }
    }
  )");
  ProfileData pd = profileRun(c.mod, {}, 7);
  // find the if site: it is the only branch site that is not a loop
  const minic::Program& prog = *c.prog;
  uint32_t ifSite = 0;
  minic::forEachStmt(prog.funcs[0]->body, [&](const minic::StmtNode& s) {
    if (s.kind == minic::StmtKind::If) ifSite = s.id;
  });
  ASSERT_NE(ifSite, 0u);
  const BranchSiteStats* st = pd.site(ifSite);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->total, 1000u);
  EXPECT_NEAR(st->pTrue(), 0.25, 0.05);
}

TEST(Profile, LoopTripCounts) {
  auto c = compileSrc(R"(
    param int N = 50;
    global real out;
    func void main() {
      var int i; var int j;
      for (i = 0; i < 10; i = i + 1) {
        for (j = 0; j < N; j = j + 1) { out = out + 1.0; }
      }
    }
  )");
  ProfileData pd = profileRun(c.mod, {}, 1);
  uint32_t innerLoop = 0;
  for (const auto& [id, info] : c.mod.regions) {
    if (info.kind == RegionKind::Loop && info.depth == 2) innerLoop = id;
  }
  const BranchSiteStats* st = pd.site(innerLoop);
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(st->meanTrips(), 50.0);
}

TEST(Profile, LibCallsAttributedToRegions) {
  auto c = compileSrc(R"(
    param int N = 20;
    global real a[N];
    func void main() {
      var int i;
      for (i = 0; i < N; i = i + 1) { a[i] = exp(rand()); }
    }
  )");
  ProfileData pd = profileRun(c.mod, {});
  uint64_t expCalls = 0, randCalls = 0;
  for (const auto& [key, count] : pd.libCalls) {
    if (key.second == minic::findBuiltin("exp")) expCalls += count;
    if (key.second == minic::findBuiltin("rand")) randCalls += count;
  }
  EXPECT_EQ(expCalls, 20u);
  EXPECT_EQ(randCalls, 20u);
}

TEST(Profile, CallCounts) {
  auto c = compileSrc(R"(
    global real out;
    func real g(real x) { return x * 2.0; }
    func void main() {
      var int i;
      for (i = 0; i < 5; i = i + 1) { out = g(out) + 1.0; }
    }
  )");
  ProfileData pd = profileRun(c.mod, {});
  int gIndex = c.mod.funcIndexOf("g");
  uint64_t calls = 0;
  for (const auto& [key, count] : pd.calls) {
    if (key.second == gIndex) calls += count;
  }
  EXPECT_EQ(calls, 5u);
}

TEST(Vm, DivisionByZeroInt) {
  auto c = compileSrc("global real out; func void main() { var int z = 0; out = 1 / z; }");
  Vm vm(c.mod);
  EXPECT_THROW(vm.run(), Error);
}

TEST(Vm, Disassemble) {
  auto c = compileSrc("global real out; func void main() { out = 1.0 + 2.0; }");
  std::string d = disassemble(c.mod, c.mod.funcs[0]);
  EXPECT_NE(d.find("PushConst"), std::string::npos);
  EXPECT_NE(d.find("AddR"), std::string::npos);
  EXPECT_NE(d.find("StoreGlobal"), std::string::npos);
}

}  // namespace
}  // namespace skope::vm
