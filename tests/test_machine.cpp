// Unit tests for machine descriptions and the cache model.
#include <gtest/gtest.h>

#include "machine/cache.h"
#include "support/diagnostics.h"
#include "machine/machine.h"

namespace skope {
namespace {

TEST(MachineModel, BgqMatchesPaperNumbers) {
  MachineModel m = MachineModel::bgq();
  EXPECT_DOUBLE_EQ(m.freqGHz, 1.6);
  EXPECT_EQ(m.cores, 16);
  EXPECT_DOUBLE_EQ(m.llc.latencyCycles, 51);   // §VI: measured 51 cycles
  EXPECT_DOUBLE_EQ(m.memLatencyCycles, 180);   // §VI: measured 180 cycles
  EXPECT_EQ(m.l1.sizeBytes, 16u * 1024);
  EXPECT_EQ(m.llc.sizeBytes, 32ull * 1024 * 1024);
}

TEST(MachineModel, XeonMatchesPaperNumbers) {
  MachineModel m = MachineModel::xeonE5_2420();
  EXPECT_DOUBLE_EQ(m.freqGHz, 1.9);
  EXPECT_EQ(m.cores, 12);
  EXPECT_GT(m.autoVecQuality, MachineModel::bgq().autoVecQuality);
}

TEST(MachineModel, CyclesToSeconds) {
  MachineModel m = MachineModel::bgq();
  EXPECT_DOUBLE_EQ(m.cyclesToSeconds(1.6e9), 1.0);
  EXPECT_DOUBLE_EQ(m.peakGflops(), 1.6 * 8);
}

CacheLevelDesc smallCache() { return {1024, 64, 2, 3}; }  // 8 sets x 2 ways

TEST(Cache, HitAfterMiss) {
  Cache c(smallCache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1038));  // same 64B line
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction) {
  Cache c(smallCache());
  // three lines mapping to the same set (stride = numSets * lineBytes = 512)
  EXPECT_FALSE(c.access(0x0000));
  EXPECT_FALSE(c.access(0x0200));
  EXPECT_TRUE(c.access(0x0000));   // touch A so B is LRU
  EXPECT_FALSE(c.access(0x0400));  // evicts B
  EXPECT_TRUE(c.access(0x0000));   // A still resident
  EXPECT_FALSE(c.access(0x0200));  // B was evicted
}

TEST(Cache, ResetClearsState) {
  Cache c(smallCache());
  c.access(0x1000);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0x1000));
}

TEST(Cache, MissRateOnStreaming) {
  Cache c(smallCache());
  // streaming through 64 KB touches each 64B line once: all misses
  for (uint64_t a = 0; a < 64 * 1024; a += 64) c.access(a);
  EXPECT_DOUBLE_EQ(c.missRate(), 1.0);
  // re-walking a working set bigger than the cache still misses (LRU)
  for (uint64_t a = 0; a < 64 * 1024; a += 64) c.access(a);
  EXPECT_DOUBLE_EQ(c.missRate(), 1.0);
}

TEST(Cache, SmallWorkingSetStaysResident) {
  Cache c(smallCache());
  for (int round = 0; round < 10; ++round) {
    for (uint64_t a = 0; a < 512; a += 64) c.access(a);
  }
  // 8 lines fit in a 16-line cache: only the 8 cold misses
  EXPECT_EQ(c.misses(), 8u);
}

TEST(Cache, FirstTouchAlwaysMisses) {
  // Valid-bit regression: a fresh cache must miss on EVERY first touch, even
  // when an address's tag collides with whatever an uninitialized way holds.
  // With a 4-byte fully-associative cache of 1-byte lines, addr ~0ULL maps to
  // tag ~0ULL — exactly the value a tag-sentinel scheme would have treated as
  // "empty way", turning this first touch into a phantom hit.
  Cache tiny({4, 1, 4, 1});
  EXPECT_FALSE(tiny.access(~0ULL));
  EXPECT_TRUE(tiny.access(~0ULL));

  Cache c(smallCache());
  for (uint64_t a = 0; a < 1024; a += 64) EXPECT_FALSE(c.access(a));
  EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, GeometryHelperAgreesWithCache) {
  CacheGeometry geo = cacheGeometry(smallCache());
  EXPECT_EQ(geo.numSets, 8u);
  EXPECT_EQ(geo.lineShift, 6u);
  EXPECT_EQ(geo.capacityLines, 16u);
  EXPECT_EQ(Cache(smallCache()).numSets(), geo.numSets);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({1024, 60, 2, 1}), Error);  // non-power-of-two line
  EXPECT_THROW(Cache({64, 64, 2, 1}), Error);    // smaller than one set
  EXPECT_THROW(Cache({1024, 64, 0, 1}), Error);  // zero associativity
}

TEST(CacheHierarchy, LevelsServeInOrder) {
  MachineModel m = MachineModel::bgq();
  CacheHierarchy h(m);
  EXPECT_EQ(h.access(0x10000), CacheHierarchy::Level::Memory);  // cold
  EXPECT_EQ(h.access(0x10000), CacheHierarchy::Level::L1);      // now hot
  // evict from L1 by streaming 32 KB (L1 is 16 KB), then re-access: LLC hit
  for (uint64_t a = 0x100000; a < 0x100000 + 32 * 1024; a += 64) h.access(a);
  EXPECT_EQ(h.access(0x10000), CacheHierarchy::Level::Llc);
}

}  // namespace
}  // namespace skope
