// Unit tests for the skeleton language: tree construction, parser, printer.
#include <gtest/gtest.h>

#include "minic/builtins.h"
#include "skeleton/parser.h"
#include "skeleton/printer.h"
#include "skeleton/skeleton.h"

namespace skope::skel {
namespace {

TEST(SkMetrics, ArithmeticHelpers) {
  SkMetrics a{1, 2, 3, 4, 5};
  SkMetrics b{10, 0, 0, 1, 0};
  a += b;
  EXPECT_DOUBLE_EQ(a.flops, 11);
  EXPECT_DOUBLE_EQ(a.fpdivs, 2);
  EXPECT_DOUBLE_EQ(a.loads, 5);
  EXPECT_DOUBLE_EQ(a.totalFlops(), 13);
  EXPECT_DOUBLE_EQ(a.accesses(), 10);
  EXPECT_DOUBLE_EQ(a.bytes(), 80);
  SkMetrics s = a.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.flops, 22);
  EXPECT_TRUE(SkMetrics{}.empty());
  EXPECT_FALSE(a.empty());
}

TEST(Skeleton, BuildAndQuery) {
  SkeletonProgram prog;
  prog.params = {"N"};
  auto def = makeDef("main", {}, 1);
  auto loop = makeLoop(param("N"), 2);
  loop->kids.push_back(makeComp({4, 0, 2, 3, 1}, 3));
  def->kids.push_back(std::move(loop));
  prog.defs.push_back(std::move(def));

  EXPECT_NE(prog.findDef("main"), nullptr);
  EXPECT_EQ(prog.findDef("nope"), nullptr);
  EXPECT_EQ(prog.totalNodes(), 3u);
  EXPECT_EQ(prog.defs[0]->subtreeSize(), 3u);
}

TEST(SkeletonParser, FullRoundTrip) {
  const char* text = R"(
params N, M;

def main() @1 {
  set half = N/2;
  loop @2 iter=N*M {
    comp @3 flops=4 iops=2 loads=3 stores=1;
    branch @4 p=0.25 {
      call foo(half);
      break;
    } else {
      libcall exp;
    }
  }
  return;
}

def foo(n) @5 {
  loop @6 iter=n {
    comp @7 flops=1 fpdivs=1 loads=2;
    continue;
  }
}
)";
  SkeletonProgram prog = parseSkeleton(text);
  ASSERT_EQ(prog.params.size(), 2u);
  ASSERT_EQ(prog.defs.size(), 2u);

  const SkNode* main = prog.findDef("main");
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(main->origin, 1u);
  ASSERT_EQ(main->kids.size(), 3u);  // set, loop, return
  EXPECT_EQ(main->kids[0]->kind, SkKind::Set);
  const SkNode& loop = *main->kids[1];
  EXPECT_EQ(loop.kind, SkKind::Loop);
  EXPECT_EQ(loop.iter->str(), "N*M");
  ASSERT_EQ(loop.kids.size(), 2u);
  const SkNode& branch = *loop.kids[1];
  EXPECT_EQ(branch.kind, SkKind::Branch);
  ASSERT_EQ(branch.kids.size(), 2u);
  EXPECT_EQ(branch.kids[0]->kind, SkKind::Call);
  EXPECT_EQ(branch.kids[0]->args.size(), 1u);
  EXPECT_EQ(branch.kids[1]->kind, SkKind::Break);
  ASSERT_EQ(branch.elseKids.size(), 1u);
  EXPECT_EQ(branch.elseKids[0]->kind, SkKind::LibCall);
  EXPECT_EQ(branch.elseKids[0]->builtinIndex, minic::findBuiltin("exp"));

  const SkNode* foo = prog.findDef("foo");
  ASSERT_NE(foo, nullptr);
  ASSERT_EQ(foo->formals.size(), 1u);
  EXPECT_EQ(foo->formals[0], "n");
  EXPECT_DOUBLE_EQ(foo->kids[0]->kids[0]->metrics.fpdivs, 1.0);

  // print -> reparse -> print must be a fixed point
  std::string printed = printSkeleton(prog);
  SkeletonProgram again = parseSkeleton(printed);
  EXPECT_EQ(printSkeleton(again), printed);
  EXPECT_EQ(again.totalNodes(), prog.totalNodes());
}

TEST(SkeletonParser, Comments) {
  SkeletonProgram prog = parseSkeleton("# header\ndef main() { comp flops=1; # tail\n }");
  EXPECT_EQ(prog.defs.size(), 1u);
}

TEST(SkeletonParser, Errors) {
  EXPECT_THROW(parseSkeleton("def main() { bogus; }"), Error);
  EXPECT_THROW(parseSkeleton("def main() { loop iter=N "), Error);
  EXPECT_THROW(parseSkeleton("def main() { libcall nosuchfn; }"), Error);
  EXPECT_THROW(parseSkeleton("def main() { comp zap=1; }"), Error);
  EXPECT_THROW(parseSkeleton("def main() { branch p=; }"), Error);
}

TEST(SkeletonParser, ErrorsCarryLineNumbers) {
  try {
    parseSkeleton("def main() {\n  comp flops=1;\n  bogus;\n}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("skeleton:3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace skope::skel
