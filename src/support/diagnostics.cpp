#include "support/diagnostics.h"

#include <cstdio>
#include <sstream>

namespace skope {

std::string SourceLoc::str() const {
  std::ostringstream os;
  os << (file.empty() ? "<input>" : file) << ":" << line << ":" << col;
  return os.str();
}

std::string Diagnostic::str() const {
  const char* sev = severity == Severity::Note      ? "note"
                    : severity == Severity::Warning ? "warning"
                                                    : "error";
  std::string out;
  if (loc.valid()) out += loc.str() + ": ";
  out += sev;
  out += ": ";
  out += message;
  return out;
}

void DiagSink::record(Severity severity, const SourceLoc& loc, std::string msg) {
  if (severity < threshold_ && severity != Severity::Error) return;
  diags_.push_back({severity, loc, std::move(msg)});
  if (stream_) std::fprintf(stderr, "%s\n", diags_.back().str().c_str());
}

void DiagSink::note(const SourceLoc& loc, std::string msg) {
  record(Severity::Note, loc, std::move(msg));
}

void DiagSink::warning(const SourceLoc& loc, std::string msg) {
  record(Severity::Warning, loc, std::move(msg));
}

void DiagSink::error(const SourceLoc& loc, std::string msg) {
  record(Severity::Error, loc, std::move(msg));
  ++errorCount_;
}

std::string DiagSink::str() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

void DiagSink::throwIfErrors() const {
  if (!hasErrors()) return;
  for (const auto& d : diags_) {
    if (d.severity == Severity::Error) throw Error(d.str());
  }
}

}  // namespace skope
