// Deterministic fault injection for exercising degradation paths.
//
// Robustness code is only as good as its least-travelled branch, and the
// branches that matter — a worker task throwing, the trace recorder giving
// up, the cache-model dispatch failing, the report writer erroring — almost
// never fire in a healthy run. This registry plants named fault points at
// those spots:
//
//   SKOPE_FAULT_POINT("pool/task", throw Error("fault injected: pool/task"));
//
// and lets a test or CI job arm them from one spec string:
//
//   --fault-spec=point:rate:seed[,point:rate:seed...]
//   e.g. --fault-spec=pool/task:0.05:7
//
// Firing is seeded and counter-based: the n-th invocation of a point fires
// iff hash(seed, n) < rate, so for a fixed spec the NUMBER of faults over N
// invocations is exactly reproducible regardless of thread interleaving
// (which invocation lands on which config may vary; fault-isolation tests
// therefore compare per-config rows by name, not by which rows failed).
//
// Disarmed cost is one relaxed atomic load per fault point. Compile out
// entirely with -DSKOPE_NO_FAULTINJECT (the macro becomes a no-op and no
// registry code is referenced).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skope::faultinject {

/// One armed fault point: `point` fires with probability `rate` per
/// invocation, deterministically derived from `seed`.
struct FaultSpec {
  std::string point;
  double rate = 0;    ///< in [0, 1]
  uint64_t seed = 0;
};

/// Parses "point:rate:seed[,point:rate:seed...]". Throws Error with the
/// grammar on malformed input (missing fields, rate outside [0,1], trailing
/// garbage). An empty string parses to an empty list.
[[nodiscard]] std::vector<FaultSpec> parseFaultSpec(const std::string& spec);

/// Arms the registry with `spec` (replacing any previous arming). An empty
/// spec disarms. Throws Error on a malformed spec.
void configure(const std::string& spec);
void configure(std::vector<FaultSpec> specs);

/// Disarms every fault point and resets invocation/fired counters.
void clear();

/// True when at least one fault point is armed. One relaxed atomic load —
/// the only cost a disarmed run pays at each SKOPE_FAULT_POINT.
[[nodiscard]] bool armed();

/// Decides whether the current invocation of `point` fires. Called by the
/// macro only when armed(); thread-safe.
[[nodiscard]] bool shouldFail(const char* point);

/// Faults fired at `point` since the last configure()/clear() — the number
/// CI smoke checks assert against telemetry's sweep/failed counter.
[[nodiscard]] uint64_t firedCount(const std::string& point);

/// The deterministic per-invocation decision, exposed for tests: invocation
/// `n` of a point armed with (rate, seed) fires iff
/// splitmix64(seed ^ n) < rate * 2^64.
[[nodiscard]] bool wouldFire(uint64_t n, double rate, uint64_t seed);

}  // namespace skope::faultinject

#if defined(SKOPE_NO_FAULTINJECT)
#define SKOPE_FAULT_POINT(point, ...) ((void)0)
#else
/// Plants a named fault point: when armed at `point`, runs `...` (usually a
/// throw). Disarmed cost: one relaxed atomic load.
#define SKOPE_FAULT_POINT(point, ...)                                        \
  do {                                                                       \
    if (::skope::faultinject::armed() &&                                     \
        ::skope::faultinject::shouldFail(point)) {                           \
      __VA_ARGS__;                                                           \
    }                                                                        \
  } while (0)
#endif
