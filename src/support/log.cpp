#include "support/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace skope::logging {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::Info)};
std::atomic<EventHook> g_eventHook{nullptr};

void vlogTo(Level lvl, const char* fmt, va_list ap) {
  if (EventHook hook = g_eventHook.load(std::memory_order_acquire)) {
    va_list ap2;
    va_copy(ap2, ap);
    char buf[512];
    std::vsnprintf(buf, sizeof buf, fmt, ap2);
    va_end(ap2);
    hook(lvl, buf);
  }
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
}

}  // namespace

void setEventHook(EventHook hook) {
  g_eventHook.store(hook, std::memory_order_release);
}

void setLevel(Level level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

bool infoEnabled() { return level() >= Level::Info; }

bool debugEnabled() { return level() >= Level::Debug; }

Level parseLevel(const std::string& s) {
  if (s == "quiet") return Level::Quiet;
  if (s == "info") return Level::Info;
  if (s == "debug") return Level::Debug;
  throw Error("unknown log level '" + s + "' (quiet, info, debug)");
}

Severity severityThreshold() {
  switch (level()) {
    case Level::Quiet: return Severity::Error;
    case Level::Info: return Severity::Warning;
    case Level::Debug: return Severity::Note;
  }
  return Severity::Warning;
}

void configureSink(DiagSink& sink) {
  sink.setThreshold(severityThreshold());
  sink.setStreamToStderr(true);
}

void info(const char* fmt, ...) {
  if (!infoEnabled()) return;
  va_list ap;
  va_start(ap, fmt);
  vlogTo(Level::Info, fmt, ap);
  va_end(ap);
}

void debug(const char* fmt, ...) {
  if (!debugEnabled()) return;
  va_list ap;
  va_start(ap, fmt);
  vlogTo(Level::Debug, fmt, ap);
  va_end(ap);
}

}  // namespace skope::logging
