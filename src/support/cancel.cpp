#include "support/cancel.h"

#include <algorithm>

namespace skope {

std::string_view cancelReasonLabel(CancelReason reason) {
  switch (reason) {
    case CancelReason::None: return "none";
    case CancelReason::Cancelled: return "cancelled";
    case CancelReason::DeadlineExceeded: return "deadline exceeded";
  }
  return "none";
}

CancelToken CancelToken::cancellable() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::withDeadline(Clock::time_point deadline) {
  auto state = std::make_shared<State>();
  state->deadline = deadline;
  return CancelToken(std::move(state));
}

CancelToken CancelToken::withTimeoutMs(int64_t ms) {
  if (ms <= 0) return cancellable();
  return withDeadline(Clock::now() + std::chrono::milliseconds(ms));
}

CancelToken CancelToken::childWithDeadline(Clock::time_point deadline) const {
  auto state = std::make_shared<State>();
  state->parent = state_;
  state->deadline = std::min(deadline, this->deadline());
  return CancelToken(std::move(state));
}

CancelToken CancelToken::childWithTimeoutMs(int64_t ms) const {
  if (ms <= 0) return childWithDeadline(Clock::time_point::max());
  return childWithDeadline(Clock::now() + std::chrono::milliseconds(ms));
}

void CancelToken::cancel() const {
  if (state_ != nullptr) state_->cancelled.store(true, std::memory_order_relaxed);
}

CancelReason CancelToken::reason() const {
  if (state_ == nullptr) return CancelReason::None;
  // Explicit cancellation anywhere up the chain wins (it is the stronger,
  // clock-independent signal). The chain is short — a sweep derives at most
  // root -> per-config, so this walk is two pointer chases.
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) return CancelReason::Cancelled;
  }
  // The effective deadline was folded in at creation (children take
  // min(parent, own)), so one comparison suffices — and the clock is only
  // read when some ancestor actually set a deadline.
  if (state_->deadline != Clock::time_point::max() && Clock::now() >= state_->deadline) {
    return CancelReason::DeadlineExceeded;
  }
  return CancelReason::None;
}

void CancelToken::throwIfExpired(const char* what) const {
  if (state_ == nullptr) return;
  CancelReason r = reason();
  if (r == CancelReason::None) return;
  throw CancelledError(r, std::string(what) + ": " + std::string(cancelReasonLabel(r)));
}

CancelToken::Clock::time_point CancelToken::deadline() const {
  return state_ != nullptr ? state_->deadline : Clock::time_point::max();
}

}  // namespace skope
