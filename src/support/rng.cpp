#include "support/rng.h"

#include <cmath>

namespace skope {

uint64_t Rng::next() {
  // splitmix64: passes BigCrush, two multiplies + shifts, stateless stream.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::below(uint64_t n) { return next() % n; }

int64_t Rng::range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::gaussian() {
  // Box–Muller with a fresh pair each call; u1 is kept away from zero.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace skope
