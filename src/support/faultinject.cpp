#include "support/faultinject.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "support/diagnostics.h"
#include "support/text.h"

namespace skope::faultinject {

namespace {

/// splitmix64 — the standard 64-bit finalizer; full avalanche, so successive
/// invocation indices decorrelate completely.
uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ArmedPoint {
  FaultSpec spec;
  std::atomic<uint64_t> invocations{0};
  std::atomic<uint64_t> fired{0};
};

/// Armed points behind a mutex-guarded shared_ptr snapshot: shouldFail()
/// takes one lock to copy the snapshot pointer (fault points are off the
/// per-instruction hot path — they sit at task/run granularity), then works
/// lock-free on the stable vector.
struct Registry {
  std::mutex mu;
  std::shared_ptr<std::vector<std::unique_ptr<ArmedPoint>>> points;
  std::atomic<bool> armed{false};
};

Registry& registry() {
  static Registry r;
  return r;
}

std::shared_ptr<std::vector<std::unique_ptr<ArmedPoint>>> snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.points;
}

[[noreturn]] void grammarError(const std::string& spec, const std::string& why) {
  throw Error("bad fault spec '" + spec + "': " + why +
              " (grammar: point:rate:seed[,point:rate:seed...], rate in [0,1], "
              "e.g. pool/task:0.05:7)");
}

}  // namespace

std::vector<FaultSpec> parseFaultSpec(const std::string& spec) {
  std::vector<FaultSpec> out;
  if (spec.empty()) return out;
  for (std::string_view partView : split(spec, ',')) {
    std::string part(trim(partView));
    // Split on the LAST two colons: point names contain '/' but may one day
    // contain ':'-free hierarchies; rate and seed never contain colons.
    size_t seedColon = part.rfind(':');
    if (seedColon == std::string::npos || seedColon == 0) {
      grammarError(spec, "expected point:rate:seed in '" + part + "'");
    }
    size_t rateColon = part.rfind(':', seedColon - 1);
    if (rateColon == std::string::npos || rateColon == 0) {
      grammarError(spec, "expected point:rate:seed in '" + part + "'");
    }
    FaultSpec f;
    f.point = part.substr(0, rateColon);
    std::string rateStr = part.substr(rateColon + 1, seedColon - rateColon - 1);
    std::string seedStr = part.substr(seedColon + 1);
    try {
      size_t used = 0;
      f.rate = std::stod(rateStr, &used);
      if (used != rateStr.size()) throw std::invalid_argument(rateStr);
    } catch (const std::exception&) {
      grammarError(spec, "rate '" + rateStr + "' is not a number");
    }
    if (f.rate < 0 || f.rate > 1) {
      grammarError(spec, "rate " + rateStr + " outside [0, 1]");
    }
    try {
      size_t used = 0;
      f.seed = std::stoull(seedStr, &used);
      if (used != seedStr.size()) throw std::invalid_argument(seedStr);
    } catch (const std::exception&) {
      grammarError(spec, "seed '" + seedStr + "' is not a non-negative integer");
    }
    out.push_back(std::move(f));
  }
  return out;
}

void configure(const std::string& spec) { configure(parseFaultSpec(spec)); }

void configure(std::vector<FaultSpec> specs) {
  auto points = std::make_shared<std::vector<std::unique_ptr<ArmedPoint>>>();
  for (FaultSpec& s : specs) {
    auto p = std::make_unique<ArmedPoint>();
    p->spec = std::move(s);
    points->push_back(std::move(p));
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points = points->empty() ? nullptr : std::move(points);
  r.armed.store(r.points != nullptr, std::memory_order_relaxed);
}

void clear() { configure(std::vector<FaultSpec>{}); }

bool armed() { return registry().armed.load(std::memory_order_relaxed); }

bool wouldFire(uint64_t n, double rate, uint64_t seed) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  // Compare the hashed invocation index against rate scaled into u64 space;
  // the double holds 2^64 exactly, and rate < 1 keeps the product in range.
  auto threshold = static_cast<uint64_t>(rate * 18446744073709551616.0);
  return splitmix64(seed ^ n) < threshold;
}

bool shouldFail(const char* point) {
  auto points = snapshot();
  if (points == nullptr) return false;
  for (const auto& p : *points) {
    if (p->spec.point != point) continue;
    uint64_t n = p->invocations.fetch_add(1, std::memory_order_relaxed);
    if (wouldFire(n, p->spec.rate, p->spec.seed)) {
      p->fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  return false;
}

uint64_t firedCount(const std::string& point) {
  auto points = snapshot();
  if (points == nullptr) return 0;
  for (const auto& p : *points) {
    if (p->spec.point == point) return p->fired.load(std::memory_order_relaxed);
  }
  return 0;
}

}  // namespace skope::faultinject
