// Minimal command-line flag parser for the tools/ binaries.
//
// Supports --name=value, --name value, boolean --flag, positional arguments,
// and automatic --help text. Deliberately tiny — no subcommands, no types
// beyond string/double/bool.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace skope {

class ArgParser {
 public:
  ArgParser(std::string programName, std::string description);

  /// Registers a string flag. `defaultValue` empty + required=true makes the
  /// flag mandatory.
  void addFlag(const std::string& name, const std::string& help,
               const std::string& defaultValue = "", bool required = false);

  /// Registers a boolean flag (present = true).
  void addBool(const std::string& name, const std::string& help);

  /// Registers a string flag restricted to an enumerated value set. parse()
  /// rejects anything else with an error that lists the valid choices (plus
  /// a "did you mean" when a choice is close); the help text appends the
  /// choice list. `defaultValue` must be one of `choices` (or empty with
  /// required=true).
  void addChoice(const std::string& name, const std::string& help,
                 std::vector<std::string> choices,
                 const std::string& defaultValue = "", bool required = false);

  /// Declares a positional argument (in order).
  void addPositional(const std::string& name, const std::string& help,
                     bool required = true);

  /// Parses argv. Returns false if --help was requested (help text printed
  /// to stdout). Throws Error on unknown flags or missing required values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double getDouble(const std::string& name) const;
  [[nodiscard]] bool getBool(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;

  /// Strict integer accessors: the whole value must parse as a decimal
  /// integer within [min, max], or the call throws an Error naming the flag,
  /// the valid range and the offending value. Unlike getDouble + cast, these
  /// reject overflowing literals ("99999999999999999999"), negative values
  /// for unsigned flags ("--max-ops=-1"), fractions and trailing garbage —
  /// the UB/wraparound family of numeric-flag bugs.
  [[nodiscard]] int64_t getInt(const std::string& name,
                               int64_t min = INT64_MIN, int64_t max = INT64_MAX) const;
  [[nodiscard]] uint64_t getUint64(const std::string& name,
                                   uint64_t min = 0, uint64_t max = UINT64_MAX) const;

  [[nodiscard]] std::string helpText() const;

 private:
  struct FlagSpec {
    std::string name;
    std::string help;
    std::string defaultValue;
    bool required = false;
    bool boolean = false;
    std::vector<std::string> choices;  ///< non-empty = enumerated values only
  };
  struct PosSpec {
    std::string name;
    std::string help;
    bool required = true;
  };

  const FlagSpec* findFlag(const std::string& name) const;
  /// The closest registered flag name by edit distance, or "" when nothing
  /// is near enough to suggest ("did you mean --…?" on unknown flags).
  [[nodiscard]] std::string nearestFlag(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<FlagSpec> flags_;
  std::vector<PosSpec> positionals_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> bools_;
};

}  // namespace skope
