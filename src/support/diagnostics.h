// Diagnostics: source locations, error reporting, and the Error exception type
// used across the framework. All frontend and modeling errors funnel through
// Diag so callers get consistent "file:line:col: message" formatting.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace skope {

/// A position inside a source buffer. Lines and columns are 1-based; a zero
/// line means "unknown location" (e.g. synthesized nodes).
struct SourceLoc {
  std::string_view file;  ///< name of the buffer (not owned)
  uint32_t line = 0;
  uint32_t col = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;
};

/// Exception thrown for unrecoverable user-facing errors (parse errors,
/// semantic errors, model misconfiguration). Carries a formatted location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
  Error(const SourceLoc& loc, const std::string& msg)
      : std::runtime_error(loc.valid() ? loc.str() + ": " + msg : msg) {}
};

/// Severity of a collected diagnostic.
enum class Severity { Note, Warning, Error };

/// One collected diagnostic message.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics during a pass. Passes that can recover (e.g. sema)
/// accumulate here instead of throwing; callers check hasErrors() afterwards.
///
/// By default everything is buffered and nothing is printed. A severity
/// threshold drops notes/warnings at record time (--log-level's filter), and
/// streaming mode additionally prints every kept diagnostic to stderr as it
/// is recorded, so long passes surface problems live instead of at the end.
class DiagSink {
 public:
  void note(const SourceLoc& loc, std::string msg);
  void warning(const SourceLoc& loc, std::string msg);
  void error(const SourceLoc& loc, std::string msg);

  /// Diagnostics below `min` are dropped at record time. Errors are always
  /// kept (Severity::Error is the maximum). Default keeps everything.
  void setThreshold(Severity min) { threshold_ = min; }
  [[nodiscard]] Severity threshold() const { return threshold_; }

  /// When on, every kept diagnostic is also printed to stderr immediately.
  void setStreamToStderr(bool on) { stream_ = on; }

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] size_t errorCount() const { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// Renders every diagnostic, one per line.
  [[nodiscard]] std::string str() const;

  /// Throws Error with the first error message if any error was recorded.
  void throwIfErrors() const;

 private:
  void record(Severity severity, const SourceLoc& loc, std::string msg);

  std::vector<Diagnostic> diags_;
  size_t errorCount_ = 0;
  Severity threshold_ = Severity::Note;
  bool stream_ = false;
};

}  // namespace skope
