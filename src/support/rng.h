// Deterministic pseudo-random number generator used everywhere randomness is
// needed (workload input synthesis, library-function input sampling). A fixed
// algorithm (splitmix64 + xoshiro-style mixing) keeps results reproducible
// across platforms, unlike std::default_random_engine.
#pragma once

#include <cstdint>

namespace skope {

/// Small, fast, reproducible PRNG (splitmix64 core).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (no cached spare, for determinism).
  double gaussian();

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

 private:
  uint64_t state_;
};

}  // namespace skope
