#include "support/argparse.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "support/text.h"

namespace skope {

ArgParser::ArgParser(std::string programName, std::string description)
    : program_(std::move(programName)), description_(std::move(description)) {}

void ArgParser::addFlag(const std::string& name, const std::string& help,
                        const std::string& defaultValue, bool required) {
  flags_.push_back({name, help, defaultValue, required, false, {}});
}

void ArgParser::addBool(const std::string& name, const std::string& help) {
  flags_.push_back({name, help, "", false, true, {}});
}

void ArgParser::addChoice(const std::string& name, const std::string& help,
                          std::vector<std::string> choices,
                          const std::string& defaultValue, bool required) {
  flags_.push_back({name, help, defaultValue, required, false, std::move(choices)});
}

void ArgParser::addPositional(const std::string& name, const std::string& help,
                              bool required) {
  positionals_.push_back({name, help, required});
}

const ArgParser::FlagSpec* ArgParser::findFlag(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string ArgParser::nearestFlag(const std::string& name) const {
  std::string best;
  size_t bestDist = ~size_t{0};
  for (const auto& f : flags_) {
    size_t d = editDistance(name, f.name);
    if (d < bestDist) {
      bestDist = d;
      best = f.name;
    }
  }
  // Only suggest when the typo is plausibly the known flag: a third of the
  // name's length in edits, but always allow a couple for short names.
  if (bestDist <= std::max<size_t>(2, name.size() / 3)) return best;
  return "";
}

bool ArgParser::parse(int argc, const char* const* argv) {
  size_t posIndex = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(helpText().c_str(), stdout);
      return false;
    }
    if (startsWith(arg, "--")) {
      std::string name = arg.substr(2);
      std::string value;
      bool hasValue = false;
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        hasValue = true;
      }
      const FlagSpec* spec = findFlag(name);
      if (!spec) {
        std::string near = nearestFlag(name);
        if (!near.empty()) {
          throw Error("unknown flag --" + name + " (did you mean --" + near + "?)");
        }
        throw Error("unknown flag --" + name + " (see --help)");
      }
      if (spec->boolean) {
        if (hasValue) throw Error("--" + name + " is a boolean flag, no value expected");
        bools_[name] = true;
        continue;
      }
      if (!hasValue) {
        if (i + 1 >= argc) throw Error("--" + name + " expects a value");
        value = argv[++i];
      }
      if (!spec->choices.empty() &&
          std::find(spec->choices.begin(), spec->choices.end(), value) ==
              spec->choices.end()) {
        std::string msg = "invalid value '" + value + "' for --" + name +
                          " (choices: " + join(spec->choices, ", ") + ")";
        std::string best;
        size_t bestDist = ~size_t{0};
        for (const auto& c : spec->choices) {
          size_t d = editDistance(value, c);
          if (d < bestDist) {
            bestDist = d;
            best = c;
          }
        }
        if (bestDist <= std::max<size_t>(2, value.size() / 3)) {
          msg += " — did you mean '" + best + "'?";
        }
        throw Error(msg);
      }
      values_[name] = value;
      continue;
    }
    if (posIndex >= positionals_.size()) {
      throw Error("unexpected positional argument '" + arg + "'");
    }
    values_[positionals_[posIndex++].name] = arg;
  }

  for (const auto& f : flags_) {
    if (f.boolean) continue;
    if (!values_.count(f.name)) {
      if (f.required) throw Error("missing required flag --" + f.name);
      values_[f.name] = f.defaultValue;
    }
  }
  for (const auto& p : positionals_) {
    if (p.required && !values_.count(p.name)) {
      throw Error("missing required argument <" + p.name + ">");
    }
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  auto it = values_.find(name);
  return it != values_.end() ? it->second : "";
}

double ArgParser::getDouble(const std::string& name) const {
  std::string v = get(name);
  if (v.empty()) throw Error("flag --" + name + " has no value");
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got '" + v + "'");
  }
}

namespace {

/// Strict from_chars wrapper: the entire string must be one in-range decimal
/// integer. Returns false on empty input, sign mismatch, overflow (ERANGE
/// maps to from_chars' result_out_of_range) or trailing garbage.
template <typename T>
bool parseIntStrict(const std::string& v, T& out) {
  if (v.empty()) return false;
  const char* first = v.data();
  const char* last = v.data() + v.size();
  // from_chars accepts a leading '-' for signed types only — exactly the
  // contract we want (no "+", no spaces, no hex).
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

template <typename T>
[[noreturn]] void badIntFlag(const std::string& name, const std::string& v, T min, T max) {
  throw Error("flag --" + name + " expects an integer in [" + std::to_string(min) +
              ", " + std::to_string(max) + "], got '" + v + "'");
}

}  // namespace

int64_t ArgParser::getInt(const std::string& name, int64_t min, int64_t max) const {
  std::string v = get(name);
  if (v.empty()) throw Error("flag --" + name + " has no value");
  int64_t out = 0;
  if (!parseIntStrict(v, out) || out < min || out > max) badIntFlag(name, v, min, max);
  return out;
}

uint64_t ArgParser::getUint64(const std::string& name, uint64_t min, uint64_t max) const {
  std::string v = get(name);
  if (v.empty()) throw Error("flag --" + name + " has no value");
  uint64_t out = 0;
  if (!parseIntStrict(v, out) || out < min || out > max) badIntFlag(name, v, min, max);
  return out;
}

bool ArgParser::getBool(const std::string& name) const {
  auto it = bools_.find(name);
  return it != bools_.end() && it->second;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) != 0 || getBool(name);
}

std::string ArgParser::helpText() const {
  std::string out = program_;
  for (const auto& p : positionals_) {
    out += p.required ? " <" + p.name + ">" : " [" + p.name + "]";
  }
  out += " [flags]\n  " + description_ + "\n\n";
  for (const auto& p : positionals_) {
    out += format("  %-22s %s\n", ("<" + p.name + ">").c_str(), p.help.c_str());
  }
  for (const auto& f : flags_) {
    std::string left = "--" + f.name + (f.boolean ? "" : "=<v>");
    std::string right = f.help;
    if (!f.choices.empty()) right += " [" + join(f.choices, "|") + "]";
    if (!f.defaultValue.empty()) right += " (default: " + f.defaultValue + ")";
    if (f.required) right += " (required)";
    out += format("  %-22s %s\n", left.c_str(), right.c_str());
  }
  return out;
}

}  // namespace skope
