// Cooperative cancellation and deadlines for long-running pipeline stages.
//
// A CancelToken is a cheap, copyable handle onto shared cancellation state:
// an explicit cancel() flag plus an optional monotonic-clock deadline. Tokens
// form a hierarchy — child() derives a token that observes its parent's
// cancellation and may tighten (never loosen) the effective deadline — which
// is how a sweep maps "--deadline-ms for the whole grid, --config-timeout-ms
// per config" onto one mechanism: the sweep holds the root token and each
// worker derives a per-config child when it picks the config up.
//
// Checking is cooperative and polled: the VM exec loop, trace replay, the
// reuse-distance walk, the batched SoA combine and the sweep workers call
// expired() / throwIfExpired() at bounded intervals (every ~64K units of
// work), so a runaway config is interrupted within a predictable amount of
// work, not at an instruction boundary. A default-constructed token is the
// null token: expired() is a single pointer test and never a clock read, so
// uncancellable callers pay effectively nothing — the property the
// bench_robustness overhead gauge pins at <= 3%.
//
// Cancellation surfaces as CancelledError (a subclass of Error carrying the
// reason), so the sweep's per-config exception barrier can classify a
// deadline expiry as status "timeout" rather than "error" — see
// docs/ROBUSTNESS.md for the status schema.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "support/diagnostics.h"

namespace skope {

/// Why a token reports expiry.
enum class CancelReason {
  None,              ///< not cancelled
  Cancelled,         ///< someone called cancel() on this token or an ancestor
  DeadlineExceeded,  ///< the effective deadline passed
};

/// Human-readable reason ("cancelled" / "deadline exceeded").
[[nodiscard]] std::string_view cancelReasonLabel(CancelReason reason);

/// Thrown by throwIfExpired(). Subclasses Error so existing catch sites keep
/// working; carries the reason so fault-isolation barriers can distinguish a
/// timeout from a genuine failure.
class CancelledError : public Error {
 public:
  CancelledError(CancelReason reason, const std::string& msg)
      : Error(msg), reason_(reason) {}

  [[nodiscard]] CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// The null token: never expires, costs one pointer test to poll.
  CancelToken() = default;

  /// A cancellable token with no deadline (cancel() is the only trigger).
  [[nodiscard]] static CancelToken cancellable();
  /// A token that expires at `deadline` (monotonic clock).
  [[nodiscard]] static CancelToken withDeadline(Clock::time_point deadline);
  /// A token that expires `ms` milliseconds from now. `ms` <= 0 returns a
  /// cancellable token with no deadline (the CLI's "0 = unlimited").
  [[nodiscard]] static CancelToken withTimeoutMs(int64_t ms);

  /// A child observing this token's cancellation, with its own cancel()
  /// scope. The child's effective deadline is min(parent's, `deadline`) —
  /// children tighten deadlines, never extend them. Callable on the null
  /// token (the child then simply has no parent).
  [[nodiscard]] CancelToken childWithDeadline(Clock::time_point deadline) const;
  [[nodiscard]] CancelToken childWithTimeoutMs(int64_t ms) const;

  /// Non-null (was created by one of the factories)?
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Requests cancellation of this token and every child derived from it.
  /// No-op on the null token. Thread-safe; idempotent.
  void cancel() const;

  /// Polls the state: explicit cancellation anywhere up the parent chain
  /// wins over deadline expiry. Reads the clock only when a deadline is set.
  [[nodiscard]] CancelReason reason() const;

  /// True when reason() != None. The hot-path poll: one pointer test on the
  /// null token.
  [[nodiscard]] bool expired() const {
    return state_ != nullptr && reason() != CancelReason::None;
  }

  /// Throws CancelledError("<what>: <reason>") when expired. `what` names
  /// the stage being interrupted ("vm", "sweep", "trace/reuse", ...).
  void throwIfExpired(const char* what) const;

  /// The effective deadline (min over the parent chain), or
  /// Clock::time_point::max() when none is set.
  [[nodiscard]] Clock::time_point deadline() const;

 private:
  struct State {
    /// mutable: tokens share State via shared_ptr<const State> (the tree is
    /// immutable after creation) but cancel() still flips this flag.
    mutable std::atomic<bool> cancelled{false};
    /// min(own deadline, parent's effective deadline), frozen at creation.
    Clock::time_point deadline = Clock::time_point::max();
    std::shared_ptr<const State> parent;
  };

  explicit CancelToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Polling interval for hot loops: check the token every time
/// (counter & kCancelCheckMask) == 0. 64K units keeps the clock read far off
/// the per-iteration path while still bounding interruption latency.
constexpr uint64_t kCancelCheckMask = 0xFFFF;

}  // namespace skope
