#include "support/text.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace skope {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string padRight(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string padLeft(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  std::string out(width - s.size(), ' ');
  out += s;
  return out;
}

std::string humanDouble(double v, int prec) {
  std::ostringstream os;
  os.precision(prec);
  os << v;
  return os.str();
}

size_t editDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Two-row DP; `prev[j]` is the distance between a's processed prefix and
  // b's first j characters.
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace skope
