// Small text utilities shared by the frontends and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace skope {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Left-pads or truncates to exactly `width` columns.
std::string padRight(std::string_view s, size_t width);
std::string padLeft(std::string_view s, size_t width);

/// Renders `v` with `prec` significant digits, trimming trailing zeros.
std::string humanDouble(double v, int prec = 4);

/// Levenshtein edit distance (insert / delete / substitute, unit costs).
/// Drives the CLI's "did you mean --…?" suggestions for unknown flags.
size_t editDistance(std::string_view a, std::string_view b);

}  // namespace skope
