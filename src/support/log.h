// Process-wide stderr logging for the CLIs and benches, built on the
// DiagSink severity ladder: --log-level={quiet,info,debug} picks one Level,
// and configureSink() maps it onto a DiagSink threshold (+ streaming) so
// pass diagnostics (sema notes/warnings) and CLI chatter filter identically
// in both tools.
//
//   quiet  -> errors only           (sink threshold Severity::Error)
//   info   -> + warnings, progress  (sink threshold Severity::Warning)
//   debug  -> + notes, stage tables (sink threshold Severity::Note)
#pragma once

#include <string>

#include "support/diagnostics.h"

namespace skope::logging {

enum class Level { Quiet = 0, Info = 1, Debug = 2 };

void setLevel(Level level);
[[nodiscard]] Level level();
[[nodiscard]] bool infoEnabled();
[[nodiscard]] bool debugEnabled();

/// Parses "quiet" / "info" / "debug"; throws Error otherwise.
Level parseLevel(const std::string& s);

/// The DiagSink severity threshold equivalent of the current level.
[[nodiscard]] Severity severityThreshold();

/// Applies the current level to `sink`: severity threshold plus streaming to
/// stderr, so kept diagnostics surface as they are recorded.
void configureSink(DiagSink& sink);

/// printf-style lines to stderr, gated on the level (no prefix is added —
/// callers keep their "tool: ..." conventions).
void info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Mirrors every kept info()/debug() line to an out-of-band consumer — the
/// telemetry layer installs one to feed its flight recorder. A plain
/// function pointer (not std::function) so the holder can be
/// constant-initialized, making installation safe from any static
/// initializer. nullptr uninstalls. The hook runs on the logging thread and
/// must be thread-safe.
using EventHook = void (*)(Level level, const char* message);
void setEventHook(EventHook hook);

}  // namespace skope::logging
