#include "translate/translate.h"

#include <map>
#include <set>

#include "minic/builtins.h"

namespace skope::translate {

using minic::BinOp;
using minic::ExprKind;
using minic::ExprNode;
using minic::FuncDecl;
using minic::Program;
using minic::StmtKind;
using minic::StmtNode;
using minic::Type;
using skel::SkKind;
using skel::SkMetrics;
using skel::SkNode;
using skel::SkNodeUP;

namespace {

class FuncTranslator {
 public:
  FuncTranslator(const Program& prog, const FuncDecl& fn) : prog_(prog), fn_(fn) {}

  SkNodeUP run() {
    std::vector<std::string> formals;
    for (size_t i = 0; i < fn_.params.size(); ++i) {
      formals.push_back(fn_.params[i].name);
      tracked_[static_cast<int>(i)] = fn_.params[i].name;
    }
    auto def = skel::makeDef(fn_.name, std::move(formals), fn_.id);
    curOrigin_ = fn_.id;
    def->kids = translateStmts(fn_.body);
    return def;
  }

 private:
  // ---- symbolic expressions over params / formals / tracked locals ----

  /// Converts a MiniC expression into a symbolic skeleton expression, or
  /// nullptr when it depends on untracked (data-dependent) state.
  ExprPtr symbolize(const ExprNode& e) const {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
        return constant(e.numValue);
      case ExprKind::VarRef:
        if (e.paramIndex >= 0) return param(e.name);
        if (e.localSlot >= 0) {
          auto it = tracked_.find(e.localSlot);
          if (it != tracked_.end()) return param(it->second);
        }
        return nullptr;
      case ExprKind::Binary: {
        auto a = symbolize(*e.args[0]);
        auto b = symbolize(*e.args[1]);
        if (!a || !b) return nullptr;
        switch (e.bin) {
          case BinOp::Add: return add(a, b);
          case BinOp::Sub: return sub(a, b);
          case BinOp::Mul: return mul(a, b);
          case BinOp::Div:
            // integer division truncates; for modeling purposes plain
            // division is close enough for loop bounds
            return divide(a, b);
          case BinOp::Mod: return mod(a, b);
          default: return nullptr;  // comparisons are not value expressions
        }
      }
      case ExprKind::Unary:
        if (e.un == minic::UnOp::Neg) {
          auto a = symbolize(*e.args[0]);
          return a ? neg(a) : nullptr;
        }
        return nullptr;
      case ExprKind::Call:
        if (e.builtinIndex >= 0) {
          const auto& info = minic::builtinTable()[static_cast<size_t>(e.builtinIndex)];
          if (info.name == "imin" || info.name == "fmin") {
            auto a = symbolize(*e.args[0]);
            auto b = symbolize(*e.args[1]);
            if (a && b) return exprMin(a, b);
          }
          if (info.name == "imax" || info.name == "fmax") {
            auto a = symbolize(*e.args[0]);
            auto b = symbolize(*e.args[1]);
            if (a && b) return exprMax(a, b);
          }
        }
        return nullptr;
      default:
        return nullptr;
    }
  }

  // ---- instruction-mix characterization ----

  /// Accumulates the op mix of evaluating `e` into `mix_`, emitting Call /
  /// LibCall skeleton nodes for non-intrinsic calls found inside.
  void scanExpr(const ExprNode& e, std::vector<SkNodeUP>& out) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
        return;
      case ExprKind::VarRef:
        return;  // register traffic; the paper's skeletons ignore stack vars
      case ExprKind::ArrayRef:
        for (const auto& ix : e.args) scanExpr(*ix, out);
        mix_.loads += 1;
        return;
      case ExprKind::Unary:
        scanExpr(*e.args[0], out);
        if (e.args[0]->type == Type::Real && e.un == minic::UnOp::Neg) {
          mix_.flops += 1;
        } else {
          mix_.iops += 1;
        }
        return;
      case ExprKind::Binary: {
        scanExpr(*e.args[0], out);
        scanExpr(*e.args[1], out);
        bool real = e.args[0]->type == Type::Real || e.args[1]->type == Type::Real;
        if (e.bin == BinOp::Div && real) {
          mix_.fpdivs += 1;
        } else if (real) {
          mix_.flops += 1;
        } else if (e.bin == BinOp::Div || e.bin == BinOp::Mod) {
          // Integer divide/modulo is statically known to be a multi-cycle
          // sequence on every target; weight it like the handful of ALU ops
          // the compiler would emit for it. (FP divides deliberately stay
          // uniform — that is the paper's §VII-B simplification.)
          mix_.iops += 8;
        } else {
          mix_.iops += 1;
        }
        return;
      }
      case ExprKind::Call: {
        for (const auto& a : e.args) scanExpr(*a, out);
        if (e.builtinIndex >= 0) {
          const auto& info = minic::builtinTable()[static_cast<size_t>(e.builtinIndex)];
          if (info.isLibraryCall) {
            flushComp(out);
            out.push_back(skel::makeLibCall(e.builtinIndex, constant(1), e.id));
          } else {
            // cheap intrinsic: fold its static mix into the caller
            mix_.flops += info.mix.flops;
            mix_.iops += info.mix.iops;
          }
          return;
        }
        // user call: emit with symbolic args (unresolvable args become 0 and
        // the callee's profiled statistics take over)
        flushComp(out);
        std::vector<ExprPtr> args;
        for (const auto& a : e.args) {
          auto s = symbolize(*a);
          args.push_back(s ? s : constant(0));
        }
        out.push_back(skel::makeCall(e.name, std::move(args), e.id));
        return;
      }
    }
  }

  void flushComp(std::vector<SkNodeUP>& out) {
    if (mix_.empty()) return;
    out.push_back(skel::makeComp(mix_, curOrigin_));
    mix_ = SkMetrics{};
  }

  // ---- statement translation ----

  std::vector<SkNodeUP> translateStmts(const std::vector<minic::StmtUP>& stmts) {
    std::vector<SkNodeUP> out;
    for (const auto& s : stmts) translateStmt(*s, out);
    flushComp(out);
    return out;
  }

  void translateStmt(const StmtNode& s, std::vector<SkNodeUP>& out) {
    switch (s.kind) {
      case StmtKind::Block: {
        for (const auto& k : s.body) translateStmt(*k, out);
        return;
      }

      case StmtKind::VarDecl:
        if (s.rhs) {
          scanExpr(*s.rhs, out);
          trackAssign(s.localSlot, s.lhsName, *s.rhs, out);
        }
        return;

      case StmtKind::Assign: {
        for (const auto& ix : s.lhsIndices) scanExpr(*ix, out);
        scanExpr(*s.rhs, out);
        if (s.arrayIndex >= 0) {
          mix_.stores += 1;
        } else if (s.localSlot >= 0) {
          trackAssign(s.localSlot, s.lhsName, *s.rhs, out);
        }
        return;
      }

      case StmtKind::ExprStmt:
        scanExpr(*s.rhs, out);
        return;

      case StmtKind::If: {
        scanExpr(*s.cond, out);
        mix_.iops += 1;  // the conditional branch instruction
        flushComp(out);
        auto branch = skel::makeBranch(staticBranchProb(*s.cond), s.id);
        branch->kids = translateStmts(s.body);
        branch->elseKids = translateStmts(s.elseBody);
        out.push_back(std::move(branch));
        return;
      }

      case StmtKind::For:
        translateFor(s, out);
        return;

      case StmtKind::While: {
        flushComp(out);
        auto loop = skel::makeLoop(nullptr, s.id);  // bound from profiling
        uint32_t saved = curOrigin_;
        curOrigin_ = s.id;
        loop->kids = translateStmts(s.body);
        // per-iteration condition evaluation
        SkMetrics condMix = exprMixOf(*s.cond);
        condMix.iops += 1;  // loop-back branch
        if (!condMix.empty()) {
          loop->kids.insert(loop->kids.begin(), skel::makeComp(condMix, s.id));
        }
        curOrigin_ = saved;
        out.push_back(std::move(loop));
        return;
      }

      case StmtKind::Return:
        flushComp(out);
        if (s.rhs) scanExpr(*s.rhs, out);
        flushComp(out);
        out.push_back(skel::makeSimple(SkKind::Return, s.id));
        return;

      case StmtKind::Break:
        flushComp(out);
        out.push_back(skel::makeSimple(SkKind::Break, s.id));
        return;

      case StmtKind::Continue:
        flushComp(out);
        out.push_back(skel::makeSimple(SkKind::Continue, s.id));
        return;
    }
  }

  /// Records a scalar local assignment as a Set when the value is symbolic;
  /// otherwise the local becomes untracked from here on.
  void trackAssign(int slot, const std::string& name, const ExprNode& rhs,
                   std::vector<SkNodeUP>& out) {
    if (slot < 0) return;
    if (inductionSlots_.count(slot)) return;  // loop vars are never tracked
    auto sym = symbolize(rhs);
    if (sym) {
      flushComp(out);
      tracked_[slot] = name;
      out.push_back(skel::makeSet(name, std::move(sym), 0));
    } else {
      tracked_.erase(slot);
    }
  }

  /// Mix of an expression, computed into a fresh accumulator (no node output;
  /// used for loop conditions whose calls we disallow structurally).
  SkMetrics exprMixOf(const ExprNode& e) {
    SkMetrics saved = mix_;
    mix_ = SkMetrics{};
    std::vector<SkNodeUP> scratch;
    scanExpr(e, scratch);
    SkMetrics result = mix_;
    mix_ = saved;
    return result;
  }

  /// Branch probability when statically decidable, else null (annotator).
  ExprPtr staticBranchProb(const ExprNode& cond) const {
    (void)cond;
    return nullptr;
  }

  void translateFor(const StmtNode& s, std::vector<SkNodeUP>& out) {
    // init runs once, outside the loop
    for (const auto& ix : s.init->lhsIndices) scanExpr(*ix, out);
    scanExpr(*s.init->rhs, out);
    flushComp(out);

    int loopVar = s.init->localSlot;
    bool wasInduction = inductionSlots_.count(loopVar) != 0;
    bool wasTracked = tracked_.count(loopVar) != 0;
    std::string trackedName = wasTracked ? tracked_[loopVar] : "";
    if (loopVar >= 0) {
      inductionSlots_.insert(loopVar);
      tracked_.erase(loopVar);
    }

    auto loop = skel::makeLoop(deriveTripCount(s, loopVar), s.id);
    uint32_t saved = curOrigin_;
    curOrigin_ = s.id;
    loop->kids = translateStmts(s.body);
    // per-iteration condition + step work
    SkMetrics overhead = exprMixOf(*s.cond);
    SkMetrics stepMix = exprMixOf(*s.step->rhs);
    overhead += stepMix;
    overhead.iops += 1;  // loop-back branch
    loop->kids.push_back(skel::makeComp(overhead, s.id));
    curOrigin_ = saved;
    out.push_back(std::move(loop));

    if (loopVar >= 0 && !wasInduction) inductionSlots_.erase(loopVar);
    if (wasTracked) tracked_[loopVar] = trackedName;
  }

  /// Recognizes `for (i = A; i <cmp> B; i = i ± C)` with symbolic A, B, C and
  /// returns the trip-count expression; null when the shape is not affine.
  ExprPtr deriveTripCount(const StmtNode& s, int loopVar) const {
    if (loopVar < 0) return nullptr;
    auto a = symbolize(*s.init->rhs);
    if (!a) return nullptr;

    // condition: loopVar cmp B (either side)
    const ExprNode& cond = *s.cond;
    if (cond.kind != ExprKind::Binary) return nullptr;
    const ExprNode* lhs = cond.args[0].get();
    const ExprNode* rhs = cond.args[1].get();
    BinOp cmp = cond.bin;
    auto isVar = [&](const ExprNode* e) {
      return e->kind == ExprKind::VarRef && e->localSlot == loopVar;
    };
    ExprPtr bound;
    if (isVar(lhs)) {
      bound = symbolize(*rhs);
    } else if (isVar(rhs)) {
      bound = symbolize(*lhs);
      // flip the comparison so the var is conceptually on the left
      switch (cmp) {
        case BinOp::Lt: cmp = BinOp::Gt; break;
        case BinOp::Le: cmp = BinOp::Ge; break;
        case BinOp::Gt: cmp = BinOp::Lt; break;
        case BinOp::Ge: cmp = BinOp::Le; break;
        default: break;
      }
    }
    if (!bound) return nullptr;

    // step: i = i + C or i = i - C
    const ExprNode& step = *s.step->rhs;
    if (s.step->localSlot != loopVar || step.kind != ExprKind::Binary) return nullptr;
    if (step.bin != BinOp::Add && step.bin != BinOp::Sub) return nullptr;
    const ExprNode* sl = step.args[0].get();
    const ExprNode* sr = step.args[1].get();
    ExprPtr c;
    bool decrement = (step.bin == BinOp::Sub);
    if (isVar(sl)) {
      c = symbolize(*sr);
    } else if (isVar(sr) && step.bin == BinOp::Add) {
      c = symbolize(*sl);
    }
    if (!c) return nullptr;

    ExprPtr span;
    switch (cmp) {
      case BinOp::Lt: span = sub(bound, a); break;                  // i < B, i += C
      case BinOp::Le: span = add(sub(bound, a), constant(1)); break;
      case BinOp::Gt: span = sub(a, bound); break;                  // i > B, i -= C
      case BinOp::Ge: span = add(sub(a, bound), constant(1)); break;
      default: return nullptr;
    }
    if ((cmp == BinOp::Gt || cmp == BinOp::Ge) != decrement) {
      // e.g. `for (i = 0; i < N; i = i - 1)` — not a counted loop
      return nullptr;
    }
    return exprMax(constant(0), ceilDiv(span, c));
  }

  const Program& prog_;
  const FuncDecl& fn_;
  SkMetrics mix_;
  uint32_t curOrigin_ = 0;
  std::map<int, std::string> tracked_;   ///< local slot -> context var name
  std::set<int> inductionSlots_;
};

}  // namespace

skel::SkeletonProgram translateProgram(const Program& prog) {
  skel::SkeletonProgram out;
  for (const auto& p : prog.params) out.params.push_back(p.name);
  for (const auto& f : prog.funcs) {
    out.defs.push_back(FuncTranslator(prog, *f).run());
  }
  return out;
}

}  // namespace skope::translate
