// Source-to-skeleton translator — the paper's "application analysis engine"
// (§III-B), built on our MiniC frontend in place of ROSE.
//
// The translator statically characterizes each function: instruction mix of
// straight-line code (comp statements), control-flow structure (loop/branch
// nodes), user calls with symbolic arguments, and library calls. Loop bounds
// that are affine in workload parameters become symbolic expressions; bounds
// and branch probabilities that depend on data are left unresolved (null) and
// filled in afterwards by the annotator from a local profiling run.
#pragma once

#include "minic/ast.h"
#include "skeleton/skeleton.h"

namespace skope::translate {

/// Purely static translation. The returned skeleton may contain Loop nodes
/// with null `iter` and Branch nodes with null `prob`; run annotate() on it
/// before building a BET.
skel::SkeletonProgram translateProgram(const minic::Program& prog);

}  // namespace skope::translate
