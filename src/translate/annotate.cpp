#include <algorithm>
#include <map>

#include "translate/annotate.h"

namespace skope::translate {

using skel::SkKind;
using skel::SkNode;

namespace {

void annotateNode(SkNode& n, const vm::ProfileData& profile) {
  if (n.kind == SkKind::Loop && !n.iter) {
    const vm::BranchSiteStats* st = profile.site(n.origin);
    n.iter = constant(st ? st->meanTrips() : 0.0);
  }
  if (n.kind == SkKind::Branch && !n.prob) {
    const vm::BranchSiteStats* st = profile.site(n.origin);
    n.prob = constant(st ? st->pTrue() : 0.0);
  }
  for (auto& k : n.kids) annotateNode(*k, profile);
  for (auto& k : n.elseKids) annotateNode(*k, profile);
}

void collectUnresolved(const SkNode& n, std::vector<uint32_t>& out) {
  if ((n.kind == SkKind::Loop && !n.iter) || (n.kind == SkKind::Branch && !n.prob)) {
    out.push_back(n.origin);
  }
  for (const auto& k : n.kids) collectUnresolved(*k, out);
  for (const auto& k : n.elseKids) collectUnresolved(*k, out);
}

}  // namespace

void annotate(skel::SkeletonProgram& skeleton, const vm::ProfileData& profile) {
  for (auto& d : skeleton.defs) annotateNode(*d, profile);
}

std::vector<uint32_t> unresolvedSites(const skel::SkeletonProgram& skeleton) {
  std::vector<uint32_t> out;
  for (const auto& d : skeleton.defs) collectUnresolved(*d, out);
  return out;
}

namespace {

void applyHintsToNode(SkNode& n, const std::map<uint32_t, double>& branchProbs,
                      const std::map<uint32_t, double>& loopTrips, size_t& applied) {
  if (n.kind == SkKind::Branch) {
    auto it = branchProbs.find(n.origin);
    if (it != branchProbs.end()) {
      n.prob = constant(std::clamp(it->second, 0.0, 1.0));
      ++applied;
    }
  }
  if (n.kind == SkKind::Loop) {
    auto it = loopTrips.find(n.origin);
    if (it != loopTrips.end()) {
      n.iter = constant(std::max(0.0, it->second));
      ++applied;
    }
  }
  for (auto& k : n.kids) applyHintsToNode(*k, branchProbs, loopTrips, applied);
  for (auto& k : n.elseKids) applyHintsToNode(*k, branchProbs, loopTrips, applied);
}

}  // namespace

size_t applyHints(skel::SkeletonProgram& skeleton,
                  const std::map<uint32_t, double>& branchProbs,
                  const std::map<uint32_t, double>& loopTrips) {
  size_t applied = 0;
  for (auto& d : skeleton.defs) {
    applyHintsToNode(*d, branchProbs, loopTrips, applied);
  }
  return applied;
}

}  // namespace skope::translate
