// Skeleton annotator — merges local branch-profiling statistics (the gcov
// substitute, §III-B) into a statically translated skeleton.
//
// Loops whose bounds the translator could not derive (`iter == nullptr`) get
// their mean measured trip count; branches get their measured fall-through
// probability. The statistics are keyed by the skeleton nodes' `origin` AST
// ids, which are the same ids the VM reports branch sites under.
#pragma once

#include <map>
#include <vector>

#include "skeleton/skeleton.h"
#include "vm/profile.h"

namespace skope::translate {

/// Fills every unresolved Loop::iter and Branch::prob from `profile`.
/// Sites never reached during profiling get iter=0 / p=0 (dead code).
void annotate(skel::SkeletonProgram& skeleton, const vm::ProfileData& profile);

/// Origins of Loop/Branch nodes still lacking statistics (empty after a
/// successful annotate()). BET construction refuses unresolved skeletons.
std::vector<uint32_t> unresolvedSites(const skel::SkeletonProgram& skeleton);

/// Developer overrides from the hint file's "distribution of values" section:
/// sets the fall-through probability of the branch at each origin (and the
/// trip count of loops, keyed the same way), *replacing* whatever static
/// analysis or profiling produced. Returns the number of sites overridden.
size_t applyHints(skel::SkeletonProgram& skeleton,
                  const std::map<uint32_t, double>& branchProbs,
                  const std::map<uint32_t, double>& loopTrips = {});

}  // namespace skope::translate
