// Ground-truth timing simulator — the framework's stand-in for the paper's
// native profiling runs on real BG/Q and Xeon nodes (§VI).
//
// Drives the VM over the full input while simulating the machine's cache
// hierarchy, branch predictor, SIMD vectorization and per-op latencies, and
// attributes cycles to source regions. Its ranked per-region output plays the
// role of the paper's `Prof` baseline.
#pragma once

#include <functional>
#include <map>

#include "machine/cache.h"
#include "minic/ast.h"
#include "sim/cost_model.h"
#include "vm/interp.h"

namespace skope::sim {

// Region-id conventions (library pseudo-regions, labels) live in
// vm/bytecode.h so the analytic side can share them; re-exported here for
// convenience.
using vm::isLibRegion;
using vm::kLibRegionBase;
using vm::libRegion;
using vm::libRegionBuiltin;
using vm::regionLabel;
using vm::regionStaticInstrs;

/// Simulated cycle breakdown of one region (exclusive: children are separate).
struct RegionCost {
  double computeCycles = 0;   ///< arithmetic + issue cost of loads/stores
  double memCycles = 0;       ///< cache/DRAM miss penalties
  double branchCycles = 0;    ///< misprediction penalties
  double libCycles = 0;       ///< time inside library builtins (pseudo-regions)
  uint64_t instrs = 0;        ///< dynamic instructions attributed here
  uint64_t loads = 0, stores = 0;
  uint64_t l1Misses = 0, llcMisses = 0;

  [[nodiscard]] double totalCycles() const {
    return computeCycles + memCycles + branchCycles + libCycles;
  }
  /// Dynamic instructions per simulated cycle (paper Fig. 8's "issue rate").
  [[nodiscard]] double issueRate() const {
    double t = totalCycles();
    return t == 0 ? 0.0 : static_cast<double>(instrs) / t;
  }
  /// Instructions per L1 miss (paper Fig. 8's second counter).
  [[nodiscard]] double instrsPerL1Miss() const {
    return l1Misses == 0 ? static_cast<double>(instrs)
                         : static_cast<double>(instrs) / static_cast<double>(l1Misses);
  }
};

struct SimResult {
  std::string machineName;
  double freqGHz = 1.0;
  std::map<uint32_t, RegionCost> regions;
  uint64_t dynamicInstrs = 0;
  double l1MissRate = 0;
  double llcMissRate = 0;

  [[nodiscard]] double totalCycles() const;
  [[nodiscard]] double seconds() const { return totalCycles() / (freqGHz * 1e9); }
  [[nodiscard]] double regionSeconds(uint32_t region) const;
};

/// Per-builtin instruction mixes (see roofline::LibMixes / src/libmodel).
using LibMixMap = std::map<int, skel::SkMetrics>;

/// Converts per-region op counts into compute cycles + instruction counts,
/// honoring per-region vectorization. Shared by Simulator::run and the
/// trace-replay fast path (src/trace/replay.cpp) so both attribute compute
/// cost identically, term for term.
void addComputeCycles(const vm::OpCounters& oc, const CostModel& costs,
                      const std::function<bool(uint32_t)>& isVectorized, SimResult& out);

/// Charges `calls` invocations of `builtin` to its library pseudo-region,
/// using `libMixes` when it covers the builtin and the static table mix
/// otherwise. Shared by the simulator (calls == 1 per event) and replay
/// (one bulk charge per builtin).
void chargeLibCalls(int builtin, uint64_t calls, const CostModel& costs,
                    const LibMixMap* libMixes, SimResult& out);

/// One simulator instance per (program, machine) pair.
class Simulator {
 public:
  /// `prog`, `mod` and `libMixes` must outlive the Simulator. When
  /// `libMixes` is supplied, library calls are charged from those mixes
  /// (keeps the "hardware" consistent with the kernels the semi-analytic
  /// model profiled); otherwise the static table mixes are used.
  Simulator(const minic::Program& prog, const vm::Module& mod, const MachineModel& machine,
            const LibMixMap* libMixes = nullptr);

  /// Simulates one full run of main with the given workload parameters.
  SimResult run(const std::map<std::string, double>& params, uint64_t seed = 0x5eed);

  /// Dynamic instruction budget for the simulated run (see Vm::setMaxOps).
  void setMaxOps(uint64_t maxOps) { maxOps_ = maxOps; }

  /// Cooperative cancellation, forwarded to the Vm (see Vm::setCancelToken).
  void setCancelToken(CancelToken token) { cancel_ = std::move(token); }

  /// True when this machine's compiler model vectorizes the given loop.
  [[nodiscard]] bool isVectorized(uint32_t region) const {
    auto it = vectorized_.find(region);
    return it != vectorized_.end() && it->second;
  }

 private:
  const minic::Program& prog_;
  const vm::Module& mod_;
  MachineModel machine_;
  CostModel costs_;
  std::map<minic::NodeId, bool> vectorized_;
  const LibMixMap* libMixes_ = nullptr;
  uint64_t maxOps_ = 0;  ///< 0 = keep the Vm default
  CancelToken cancel_;
};

}  // namespace skope::sim
