#include "sim/simulator.h"

#include "minic/builtins.h"
#include "sim/vectorize.h"
#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::sim {

double SimResult::totalCycles() const {
  double t = 0;
  for (const auto& [id, rc] : regions) t += rc.totalCycles();
  return t;
}

double SimResult::regionSeconds(uint32_t region) const {
  auto it = regions.find(region);
  return it == regions.end() ? 0.0 : it->second.totalCycles() / (freqGHz * 1e9);
}

namespace {

/// Per-site 2-bit saturating branch predictor.
class BranchPredictor {
 public:
  /// Returns true if the prediction was wrong.
  bool mispredicted(uint32_t site, bool taken) {
    uint8_t& state = states_[site];  // 0,1 -> predict not-taken; 2,3 -> taken
    bool predictTaken = state >= 2;
    if (taken && state < 3) ++state;
    if (!taken && state > 0) --state;
    return predictTaken != taken;
  }

 private:
  std::map<uint32_t, uint8_t> states_;
};

class SimTracer : public vm::Tracer {
 public:
  SimTracer(const CostModel& costs, const MachineModel& machine, SimResult& out,
            const LibMixMap* libMixes)
      : costs_(costs), caches_(machine), out_(out), libMixes_(libMixes) {}

  void onLoad(uint32_t region, uint64_t addr) override { memAccess(region, addr, true); }
  void onStore(uint32_t region, uint64_t addr) override { memAccess(region, addr, false); }

  void onBranch(uint32_t region, uint32_t site, bool taken) override {
    if (predictor_.mispredicted(site, taken)) {
      out_.regions[region].branchCycles += costs_.machine().mispredictPenalty;
    }
  }

  void onLibCall(uint32_t region, int builtin) override {
    (void)region;
    chargeLibCalls(builtin, 1, costs_, libMixes_, out_);
  }

  void finish() {
    out_.l1MissRate = caches_.l1().missRate();
    out_.llcMissRate = caches_.llc().missRate();
  }

 private:
  void memAccess(uint32_t region, uint64_t addr, bool isLoad) {
    auto lvl = caches_.access(addr);
    RegionCost& rc = out_.regions[region];
    rc.memCycles += costs_.memPenalty(lvl);
    if (isLoad) ++rc.loads; else ++rc.stores;
    if (lvl != CacheHierarchy::Level::L1) {
      ++rc.l1Misses;
      if (lvl == CacheHierarchy::Level::Memory) ++rc.llcMisses;
    }
  }

  const CostModel& costs_;
  CacheHierarchy caches_;
  BranchPredictor predictor_;
  SimResult& out_;
  const LibMixMap* libMixes_;
};

}  // namespace

void addComputeCycles(const vm::OpCounters& oc, const CostModel& costs,
                      const std::function<bool(uint32_t)>& isVectorized, SimResult& out) {
  for (uint32_t region = 0; region < oc.numRegions(); ++region) {
    const uint64_t* row = oc.row(region);
    double cycles = 0;
    uint64_t instrs = 0;
    bool vec = isVectorized(region);
    for (size_t c = 0; c < vm::kNumOpClasses; ++c) {
      uint64_t n = row[c];
      if (n == 0) continue;
      instrs += n;
      double per = vec ? costs.opCyclesVectorized(static_cast<vm::OpClass>(c))
                       : costs.opCycles(static_cast<vm::OpClass>(c));
      cycles += static_cast<double>(n) * per;
    }
    if (instrs == 0) continue;
    RegionCost& rc = out.regions[region];
    rc.computeCycles += cycles;
    rc.instrs += instrs;
  }
}

void chargeLibCalls(int builtin, uint64_t calls, const CostModel& costs,
                    const LibMixMap* libMixes, SimResult& out) {
  if (calls == 0) return;
  auto n = static_cast<double>(calls);
  RegionCost& rc = out.regions[libRegion(builtin)];
  if (libMixes) {
    auto it = libMixes->find(builtin);
    if (it != libMixes->end()) {
      rc.libCycles += n * costs.builtinCycles(it->second);
      rc.instrs += calls * static_cast<uint64_t>(it->second.totalFlops() + it->second.iops +
                                                 it->second.accesses());
      return;
    }
  }
  rc.libCycles += n * costs.builtinCycles(builtin);
  const auto& mix = minic::builtinTable()[static_cast<size_t>(builtin)].mix;
  rc.instrs += calls * static_cast<uint64_t>(mix.flops + mix.iops + mix.loads + mix.stores);
}

Simulator::Simulator(const minic::Program& prog, const vm::Module& mod,
                     const MachineModel& machine, const LibMixMap* libMixes)
    : prog_(prog), mod_(mod), machine_(machine), costs_(machine),
      vectorized_(vectorizedLoops(prog, machine)), libMixes_(libMixes) {}

SimResult Simulator::run(const std::map<std::string, double>& params, uint64_t seed) {
  SKOPE_SPAN("sim/run");
  SimResult result;
  result.machineName = machine_.name;
  result.freqGHz = machine_.freqGHz;

  vm::Vm vmachine(mod_);
  vmachine.bindParams(params);
  vmachine.setSeed(seed);
  if (maxOps_ != 0) vmachine.setMaxOps(maxOps_);
  if (cancel_.valid()) vmachine.setCancelToken(cancel_);
  SimTracer tracer(costs_, machine_, result, libMixes_);
  vmachine.run(&tracer);
  tracer.finish();
  result.dynamicInstrs = vmachine.dynamicInstrs();
  if (telemetry::enabled()) {
    telemetry::Registry::current().counter("sim/ops").add(vmachine.dynamicInstrs());
  }

  // Convert the VM's per-region op counts into compute cycles, honoring the
  // per-machine vectorization decision for each loop region.
  addComputeCycles(vmachine.counters(), costs_,
                   [this](uint32_t region) { return isVectorized(region); }, result);
  return result;
}

}  // namespace skope::sim
