// Static auto-vectorization model.
//
// The paper's measured baselines were produced by native compilers (IBM XL on
// BG/Q, GFortran on Xeon) whose auto-vectorizers behave very differently —
// Section VII-B attributes the STASSUIJ over-estimation to XL vectorizing the
// top hot spot while the analytic model ignores vectorization entirely. To
// reproduce that effect, the ground-truth simulator needs a deterministic
// model of "which loops would the native compiler vectorize".
//
// A loop is structurally vectorizable when it is innermost, straight-line
// (no branches, calls, or early exits in the body), and streams through at
// least one array with the loop induction variable in the fastest-varying
// subscript. Each such loop gets a *simplicity score* in (0,1]; a machine
// whose compiler has autoVecQuality q vectorizes the loop iff
// score >= 1 - q.
#pragma once

#include <map>

#include "machine/machine.h"
#include "minic/ast.h"

namespace skope::sim {

/// Loop NodeId -> simplicity score for every structurally vectorizable loop.
std::map<minic::NodeId, double> vectorizableLoops(const minic::Program& prog);

/// Applies a machine's compiler quality to the structural scores.
std::map<minic::NodeId, bool> vectorizedLoops(const minic::Program& prog,
                                              const MachineModel& machine);

}  // namespace skope::sim
