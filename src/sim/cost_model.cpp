#include "sim/cost_model.h"

#include <algorithm>

#include "minic/builtins.h"

namespace skope::sim {

using vm::OpClass;

CostModel::CostModel(const MachineModel& m) : machine_(m) {
  double issue = m.issueWidth;
  // Pipelined units sustain roughly latency/(2*issue) cycles per dependent-ish
  // op; wide out-of-order cores hide more latency than narrow in-order ones.
  auto pipelined = [&](double lat) { return std::max(1.0 / issue, lat / (2.0 * issue)); };

  auto set = [&](OpClass c, double v) { opCycles_[static_cast<size_t>(c)] = v; };
  set(OpClass::IntAlu, 1.0 / issue);
  set(OpClass::IntDiv, m.intDivLat);
  set(OpClass::FpAdd, pipelined(m.fpAddLat));
  set(OpClass::FpMul, pipelined(m.fpMulLat));
  set(OpClass::FpDiv, m.fpDivLat);  // unpipelined on both targets
  set(OpClass::Load, 1.0 / issue);
  set(OpClass::Store, 1.0 / issue);
  set(OpClass::Branch, m.branchLat / issue);
  set(OpClass::Call, 8.0);  // frame setup + return overhead
  set(OpClass::LibCall, 0.0);  // charged separately via builtinCycles
  set(OpClass::Conv, m.convLat / issue);

  // SIMD divides the compute classes by the vector width; memory ops keep
  // their issue cost (misses are charged separately and are not narrowed).
  double w = m.simdWidthDoubles;
  for (size_t i = 0; i < vm::kNumOpClasses; ++i) opCyclesVec_[i] = opCycles_[i];
  auto vec = [&](OpClass c) {
    opCyclesVec_[static_cast<size_t>(c)] = opCycles_[static_cast<size_t>(c)] / w;
  };
  vec(OpClass::FpAdd);
  vec(OpClass::FpMul);
  vec(OpClass::FpDiv);
  vec(OpClass::IntAlu);
  vec(OpClass::Load);   // vector loads amortize issue slots...
  vec(OpClass::Store);  // ...but not miss penalties

  llcPenalty_ = m.llc.latencyCycles / m.mlp;
  // Charge DRAM as the worse of latency/MLP and the per-line bandwidth cost.
  double bytesPerCycle = m.memBandwidthGBs / (m.freqGHz * m.cores);
  double bwCycles = static_cast<double>(m.llc.lineBytes) / bytesPerCycle;
  memPenaltyCycles_ = std::max(m.memLatencyCycles / m.mlp, bwCycles);
}

double CostModel::builtinCycles(int index) const {
  const auto& m = minic::builtinTable()[static_cast<size_t>(index)].mix;
  return builtinCycles(skel::SkMetrics{m.flops, 0, m.iops, m.loads, m.stores});
}

double CostModel::builtinCycles(const skel::SkMetrics& mix) const {
  // A scalar libm kernel: mostly dependent FMAs (hence the 1.5x serialization
  // factor), divides at their real cost, plus table lookups that hit L1.
  return mix.flops * opCycles(OpClass::FpMul) * 1.5 +
         mix.fpdivs * opCycles(OpClass::FpDiv) +
         mix.iops * opCycles(OpClass::IntAlu) +
         mix.accesses() * (opCycles(OpClass::Load) + machine_.l1.latencyCycles * 0.5);
}

double CostModel::memPenalty(CacheHierarchy::Level lvl) const {
  switch (lvl) {
    case CacheHierarchy::Level::L1:
      return 0.0;  // L1 hits are hidden by the pipeline
    case CacheHierarchy::Level::Llc:
      return llcPenalty_;
    case CacheHierarchy::Level::Memory:
      return memPenaltyCycles_;
  }
  return 0.0;
}

}  // namespace skope::sim
