#include "sim/vectorize.h"

#include "minic/builtins.h"

namespace skope::sim {

using minic::ExprKind;
using minic::ExprNode;
using minic::NodeId;
using minic::Program;
using minic::StmtKind;
using minic::StmtNode;

namespace {

struct BodyScan {
  bool hasControlFlow = false;  ///< if/while/nested-for/break/continue/return
  bool hasCall = false;         ///< user calls or opaque library calls
  bool unitStride = false;      ///< some array subscript ends with the loop var
  size_t stmts = 0;
};

void scanExpr(const ExprNode& e, int loopVarSlot, BodyScan& out) {
  switch (e.kind) {
    case ExprKind::Call:
      if (e.builtinIndex >= 0) {
        if (minic::builtinTable()[static_cast<size_t>(e.builtinIndex)].isLibraryCall) {
          out.hasCall = true;
        }
      } else {
        out.hasCall = true;
      }
      break;
    case ExprKind::ArrayRef:
      if (!e.args.empty()) {
        const ExprNode& last = *e.args.back();
        if (last.kind == ExprKind::VarRef && last.localSlot == loopVarSlot) {
          out.unitStride = true;
        }
      }
      break;
    default:
      break;
  }
  for (const auto& a : e.args) scanExpr(*a, loopVarSlot, out);
}

void scanStmts(const std::vector<minic::StmtUP>& stmts, int loopVarSlot, BodyScan& out) {
  for (const auto& s : stmts) {
    ++out.stmts;
    switch (s->kind) {
      case StmtKind::If:
      case StmtKind::While:
      case StmtKind::For:
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Return:
        out.hasControlFlow = true;
        break;
      default:
        break;
    }
    if (s->rhs) scanExpr(*s->rhs, loopVarSlot, out);
    if (s->cond) scanExpr(*s->cond, loopVarSlot, out);
    for (const auto& ix : s->lhsIndices) scanExpr(*ix, loopVarSlot, out);
    // also check stores through the fastest dimension
    if (s->kind == StmtKind::Assign && !s->lhsIndices.empty()) {
      const ExprNode& last = *s->lhsIndices.back();
      if (last.kind == ExprKind::VarRef && last.localSlot == loopVarSlot) {
        out.unitStride = true;
      }
    }
    scanStmts(s->body, loopVarSlot, out);
    scanStmts(s->elseBody, loopVarSlot, out);
  }
}

void visitLoops(const std::vector<minic::StmtUP>& stmts,
                std::map<NodeId, double>& out) {
  for (const auto& s : stmts) {
    if (s->kind == StmtKind::For) {
      int loopVar = s->init ? s->init->localSlot : -1;
      BodyScan scan;
      scanStmts(s->body, loopVar, scan);
      if (!scan.hasControlFlow && !scan.hasCall && scan.unitStride && loopVar >= 0) {
        // Short bodies are "obviously" vectorizable; long ones only to an
        // aggressive compiler. score: 1 stmt -> 1.0, 5 -> 0.5, 9 -> 1/3 ...
        double score = 1.0 / (1.0 + (static_cast<double>(scan.stmts) - 1.0) / 4.0);
        out[s->id] = score;
      }
    }
    visitLoops(s->body, out);
    visitLoops(s->elseBody, out);
  }
}

}  // namespace

std::map<NodeId, double> vectorizableLoops(const Program& prog) {
  std::map<NodeId, double> out;
  for (const auto& f : prog.funcs) visitLoops(f->body, out);
  return out;
}

std::map<NodeId, bool> vectorizedLoops(const Program& prog, const MachineModel& machine) {
  std::map<NodeId, bool> out;
  for (const auto& [id, score] : vectorizableLoops(prog)) {
    out[id] = score >= 1.0 - machine.autoVecQuality;
  }
  return out;
}

}  // namespace skope::sim
