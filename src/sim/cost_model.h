// Per-operation cycle costs for the ground-truth simulator.
//
// This is deliberately a *different* and more detailed timing model than the
// analytic roofline: it distinguishes divides from other flops, honors SIMD
// vectorization, models branch mispredictions, and charges memory penalties
// from a real cache simulation. The systematic disagreements between this
// model and the roofline reproduce the error sources of paper §VII-C.
#pragma once

#include "machine/cache.h"
#include "machine/machine.h"
#include "skeleton/skeleton.h"
#include "vm/bytecode.h"

namespace skope::sim {

class CostModel {
 public:
  explicit CostModel(const MachineModel& m);

  /// Scalar cycles for one dynamic operation of class `c` (memory penalties
  /// excluded — those come from memPenalty()).
  [[nodiscard]] double opCycles(vm::OpClass c) const {
    return opCycles_[static_cast<size_t>(c)];
  }

  /// Same, with SIMD applied to the vectorizable classes.
  [[nodiscard]] double opCyclesVectorized(vm::OpClass c) const {
    return opCyclesVec_[static_cast<size_t>(c)];
  }

  /// Cycles consumed inside one call of builtin `index` (scalar libm model,
  /// derived from the builtin's static instruction mix).
  [[nodiscard]] double builtinCycles(int index) const;

  /// Same cost formula over an explicit (e.g. empirically profiled) mix.
  [[nodiscard]] double builtinCycles(const skel::SkMetrics& mix) const;

  /// Extra cycles charged per access served at `lvl`, beyond the base
  /// Load/Store issue cost.
  [[nodiscard]] double memPenalty(CacheHierarchy::Level lvl) const;

  [[nodiscard]] const MachineModel& machine() const { return machine_; }

 private:
  MachineModel machine_;
  double opCycles_[vm::kNumOpClasses] = {};
  double opCyclesVec_[vm::kNumOpClasses] = {};
  double llcPenalty_ = 0;
  double memPenaltyCycles_ = 0;
};

}  // namespace skope::sim
