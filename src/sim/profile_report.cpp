#include "sim/profile_report.h"

#include <algorithm>

#include "support/text.h"

namespace skope::sim {

double ProfileReport::coverageOfTop(size_t n) const {
  if (totalSeconds <= 0) return 0;
  double s = 0;
  for (size_t i = 0; i < n && i < ranked.size(); ++i) s += ranked[i].seconds;
  return s / totalSeconds;
}

int ProfileReport::rankOf(uint32_t region) const {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].region == region) return static_cast<int>(i);
  }
  return -1;
}

ProfileReport makeReport(const SimResult& sim, const vm::Module& mod) {
  ProfileReport report;
  report.machineName = sim.machineName;
  report.totalSeconds = sim.seconds();
  report.totalStaticInstrs = mod.totalStaticInstrs();

  for (const auto& [region, rc] : sim.regions) {
    double secs = rc.totalCycles() / (sim.freqGHz * 1e9);
    if (secs <= 0) continue;
    HotSpotEntry e;
    e.region = region;
    e.label = regionLabel(mod, region);
    e.seconds = secs;
    e.fraction = report.totalSeconds > 0 ? secs / report.totalSeconds : 0;
    e.staticInstrs = regionStaticInstrs(mod, region);
    e.issueRate = rc.issueRate();
    e.instrsPerL1Miss = rc.instrsPerL1Miss();
    report.ranked.push_back(std::move(e));
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const HotSpotEntry& a, const HotSpotEntry& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.region < b.region;  // deterministic tie-break
            });
  return report;
}

std::string formatReport(const ProfileReport& report, size_t topN) {
  std::string out;
  out += format("Profiled hot spots on %s (total %.4f s)\n", report.machineName.c_str(),
                report.totalSeconds);
  out += format("%4s  %-28s %12s %8s %8s %10s %12s\n", "#", "block", "seconds", "time%",
                "cum%", "issueRate", "instr/L1miss");
  double cum = 0;
  for (size_t i = 0; i < topN && i < report.ranked.size(); ++i) {
    const auto& e = report.ranked[i];
    cum += e.fraction;
    out += format("%4zu  %-28s %12.6f %7.2f%% %7.2f%% %10.3f %12.1f\n", i + 1,
                  e.label.c_str(), e.seconds, e.fraction * 100, cum * 100, e.issueRate,
                  e.instrsPerL1Miss);
  }
  return out;
}

}  // namespace skope::sim
