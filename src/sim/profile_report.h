// Ranked hot-spot report from a simulation — the equivalent of the paper's
// native-profiler output ("Prof"): the most time-consuming code blocks in
// descending run-time order, with run-time coverage fractions.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace skope::sim {

struct HotSpotEntry {
  uint32_t region = 0;
  std::string label;
  double seconds = 0;
  double fraction = 0;       ///< share of total run time
  size_t staticInstrs = 0;   ///< code size of the block (leanness accounting)
  double issueRate = 0;
  double instrsPerL1Miss = 0;
};

struct ProfileReport {
  std::string machineName;
  std::vector<HotSpotEntry> ranked;  ///< descending by seconds
  double totalSeconds = 0;
  size_t totalStaticInstrs = 0;

  /// Cumulative run-time coverage of the first n entries.
  [[nodiscard]] double coverageOfTop(size_t n) const;

  /// Index of `region` in the ranking, or -1.
  [[nodiscard]] int rankOf(uint32_t region) const;
};

/// Builds the ranked report from a simulation result.
ProfileReport makeReport(const SimResult& sim, const vm::Module& mod);

/// Formats the top-N rows as a fixed-width text table.
std::string formatReport(const ProfileReport& report, size_t topN);

}  // namespace skope::sim
