#include "search/pareto.h"

#include <algorithm>

namespace skope::search {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.time <= b.time && a.cost <= b.cost && (a.time < b.time || a.cost < b.cost);
}

std::vector<size_t> paretoFront(const std::vector<ParetoPoint>& pts) {
  std::vector<size_t> order(pts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const ParetoPoint& a = pts[x];
    const ParetoPoint& b = pts[y];
    if (a.time != b.time) return a.time < b.time;
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.tag < b.tag;
  });

  // Sweep in time order: everything before the current point has time <= t,
  // so it is dominated iff some predecessor also has cost <= c with one
  // strict inequality. Tracking the cheapest predecessor (and the time at
  // which that cost was first reached) decides both cases: a point beats
  // the front when it is strictly cheaper, and exact duplicates of the
  // cost-setter are co-frontier rather than dominated.
  std::vector<size_t> front;
  double bestCost = 0;
  double bestTime = 0;
  bool any = false;
  for (size_t idx : order) {
    const ParetoPoint& p = pts[idx];
    if (!any || p.cost < bestCost) {
      bestCost = p.cost;
      bestTime = p.time;
      any = true;
      front.push_back(idx);
    } else if (p.cost == bestCost && p.time == bestTime) {
      front.push_back(idx);
    }
  }
  return front;
}

}  // namespace skope::search
