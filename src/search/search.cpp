#include "search/search.h"

#include "search/pareto.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::search {

namespace {

bool usable(sweep::ConfigStatus s) {
  return s == sweep::ConfigStatus::Ok || s == sweep::ConfigStatus::Degraded;
}

/// Row-major flat index of a pick tuple — the inverse of DesignSpace::decode.
/// Identifies a lattice point in the proposal dedup set.
size_t encodePick(const DesignSpace& space, const std::vector<size_t>& pick) {
  size_t idx = 0;
  for (size_t a = 0; a < space.axes.size(); ++a) {
    idx = idx * space.axes[a].values.size() + pick[a];
  }
  return idx;
}

/// Shared state of one search run: the evaluated points, their lattice
/// picks (for mutation), and the proposal dedup set.
struct SearchState {
  const core::WorkloadFrontend& frontend;
  const DesignSpace& space;
  const SearchOptions& options;
  SearchResult& result;
  std::vector<std::vector<size_t>> picks;  ///< parallel to result.evaluated
  std::unordered_set<size_t> proposed;     ///< lattice indices ever proposed
  size_t generations = 0;

  [[nodiscard]] size_t budgetLeft() const {
    if (options.evalBudget == 0) return static_cast<size_t>(-1);
    size_t spent = result.evaluated.size();
    return options.evalBudget > spent ? options.evalBudget - spent : 0;
  }

  /// Materializes and evaluates one generation of NOT-yet-proposed pick
  /// tuples (in the given deterministic order), appending the outcomes to
  /// the result. Constraint-rejected picks are counted and skipped;
  /// proposals beyond the remaining eval budget are truncated (recorded as
  /// budget exhaustion). Returns the number of points appended.
  size_t evaluateGeneration(const std::vector<std::vector<size_t>>& generation) {
    std::vector<MachineConfig> configs;
    std::vector<std::vector<size_t>> genPicks;
    std::vector<double> costs;
    for (const auto& pick : generation) {
      if (!proposed.insert(encodePick(space, pick)).second) continue;
      double cost = 0;
      auto cfg = space.materialize(pick, &cost);
      if (!cfg) {
        ++result.rejected;
        continue;
      }
      if (configs.size() >= budgetLeft()) {
        result.budgetExhausted = true;
        break;
      }
      configs.push_back(std::move(*cfg));
      genPicks.push_back(pick);
      costs.push_back(cost);
    }
    if (configs.empty()) return 0;

    sweep::SweepOptions opts = options.sweep;
    // The baseline must not float with whatever config leads a generation.
    if (!opts.baseline) opts.baseline = space.base;
    sweep::SweepResult swept = sweep::runSweep(frontend, configs, opts);
    ++generations;
    result.missModel = swept.missModel;
    result.threadsUsed = std::max(result.threadsUsed, swept.threadsUsed);
    for (size_t i = 0; i < swept.outcomes.size(); ++i) {
      const sweep::ConfigOutcome& out = swept.outcomes[i];
      EvaluatedPoint pt;
      pt.config = out.config;
      pt.projectedSeconds = out.projectedSeconds;
      pt.cost = costs[i];
      pt.status = out.status;
      pt.error = out.error;
      pt.evalMs = out.evalMs;
      result.evaluated.push_back(std::move(pt));
      picks.push_back(genPicks[i]);
    }
    return swept.outcomes.size();
  }

  /// Usable evaluated indices ranked by projected time; ties break to the
  /// lower (earlier-proposed) index, keeping the ranking thread-invariant.
  [[nodiscard]] std::vector<size_t> rankedUsable() const {
    std::vector<size_t> order;
    for (size_t i = 0; i < result.evaluated.size(); ++i) {
      if (usable(result.evaluated[i].status)) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return result.evaluated[a].projectedSeconds < result.evaluated[b].projectedSeconds;
    });
    return order;
  }
};

/// Stratified first generation, Latin-hypercube style: each axis is covered
/// by an independent random permutation of the sample strata, so every
/// region of every axis is visited even when the sample is a tiny fraction
/// of the lattice.
std::vector<std::vector<size_t>> stratifiedSample(const DesignSpace& space, size_t count,
                                                  Rng& rng) {
  const size_t axes = space.axes.size();
  std::vector<std::vector<size_t>> perms(axes);
  for (size_t a = 0; a < axes; ++a) {
    perms[a].resize(count);
    for (size_t g = 0; g < count; ++g) perms[a][g] = g;
    for (size_t g = count; g-- > 1;) {
      std::swap(perms[a][g], perms[a][rng.below(g + 1)]);
    }
  }
  std::vector<std::vector<size_t>> out(count, std::vector<size_t>(axes));
  for (size_t g = 0; g < count; ++g) {
    for (size_t a = 0; a < axes; ++a) {
      size_t n = space.axes[a].values.size();
      // Stratum center, scaled onto this axis's value indices.
      size_t v = static_cast<size_t>((static_cast<double>(perms[a][g]) + 0.5) /
                                     static_cast<double>(count) * static_cast<double>(n));
      out[g][a] = std::min(v, n - 1);
    }
  }
  return out;
}

/// One mutant of a survivor: each axis steps ±1 or ±2 with probability 1/2;
/// if no axis moved, one forced step keeps the mutant distinct.
std::vector<size_t> mutate(const DesignSpace& space, const std::vector<size_t>& parent,
                           Rng& rng) {
  std::vector<size_t> pick = parent;
  bool moved = false;
  for (size_t a = 0; a < pick.size(); ++a) {
    if (!rng.chance(0.5)) continue;
    int64_t delta = rng.range(1, 2) * (rng.chance(0.5) ? 1 : -1);
    int64_t v = static_cast<int64_t>(pick[a]) + delta;
    int64_t hi = static_cast<int64_t>(space.axes[a].values.size()) - 1;
    v = std::clamp<int64_t>(v, 0, hi);
    moved = moved || v != static_cast<int64_t>(pick[a]);
    pick[a] = static_cast<size_t>(v);
  }
  if (!moved && !pick.empty()) {
    size_t a = rng.below(pick.size());
    size_t hi = space.axes[a].values.size() - 1;
    pick[a] = pick[a] < hi ? pick[a] + 1 : (pick[a] > 0 ? pick[a] - 1 : pick[a]);
  }
  return pick;
}

/// All single-axis ±1 neighbors of a point, in axis order (-1 before +1):
/// the deterministic hill-climb neighborhood.
std::vector<std::vector<size_t>> neighborhood(const DesignSpace& space,
                                              const std::vector<size_t>& center) {
  std::vector<std::vector<size_t>> out;
  for (size_t a = 0; a < center.size(); ++a) {
    if (center[a] > 0) {
      auto p = center;
      --p[a];
      out.push_back(std::move(p));
    }
    if (center[a] + 1 < space.axes[a].values.size()) {
      auto p = center;
      ++p[a];
      out.push_back(std::move(p));
    }
  }
  return out;
}

void runExhaustive(SearchState& st) {
  const size_t total = st.space.gridCount();
  std::vector<std::vector<size_t>> all;
  all.reserve(total);
  for (size_t i = 0; i < total; ++i) all.push_back(st.space.decode(i));
  st.evaluateGeneration(all);
  st.result.provenance =
      st.result.budgetExhausted
          ? format("budget-exhausted: evaluated %zu of %zu lattice points "
                   "(eval budget %zu)",
                   st.result.evaluated.size(), total - st.result.rejected,
                   st.options.evalBudget)
          : format("complete: exhaustive over %zu lattice points (%zu rejected "
                   "by constraints)",
                   total, st.result.rejected);
}

void runSuccessiveHalving(SearchState& st) {
  const SearchOptions& opt = st.options;
  Rng rng(opt.seed);
  const size_t total = st.space.gridCount();
  const size_t survivors = std::max<size_t>(1, opt.survivors);
  size_t gen0 = std::max<size_t>(survivors, std::min(opt.generationSize, total));

  st.evaluateGeneration(stratifiedSample(st.space, gen0, rng));

  // Halving rounds: each survivor seeds local mutants; the target size
  // halves round over round while the pool concentrates near the leaders.
  for (size_t r = 1; r <= opt.rounds && !st.result.budgetExhausted; ++r) {
    auto ranked = st.rankedUsable();
    if (ranked.empty()) break;
    size_t keep = std::min(survivors, ranked.size());
    size_t target = std::max(survivors, gen0 >> r);
    size_t perSurvivor = (target + keep - 1) / keep;
    std::vector<std::vector<size_t>> generation;
    for (size_t s = 0; s < keep; ++s) {
      for (size_t m = 0; m < perSurvivor; ++m) {
        generation.push_back(mutate(st.space, st.picks[ranked[s]], rng));
      }
    }
    st.evaluateGeneration(generation);
  }

  // Hill-climb refinement: evaluate the incumbent's full ±1 neighborhood,
  // move to any improvement, repeat until a local optimum (or the budget).
  // On the roofline's largely monotone response surfaces this is what
  // closes the last fraction of a percent to the exhaustive optimum.
  size_t steps = 0;
  const size_t maxSteps = 64;  // backstop; convergence normally stops it
  while (!st.result.budgetExhausted && steps < maxSteps) {
    auto ranked = st.rankedUsable();
    if (ranked.empty()) break;
    size_t best = ranked.front();
    double bestTime = st.result.evaluated[best].projectedSeconds;
    st.evaluateGeneration(neighborhood(st.space, st.picks[best]));
    auto after = st.rankedUsable();
    if (after.empty() ||
        st.result.evaluated[after.front()].projectedSeconds >= bestTime) {
      break;  // no neighbor improved: local optimum
    }
    ++steps;
  }

  st.result.provenance =
      st.result.budgetExhausted
          ? format("budget-exhausted: evaluated %zu candidates of a %zu-point "
                   "lattice (eval budget %zu)",
                   st.result.evaluated.size(), total, opt.evalBudget)
          : format("complete: %zu generations, %zu hill steps, %zu evals over a "
                   "%zu-point lattice (%zu rejected by constraints)",
                   st.generations, steps, st.result.evaluated.size(), total,
                   st.result.rejected);
}

}  // namespace

SearchResult runSearch(const core::WorkloadFrontend& frontend, const DesignSpace& space,
                       const SearchOptions& options) {
  SKOPE_SPAN("search/run");
  if (space.axes.empty()) throw Error("design space has no axes to search over");

  SearchResult result;
  result.workload = frontend.name();
  result.algorithm =
      options.algorithm == SearchAlgorithm::Exhaustive ? "exhaustive" : "shalving";
  result.seed = options.seed;
  result.spaceSize = space.gridCount();
  result.hasCost = space.cost != nullptr;
  result.withinPct = options.withinPct;

  auto t0 = std::chrono::steady_clock::now();
  SearchState st{frontend, space, options, result, {}, {}, 0};
  if (options.algorithm == SearchAlgorithm::Exhaustive) {
    runExhaustive(st);
  } else {
    runSuccessiveHalving(st);
  }

  // The answers. Only usable (Ok / Degraded) points participate; Timeout /
  // Error rows stay in `evaluated` for the report but carry no projection.
  std::vector<ParetoPoint> pts;
  std::vector<size_t> ptIndex;  // pts position -> evaluated index
  for (size_t i = 0; i < result.evaluated.size(); ++i) {
    const EvaluatedPoint& p = result.evaluated[i];
    if (!usable(p.status)) continue;
    pts.push_back({p.projectedSeconds, result.hasCost ? p.cost : 0.0, i});
    ptIndex.push_back(i);
  }
  for (size_t pos : paretoFront(pts)) result.front.push_back(ptIndex[pos]);

  if (!pts.empty()) {
    size_t best = ptIndex.front();
    for (size_t i : ptIndex) {
      if (result.evaluated[i].projectedSeconds <
          result.evaluated[best].projectedSeconds) {
        best = i;
      }
    }
    result.bestIndex = best;
    if (result.hasCost) {
      double limit = result.evaluated[best].projectedSeconds *
                     (1.0 + options.withinPct / 100.0);
      std::optional<size_t> cheapest;
      for (size_t i : ptIndex) {
        const EvaluatedPoint& p = result.evaluated[i];
        if (p.projectedSeconds > limit || std::isnan(p.cost)) continue;
        if (!cheapest) {
          cheapest = i;
          continue;
        }
        const EvaluatedPoint& c = result.evaluated[*cheapest];
        if (p.cost < c.cost ||
            (p.cost == c.cost && p.projectedSeconds < c.projectedSeconds)) {
          cheapest = i;
        }
      }
      result.cheapestWithin = cheapest;
    }
  }
  result.searchSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::current();
    reg.counter("search/evals").add(result.evaluated.size());
    reg.counter("search/rejected").add(result.rejected);
    reg.gauge("search/space-size").set(static_cast<double>(result.spaceSize));
    reg.gauge("search/front-size").set(static_cast<double>(result.front.size()));
  }
  return result;
}

}  // namespace skope::search
