#include "search/space.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/diagnostics.h"
#include "support/text.h"

namespace skope::search {

namespace {

double parseNumber(std::string_view tok, std::string_view what) {
  try {
    size_t pos = 0;
    std::string s(trim(tok));
    double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw Error("space spec: non-numeric " + std::string(what) + " '" +
                std::string(trim(tok)) + "'");
  }
}

/// Expands one comma-separated axis element: a plain number, an arithmetic
/// range lo:hi:step, or a geometric range lo:hi:*factor (the log-stepped
/// form cache sizes and bandwidths naturally sweep in).
void expandElement(std::string_view elem, std::vector<double>& out) {
  auto parts = split(elem, ':');
  if (parts.size() == 1) {
    out.push_back(parseNumber(parts[0], "axis value"));
    return;
  }
  if (parts.size() != 3) {
    throw Error("space spec: bad range '" + std::string(trim(elem)) +
                "' (expected lo:hi:step or lo:hi:*factor)");
  }
  double lo = parseNumber(parts[0], "range bound");
  double hi = parseNumber(parts[1], "range bound");
  std::string_view stepTok = trim(parts[2]);
  if (!stepTok.empty() && stepTok.front() == '*') {
    double factor = parseNumber(stepTok.substr(1), "range factor");
    if (factor <= 1 || lo <= 0 || hi < lo) {
      throw Error("space spec: bad geometric range '" + std::string(trim(elem)) +
                  "' (need 0 < lo <= hi and factor > 1)");
    }
    for (double v = lo; v <= hi * (1 + 1e-9); v *= factor) out.push_back(v);
    return;
  }
  double step = parseNumber(stepTok, "range step");
  if (step <= 0 || hi < lo) {
    throw Error("space spec: bad range '" + std::string(trim(elem)) +
                "' (need lo <= hi and step > 0)");
  }
  for (double v = lo; v <= hi + step * 1e-9; v += step) out.push_back(v);
}

/// Parses an expression and checks every referenced name is a grid field —
/// the only names the materializer ever binds.
ExprPtr parseFieldExpr(std::string_view text, std::string_view directive) {
  ExprPtr e;
  try {
    e = parseExpr(text);
  } catch (const Error& err) {
    throw Error("space spec: bad expression in '" + std::string(directive) + "': " +
                err.what());
  }
  std::vector<std::string> params;
  e->collectParams(params);
  for (const std::string& p : params) {
    if (!findGridField(p)) {
      throw Error("space spec: '" + std::string(directive) + "' references '" + p +
                  "', which is not a grid field (see gridFieldHelp())");
    }
  }
  return e;
}

/// Splits a constraint body at its (single) comparison operator. Two-char
/// operators are matched before their one-char prefixes.
SpaceConstraint parseConstraint(std::string_view body) {
  struct OpTok {
    std::string_view tok;
    CmpOp op;
  };
  static constexpr OpTok kOps[] = {
      {"<=", CmpOp::Le}, {">=", CmpOp::Ge}, {"==", CmpOp::Eq},
      {"!=", CmpOp::Ne}, {"<", CmpOp::Lt},  {">", CmpOp::Gt},
  };
  size_t at = std::string_view::npos;
  const OpTok* found = nullptr;
  for (const OpTok& o : kOps) {
    size_t pos = body.find(o.tok);
    if (pos != std::string_view::npos && (at == std::string_view::npos || pos < at)) {
      at = pos;
      found = &o;
    }
  }
  if (found == nullptr) {
    throw Error("space spec: constraint '" + std::string(body) +
                "' has no comparison (expected EXPR <=|<|>=|>|==|!= EXPR)");
  }
  SpaceConstraint c;
  c.text = std::string(trim(body));
  c.op = found->op;
  c.lhs = parseFieldExpr(trim(body.substr(0, at)), c.text);
  c.rhs = parseFieldExpr(trim(body.substr(at + found->tok.size())), c.text);
  return c;
}

/// The expression environment of a candidate: every grid field bound to its
/// current value on the machine.
ParamEnv fieldEnv(const MachineModel& m) {
  ParamEnv env;
  for (const GridField& f : gridFields()) env.set(std::string(f.name), f.get(m));
  return env;
}

}  // namespace

bool SpaceConstraint::holds(const ParamEnv& env) const {
  double a = lhs->eval(env);
  double b = rhs->eval(env);
  switch (op) {
    case CmpOp::Lt: return a < b;
    case CmpOp::Le: return a <= b;
    case CmpOp::Gt: return a > b;
    case CmpOp::Ge: return a >= b;
    case CmpOp::Eq: return a == b;
    case CmpOp::Ne: return a != b;
  }
  return false;
}

size_t DesignSpace::gridCount() const {
  size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<size_t> DesignSpace::decode(size_t index) const {
  std::vector<size_t> pick(axes.size());
  size_t rem = index;
  for (size_t a = axes.size(); a-- > 0;) {
    pick[a] = rem % axes[a].values.size();
    rem /= axes[a].values.size();
  }
  return pick;
}

std::optional<MachineConfig> DesignSpace::materialize(const std::vector<size_t>& pick,
                                                      double* costOut) const {
  if (pick.size() != axes.size()) {
    throw Error(format("design space: pick has %zu indices for %zu axes", pick.size(),
                       axes.size()));
  }
  MachineConfig cfg;
  cfg.machine = base;
  std::string suffix;
  for (size_t a = 0; a < axes.size(); ++a) {
    const GridField* f = findGridField(axes[a].field);
    double v = axes[a].values.at(pick[a]);
    f->apply(cfg.machine, v);
    if (!suffix.empty()) suffix += ",";
    suffix += format("%s=%s", axes[a].field.c_str(), humanDouble(v, 6).c_str());
  }

  // Derives run in spec order, each seeing the axes and every earlier
  // derive. The binding lands in the name too: the name must identify the
  // machine, and a derived field changes it as much as an axis does.
  ParamEnv env = fieldEnv(cfg.machine);
  for (const DerivedField& d : derived) {
    double v = d.expr->eval(env);
    findGridField(d.field)->apply(cfg.machine, v);
    env.set(d.field, findGridField(d.field)->get(cfg.machine));
    if (!suffix.empty()) suffix += ",";
    suffix += format("%s=%s", d.field.c_str(),
                     humanDouble(env.lookup(d.field).value_or(v), 6).c_str());
  }

  if (costOut != nullptr) {
    *costOut = cost ? cost->eval(env) : std::nan("");
  }
  for (const SpaceConstraint& c : constraints) {
    if (!c.holds(env)) return std::nullopt;
  }
  cfg.name = suffix.empty() ? base.name : base.name + "{" + suffix + "}";
  cfg.machine.name = cfg.name;
  return cfg;
}

DesignSpace DesignSpace::fromGrid(const MachineGrid& grid) {
  DesignSpace space;
  space.base = grid.base;
  space.axes = grid.axes;
  return space;
}

DesignSpace parseDesignSpace(std::string_view text) {
  DesignSpace space;
  space.base = MachineModel::bgq();
  bool baseSeen = false;

  // Normalize ';' to newlines so inline and file specs share one path.
  std::string normalized(text);
  for (char& c : normalized) {
    if (c == ';') c = '\n';
  }

  for (std::string_view line : split(normalized, '\n')) {
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    // Split at the FIRST '=' only: constraint bodies legitimately contain
    // '<=' / '==' to the right of the directive's own '='.
    size_t eq = line.find('=');
    if (eq == std::string_view::npos || trim(line.substr(0, eq)).empty() ||
        trim(line.substr(eq + 1)).empty()) {
      throw Error("space spec: expected 'directive = value', got '" + std::string(line) +
                  "'");
    }
    std::string key(trim(line.substr(0, eq)));
    std::string_view value = trim(line.substr(eq + 1));

    if (key == "base") {
      if (baseSeen) throw Error("space spec: duplicate 'base' directive");
      space.base = machineByName(value);
      baseSeen = true;
      continue;
    }
    if (key == "constraint") {
      space.constraints.push_back(parseConstraint(value));
      continue;
    }
    if (key == "cost") {
      if (space.cost) throw Error("space spec: duplicate 'cost' directive");
      space.costText = std::string(value);
      space.cost = parseFieldExpr(value, "cost = " + space.costText);
      continue;
    }
    if (key.rfind("derive ", 0) == 0) {
      DerivedField d;
      d.field = std::string(trim(std::string_view(key).substr(7)));
      d.text = key + " = " + std::string(value);
      if (!findGridField(d.field)) {
        throw Error("space spec: derive targets unknown field '" + d.field + "'");
      }
      for (const auto& axis : space.axes) {
        if (axis.field == d.field) {
          throw Error("space spec: '" + d.field + "' is both an axis and a derive");
        }
      }
      for (const auto& prev : space.derived) {
        if (prev.field == d.field) {
          throw Error("space spec: duplicate derive for '" + d.field + "'");
        }
      }
      d.expr = parseFieldExpr(value, d.text);
      space.derived.push_back(std::move(d));
      continue;
    }

    if (!findGridField(key)) {
      std::string known;
      for (const auto& f : gridFields()) {
        if (!known.empty()) known += ", ";
        known += f.name;
      }
      throw Error("space spec: unknown field '" + key + "' (known: " + known +
                  "; or base/derive/constraint/cost)");
    }
    for (const auto& axis : space.axes) {
      if (axis.field == key) throw Error("space spec: duplicate axis '" + key + "'");
    }
    for (const auto& d : space.derived) {
      if (d.field == key) {
        throw Error("space spec: '" + key + "' is both an axis and a derive");
      }
    }

    GridAxis axis;
    axis.field = key;
    for (std::string_view elem : split(value, ',')) expandElement(elem, axis.values);
    if (axis.values.empty()) throw Error("space spec: axis '" + key + "' has no values");
    space.axes.push_back(std::move(axis));
  }
  return space;
}

DesignSpace loadDesignSpaceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read space spec '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return parseDesignSpace(ss.str());
}

}  // namespace skope::search
