#include "search/report.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/faultinject.h"
#include "support/text.h"

namespace skope::search {

namespace {

std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool usable(sweep::ConfigStatus s) {
  return s == sweep::ConfigStatus::Ok || s == sweep::ConfigStatus::Degraded;
}

/// Evaluated indices in report order: usable points ranked by projected
/// time (ties to the lower index), then the rest in proposal order.
std::vector<size_t> reportOrder(const SearchResult& result) {
  std::vector<size_t> order;
  order.reserve(result.evaluated.size());
  for (size_t i = 0; i < result.evaluated.size(); ++i) {
    if (usable(result.evaluated[i].status)) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.evaluated[a].projectedSeconds < result.evaluated[b].projectedSeconds;
  });
  for (size_t i = 0; i < result.evaluated.size(); ++i) {
    if (!usable(result.evaluated[i].status)) order.push_back(i);
  }
  return order;
}

std::string costCell(const SearchResult& result, const EvaluatedPoint& p) {
  if (!result.hasCost || std::isnan(p.cost)) return "";
  return format("%.4f", p.cost);
}

}  // namespace

std::string searchToCsv(const SearchResult& result, const sweep::ReportOptions& opts) {
  SKOPE_FAULT_POINT("report/write", throw Error("fault injected: report/write"));
  std::unordered_set<size_t> onFront(result.front.begin(), result.front.end());

  std::string out = "rank,config,projected_s,cost,on_front,status,error";
  if (opts.evalMs) out += ",eval_ms";
  out += "\n";
  size_t rank = 0;
  for (size_t idx : reportOrder(result)) {
    const EvaluatedPoint& p = result.evaluated[idx];
    if (usable(p.status)) {
      ++rank;
      out += format("%zu,%s,%.6e,%s,%s", rank, csvField(p.config).c_str(),
                    p.projectedSeconds, costCell(result, p).c_str(),
                    onFront.count(idx) != 0 ? "yes" : "no");
    } else {
      out += format("-,%s,,,no", csvField(p.config).c_str());
    }
    out += format(",%s,%s", std::string(sweep::configStatusLabel(p.status)).c_str(),
                  csvField(p.error).c_str());
    if (opts.evalMs) {
      out += usable(p.status) || p.evalMs > 0 ? format(",%.3f", p.evalMs) : ",";
    }
    out += "\n";
  }
  return out;
}

std::string searchToMarkdown(const SearchResult& result, size_t topN,
                             const sweep::ReportOptions& opts) {
  SKOPE_FAULT_POINT("report/write", throw Error("fault injected: report/write"));
  std::string out;
  out += format("# Design-space search: %s\n\n", result.workload.c_str());
  out += format("algorithm: %s (seed %llu) — %zu of %zu lattice points evaluated "
                "(%.2f%%), %zu rejected by constraints\n",
                result.algorithm.c_str(),
                static_cast<unsigned long long>(result.seed), result.evals(),
                result.spaceSize,
                result.spaceSize > 0
                    ? 100.0 * static_cast<double>(result.evals()) /
                          static_cast<double>(result.spaceSize)
                    : 0.0,
                result.rejected);
  out += format("status: %s\n", result.provenance.c_str());
  out += format("roofline miss ratios: %s\n\n", result.missModel.c_str());

  if (result.bestIndex) {
    const EvaluatedPoint& best = result.evaluated[*result.bestIndex];
    out += format("**fastest:** `%s` — %.4e s%s\n", best.config.c_str(),
                  best.projectedSeconds,
                  costCell(result, best).empty()
                      ? ""
                      : format(" at cost %s", costCell(result, best).c_str()).c_str());
    if (result.cheapestWithin) {
      const EvaluatedPoint& cw = result.evaluated[*result.cheapestWithin];
      out += format("**cheapest within %.1f%% of fastest:** `%s` — %.4e s at cost "
                    "%s\n",
                    result.withinPct, cw.config.c_str(), cw.projectedSeconds,
                    costCell(result, cw).c_str());
    }
    out += "\n";
  } else {
    out += "No usable candidate was evaluated (every point timed out, failed, or "
           "was rejected).\n\n";
  }

  if (!result.front.empty()) {
    out += format("## Pareto front (%zu point%s, time%s)\n\n", result.front.size(),
                  result.front.size() == 1 ? "" : "s",
                  result.hasCost ? " / cost" : " only");
    out += "| config | projected | cost |\n|---|---:|---:|\n";
    for (size_t idx : result.front) {
      const EvaluatedPoint& p = result.evaluated[idx];
      std::string cc = costCell(result, p);
      out += format("| %s | %.4e s | %s |\n", p.config.c_str(), p.projectedSeconds,
                    cc.empty() ? "-" : cc.c_str());
    }
    out += "\n";
  }

  std::unordered_set<size_t> onFront(result.front.begin(), result.front.end());
  size_t usableCount = 0;
  for (const EvaluatedPoint& p : result.evaluated) usableCount += usable(p.status) ? 1 : 0;

  out += "## Evaluated candidates\n\n";
  out += "| rank | config | status | projected | cost | front |";
  if (opts.evalMs) out += " eval ms |";
  out += "\n";
  out += "|---:|---|---|---:|---:|---|";
  if (opts.evalMs) out += "---:|";
  out += "\n";
  size_t rank = 0;
  for (size_t idx : reportOrder(result)) {
    const EvaluatedPoint& p = result.evaluated[idx];
    if (!usable(p.status)) break;
    ++rank;
    if (topN != 0 && rank > topN) break;
    std::string cc = costCell(result, p);
    out += format("| %zu | %s | %s | %.4e s | %s | %s |", rank, p.config.c_str(),
                  std::string(sweep::configStatusLabel(p.status)).c_str(),
                  p.projectedSeconds, cc.empty() ? "-" : cc.c_str(),
                  onFront.count(idx) != 0 ? "yes" : "");
    if (opts.evalMs) out += format(" %.3f |", p.evalMs);
    out += "\n";
  }
  if (topN != 0 && usableCount > topN) {
    out += format("\n(%zu further candidates omitted)\n", usableCount - topN);
  }

  if (usableCount < result.evaluated.size()) {
    out += format("\n## unranked candidates (%zu)\n\n",
                  result.evaluated.size() - usableCount);
    for (const EvaluatedPoint& p : result.evaluated) {
      if (usable(p.status)) continue;
      out += format("- `%s` — %s: %s\n", p.config.c_str(),
                    std::string(sweep::configStatusLabel(p.status)).c_str(),
                    p.error.c_str());
    }
  }
  return out;
}

}  // namespace skope::search
