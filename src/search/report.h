// Deterministic report rendering for search results.
//
// Like the sweep reports (sweep/report.h), both writers are pure functions
// of the result's deterministic surface — no wall-clock numbers, thread
// counts or timestamps — so the same seed renders byte-identical reports at
// any thread count (pinned by tests/test_search.cpp).
#pragma once

#include <string>

#include "search/search.h"
#include "sweep/report.h"

namespace skope::search {

/// CSV, one row per evaluated candidate, ranked by projected time (Pareto
/// membership flagged in its own column):
///   rank,config,projected_s,cost,on_front,status,error[,eval_ms]
/// The cost column is empty when the space has no cost model; eval_ms
/// appears only under sweep::ReportOptions::evalMs (opt-in, breaks the
/// determinism contract above).
std::string searchToCsv(const SearchResult& result,
                        const sweep::ReportOptions& opts = {});

/// Markdown: a run summary (algorithm, lattice coverage, provenance), the
/// best / cheapest-within answers, the Pareto front table, and the ranked
/// candidate table. `topN` == 0 prints every candidate.
std::string searchToMarkdown(const SearchResult& result, size_t topN = 0,
                             const sweep::ReportOptions& opts = {});

}  // namespace skope::search
