// Guided design-space search over a workload's analytic model.
//
// Answers the co-design question the exhaustive sweep cannot scale to:
// "across a lattice of millions of candidate machines, which designs sit on
// the time/cost Pareto front — and what is the cheapest design within X% of
// the fastest?" Two drivers share one evaluation engine:
//
//   * Exhaustive — every constraint-passing lattice point, in grid order.
//     The reference answer; cost grows with the lattice.
//   * SuccessiveHalving — a stratified (Latin-hypercube-style) first
//     generation, successive halving onto the best survivors with local
//     mutation, then a hill-climb refinement of the incumbent. Deterministic
//     for a fixed seed; evaluates a few percent of the lattice.
//
// Every generation is dispatched through sweep::runSweep, so the batched
// node-major back-end (and its SIMD combine), geometry memoization,
// per-config fault isolation, deadlines and resource budgets all apply to
// search exactly as they do to plain sweeps. Identical candidates proposed
// twice are never re-evaluated (search-level tuple dedup plus the sweep's
// machineKey dedup).
//
// Determinism contract: the result's deterministic surface — evaluated
// points, front, best / cheapest-within answers, provenance — is identical
// for any thread count; with the same seed, byte-identical reports.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "search/space.h"
#include "sweep/sweep.h"

namespace skope::search {

enum class SearchAlgorithm {
  Exhaustive,         ///< every constraint-passing point (--search=exhaustive)
  SuccessiveHalving,  ///< sample + halve + refine (--search=shalving)
};

struct SearchOptions {
  SearchAlgorithm algorithm = SearchAlgorithm::Exhaustive;
  /// Seed for the sampler / mutator (--seed). Exhaustive ignores it.
  uint64_t seed = 1;
  /// Hard cap on candidate evaluations (--eval-budget); 0 = uncapped.
  /// Exceeding proposals are truncated deterministically in proposal order
  /// and the result records budgetExhausted + a provenance note.
  size_t evalBudget = 0;
  /// Slack for the "cheapest config within X% of the best" answer
  /// (--within-pct).
  double withinPct = 5.0;
  /// SuccessiveHalving: first-generation size (stratified sample).
  size_t generationSize = 64;
  /// SuccessiveHalving: halving rounds after the first generation.
  size_t rounds = 4;
  /// SuccessiveHalving: survivors mutated into each next generation.
  size_t survivors = 8;
  /// Evaluation engine options — threads, backend + combine mode, cache
  /// model, deadlines, per-config timeouts, resource budgets — applied to
  /// every generation the search dispatches.
  sweep::SweepOptions sweep{};
};

/// One evaluated candidate (the search-level digest of a sweep outcome).
struct EvaluatedPoint {
  std::string config;           ///< materialized config name
  double projectedSeconds = 0;  ///< analytic total ("Modl")
  double cost = 0;              ///< cost-model value; NaN without a cost model
  sweep::ConfigStatus status = sweep::ConfigStatus::Ok;
  std::string error;  ///< diagnostic when status != Ok
  /// Wall-clock ms the candidate's sweep evaluation took (see
  /// sweep::ConfigOutcome::evalMs). NOT part of the deterministic report
  /// surface — printed only under sweep::ReportOptions::evalMs.
  double evalMs = 0;
};

struct SearchResult {
  std::string workload;
  std::string algorithm;  ///< "exhaustive" or "shalving"
  uint64_t seed = 0;
  size_t spaceSize = 0;  ///< lattice size before constraint filtering
  size_t rejected = 0;   ///< proposals rejected by constraints
  bool budgetExhausted = false;
  std::string provenance;  ///< "complete: ..." or "budget-exhausted: ..."
  std::string missModel = "constant";  ///< miss-ratio provenance (last generation)
  bool hasCost = false;   ///< the space priced candidates (front is 2-D)
  double withinPct = 5.0;

  /// Every evaluated candidate, in deterministic proposal order.
  std::vector<EvaluatedPoint> evaluated;
  /// Indices into `evaluated` on the Pareto front over (time, cost) —
  /// (time) alone without a cost model — sorted by time, then cost, then
  /// index. Only Ok/Degraded points participate.
  std::vector<size_t> front;
  /// Fastest usable point (ties break to the lowest index).
  std::optional<size_t> bestIndex;
  /// Cheapest usable point with projected time within withinPct of the
  /// best. Unset without a cost model or usable points.
  std::optional<size_t> cheapestWithin;

  // Run metadata (not part of the deterministic report surface).
  int threadsUsed = 1;
  double searchSeconds = 0;

  [[nodiscard]] size_t evals() const { return evaluated.size(); }
};

/// Runs the search. Throws only for pre-dispatch configuration errors;
/// per-candidate failures land as non-Ok evaluated points (the sweep
/// engine's fault isolation).
SearchResult runSearch(const core::WorkloadFrontend& frontend, const DesignSpace& space,
                       const SearchOptions& options = {});

}  // namespace skope::search
