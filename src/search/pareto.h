// Pareto dominance over (projected time, cost) candidate points.
//
// The search driver answers two-objective questions — "what is the
// time/cost frontier of this space?" — by filtering evaluated candidates
// down to the non-dominated set. Both objectives minimize. The front is
// deterministic: output order and tie handling depend only on the point
// values and tags, never on evaluation order or thread count.
#pragma once

#include <cstddef>
#include <vector>

namespace skope::search {

/// One candidate in objective space. `tag` is the caller's identity for the
/// point (e.g. its index in the evaluated list); it breaks ordering ties.
struct ParetoPoint {
  double time = 0;
  double cost = 0;
  size_t tag = 0;
};

/// True when `a` dominates `b`: no worse in both objectives, strictly
/// better in at least one. Points equal in both objectives dominate neither
/// way (both stay on the front).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Positions (indices into `pts`) of the non-dominated points, sorted by
/// (time, cost, tag) ascending. O(n log n).
[[nodiscard]] std::vector<size_t> paretoFront(const std::vector<ParetoPoint>& pts);

}  // namespace skope::search
