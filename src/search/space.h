// Design spaces for guided co-design search.
//
// A DesignSpace generalizes the sweep grid (machine/grid.h) from "cross
// product of value lists" to a searchable space: axes may be log-stepped,
// candidate points can be rejected by cross-axis constraints, derived fields
// follow the axes through expressions, and a pluggable cost expression
// prices every candidate — the $-per-config side of a time/cost Pareto
// front. The search driver (search/search.h) samples and refines over the
// axis index lattice; exhaustive enumeration degenerates to the classic grid
// expansion.
//
// Spec format — a superset of the grid spec, one directive per line in a
// file or ';'-separated inline:
//
//   base = xeon
//   membw = 15, 30, 60               # axis: explicit list (grid syntax)
//   peakflops = 2:16:2               # axis: arithmetic range lo:hi:step
//   l1kb = 16:256:*2                 # axis: geometric range lo:hi:*factor
//   derive llcmb = max(8, l1kb / 4)  # derived field, follows the axes
//   constraint = membw <= peakflops * 16  # reject violating points
//   cost = cores * 3 + membw / 4 + l1kb / 16  # $ model (Pareto front)
//
// Expressions use the skeleton expression language (src/expr). When a
// derive / constraint / cost expression is evaluated, every grid field name
// (machine/grid.h's registry) is bound to its value on the candidate
// machine — axes applied first, then earlier derives in spec order — so
// cross-axis and non-axis fields mix freely. Referencing a name that is not
// a grid field is a parse-time error.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "expr/expr.h"
#include "machine/grid.h"

namespace skope::search {

/// Comparison operator of a constraint directive.
enum class CmpOp { Lt, Le, Gt, Ge, Eq, Ne };

/// One `constraint = EXPR CMP EXPR` directive.
struct SpaceConstraint {
  ExprPtr lhs;
  CmpOp op = CmpOp::Le;
  ExprPtr rhs;
  std::string text;  ///< original spec text, for reports and diagnostics

  /// True when the constraint holds under `env` (all fields bound).
  [[nodiscard]] bool holds(const ParamEnv& env) const;
};

/// One `derive FIELD = EXPR` directive.
struct DerivedField {
  std::string field;  ///< grid field keyword the result is written to
  ExprPtr expr;
  std::string text;  ///< original spec text
};

/// A searchable machine design space: axes over the grid-field registry,
/// plus derives, constraints and an optional cost model.
struct DesignSpace {
  MachineModel base;
  std::vector<GridAxis> axes;
  std::vector<DerivedField> derived;
  std::vector<SpaceConstraint> constraints;
  ExprPtr cost;          ///< nullptr when the spec has no cost directive
  std::string costText;  ///< original cost spec text ("" without one)

  /// Lattice size: the product of axis value counts, before constraint
  /// filtering (1 for no axes).
  [[nodiscard]] size_t gridCount() const;

  /// Decodes a flat lattice index into per-axis value indices, row-major in
  /// axis order (the last axis varies fastest — grid expansion order).
  [[nodiscard]] std::vector<size_t> decode(size_t index) const;

  /// Materializes the candidate at per-axis value indices `pick`: applies
  /// the axes and derives, names the config with both bindings, evaluates
  /// the constraints. Returns nullopt when a constraint rejects the point.
  /// `costOut` (optional) receives the cost expression's value, or NaN when
  /// the space has no cost model.
  [[nodiscard]] std::optional<MachineConfig> materialize(
      const std::vector<size_t>& pick, double* costOut = nullptr) const;

  /// Wraps a plain sweep grid as a constraint-free, cost-free space.
  static DesignSpace fromGrid(const MachineGrid& grid);
};

/// Parses a design-space spec (see the file header for the format). Every
/// plain-grid spec is also a valid design-space spec. Throws Error on
/// unknown fields, malformed directives, or expressions referencing
/// non-field names.
DesignSpace parseDesignSpace(std::string_view text);

/// Reads and parses a design-space spec file. Throws Error if unreadable.
DesignSpace loadDesignSpaceFile(const std::string& path);

}  // namespace skope::search
