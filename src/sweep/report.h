// Deterministic report rendering for sweep results.
//
// Both writers print the outcomes ranked by projected time (fastest design
// first) and are pure functions of the SweepResult's outcome data — no
// timestamps, thread counts or wall-clock numbers — so a 1-thread and an
// N-thread sweep over the same grid render byte-identical reports (the
// determinism contract tests/test_sweep.cpp pins down).
#pragma once

#include <string>

#include "sweep/sweep.h"

namespace skope::sweep {

/// Opt-in report extensions. Both default OFF because they break the
/// determinism contract above: eval_ms is wall-clock, and the flight trace
/// depends on telemetry being enabled and on event timing. The CLIs turn
/// them on only for instrumented runs.
struct ReportOptions {
  /// Append a per-config eval_ms column (where the framework spent its
  /// wall-clock, per row).
  bool evalMs = false;
  /// Under each failed/timed-out row, print the flight-recorder tail
  /// captured when the failure was classified (markdown only; see
  /// docs/OBSERVABILITY.md, "The flight recorder").
  bool flightTrace = false;
};

/// CSV, one row per config:
///   rank,config,projected_s,speedup_vs_base,bound,coverage,leanness,
///   spots,top_spot[,measured_s,quality][,hotpath_nodes,hotspot_instances],
///   status,error,miss_model[,eval_ms]
/// The optional column groups appear only when the sweep ran with
/// groundTruth / hotPaths (and eval_ms only with ReportOptions::evalMs).
std::string toCsv(const SweepResult& result, const ReportOptions& opts = {});

/// Markdown: a header block (workload, base machine, grid size) and a ranked
/// table. `topN` == 0 prints every config.
std::string toMarkdown(const SweepResult& result, size_t topN = 0,
                       const ReportOptions& opts = {});

}  // namespace skope::sweep
