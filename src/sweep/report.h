// Deterministic report rendering for sweep results.
//
// Both writers print the outcomes ranked by projected time (fastest design
// first) and are pure functions of the SweepResult's outcome data — no
// timestamps, thread counts or wall-clock numbers — so a 1-thread and an
// N-thread sweep over the same grid render byte-identical reports (the
// determinism contract tests/test_sweep.cpp pins down).
#pragma once

#include <string>

#include "sweep/sweep.h"

namespace skope::sweep {

/// CSV, one row per config:
///   rank,config,projected_s,speedup_vs_base,bound,coverage,leanness,
///   spots,top_spot[,measured_s,quality][,hotpath_nodes,hotspot_instances]
/// The optional column groups appear only when the sweep ran with
/// groundTruth / hotPaths respectively.
std::string toCsv(const SweepResult& result);

/// Markdown: a header block (workload, base machine, grid size) and a ranked
/// table. `topN` == 0 prints every config.
std::string toMarkdown(const SweepResult& result, size_t topN = 0);

}  // namespace skope::sweep
