#include "sweep/report.h"

#include "support/diagnostics.h"
#include "support/faultinject.h"
#include "support/text.h"

namespace skope::sweep {

namespace {

/// CSV-escapes a field (config names contain commas from multi-axis grids;
/// error strings can contain anything).
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool rankable(const ConfigOutcome& c) {
  return c.status == ConfigStatus::Ok || c.status == ConfigStatus::Degraded;
}

}  // namespace

std::string toCsv(const SweepResult& result, const ReportOptions& opts) {
  SKOPE_FAULT_POINT("report/write", throw Error("fault injected: report/write"));
  bool gt = result.groundTruth;
  bool hp = result.hotPaths;

  std::string out = "rank,config,projected_s,speedup_vs_base,bound,coverage,leanness,"
                    "spots,top_spot";
  if (gt) out += ",measured_s,quality";
  if (hp) out += ",hotpath_nodes,hotspot_instances";
  out += ",status,error,miss_model";
  if (opts.evalMs) out += ",eval_ms";
  out += "\n";

  size_t rank = 0;
  for (size_t idx : result.ranked()) {
    const ConfigOutcome& c = result.outcomes[idx];
    if (rankable(c)) {
      ++rank;
      out += format("%zu,%s,%.6e,%.3f,%s,%.4f,%.4f,%zu,%s", rank,
                    csvField(c.config).c_str(), c.projectedSeconds, c.speedupVsBase,
                    c.topBound.c_str(), c.coverage, c.leanness, c.spotCount,
                    csvField(c.topSpots.empty() ? "" : c.topSpots.front()).c_str());
      if (gt) {
        out += format(",%.6e,%.4f", c.measuredSeconds.value_or(0.0),
                      c.quality.value_or(0.0));
      }
      if (hp) out += format(",%zu,%zu", c.hotPathNodes, c.hotSpotInstances);
    } else {
      // Timeout / Error rows carry no meaningful metrics: unranked ("-"),
      // metric fields left empty rather than printed as misleading zeros.
      out += format("-,%s,,,,,,,", csvField(c.config).c_str());
      if (gt) out += ",,";
      if (hp) out += ",,";
    }
    out += format(",%s,%s,%s", std::string(configStatusLabel(c.status)).c_str(),
                  csvField(c.error).c_str(), csvField(result.missModel).c_str());
    if (opts.evalMs) {
      // Rows that never ran (deadline expired before dispatch) print empty
      // rather than a misleading 0.000.
      out += rankable(c) || c.evalMs > 0 ? format(",%.3f", c.evalMs) : ",";
    }
    out += "\n";
  }
  return out;
}

std::string toMarkdown(const SweepResult& result, size_t topN,
                       const ReportOptions& opts) {
  SKOPE_FAULT_POINT("report/write", throw Error("fault injected: report/write"));
  bool gt = result.groundTruth;
  std::string out;
  out += format("# Co-design sweep: %s\n\n", result.workload.c_str());
  out += format("base machine: %s (projected %.4e s) — %zu configs, ranked by "
                "projected time\n",
                result.baseMachine.c_str(), result.baseProjectedSeconds,
                result.outcomes.size());
  out += format("roofline miss ratios: %s\n\n", result.missModel.c_str());

  out += "| rank | config | status | projected | speedup | bound | top hot spot | coverage |";
  if (gt) out += " measured | quality |";
  if (opts.evalMs) out += " eval ms |";
  out += "\n";
  out += "|---:|---|---|---:|---:|---|---|---:|";
  if (gt) out += "---:|---:|";
  if (opts.evalMs) out += "---:|";
  out += "\n";

  // ranked() puts every rankable config first, failures after — the table
  // shows the ranking, the failures get their own section below it.
  size_t rankedCount = 0;
  for (const ConfigOutcome& c : result.outcomes) rankedCount += rankable(c) ? 1 : 0;

  size_t rank = 0;
  for (size_t idx : result.ranked()) {
    const ConfigOutcome& c = result.outcomes[idx];
    if (!rankable(c)) break;
    ++rank;
    if (topN != 0 && rank > topN) break;
    out += format("| %zu | %s | %s | %.4e s | %.2fx | %s | %s | %.1f%% |", rank,
                  c.config.c_str(), std::string(configStatusLabel(c.status)).c_str(),
                  c.projectedSeconds, c.speedupVsBase, c.topBound.c_str(),
                  c.topSpots.empty() ? "-" : c.topSpots.front().c_str(),
                  c.coverage * 100);
    if (gt) {
      out += format(" %.4e s | %.1f%% |", c.measuredSeconds.value_or(0.0),
                    c.quality.value_or(0.0) * 100);
    }
    if (opts.evalMs) out += format(" %.3f |", c.evalMs);
    out += "\n";
  }
  if (topN != 0 && rankedCount > topN) {
    out += format("\n(%zu further configs omitted)\n", rankedCount - topN);
  }

  if (rankedCount < result.outcomes.size()) {
    out += format("\n## unranked configs (%zu)\n\n",
                  result.outcomes.size() - rankedCount);
    out += "Excluded from the ranking: these configs timed out or failed and "
           "carry no meaningful projection (see docs/ROBUSTNESS.md).\n\n";
    for (const ConfigOutcome& c : result.outcomes) {
      if (rankable(c)) continue;
      out += format("- `%s` — %s: %s\n", c.config.c_str(),
                    std::string(configStatusLabel(c.status)).c_str(),
                    c.error.c_str());
      if (opts.flightTrace && !c.lastEvents.empty()) {
        out += "  - last events:\n";
        for (const std::string& ev : c.lastEvents) {
          out += format("    - `%s`\n", ev.c_str());
        }
      }
    }
  }
  return out;
}

}  // namespace skope::sweep
