#include "sweep/report.h"

#include "support/text.h"

namespace skope::sweep {

namespace {

/// CSV-escapes a field (config names contain commas from multi-axis grids).
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string toCsv(const SweepResult& result) {
  bool gt = result.groundTruth;
  bool hp = result.hotPaths;

  std::string out = "rank,config,projected_s,speedup_vs_base,bound,coverage,leanness,"
                    "spots,top_spot";
  if (gt) out += ",measured_s,quality";
  if (hp) out += ",hotpath_nodes,hotspot_instances";
  out += ",miss_model\n";

  size_t rank = 0;
  for (size_t idx : result.ranked()) {
    const ConfigOutcome& c = result.outcomes[idx];
    ++rank;
    out += format("%zu,%s,%.6e,%.3f,%s,%.4f,%.4f,%zu,%s", rank,
                  csvField(c.config).c_str(), c.projectedSeconds, c.speedupVsBase,
                  c.topBound.c_str(), c.coverage, c.leanness, c.spotCount,
                  csvField(c.topSpots.empty() ? "" : c.topSpots.front()).c_str());
    if (gt) {
      out += format(",%.6e,%.4f", c.measuredSeconds.value_or(0.0),
                    c.quality.value_or(0.0));
    }
    if (hp) out += format(",%zu,%zu", c.hotPathNodes, c.hotSpotInstances);
    out += format(",%s\n", csvField(result.missModel).c_str());
  }
  return out;
}

std::string toMarkdown(const SweepResult& result, size_t topN) {
  bool gt = result.groundTruth;
  std::string out;
  out += format("# Co-design sweep: %s\n\n", result.workload.c_str());
  out += format("base machine: %s (projected %.4e s) — %zu configs, ranked by "
                "projected time\n",
                result.baseMachine.c_str(), result.baseProjectedSeconds,
                result.outcomes.size());
  out += format("roofline miss ratios: %s\n\n", result.missModel.c_str());

  out += "| rank | config | projected | speedup | bound | top hot spot | coverage |";
  if (gt) out += " measured | quality |";
  out += "\n";
  out += "|---:|---|---:|---:|---|---|---:|";
  if (gt) out += "---:|---:|";
  out += "\n";

  size_t rank = 0;
  for (size_t idx : result.ranked()) {
    const ConfigOutcome& c = result.outcomes[idx];
    ++rank;
    if (topN != 0 && rank > topN) break;
    out += format("| %zu | %s | %.4e s | %.2fx | %s | %s | %.1f%% |", rank,
                  c.config.c_str(), c.projectedSeconds, c.speedupVsBase,
                  c.topBound.c_str(), c.topSpots.empty() ? "-" : c.topSpots.front().c_str(),
                  c.coverage * 100);
    if (gt) {
      out += format(" %.4e s | %.1f%% |", c.measuredSeconds.value_or(0.0),
                    c.quality.value_or(0.0) * 100);
    }
    out += "\n";
  }
  if (topN != 0 && result.outcomes.size() > topN) {
    out += format("\n(%zu further configs omitted)\n", result.outcomes.size() - topN);
  }
  return out;
}

}  // namespace skope::sweep
