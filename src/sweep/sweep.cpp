#include "sweep/sweep.h"

#include <algorithm>
#include <chrono>

#include "support/diagnostics.h"
#include "support/text.h"
#include "sweep/pool.h"
#include "telemetry/telemetry.h"

namespace skope::sweep {

namespace {

ConfigOutcome digest(const core::MachineEvaluation& ev, size_t index,
                     const MachineConfig& cfg, double baseSeconds,
                     const SweepOptions& options) {
  ConfigOutcome out;
  out.index = index;
  out.config = cfg.name;
  out.projectedSeconds = ev.model.totalSeconds;
  out.speedupVsBase =
      ev.model.totalSeconds > 0 ? baseSeconds / ev.model.totalSeconds : 0;
  out.coverage = ev.selection.coverage;
  out.leanness = ev.selection.leanness;
  out.spotCount = ev.selection.spots.size();
  for (size_t i = 0; i < options.topSpots && i < ev.ranking.size(); ++i) {
    out.topSpots.push_back(format("%s (%.1f%%)", ev.ranking[i].label.c_str(),
                                  ev.ranking[i].fraction * 100));
  }
  if (!ev.ranking.empty()) {
    const auto& top = ev.model.blocks.at(ev.ranking.front().origin);
    out.topBound = std::string(boundLabel(top.tmSeconds, top.tcSeconds));
  }
  out.hotPathNodes = ev.hotPathNodes;
  out.hotSpotInstances = ev.hotSpotInstances;
  if (ev.prof) out.measuredSeconds = ev.prof->totalSeconds;
  if (ev.quality) out.quality = ev.quality->quality;
  return out;
}

}  // namespace

std::string_view boundLabel(double tmSeconds, double tcSeconds) {
  return tmSeconds >= tcSeconds ? "memory" : "compute";
}

std::vector<size_t> SweepResult::ranked() const {
  std::vector<size_t> order(outcomes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return outcomes[a].projectedSeconds < outcomes[b].projectedSeconds;
  });
  return order;
}

SweepResult runSweep(const core::WorkloadFrontend& frontend,
                     const std::vector<MachineConfig>& configs,
                     const SweepOptions& options) {
  SweepResult result;
  result.workload = frontend.name();
  result.groundTruth = options.groundTruth;
  result.hotPaths = options.hotPaths;

  core::BackendOptions backendOpts;
  backendOpts.rparams = options.rparams;
  backendOpts.criteria = options.criteria;
  backendOpts.wantHotPath = options.hotPaths;
  backendOpts.groundTruth = options.groundTruth;
  backendOpts.maxOps = options.maxOps;

  // Analytic layer conditions: one symbolic model per workload serves every
  // config with no trace at all. Always informs the roofline; when the
  // workload is too data-dependent to analyze, degrade to trace replay (or
  // to the constant ratios when no trace exists) — counted, so sweeps can
  // tell which model actually ran.
  bool wantReuseDist = options.cacheModel == CacheModelMode::ReuseDist &&
                       (options.groundTruth || options.traceInformedRoofline);
  bool rooflineFromPrediction = options.traceInformedRoofline;
  std::optional<cachemodel::LayerConditionModel> layerModel;
  if (options.cacheModel == CacheModelMode::LayerCond) {
    SKOPE_SPAN("sweep/prepare-layer-cond");
    layerModel.emplace(frontend.program(), frontend.bet(), frontend.params());
    if (telemetry::enabled()) {
      telemetry::Registry::global().counter("cachemodel/dispatch").add(1);
    }
    if (layerModel->usable()) {
      backendOpts.layerModel = &*layerModel;
      backendOpts.traceInformedRoofline = true;
      result.missModel = "layer-cond";
    } else {
      layerModel.reset();
      if (telemetry::enabled()) {
        telemetry::Registry::global().counter("cachemodel/fallback-replay").add(1);
      }
      if (frontend.memoryTrace().usable()) {
        wantReuseDist = true;
        rooflineFromPrediction = true;
        result.missModel = "layer-cond:replay-fallback";
      } else {
        result.missModel = "layer-cond:constant-fallback";
      }
    }
  } else if (wantReuseDist && options.traceInformedRoofline) {
    result.missModel = "reuse-dist";
  }

  // Trace-once / replay-many: one CacheModel over the front-end's recorded
  // trace serves every config. Histograms for every line size on the grid
  // are computed here, before the fan-out, so workers never contend on the
  // analyzer's lazy cache.
  std::optional<trace::CacheModel> cacheModel;
  if (wantReuseDist) {
    SKOPE_SPAN("sweep/prepare-cache-model");
    const trace::MemoryTrace& mt = frontend.memoryTrace();
    if (!mt.usable()) {
      throw Error(
          "cache-model=reuse-dist needs a usable memory trace, but the front-end's "
          "trace is " +
          std::string(mt.truncated ? "truncated (raise the trace cap or use "
                                     "--cache-model=simulate)"
                                   : "empty (front-end built with recordTrace off)"));
    }
    cacheModel.emplace(mt, options.threads);
    cacheModel->prepare(configs);
    backendOpts.cacheModel = &*cacheModel;
    backendOpts.traceInformedRoofline = rooflineFromPrediction;
  }

  // The speedup baseline: the front-end's projection is cheap enough that
  // one extra evaluation beats requiring the base point to be on the grid.
  MachineModel base;
  if (options.baseline) {
    base = *options.baseline;
  } else if (!configs.empty()) {
    base = configs.front().machine;
  } else {
    base = MachineModel::bgq();
  }
  result.baseMachine = base.name;
  {
    SKOPE_SPAN("sweep/base-eval");
    core::BackendOptions cheap;
    cheap.rparams = options.rparams;
    cheap.criteria = options.criteria;
    result.baseProjectedSeconds =
        core::evaluateMachine(frontend, base, cheap).model.totalSeconds;
  }

  WorkStealingPool pool(options.threads);
  result.threadsUsed = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(pool.threadCount()), std::max<size_t>(configs.size(), 1)));

  result.outcomes.resize(configs.size());
  auto t0 = std::chrono::steady_clock::now();
  if (options.backend == SweepBackend::Batched && configs.size() > 1) {
    // Node-major: one shared BET factorization + geometry-memoized cache
    // predictions up front, then only the cheap per-config finish stages go
    // through the pool.
    std::vector<MachineModel> machines;
    machines.reserve(configs.size());
    for (const auto& c : configs) machines.push_back(c.machine);
    core::GridBackend backend(frontend, std::move(machines), backendOpts);
    SKOPE_SPAN("sweep/fan-out");
    pool.run(
        configs.size(),
        [&](size_t i) {
          telemetry::Span span("config/", configs[i].name);
          auto ev = backend.evaluate(i);
          result.outcomes[i] =
              digest(ev, i, configs[i], result.baseProjectedSeconds, options);
        },
        options.progress);
  } else {
    SKOPE_SPAN("sweep/fan-out");
    pool.run(
        configs.size(),
        [&](size_t i) {
          // One span per config on whichever worker track ran it.
          telemetry::Span span("config/", configs[i].name);
          auto ev = core::evaluateMachine(frontend, configs[i].machine, backendOpts);
          result.outcomes[i] =
              digest(ev, i, configs[i], result.baseProjectedSeconds, options);
        },
        options.progress);
  }
  result.sweepSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

SweepResult runSweep(const core::WorkloadFrontend& frontend, const MachineGrid& grid,
                     const SweepOptions& options) {
  SweepOptions opts = options;
  if (!opts.baseline) opts.baseline = grid.base;
  return runSweep(frontend, grid.expand(), opts);
}

}  // namespace skope::sweep
