#include "sweep/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <unordered_map>

#include "artifact/cache.h"
#include "support/diagnostics.h"
#include "support/faultinject.h"
#include "support/text.h"
#include "sweep/pool.h"
#include "telemetry/telemetry.h"

namespace skope::sweep {

namespace {

ConfigOutcome digest(const core::MachineEvaluation& ev, size_t index,
                     const MachineConfig& cfg, double baseSeconds,
                     const SweepOptions& options) {
  ConfigOutcome out;
  out.index = index;
  out.config = cfg.name;
  out.projectedSeconds = ev.model.totalSeconds;
  out.speedupVsBase =
      ev.model.totalSeconds > 0 ? baseSeconds / ev.model.totalSeconds : 0;
  out.coverage = ev.selection.coverage;
  out.leanness = ev.selection.leanness;
  out.spotCount = ev.selection.spots.size();
  for (size_t i = 0; i < options.topSpots && i < ev.ranking.size(); ++i) {
    out.topSpots.push_back(format("%s (%.1f%%)", ev.ranking[i].label.c_str(),
                                  ev.ranking[i].fraction * 100));
  }
  if (!ev.ranking.empty()) {
    const auto& top = ev.model.blocks.at(ev.ranking.front().origin);
    out.topBound = std::string(boundLabel(top.tmSeconds, top.tcSeconds));
  }
  out.hotPathNodes = ev.hotPathNodes;
  out.hotSpotInstances = ev.hotSpotInstances;
  if (ev.prof) out.measuredSeconds = ev.prof->totalSeconds;
  if (ev.quality) out.quality = ev.quality->quality;
  return out;
}

}  // namespace

std::string_view boundLabel(double tmSeconds, double tcSeconds) {
  return tmSeconds >= tcSeconds ? "memory" : "compute";
}

std::string_view configStatusLabel(ConfigStatus status) {
  switch (status) {
    case ConfigStatus::Ok: return "ok";
    case ConfigStatus::Degraded: return "degraded";
    case ConfigStatus::Timeout: return "timeout";
    case ConfigStatus::Error: return "error";
  }
  return "ok";
}

namespace {

/// Did this config produce a meaningful projection? Timeout/Error rows
/// carry none, so ranking them by projectedSeconds would be noise.
bool rankable(const ConfigOutcome& out) {
  return out.status == ConfigStatus::Ok || out.status == ConfigStatus::Degraded;
}

}  // namespace

std::vector<size_t> SweepResult::ranked() const {
  std::vector<size_t> order;
  order.reserve(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (rankable(outcomes[i])) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return outcomes[a].projectedSeconds < outcomes[b].projectedSeconds;
  });
  // Failed configs trail the ranking in grid order — present (a silent drop
  // would misreport coverage) but never ranked.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (!rankable(outcomes[i])) order.push_back(i);
  }
  return order;
}

size_t SweepResult::countWithStatus(ConfigStatus status) const {
  size_t n = 0;
  for (const ConfigOutcome& o : outcomes) n += o.status == status ? 1 : 0;
  return n;
}

SweepResult runSweep(const core::WorkloadFrontend& frontend,
                     const std::vector<MachineConfig>& configs,
                     const SweepOptions& options) {
  SweepResult result;
  result.workload = frontend.name();
  result.groundTruth = options.groundTruth;
  result.hotPaths = options.hotPaths;

  core::BackendOptions backendOpts;
  backendOpts.rparams = options.rparams;
  backendOpts.criteria = options.criteria;
  backendOpts.wantHotPath = options.hotPaths;
  backendOpts.groundTruth = options.groundTruth;
  backendOpts.maxOps = options.maxOps;
  backendOpts.combine = options.combine;

  // Analytic layer conditions: one symbolic model per workload serves every
  // config with no trace at all. Always informs the roofline; when the
  // workload is too data-dependent to analyze, degrade to trace replay (or
  // to the constant ratios when no trace exists) — counted, so sweeps can
  // tell which model actually ran.
  bool wantReuseDist = options.cacheModel == CacheModelMode::ReuseDist &&
                       (options.groundTruth || options.traceInformedRoofline);
  bool rooflineFromPrediction = options.traceInformedRoofline;
  // Non-empty once a resource budget or an injected dispatch fault forced a
  // model downgrade; every config then reports status Degraded with this
  // note instead of the sweep aborting.
  std::string degradeNote;
  // A CancelledError from a shared prepare stage (the deadline expired while
  // building the cache model). Deferred: the graceful-timeout path below
  // turns it into per-config Timeout rows once the outcome slots exist.
  std::exception_ptr sweepExpired;
  std::optional<cachemodel::LayerConditionModel> layerModel;
  if (options.cacheModel == CacheModelMode::LayerCond) {
    SKOPE_SPAN("sweep/prepare-layer-cond");
    bool usable = false;
    try {
      SKOPE_FAULT_POINT("cachemodel/dispatch",
                        throw Error("fault injected: cachemodel/dispatch"));
      layerModel.emplace(frontend.program(), frontend.bet(), frontend.params());
      usable = layerModel->usable();
    } catch (const std::exception& e) {
      // Dispatch failure (injected or real): fall through the same ladder
      // the usable() == false path takes, but carry the note so the configs
      // report Degraded rather than a silent provenance change.
      layerModel.reset();
      degradeNote = std::string("cache-model dispatch failed: ") + e.what();
    }
    if (telemetry::enabled()) {
      telemetry::Registry::current().counter("cachemodel/dispatch").add(1);
    }
    if (usable) {
      backendOpts.layerModel = &*layerModel;
      backendOpts.traceInformedRoofline = true;
      result.missModel = "layer-cond";
    } else {
      layerModel.reset();
      if (telemetry::enabled()) {
        telemetry::Registry::current().counter("cachemodel/fallback-replay").add(1);
      }
      if (frontend.memoryTrace().usable()) {
        wantReuseDist = true;
        rooflineFromPrediction = true;
        result.missModel = "layer-cond:replay-fallback";
      } else {
        result.missModel = "layer-cond:constant-fallback";
      }
    }
  } else if (wantReuseDist && options.traceInformedRoofline) {
    result.missModel = "reuse-dist";
  }

  // Trace-once / replay-many: one CacheModel over the front-end's recorded
  // trace serves every config. Histograms for every line size on the grid
  // are computed here, before the fan-out, so workers never contend on the
  // analyzer's lazy cache.
  // Histogram persistence: when an artifact cache is configured, the cache
  // model's analyzer loads/stores per-line-size histograms under the
  // front-end's content address. The hook must outlive the model.
  std::unique_ptr<trace::ReuseCacheHook> reuseHook;
  std::optional<trace::CacheModel> cacheModel;
  if (wantReuseDist) {
    SKOPE_SPAN("sweep/prepare-cache-model");
    const trace::MemoryTrace& mt = frontend.memoryTrace();
    const bool hasBudgets = options.traceBudgetBytes > 0 || options.replayBudgetOps > 0;
    // Budget gate: replay cost scales with the recorded trace, so a sweep
    // under a resource budget downgrades the model instead of paying it
    // (or dying on an unusable trace).
    std::string overBudget;
    if (!mt.usable()) {
      if (!hasBudgets) {
        // The historical contract: with no budgets set, an unusable trace
        // is a hard configuration error.
        throw Error(
            "cache-model=reuse-dist needs a usable memory trace, but the front-end's "
            "trace is " +
            std::string(mt.truncated ? "truncated (raise the trace cap or use "
                                       "--cache-model=simulate)"
                                     : "empty (front-end built with recordTrace off)"));
      }
      overBudget = mt.truncated ? "trace truncated at its reference cap"
                                : "trace recorded no references";
    } else if (options.traceBudgetBytes > 0 &&
               mt.sizeBytes() > options.traceBudgetBytes) {
      overBudget = format("trace is %zu bytes, over the %llu-byte budget",
                          mt.sizeBytes(),
                          static_cast<unsigned long long>(options.traceBudgetBytes));
    } else if (options.replayBudgetOps > 0 && mt.recordedRefs > options.replayBudgetOps) {
      overBudget = format("trace has %llu refs to replay, over the %llu-op budget",
                          static_cast<unsigned long long>(mt.recordedRefs),
                          static_cast<unsigned long long>(options.replayBudgetOps));
    }
    if (overBudget.empty()) {
      try {
        SKOPE_FAULT_POINT("cachemodel/dispatch",
                          throw Error("fault injected: cachemodel/dispatch"));
        if (options.artifacts != nullptr) {
          reuseHook = options.artifacts->makeReuseHook(frontend.artifactKey());
        }
        cacheModel.emplace(mt, options.threads, options.cancel, reuseHook.get());
        cacheModel->prepare(configs);
        backendOpts.cacheModel = &*cacheModel;
        backendOpts.traceInformedRoofline = rooflineFromPrediction;
      } catch (const CancelledError&) {
        sweepExpired = std::current_exception();
      } catch (const std::exception& e) {
        cacheModel.reset();
        overBudget = std::string("cache-model dispatch failed: ") + e.what();
      }
    }
    if (!overBudget.empty()) {
      // Degradation ladder: reuse-dist -> layer-cond -> constant. The
      // provenance string and the per-config Degraded status record what
      // actually ran — nothing aborts.
      degradeNote = "reuse-dist degraded: " + overBudget;
      if (telemetry::enabled()) {
        telemetry::Registry::current().counter("cachemodel/budget-degrade").add(1);
      }
      bool layerUsable = false;
      try {
        layerModel.emplace(frontend.program(), frontend.bet(), frontend.params());
        layerUsable = layerModel->usable();
      } catch (const std::exception&) {
        layerModel.reset();
      }
      if (layerUsable) {
        backendOpts.layerModel = &*layerModel;
        backendOpts.traceInformedRoofline = true;
        result.missModel = "reuse-dist:layer-cond-fallback";
      } else {
        layerModel.reset();
        result.missModel = "reuse-dist:constant-fallback";
      }
      // The replay ground-truth side needs the cache model we just refused
      // to build; the simulator path stands in for it.
      backendOpts.cacheModel = nullptr;
    }
  }

  // The speedup baseline: the front-end's projection is cheap enough that
  // one extra evaluation beats requiring the base point to be on the grid.
  MachineModel base;
  if (options.baseline) {
    base = *options.baseline;
  } else if (!configs.empty()) {
    base = configs.front().machine;
  } else {
    base = MachineModel::bgq();
  }
  result.baseMachine = base.name;

  // Prefill every outcome slot: a config that never runs (deadline expired
  // first) still appears in the result, identified and classified.
  result.outcomes.resize(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    result.outcomes[i].index = i;
    result.outcomes[i].config = configs[i].name;
  }

  // Identical machines (by machineKey, which ignores the config name)
  // produce bit-identical evaluations, so only the first occurrence of each
  // distinct machine is dispatched; its duplicates copy the outcome
  // afterwards, re-labeled with their own grid identity. Counted as
  // "sweep/dedup". Grid expansion can emit duplicates freely (a derived or
  // clamped axis collapsing points), and search generations routinely
  // re-propose configs an earlier generation already evaluated.
  std::vector<size_t> primaryOf(configs.size());
  std::vector<size_t> uniqueIdx;
  uniqueIdx.reserve(configs.size());
  {
    std::unordered_map<std::string, size_t> firstByKey;
    firstByKey.reserve(configs.size() * 2);
    for (size_t i = 0; i < configs.size(); ++i) {
      auto [it, inserted] = firstByKey.emplace(machineKey(configs[i].machine), i);
      primaryOf[i] = it->second;
      if (inserted) uniqueIdx.push_back(i);
    }
  }
  if (telemetry::enabled() && uniqueIdx.size() < configs.size()) {
    telemetry::Registry::current()
        .counter("sweep/dedup")
        .add(configs.size() - uniqueIdx.size());
  }

  WorkStealingPool pool(options.threads);
  result.threadsUsed = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(pool.threadCount()), std::max<size_t>(uniqueIdx.size(), 1)));

  // `evaluated[i]` marks outcomes the fan-out actually wrote — when the
  // sweep deadline expires inside a shared stage, the rest become Timeout
  // rows instead of half-written Ok ones.
  std::vector<char> evaluated(configs.size(), 0);

  // Per-task exception barrier: classify and keep going. Slot i belongs to
  // task i alone, so no lock is needed.
  auto classify = [&](size_t i, std::exception_ptr ep) {
    ConfigOutcome& out = result.outcomes[i];
    try {
      std::rethrow_exception(ep);
    } catch (const CancelledError& e) {
      out.status = ConfigStatus::Timeout;
      out.error = e.what();
    } catch (const std::exception& e) {
      out.status = ConfigStatus::Error;
      out.error = e.what();
    } catch (...) {
      out.status = ConfigStatus::Error;
      out.error = "unknown error";
    }
    evaluated[i] = 1;
    if (telemetry::enabled()) {
      // Black-box moment: append the failure itself to the flight recorder,
      // then capture its tail so the report's status/error row carries the
      // last events leading up to the deadline / fault / exception.
      auto& reg = telemetry::Registry::current();
      reg.flight().record(telemetry::FlightRecorder::Kind::Counter,
                          out.status == ConfigStatus::Timeout ? "sweep/timeout"
                                                              : "sweep/failed",
                          1, out.config + ": " + out.error, reg.nowNs());
      out.lastEvents = reg.flight().lastEvents(8);
    }
  };

  // One config, one worker task. The sweep token gates entry (a sweep past
  // its deadline fails every remaining config fast); the per-config child
  // token bounds this config's own wall clock.
  auto finishOne = [&](size_t i, const core::MachineEvaluation& ev) {
    result.outcomes[i] = digest(ev, i, configs[i], result.baseProjectedSeconds, options);
    if (!degradeNote.empty()) {
      result.outcomes[i].status = ConfigStatus::Degraded;
      result.outcomes[i].error = degradeNote;
    }
    evaluated[i] = 1;
  };
  auto configToken = [&](size_t i) {
    options.cancel.throwIfExpired("sweep");
    (void)i;
    return options.configTimeoutMs > 0
               ? options.cancel.childWithTimeoutMs(options.configTimeoutMs)
               : options.cancel;
  };
  // The pool hands tasks out by fan-out position; tasks map to config slots
  // through uniqueIdx (duplicates never get a task of their own).
  auto classifyTask = [&](size_t u, std::exception_ptr ep) { classify(uniqueIdx[u], ep); };

  auto t0 = std::chrono::steady_clock::now();
  try {
    if (sweepExpired) std::rethrow_exception(sweepExpired);
    {
      SKOPE_SPAN("sweep/base-eval");
      core::BackendOptions cheap;
      cheap.rparams = options.rparams;
      cheap.criteria = options.criteria;
      cheap.cancel = options.cancel;
      result.baseProjectedSeconds =
          core::evaluateMachine(frontend, base, cheap).model.totalSeconds;
    }

    if (options.backend == SweepBackend::Batched && uniqueIdx.size() > 1) {
      // Node-major: one shared BET factorization + geometry-memoized cache
      // predictions up front, then only the cheap per-config finish stages go
      // through the pool. Only distinct machines enter the batch.
      std::vector<MachineModel> machines;
      machines.reserve(uniqueIdx.size());
      for (size_t i : uniqueIdx) machines.push_back(configs[i].machine);
      core::BackendOptions gridOpts = backendOpts;
      gridOpts.cancel = options.cancel;
      core::GridBackend backend(frontend, std::move(machines), gridOpts);
      SKOPE_SPAN("sweep/fan-out");
      pool.run(
          uniqueIdx.size(),
          [&](size_t u) {
            const size_t i = uniqueIdx[u];
            auto token = configToken(i);
            telemetry::Span span("config/", configs[i].name);
            auto evalT0 = std::chrono::steady_clock::now();
            finishOne(i, backend.evaluate(u, token));
            result.outcomes[i].evalMs = std::chrono::duration<double, std::milli>(
                                            std::chrono::steady_clock::now() - evalT0)
                                            .count();
          },
          options.progress, classifyTask);
    } else {
      SKOPE_SPAN("sweep/fan-out");
      pool.run(
          uniqueIdx.size(),
          [&](size_t u) {
            const size_t i = uniqueIdx[u];
            auto token = configToken(i);
            // One span per config on whichever worker track ran it.
            telemetry::Span span("config/", configs[i].name);
            core::BackendOptions opts = backendOpts;
            opts.cancel = token;
            auto evalT0 = std::chrono::steady_clock::now();
            finishOne(i, core::evaluateMachine(frontend, configs[i].machine, opts));
            result.outcomes[i].evalMs = std::chrono::duration<double, std::milli>(
                                            std::chrono::steady_clock::now() - evalT0)
                                            .count();
          },
          options.progress, classifyTask);
    }
  } catch (const CancelledError& e) {
    // Deadline expired inside a shared stage (base eval, batched combine,
    // cache-model prepare): the sweep still returns — configs evaluated so
    // far keep their rows, the rest are Timeout.
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
      if (evaluated[i]) continue;
      result.outcomes[i].status = ConfigStatus::Timeout;
      result.outcomes[i].error = e.what();
    }
  }

  // Duplicates mirror their primary's outcome — status, error and numbers
  // alike — under their own index and config name.
  for (size_t i = 0; i < configs.size(); ++i) {
    const size_t p = primaryOf[i];
    if (p == i) continue;
    ConfigOutcome copy = result.outcomes[p];
    copy.index = i;
    copy.config = configs[i].name;
    result.outcomes[i] = std::move(copy);
    evaluated[i] = evaluated[p];
  }
  result.sweepSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::current();
    reg.counter("sweep/failed").add(result.countWithStatus(ConfigStatus::Error));
    reg.counter("sweep/timeout").add(result.countWithStatus(ConfigStatus::Timeout));
    reg.counter("sweep/degraded").add(result.countWithStatus(ConfigStatus::Degraded));
  }
  return result;
}

SweepResult runSweep(const core::WorkloadFrontend& frontend, const MachineGrid& grid,
                     const SweepOptions& options) {
  SweepOptions opts = options;
  if (!opts.baseline) opts.baseline = grid.base;
  return runSweep(frontend, grid.expand(), opts);
}

}  // namespace skope::sweep
