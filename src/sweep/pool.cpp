#include "sweep/pool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace skope::sweep {

namespace {

/// One worker's mutex-guarded task deque.
struct WorkerQueue {
  std::mutex mu;
  std::deque<size_t> tasks;

  bool popBack(size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.back();
    tasks.pop_back();
    return true;
  }

  bool stealFront(size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.front();
    tasks.pop_front();
    return true;
  }
};

struct BatchState {
  std::vector<WorkerQueue> queues;
  const std::function<void(size_t)>* task = nullptr;
  std::atomic<bool> abort{false};
  std::mutex errorMu;
  std::exception_ptr error;

  explicit BatchState(size_t workers) : queues(workers) {}

  void recordError() {
    std::lock_guard<std::mutex> lock(errorMu);
    if (!error) error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  }

  void workerLoop(size_t self) {
    size_t idx;
    while (!abort.load(std::memory_order_relaxed)) {
      if (!queues[self].popBack(idx)) {
        // Own deque drained: steal the oldest task from the first victim
        // that has one (scan order starts just after us to spread pressure).
        bool stole = false;
        for (size_t off = 1; off < queues.size() && !stole; ++off) {
          stole = queues[(self + off) % queues.size()].stealFront(idx);
        }
        if (!stole) return;  // batch drained
      }
      try {
        (*task)(idx);
      } catch (...) {
        recordError();
        return;
      }
    }
  }
};

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads_ = threads;
}

void WorkStealingPool::run(size_t numTasks, const std::function<void(size_t)>& task) const {
  if (numTasks == 0) return;
  size_t workers = std::min<size_t>(static_cast<size_t>(threads_), numTasks);
  if (workers <= 1) {
    for (size_t i = 0; i < numTasks; ++i) task(i);
    return;
  }

  BatchState state(workers);
  state.task = &task;
  // Deal the batch round-robin; deques are popped from the back, so push
  // order keeps low indices (often the cheap baseline configs) early.
  for (size_t i = 0; i < numTasks; ++i) {
    state.queues[i % workers].tasks.push_front(i);
  }

  std::vector<std::thread> crew;
  crew.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    crew.emplace_back([&state, w] { state.workerLoop(w); });
  }
  state.workerLoop(0);  // the calling thread is worker 0
  for (auto& t : crew) t.join();

  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace skope::sweep
