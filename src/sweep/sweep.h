// Parallel co-design sweep engine.
//
// Evaluates one workload against a whole grid of candidate machines — the
// batch version of the paper's co-design question ("which of these designs
// should we build?"). The machine-independent front-end (parse → compile →
// profile → skeleton → BET) is built ONCE as a shared immutable
// WorkloadFrontend; only the machine-dependent back-end (roofline → hot
// spots → hot path → optional ground-truth simulation) runs per config, fanned
// out over a work-stealing thread pool. Outcomes land in grid order, so a
// sweep's report is byte-identical for any thread count.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/backend.h"
#include "machine/grid.h"

namespace skope::artifact {
class ArtifactCache;
}

namespace skope::sweep {

/// Which roofline back-end evaluates the grid.
enum class SweepBackend {
  /// One full BET walk per config (core::evaluateMachine). Kept as the
  /// reference implementation; the equivalence suite pins Batched to it.
  Scalar,
  /// Node-major batched evaluation (core::GridBackend): one BET
  /// factorization shared by every config, cache predictions memoized per
  /// distinct geometry. Produces bit-identical outcomes to Scalar.
  Batched,
};

/// How the per-config ground-truth side is produced.
enum class CacheModelMode {
  /// Re-run the cycle-level simulator for every config (the historical
  /// behavior; cost scales with configs × input size).
  Simulate,
  /// Trace-once / replay-many: evaluate each config's cache geometry
  /// analytically from the front-end's reuse-distance histograms and
  /// replay the recorded run (microseconds per config). Requires a usable
  /// front-end trace (recordTrace on, not truncated).
  ReuseDist,
  /// Analytic layer conditions: predict per-level hit ratios symbolically
  /// from the skeleton's loop bounds and strides — no trace, no execution,
  /// O(1) per config (see docs/CACHE_MODELS.md). Always feeds the roofline's
  /// miss ratios; ground truth (if requested) uses the simulator. Falls back
  /// to ReuseDist (counted as "cachemodel/fallback-replay") when too much of
  /// the reference stream is data-dependent to analyze.
  LayerCond,
};

/// Per-config completion status. A sweep never dies because one config
/// failed: each worker task is an exception barrier, and every config lands
/// in the result with a status (docs/ROBUSTNESS.md has the full schema).
enum class ConfigStatus {
  Ok,        ///< evaluated normally
  Degraded,  ///< evaluated on a downgraded model (resource budget / fault)
  Timeout,   ///< interrupted by --config-timeout-ms or the sweep deadline
  Error,     ///< evaluation threw; see ConfigOutcome::error
};

/// Stable lowercase label ("ok", "degraded", "timeout", "error") — the
/// status column value in both report formats.
[[nodiscard]] std::string_view configStatusLabel(ConfigStatus status);

struct SweepOptions {
  /// Worker threads; <= 0 selects hardware concurrency, 1 is serial.
  int threads = 1;
  /// Roofline back-end (--backend). Batched is the default; Scalar remains
  /// for reference timing and the equivalence suite.
  SweepBackend backend = SweepBackend::Batched;
  /// Combine loop inside the batched back-end (ignored by Scalar):
  /// forwarded to core::BackendOptions::combine. All modes produce
  /// bit-identical outcomes; Simd/Scalar force one side for timing and the
  /// equivalence suite.
  roofline::CombineMode combine = roofline::CombineMode::Auto;
  hotspot::SelectionCriteria criteria{};
  roofline::RooflineParams rparams{};
  /// Run the ground-truth timing simulator per config too (Prof ranking +
  /// selection quality). Costly: simulation scales with the input data size
  /// while the analytic projection does not — but it parallelizes across
  /// configs just the same.
  bool groundTruth = false;
  /// Ground-truth engine when groundTruth is set (--cache-model).
  CacheModelMode cacheModel = CacheModelMode::Simulate;
  /// Feed the replayed cache predictions into the roofline's miss ratios as
  /// well (--trace-roofline; requires CacheModelMode::ReuseDist).
  bool traceInformedRoofline = false;
  /// Dynamic instruction budget per simulated run; 0 keeps the default.
  uint64_t maxOps = 0;
  /// Extract each config's hot path and record its size/instances.
  bool hotPaths = false;
  /// How many top hot-spot labels to record per config.
  size_t topSpots = 3;
  /// Speedup baseline. Defaults to the grid's unmodified base machine (grid
  /// overload) or the first config's machine (config-vector overload).
  std::optional<MachineModel> baseline;
  /// Invoked after each config completes as progress(done, total), from
  /// whichever pool worker finished it — the callback must be thread-safe.
  /// `done` values 1..total are each delivered exactly once (not necessarily
  /// in order). The sweep CLI uses this for its live progress/ETA line.
  std::function<void(size_t done, size_t total)> progress;
  /// Sweep-wide cancellation (--deadline-ms): checked before each config and
  /// polled inside every long-running stage. Expiry marks configs not yet
  /// evaluated as Timeout; finished outcomes are kept.
  CancelToken cancel{};
  /// Per-config wall-clock budget in ms (--config-timeout-ms); 0 = none.
  /// Each worker derives a child token when it picks the config up, so one
  /// runaway config times out alone instead of stalling the sweep.
  int64_t configTimeoutMs = 0;
  /// Resource budgets with graceful degradation (0 = unlimited). When the
  /// recorded trace exceeds traceBudgetBytes (encoded bytes) or
  /// replayBudgetOps (recorded references), a reuse-dist sweep downgrades to
  /// the layer-condition model, and to the constant roofline ratios if that
  /// is unusable too — recording the provenance in SweepResult::missModel
  /// ("reuse-dist:layer-cond-fallback" / "reuse-dist:constant-fallback") and
  /// marking every config Degraded, instead of aborting. With both budgets 0
  /// an unusable trace still throws (the historical contract).
  uint64_t traceBudgetBytes = 0;
  uint64_t replayBudgetOps = 0;
  /// Persistent artifact cache (borrowed; --artifact-cache). A reuse-dist
  /// sweep keyed through it loads previously computed reuse-distance
  /// histograms instead of paying the O(N log N) stack-distance pass, and
  /// stores freshly computed ones. Pair with FrontendOptions::artifacts so
  /// the profiling run is skipped too (docs/ARTIFACTS.md).
  const artifact::ArtifactCache* artifacts = nullptr;
};

/// What the sweep keeps per machine config (a deliberately flat, printable
/// digest of core::MachineEvaluation — full evaluations for a big grid would
/// hold the whole per-node cost tables alive).
struct ConfigOutcome {
  size_t index = 0;            ///< position in grid order
  std::string config;          ///< config name from grid expansion
  double projectedSeconds = 0; ///< analytic total ("Modl")
  double speedupVsBase = 0;    ///< base projected / this projected
  double coverage = 0;         ///< selection time coverage (projected)
  double leanness = 0;         ///< selection static-instruction share
  size_t spotCount = 0;        ///< hot spots selected
  std::vector<std::string> topSpots;  ///< "label (share%)", rank order
  std::string topBound;        ///< "memory" or "compute" for the top spot
  size_t hotPathNodes = 0;     ///< (hotPaths) merged hot-path size
  size_t hotSpotInstances = 0; ///< (hotPaths) BET instances on the path
  std::optional<double> measuredSeconds;  ///< (groundTruth) simulated total
  std::optional<double> quality;          ///< (groundTruth) selection quality
  ConfigStatus status = ConfigStatus::Ok;
  std::string error;  ///< diagnostic when status != Ok (empty otherwise)
  /// Wall-clock ms this config's evaluation took on its worker (0 when it
  /// never ran, e.g. a deadline expired first; duplicates mirror their
  /// primary's). NOT part of the deterministic report surface — reports
  /// print it only when ReportOptions::evalMs asks for it.
  double evalMs = 0;
  /// Flight-recorder tail captured when this config's evaluation failed or
  /// timed out (empty for ok rows and for configs that never started):
  /// the last events of the registry the sweep ran under, formatted as in
  /// FlightRecorder::lastEvents(). Requires telemetry to be enabled.
  std::vector<std::string> lastEvents;
};

struct SweepResult {
  std::string workload;
  std::string baseMachine;
  double baseProjectedSeconds = 0;  ///< the unmodified base machine's projection
  std::vector<ConfigOutcome> outcomes;  ///< in grid order
  bool groundTruth = false;  ///< outcomes carry measuredSeconds / quality
  bool hotPaths = false;     ///< outcomes carry hot-path sizes
  /// Where the roofline's per-config miss ratios came from: "constant"
  /// (RooflineParams as configured), "reuse-dist" (trace replay,
  /// --trace-roofline), "layer-cond" (analytic layer conditions), or the
  /// fallback provenances "layer-cond:replay-fallback" /
  /// "layer-cond:constant-fallback" / "reuse-dist:layer-cond-fallback" /
  /// "reuse-dist:constant-fallback" (the last two are budget- or
  /// fault-driven degradations; see SweepOptions::traceBudgetBytes).
  /// Printed by both report writers.
  std::string missModel = "constant";

  // Run metadata (not part of the deterministic report surface).
  int threadsUsed = 1;
  double sweepSeconds = 0;  ///< wall-clock of the per-config fan-out

  /// Outcome indices ranked by projected time, fastest first; ties break by
  /// grid order. This is the order the reports print in. Only Ok and
  /// Degraded configs are ranked; Timeout / Error rows (which carry no
  /// meaningful projection) follow after them in grid order.
  [[nodiscard]] std::vector<size_t> ranked() const;

  /// Outcome counts by status (failed == Error).
  [[nodiscard]] size_t countWithStatus(ConfigStatus status) const;
};

/// Evaluates every config against the shared front-end. Deterministic: the
/// outcome vector (and everything derived from it) is identical for any
/// `threads` value. Per-config failures are isolated: a config that throws,
/// times out or exceeds a budget lands as a non-Ok outcome row instead of
/// aborting the sweep (counted as "sweep/failed" / "sweep/timeout" /
/// "sweep/degraded"). Only failures of the shared pre-fan-out stages (e.g.
/// an unusable trace with no budgets set) still throw.
SweepResult runSweep(const core::WorkloadFrontend& frontend,
                     const std::vector<MachineConfig>& configs,
                     const SweepOptions& options = {});

/// Convenience: expand a grid and sweep it.
SweepResult runSweep(const core::WorkloadFrontend& frontend, const MachineGrid& grid,
                     const SweepOptions& options = {});

/// The bound label for a block with the given memory / compute times.
/// Ties (tm == tc) report "memory": under the extended roofline the memory
/// term is the one a co-design sweep can usually buy down (bandwidth,
/// latency, cache geometry), so the paper's bias toward memory-bound
/// classification is kept deterministic instead of falling to whichever
/// side FP rounding lands on.
std::string_view boundLabel(double tmSeconds, double tcSeconds);

}  // namespace skope::sweep
