// Compatibility shim: the work-stealing pool moved to src/parallel so the
// trace analyzer can shard work over it without depending on the sweep
// engine. Sweep callers keep their historical include path and name (and the
// pool's telemetry counters keep their "sweep/pool/..." names, see
// docs/OBSERVABILITY.md).
#pragma once

#include "parallel/pool.h"

namespace skope::sweep {

using parallel::WorkStealingPool;

}  // namespace skope::sweep
