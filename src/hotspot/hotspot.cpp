#include "hotspot/hotspot.h"

#include <algorithm>

namespace skope::hotspot {

Ranking rankingFromProfile(const sim::ProfileReport& report) {
  Ranking out;
  for (const auto& e : report.ranked) {
    out.push_back({e.region, e.label, e.seconds, e.fraction, e.staticInstrs});
  }
  return out;  // report.ranked is already sorted descending
}

Ranking rankingFromModel(const roofline::ModelResult& model) {
  Ranking out;
  for (const auto& [origin, bc] : model.blocks) {
    if (bc.seconds <= 0) continue;
    out.push_back({origin, bc.label, bc.seconds, bc.fraction, bc.staticInstrs});
  }
  std::sort(out.begin(), out.end(), [](const RankedBlock& a, const RankedBlock& b) {
    if (a.seconds != b.seconds) return a.seconds > b.seconds;
    return a.origin < b.origin;
  });
  return out;
}

bool Selection::contains(uint32_t origin) const {
  for (const auto& s : spots) {
    if (s.origin == origin) return true;
  }
  return false;
}

Selection selectHotSpots(const Ranking& ranking, size_t totalStaticInstrs,
                         const SelectionCriteria& criteria) {
  Selection sel;
  const auto budget =
      static_cast<size_t>(criteria.codeLeanness * static_cast<double>(totalStaticInstrs));
  for (const auto& b : ranking) {
    if (sel.coverage >= criteria.timeCoverage) break;
    if (sel.instrs + b.staticInstrs > budget) continue;  // leanness takes precedence
    sel.spots.push_back(b);
    sel.instrs += b.staticInstrs;
    sel.coverage += b.fraction;
  }
  sel.leanness = totalStaticInstrs > 0
                     ? static_cast<double>(sel.instrs) / static_cast<double>(totalStaticInstrs)
                     : 0;
  sel.coverageMet = sel.coverage >= criteria.timeCoverage;
  return sel;
}

std::map<uint32_t, double> fractionsByOrigin(const Ranking& ranking) {
  std::map<uint32_t, double> out;
  for (const auto& b : ranking) out[b.origin] += b.fraction;
  return out;
}

std::vector<double> coverageCurve(const Ranking& order,
                                  const std::map<uint32_t, double>& fractions,
                                  size_t topN) {
  std::vector<double> out;
  double cum = 0;
  for (size_t i = 0; i < topN && i < order.size(); ++i) {
    auto it = fractions.find(order[i].origin);
    if (it != fractions.end()) cum += it->second;
    out.push_back(cum);
  }
  return out;
}

size_t topNOverlap(const Ranking& a, const Ranking& b, size_t n) {
  size_t common = 0;
  for (size_t i = 0; i < n && i < a.size(); ++i) {
    for (size_t j = 0; j < n && j < b.size(); ++j) {
      if (a[i].origin == b[j].origin) {
        ++common;
        break;
      }
    }
  }
  return common;
}

}  // namespace skope::hotspot
