// Hot spot identification (paper §V-B) — contribution #2.
//
// Given a ranked list of code blocks with time estimates (projected by the
// model or measured by a profiler), select a set of hot spots that satisfies
// two user criteria:
//   * time coverage  — the selected spots should together account for at
//     least this share of total run time (default 90 %);
//   * code leanness  — the selected spots may contain at most this share of
//     the program's static instructions (default 10 %).
// Leanness takes precedence; when both cannot be met, coverage is maximized
// under the leanness budget. The underlying problem is a knapsack; a greedy
// pass over the time-ranked blocks is used, as in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "roofline/estimate.h"
#include "sim/profile_report.h"

namespace skope::hotspot {

/// One code block in a ranking, with whatever time estimate produced it.
struct RankedBlock {
  uint32_t origin = 0;
  std::string label;
  double seconds = 0;
  double fraction = 0;      ///< share of that source's total time
  size_t staticInstrs = 0;
};

/// Blocks in descending time order.
using Ranking = std::vector<RankedBlock>;

/// Ranking from the ground-truth profiler (the paper's Prof columns).
Ranking rankingFromProfile(const sim::ProfileReport& report);

/// Ranking from the analytic model (the paper's Modl columns).
Ranking rankingFromModel(const roofline::ModelResult& model);

struct SelectionCriteria {
  double timeCoverage = 0.90;
  double codeLeanness = 0.10;
};

struct Selection {
  std::vector<RankedBlock> spots;   ///< selected blocks, in rank order
  double coverage = 0;              ///< share of time covered (same estimate
                                    ///< the ranking was built from)
  size_t instrs = 0;                ///< static instructions selected
  double leanness = 0;              ///< instrs / totalInstrs
  bool coverageMet = false;

  [[nodiscard]] bool contains(uint32_t origin) const;
};

/// Greedy knapsack selection over a ranking.
Selection selectHotSpots(const Ranking& ranking, size_t totalStaticInstrs,
                         const SelectionCriteria& criteria = {});

/// Per-origin time fractions of a ranking (used to re-evaluate a selection
/// made on one source against times measured on another).
std::map<uint32_t, double> fractionsByOrigin(const Ranking& ranking);

/// Cumulative coverage curve: entry k is the summed `fractions` share of the
/// first k+1 blocks of `order`. Blocks missing from `fractions` contribute 0.
std::vector<double> coverageCurve(const Ranking& order,
                                  const std::map<uint32_t, double>& fractions,
                                  size_t topN);

/// Number of common origins among the top-N of two rankings (the paper's
/// "only 4 of the top 10 SORD hot spots are shared across machines").
size_t topNOverlap(const Ranking& a, const Ranking& b, size_t n);

}  // namespace skope::hotspot
