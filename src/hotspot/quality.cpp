#include "hotspot/quality.h"

#include <algorithm>

namespace skope::hotspot {

double measuredCoverage(const Selection& sel,
                        const std::map<uint32_t, double>& measuredFractions) {
  double cov = 0;
  for (const auto& s : sel.spots) {
    auto it = measuredFractions.find(s.origin);
    if (it != measuredFractions.end()) cov += it->second;
  }
  return cov;
}

double coverageSimilarity(double a, double b) {
  double hi = std::max(a, b);
  if (hi <= 0) return 1.0;  // both selections cover nothing: identical
  return std::min(a, b) / hi;
}

QualityResult selectionQuality(const Selection& modelSelection,
                               const Selection& profSelection,
                               const std::map<uint32_t, double>& measuredFractions) {
  QualityResult r;
  r.modelCoverage = measuredCoverage(modelSelection, measuredFractions);
  r.profCoverage = measuredCoverage(profSelection, measuredFractions);
  r.quality = coverageSimilarity(r.modelCoverage, r.profCoverage);
  return r;
}

}  // namespace skope::hotspot
