// Selection quality (paper §VI).
//
// The developer cares about the *measured* run-time coverage a hot-spot
// selection achieves. Quality compares the measured coverage of the
// model-suggested selection against the measured coverage of the selection
// the native profiler itself would suggest, under identical criteria:
//   Q = min(covModel, covProf) / max(covModel, covProf)   (1.0 when equal).
// The same machinery evaluates cross-machine portability (using machine A's
// profiler-selected spots on machine B — the paper's Prof.Q(x) curves).
#pragma once

#include "hotspot/hotspot.h"

namespace skope::hotspot {

/// Sum of measured time fractions over a selection's origins.
double measuredCoverage(const Selection& sel,
                        const std::map<uint32_t, double>& measuredFractions);

/// Similarity of two coverage values in [0, 1].
double coverageSimilarity(double a, double b);

/// End-to-end: quality of a model-made selection judged against the
/// profiler-made selection on measured times.
struct QualityResult {
  double modelCoverage = 0;  ///< measured coverage of the model's spots
  double profCoverage = 0;   ///< measured coverage of the profiler's spots
  double quality = 0;        ///< similarity of the two
};

QualityResult selectionQuality(const Selection& modelSelection,
                               const Selection& profSelection,
                               const std::map<uint32_t, double>& measuredFractions);

}  // namespace skope::hotspot
