// Parser for the textual skeleton syntax.
//
// Grammar:
//   program  := ('params' ident (',' ident)* ';')? def*
//   def      := 'def' ident '(' idents? ')' origin? block
//   block    := '{' stmt* '}'
//   stmt     := loop | branch | comp | call | libcall | set
//             | ('return'|'break'|'continue') origin? ';'
//   loop     := 'loop' origin? 'iter' '=' expr block
//   branch   := 'branch' origin? 'p' '=' expr block ('else' block)?
//   comp     := 'comp' origin? (metric '=' number)* ';'
//               metric ∈ {flops, fpdivs, iops, loads, stores}
//   call     := 'call' origin? ident '(' exprs? ')' ';'
//   libcall  := 'libcall' origin? ident ('count' '=' expr)? ';'
//   set      := 'set' origin? ident '=' expr ';'
//   origin   := '@' integer
// Expressions use the syntax of expr/expr.h (parseExpr).
#pragma once

#include <string_view>

#include "skeleton/skeleton.h"

namespace skope::skel {

/// Parses skeleton text. Throws Error on malformed input or unknown library
/// function names.
SkeletonProgram parseSkeleton(std::string_view text);

}  // namespace skope::skel
