#include "skeleton/skeleton.h"

namespace skope::skel {

std::string_view skKindName(SkKind k) {
  switch (k) {
    case SkKind::Def: return "def";
    case SkKind::Loop: return "loop";
    case SkKind::Branch: return "branch";
    case SkKind::Comp: return "comp";
    case SkKind::Call: return "call";
    case SkKind::LibCall: return "libcall";
    case SkKind::Set: return "set";
    case SkKind::Comm: return "comm";
    case SkKind::Return: return "return";
    case SkKind::Break: return "break";
    case SkKind::Continue: return "continue";
  }
  return "?";
}

SkMetrics& SkMetrics::operator+=(const SkMetrics& o) {
  flops += o.flops;
  fpdivs += o.fpdivs;
  iops += o.iops;
  loads += o.loads;
  stores += o.stores;
  return *this;
}

SkMetrics SkMetrics::scaled(double f) const {
  return {flops * f, fpdivs * f, iops * f, loads * f, stores * f};
}

size_t SkNode::subtreeSize() const {
  size_t n = 1;
  for (const auto& k : kids) n += k->subtreeSize();
  for (const auto& k : elseKids) n += k->subtreeSize();
  return n;
}

const SkNode* SkeletonProgram::findDef(std::string_view name) const {
  for (const auto& d : defs) {
    if (d->name == name) return d.get();
  }
  return nullptr;
}

size_t SkeletonProgram::totalNodes() const {
  size_t n = 0;
  for (const auto& d : defs) n += d->subtreeSize();
  return n;
}

namespace {
SkNodeUP makeNode(SkKind kind, uint32_t origin) {
  auto n = std::make_unique<SkNode>();
  n->kind = kind;
  n->origin = origin;
  return n;
}
}  // namespace

SkNodeUP makeDef(std::string name, std::vector<std::string> formals, uint32_t origin) {
  auto n = makeNode(SkKind::Def, origin);
  n->name = std::move(name);
  n->formals = std::move(formals);
  return n;
}

SkNodeUP makeLoop(ExprPtr iter, uint32_t origin) {
  auto n = makeNode(SkKind::Loop, origin);
  n->iter = std::move(iter);
  return n;
}

SkNodeUP makeBranch(ExprPtr prob, uint32_t origin) {
  auto n = makeNode(SkKind::Branch, origin);
  n->prob = std::move(prob);
  return n;
}

SkNodeUP makeComp(SkMetrics m, uint32_t origin) {
  auto n = makeNode(SkKind::Comp, origin);
  n->metrics = m;
  return n;
}

SkNodeUP makeCall(std::string name, std::vector<ExprPtr> args, uint32_t origin) {
  auto n = makeNode(SkKind::Call, origin);
  n->name = std::move(name);
  n->args = std::move(args);
  return n;
}

SkNodeUP makeLibCall(int builtinIndex, ExprPtr count, uint32_t origin) {
  auto n = makeNode(SkKind::LibCall, origin);
  n->builtinIndex = builtinIndex;
  n->count = std::move(count);
  return n;
}

SkNodeUP makeSet(std::string name, ExprPtr value, uint32_t origin) {
  auto n = makeNode(SkKind::Set, origin);
  n->name = std::move(name);
  n->value = std::move(value);
  return n;
}

SkNodeUP makeComm(ExprPtr bytes, uint32_t origin) {
  auto n = makeNode(SkKind::Comm, origin);
  n->bytes = std::move(bytes);
  return n;
}

SkNodeUP makeSimple(SkKind kind, uint32_t origin) { return makeNode(kind, origin); }

}  // namespace skope::skel
