#include "skeleton/parser.h"

#include <cctype>

#include "minic/builtins.h"
#include "support/diagnostics.h"

namespace skope::skel {

namespace {

class SkParser {
 public:
  explicit SkParser(std::string_view text) : text_(text) {}

  SkeletonProgram run() {
    SkeletonProgram prog;
    skipWs();
    if (peekWord() == "params") {
      eatWord("params");
      prog.params.push_back(eatIdent());
      while (tryConsume(',')) prog.params.push_back(eatIdent());
      expect(';');
    }
    skipWs();
    while (pos_ < text_.size()) {
      prog.defs.push_back(parseDef());
      skipWs();
    }
    return prog;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    // compute line for a useful message
    uint32_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw Error("skeleton:" + std::to_string(line) + ": " + msg);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    skipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool tryConsume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!tryConsume(c)) fail(std::string("expected '") + c + "'");
  }

  std::string_view peekWord() {
    skipWs();
    size_t p = pos_;
    while (p < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[p])) || text_[p] == '_')) {
      ++p;
    }
    return text_.substr(pos_, p - pos_);
  }

  std::string eatIdent() {
    std::string_view w = peekWord();
    if (w.empty() || std::isdigit(static_cast<unsigned char>(w[0]))) {
      fail("expected identifier");
    }
    pos_ += w.size();
    return std::string(w);
  }

  void eatWord(std::string_view w) {
    if (peekWord() != w) fail("expected '" + std::string(w) + "'");
    pos_ += w.size();
  }

  uint32_t parseOrigin() {
    if (peek() != '@') return 0;
    ++pos_;
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start) fail("expected integer after '@'");
    return static_cast<uint32_t>(std::stoul(std::string(text_.substr(start, pos_ - start))));
  }

  double parseNumber() {
    skipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  /// Extracts an expression substring up to an unparenthesized delimiter.
  ExprPtr parseExprUntil(std::string_view delims) {
    skipWs();
    size_t start = pos_;
    int depth = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '(') ++depth;
      if (c == ')') {
        if (depth == 0) break;
        --depth;
      }
      if (depth == 0 && delims.find(c) != std::string_view::npos) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected expression");
    return parseExpr(text_.substr(start, pos_ - start));
  }

  std::vector<SkNodeUP> parseBlock() {
    expect('{');
    std::vector<SkNodeUP> kids;
    while (peek() != '}') {
      if (pos_ >= text_.size()) fail("unterminated block");
      kids.push_back(parseStmt());
    }
    expect('}');
    return kids;
  }

  SkNodeUP parseDef() {
    eatWord("def");
    std::string name = eatIdent();
    expect('(');
    std::vector<std::string> formals;
    if (peek() != ')') {
      formals.push_back(eatIdent());
      while (tryConsume(',')) formals.push_back(eatIdent());
    }
    expect(')');
    uint32_t origin = parseOrigin();
    auto def = makeDef(std::move(name), std::move(formals), origin);
    def->kids = parseBlock();
    return def;
  }

  SkNodeUP parseStmt() {
    std::string_view w = peekWord();
    if (w == "loop") return parseLoop();
    if (w == "branch") return parseBranch();
    if (w == "comp") return parseComp();
    if (w == "call") return parseCall();
    if (w == "libcall") return parseLibCall();
    if (w == "set") return parseSet();
    if (w == "comm") return parseComm();
    if (w == "return" || w == "break" || w == "continue") {
      pos_ += w.size();
      SkKind kind = w == "return" ? SkKind::Return
                    : w == "break" ? SkKind::Break
                                   : SkKind::Continue;
      auto n = makeSimple(kind, parseOrigin());
      expect(';');
      return n;
    }
    fail("unknown statement '" + std::string(w) + "'");
  }

  SkNodeUP parseLoop() {
    eatWord("loop");
    bool parallel = false;
    if (peekWord() == "parallel") {
      eatWord("parallel");
      parallel = true;
    }
    uint32_t origin = parseOrigin();
    eatWord("iter");
    expect('=');
    auto iter = parseExprUntil("{");
    auto loop = makeLoop(std::move(iter), origin);
    loop->parallel = parallel;
    loop->kids = parseBlock();
    return loop;
  }

  SkNodeUP parseBranch() {
    eatWord("branch");
    uint32_t origin = parseOrigin();
    eatWord("p");
    expect('=');
    auto prob = parseExprUntil("{");
    auto branch = makeBranch(std::move(prob), origin);
    branch->kids = parseBlock();
    if (peekWord() == "else") {
      eatWord("else");
      branch->elseKids = parseBlock();
    }
    return branch;
  }

  SkNodeUP parseComp() {
    eatWord("comp");
    uint32_t origin = parseOrigin();
    SkMetrics m;
    while (peek() != ';') {
      std::string key = eatIdent();
      expect('=');
      double v = parseNumber();
      if (key == "flops") m.flops = v;
      else if (key == "fpdivs") m.fpdivs = v;
      else if (key == "iops") m.iops = v;
      else if (key == "loads") m.loads = v;
      else if (key == "stores") m.stores = v;
      else fail("unknown comp metric '" + key + "'");
    }
    expect(';');
    return makeComp(m, origin);
  }

  SkNodeUP parseCall() {
    eatWord("call");
    uint32_t origin = parseOrigin();
    std::string name = eatIdent();
    expect('(');
    std::vector<ExprPtr> args;
    if (peek() != ')') {
      args.push_back(parseExprUntil(",)"));
      while (tryConsume(',')) args.push_back(parseExprUntil(",)"));
    }
    expect(')');
    expect(';');
    return makeCall(std::move(name), std::move(args), origin);
  }

  SkNodeUP parseLibCall() {
    eatWord("libcall");
    uint32_t origin = parseOrigin();
    std::string name = eatIdent();
    int bi = minic::findBuiltin(name);
    if (bi < 0) fail("unknown library function '" + name + "'");
    ExprPtr count = constant(1);
    if (peekWord() == "count") {
      eatWord("count");
      expect('=');
      count = parseExprUntil(";");
    }
    expect(';');
    return makeLibCall(bi, std::move(count), origin);
  }

  SkNodeUP parseComm() {
    eatWord("comm");
    uint32_t origin = parseOrigin();
    eatWord("bytes");
    expect('=');
    auto bytes = parseExprUntil(";");
    expect(';');
    return makeComm(std::move(bytes), origin);
  }

  SkNodeUP parseSet() {
    eatWord("set");
    uint32_t origin = parseOrigin();
    std::string name = eatIdent();
    expect('=');
    auto value = parseExprUntil(";");
    expect(';');
    return makeSet(std::move(name), std::move(value), origin);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

SkeletonProgram parseSkeleton(std::string_view text) { return SkParser(text).run(); }

}  // namespace skope::skel
