#include "skeleton/printer.h"

#include <sstream>

#include "minic/builtins.h"
#include "support/text.h"

namespace skope::skel {

namespace {

class Printer {
 public:
  std::string run(const SkeletonProgram& prog) {
    if (!prog.params.empty()) {
      os_ << "params " << join(prog.params, ", ") << ";\n";
    }
    for (const auto& d : prog.defs) {
      os_ << "\n";
      printNode(*d);
    }
    return os_.str();
  }

 private:
  void line() {
    for (int i = 0; i < indent_; ++i) os_ << "  ";
  }

  void origin(const SkNode& n) {
    if (n.origin != 0) os_ << " @" << n.origin;
  }

  void printBlock(const std::vector<SkNodeUP>& kids) {
    os_ << " {\n";
    ++indent_;
    for (const auto& k : kids) printNode(*k);
    --indent_;
    line();
    os_ << "}";
  }

  void printNode(const SkNode& n) {
    line();
    switch (n.kind) {
      case SkKind::Def: {
        os_ << "def " << n.name << "(";
        for (size_t i = 0; i < n.formals.size(); ++i) {
          if (i) os_ << ", ";
          os_ << n.formals[i];
        }
        os_ << ")";
        origin(n);
        printBlock(n.kids);
        os_ << "\n";
        return;
      }
      case SkKind::Loop:
        os_ << "loop";
        if (n.parallel) os_ << " parallel";
        origin(n);
        os_ << " iter=" << n.iter->str();
        printBlock(n.kids);
        os_ << "\n";
        return;
      case SkKind::Branch:
        os_ << "branch";
        origin(n);
        os_ << " p=" << n.prob->str();
        printBlock(n.kids);
        if (!n.elseKids.empty()) {
          os_ << " else";
          printBlock(n.elseKids);
        }
        os_ << "\n";
        return;
      case SkKind::Comp: {
        os_ << "comp";
        origin(n);
        const SkMetrics& m = n.metrics;
        if (m.flops != 0) os_ << " flops=" << humanDouble(m.flops, 10);
        if (m.fpdivs != 0) os_ << " fpdivs=" << humanDouble(m.fpdivs, 10);
        if (m.iops != 0) os_ << " iops=" << humanDouble(m.iops, 10);
        if (m.loads != 0) os_ << " loads=" << humanDouble(m.loads, 10);
        if (m.stores != 0) os_ << " stores=" << humanDouble(m.stores, 10);
        os_ << ";\n";
        return;
      }
      case SkKind::Call: {
        os_ << "call";
        origin(n);
        os_ << " " << n.name << "(";
        for (size_t i = 0; i < n.args.size(); ++i) {
          if (i) os_ << ", ";
          os_ << n.args[i]->str();
        }
        os_ << ");\n";
        return;
      }
      case SkKind::LibCall:
        os_ << "libcall";
        origin(n);
        os_ << " " << minic::builtinTable()[static_cast<size_t>(n.builtinIndex)].name;
        // a count of exactly 1 is the default; keep the output minimal
        if (n.count && !(n.count->op == ExprOp::Const && n.count->value == 1.0)) {
          os_ << " count=" << n.count->str();
        }
        os_ << ";\n";
        return;
      case SkKind::Set:
        os_ << "set";
        origin(n);
        os_ << " " << n.name << " = " << n.value->str() << ";\n";
        return;
      case SkKind::Comm:
        os_ << "comm";
        origin(n);
        os_ << " bytes=" << n.bytes->str() << ";\n";
        return;
      case SkKind::Return:
      case SkKind::Break:
      case SkKind::Continue:
        os_ << skKindName(n.kind);
        origin(n);
        os_ << ";\n";
        return;
    }
  }

  std::ostringstream os_;
  int indent_ = 0;
};

}  // namespace

std::string printSkeleton(const SkeletonProgram& prog) { return Printer().run(prog); }

}  // namespace skope::skel
