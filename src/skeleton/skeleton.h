// Code skeletons — our implementation of the SKOPE workload-modeling language
// the paper builds on (§III-A).
//
// A skeleton preserves the control-flow structure of the application (functions,
// loops, branches) but replaces straight-line code with aggregate performance
// statements (`comp`): floating-point op counts, integer op counts, loads and
// stores. Loop iteration counts and branch probabilities are expressions over
// the workload's input parameters, or constants measured by the local branch
// profiler. The parsed form is the paper's Block Skeleton Tree (BST).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace skope::skel {

enum class SkKind {
  Def,      ///< function definition; name, formals, kids
  Loop,     ///< counted loop; iter expression, kids
  Branch,   ///< two-way branch; prob expression, kids / elseKids
  Comp,     ///< aggregate op-mix statement
  Call,     ///< user function call; name, args
  LibCall,  ///< library call; builtinIndex, count expression
  Set,      ///< context-variable assignment; name, value expression
  Comm,     ///< inter-node message; bytes expression (multi-node extension)
  Return,
  Break,
  Continue,
};

std::string_view skKindName(SkKind k);

/// Aggregate instruction mix of a `comp` statement, per execution.
struct SkMetrics {
  double flops = 0;   ///< floating-point ops excluding divides
  double fpdivs = 0;  ///< floating-point divides (recorded, but the default
                      ///< roofline model folds them into flops — paper §VII-B)
  double iops = 0;    ///< integer ops
  double loads = 0;   ///< data elements read
  double stores = 0;  ///< data elements written

  [[nodiscard]] double totalFlops() const { return flops + fpdivs; }
  [[nodiscard]] double accesses() const { return loads + stores; }
  [[nodiscard]] double bytes() const { return accesses() * 8.0; }
  [[nodiscard]] bool empty() const {
    return flops == 0 && fpdivs == 0 && iops == 0 && loads == 0 && stores == 0;
  }

  SkMetrics& operator+=(const SkMetrics& o);
  SkMetrics scaled(double f) const;
};

struct SkNode;
using SkNodeUP = std::unique_ptr<SkNode>;

/// One node of the Block Skeleton Tree.
struct SkNode {
  SkKind kind = SkKind::Comp;
  uint32_t origin = 0;  ///< originating AST node id (region id for Def/Loop)

  std::string name;                   ///< Def / Call / LibCall / Set
  std::vector<std::string> formals;   ///< Def parameter names
  ExprPtr iter;                       ///< Loop iteration count
  bool parallel = false;              ///< Loop iterations are independent
                                      ///< (SKOPE's "degree of parallelism")
  ExprPtr prob;                       ///< Branch probability of the then-arm
  ExprPtr value;                      ///< Set value
  std::vector<ExprPtr> args;          ///< Call arguments
  ExprPtr count;                      ///< LibCall calls per execution (default 1)
  int builtinIndex = -1;              ///< LibCall target
  SkMetrics metrics;                  ///< Comp
  ExprPtr bytes;                      ///< Comm message size in bytes

  std::vector<SkNodeUP> kids;
  std::vector<SkNodeUP> elseKids;     ///< Branch only

  [[nodiscard]] size_t subtreeSize() const;
};

/// A full workload skeleton: the BSTs of all functions plus the input
/// parameter names the expressions may reference.
struct SkeletonProgram {
  std::vector<std::string> params;
  std::vector<SkNodeUP> defs;

  [[nodiscard]] const SkNode* findDef(std::string_view name) const;
  /// Total number of BST nodes (the paper's BET-size comparison baseline).
  [[nodiscard]] size_t totalNodes() const;
};

// --- construction helpers (used by the translator and tests) ---
SkNodeUP makeDef(std::string name, std::vector<std::string> formals, uint32_t origin);
SkNodeUP makeLoop(ExprPtr iter, uint32_t origin);
SkNodeUP makeBranch(ExprPtr prob, uint32_t origin);
SkNodeUP makeComp(SkMetrics m, uint32_t origin);
SkNodeUP makeCall(std::string name, std::vector<ExprPtr> args, uint32_t origin);
SkNodeUP makeLibCall(int builtinIndex, ExprPtr count, uint32_t origin);
SkNodeUP makeSet(std::string name, ExprPtr value, uint32_t origin);
SkNodeUP makeComm(ExprPtr bytes, uint32_t origin);
SkNodeUP makeSimple(SkKind kind, uint32_t origin);  // Return / Break / Continue

}  // namespace skope::skel
