// Renders a SkeletonProgram to the textual skeleton syntax (round-trips with
// skeleton/parser.h).
#pragma once

#include <string>

#include "skeleton/skeleton.h"

namespace skope::skel {

std::string printSkeleton(const SkeletonProgram& prog);

}  // namespace skope::skel
