#include "roofline/estimate.h"

#include <algorithm>

#include "minic/builtins.h"
#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::roofline {

using bet::BetKind;
using bet::BetNode;

namespace {

/// Sums the per-invocation mix of a block: direct comp children plus comp
/// statements inside branch arms, weighted by arm probabilities. Stops at
/// nested blocks (they are charged separately).
void collectBlockMix(const BetNode& block, const BetNode& node, double factor,
                     skel::SkMetrics& out) {
  for (const auto& kid : node.kids) {
    switch (kid->kind) {
      case BetKind::Comp:
        out += kid->metrics.scaled(factor * kid->prob);
        break;
      case BetKind::BranchThen:
      case BetKind::BranchElse:
        collectBlockMix(block, *kid, factor * kid->prob, out);
        break;
      default:
        break;  // nested Func / Loop / LibCall: separate blocks
    }
  }
}

skel::SkMetrics builtinMix(int builtinIndex, const LibMixes* libMixes) {
  if (libMixes) {
    auto it = libMixes->find(builtinIndex);
    if (it != libMixes->end()) return it->second;
  }
  const auto& m = minic::builtinTable()[static_cast<size_t>(builtinIndex)].mix;
  return skel::SkMetrics{m.flops, 0, m.iops, m.loads, m.stores};
}

/// One preorder walk computing ENR top-down and projecting each block as it
/// is reached — reads the BET, writes only `result` / `ann`. Keeping the
/// visit order identical to the historical two-pass visitMut implementation
/// means the floating-point aggregation order (and hence the bits of every
/// sum) is unchanged, which the sweep determinism tests rely on.
void walkConst(const BetNode& n, double parentEnr, const Roofline& model,
               const LibMixes* libMixes, ModelResult& result, BetAnnotations* ann) {
  double enr = n.numIter * n.prob * parentEnr;
  NodeCost nc;
  nc.enr = enr;

  if (n.isBlock()) {
    Breakdown b;
    skel::SkMetrics mix;
    double invocations = enr;
    if (n.kind == BetKind::LibCall) {
      mix = builtinMix(n.builtinIndex, libMixes);
      b = model.libCallTime(mix);
      invocations *= n.callsPerExec;
    } else if (n.kind == BetKind::Comm) {
      // postal model: alpha + bytes / beta, booked as memory time
      const auto& net = model.machine().network;
      double seconds = net.linkLatencySec + n.commBytes / (net.linkBandwidthGBs * 1e9);
      b.tmCycles = seconds * model.machine().freqGHz * 1e9;
    } else {
      collectBlockMix(n, n, 1.0, mix);
      int ways = 1;
      if (n.kind == BetKind::Loop && n.parallel) {
        // a parallel loop spreads its iterations over the cores; per-
        // invocation time shrinks accordingly (capped by the trip count)
        ways = static_cast<int>(
            std::min<double>(model.machine().cores, std::max(1.0, n.numIter)));
      }
      b = model.blockTime(mix, ways);
    }
    nc.tcCycles = b.tcCycles;
    nc.tmCycles = b.tmCycles;
    nc.toCycles = b.toCycles;
    nc.totalSeconds = model.machine().cyclesToSeconds(b.totalCycles() * invocations);

    uint32_t origin = n.kind == BetKind::LibCall
                          ? vm::libRegion(n.builtinIndex)
                          : n.origin;
    BlockCost& bc = result.blocks[origin];
    bc.origin = origin;
    if (n.kind == BetKind::Comm) {
      bc.isComm = true;
      bc.commBytes = n.commBytes;
    }
    double w = invocations;
    bc.perInvocation += mix.scaled(w);  // normalized after the loop
    bc.enr += w;
    bc.tcSeconds += model.machine().cyclesToSeconds(b.tcCycles * w);
    bc.tmSeconds += model.machine().cyclesToSeconds(b.tmCycles * w);
    bc.toSeconds += model.machine().cyclesToSeconds(b.toCycles * w);
    bc.seconds += nc.totalSeconds;
  }

  if (ann) (*ann)[&n] = nc;
  for (const auto& kid : n.kids) {
    walkConst(*kid, enr, model, libMixes, result, ann);
  }
}

}  // namespace

ModelResult estimate(const bet::Bet& bet, const Roofline& model, const vm::Module* mod,
                     const LibMixes* libMixes, BetAnnotations* annotations) {
  SKOPE_SPAN("roofline/estimate");
  ModelResult result;
  result.machineName = model.machine().name;
  if (!bet.root) return result;

  walkConst(*bet.root, 1.0, model, libMixes, result, annotations);

  // Pass 3: normalize aggregates, attach labels, compute fractions.
  for (auto& [origin, bc] : result.blocks) {
    if (bc.enr > 0) bc.perInvocation = bc.perInvocation.scaled(1.0 / bc.enr);
    if (bc.isComm) {
      bc.label = format("comm@%u", origin);
      bc.staticInstrs = 1;  // a message is one source statement
      result.totalSeconds += bc.seconds;
      continue;
    }
    if (mod) {
      bc.label = vm::regionLabel(*mod, origin);
      bc.staticInstrs = vm::regionStaticInstrs(*mod, origin);
    } else {
      bc.label = vm::isLibRegion(origin)
                     ? "lib:" + std::string(minic::builtinTable()[static_cast<size_t>(
                                                vm::libRegionBuiltin(origin))]
                                                .name)
                     : format("block@%u", origin);
      // Without a compiled module, approximate code size by the mix size.
      bc.staticInstrs = static_cast<size_t>(bc.perInvocation.totalFlops() +
                                            bc.perInvocation.iops +
                                            bc.perInvocation.accesses()) +
                        1;
    }
    result.totalSeconds += bc.seconds;
  }
  for (auto& [origin, bc] : result.blocks) {
    bc.fraction = result.totalSeconds > 0 ? bc.seconds / result.totalSeconds : 0;
  }
  return result;
}

ModelResult estimate(bet::Bet& bet, const Roofline& model, const vm::Module* mod,
                     const LibMixes* libMixes) {
  BetAnnotations ann;
  const bet::Bet& shared = bet;
  ModelResult result = estimate(shared, model, mod, libMixes, &ann);
  if (bet.root) {
    bet.root->visitMut([&](BetNode& n) {
      const NodeCost& nc = ann.at(&n);
      n.enr = nc.enr;
      n.tcCycles = nc.tcCycles;
      n.tmCycles = nc.tmCycles;
      n.toCycles = nc.toCycles;
      n.totalSeconds = nc.totalSeconds;
    });
  }
  return result;
}

}  // namespace skope::roofline
