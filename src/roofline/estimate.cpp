#include "roofline/estimate.h"

#include <algorithm>
#include <cmath>

#include "minic/builtins.h"
#include "support/diagnostics.h"
#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::roofline {

using bet::BetKind;
using bet::BetNode;

namespace {

/// Sums the per-invocation mix of a block: direct comp children plus comp
/// statements inside branch arms, weighted by arm probabilities. Stops at
/// nested blocks (they are charged separately).
void collectBlockMix(const BetNode& block, const BetNode& node, double factor,
                     skel::SkMetrics& out) {
  for (const auto& kid : node.kids) {
    switch (kid->kind) {
      case BetKind::Comp:
        out += kid->metrics.scaled(factor * kid->prob);
        break;
      case BetKind::BranchThen:
      case BetKind::BranchElse:
        collectBlockMix(block, *kid, factor * kid->prob, out);
        break;
      default:
        break;  // nested Func / Loop / LibCall: separate blocks
    }
  }
}

skel::SkMetrics builtinMix(int builtinIndex, const LibMixes* libMixes) {
  if (libMixes) {
    auto it = libMixes->find(builtinIndex);
    if (it != libMixes->end()) return it->second;
  }
  const auto& m = minic::builtinTable()[static_cast<size_t>(builtinIndex)].mix;
  return skel::SkMetrics{m.flops, 0, m.iops, m.loads, m.stores};
}

/// One preorder walk computing ENR top-down and projecting each block as it
/// is reached — reads the BET, writes only `result` / `ann`. Keeping the
/// visit order identical to the historical two-pass visitMut implementation
/// means the floating-point aggregation order (and hence the bits of every
/// sum) is unchanged, which the sweep determinism tests rely on.
void walkConst(const BetNode& n, double parentEnr, const Roofline& model,
               const LibMixes* libMixes, ModelResult& result, BetAnnotations* ann) {
  double enr = n.numIter * n.prob * parentEnr;
  NodeCost nc;
  nc.enr = enr;

  if (n.isBlock()) {
    Breakdown b;
    skel::SkMetrics mix;
    double invocations = enr;
    if (n.kind == BetKind::LibCall) {
      mix = builtinMix(n.builtinIndex, libMixes);
      b = model.libCallTime(mix);
      invocations *= n.callsPerExec;
    } else if (n.kind == BetKind::Comm) {
      // postal model: alpha + bytes / beta, booked as memory time
      const auto& net = model.machine().network;
      double seconds = net.linkLatencySec + n.commBytes / (net.linkBandwidthGBs * 1e9);
      b.tmCycles = seconds * model.machine().freqGHz * 1e9;
    } else {
      collectBlockMix(n, n, 1.0, mix);
      int ways = 1;
      if (n.kind == BetKind::Loop && n.parallel) {
        // a parallel loop spreads its iterations over the cores; per-
        // invocation time shrinks accordingly (capped by the trip count)
        ways = static_cast<int>(
            std::min<double>(model.machine().cores, std::max(1.0, n.numIter)));
      }
      b = model.blockTime(mix, ways);
    }
    nc.tcCycles = b.tcCycles;
    nc.tmCycles = b.tmCycles;
    nc.toCycles = b.toCycles;
    nc.totalSeconds = model.machine().cyclesToSeconds(b.totalCycles() * invocations);

    uint32_t origin = n.kind == BetKind::LibCall
                          ? vm::libRegion(n.builtinIndex)
                          : n.origin;
    BlockCost& bc = result.blocks[origin];
    bc.origin = origin;
    if (n.kind == BetKind::Comm) {
      bc.isComm = true;
      bc.commBytes = n.commBytes;
    }
    double w = invocations;
    bc.perInvocation += mix.scaled(w);  // normalized after the loop
    bc.enr += w;
    bc.tcSeconds += model.machine().cyclesToSeconds(b.tcCycles * w);
    bc.tmSeconds += model.machine().cyclesToSeconds(b.tmCycles * w);
    bc.toSeconds += model.machine().cyclesToSeconds(b.toCycles * w);
    bc.seconds += nc.totalSeconds;
  }

  if (ann) (*ann)[&n] = nc;
  for (const auto& kid : n.kids) {
    walkConst(*kid, enr, model, libMixes, result, ann);
  }
}

/// Finalization for the one-model path: normalize aggregates, attach labels,
/// compute the total and per-block fractions. The batched estimator runs the
/// same expressions with the machine-independent parts precomputed per slot
/// (BatchedEstimator::finals_); the equivalence suite pins the two outputs
/// byte-identical.
void finalizeModel(ModelResult& result, const vm::Module* mod) {
  for (auto& [origin, bc] : result.blocks) {
    if (bc.enr > 0) bc.perInvocation = bc.perInvocation.scaled(1.0 / bc.enr);
    if (bc.isComm) {
      bc.label = format("comm@%u", origin);
      bc.staticInstrs = 1;  // a message is one source statement
      result.totalSeconds += bc.seconds;
      continue;
    }
    if (mod) {
      bc.label = vm::regionLabel(*mod, origin);
      bc.staticInstrs = vm::regionStaticInstrs(*mod, origin);
    } else {
      bc.label = vm::isLibRegion(origin)
                     ? "lib:" + std::string(minic::builtinTable()[static_cast<size_t>(
                                                vm::libRegionBuiltin(origin))]
                                                .name)
                     : format("block@%u", origin);
      // Without a compiled module, approximate code size by the mix size.
      bc.staticInstrs = static_cast<size_t>(bc.perInvocation.totalFlops() +
                                            bc.perInvocation.iops +
                                            bc.perInvocation.accesses()) +
                        1;
    }
    result.totalSeconds += bc.seconds;
  }
  for (auto& [origin, bc] : result.blocks) {
    bc.fraction = result.totalSeconds > 0 ? bc.seconds / result.totalSeconds : 0;
  }
}

}  // namespace

ModelResult estimate(const bet::Bet& bet, const Roofline& model, const vm::Module* mod,
                     const LibMixes* libMixes, BetAnnotations* annotations) {
  SKOPE_SPAN("roofline/estimate");
  ModelResult result;
  result.machineName = model.machine().name;
  if (!bet.root) return result;

  walkConst(*bet.root, 1.0, model, libMixes, result, annotations);
  finalizeModel(result, mod);
  return result;
}

BatchedEstimator::BatchedEstimator(const bet::Bet& bet, const vm::Module* mod,
                                   const LibMixes* libMixes)
    : mod_(mod) {
  SKOPE_SPAN("roofline/factorize");
  bet::FlatBet flat = bet::flatten(bet);
  std::vector<double> enr(flat.size());
  std::unordered_map<uint32_t, uint32_t> slotOf;
  for (size_t i = 0; i < flat.size(); ++i) {
    const BetNode& n = *flat.nodes[i];
    // The same multiplication chain walkConst computes top-down, so every
    // term's ENR carries identical bits.
    double parentEnr = flat.parent[i] < 0 ? 1.0 : enr[static_cast<size_t>(flat.parent[i])];
    enr[i] = n.numIter * n.prob * parentEnr;
    if (!n.isBlock()) continue;

    BlockTerm term;
    uint32_t origin = n.origin;
    double invocations = enr[i];
    if (n.kind == BetKind::LibCall) {
      term.kind = TermKind::LibCall;
      term.mix = builtinMix(n.builtinIndex, libMixes);
      invocations *= n.callsPerExec;
      origin = vm::libRegion(n.builtinIndex);
    } else if (n.kind == BetKind::Comm) {
      term.kind = TermKind::Comm;
      term.commBytes = n.commBytes;
    } else {
      collectBlockMix(n, n, 1.0, term.mix);
      term.kind = n.kind == BetKind::Loop && n.parallel ? TermKind::ParallelLoop
                                                        : TermKind::Block;
      term.numIter = n.numIter;
    }
    term.invocations = invocations;

    auto [it, inserted] = slotOf.emplace(origin, static_cast<uint32_t>(slots_.size()));
    if (inserted) slots_.emplace_back();
    term.slot = it->second;
    OriginAccum& oa = slots_[term.slot];
    oa.origin = origin;
    if (n.kind == BetKind::Comm) {
      oa.isComm = true;
      oa.commBytes = n.commBytes;
    }
    // Machine-independent aggregates accumulate here ONCE, in the same
    // preorder walkConst uses, instead of once per config.
    oa.perInvocation += term.mix.scaled(invocations);
    oa.enr += invocations;
    terms_.push_back(std::move(term));
  }

  // Precompute finalization once: labels, static sizes and the normalized
  // mean mix are machine-independent, so computing them per config (as
  // finalizeModel does for the one-model path) is pure repetition. The exact
  // same expressions run here, so the values — including the normalized
  // perInvocation bits — match finalizeModel's per config.
  finals_.reserve(slots_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    const OriginAccum& oa = slots_[s];
    SlotFinal f;
    f.origin = oa.origin;
    f.slot = s;
    f.enr = oa.enr;
    f.perInvocation = oa.enr > 0 ? oa.perInvocation.scaled(1.0 / oa.enr)
                                 : oa.perInvocation;
    f.isComm = oa.isComm;
    f.commBytes = oa.commBytes;
    if (oa.isComm) {
      f.label = format("comm@%u", oa.origin);
      f.staticInstrs = 1;  // a message is one source statement
    } else if (mod_) {
      f.label = vm::regionLabel(*mod_, oa.origin);
      f.staticInstrs = vm::regionStaticInstrs(*mod_, oa.origin);
    } else {
      f.label = vm::isLibRegion(oa.origin)
                    ? "lib:" + std::string(minic::builtinTable()[static_cast<size_t>(
                                               vm::libRegionBuiltin(oa.origin))]
                                               .name)
                    : format("block@%u", oa.origin);
      // Without a compiled module, approximate code size by the mix size.
      f.staticInstrs = static_cast<size_t>(f.perInvocation.totalFlops() +
                                           f.perInvocation.iops +
                                           f.perInvocation.accesses()) +
                       1;
    }
    finals_.push_back(std::move(f));
  }
  std::sort(finals_.begin(), finals_.end(),
            [](const SlotFinal& a, const SlotFinal& b) { return a.origin < b.origin; });
}

namespace {

/// Per-config roofline coefficients in structure-of-arrays form: the Simd
/// combine reads one contiguous vector per coefficient so the per-term lane
/// loop is a straight stream of independent mul/div/min/max over configs —
/// exactly what the auto-vectorizer wants.
struct ConfigLanes {
  std::vector<double> fpCost, fpDivCost, iopCost, accCost;
  std::vector<double> memPerAccess, dramRatio, bwPerCycle;
  std::vector<double> l1Lat;       ///< libCallTime's latency term
  std::vector<double> coresD;      ///< machine cores as double (parallel ways)
  std::vector<double> freqGHz;     ///< for the Comm postal model
  std::vector<double> freqHz;      ///< freqGHz * 1e9 (cyclesToSeconds divisor)
  std::vector<double> commAlpha;   ///< network link latency, seconds
  std::vector<double> commBeta;    ///< network bandwidth, bytes/second

  explicit ConfigLanes(const std::vector<Roofline>& models) {
    const size_t n = models.size();
    for (auto* v : {&fpCost, &fpDivCost, &iopCost, &accCost, &memPerAccess,
                    &dramRatio, &bwPerCycle, &l1Lat, &coresD, &freqGHz, &freqHz,
                    &commAlpha, &commBeta}) {
      v->resize(n);
    }
    for (size_t c = 0; c < n; ++c) {
      const Roofline::Coefficients k = models[c].coefficients();
      const MachineModel& m = models[c].machine();
      fpCost[c] = k.fpCost;
      fpDivCost[c] = k.fpDivCost;
      iopCost[c] = k.iopCost;
      accCost[c] = k.accessIssueCost;
      memPerAccess[c] = k.memPerAccess;
      dramRatio[c] = k.dramRatio;
      bwPerCycle[c] = k.bytesPerCycle;
      l1Lat[c] = m.l1.latencyCycles;
      coresD[c] = m.cores;
      freqGHz[c] = m.freqGHz;
      // The same single product cyclesToSeconds computes, so dividing by the
      // precomputed value carries identical bits.
      freqHz[c] = m.freqGHz * 1e9;
      commAlpha[c] = m.network.linkLatencySec;
      commBeta[c] = m.network.linkBandwidthGBs * 1e9;
    }
  }
};

/// Accumulation targets for one term row (slot-contiguous SoA partials).
struct RowAccum {
  double* tc;
  double* tm;
  double* to;
  double* tot;
};

// The lane loops take every array as a __restrict function parameter: GCC
// only honors restrict qualifiers on parameters (not locals or struct
// members), and without them the four accumulator stores cannot be
// disambiguated from the coefficient loads, which blocks vectorization
// entirely ("couldn't vectorize loop: no vectype"). The combine*Row wrappers
// below unpack ConfigLanes/RowAccum and forward here.

/// Lane loop for Block terms — the hot row kind. Every lane performs the
/// same IEEE operation sequence Roofline::blockTime(mix, 1) performs for its
/// config (ways == 1, so the /ways divisions — exact no-ops — are elided),
/// then accumulates through the same cyclesToSeconds division. Uniform /
/// Overlap are per-batch template parameters so the loop body is branch-free.
template <bool Uniform, bool Overlap>
void blockLanes(const double* __restrict fpCost, const double* __restrict fpDivCost,
                const double* __restrict iopCost, const double* __restrict accCost,
                const double* __restrict memPerAccess,
                const double* __restrict dramRatio, const double* __restrict bwPerCycle,
                const double* __restrict freqHz, double flops, double fl, double fd,
                double iops, double acc, double bytes, double delta, double w,
                double* __restrict tcS, double* __restrict tmS,
                double* __restrict toS, double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    double tc = Uniform ? flops * fpCost[c] : fl * fpCost[c] + fd * fpDivCost[c];
    tc = tc + (iops * iopCost[c] + acc * accCost[c]);
    double tm = std::max(acc * memPerAccess[c], bytes * dramRatio[c] / bwPerCycle[c]);
    double to = Overlap ? std::min(tc, tm) * delta : std::min(tc, tm);
    const double fh = freqHz[c];
    tcS[c] += tc * w / fh;
    tmS[c] += tm * w / fh;
    toS[c] += to * w / fh;
    totS[c] += (tc + tm - to) * w / fh;
  }
}

template <bool Uniform, bool Overlap>
void combineBlockRow(const ConfigLanes& L, const skel::SkMetrics& mix, double w,
                     RowAccum row, size_t n) {
  const double flops = mix.totalFlops();
  const double delta = 1.0 - 1.0 / std::max(1.0, flops);
  blockLanes<Uniform, Overlap>(
      L.fpCost.data(), L.fpDivCost.data(), L.iopCost.data(), L.accCost.data(),
      L.memPerAccess.data(), L.dramRatio.data(), L.bwPerCycle.data(),
      L.freqHz.data(), flops, mix.flops, mix.fpdivs, mix.iops, mix.accesses(),
      mix.bytes(), delta, w, row.tc, row.tm, row.to, row.tot, n);
}

/// Parallel-loop terms: same as a Block row but spread over
/// ways = trunc(min(cores, max(1, numIter))) lanes-per-config. The floor()
/// reproduces blockTime's int cast (the value is always in [1, cores], so
/// the method's extra clamp never fires).
template <bool Uniform, bool Overlap>
void parallelLanes(const double* __restrict fpCost, const double* __restrict fpDivCost,
                   const double* __restrict iopCost, const double* __restrict accCost,
                   const double* __restrict memPerAccess,
                   const double* __restrict dramRatio,
                   const double* __restrict bwPerCycle, const double* __restrict coresD,
                   const double* __restrict freqHz, double flops, double fl, double fd,
                   double iops, double acc, double bytes, double delta,
                   double iterFloor, double w, double* __restrict tcS,
                   double* __restrict tmS, double* __restrict toS,
                   double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    // blockTime truncates its ways operand through an int cast and clamps it
    // to [1, cores]; min() already bounds the value above by cores, and the
    // outer max() reproduces the lower clamp for degenerate cores <= 0
    // machines. The int round-trip IS the reference semantics — and unlike
    // std::floor it vectorizes on baseline SSE2 (cvttpd2dq / cvtdq2pd).
    const double ways = std::max(
        1.0, static_cast<double>(static_cast<int>(std::min(coresD[c], iterFloor))));
    double tc = Uniform ? flops * fpCost[c] : fl * fpCost[c] + fd * fpDivCost[c];
    tc = tc + (iops * iopCost[c] + acc * accCost[c]);
    tc /= ways;
    double tm = std::max(acc * memPerAccess[c] / ways,
                         bytes * dramRatio[c] / (bwPerCycle[c] * ways));
    double to = Overlap ? std::min(tc, tm) * delta : std::min(tc, tm);
    const double fh = freqHz[c];
    tcS[c] += tc * w / fh;
    tmS[c] += tm * w / fh;
    toS[c] += to * w / fh;
    totS[c] += (tc + tm - to) * w / fh;
  }
}

template <bool Uniform, bool Overlap>
void combineParallelRow(const ConfigLanes& L, const skel::SkMetrics& mix, double w,
                        double numIter, RowAccum row, size_t n) {
  const double flops = mix.totalFlops();
  const double delta = 1.0 - 1.0 / std::max(1.0, flops);
  parallelLanes<Uniform, Overlap>(
      L.fpCost.data(), L.fpDivCost.data(), L.iopCost.data(), L.accCost.data(),
      L.memPerAccess.data(), L.dramRatio.data(), L.bwPerCycle.data(),
      L.coresD.data(), L.freqHz.data(), flops, mix.flops, mix.fpdivs, mix.iops,
      mix.accesses(), mix.bytes(), delta, std::max(1.0, numIter), w, row.tc,
      row.tm, row.to, row.tot, n);
}

/// Library-call terms (Roofline::libCallTime's operation sequence).
void libCallLanes(const double* __restrict fpCost, const double* __restrict iopCost,
                  const double* __restrict accCost, const double* __restrict l1Lat,
                  const double* __restrict freqHz, double flops, double iops,
                  double acc, double w, double* __restrict tcS,
                  double* __restrict tmS, double* __restrict toS,
                  double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double tc = flops * fpCost[c] * 1.5 + iops * iopCost[c] + acc * accCost[c];
    const double tm = acc * l1Lat[c] * 0.5;
    const double fh = freqHz[c];
    tcS[c] += tc * w / fh;
    tmS[c] += tm * w / fh;
    toS[c] += 0.0 * w / fh;
    totS[c] += (tc + tm - 0.0) * w / fh;
  }
}

void combineLibCallRow(const ConfigLanes& L, const skel::SkMetrics& mix, double w,
                       RowAccum row, size_t n) {
  libCallLanes(L.fpCost.data(), L.iopCost.data(), L.accCost.data(), L.l1Lat.data(),
               L.freqHz.data(), mix.totalFlops(), mix.iops, mix.accesses(), w,
               row.tc, row.tm, row.to, row.tot, n);
}

/// Comm terms (the postal model, booked as memory time).
void commLanes(const double* __restrict commAlpha, const double* __restrict commBeta,
               const double* __restrict freqGHz, const double* __restrict freqHz,
               double commBytes, double w, double* __restrict tcS,
               double* __restrict tmS, double* __restrict toS,
               double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double seconds = commAlpha[c] + commBytes / commBeta[c];
    const double tm = seconds * freqGHz[c] * 1e9;
    const double fh = freqHz[c];
    tcS[c] += 0.0 * w / fh;
    tmS[c] += tm * w / fh;
    toS[c] += 0.0 * w / fh;
    totS[c] += (0.0 + tm - 0.0) * w / fh;
  }
}

void combineCommRow(const ConfigLanes& L, double commBytes, double w, RowAccum row,
                    size_t n) {
  commLanes(L.commAlpha.data(), L.commBeta.data(), L.freqGHz.data(), L.freqHz.data(),
            commBytes, w, row.tc, row.tm, row.to, row.tot, n);
}

// Totals-only lane loops for estimateTotals: the identical per-lane operation
// sequence, but only the total-seconds stream is accumulated — one store
// stream and one cyclesToSeconds division per lane instead of four. The
// tc/tm/to intermediates stay in registers, so the bits of the accumulated
// total are unchanged.

template <bool Uniform, bool Overlap>
void blockTotLanes(const double* __restrict fpCost, const double* __restrict fpDivCost,
                   const double* __restrict iopCost, const double* __restrict accCost,
                   const double* __restrict memPerAccess,
                   const double* __restrict dramRatio,
                   const double* __restrict bwPerCycle, const double* __restrict freqHz,
                   double flops, double fl, double fd, double iops, double acc,
                   double bytes, double delta, double w, double* __restrict totS,
                   size_t n) {
  for (size_t c = 0; c < n; ++c) {
    double tc = Uniform ? flops * fpCost[c] : fl * fpCost[c] + fd * fpDivCost[c];
    tc = tc + (iops * iopCost[c] + acc * accCost[c]);
    double tm = std::max(acc * memPerAccess[c], bytes * dramRatio[c] / bwPerCycle[c]);
    double to = Overlap ? std::min(tc, tm) * delta : std::min(tc, tm);
    totS[c] += (tc + tm - to) * w / freqHz[c];
  }
}

template <bool Uniform, bool Overlap>
void combineBlockTot(const ConfigLanes& L, const skel::SkMetrics& mix, double w,
                     double* totS, size_t n) {
  const double flops = mix.totalFlops();
  const double delta = 1.0 - 1.0 / std::max(1.0, flops);
  blockTotLanes<Uniform, Overlap>(
      L.fpCost.data(), L.fpDivCost.data(), L.iopCost.data(), L.accCost.data(),
      L.memPerAccess.data(), L.dramRatio.data(), L.bwPerCycle.data(),
      L.freqHz.data(), flops, mix.flops, mix.fpdivs, mix.iops, mix.accesses(),
      mix.bytes(), delta, w, totS, n);
}

template <bool Uniform, bool Overlap>
void parallelTotLanes(const double* __restrict fpCost,
                      const double* __restrict fpDivCost,
                      const double* __restrict iopCost, const double* __restrict accCost,
                      const double* __restrict memPerAccess,
                      const double* __restrict dramRatio,
                      const double* __restrict bwPerCycle,
                      const double* __restrict coresD, const double* __restrict freqHz,
                      double flops, double fl, double fd, double iops, double acc,
                      double bytes, double delta, double iterFloor, double w,
                      double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double ways = std::max(
        1.0, static_cast<double>(static_cast<int>(std::min(coresD[c], iterFloor))));
    double tc = Uniform ? flops * fpCost[c] : fl * fpCost[c] + fd * fpDivCost[c];
    tc = tc + (iops * iopCost[c] + acc * accCost[c]);
    tc /= ways;
    double tm = std::max(acc * memPerAccess[c] / ways,
                         bytes * dramRatio[c] / (bwPerCycle[c] * ways));
    double to = Overlap ? std::min(tc, tm) * delta : std::min(tc, tm);
    totS[c] += (tc + tm - to) * w / freqHz[c];
  }
}

template <bool Uniform, bool Overlap>
void combineParallelTot(const ConfigLanes& L, const skel::SkMetrics& mix, double w,
                        double numIter, double* totS, size_t n) {
  const double flops = mix.totalFlops();
  const double delta = 1.0 - 1.0 / std::max(1.0, flops);
  parallelTotLanes<Uniform, Overlap>(
      L.fpCost.data(), L.fpDivCost.data(), L.iopCost.data(), L.accCost.data(),
      L.memPerAccess.data(), L.dramRatio.data(), L.bwPerCycle.data(),
      L.coresD.data(), L.freqHz.data(), flops, mix.flops, mix.fpdivs, mix.iops,
      mix.accesses(), mix.bytes(), delta, std::max(1.0, numIter), w, totS, n);
}

void libCallTotLanes(const double* __restrict fpCost, const double* __restrict iopCost,
                     const double* __restrict accCost, const double* __restrict l1Lat,
                     const double* __restrict freqHz, double flops, double iops,
                     double acc, double w, double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double tc = flops * fpCost[c] * 1.5 + iops * iopCost[c] + acc * accCost[c];
    const double tm = acc * l1Lat[c] * 0.5;
    totS[c] += (tc + tm - 0.0) * w / freqHz[c];
  }
}

void combineLibCallTot(const ConfigLanes& L, const skel::SkMetrics& mix, double w,
                       double* totS, size_t n) {
  libCallTotLanes(L.fpCost.data(), L.iopCost.data(), L.accCost.data(),
                  L.l1Lat.data(), L.freqHz.data(), mix.totalFlops(), mix.iops,
                  mix.accesses(), w, totS, n);
}

void commTotLanes(const double* __restrict commAlpha, const double* __restrict commBeta,
                  const double* __restrict freqGHz, const double* __restrict freqHz,
                  double commBytes, double w, double* __restrict totS, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double seconds = commAlpha[c] + commBytes / commBeta[c];
    const double tm = seconds * freqGHz[c] * 1e9;
    totS[c] += (0.0 + tm - 0.0) * w / freqHz[c];
  }
}

void combineCommTot(const ConfigLanes& L, double commBytes, double w, double* totS,
                    size_t n) {
  commTotLanes(L.commAlpha.data(), L.commBeta.data(), L.freqGHz.data(),
               L.freqHz.data(), commBytes, w, totS, n);
}

/// The Simd combine is only eligible when every config shares the two
/// roofline behavior flags (they select the operation sequence itself, not
/// just its operands — per-lane flags would need masked code paths for no
/// real use case: sweeps vary machines, not model variants).
bool uniformFlags(const std::vector<Roofline>& models, bool& uniformFlops,
                  bool& modelOverlap) {
  uniformFlops = models.front().params().uniformFlops;
  modelOverlap = models.front().params().modelOverlap;
  for (const Roofline& r : models) {
    if (r.params().uniformFlops != uniformFlops ||
        r.params().modelOverlap != modelOverlap) {
      return false;
    }
  }
  return true;
}

}  // namespace

int BatchedEstimator::simdLanes() {
#if defined(__AVX512F__)
  return 8;
#elif defined(__AVX__)
  return 4;
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64) || defined(__ARM_NEON)
  return 2;
#else
  return 1;
#endif
}

std::vector<ModelResult> BatchedEstimator::estimateGrid(
    const std::vector<Roofline>& models, const CancelToken& cancel,
    CombineMode mode) const {
  SKOPE_SPAN("roofline/estimate-grid");
  const size_t numConfigs = models.size();
  const size_t numSlots = slots_.size();
  std::vector<ModelResult> out(numConfigs);
  for (size_t c = 0; c < numConfigs; ++c) {
    out[c].machineName = models[c].machine().name;
  }
  if (numConfigs == 0 || terms_.empty()) return out;

  bool uniformFlops = true;
  bool modelOverlap = true;
  const bool eligible = uniformFlags(models, uniformFlops, modelOverlap);
  const bool simd =
      mode == CombineMode::Simd || (mode == CombineMode::Auto && eligible);
  if (simd && !eligible) {
    throw Error("CombineMode::Simd requires every config to share the "
                "uniformFlops/modelOverlap roofline flags");
  }
  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::current();
    reg.counter("roofline/batched-nodes").add(terms_.size() * numConfigs);
    reg.gauge("roofline/simd-lanes").set(simd ? simdLanes() : 1);
  }

  // Node-major combine: outer loop over block terms, inner loop over configs,
  // partial sums in config-contiguous structure-of-arrays vectors. Per
  // (config, origin) the floating-point accumulation order is the preorder
  // walkConst uses, so every sum matches the scalar path bit for bit.
  std::vector<double> tcSec(numSlots * numConfigs, 0);
  std::vector<double> tmSec(numSlots * numConfigs, 0);
  std::vector<double> toSec(numSlots * numConfigs, 0);
  std::vector<double> totSec(numSlots * numConfigs, 0);
  if (simd) {
    const ConfigLanes lanes(models);
    // Dispatch the flag combination once; each term row then runs one
    // branch-free lane loop over all configs.
    auto blockRow = uniformFlops
                        ? (modelOverlap ? combineBlockRow<true, true>
                                        : combineBlockRow<true, false>)
                        : (modelOverlap ? combineBlockRow<false, true>
                                        : combineBlockRow<false, false>);
    auto parallelRow = uniformFlops
                           ? (modelOverlap ? combineParallelRow<true, true>
                                           : combineParallelRow<true, false>)
                           : (modelOverlap ? combineParallelRow<false, true>
                                           : combineParallelRow<false, false>);
    for (const BlockTerm& t : terms_) {
      cancel.throwIfExpired("roofline/estimate-grid");
      RowAccum row{&tcSec[t.slot * numConfigs], &tmSec[t.slot * numConfigs],
                   &toSec[t.slot * numConfigs], &totSec[t.slot * numConfigs]};
      switch (t.kind) {
        case TermKind::Block:
          blockRow(lanes, t.mix, t.invocations, row, numConfigs);
          break;
        case TermKind::ParallelLoop:
          parallelRow(lanes, t.mix, t.invocations, t.numIter, row, numConfigs);
          break;
        case TermKind::LibCall:
          combineLibCallRow(lanes, t.mix, t.invocations, row, numConfigs);
          break;
        case TermKind::Comm:
          combineCommRow(lanes, t.commBytes, t.invocations, row, numConfigs);
          break;
      }
    }
  } else {
  for (const BlockTerm& t : terms_) {
    // One poll per term row (a row is numConfigs combine calls) — far off
    // the inner loop, still bounds interruption to one row of work.
    cancel.throwIfExpired("roofline/estimate-grid");
    double* tc = &tcSec[t.slot * numConfigs];
    double* tm = &tmSec[t.slot * numConfigs];
    double* to = &toSec[t.slot * numConfigs];
    double* tot = &totSec[t.slot * numConfigs];
    const double w = t.invocations;
    for (size_t c = 0; c < numConfigs; ++c) {
      const Roofline& model = models[c];
      const MachineModel& m = model.machine();
      Breakdown b;
      switch (t.kind) {
        case TermKind::LibCall:
          b = model.libCallTime(t.mix);
          break;
        case TermKind::Comm: {
          // postal model: alpha + bytes / beta, booked as memory time
          double seconds =
              m.network.linkLatencySec + t.commBytes / (m.network.linkBandwidthGBs * 1e9);
          b.tmCycles = seconds * m.freqGHz * 1e9;
          break;
        }
        case TermKind::ParallelLoop: {
          int ways =
              static_cast<int>(std::min<double>(m.cores, std::max(1.0, t.numIter)));
          b = model.blockTime(t.mix, ways);
          break;
        }
        case TermKind::Block:
          b = model.blockTime(t.mix, 1);
          break;
      }
      tc[c] += m.cyclesToSeconds(b.tcCycles * w);
      tm[c] += m.cyclesToSeconds(b.tmCycles * w);
      to[c] += m.cyclesToSeconds(b.toCycles * w);
      tot[c] += m.cyclesToSeconds(b.totalCycles() * w);
    }
  }
  }

  // Finalization with the per-slot products precomputed by the constructor:
  // per config this is one hinted map insert plus plain field copies per
  // slot. finals_ is in ascending-origin order, so the inserts are O(1)
  // amortized and totalSeconds accumulates in map-iteration order — the
  // order finalizeModel uses — keeping the sum bit-identical to the scalar
  // path.
  for (size_t c = 0; c < numConfigs; ++c) {
    ModelResult& r = out[c];
    for (const SlotFinal& f : finals_) {
      BlockCost& bc = r.blocks.try_emplace(r.blocks.end(), f.origin)->second;
      bc.origin = f.origin;
      bc.label = f.label;
      bc.enr = f.enr;
      bc.perInvocation = f.perInvocation;
      bc.staticInstrs = f.staticInstrs;
      bc.isComm = f.isComm;
      bc.commBytes = f.commBytes;
      bc.tcSeconds = tcSec[f.slot * numConfigs + c];
      bc.tmSeconds = tmSec[f.slot * numConfigs + c];
      bc.toSeconds = toSec[f.slot * numConfigs + c];
      bc.seconds = totSec[f.slot * numConfigs + c];
      r.totalSeconds += bc.seconds;
    }
    for (auto& [origin, bc] : r.blocks) {
      bc.fraction = r.totalSeconds > 0 ? bc.seconds / r.totalSeconds : 0;
    }
  }
  return out;
}

std::vector<double> BatchedEstimator::estimateTotals(
    const std::vector<Roofline>& models, const CancelToken& cancel,
    CombineMode mode) const {
  SKOPE_SPAN("roofline/estimate-totals");
  const size_t numConfigs = models.size();
  const size_t numSlots = slots_.size();
  std::vector<double> out(numConfigs, 0.0);
  if (numConfigs == 0 || terms_.empty()) return out;

  bool uniformFlops = true;
  bool modelOverlap = true;
  const bool eligible = uniformFlags(models, uniformFlops, modelOverlap);
  const bool simd =
      mode == CombineMode::Simd || (mode == CombineMode::Auto && eligible);
  if (simd && !eligible) {
    throw Error("CombineMode::Simd requires every config to share the "
                "uniformFlops/modelOverlap roofline flags");
  }
  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::current();
    reg.counter("roofline/batched-nodes").add(terms_.size() * numConfigs);
    reg.gauge("roofline/simd-lanes").set(simd ? simdLanes() : 1);
  }

  std::vector<double> totSec(numSlots * numConfigs, 0.0);
  if (simd) {
    const ConfigLanes lanes(models);
    auto blockTot = uniformFlops
                        ? (modelOverlap ? combineBlockTot<true, true>
                                        : combineBlockTot<true, false>)
                        : (modelOverlap ? combineBlockTot<false, true>
                                        : combineBlockTot<false, false>);
    auto parallelTot = uniformFlops
                           ? (modelOverlap ? combineParallelTot<true, true>
                                           : combineParallelTot<true, false>)
                           : (modelOverlap ? combineParallelTot<false, true>
                                           : combineParallelTot<false, false>);
    for (const BlockTerm& t : terms_) {
      cancel.throwIfExpired("roofline/estimate-totals");
      double* tot = &totSec[t.slot * numConfigs];
      switch (t.kind) {
        case TermKind::Block:
          blockTot(lanes, t.mix, t.invocations, tot, numConfigs);
          break;
        case TermKind::ParallelLoop:
          parallelTot(lanes, t.mix, t.invocations, t.numIter, tot, numConfigs);
          break;
        case TermKind::LibCall:
          combineLibCallTot(lanes, t.mix, t.invocations, tot, numConfigs);
          break;
        case TermKind::Comm:
          combineCommTot(lanes, t.commBytes, t.invocations, tot, numConfigs);
          break;
      }
    }
  } else {
    for (const BlockTerm& t : terms_) {
      cancel.throwIfExpired("roofline/estimate-totals");
      double* tot = &totSec[t.slot * numConfigs];
      const double w = t.invocations;
      for (size_t c = 0; c < numConfigs; ++c) {
        const Roofline& model = models[c];
        const MachineModel& m = model.machine();
        Breakdown b;
        switch (t.kind) {
          case TermKind::LibCall:
            b = model.libCallTime(t.mix);
            break;
          case TermKind::Comm: {
            double seconds = m.network.linkLatencySec +
                             t.commBytes / (m.network.linkBandwidthGBs * 1e9);
            b.tmCycles = seconds * m.freqGHz * 1e9;
            break;
          }
          case TermKind::ParallelLoop: {
            int ways =
                static_cast<int>(std::min<double>(m.cores, std::max(1.0, t.numIter)));
            b = model.blockTime(t.mix, ways);
            break;
          }
          case TermKind::Block:
            b = model.blockTime(t.mix, 1);
            break;
        }
        tot[c] += m.cyclesToSeconds(b.totalCycles() * w);
      }
    }
  }

  // Reduce per-slot partials in ascending-origin order — the map-iteration
  // order estimateGrid's finalization uses — so every total carries bits
  // identical to ModelResult::totalSeconds.
  for (const SlotFinal& f : finals_) {
    const double* row = &totSec[static_cast<size_t>(f.slot) * numConfigs];
    for (size_t c = 0; c < numConfigs; ++c) out[c] += row[c];
  }
  return out;
}

ModelResult estimate(bet::Bet& bet, const Roofline& model, const vm::Module* mod,
                     const LibMixes* libMixes) {
  BetAnnotations ann;
  const bet::Bet& shared = bet;
  ModelResult result = estimate(shared, model, mod, libMixes, &ann);
  if (bet.root) {
    bet.root->visitMut([&](BetNode& n) {
      const NodeCost& nc = ann.at(&n);
      n.enr = nc.enr;
      n.tcCycles = nc.tcCycles;
      n.tmCycles = nc.tmCycles;
      n.toCycles = nc.toCycles;
      n.totalSeconds = nc.totalSeconds;
    });
  }
  return result;
}

}  // namespace skope::roofline
