#include "roofline/estimate.h"

#include <algorithm>

#include "minic/builtins.h"
#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::roofline {

using bet::BetKind;
using bet::BetNode;

namespace {

/// Sums the per-invocation mix of a block: direct comp children plus comp
/// statements inside branch arms, weighted by arm probabilities. Stops at
/// nested blocks (they are charged separately).
void collectBlockMix(const BetNode& block, const BetNode& node, double factor,
                     skel::SkMetrics& out) {
  for (const auto& kid : node.kids) {
    switch (kid->kind) {
      case BetKind::Comp:
        out += kid->metrics.scaled(factor * kid->prob);
        break;
      case BetKind::BranchThen:
      case BetKind::BranchElse:
        collectBlockMix(block, *kid, factor * kid->prob, out);
        break;
      default:
        break;  // nested Func / Loop / LibCall: separate blocks
    }
  }
}

skel::SkMetrics builtinMix(int builtinIndex, const LibMixes* libMixes) {
  if (libMixes) {
    auto it = libMixes->find(builtinIndex);
    if (it != libMixes->end()) return it->second;
  }
  const auto& m = minic::builtinTable()[static_cast<size_t>(builtinIndex)].mix;
  return skel::SkMetrics{m.flops, 0, m.iops, m.loads, m.stores};
}

/// One preorder walk computing ENR top-down and projecting each block as it
/// is reached — reads the BET, writes only `result` / `ann`. Keeping the
/// visit order identical to the historical two-pass visitMut implementation
/// means the floating-point aggregation order (and hence the bits of every
/// sum) is unchanged, which the sweep determinism tests rely on.
void walkConst(const BetNode& n, double parentEnr, const Roofline& model,
               const LibMixes* libMixes, ModelResult& result, BetAnnotations* ann) {
  double enr = n.numIter * n.prob * parentEnr;
  NodeCost nc;
  nc.enr = enr;

  if (n.isBlock()) {
    Breakdown b;
    skel::SkMetrics mix;
    double invocations = enr;
    if (n.kind == BetKind::LibCall) {
      mix = builtinMix(n.builtinIndex, libMixes);
      b = model.libCallTime(mix);
      invocations *= n.callsPerExec;
    } else if (n.kind == BetKind::Comm) {
      // postal model: alpha + bytes / beta, booked as memory time
      const auto& net = model.machine().network;
      double seconds = net.linkLatencySec + n.commBytes / (net.linkBandwidthGBs * 1e9);
      b.tmCycles = seconds * model.machine().freqGHz * 1e9;
    } else {
      collectBlockMix(n, n, 1.0, mix);
      int ways = 1;
      if (n.kind == BetKind::Loop && n.parallel) {
        // a parallel loop spreads its iterations over the cores; per-
        // invocation time shrinks accordingly (capped by the trip count)
        ways = static_cast<int>(
            std::min<double>(model.machine().cores, std::max(1.0, n.numIter)));
      }
      b = model.blockTime(mix, ways);
    }
    nc.tcCycles = b.tcCycles;
    nc.tmCycles = b.tmCycles;
    nc.toCycles = b.toCycles;
    nc.totalSeconds = model.machine().cyclesToSeconds(b.totalCycles() * invocations);

    uint32_t origin = n.kind == BetKind::LibCall
                          ? vm::libRegion(n.builtinIndex)
                          : n.origin;
    BlockCost& bc = result.blocks[origin];
    bc.origin = origin;
    if (n.kind == BetKind::Comm) {
      bc.isComm = true;
      bc.commBytes = n.commBytes;
    }
    double w = invocations;
    bc.perInvocation += mix.scaled(w);  // normalized after the loop
    bc.enr += w;
    bc.tcSeconds += model.machine().cyclesToSeconds(b.tcCycles * w);
    bc.tmSeconds += model.machine().cyclesToSeconds(b.tmCycles * w);
    bc.toSeconds += model.machine().cyclesToSeconds(b.toCycles * w);
    bc.seconds += nc.totalSeconds;
  }

  if (ann) (*ann)[&n] = nc;
  for (const auto& kid : n.kids) {
    walkConst(*kid, enr, model, libMixes, result, ann);
  }
}

/// Pass 3 of both the scalar and the batched estimator: normalize aggregates,
/// attach labels, compute the total and per-block fractions. Shared code so
/// the two paths stay bit-identical by construction.
void finalizeModel(ModelResult& result, const vm::Module* mod) {
  for (auto& [origin, bc] : result.blocks) {
    if (bc.enr > 0) bc.perInvocation = bc.perInvocation.scaled(1.0 / bc.enr);
    if (bc.isComm) {
      bc.label = format("comm@%u", origin);
      bc.staticInstrs = 1;  // a message is one source statement
      result.totalSeconds += bc.seconds;
      continue;
    }
    if (mod) {
      bc.label = vm::regionLabel(*mod, origin);
      bc.staticInstrs = vm::regionStaticInstrs(*mod, origin);
    } else {
      bc.label = vm::isLibRegion(origin)
                     ? "lib:" + std::string(minic::builtinTable()[static_cast<size_t>(
                                                vm::libRegionBuiltin(origin))]
                                                .name)
                     : format("block@%u", origin);
      // Without a compiled module, approximate code size by the mix size.
      bc.staticInstrs = static_cast<size_t>(bc.perInvocation.totalFlops() +
                                            bc.perInvocation.iops +
                                            bc.perInvocation.accesses()) +
                        1;
    }
    result.totalSeconds += bc.seconds;
  }
  for (auto& [origin, bc] : result.blocks) {
    bc.fraction = result.totalSeconds > 0 ? bc.seconds / result.totalSeconds : 0;
  }
}

}  // namespace

ModelResult estimate(const bet::Bet& bet, const Roofline& model, const vm::Module* mod,
                     const LibMixes* libMixes, BetAnnotations* annotations) {
  SKOPE_SPAN("roofline/estimate");
  ModelResult result;
  result.machineName = model.machine().name;
  if (!bet.root) return result;

  walkConst(*bet.root, 1.0, model, libMixes, result, annotations);
  finalizeModel(result, mod);
  return result;
}

BatchedEstimator::BatchedEstimator(const bet::Bet& bet, const vm::Module* mod,
                                   const LibMixes* libMixes)
    : mod_(mod) {
  SKOPE_SPAN("roofline/factorize");
  bet::FlatBet flat = bet::flatten(bet);
  std::vector<double> enr(flat.size());
  std::unordered_map<uint32_t, uint32_t> slotOf;
  for (size_t i = 0; i < flat.size(); ++i) {
    const BetNode& n = *flat.nodes[i];
    // The same multiplication chain walkConst computes top-down, so every
    // term's ENR carries identical bits.
    double parentEnr = flat.parent[i] < 0 ? 1.0 : enr[static_cast<size_t>(flat.parent[i])];
    enr[i] = n.numIter * n.prob * parentEnr;
    if (!n.isBlock()) continue;

    BlockTerm term;
    uint32_t origin = n.origin;
    double invocations = enr[i];
    if (n.kind == BetKind::LibCall) {
      term.kind = TermKind::LibCall;
      term.mix = builtinMix(n.builtinIndex, libMixes);
      invocations *= n.callsPerExec;
      origin = vm::libRegion(n.builtinIndex);
    } else if (n.kind == BetKind::Comm) {
      term.kind = TermKind::Comm;
      term.commBytes = n.commBytes;
    } else {
      collectBlockMix(n, n, 1.0, term.mix);
      term.kind = n.kind == BetKind::Loop && n.parallel ? TermKind::ParallelLoop
                                                        : TermKind::Block;
      term.numIter = n.numIter;
    }
    term.invocations = invocations;

    auto [it, inserted] = slotOf.emplace(origin, static_cast<uint32_t>(slots_.size()));
    if (inserted) slots_.emplace_back();
    term.slot = it->second;
    OriginAccum& oa = slots_[term.slot];
    oa.origin = origin;
    if (n.kind == BetKind::Comm) {
      oa.isComm = true;
      oa.commBytes = n.commBytes;
    }
    // Machine-independent aggregates accumulate here ONCE, in the same
    // preorder walkConst uses, instead of once per config.
    oa.perInvocation += term.mix.scaled(invocations);
    oa.enr += invocations;
    terms_.push_back(std::move(term));
  }
}

std::vector<ModelResult> BatchedEstimator::estimateGrid(
    const std::vector<Roofline>& models, const CancelToken& cancel) const {
  SKOPE_SPAN("roofline/estimate-grid");
  const size_t numConfigs = models.size();
  const size_t numSlots = slots_.size();
  std::vector<ModelResult> out(numConfigs);
  for (size_t c = 0; c < numConfigs; ++c) {
    out[c].machineName = models[c].machine().name;
  }
  if (numConfigs == 0 || terms_.empty()) return out;
  if (telemetry::enabled()) {
    telemetry::Registry::global()
        .counter("roofline/batched-nodes")
        .add(terms_.size() * numConfigs);
  }

  // Node-major combine: outer loop over block terms, inner loop over configs,
  // partial sums in config-contiguous structure-of-arrays vectors. Per
  // (config, origin) the floating-point accumulation order is the preorder
  // walkConst uses, so every sum matches the scalar path bit for bit.
  std::vector<double> tcSec(numSlots * numConfigs, 0);
  std::vector<double> tmSec(numSlots * numConfigs, 0);
  std::vector<double> toSec(numSlots * numConfigs, 0);
  std::vector<double> totSec(numSlots * numConfigs, 0);
  for (const BlockTerm& t : terms_) {
    // One poll per term row (a row is numConfigs combine calls) — far off
    // the inner loop, still bounds interruption to one row of work.
    cancel.throwIfExpired("roofline/estimate-grid");
    double* tc = &tcSec[t.slot * numConfigs];
    double* tm = &tmSec[t.slot * numConfigs];
    double* to = &toSec[t.slot * numConfigs];
    double* tot = &totSec[t.slot * numConfigs];
    const double w = t.invocations;
    for (size_t c = 0; c < numConfigs; ++c) {
      const Roofline& model = models[c];
      const MachineModel& m = model.machine();
      Breakdown b;
      switch (t.kind) {
        case TermKind::LibCall:
          b = model.libCallTime(t.mix);
          break;
        case TermKind::Comm: {
          // postal model: alpha + bytes / beta, booked as memory time
          double seconds =
              m.network.linkLatencySec + t.commBytes / (m.network.linkBandwidthGBs * 1e9);
          b.tmCycles = seconds * m.freqGHz * 1e9;
          break;
        }
        case TermKind::ParallelLoop: {
          int ways =
              static_cast<int>(std::min<double>(m.cores, std::max(1.0, t.numIter)));
          b = model.blockTime(t.mix, ways);
          break;
        }
        case TermKind::Block:
          b = model.blockTime(t.mix, 1);
          break;
      }
      tc[c] += m.cyclesToSeconds(b.tcCycles * w);
      tm[c] += m.cyclesToSeconds(b.tmCycles * w);
      to[c] += m.cyclesToSeconds(b.toCycles * w);
      tot[c] += m.cyclesToSeconds(b.totalCycles() * w);
    }
  }

  for (size_t c = 0; c < numConfigs; ++c) {
    ModelResult& r = out[c];
    for (size_t s = 0; s < numSlots; ++s) {
      const OriginAccum& oa = slots_[s];
      BlockCost& bc = r.blocks[oa.origin];
      bc.origin = oa.origin;
      bc.isComm = oa.isComm;
      bc.commBytes = oa.commBytes;
      bc.enr = oa.enr;
      bc.perInvocation = oa.perInvocation;  // finalizeModel normalizes by enr
      bc.tcSeconds = tcSec[s * numConfigs + c];
      bc.tmSeconds = tmSec[s * numConfigs + c];
      bc.toSeconds = toSec[s * numConfigs + c];
      bc.seconds = totSec[s * numConfigs + c];
    }
    finalizeModel(r, mod_);
  }
  return out;
}

ModelResult estimate(bet::Bet& bet, const Roofline& model, const vm::Module* mod,
                     const LibMixes* libMixes) {
  BetAnnotations ann;
  const bet::Bet& shared = bet;
  ModelResult result = estimate(shared, model, mod, libMixes, &ann);
  if (bet.root) {
    bet.root->visitMut([&](BetNode& n) {
      const NodeCost& nc = ann.at(&n);
      n.enr = nc.enr;
      n.tcCycles = nc.tcCycles;
      n.tmCycles = nc.tmCycles;
      n.toCycles = nc.toCycles;
      n.totalSeconds = nc.totalSeconds;
    });
  }
  return result;
}

}  // namespace skope::roofline
