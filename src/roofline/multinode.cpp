#include "roofline/multinode.h"

#include <cmath>

namespace skope::roofline {

std::vector<MultiNodeProjection> projectStrongScaling(
    const ModelResult& singleNode, const MachineModel& machine,
    const HaloDecomposition& halo, const std::vector<int>& nodeCounts) {
  std::vector<MultiNodeProjection> out;
  double base = singleNode.totalSeconds;

  for (int nodes : nodeCounts) {
    MultiNodeProjection p;
    p.nodes = nodes;
    p.computeSeconds = base / std::max(1, nodes);

    if (nodes > 1 && halo.totalCells > 0) {
      // cubic subdomains: each rank owns totalCells/nodes cells and
      // exchanges its six faces every step
      double cellsPerNode = halo.totalCells / nodes;
      double side = std::cbrt(cellsPerNode);
      double faceCells = side * side;
      double bytesPerStep = 6.0 * faceCells * halo.bytesPerCell * halo.fields;
      double messagesPerStep = 6.0 * halo.fields;
      double perStep = messagesPerStep * machine.network.linkLatencySec +
                       bytesPerStep / (machine.network.linkBandwidthGBs * 1e9);
      p.commSeconds = perStep * halo.stepsPerRun;
    }

    p.totalSeconds = p.computeSeconds + p.commSeconds;
    p.speedup = p.totalSeconds > 0 ? base / p.totalSeconds : 0;
    p.parallelEfficiency = p.speedup / nodes;
    p.commFraction = p.totalSeconds > 0 ? p.commSeconds / p.totalSeconds : 0;
    out.push_back(p);
  }
  return out;
}

int commDominanceCrossover(const std::vector<MultiNodeProjection>& scaling) {
  for (const auto& p : scaling) {
    if (p.commFraction > 0.5) return p.nodes;
  }
  return -1;
}

}  // namespace skope::roofline
