// Multi-node strong-scaling projection — the first item of the paper's §VIII
// future work ("extend our framework to project hot regions and performance
// bottlenecks for multi-node execution").
//
// First-order model: the single-node projection's block times divide across
// ranks (perfect load balance — the same accuracy class as the roofline
// itself), and each step exchanges halo messages whose size follows from a
// 3-D domain decomposition; messages cost alpha + bytes/beta on the
// machine's network. The projection reports the compute/communication split,
// parallel efficiency, and the node count where communication overtakes the
// hottest compute block — the co-design crossover.
#pragma once

#include <vector>

#include "roofline/estimate.h"

namespace skope::roofline {

/// Halo-exchange pattern of a 3-D domain-decomposed stencil code.
struct HaloDecomposition {
  double totalCells = 0;     ///< global grid cells (N^3-ish)
  double bytesPerCell = 8;   ///< bytes exchanged per face cell per field
  int fields = 1;            ///< fields exchanged each step
  int stepsPerRun = 1;       ///< exchanges per run
};

struct MultiNodeProjection {
  int nodes = 1;
  double computeSeconds = 0;  ///< per-rank compute time
  double commSeconds = 0;     ///< per-rank halo time
  double totalSeconds = 0;
  double speedup = 1;             ///< vs single node
  double parallelEfficiency = 1;  ///< speedup / nodes
  double commFraction = 0;        ///< comm share of the projected total
};

/// Projects the strong scaling of `singleNode` over `nodeCounts`.
std::vector<MultiNodeProjection> projectStrongScaling(
    const ModelResult& singleNode, const MachineModel& machine,
    const HaloDecomposition& halo, const std::vector<int>& nodeCounts);

/// Smallest node count (from `nodeCounts`) where communication exceeds half
/// of the projected time, or -1 when none does.
int commDominanceCrossover(const std::vector<MultiNodeProjection>& scaling);

}  // namespace skope::roofline
