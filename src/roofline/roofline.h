// Extended roofline model (paper §III-C, §V-A).
//
// For one invocation of a code block with aggregate mix M, the model computes
//   Tc — cycles to process the operations, from issue width and a *uniform*
//        floating-point cost (divides are deliberately not special-cased;
//        §VII-B traces the CFD mis-projection to exactly this),
//   Tm — cycles to move the data, from a constant cache miss ratio (paper
//        footnote 1: 0.85) and the machine's latencies/bandwidth,
//   To — the overlapped portion: To = min(Tc, Tm) · δ with
//        δ = 1 − 1/max(1, #flops), the paper's heuristic that bigger
//        floating-point blocks overlap better,
// and projects T = Tc + Tm − To. Vectorization is not modeled (§VII-B,
// STASSUIJ).
#pragma once

#include "machine/machine.h"
#include "skeleton/skeleton.h"

namespace skope::roofline {

struct RooflineParams {
  /// Constant per-level cache hit ratio assumed by the analytic model.
  double cacheHitRate = 0.85;
  /// Trace-informed miss ratios (--trace-roofline): the fraction of accesses
  /// served beyond L1 and the fraction reaching DRAM, as predicted by the
  /// reuse-distance cache model for this machine. Negative (the default)
  /// keeps the paper's constant-ratio behavior: beyond-L1 = 1 - cacheHitRate
  /// and DRAM = (1 - cacheHitRate)^2.
  double l1MissRatio = -1;
  double dramMissRatio = -1;
  /// Disable to get the textbook roofline max(Tc, Tm) instead of the paper's
  /// partial-overlap extension (used by the ablation bench).
  bool modelOverlap = true;
  /// Treat fp divides like every other flop (the paper's behavior). The
  /// ablation bench flips this to show the CFD hot spot snapping into place.
  bool uniformFlops = true;
};

struct Breakdown {
  double tcCycles = 0;
  double tmCycles = 0;
  double toCycles = 0;

  [[nodiscard]] double totalCycles() const { return tcCycles + tmCycles - toCycles; }
};

class Roofline {
 public:
  explicit Roofline(const MachineModel& machine, RooflineParams params = {});

  /// Projects one invocation of a block with per-invocation mix `m`.
  /// `parallelWays` > 1 spreads the block across that many cores (SKOPE's
  /// degree-of-parallelism annotation): compute and latency-bound memory
  /// time divide by the ways, the DRAM bandwidth floor by the node's total
  /// bandwidth instead of a single core's share.
  [[nodiscard]] Breakdown blockTime(const skel::SkMetrics& m, int parallelWays = 1) const;

  /// Cycles inside one call of library builtin `index`, using mix `m`
  /// (typically the empirically profiled mix, see src/libmodel).
  [[nodiscard]] Breakdown libCallTime(const skel::SkMetrics& m) const;

  [[nodiscard]] const MachineModel& machine() const { return machine_; }
  [[nodiscard]] const RooflineParams& params() const { return params_; }

  /// The derived per-machine coefficients blockTime() / libCallTime() are
  /// built from. Exposed for the batched SIMD combine (src/roofline/
  /// estimate.cpp), which replays the exact same IEEE operation sequence
  /// lane-parallel across configs — any drift between these values and the
  /// ones the methods use breaks that path's bit-identity contract.
  struct Coefficients {
    double fpCost = 1;
    double fpDivCost = 1;
    double iopCost = 1;
    double accessIssueCost = 1;
    double memPerAccess = 0;
    double dramRatio = 0;
    double bytesPerCycle = 1;
  };
  [[nodiscard]] Coefficients coefficients() const {
    return {fpCost_,   fpDivCost_, iopCost_,      accessIssueCost_,
            memPerAccess_, dramRatio_, bytesPerCycle_};
  }

 private:
  MachineModel machine_;
  RooflineParams params_;
  double fpCost_ = 1;      ///< cycles per (any) floating-point op
  double fpDivCost_ = 1;   ///< used only when uniformFlops is off
  double iopCost_ = 1;
  double accessIssueCost_ = 1;
  double memPerAccess_ = 0;   ///< expected miss-penalty cycles per access
  double dramRatio_ = 0;      ///< fraction of accessed bytes that hit DRAM
  double bytesPerCycle_ = 1;  ///< DRAM bandwidth in bytes per core-cycle
};

}  // namespace skope::roofline
