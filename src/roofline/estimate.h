// Per-block performance estimation over a BET (paper §V-A).
//
// Walks the tree bottom-up: every Func / Loop / LibCall node is a code block;
// its per-invocation operation mix is the probability-weighted sum of the
// comp statements directly inside it (branch arms fold in with their arm
// probabilities — matching how the profiler attributes work to regions).
// The roofline model projects the time of one invocation, the total charged
// to the block is T × ENR with ENR = num_iter × prob × ENR(parent), and
// instances of the same source block (a function mounted at several call
// sites) aggregate by origin id.
#pragma once

#include <map>
#include <string>

#include "bet/bet.h"
#include "roofline/roofline.h"
#include "vm/bytecode.h"

namespace skope::roofline {

/// Projected cost of one source-level code block (aggregated over all of its
/// BET instances).
struct BlockCost {
  uint32_t origin = 0;
  std::string label;
  double enr = 0;                   ///< total expected invocations
  skel::SkMetrics perInvocation;    ///< ENR-weighted mean mix
  double tcSeconds = 0;             ///< aggregated compute time
  double tmSeconds = 0;             ///< aggregated memory time
  double toSeconds = 0;             ///< aggregated overlapped time
  double seconds = 0;               ///< tc + tm - to
  size_t staticInstrs = 0;          ///< code size for the leanness criterion
  double fraction = 0;              ///< share of projected total time
  bool isComm = false;              ///< inter-node message block (extension)
  double commBytes = 0;             ///< mean bytes per message when isComm
};

struct ModelResult {
  std::string machineName;
  std::map<uint32_t, BlockCost> blocks;
  double totalSeconds = 0;
};

/// Empirical per-call instruction mixes for library builtins, keyed by
/// builtin index (produced by src/libmodel). Builtins without an entry fall
/// back to the static mix in minic::builtinTable().
using LibMixes = std::map<int, skel::SkMetrics>;

/// Estimates every block in `bet`, filling the per-node enr / time fields in
/// place and returning the per-origin aggregation. `mod` (optional) supplies
/// block labels and static instruction counts.
ModelResult estimate(bet::Bet& bet, const Roofline& model,
                     const vm::Module* mod = nullptr, const LibMixes* libMixes = nullptr);

}  // namespace skope::roofline
