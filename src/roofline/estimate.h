// Per-block performance estimation over a BET (paper §V-A).
//
// Walks the tree bottom-up: every Func / Loop / LibCall node is a code block;
// its per-invocation operation mix is the probability-weighted sum of the
// comp statements directly inside it (branch arms fold in with their arm
// probabilities — matching how the profiler attributes work to regions).
// The roofline model projects the time of one invocation, the total charged
// to the block is T × ENR with ENR = num_iter × prob × ENR(parent), and
// instances of the same source block (a function mounted at several call
// sites) aggregate by origin id.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "bet/bet.h"
#include "roofline/roofline.h"
#include "support/cancel.h"
#include "vm/bytecode.h"

namespace skope::roofline {

/// Projected cost of one source-level code block (aggregated over all of its
/// BET instances).
struct BlockCost {
  uint32_t origin = 0;
  std::string label;
  double enr = 0;                   ///< total expected invocations
  skel::SkMetrics perInvocation;    ///< ENR-weighted mean mix
  double tcSeconds = 0;             ///< aggregated compute time
  double tmSeconds = 0;             ///< aggregated memory time
  double toSeconds = 0;             ///< aggregated overlapped time
  double seconds = 0;               ///< tc + tm - to
  size_t staticInstrs = 0;          ///< code size for the leanness criterion
  double fraction = 0;              ///< share of projected total time
  bool isComm = false;              ///< inter-node message block (extension)
  double commBytes = 0;             ///< mean bytes per message when isComm
};

struct ModelResult {
  std::string machineName;
  std::map<uint32_t, BlockCost> blocks;
  double totalSeconds = 0;
};

/// Empirical per-call instruction mixes for library builtins, keyed by
/// builtin index (produced by src/libmodel). Builtins without an entry fall
/// back to the static mix in minic::builtinTable().
using LibMixes = std::map<int, skel::SkMetrics>;

/// Per-node estimator outputs for one machine, kept *outside* the BET so the
/// tree itself can be shared read-only between threads (one sweep worker per
/// machine config). Mirrors the estimator-filled fields of bet::BetNode.
struct NodeCost {
  double enr = 0;           ///< expected number of repetitions (§V-A)
  double tcCycles = 0;      ///< per-invocation compute time (blocks only)
  double tmCycles = 0;      ///< per-invocation memory time
  double toCycles = 0;      ///< per-invocation overlapped time
  double totalSeconds = 0;  ///< ENR × per-invocation time
};

/// Side table of per-node costs for one (BET, machine) evaluation. Keys are
/// borrowed BET node pointers; the BET must outlive the table.
using BetAnnotations = std::unordered_map<const bet::BetNode*, NodeCost>;

/// Thread-safe estimation over a *shared, immutable* BET: identical math to
/// the mutating overload, but all per-node outputs go to `annotations`
/// (optional) instead of into the tree. Any number of threads may run this
/// concurrently over the same BET / Module / LibMixes with distinct Roofline
/// models — nothing shared is written.
ModelResult estimate(const bet::Bet& bet, const Roofline& model,
                     const vm::Module* mod, const LibMixes* libMixes,
                     BetAnnotations* annotations);

/// Estimates every block in `bet`, filling the per-node enr / time fields in
/// place and returning the per-origin aggregation. `mod` (optional) supplies
/// block labels and static instruction counts. Single-threaded use only (the
/// BET is written); sweeps use the const overload above.
ModelResult estimate(bet::Bet& bet, const Roofline& model,
                     const vm::Module* mod = nullptr, const LibMixes* libMixes = nullptr);

/// How BatchedEstimator::estimateGrid runs the per-config combine loop.
enum class CombineMode : uint8_t {
  /// Pick Simd when the batch is eligible (every config shares the
  /// uniformFlops / modelOverlap flags), Scalar otherwise.
  Auto,
  /// Reference combine: one out-of-line Roofline::blockTime / libCallTime
  /// call per (term, config). Kept as the timing baseline and for batches
  /// whose configs disagree on the roofline flags.
  Scalar,
  /// Lane-parallel combine: per-config coefficients gathered into
  /// structure-of-arrays vectors, each term row evaluated across configs in
  /// one vectorizable loop (lanes = configs). Per config the IEEE operation
  /// sequence — and hence every result bit — is identical to Scalar; only
  /// the lane organization changes.
  Simd,
};

/// Node-major batched estimation for machine grids.
///
/// The roofline projection factors cleanly into machine-parameter groups
/// (the kerncraft observation): for every BET block node, the operands of
/// the combine step — the per-invocation operation mix, the ENR chain, the
/// parallel-ways policy and the aggregation origin — depend only on the
/// workload, never on the machine. The constructor walks the BET ONCE
/// (through bet::flatten's preorder view) and extracts those operands into a
/// contiguous term array; estimateGrid() then runs the thin per-config
/// combine (Roofline::blockTime over the precomputed mix) node-major: outer
/// loop over block terms, inner loop over configs, accumulating into
/// structure-of-arrays per-config partial sums.
///
/// Bit-exact contract: for every model in the batch, the returned
/// ModelResult is byte-identical to what estimate() computes for that model
/// alone — the per-(config, origin) floating-point accumulation order is the
/// same preorder, the combine calls the very same Roofline methods, and the
/// finalization pass is shared code. The sweep equivalence suite
/// (tests/test_batched.cpp) asserts this for every workload.
class BatchedEstimator {
 public:
  /// Factors `bet` once. All three references are borrowed and must outlive
  /// the estimator (the sweep keeps them alive via the shared frontend).
  BatchedEstimator(const bet::Bet& bet, const vm::Module* mod, const LibMixes* libMixes);

  /// Per-config results, in `models` order. Thread-safe (const, no shared
  /// writes); increments the "roofline/batched-nodes" counter by
  /// terms × configs and sets the "roofline/simd-lanes" gauge when telemetry
  /// is enabled. `cancel` interrupts the combine between term rows with
  /// CancelledError. All combine modes produce bit-identical results; Simd
  /// is the fast path (see CombineMode).
  [[nodiscard]] std::vector<ModelResult> estimateGrid(
      const std::vector<Roofline>& models, const CancelToken& cancel = {},
      CombineMode mode = CombineMode::Auto) const;

  /// Projected total seconds per config, in `models` order — the combine
  /// alone, without materializing per-config ModelResults (no block maps, no
  /// labels). For ranking-only consumers (guided search generations, huge
  /// grids) this is the cheap path: one accumulation stream instead of four,
  /// and none of the per-config result construction. Bit-exact contract:
  /// element c equals estimateGrid(models)[c].totalSeconds to the last bit,
  /// for every combine mode.
  [[nodiscard]] std::vector<double> estimateTotals(
      const std::vector<Roofline>& models, const CancelToken& cancel = {},
      CombineMode mode = CombineMode::Auto) const;

  /// Vector lanes (doubles) the combine loop is compiled for on this build:
  /// 8 with AVX-512, 4 with AVX, 2 with SSE2/NEON, 1 portable-scalar. The
  /// Simd combine is plain structure-of-arrays C++ either way — this reports
  /// what the compiler can vectorize it to, and feeds the
  /// "roofline/simd-lanes" telemetry gauge.
  [[nodiscard]] static int simdLanes();

  /// Block terms extracted from the BET (one per block node, preorder).
  [[nodiscard]] size_t termCount() const { return terms_.size(); }

 private:
  enum class TermKind : uint8_t {
    Block,         ///< Func / serial Loop: blockTime(mix, 1)
    ParallelLoop,  ///< parallel Loop: blockTime(mix, min(cores, numIter))
    LibCall,       ///< libCallTime(mix), invocations × callsPerExec
    Comm,          ///< postal-model message (machine network terms)
  };

  /// Machine-independent operands of one block node's combine step.
  struct BlockTerm {
    TermKind kind = TermKind::Block;
    uint32_t slot = 0;         ///< dense origin slot (first-appearance order)
    skel::SkMetrics mix;       ///< per-invocation operation mix
    double invocations = 0;    ///< ENR (× callsPerExec for LibCall)
    double numIter = 1;        ///< ParallelLoop: expected trip count
    double commBytes = 0;      ///< Comm: expected message bytes
  };

  /// Machine-independent per-origin aggregates, shared by every config.
  struct OriginAccum {
    uint32_t origin = 0;
    double enr = 0;                 ///< summed invocations
    skel::SkMetrics perInvocation;  ///< invocation-weighted mix sum (unnormalized)
    bool isComm = false;
    double commBytes = 0;
  };

  /// Everything finalization needs that does not depend on the machine —
  /// label, static size, normalized mean mix — computed ONCE in the
  /// constructor instead of once per config. Held in ascending-origin order
  /// so each config's result map builds with hinted O(1) insertion and the
  /// totalSeconds accumulation runs in map order (the order finalizeModel
  /// iterates), keeping every sum bit-identical to the scalar path.
  struct SlotFinal {
    uint32_t origin = 0;
    uint32_t slot = 0;              ///< index into the partial-sum rows
    std::string label;
    size_t staticInstrs = 0;
    double enr = 0;
    skel::SkMetrics perInvocation;  ///< normalized (ENR-weighted mean) mix
    bool isComm = false;
    double commBytes = 0;
  };

  const vm::Module* mod_;
  std::vector<BlockTerm> terms_;     ///< preorder over block nodes
  std::vector<OriginAccum> slots_;   ///< dense, first-appearance order
  std::vector<SlotFinal> finals_;    ///< ascending origin
};

}  // namespace skope::roofline
