#include "roofline/roofline.h"

#include <algorithm>
#include <cmath>

namespace skope::roofline {

Roofline::Roofline(const MachineModel& machine, RooflineParams params)
    : machine_(machine), params_(params) {
  double issue = machine.issueWidth;
  // Uniform floating-point cost: the mean of add and multiply latency under
  // the same pipelining assumption the simulator uses — but applied to every
  // flop, divides included.
  double fpLat = (machine.fpAddLat + machine.fpMulLat) / 2.0;
  fpCost_ = std::max(1.0 / issue, fpLat / (2.0 * issue));
  fpDivCost_ = machine.fpDivLat;
  iopCost_ = 1.0 / issue;
  accessIssueCost_ = 1.0 / issue;

  // Constant-ratio defaults (paper footnote 1); trace-informed ratios
  // override them when set (>= 0).
  double miss = 1.0 - params.cacheHitRate;
  double beyondL1 = params.l1MissRatio >= 0 ? params.l1MissRatio : miss;
  dramRatio_ = params.dramMissRatio >= 0 ? params.dramMissRatio : miss * miss;
  memPerAccess_ = beyondL1 * (machine.llc.latencyCycles / machine.mlp) +
                  dramRatio_ * (machine.memLatencyCycles / machine.mlp);
  bytesPerCycle_ = machine.memBandwidthGBs / (machine.freqGHz * machine.cores);
}

Breakdown Roofline::blockTime(const skel::SkMetrics& m, int parallelWays) const {
  Breakdown b;
  double ways = std::max(1, std::min(parallelWays, machine_.cores));
  double flops = m.totalFlops();
  if (params_.uniformFlops) {
    b.tcCycles = flops * fpCost_;
  } else {
    b.tcCycles = m.flops * fpCost_ + m.fpdivs * fpDivCost_;
  }
  b.tcCycles += m.iops * iopCost_ + m.accesses() * accessIssueCost_;
  b.tcCycles /= ways;

  double dramBytes = m.bytes() * dramRatio_;
  // latency-bound misses parallelize across cores; the bandwidth floor only
  // grows to the node aggregate (bytesPerCycle_ is a single core's share)
  b.tmCycles = std::max(m.accesses() * memPerAccess_ / ways,
                        dramBytes / (bytesPerCycle_ * ways));

  if (params_.modelOverlap) {
    double delta = 1.0 - 1.0 / std::max(1.0, flops);
    b.toCycles = std::min(b.tcCycles, b.tmCycles) * delta;
  } else {
    // textbook roofline: full overlap, T = max(Tc, Tm)
    b.toCycles = std::min(b.tcCycles, b.tmCycles);
  }
  return b;
}

Breakdown Roofline::libCallTime(const skel::SkMetrics& m) const {
  // Library kernels are latency-bound scalar code: charge them like a block
  // but without the overlap bonus (their loads are table lookups).
  Breakdown b;
  b.tcCycles = m.totalFlops() * fpCost_ * 1.5 + m.iops * iopCost_ +
               m.accesses() * accessIssueCost_;
  b.tmCycles = m.accesses() * machine_.l1.latencyCycles * 0.5;
  b.toCycles = 0;
  return b;
}

}  // namespace skope::roofline
