#include "bet/bet.h"

#include <functional>

#include "support/text.h"

namespace skope::bet {

std::string_view betKindName(BetKind k) {
  switch (k) {
    case BetKind::Func: return "func";
    case BetKind::Loop: return "loop";
    case BetKind::BranchThen: return "then";
    case BetKind::BranchElse: return "else";
    case BetKind::Comp: return "comp";
    case BetKind::LibCall: return "libcall";
    case BetKind::Comm: return "comm";
  }
  return "?";
}

size_t BetNode::subtreeSize() const {
  size_t n = 1;
  for (const auto& k : kids) n += k->subtreeSize();
  return n;
}

void BetNode::visit(const std::function<void(const BetNode&)>& fn) const {
  fn(*this);
  for (const auto& k : kids) k->visit(fn);
}

void BetNode::visitMut(const std::function<void(BetNode&)>& fn) {
  fn(*this);
  for (const auto& k : kids) k->visitMut(fn);
}

std::vector<const BetNode*> Bet::nodesForOrigin(uint32_t origin) const {
  std::vector<const BetNode*> out;
  if (root) {
    root->visit([&](const BetNode& n) {
      if (n.origin == origin) out.push_back(&n);
    });
  }
  return out;
}

namespace {

void flattenNode(const BetNode& n, int32_t parentIndex, FlatBet& out) {
  auto self = static_cast<int32_t>(out.nodes.size());
  out.nodes.push_back(&n);
  out.parent.push_back(parentIndex);
  for (const auto& k : n.kids) flattenNode(*k, self, out);
}

}  // namespace

FlatBet flatten(const Bet& bet) {
  FlatBet out;
  if (bet.root) {
    out.nodes.reserve(bet.size());
    out.parent.reserve(bet.size());
    flattenNode(*bet.root, -1, out);
  }
  return out;
}

namespace {

void printNode(const BetNode& n, int depth, int maxDepth, std::string& out) {
  if (depth > maxDepth) return;
  for (int i = 0; i < depth; ++i) out += "  ";
  out += betKindName(n.kind);
  if (!n.name.empty()) out += " " + n.name;
  if (n.origin != 0) out += format(" @%u", n.origin);
  out += format(" p=%.4g", n.prob);
  if (n.kind == BetKind::Loop) out += format(" iter=%.6g", n.numIter);
  if (n.kind == BetKind::Comp) {
    out += format(" [flops=%g divs=%g iops=%g ld=%g st=%g]", n.metrics.flops,
                  n.metrics.fpdivs, n.metrics.iops, n.metrics.loads, n.metrics.stores);
  }
  if (n.kind == BetKind::LibCall) out += format(" calls=%.4g", n.callsPerExec);
  if (n.kind == BetKind::Comm) out += format(" bytes=%.6g", n.commBytes);
  if (n.enr > 0) out += format(" enr=%.6g", n.enr);
  out += "\n";
  for (const auto& k : n.kids) printNode(*k, depth + 1, maxDepth, out);
}

}  // namespace

std::string printBet(const Bet& bet, int maxDepth) {
  std::string out;
  if (bet.root) printNode(*bet.root, 0, maxDepth, out);
  if (bet.droppedCalls > 0) {
    out += format("(%zu call mounts dropped by the recursion guard)\n", bet.droppedCalls);
  }
  return out;
}

}  // namespace skope::bet
