// The Bayesian Execution Tree (paper §IV) — contribution #1.
//
// A BET models one *run* of the workload for a given input: the BSTs of all
// functions are mounted together along the call structure, loop nodes record
// expected iteration counts without being unrolled, and every node carries
// the conditional probability of executing given its parent, derived from the
// input parameters and the profiled branch statistics. Its size is
// independent of the input data size.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "skeleton/skeleton.h"

namespace skope::bet {

enum class BetKind {
  Func,        ///< a mounted function invocation
  Loop,        ///< a loop; numIter = expected iterations per invocation
  BranchThen,  ///< taken arm of a branch
  BranchElse,  ///< fall-through arm
  Comp,        ///< aggregate straight-line work
  LibCall,     ///< library function call site
  Comm,        ///< inter-node message (multi-node extension, §VIII)
};

std::string_view betKindName(BetKind k);

struct BetNode {
  BetKind kind = BetKind::Comp;
  uint32_t origin = 0;       ///< originating AST region / statement id
  std::string name;          ///< function name for Func, builtin name for LibCall
  double prob = 1.0;         ///< P(execute | parent executes once)
  double numIter = 1.0;      ///< expected iterations (Loop only)
  bool parallel = false;     ///< Loop iterations are independent
  skel::SkMetrics metrics;   ///< per-execution mix (Comp only)
  int builtinIndex = -1;     ///< LibCall target
  double callsPerExec = 1;   ///< LibCall: calls per execution of this node
  double commBytes = 0;      ///< Comm: expected message bytes per execution
  std::map<std::string, double> context;  ///< snapshot of context values

  BetNode* parent = nullptr;
  std::vector<std::unique_ptr<BetNode>> kids;

  // ---- filled in by the performance estimator (src/roofline) ----
  double enr = 0;          ///< expected number of repetitions (§V-A)
  double tcCycles = 0;     ///< per-invocation compute time (blocks only)
  double tmCycles = 0;     ///< per-invocation memory time
  double toCycles = 0;     ///< per-invocation overlapped time
  double totalSeconds = 0; ///< ENR × per-invocation time

  /// True for nodes the hot-spot analysis treats as code blocks. Branch arms
  /// are folded into the enclosing block so that model blocks align exactly
  /// with the profiler's region attribution.
  [[nodiscard]] bool isBlock() const {
    return kind == BetKind::Func || kind == BetKind::Loop || kind == BetKind::LibCall ||
           kind == BetKind::Comm;
  }

  [[nodiscard]] size_t subtreeSize() const;

  /// Pre-order visit of the whole subtree.
  void visit(const std::function<void(const BetNode&)>& fn) const;
  /// Mutating variant (distinct name: overloading on the std::function
  /// parameter type is ambiguous per ISO C++).
  void visitMut(const std::function<void(BetNode&)>& fn);
};

struct Bet {
  std::unique_ptr<BetNode> root;
  size_t droppedCalls = 0;   ///< call mounts skipped by the recursion guard

  [[nodiscard]] size_t size() const { return root ? root->subtreeSize() : 0; }

  /// All nodes with the given origin (a block can be mounted many times).
  [[nodiscard]] std::vector<const BetNode*> nodesForOrigin(uint32_t origin) const;
};

/// Flattened preorder view of a BET for node-major batched iteration.
///
/// `nodes[i]` is the i-th node in preorder (kids in declaration order —
/// exactly the order the recursive estimator visits), and `parent[i]` is the
/// index of its parent in the same array (-1 for the root). A linear walk
/// over this view can therefore compute any top-down quantity (ENR chains,
/// per-node machine terms) with array indexing instead of pointer chasing —
/// the layout the batched grid estimator (roofline::BatchedEstimator)
/// iterates node-major. Borrowed pointers: the BET must outlive the view.
struct FlatBet {
  std::vector<const BetNode*> nodes;  ///< preorder
  std::vector<int32_t> parent;        ///< index into `nodes`; -1 for the root

  [[nodiscard]] size_t size() const { return nodes.size(); }
};

/// Builds the flattened preorder view of `bet` (empty for an empty tree).
FlatBet flatten(const Bet& bet);

/// Renders the tree (one node per line, indented) for inspection and tests.
std::string printBet(const Bet& bet, int maxDepth = 32);

}  // namespace skope::bet
