#include "bet/context.h"

#include <algorithm>

namespace skope::bet {

namespace {
constexpr double kMinWeight = 1e-12;
}

ContextSet::ContextSet(std::map<std::string, double> initialVars) {
  ctxs_.push_back(Ctx{1.0, std::move(initialVars)});
}

double ContextSet::totalWeight() const {
  double w = 0;
  for (const auto& c : ctxs_) w += c.weight;
  return w;
}

void ContextSet::scale(double f) {
  for (auto& c : ctxs_) c.weight *= f;
  std::erase_if(ctxs_, [](const Ctx& c) { return c.weight < kMinWeight; });
}

void ContextSet::normalize() {
  double w = totalWeight();
  if (w > 0) scale(1.0 / w);
}

ParamEnv ContextSet::envFor(const Ctx& c) const { return ParamEnv(c.vars); }

void ContextSet::setVar(const std::string& name, const ExprPtr& value) {
  for (auto& c : ctxs_) {
    try {
      double v = value->eval(ParamEnv(c.vars));
      c.vars[name] = v;
    } catch (const Error&) {
      c.vars.erase(name);  // value depends on unknown data
    }
  }
}

double ContextSet::evalMean(const ExprPtr& e, double fallback) const {
  double sum = 0, wsum = 0;
  for (const auto& c : ctxs_) {
    try {
      sum += c.weight * e->eval(ParamEnv(c.vars));
      wsum += c.weight;
    } catch (const Error&) {
      // skip contexts that cannot evaluate the expression
    }
  }
  return wsum > 0 ? sum / wsum : fallback;
}

std::pair<ContextSet, ContextSet> ContextSet::splitByProb(const ExprPtr& p,
                                                          double fallbackProb) const {
  ContextSet thenSet, elseSet;
  for (const auto& c : ctxs_) {
    double prob = fallbackProb;
    try {
      prob = std::clamp(p->eval(ParamEnv(c.vars)), 0.0, 1.0);
    } catch (const Error&) {
    }
    if (c.weight * prob >= kMinWeight) {
      thenSet.ctxs_.push_back(Ctx{c.weight * prob, c.vars});
    }
    if (c.weight * (1 - prob) >= kMinWeight) {
      elseSet.ctxs_.push_back(Ctx{c.weight * (1 - prob), c.vars});
    }
  }
  return {std::move(thenSet), std::move(elseSet)};
}

ContextSet ContextSet::merged(const ContextSet& a, const ContextSet& b, size_t maxContexts) {
  ContextSet out;
  out.ctxs_ = a.ctxs_;
  out.ctxs_.insert(out.ctxs_.end(), b.ctxs_.begin(), b.ctxs_.end());
  out.compact(maxContexts);
  return out;
}

void ContextSet::compact(size_t maxContexts) {
  // Merge identical bindings.
  std::vector<Ctx> merged;
  for (auto& c : ctxs_) {
    bool found = false;
    for (auto& m : merged) {
      if (m.vars == c.vars) {
        m.weight += c.weight;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(c));
  }
  // Keep the heaviest contexts; fold the weight of the dropped tail into the
  // heaviest survivor so total probability is preserved.
  if (merged.size() > maxContexts) {
    std::sort(merged.begin(), merged.end(),
              [](const Ctx& x, const Ctx& y) { return x.weight > y.weight; });
    double dropped = 0;
    for (size_t i = maxContexts; i < merged.size(); ++i) dropped += merged[i].weight;
    merged.resize(maxContexts);
    if (!merged.empty()) merged.front().weight += dropped;
  }
  ctxs_ = std::move(merged);
}

std::map<std::string, double> ContextSet::snapshot() const {
  std::map<std::string, double> sums;
  std::map<std::string, double> weights;
  for (const auto& c : ctxs_) {
    for (const auto& [k, v] : c.vars) {
      sums[k] += c.weight * v;
      weights[k] += c.weight;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [k, v] : sums) {
    if (weights[k] > 0) out[k] = v / weights[k];
  }
  return out;
}

}  // namespace skope::bet
