// BET construction (paper §IV-B).
//
// Starting from main's BST with the input parameters as the initial 100 %-
// probability context, the builder traverses statements in order:
//   * function calls mount a fresh copy of the callee's BST with formals
//     bound in the current contexts;
//   * loops create a single node whose expected iteration count is evaluated
//     from the contexts — the body is traversed once, never unrolled;
//   * branches split the context set by the branch probability and traverse
//     both arms; arm-local `set` statements make downstream contexts diverge;
//   * `return` / `continue` / `break` zero out the live contexts and promote
//     their probability mass to the enclosing function / loop; a loop whose
//     body breaks with per-iteration probability p over range n gets the
//     expected iteration count (1-(1-p)^n)/p (→ n as p → 0).
#pragma once

#include "bet/bet.h"
#include "bet/context.h"

namespace skope::bet {

struct BuilderOptions {
  size_t maxContexts = 32;    ///< context-set cap (heaviest kept, mass preserved)
  size_t maxNodes = 2'000'000;///< safety valve for pathological programs
  int maxCallDepth = 64;      ///< recursion guard for mounted calls
  std::string entry = "main";
};

/// Builds the BET for one input binding. Throws Error when the skeleton still
/// contains unresolved loop bounds / branch probabilities (run the annotator
/// first), when the entry function is missing, or when maxNodes is exceeded.
Bet buildBet(const skel::SkeletonProgram& skeleton, const ParamEnv& input,
             const BuilderOptions& opts = {});

}  // namespace skope::bet
