#include "bet/builder.h"

#include <cmath>

#include "minic/builtins.h"
#include "support/diagnostics.h"

namespace skope::bet {

using skel::SkKind;
using skel::SkNode;
using skel::SkeletonProgram;

namespace {

/// Probability mass leaving a statement sequence through non-sequential exits,
/// relative to one execution of the sequence's enclosing block.
struct Flow {
  double breakMass = 0;
  double continueMass = 0;
  double returnMass = 0;
};

class Builder {
 public:
  Builder(const SkeletonProgram& sk, const BuilderOptions& opts) : sk_(sk), opts_(opts) {}

  Bet run(const ParamEnv& input) {
    const SkNode* entry = sk_.findDef(opts_.entry);
    if (!entry) throw Error("BET: no '" + opts_.entry + "' function in skeleton");

    Bet bet;
    bet.root = newNode(BetKind::Func, entry->origin);
    bet.root->name = entry->name;
    bet.root->prob = 1.0;

    ContextSet ctx(input.values());
    bet.root->context = ctx.snapshot();
    buildSeq(entry->kids, ctx, bet.root.get());
    bet.droppedCalls = droppedCalls_;
    return bet;
  }

 private:
  std::unique_ptr<BetNode> newNode(BetKind kind, uint32_t origin) {
    if (++nodeCount_ > opts_.maxNodes) {
      throw Error("BET construction exceeded " + std::to_string(opts_.maxNodes) +
                  " nodes — context explosion?");
    }
    auto n = std::make_unique<BetNode>();
    n->kind = kind;
    n->origin = origin;
    return n;
  }

  BetNode* attach(BetNode* parent, std::unique_ptr<BetNode> node) {
    node->parent = parent;
    parent->kids.push_back(std::move(node));
    return parent->kids.back().get();
  }

  ExprPtr requireExpr(const ExprPtr& e, const SkNode& n, const char* what) {
    if (!e) {
      throw Error(std::string("BET: ") + what + " unresolved at origin " +
                  std::to_string(n.origin) + " — run the annotator first");
    }
    return e;
  }

  /// Builds BET nodes for a statement list. `ctx` enters with some live
  /// weight and leaves with the fall-through weight; exit masses are
  /// accumulated into the returned Flow (all relative to one execution of the
  /// enclosing block).
  Flow buildSeq(const std::vector<skel::SkNodeUP>& stmts, ContextSet& ctx, BetNode* parent) {
    Flow flow;
    for (const auto& s : stmts) {
      if (ctx.empty() || ctx.totalWeight() < 1e-12) break;  // unreachable tail
      buildStmt(*s, ctx, parent, flow);
    }
    return flow;
  }

  void buildStmt(const SkNode& s, ContextSet& ctx, BetNode* parent, Flow& flow) {
    switch (s.kind) {
      case SkKind::Def:
        throw Error("BET: nested def in skeleton body");

      case SkKind::Comp: {
        BetNode* n = attach(parent, newNode(BetKind::Comp, s.origin));
        n->prob = ctx.totalWeight();
        n->metrics = s.metrics;
        return;
      }

      case SkKind::Set:
        ctx.setVar(s.name, s.value);
        return;

      case SkKind::LibCall: {
        BetNode* n = attach(parent, newNode(BetKind::LibCall, s.origin));
        n->prob = ctx.totalWeight();
        n->builtinIndex = s.builtinIndex;
        n->name = std::string(
            minic::builtinTable()[static_cast<size_t>(s.builtinIndex)].name);
        n->callsPerExec = s.count ? ctx.evalMean(s.count, 1.0) : 1.0;
        return;
      }

      case SkKind::Comm: {
        BetNode* n = attach(parent, newNode(BetKind::Comm, s.origin));
        n->prob = ctx.totalWeight();
        n->commBytes = s.bytes ? std::max(0.0, ctx.evalMean(s.bytes, 0.0)) : 0.0;
        n->name = "comm";
        return;
      }

      case SkKind::Call:
        buildCall(s, ctx, parent);
        return;

      case SkKind::Loop:
        buildLoop(s, ctx, parent, flow);
        return;

      case SkKind::Branch:
        buildBranch(s, ctx, parent, flow);
        return;

      case SkKind::Return:
        flow.returnMass += ctx.totalWeight();
        ctx.scale(0);
        return;

      case SkKind::Break:
        flow.breakMass += ctx.totalWeight();
        ctx.scale(0);
        return;

      case SkKind::Continue:
        flow.continueMass += ctx.totalWeight();
        ctx.scale(0);
        return;
    }
  }

  void buildCall(const SkNode& s, ContextSet& ctx, BetNode* parent) {
    const SkNode* def = sk_.findDef(s.name);
    if (!def) throw Error("BET: call to unknown function '" + s.name + "'");
    if (callDepth_ >= opts_.maxCallDepth) {
      ++droppedCalls_;
      return;
    }

    double w = ctx.totalWeight();
    BetNode* n = attach(parent, newNode(BetKind::Func, def->origin));
    n->prob = w;
    n->name = def->name;

    // Callee contexts: caller bindings plus formals evaluated at the call.
    ContextSet callee = ctx;
    callee.normalize();
    for (size_t i = 0; i < def->formals.size(); ++i) {
      ExprPtr arg = i < s.args.size() ? s.args[i] : constant(0);
      callee.setVar(def->formals[i], arg);
    }
    n->context = callee.snapshot();

    ++callDepth_;
    buildSeq(def->kids, callee, n);  // callee return mass stays inside
    --callDepth_;
  }

  void buildLoop(const SkNode& s, ContextSet& ctx, BetNode* parent, Flow& flow) {
    double w = ctx.totalWeight();
    BetNode* n = attach(parent, newNode(BetKind::Loop, s.origin));
    n->prob = w;
    n->parallel = s.parallel;

    ExprPtr iterExpr = requireExpr(s.iter, s, "loop bound");
    double range = std::max(0.0, ctx.evalMean(iterExpr, 0.0));

    // Body contexts are per-iteration, relative to one loop-node invocation.
    ContextSet body = ctx;
    body.normalize();
    n->context = body.snapshot();
    Flow bodyFlow = buildSeq(s.kids, body, n);

    // Early exits cap the expected iteration count: with per-iteration exit
    // probability p over a range of n iterations, E[iters] = (1-(1-p)^n)/p.
    double exitProb = std::min(1.0, bodyFlow.breakMass + bodyFlow.returnMass);
    double iters = range;
    if (exitProb > 1e-12 && range > 0) {
      iters = (1.0 - std::pow(1.0 - exitProb, range)) / exitProb;
    }
    n->numIter = iters;

    // A return inside the loop also leaves the enclosing function; promote
    // the total mass (per loop entry) upward.
    if (bodyFlow.returnMass > 0) {
      double pReturn = std::min(1.0, bodyFlow.returnMass * iters);
      flow.returnMass += w * pReturn;
      ctx.scale(1.0 - pReturn);
    }
  }

  void buildBranch(const SkNode& s, ContextSet& ctx, BetNode* parent, Flow& flow) {
    ExprPtr probExpr = requireExpr(s.prob, s, "branch probability");
    auto [thenCtx, elseCtx] = ctx.splitByProb(probExpr, 0.5);

    auto buildArm = [&](BetKind kind, const std::vector<skel::SkNodeUP>& arm,
                        ContextSet armCtx) -> ContextSet {
      double w = armCtx.totalWeight();
      if (w < 1e-12) return ContextSet{};
      if (arm.empty()) return armCtx;  // empty arm: fall straight through
      BetNode* n = attach(parent, newNode(kind, s.origin));
      n->prob = w;
      ContextSet inner = armCtx;
      inner.normalize();
      n->context = inner.snapshot();
      Flow armFlow = buildSeq(arm, inner, n);
      // Masses inside the arm are relative to the arm; rescale to the block.
      flow.breakMass += w * armFlow.breakMass;
      flow.continueMass += w * armFlow.continueMass;
      flow.returnMass += w * armFlow.returnMass;
      inner.scale(w);  // back to block-relative fall-through weight
      return inner;
    };

    ContextSet thenOut = buildArm(BetKind::BranchThen, s.kids, std::move(thenCtx));
    ContextSet elseOut = buildArm(BetKind::BranchElse, s.elseKids, std::move(elseCtx));
    ctx = ContextSet::merged(thenOut, elseOut, opts_.maxContexts);
  }

  const SkeletonProgram& sk_;
  BuilderOptions opts_;
  size_t nodeCount_ = 0;
  size_t droppedCalls_ = 0;
  int callDepth_ = 0;
};

}  // namespace

Bet buildBet(const SkeletonProgram& skeleton, const ParamEnv& input,
             const BuilderOptions& opts) {
  return Builder(skeleton, opts).run(input);
}

}  // namespace skope::bet
