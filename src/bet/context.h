// Weighted execution contexts for BET construction (§IV-A).
//
// A context is a binding of "context values" — the variables that affect
// branch outcomes, loop bounds and data sizes — together with the probability
// weight of executing under that binding. Branches that assign different
// values on their two arms spawn multiple contexts; identical contexts are
// merged so the set stays small for the nested, correlated control flow that
// real workloads exhibit (§IV-B's size argument).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace skope::bet {

/// One weighted variable binding.
struct Ctx {
  double weight = 1.0;
  std::map<std::string, double> vars;
};

/// A small set of weighted contexts. Weights are probabilities relative to
/// one invocation of the enclosing BET block, so they sum to at most 1.
class ContextSet {
 public:
  ContextSet() = default;
  explicit ContextSet(std::map<std::string, double> initialVars);

  [[nodiscard]] double totalWeight() const;
  [[nodiscard]] bool empty() const { return ctxs_.empty(); }
  [[nodiscard]] size_t size() const { return ctxs_.size(); }
  [[nodiscard]] const std::vector<Ctx>& contexts() const { return ctxs_; }

  /// Multiplies every weight by `f`, dropping contexts that vanish.
  void scale(double f);

  /// Divides weights so they sum to 1. No-op on an empty set.
  void normalize();

  /// Assigns `name = value(ctx)` in every context. Contexts where the value
  /// expression cannot be evaluated lose the variable instead (it becomes
  /// data-dependent / unknown).
  void setVar(const std::string& name, const ExprPtr& value);

  /// Weighted mean of `e` over the set. Contexts that cannot evaluate the
  /// expression are skipped; returns fallback when none can.
  [[nodiscard]] double evalMean(const ExprPtr& e, double fallback = 0.0) const;

  /// Splits into (then, else) sets according to a per-context probability
  /// expression (clamped to [0,1]; contexts that cannot evaluate it use
  /// `fallbackProb`).
  [[nodiscard]] std::pair<ContextSet, ContextSet> splitByProb(const ExprPtr& p,
                                                              double fallbackProb) const;

  /// Union of two sets with dedup of identical bindings.
  static ContextSet merged(const ContextSet& a, const ContextSet& b, size_t maxContexts);

  /// Merges duplicate bindings and truncates to the `maxContexts` heaviest,
  /// preserving total weight.
  void compact(size_t maxContexts);

  /// Weighted mean of each bound variable — the "context snapshot" attached
  /// to BET nodes for reporting.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

 private:
  [[nodiscard]] ParamEnv envFor(const Ctx& c) const;
  std::vector<Ctx> ctxs_;
};

}  // namespace skope::bet
