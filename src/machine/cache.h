// Set-associative LRU cache model used by the ground-truth simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.h"

namespace skope {

/// Derived geometry of a cache level: what the simulator's Cache and the
/// analytic trace::CacheModel must agree on. Set counts that are not powers
/// of two round down so the set index stays a mask.
struct CacheGeometry {
  uint32_t numSets = 1;
  uint32_t lineShift = 6;
  uint64_t capacityLines = 1;  ///< numSets × assoc
};

/// Validates `desc` and computes its geometry. Throws Error on a
/// non-power-of-two line size, zero associativity, or a cache smaller than
/// one set.
CacheGeometry cacheGeometry(const CacheLevelDesc& desc);

/// A single cache level with true-LRU replacement. Addresses are byte
/// addresses in the VM's flat virtual address space.
class Cache {
 public:
  explicit Cache(const CacheLevelDesc& desc);

  /// Performs one access; returns true on hit. Misses install the line.
  bool access(uint64_t addr);

  void reset();

  [[nodiscard]] uint64_t accesses() const { return accesses_; }
  [[nodiscard]] uint64_t misses() const { return misses_; }
  [[nodiscard]] double missRate() const {
    return accesses_ == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(accesses_);
  }
  [[nodiscard]] uint32_t numSets() const { return numSets_; }
  [[nodiscard]] const CacheLevelDesc& desc() const { return desc_; }

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t lastUse = 0;
    bool valid = false;  ///< tags are not sentinels: any value is a real tag
  };

  CacheLevelDesc desc_;
  uint32_t numSets_ = 1;
  uint32_t lineShift_ = 6;
  std::vector<Way> ways_;  ///< numSets_ × assoc, row-major
  uint64_t clock_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
};

/// Two-level hierarchy (L1 + LLC) as configured by a MachineModel.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const MachineModel& m) : l1_(m.l1), llc_(m.llc) {}

  enum class Level { L1, Llc, Memory };

  /// Returns the level that served the access.
  Level access(uint64_t addr);

  void reset() {
    l1_.reset();
    llc_.reset();
  }

  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const Cache& llc() const { return llc_; }

 private:
  Cache l1_;
  Cache llc_;
};

}  // namespace skope
