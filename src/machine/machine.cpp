#include "machine/machine.h"

#include <cstdio>
#include <cstring>

#include "support/diagnostics.h"

namespace skope {

std::string machineKey(const MachineModel& m) {
  std::string key;
  key.reserve(26 * 17);
  // Doubles go in as their raw bit patterns: -0.0 vs 0.0 or distinct NaNs
  // must not collide, and "%g" round-trips neither.
  auto d = [&key](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx|", static_cast<unsigned long long>(bits));
    key += buf;
  };
  auto u = [&key](uint64_t v) {
    key += std::to_string(v);
    key += '|';
  };
  auto cache = [&](const CacheLevelDesc& c) {
    u(c.sizeBytes);
    u(c.lineBytes);
    u(c.assoc);
    d(c.latencyCycles);
  };
  d(m.freqGHz);
  u(static_cast<uint64_t>(m.cores));
  u(static_cast<uint64_t>(m.issueWidth));
  u(static_cast<uint64_t>(m.simdWidthDoubles));
  d(m.autoVecQuality);
  d(m.intAluLat);
  d(m.intDivLat);
  d(m.fpAddLat);
  d(m.fpMulLat);
  d(m.fpDivLat);
  d(m.convLat);
  d(m.branchLat);
  d(m.mispredictPenalty);
  cache(m.l1);
  cache(m.llc);
  d(m.memLatencyCycles);
  d(m.memBandwidthGBs);
  d(m.mlp);
  d(m.peakFlopsPerCyclePerCore);
  d(m.network.linkLatencySec);
  d(m.network.linkBandwidthGBs);
  return key;
}

MachineModel machineByName(std::string_view name) {
  if (name == "bgq") return MachineModel::bgq();
  if (name == "xeon") return MachineModel::xeonE5_2420();
  if (name == "knl") return MachineModel::manycoreKnl();
  if (name == "arm") return MachineModel::armServer();
  throw Error("unknown machine '" + std::string(name) + "' (bgq, xeon, knl, arm)");
}

MachineModel MachineModel::bgq() {
  MachineModel m;
  m.name = "BG/Q";
  m.freqGHz = 1.6;
  m.cores = 16;
  m.issueWidth = 2;           // A2 is a 2-way in-order core
  m.simdWidthDoubles = 4;     // QPX
  m.autoVecQuality = 0.35;    // XL vectorizes only clearly simple loops
  m.intAluLat = 1;
  m.intDivLat = 32;
  m.fpAddLat = 6;
  m.fpMulLat = 6;
  m.fpDivLat = 44;            // expanded reciprocal + Newton refinement
  m.convLat = 2;
  m.branchLat = 1;
  m.mispredictPenalty = 12;
  m.l1 = {16 * 1024, 64, 8, 6};
  m.llc = {32ULL * 1024 * 1024, 128, 16, 51};  // measured: 51 cycles
  m.memLatencyCycles = 180;                    // measured: 180 cycles
  m.memBandwidthGBs = 28;
  m.mlp = 4;
  m.peakFlopsPerCyclePerCore = 8;  // 4-wide QPX FMA
  m.network = {2.5e-6, 2.0};  // 5D-torus link
  return m;
}

MachineModel MachineModel::xeonE5_2420() {
  MachineModel m;
  m.name = "Xeon E5-2420";
  m.freqGHz = 1.9;
  m.cores = 12;
  m.issueWidth = 4;           // Sandy Bridge out-of-order
  m.simdWidthDoubles = 4;     // AVX
  m.autoVecQuality = 0.9;     // GFortran -O3 vectorizes aggressively
  m.intAluLat = 1;
  m.intDivLat = 22;
  m.fpAddLat = 3;
  m.fpMulLat = 5;
  m.fpDivLat = 22;
  m.convLat = 2;
  m.branchLat = 1;
  m.mispredictPenalty = 15;
  m.l1 = {32 * 1024, 64, 8, 4};
  m.llc = {15ULL * 1024 * 1024, 64, 20, 40};
  m.memLatencyCycles = 210;   // ~110 ns at 1.9 GHz
  m.memBandwidthGBs = 42;
  m.mlp = 8;                  // deeper miss queues than the in-order A2
  m.peakFlopsPerCyclePerCore = 8;  // AVX add + mul ports
  m.network = {1.5e-6, 3.0};  // InfiniBand-class cluster fabric
  return m;
}

MachineModel MachineModel::manycoreKnl() {
  MachineModel m;
  m.name = "Manycore-KNL";
  m.freqGHz = 1.3;
  m.cores = 64;
  m.issueWidth = 2;           // narrow in-order-ish core
  m.simdWidthDoubles = 8;     // 512-bit vectors
  m.autoVecQuality = 0.85;    // vectorization is the whole point
  m.intAluLat = 1;
  m.intDivLat = 30;
  m.fpAddLat = 6;
  m.fpMulLat = 6;
  m.fpDivLat = 38;
  m.convLat = 2;
  m.branchLat = 1;
  m.mispredictPenalty = 12;
  m.l1 = {32 * 1024, 64, 8, 5};
  m.llc = {512ULL * 1024, 64, 16, 20};  // per-tile L2 slice
  m.memLatencyCycles = 200;
  m.memBandwidthGBs = 400;    // on-package HBM
  m.mlp = 10;
  m.peakFlopsPerCyclePerCore = 16;  // dual 512-bit FMA
  m.network = {1.2e-6, 10.0};
  return m;
}

MachineModel MachineModel::armServer() {
  MachineModel m;
  m.name = "ARM-server";
  m.freqGHz = 2.6;
  m.cores = 48;
  m.issueWidth = 4;
  m.simdWidthDoubles = 2;     // 128-bit NEON-class
  m.autoVecQuality = 0.7;
  m.intAluLat = 1;
  m.intDivLat = 12;
  m.fpAddLat = 3;
  m.fpMulLat = 4;
  m.fpDivLat = 16;
  m.convLat = 2;
  m.branchLat = 1;
  m.mispredictPenalty = 14;
  m.l1 = {64 * 1024, 64, 4, 4};
  m.llc = {32ULL * 1024 * 1024, 64, 16, 35};
  m.memLatencyCycles = 260;
  m.memBandwidthGBs = 150;
  m.mlp = 10;
  m.peakFlopsPerCyclePerCore = 4;
  m.network = {1.5e-6, 5.0};
  return m;
}

}  // namespace skope
