// Parameterized hardware descriptions (§V-A of the paper).
//
// The same MachineModel feeds two consumers with very different fidelity:
//   * the ground-truth timing simulator (src/sim), which uses every field
//     including division latency, auto-vectorization quality and the cache
//     geometry, and
//   * the analytic roofline model (src/roofline), which by design uses only
//     the coarse fields (peak flops, bandwidth, latencies) and a constant
//     cache miss rate — the paper's deliberate accuracy-for-speed trade.
// The gap between the two is exactly what Section VII-C of the paper
// attributes its projection errors to.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace skope {

/// Geometry and latency of one cache level.
struct CacheLevelDesc {
  uint64_t sizeBytes = 0;
  uint32_t lineBytes = 64;
  uint32_t assoc = 8;
  double latencyCycles = 1;
};

/// Inter-node network, postal (alpha-beta) model. Used by the multi-node
/// projection extension (the paper's §VIII future work): a message of b
/// bytes costs alpha + b / beta seconds.
struct NetworkDesc {
  double linkLatencySec = 2e-6;     ///< alpha: per-message latency
  double linkBandwidthGBs = 2.0;    ///< beta: per-link bandwidth
};

/// A single-node hardware configuration.
struct MachineModel {
  std::string name;
  double freqGHz = 1.0;
  int cores = 1;
  int issueWidth = 2;        ///< instructions sustained per cycle
  int simdWidthDoubles = 4;  ///< vector lanes (doubles)

  /// Fraction [0,1] describing how aggressively the native compiler
  /// auto-vectorizes: a loop with simplicity score s is vectorized when
  /// s >= 1 - autoVecQuality. Models GFortran -O3 (high) vs IBM XL
  /// (selective). Used ONLY by the simulator, never by the roofline model.
  double autoVecQuality = 0.5;

  // Operation latencies, in core cycles.
  double intAluLat = 1;
  double intDivLat = 20;
  double fpAddLat = 5;
  double fpMulLat = 5;
  double fpDivLat = 25;  ///< the simulator honors this; the roofline model
                         ///< treats all flops as equal (paper §VII-B, CFD)
  double convLat = 2;
  double branchLat = 1;
  double mispredictPenalty = 10;

  CacheLevelDesc l1;
  CacheLevelDesc llc;
  double memLatencyCycles = 180;
  double memBandwidthGBs = 30;
  double mlp = 4;  ///< sustained outstanding misses (memory level parallelism)

  double peakFlopsPerCyclePerCore = 8;  ///< FMA × SIMD width

  NetworkDesc network;  ///< inter-node links (multi-node projection)

  /// Peak flop rate of one core in Gflop/s.
  [[nodiscard]] double peakGflops() const {
    return freqGHz * peakFlopsPerCyclePerCore;
  }

  /// Seconds for a cycle count at this machine's frequency.
  [[nodiscard]] double cyclesToSeconds(double cycles) const {
    return cycles / (freqGHz * 1e9);
  }

  // --- the two validation platforms of Section VI ---

  /// IBM Blue Gene/Q node: 16 in-order PowerPC A2 cores @1.6 GHz, 16 KB L1D,
  /// shared 32 MB L2 at 51 cycles, DRAM at 180 cycles (paper's measured
  /// values); QPX 4-wide FMA; XL compiler vectorizes selectively; fp divide
  /// expands to a reciprocal-estimate + Newton iteration sequence.
  static MachineModel bgq();

  /// Intel Xeon E5-2420 node: 12 cores @1.9 GHz, 32 KB L1D, 15 MB LLC,
  /// AVX 4-wide doubles; GFortran -O3 vectorizes aggressively; fast divide;
  /// higher memory latency in core cycles.
  static MachineModel xeonE5_2420();

  // --- conceptual design points for co-design sweeps (not validated) ---

  /// A Knights-Landing-flavored many-core: many slow cores, very wide SIMD,
  /// high-bandwidth on-package memory, weak scalar pipeline.
  static MachineModel manycoreKnl();

  /// A server-ARM-flavored node: moderate SIMD, strong scalar pipeline,
  /// modest bandwidth — a contrast point for compute-bound codes.
  static MachineModel armServer();
};

/// Resolves a machine by short name: "bgq", "xeon", "knl", "arm".
/// Throws Error for unknown names (the message lists the valid ones).
MachineModel machineByName(std::string_view name);

/// Canonical byte-exact identity over every numeric field (the name is
/// deliberately excluded): equal keys imply bit-identical evaluations under
/// both the roofline model and the simulator. The sweep engine keys its
/// duplicate-config dedup on this ("sweep/dedup"), so the key must change
/// whenever a field that can affect any consumer changes.
[[nodiscard]] std::string machineKey(const MachineModel& m);

}  // namespace skope
