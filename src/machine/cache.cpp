#include "machine/cache.h"

#include "support/diagnostics.h"

namespace skope {

namespace {

uint32_t log2u(uint64_t v) {
  uint32_t n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

}  // namespace

CacheGeometry cacheGeometry(const CacheLevelDesc& desc) {
  if (desc.lineBytes == 0 || (desc.lineBytes & (desc.lineBytes - 1)) != 0) {
    throw Error("cache line size must be a power of two");
  }
  if (desc.assoc == 0) throw Error("cache associativity must be positive");
  uint64_t lines = desc.sizeBytes / desc.lineBytes;
  if (lines < desc.assoc) throw Error("cache smaller than one set");
  CacheGeometry geo;
  geo.numSets = static_cast<uint32_t>(lines / desc.assoc);
  if ((geo.numSets & (geo.numSets - 1)) != 0) {
    // round down to a power of two so the set index is a simple mask
    geo.numSets = 1u << log2u(geo.numSets);
  }
  geo.lineShift = log2u(desc.lineBytes);
  geo.capacityLines = static_cast<uint64_t>(geo.numSets) * desc.assoc;
  return geo;
}

Cache::Cache(const CacheLevelDesc& desc) : desc_(desc) {
  CacheGeometry geo = cacheGeometry(desc);
  numSets_ = geo.numSets;
  lineShift_ = geo.lineShift;
  ways_.assign(static_cast<size_t>(numSets_) * desc.assoc, Way{});
}

void Cache::reset() {
  for (auto& w : ways_) w = Way{};
  clock_ = 0;
  accesses_ = 0;
  misses_ = 0;
}

bool Cache::access(uint64_t addr) {
  ++accesses_;
  ++clock_;
  uint64_t lineAddr = addr >> lineShift_;
  uint32_t set = static_cast<uint32_t>(lineAddr) & (numSets_ - 1);
  uint64_t tag = lineAddr / numSets_;
  Way* row = &ways_[static_cast<size_t>(set) * desc_.assoc];

  Way* victim = row;
  for (uint32_t w = 0; w < desc_.assoc; ++w) {
    if (row[w].valid && row[w].tag == tag) {
      row[w].lastUse = clock_;
      return true;
    }
    // Invalid ways fill first (lastUse 0 makes them the LRU choice).
    if (row[w].lastUse < victim->lastUse) victim = &row[w];
  }
  ++misses_;
  victim->tag = tag;
  victim->lastUse = clock_;
  victim->valid = true;
  return false;
}

CacheHierarchy::Level CacheHierarchy::access(uint64_t addr) {
  if (l1_.access(addr)) return Level::L1;
  if (llc_.access(addr)) return Level::Llc;
  return Level::Memory;
}

}  // namespace skope
