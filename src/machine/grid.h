// Machine configuration grids for co-design sweeps.
//
// A grid is a base machine plus a set of axes, each varying one hardware
// field over a list of values; expanding the grid yields the full cross
// product as named MachineModel configs. This is the "one model, many
// machine configurations" input of the sweep engine (src/sweep): the paper's
// analytic projection is cheap enough to evaluate hundreds of candidate
// machines from one profiled workload model.
//
// Spec format (one directive per line in a file, or ';'-separated inline):
//
//   base = bgq                 # starting machine: bgq, xeon, knl, arm
//   membw = 15, 30, 60         # axis: explicit value list (GB/s)
//   peakflops = 2:16:2         # axis: inclusive range lo:hi:step
//   memlat = 90, 120:240:60    # lists and ranges mix freely
//
// Axes expand row-major in spec order (the last axis varies fastest), so a
// grid always enumerates in the same deterministic order regardless of how
// it is later evaluated. Field names are listed by gridFields().
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "machine/machine.h"

namespace skope {

/// One sweepable hardware field of MachineModel.
struct GridField {
  std::string_view name;  ///< spec keyword, e.g. "membw"
  std::string_view unit;  ///< for help text / reports, e.g. "GB/s"
  std::string_view help;
  void (*apply)(MachineModel&, double);
  double (*get)(const MachineModel&);
};

/// All sweepable fields, in documentation order.
const std::vector<GridField>& gridFields();

/// Looks up a field by spec keyword; nullptr when unknown.
const GridField* findGridField(std::string_view name);

/// One axis of a grid: a field and the values it takes.
struct GridAxis {
  std::string field;
  std::vector<double> values;
};

/// A named, fully-bound machine configuration produced by grid expansion.
struct MachineConfig {
  std::string name;      ///< base name + the axis bindings, e.g. "BG/Q{membw=30}"
  MachineModel machine;
};

struct MachineGrid {
  MachineModel base;
  std::vector<GridAxis> axes;

  /// Number of configs the cross product expands to (1 for no axes).
  [[nodiscard]] size_t configCount() const;

  /// Expands the cross product, row-major in axis order: the first config
  /// binds every axis to its first value, the last axis varies fastest.
  [[nodiscard]] std::vector<MachineConfig> expand() const;
};

/// Parses a grid spec (see the file header for the format). Newlines and
/// ';' both terminate directives; '#' starts a comment. Throws Error on
/// unknown fields, malformed values, or empty axes.
MachineGrid parseGridSpec(std::string_view text);

/// Reads and parses a grid spec file from disk. Throws Error if unreadable.
MachineGrid loadGridFile(const std::string& path);

/// Human-readable table of all sweepable fields with units and help text.
std::string gridFieldHelp();

}  // namespace skope
