#include "machine/grid.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/diagnostics.h"
#include "support/text.h"

namespace skope {

namespace {

// Field registry. Sizes are spec'd in natural units (KB / MB) and stored in
// bytes; everything else maps 1:1 onto a MachineModel member.
const std::vector<GridField>& registry() {
  static const std::vector<GridField> fields = {
      {"freq", "GHz", "core clock frequency",
       [](MachineModel& m, double v) { m.freqGHz = v; },
       [](const MachineModel& m) { return m.freqGHz; }},
      {"cores", "", "cores per node (parallel-loop spreading)",
       [](MachineModel& m, double v) { m.cores = static_cast<int>(v); },
       [](const MachineModel& m) { return static_cast<double>(m.cores); }},
      {"issuewidth", "instr/cycle", "sustained issue width",
       [](MachineModel& m, double v) { m.issueWidth = static_cast<int>(v); },
       [](const MachineModel& m) { return static_cast<double>(m.issueWidth); }},
      {"peakflops", "flop/cycle/core", "peak FP throughput (FMA x SIMD width)",
       [](MachineModel& m, double v) { m.peakFlopsPerCyclePerCore = v; },
       [](const MachineModel& m) { return m.peakFlopsPerCyclePerCore; }},
      {"membw", "GB/s", "DRAM bandwidth per node",
       [](MachineModel& m, double v) { m.memBandwidthGBs = v; },
       [](const MachineModel& m) { return m.memBandwidthGBs; }},
      {"memlat", "cycles", "DRAM access latency",
       [](MachineModel& m, double v) { m.memLatencyCycles = v; },
       [](const MachineModel& m) { return m.memLatencyCycles; }},
      {"mlp", "misses", "sustained outstanding misses (memory parallelism)",
       [](MachineModel& m, double v) { m.mlp = v; },
       [](const MachineModel& m) { return m.mlp; }},
      {"l1kb", "KB", "L1 data cache size",
       [](MachineModel& m, double v) { m.l1.sizeBytes = static_cast<uint64_t>(v * 1024); },
       [](const MachineModel& m) { return static_cast<double>(m.l1.sizeBytes) / 1024; }},
      {"l1lat", "cycles", "L1 hit latency",
       [](MachineModel& m, double v) { m.l1.latencyCycles = v; },
       [](const MachineModel& m) { return m.l1.latencyCycles; }},
      {"l1assoc", "ways", "L1 set associativity",
       [](MachineModel& m, double v) { m.l1.assoc = static_cast<uint32_t>(v); },
       [](const MachineModel& m) { return static_cast<double>(m.l1.assoc); }},
      {"llcmb", "MB", "last-level cache size",
       [](MachineModel& m, double v) {
         m.llc.sizeBytes = static_cast<uint64_t>(v * 1024 * 1024);
       },
       [](const MachineModel& m) {
         return static_cast<double>(m.llc.sizeBytes) / (1024 * 1024);
       }},
      {"llclat", "cycles", "last-level cache hit latency",
       [](MachineModel& m, double v) { m.llc.latencyCycles = v; },
       [](const MachineModel& m) { return m.llc.latencyCycles; }},
      {"llcassoc", "ways", "last-level cache set associativity",
       [](MachineModel& m, double v) { m.llc.assoc = static_cast<uint32_t>(v); },
       [](const MachineModel& m) { return static_cast<double>(m.llc.assoc); }},
      {"fpdivlat", "cycles", "FP divide latency (simulator only, paper §VII-B)",
       [](MachineModel& m, double v) { m.fpDivLat = v; },
       [](const MachineModel& m) { return m.fpDivLat; }},
      {"autovec", "[0,1]", "compiler auto-vectorization quality (simulator only)",
       [](MachineModel& m, double v) { m.autoVecQuality = v; },
       [](const MachineModel& m) { return m.autoVecQuality; }},
      {"linklat", "us", "network per-message latency (multi-node extension)",
       [](MachineModel& m, double v) { m.network.linkLatencySec = v * 1e-6; },
       [](const MachineModel& m) { return m.network.linkLatencySec * 1e6; }},
      {"linkbw", "GB/s", "network per-link bandwidth (multi-node extension)",
       [](MachineModel& m, double v) { m.network.linkBandwidthGBs = v; },
       [](const MachineModel& m) { return m.network.linkBandwidthGBs; }},
  };
  return fields;
}

double parseNumber(std::string_view tok, std::string_view what) {
  try {
    size_t pos = 0;
    std::string s(trim(tok));
    double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw Error("grid spec: non-numeric " + std::string(what) + " '" +
                std::string(trim(tok)) + "'");
  }
}

/// Expands one comma-separated element: a plain number, or lo:hi:step
/// (inclusive of hi up to a half-step of rounding slack).
void expandElement(std::string_view elem, std::vector<double>& out) {
  auto parts = split(elem, ':');
  if (parts.size() == 1) {
    out.push_back(parseNumber(parts[0], "axis value"));
    return;
  }
  if (parts.size() != 3) {
    throw Error("grid spec: bad range '" + std::string(trim(elem)) +
                "' (expected lo:hi:step)");
  }
  double lo = parseNumber(parts[0], "range bound");
  double hi = parseNumber(parts[1], "range bound");
  double step = parseNumber(parts[2], "range step");
  if (step <= 0 || hi < lo) {
    throw Error("grid spec: bad range '" + std::string(trim(elem)) +
                "' (need lo <= hi and step > 0)");
  }
  for (double v = lo; v <= hi + step * 1e-9; v += step) out.push_back(v);
}

}  // namespace

const std::vector<GridField>& gridFields() { return registry(); }

const GridField* findGridField(std::string_view name) {
  for (const auto& f : registry()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

size_t MachineGrid::configCount() const {
  size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<MachineConfig> MachineGrid::expand() const {
  std::vector<MachineConfig> out;
  size_t total = configCount();
  out.reserve(total);
  for (size_t idx = 0; idx < total; ++idx) {
    MachineConfig cfg;
    cfg.machine = base;
    // Decode idx row-major: the last axis varies fastest.
    size_t rem = idx;
    std::vector<size_t> pick(axes.size());
    for (size_t a = axes.size(); a-- > 0;) {
      pick[a] = rem % axes[a].values.size();
      rem /= axes[a].values.size();
    }
    std::string suffix;
    for (size_t a = 0; a < axes.size(); ++a) {
      const GridField* f = findGridField(axes[a].field);
      double v = axes[a].values[pick[a]];
      f->apply(cfg.machine, v);
      if (!suffix.empty()) suffix += ",";
      suffix += format("%s=%s", axes[a].field.c_str(), humanDouble(v, 6).c_str());
    }
    cfg.name = suffix.empty() ? base.name : base.name + "{" + suffix + "}";
    cfg.machine.name = cfg.name;
    out.push_back(std::move(cfg));
  }
  return out;
}

MachineGrid parseGridSpec(std::string_view text) {
  MachineGrid grid;
  grid.base = MachineModel::bgq();
  bool baseSeen = false;

  // Normalize ';' to newlines so inline and file specs share one path.
  std::string normalized(text);
  for (char& c : normalized) {
    if (c == ';') c = '\n';
  }

  for (std::string_view line : split(normalized, '\n')) {
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    auto kv = split(line, '=');
    if (kv.size() != 2 || trim(kv[0]).empty() || trim(kv[1]).empty()) {
      throw Error("grid spec: expected 'field = values', got '" + std::string(line) + "'");
    }
    std::string key(trim(kv[0]));
    std::string_view value = trim(kv[1]);

    if (key == "base") {
      if (baseSeen) throw Error("grid spec: duplicate 'base' directive");
      grid.base = machineByName(value);
      baseSeen = true;
      continue;
    }

    if (!findGridField(key)) {
      std::string known;
      for (const auto& f : registry()) {
        if (!known.empty()) known += ", ";
        known += f.name;
      }
      throw Error("grid spec: unknown field '" + key + "' (known: " + known + ")");
    }
    for (const auto& axis : grid.axes) {
      if (axis.field == key) throw Error("grid spec: duplicate axis '" + key + "'");
    }

    GridAxis axis;
    axis.field = key;
    for (std::string_view elem : split(value, ',')) expandElement(elem, axis.values);
    if (axis.values.empty()) throw Error("grid spec: axis '" + key + "' has no values");
    grid.axes.push_back(std::move(axis));
  }
  return grid;
}

MachineGrid loadGridFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read grid spec '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return parseGridSpec(ss.str());
}

std::string gridFieldHelp() {
  std::string out = "sweepable machine fields (base values in parentheses are BG/Q):\n";
  MachineModel bgq = MachineModel::bgq();
  for (const auto& f : registry()) {
    std::string unit = f.unit.empty() ? "" : " [" + std::string(f.unit) + "]";
    out += format("  %-12s %s%s (%s)\n", std::string(f.name).c_str(),
                  std::string(f.help).c_str(), unit.c_str(),
                  humanDouble(f.get(bgq), 6).c_str());
  }
  return out;
}

}  // namespace skope
