// Hot path extraction (paper §V-C) — contribution #3.
//
// Each hot spot is a set of BET nodes; back-tracing every instance to the
// root yields its control-flow path, and merging the paths of all selected
// hot spots (shared prefixes collapse, distinct suffixes branch) produces the
// hot path: a stripped-down rendition of the execution flow containing only
// the hot spots and the control flow that reaches them, annotated with
// iteration counts, probabilities, ENR and the context values — the raw
// material for mini-application construction.
#pragma once

#include <memory>
#include <string>

#include "bet/bet.h"
#include "hotspot/hotspot.h"

namespace skope::hotpath {

struct HotPathNode {
  const bet::BetNode* node = nullptr;  ///< borrowed from the BET
  bool isHotSpot = false;
  std::vector<std::unique_ptr<HotPathNode>> kids;

  [[nodiscard]] size_t subtreeSize() const;
};

struct HotPath {
  std::unique_ptr<HotPathNode> root;
  size_t hotSpotInstances = 0;  ///< BET instances of selected spots on the path

  [[nodiscard]] size_t size() const { return root ? root->subtreeSize() : 0; }
};

/// Extracts the merged hot path of `selection` from `bet`. The BET must
/// outlive the returned HotPath (nodes are borrowed).
HotPath extractHotPath(const bet::Bet& bet, const hotspot::Selection& selection);

/// Renders the hot path as an indented tree with per-node annotations
/// (probability, expected iterations, ENR, context values for hot spots).
/// ENR and time default to the estimator-filled fields inside the BET nodes;
/// pass `ann` (a side table from the const roofline::estimate overload) to
/// print a shared read-only BET that was never annotated in place.
std::string printHotPath(const HotPath& path, const vm::Module* mod = nullptr,
                         const roofline::BetAnnotations* ann = nullptr);

}  // namespace skope::hotpath
