#include "hotpath/hotpath.h"

#include <set>

#include "support/text.h"

namespace skope::hotpath {

using bet::BetKind;
using bet::BetNode;

size_t HotPathNode::subtreeSize() const {
  size_t n = 1;
  for (const auto& k : kids) n += k->subtreeSize();
  return n;
}

namespace {

bool nodeIsSelected(const BetNode& n, const hotspot::Selection& sel) {
  if (!n.isBlock()) return false;
  uint32_t origin =
      n.kind == BetKind::LibCall ? vm::libRegion(n.builtinIndex) : n.origin;
  return sel.contains(origin);
}

void markPaths(const BetNode& n, const hotspot::Selection& sel,
               std::set<const BetNode*>& onPath, size_t& instances) {
  if (nodeIsSelected(n, sel)) {
    ++instances;
    for (const BetNode* p = &n; p != nullptr; p = p->parent) {
      if (!onPath.insert(p).second) break;  // rest of the chain already marked
    }
  }
  for (const auto& k : n.kids) markPaths(*k, sel, onPath, instances);
}

std::unique_ptr<HotPathNode> cloneMarked(const BetNode& n,
                                         const std::set<const BetNode*>& onPath,
                                         const hotspot::Selection& sel) {
  auto out = std::make_unique<HotPathNode>();
  out->node = &n;
  out->isHotSpot = nodeIsSelected(n, sel);
  for (const auto& k : n.kids) {
    if (onPath.count(k.get())) out->kids.push_back(cloneMarked(*k, onPath, sel));
  }
  return out;
}

void printNode(const HotPathNode& hp, int depth, const vm::Module* mod,
               const roofline::BetAnnotations* ann, std::string& out) {
  const BetNode& n = *hp.node;
  double enr = n.enr;
  double totalSeconds = n.totalSeconds;
  if (ann) {
    if (auto it = ann->find(&n); it != ann->end()) {
      enr = it->second.enr;
      totalSeconds = it->second.totalSeconds;
    }
  }
  for (int i = 0; i < depth; ++i) out += "| ";
  if (hp.isHotSpot) out += "* ";
  switch (n.kind) {
    case BetKind::Func:
      out += "func " + n.name;
      break;
    case BetKind::Loop:
      out += mod ? "loop " + vm::regionLabel(*mod, n.origin) : format("loop @%u", n.origin);
      out += format(" x%.6g", n.numIter);
      break;
    case BetKind::BranchThen:
      out += format("branch-then @%u", n.origin);
      break;
    case BetKind::BranchElse:
      out += format("branch-else @%u", n.origin);
      break;
    case BetKind::LibCall:
      out += "lib:" + n.name;
      break;
    case BetKind::Comm:
      out += format("comm @%u %.4g bytes", n.origin, n.commBytes);
      break;
    case BetKind::Comp:
      out += "comp";
      break;
  }
  if (n.prob < 1.0) out += format(" p=%.4g", n.prob);
  out += format(" enr=%.6g", enr);
  if (totalSeconds > 0) out += format(" t=%.3gs", totalSeconds);
  if (hp.isHotSpot && !n.context.empty()) {
    out += " ctx{";
    bool first = true;
    for (const auto& [k, v] : n.context) {
      if (!first) out += ", ";
      first = false;
      out += k + "=" + humanDouble(v, 6);
    }
    out += "}";
  }
  out += "\n";
  for (const auto& k : hp.kids) printNode(*k, depth + 1, mod, ann, out);
}

}  // namespace

HotPath extractHotPath(const bet::Bet& bet, const hotspot::Selection& selection) {
  HotPath path;
  if (!bet.root) return path;
  std::set<const BetNode*> onPath;
  markPaths(*bet.root, selection, onPath, path.hotSpotInstances);
  if (onPath.empty()) return path;
  path.root = cloneMarked(*bet.root, onPath, selection);
  return path;
}

std::string printHotPath(const HotPath& path, const vm::Module* mod,
                         const roofline::BetAnnotations* ann) {
  std::string out;
  if (!path.root) return "(empty hot path)\n";
  printNode(*path.root, 0, mod, ann, out);
  return out;
}

}  // namespace skope::hotpath
