#include "vm/interp.h"

#include <cmath>
#include <cstring>

#include "support/text.h"
#include "vm/builtins.h"

namespace skope::vm {

uint64_t OpCounters::regionTotal(uint32_t region) const {
  if (region >= numRegions()) return 0;
  const uint64_t* r = row(region);
  uint64_t n = 0;
  for (size_t c = 0; c < kNumOpClasses; ++c) n += r[c];
  return n;
}

uint64_t OpCounters::classTotal(OpClass c) const {
  uint64_t n = 0;
  for (size_t i = static_cast<size_t>(c); i < flat.size(); i += kNumOpClasses) {
    n += flat[i];
  }
  return n;
}

uint64_t OpCounters::grandTotal() const {
  uint64_t n = 0;
  for (uint64_t v : flat) n += v;
  return n;
}

Vm::Vm(const Module& mod) : mod_(mod) {
  paramValues_.assign(mod.paramNames.size(), 0.0);
  paramBound_.assign(mod.paramNames.size(), false);
  for (size_t i = 0; i < mod.paramDefaults.size(); ++i) {
    if (!std::isnan(mod.paramDefaults[i])) {
      paramValues_[i] = mod.paramDefaults[i];
      paramBound_[i] = true;
    }
  }
  for (size_t i = 0; i < mod.paramNames.size(); ++i) paramIndex_[mod.paramNames[i]] = i;
  for (size_t i = 0; i < mod.globalScalarNames.size(); ++i) {
    scalarIndex_[mod.globalScalarNames[i]] = i;
  }
  for (size_t i = 0; i < mod.arrayNames.size(); ++i) arrayIndex_[mod.arrayNames[i]] = i;
}

size_t Vm::lookup(const std::unordered_map<std::string, size_t>& index,
                  const std::string& name, const char* what) const {
  auto it = index.find(name);
  if (it == index.end()) {
    throw Error(std::string(what) + ": no " +
                (&index == &paramIndex_   ? "param"
                 : &index == &scalarIndex_ ? "global scalar"
                                           : "array") +
                " named '" + name + "'");
  }
  return it->second;
}

void Vm::bindParam(const std::string& name, double value) {
  size_t i = lookup(paramIndex_, name, "bindParam");
  paramValues_[i] = value;
  paramBound_[i] = true;
}

void Vm::bindParams(const std::map<std::string, double>& values) {
  for (const auto& [k, v] : values) bindParam(k, v);
}

double Vm::paramValue(const std::string& name) const {
  return paramValues_[lookup(paramIndex_, name, "paramValue")];
}

double Vm::scalar(const std::string& name) const {
  return globalScalars_[lookup(scalarIndex_, name, "scalar")];
}

const std::vector<double>& Vm::arrayData(const std::string& name) const {
  return arrays_[lookup(arrayIndex_, name, "arrayData")];
}

const ArrayInfo& Vm::arrayInfo(const std::string& name) const {
  return arrayInfos_[lookup(arrayIndex_, name, "arrayInfo")];
}

double Vm::evalDimExpr(const minic::ExprNode& e) const {
  using minic::BinOp;
  using minic::ExprKind;
  switch (e.kind) {
    case ExprKind::IntLit:
      return e.numValue;
    case ExprKind::VarRef:
      return paramValues_[static_cast<size_t>(e.paramIndex >= 0 ? e.paramIndex
                                                                : e.globalIndex)];
    case ExprKind::Binary: {
      double a = evalDimExpr(*e.args[0]);
      double b = evalDimExpr(*e.args[1]);
      switch (e.bin) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div: return std::trunc(a / b);
        case BinOp::Mod: return std::fmod(a, b);
        default: break;
      }
      break;
    }
    default:
      break;
  }
  throw Error(e.loc, "unsupported array dimension expression");
}

void Vm::allocate() {
  for (size_t i = 0; i < paramBound_.size(); ++i) {
    if (!paramBound_[i]) {
      throw Error("param '" + mod_.paramNames[i] + "' is unbound and has no default");
    }
  }

  globalScalars_.assign(mod_.globalScalarNames.size(), 0.0);
  arrays_.clear();
  arrayInfos_.clear();

  // Lay arrays out in a flat virtual address space, page-aligned, so the
  // cache simulator sees realistic disjoint address ranges.
  uint64_t nextBase = 4096;
  for (size_t i = 0; i < mod_.arrayNames.size(); ++i) {
    ArrayInfo info;
    info.name = mod_.arrayNames[i];
    info.elemType = mod_.arrayElemTypes[i];
    int64_t total = 1;
    for (const minic::ExprNode* dimExpr : mod_.arrayDims[i]) {
      auto extent = static_cast<int64_t>(evalDimExpr(*dimExpr));
      if (extent <= 0) {
        throw Error("array '" + info.name + "' has non-positive extent " +
                    std::to_string(extent));
      }
      info.dims.push_back(extent);
      total *= extent;
    }
    info.totalElems = total;
    info.baseAddr = nextBase;
    nextBase += static_cast<uint64_t>(total) * 8;
    nextBase = (nextBase + 4095) & ~4095ULL;  // page-align the next array
    arrays_.emplace_back(static_cast<size_t>(total), 0.0);
    arrayInfos_.push_back(std::move(info));
  }
}

void Vm::fail(const Instr& in, const std::string& msg) const {
  auto it = mod_.regions.find(in.region);
  std::string where = it != mod_.regions.end() ? it->second.label() : "?";
  throw Error("vm: " + msg + " (in " + where + ")");
}

void Vm::run(Tracer* tracer) {
  allocate();
  tracer_ = tracer;
  uint32_t maxRegion = 0;
  for (const auto& [id, info] : mod_.regions) maxRegion = std::max(maxRegion, id);
  counters_.reset(maxRegion + 1);
  executed_ = 0;
  callDepth_ = 0;
  stack_.clear();
  stack_.reserve(4096);
  if (tracer_ != nullptr) {
    execFunc<true>(mod_.mainIndex);
  } else {
    execFunc<false>(mod_.mainIndex);
  }
  tracer_ = nullptr;
}

template <bool Traced>
double Vm::execFunc(int funcIndex) {
  if (++callDepth_ > 512) throw Error("vm: call depth exceeded 512 (runaway recursion?)");
  const FuncCode& fn = mod_.funcs[static_cast<size_t>(funcIndex)];

  // Pop arguments into the new frame's locals.
  std::vector<double> locals(static_cast<size_t>(fn.numLocals), 0.0);
  for (int i = fn.numParams - 1; i >= 0; --i) {
    locals[static_cast<size_t>(i)] = stack_.back();
    stack_.pop_back();
  }

  // Flat counter base: one indexed add per counted op, no per-region row
  // lookup. Stable for the whole run (sized in run()).
  uint64_t* const counts = counters_.flat.data();
  auto count = [&](uint32_t region, OpClass c) {
    counts[static_cast<size_t>(region) * kNumOpClasses + static_cast<size_t>(c)] += 1;
  };

  const Instr* code = fn.code.data();
  size_t pc = 0;
  double retVal = 0.0;

  auto pop = [&]() {
    double v = stack_.back();
    stack_.pop_back();
    return v;
  };

  while (true) {
    const Instr& in = code[pc];
    if (++executed_ > maxOps_) {
      fail(in, format("dynamic instruction budget exceeded (%llu ops; raise it with "
                      "--max-ops or Vm::setMaxOps)",
                      static_cast<unsigned long long>(maxOps_)));
    }
    // Throws CancelledError directly (not fail(): the sweep's exception
    // barrier must see the reason to classify a timeout vs. a real error).
    if ((executed_ & kCancelCheckMask) == 0) cancel_.throwIfExpired("vm");
    switch (in.op) {
      case Op::PushConst: stack_.push_back(in.imm); break;
      case Op::LoadLocal: stack_.push_back(locals[static_cast<size_t>(in.a)]); break;
      case Op::StoreLocal: locals[static_cast<size_t>(in.a)] = pop(); break;
      case Op::LoadParam: stack_.push_back(paramValues_[static_cast<size_t>(in.a)]); break;
      case Op::LoadGlobal: stack_.push_back(globalScalars_[static_cast<size_t>(in.a)]); break;
      case Op::StoreGlobal: globalScalars_[static_cast<size_t>(in.a)] = pop(); break;

      case Op::LoadElem:
      case Op::StoreElem: {
        const ArrayInfo& info = arrayInfos_[static_cast<size_t>(in.a)];
        int nd = in.b;
        double value = 0.0;
        if (in.op == Op::StoreElem) value = pop();
        int64_t flat = 0;
        // Indices were pushed left-to-right; they sit at the stack top.
        size_t idxBase = stack_.size() - static_cast<size_t>(nd);
        for (int d = 0; d < nd; ++d) {
          auto ix = static_cast<int64_t>(stack_[idxBase + static_cast<size_t>(d)]);
          int64_t extent = info.dims[static_cast<size_t>(d)];
          if (ix < 0 || ix >= extent) {
            fail(in, format("index %lld out of bounds [0,%lld) in dim %d of array '%s'",
                            static_cast<long long>(ix), static_cast<long long>(extent), d,
                            info.name.c_str()));
          }
          flat = flat * extent + ix;
        }
        stack_.resize(idxBase);
        uint64_t addr = info.baseAddr + static_cast<uint64_t>(flat) * 8;
        auto& data = arrays_[static_cast<size_t>(in.a)];
        if (in.op == Op::LoadElem) {
          stack_.push_back(data[static_cast<size_t>(flat)]);
          count(in.region, OpClass::Load);
          if constexpr (Traced) tracer_->onLoad(in.region, addr);
        } else {
          data[static_cast<size_t>(flat)] = value;
          count(in.region, OpClass::Store);
          if constexpr (Traced) tracer_->onStore(in.region, addr);
        }
        break;
      }

      case Op::AddI: { double b = pop(); stack_.back() += b; count(in.region, OpClass::IntAlu); break; }
      case Op::SubI: { double b = pop(); stack_.back() -= b; count(in.region, OpClass::IntAlu); break; }
      case Op::MulI: { double b = pop(); stack_.back() *= b; count(in.region, OpClass::IntAlu); break; }
      case Op::DivI: {
        double b = pop();
        if (b == 0) fail(in, "integer division by zero");
        stack_.back() = std::trunc(stack_.back() / b);
        count(in.region, OpClass::IntDiv);
        break;
      }
      case Op::ModI: {
        double b = pop();
        if (b == 0) fail(in, "modulo by zero");
        stack_.back() = std::fmod(stack_.back(), b);
        count(in.region, OpClass::IntDiv);
        break;
      }
      case Op::AddR: { double b = pop(); stack_.back() += b; count(in.region, OpClass::FpAdd); break; }
      case Op::SubR: { double b = pop(); stack_.back() -= b; count(in.region, OpClass::FpAdd); break; }
      case Op::MulR: { double b = pop(); stack_.back() *= b; count(in.region, OpClass::FpMul); break; }
      case Op::DivR: {
        double b = pop();
        stack_.back() /= b;
        count(in.region, OpClass::FpDiv);
        break;
      }
      case Op::NegI: stack_.back() = -stack_.back(); count(in.region, OpClass::IntAlu); break;
      case Op::NegR: stack_.back() = -stack_.back(); count(in.region, OpClass::FpAdd); break;
      case Op::NotI: stack_.back() = (stack_.back() == 0.0) ? 1.0 : 0.0; count(in.region, OpClass::IntAlu); break;
      case Op::AndL: { double b = pop(); stack_.back() = (stack_.back() != 0.0 && b != 0.0) ? 1.0 : 0.0; count(in.region, OpClass::IntAlu); break; }
      case Op::OrL: { double b = pop(); stack_.back() = (stack_.back() != 0.0 || b != 0.0) ? 1.0 : 0.0; count(in.region, OpClass::IntAlu); break; }

      case Op::CmpEqI: case Op::CmpEqR: { double b = pop(); stack_.back() = (stack_.back() == b) ? 1.0 : 0.0; count(in.region, in.op == Op::CmpEqI ? OpClass::IntAlu : OpClass::FpAdd); break; }
      case Op::CmpNeI: case Op::CmpNeR: { double b = pop(); stack_.back() = (stack_.back() != b) ? 1.0 : 0.0; count(in.region, in.op == Op::CmpNeI ? OpClass::IntAlu : OpClass::FpAdd); break; }
      case Op::CmpLtI: case Op::CmpLtR: { double b = pop(); stack_.back() = (stack_.back() < b) ? 1.0 : 0.0; count(in.region, in.op == Op::CmpLtI ? OpClass::IntAlu : OpClass::FpAdd); break; }
      case Op::CmpLeI: case Op::CmpLeR: { double b = pop(); stack_.back() = (stack_.back() <= b) ? 1.0 : 0.0; count(in.region, in.op == Op::CmpLeI ? OpClass::IntAlu : OpClass::FpAdd); break; }
      case Op::CmpGtI: case Op::CmpGtR: { double b = pop(); stack_.back() = (stack_.back() > b) ? 1.0 : 0.0; count(in.region, in.op == Op::CmpGtI ? OpClass::IntAlu : OpClass::FpAdd); break; }
      case Op::CmpGeI: case Op::CmpGeR: { double b = pop(); stack_.back() = (stack_.back() >= b) ? 1.0 : 0.0; count(in.region, in.op == Op::CmpGeI ? OpClass::IntAlu : OpClass::FpAdd); break; }

      case Op::I2R: count(in.region, OpClass::Conv); break;
      case Op::R2I: stack_.back() = std::trunc(stack_.back()); count(in.region, OpClass::Conv); break;

      case Op::Jump: pc = static_cast<size_t>(in.a); continue;
      case Op::JumpIfZero: {
        bool taken = pop() != 0.0;  // taken == condition true == fall through
        count(in.region, OpClass::Branch);
        if constexpr (Traced) tracer_->onBranch(in.region, static_cast<uint32_t>(in.b), taken);
        if (!taken) {
          pc = static_cast<size_t>(in.a);
          continue;
        }
        break;
      }

      case Op::CallFn: {
        count(in.region, OpClass::Call);
        if constexpr (Traced) tracer_->onCall(in.region, in.a);
        double r = execFunc<Traced>(in.a);
        // execFunc consumed the args; Ret with a=1 signals a return value.
        if (retHasValue_) stack_.push_back(r);
        break;
      }

      case Op::CallBuiltin: {
        count(in.region, OpClass::LibCall);
        if constexpr (Traced) tracer_->onLibCall(in.region, in.a);
        int nargs = in.b;
        double args[4] = {0, 0, 0, 0};
        for (int i = nargs - 1; i >= 0; --i) args[i] = pop();
        stack_.push_back(callBuiltin(in.a, args, rng_));
        break;
      }

      case Op::Ret: {
        if (in.a == 1) {
          retVal = pop();
          retHasValue_ = true;
        } else {
          retHasValue_ = false;
        }
        --callDepth_;
        return retVal;
      }

      case Op::Halt:
        --callDepth_;
        return retVal;

      case Op::PopV: stack_.pop_back(); break;
    }
    ++pc;
  }
}

template double Vm::execFunc<true>(int funcIndex);
template double Vm::execFunc<false>(int funcIndex);

}  // namespace skope::vm
