// Bytecode module produced by the MiniC compiler and executed by the VM.
//
// The VM serves two roles from the paper's workflow (Figure 1):
//   1. the *local branch profiler* (gcov substitute) that measures branch
//      fall-through probabilities and loop trip counts, and
//   2. the execution substrate of the *ground-truth timing simulator* that
//      stands in for the paper's real BG/Q and Xeon profiling runs.
//
// Every instruction is tagged with the *region id* (the AST NodeId of the
// innermost enclosing loop, or of the function when outside any loop). All
// cost attribution — in the VM's native op counters, in the simulator, and in
// the analytic model — is keyed by these region ids.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace skope::vm {

/// Coarse instruction classes used for op-mix accounting. The simulator and
/// the roofline model both consume mixes expressed in these classes.
enum class OpClass : uint8_t {
  IntAlu,   ///< integer add/sub/mul/logic, compares
  IntDiv,   ///< integer divide / modulo
  FpAdd,    ///< floating add/sub/neg
  FpMul,    ///< floating multiply
  FpDiv,    ///< floating divide
  Load,     ///< array element read
  Store,    ///< array element write
  Branch,   ///< conditional jump
  Call,     ///< user function call
  LibCall,  ///< builtin library call (exp, rand, ...)
  Conv,     ///< int<->real conversion
  Count_,
};
constexpr size_t kNumOpClasses = static_cast<size_t>(OpClass::Count_);

std::string_view opClassName(OpClass c);

enum class Op : uint8_t {
  PushConst,    ///< push imm
  LoadLocal,    ///< push locals[a]
  StoreLocal,   ///< locals[a] = pop
  LoadParam,    ///< push params[a]
  LoadGlobal,   ///< push globalScalars[a]
  StoreGlobal,  ///< globalScalars[a] = pop
  LoadElem,     ///< a=array, b=ndims; pop ndims indices, push element
  StoreElem,    ///< a=array, b=ndims; pop value then ndims indices
  AddI, SubI, MulI, DivI, ModI,
  AddR, SubR, MulR, DivR,
  NegI, NegR, NotI,
  AndL, OrL,    ///< eager logical and/or (MiniC has no short-circuit)
  CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,
  CmpEqR, CmpNeR, CmpLtR, CmpLeR, CmpGtR, CmpGeR,
  I2R,          ///< numeric no-op (ints are stored as doubles); mix marker
  R2I,          ///< truncate toward zero
  Jump,         ///< pc = a
  JumpIfZero,   ///< pop; if zero pc = a. b = branch site NodeId
  CallFn,       ///< a = function index, b = #args
  CallBuiltin,  ///< a = builtin index, b = #args
  Ret,          ///< a = 1 if a return value is on the stack
  Halt,
  PopV,         ///< discard top of stack (unused call result)
};

struct Instr {
  Op op = Op::Halt;
  int32_t a = 0;
  int32_t b = 0;
  double imm = 0.0;
  uint32_t region = 0;  ///< region id (loop / function NodeId)
};

/// What kind of program region a region id names.
enum class RegionKind { Function, Loop };

/// Display and bookkeeping info for one region (loop or function). Regions
/// are the "code blocks" of the paper's hot-spot analysis.
struct RegionInfo {
  uint32_t id = 0;
  RegionKind kind = RegionKind::Function;
  std::string funcName;    ///< enclosing function
  uint32_t line = 0;       ///< source line of the loop / function header
  uint32_t parent = 0;     ///< enclosing region id (0 for function regions)
  int depth = 0;           ///< loop nesting depth inside the function
  size_t staticInstrs = 0; ///< compiled instruction count attributed here

  /// Short unique label, e.g. "diffuse@L42".
  [[nodiscard]] std::string label() const;
};

struct FuncCode {
  std::string name;
  int numParams = 0;
  int numLocals = 0;
  uint32_t regionId = 0;  ///< region id of the function body
  std::vector<Instr> code;
};

/// Storage layout of one global array in the VM's flat virtual address space
/// (used by the cache simulator).
struct ArrayInfo {
  std::string name;
  minic::Type elemType = minic::Type::Real;
  std::vector<uint32_t> dimGlobals;  ///< indices of dim exprs — resolved at alloc
  uint64_t baseAddr = 0;             ///< assigned at allocation time
  std::vector<int64_t> dims;         ///< resolved extents
  int64_t totalElems = 0;
};

/// Library builtins get pseudo-region ids so that `exp` / `rand` can appear
/// as hot spots of their own, exactly as in the paper's SRAD result. Both the
/// ground-truth simulator and the analytic model attribute library time to
/// these ids, which is what lets hot-spot selections be compared exactly.
constexpr uint32_t kLibRegionBase = 0x40000000u;

constexpr uint32_t libRegion(int builtinIndex) {
  return kLibRegionBase + static_cast<uint32_t>(builtinIndex);
}
constexpr bool isLibRegion(uint32_t region) { return region >= kLibRegionBase; }
constexpr int libRegionBuiltin(uint32_t region) {
  return static_cast<int>(region - kLibRegionBase);
}

/// A compiled MiniC program.
struct Module {
  std::vector<FuncCode> funcs;
  int mainIndex = -1;
  std::vector<std::string> paramNames;
  std::vector<double> paramDefaults;       ///< NaN when no default
  std::vector<std::string> globalScalarNames;
  std::vector<minic::Type> globalScalarTypes;
  size_t numArrays = 0;
  std::vector<std::string> arrayNames;
  std::vector<minic::Type> arrayElemTypes;
  /// Per-array dimension expressions, kept as AST clones evaluated at
  /// allocation time against the bound params.
  std::vector<std::vector<const minic::ExprNode*>> arrayDims;

  std::map<uint32_t, RegionInfo> regions;

  [[nodiscard]] int funcIndexOf(std::string_view name) const;
  [[nodiscard]] size_t totalStaticInstrs() const;
};

/// Label for any region id, real or library pseudo-region (e.g. "lib:exp").
std::string regionLabel(const Module& mod, uint32_t region);

/// Static instruction count of a region; library pseudo-regions use their
/// builtin's nominal mix size.
size_t regionStaticInstrs(const Module& mod, uint32_t region);

}  // namespace skope::vm
