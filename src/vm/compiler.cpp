#include "vm/compiler.h"

#include <cmath>

#include "minic/builtins.h"
#include "support/text.h"

namespace skope::vm {

using minic::BinOp;
using minic::ExprKind;
using minic::ExprNode;
using minic::FuncDecl;
using minic::Program;
using minic::StmtKind;
using minic::StmtNode;
using minic::Type;
using minic::UnOp;

namespace {

/// Remaps sema's indices into Program::globals (where arrays and scalars are
/// interleaved) onto the Module's separate scalar and array tables.
struct GlobalRemap {
  std::vector<int> scalarIndex;  ///< prog global idx -> module scalar idx (-1 if array)
  std::vector<int> arrayIndex;   ///< prog global idx -> module array idx (-1 if scalar)
};

class FuncCompiler {
 public:
  FuncCompiler(const Program& prog, Module& mod, const GlobalRemap& remap,
               const FuncDecl& fn)
      : prog_(prog), mod_(mod), remap_(remap), fn_(fn) {}

  FuncCode run() {
    code_.name = fn_.name;
    code_.numParams = static_cast<int>(fn_.params.size());
    code_.numLocals = fn_.numLocalSlots;
    code_.regionId = fn_.id;

    RegionInfo funcRegion;
    funcRegion.id = fn_.id;
    funcRegion.kind = RegionKind::Function;
    funcRegion.funcName = fn_.name;
    funcRegion.line = fn_.loc.line;
    funcRegion.parent = 0;
    funcRegion.depth = 0;
    mod_.regions.emplace(fn_.id, funcRegion);

    regionStack_.push_back(fn_.id);
    collectSlotTypes(fn_.body);
    compileStmts(fn_.body);
    // A function falling off the end returns (0 for non-void).
    if (fn_.retType == Type::Void) {
      emit(Op::Ret, 0);
    } else {
      emit(Op::PushConst, 0, 0, 0.0);
      emit(Op::Ret, 1);
    }

    // Attribute static instruction counts to regions.
    for (const Instr& in : code_.code) {
      mod_.regions.at(in.region).staticInstrs += 1;
    }
    return std::move(code_);
  }

 private:
  uint32_t curRegion() const { return regionStack_.back(); }

  size_t emit(Op op, int32_t a = 0, int32_t b = 0, double imm = 0.0) {
    code_.code.push_back({op, a, b, imm, curRegion()});
    return code_.code.size() - 1;
  }

  void patchJump(size_t at) { code_.code[at].a = static_cast<int32_t>(code_.code.size()); }

  void collectSlotTypes(const std::vector<minic::StmtUP>& body) {
    slotTypes_.assign(static_cast<size_t>(fn_.numLocalSlots), Type::Real);
    for (size_t i = 0; i < fn_.params.size(); ++i) {
      slotTypes_[i] = fn_.params[i].type;
    }
    minic::forEachStmt(body, [&](const StmtNode& s) {
      if (s.kind == StmtKind::VarDecl && s.localSlot >= 0) {
        slotTypes_[static_cast<size_t>(s.localSlot)] = s.declType;
      }
    });
  }

  // Emits a conversion so the value on the stack has type `want`.
  void convert(Type have, Type want) {
    if (have == want) return;
    if (have == Type::Int && want == Type::Real) {
      emit(Op::I2R);
    } else if (have == Type::Real && want == Type::Int) {
      emit(Op::R2I);
    }
  }

  void compileStmts(const std::vector<minic::StmtUP>& stmts) {
    for (const auto& s : stmts) compileStmt(*s);
  }

  void compileStmt(const StmtNode& s) {
    switch (s.kind) {
      case StmtKind::Block:
        compileStmts(s.body);
        return;

      case StmtKind::VarDecl:
        if (s.rhs) {
          compileExpr(*s.rhs);
          convert(s.rhs->type, slotTypes_[static_cast<size_t>(s.localSlot)]);
          emit(Op::StoreLocal, s.localSlot);
        }
        return;

      case StmtKind::Assign:
        compileAssign(s);
        return;

      case StmtKind::ExprStmt: {
        compileExpr(*s.rhs);
        if (s.rhs->type != Type::Void) emit(Op::PopV);
        return;
      }

      case StmtKind::If: {
        compileExpr(*s.cond);
        size_t jz = emit(Op::JumpIfZero, -1, static_cast<int32_t>(s.id));
        compileStmts(s.body);
        if (s.elseBody.empty()) {
          patchJump(jz);
        } else {
          size_t jend = emit(Op::Jump, -1);
          patchJump(jz);
          compileStmts(s.elseBody);
          patchJump(jend);
        }
        return;
      }

      case StmtKind::For:
        compileFor(s);
        return;

      case StmtKind::While:
        compileWhile(s);
        return;

      case StmtKind::Return:
        if (s.rhs) {
          compileExpr(*s.rhs);
          convert(s.rhs->type, fn_.retType);
          emit(Op::Ret, 1);
        } else {
          emit(Op::Ret, 0);
        }
        return;

      case StmtKind::Break:
        loops_.back().breakJumps.push_back(emit(Op::Jump, -1));
        return;

      case StmtKind::Continue:
        loops_.back().continueJumps.push_back(emit(Op::Jump, -1));
        return;
    }
  }

  void compileAssign(const StmtNode& s) {
    if (s.arrayIndex >= 0) {
      for (const auto& ix : s.lhsIndices) compileExpr(*ix);
      compileExpr(*s.rhs);
      convert(s.rhs->type, prog_.globals[static_cast<size_t>(s.arrayIndex)].elemType);
      emit(Op::StoreElem, remap_.arrayIndex[static_cast<size_t>(s.arrayIndex)],
           static_cast<int32_t>(s.lhsIndices.size()));
      return;
    }
    compileExpr(*s.rhs);
    if (s.localSlot >= 0) {
      convert(s.rhs->type, slotTypes_[static_cast<size_t>(s.localSlot)]);
      emit(Op::StoreLocal, s.localSlot);
      return;
    }
    convert(s.rhs->type, prog_.globals[static_cast<size_t>(s.globalIndex)].elemType);
    emit(Op::StoreGlobal, remap_.scalarIndex[static_cast<size_t>(s.globalIndex)]);
  }

  struct LoopCtx {
    std::vector<size_t> breakJumps;
    std::vector<size_t> continueJumps;
  };

  void enterLoopRegion(const StmtNode& s) {
    RegionInfo r;
    r.id = s.id;
    r.kind = RegionKind::Loop;
    r.funcName = fn_.name;
    r.line = s.loc.line;
    r.parent = curRegion();
    r.depth = static_cast<int>(regionStack_.size());  // function is depth 0
    mod_.regions.emplace(s.id, r);
    regionStack_.push_back(s.id);
  }

  void compileFor(const StmtNode& s) {
    // init runs in the enclosing region; cond/step/body belong to the loop.
    compileStmt(*s.init);
    enterLoopRegion(s);
    loops_.emplace_back();
    size_t top = code_.code.size();
    compileExpr(*s.cond);
    size_t exitJz = emit(Op::JumpIfZero, -1, static_cast<int32_t>(s.id));
    compileStmts(s.body);
    size_t stepAt = code_.code.size();
    compileStmt(*s.step);
    emit(Op::Jump, static_cast<int32_t>(top));
    patchJump(exitJz);
    for (size_t j : loops_.back().breakJumps) patchJump(j);
    for (size_t j : loops_.back().continueJumps) {
      code_.code[j].a = static_cast<int32_t>(stepAt);
    }
    loops_.pop_back();
    regionStack_.pop_back();
  }

  void compileWhile(const StmtNode& s) {
    enterLoopRegion(s);
    loops_.emplace_back();
    size_t top = code_.code.size();
    compileExpr(*s.cond);
    size_t exitJz = emit(Op::JumpIfZero, -1, static_cast<int32_t>(s.id));
    compileStmts(s.body);
    emit(Op::Jump, static_cast<int32_t>(top));
    patchJump(exitJz);
    for (size_t j : loops_.back().breakJumps) patchJump(j);
    for (size_t j : loops_.back().continueJumps) {
      code_.code[j].a = static_cast<int32_t>(top);
    }
    loops_.pop_back();
    regionStack_.pop_back();
  }

  void compileExpr(const ExprNode& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
        emit(Op::PushConst, 0, 0, e.numValue);
        return;

      case ExprKind::VarRef:
        if (e.localSlot >= 0) {
          emit(Op::LoadLocal, e.localSlot);
        } else if (e.paramIndex >= 0) {
          emit(Op::LoadParam, e.paramIndex);
        } else {
          emit(Op::LoadGlobal, remap_.scalarIndex[static_cast<size_t>(e.globalIndex)]);
        }
        return;

      case ExprKind::ArrayRef:
        for (const auto& ix : e.args) compileExpr(*ix);
        emit(Op::LoadElem, remap_.arrayIndex[static_cast<size_t>(e.arrayIndex)],
             static_cast<int32_t>(e.args.size()));
        return;

      case ExprKind::Unary:
        compileExpr(*e.args[0]);
        if (e.un == UnOp::Not) {
          emit(Op::NotI);
        } else {
          emit(e.args[0]->type == Type::Real ? Op::NegR : Op::NegI);
        }
        return;

      case ExprKind::Binary:
        compileBinary(e);
        return;

      case ExprKind::Call:
        compileCall(e);
        return;
    }
  }

  void compileBinary(const ExprNode& e) {
    const ExprNode& lhs = *e.args[0];
    const ExprNode& rhs = *e.args[1];
    bool anyReal = lhs.type == Type::Real || rhs.type == Type::Real;

    // Logical ops are eager (no short-circuit in MiniC) and int-typed.
    if (e.bin == BinOp::And || e.bin == BinOp::Or) {
      compileExpr(lhs);
      compileExpr(rhs);
      emit(e.bin == BinOp::And ? Op::AndL : Op::OrL);
      return;
    }

    compileExpr(lhs);
    if (anyReal) convert(lhs.type, Type::Real);
    compileExpr(rhs);
    if (anyReal) convert(rhs.type, Type::Real);

    auto pick = [&](Op intOp, Op realOp) { emit(anyReal ? realOp : intOp); };
    switch (e.bin) {
      case BinOp::Add: pick(Op::AddI, Op::AddR); return;
      case BinOp::Sub: pick(Op::SubI, Op::SubR); return;
      case BinOp::Mul: pick(Op::MulI, Op::MulR); return;
      case BinOp::Div: pick(Op::DivI, Op::DivR); return;
      case BinOp::Mod: emit(Op::ModI); return;
      case BinOp::Eq: pick(Op::CmpEqI, Op::CmpEqR); return;
      case BinOp::Ne: pick(Op::CmpNeI, Op::CmpNeR); return;
      case BinOp::Lt: pick(Op::CmpLtI, Op::CmpLtR); return;
      case BinOp::Le: pick(Op::CmpLeI, Op::CmpLeR); return;
      case BinOp::Gt: pick(Op::CmpGtI, Op::CmpGtR); return;
      case BinOp::Ge: pick(Op::CmpGeI, Op::CmpGeR); return;
      case BinOp::And:
      case BinOp::Or: return;  // handled above
    }
  }

  void compileCall(const ExprNode& e) {
    if (e.builtinIndex >= 0) {
      const auto& info = minic::builtinTable()[static_cast<size_t>(e.builtinIndex)];
      for (size_t i = 0; i < e.args.size(); ++i) {
        compileExpr(*e.args[i]);
        // Builtins take real arguments except the i-prefixed integer ones.
        Type want = (info.retType == Type::Int) ? Type::Int : Type::Real;
        convert(e.args[i]->type, want);
      }
      emit(Op::CallBuiltin, e.builtinIndex, static_cast<int32_t>(e.args.size()));
      return;
    }
    const FuncDecl* callee = e.callee;
    for (size_t i = 0; i < e.args.size(); ++i) {
      compileExpr(*e.args[i]);
      convert(e.args[i]->type, callee->params[i].type);
    }
    int fi = -1;
    for (size_t i = 0; i < prog_.funcs.size(); ++i) {
      if (prog_.funcs[i].get() == callee) fi = static_cast<int>(i);
    }
    if (fi < 0) throw Error(e.loc, "internal: callee not found in program");
    emit(Op::CallFn, fi, static_cast<int32_t>(e.args.size()));
  }

  const Program& prog_;
  Module& mod_;
  const GlobalRemap& remap_;
  const FuncDecl& fn_;
  FuncCode code_;
  std::vector<Type> slotTypes_;
  std::vector<uint32_t> regionStack_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

Module compile(const Program& prog) {
  Module mod;
  for (const auto& p : prog.params) {
    mod.paramNames.push_back(p.name);
    mod.paramDefaults.push_back(p.defaultValue ? *p.defaultValue : std::nan(""));
  }
  GlobalRemap remap;
  for (const auto& g : prog.globals) {
    if (g.isArray()) {
      remap.arrayIndex.push_back(static_cast<int>(mod.arrayNames.size()));
      remap.scalarIndex.push_back(-1);
      mod.arrayNames.push_back(g.name);
      mod.arrayElemTypes.push_back(g.elemType);
      std::vector<const ExprNode*> dims;
      for (const auto& d : g.dims) dims.push_back(d.get());
      mod.arrayDims.push_back(std::move(dims));
    } else {
      remap.scalarIndex.push_back(static_cast<int>(mod.globalScalarNames.size()));
      remap.arrayIndex.push_back(-1);
      mod.globalScalarNames.push_back(g.name);
      mod.globalScalarTypes.push_back(g.elemType);
    }
  }
  mod.numArrays = mod.arrayNames.size();

  for (const auto& f : prog.funcs) {
    mod.funcs.push_back(FuncCompiler(prog, mod, remap, *f).run());
  }
  mod.mainIndex = mod.funcIndexOf("main");
  if (mod.mainIndex < 0) throw Error("program has no main function (run sema first)");
  return mod;
}

std::string disassemble(const Module& mod, const FuncCode& fn) {
  (void)mod;
  std::string out = "func " + fn.name + " locals=" + std::to_string(fn.numLocals) + "\n";
  static const char* names[] = {
      "PushConst", "LoadLocal", "StoreLocal", "LoadParam", "LoadGlobal", "StoreGlobal",
      "LoadElem", "StoreElem", "AddI", "SubI", "MulI", "DivI", "ModI",
      "AddR", "SubR", "MulR", "DivR", "NegI", "NegR", "NotI", "AndL", "OrL",
      "CmpEqI", "CmpNeI", "CmpLtI", "CmpLeI", "CmpGtI", "CmpGeI",
      "CmpEqR", "CmpNeR", "CmpLtR", "CmpLeR", "CmpGtR", "CmpGeR",
      "I2R", "R2I", "Jump", "JumpIfZero", "CallFn", "CallBuiltin", "Ret", "Halt", "PopV"};
  for (size_t i = 0; i < fn.code.size(); ++i) {
    const Instr& in = fn.code[i];
    out += format("  %4zu: %-12s a=%d b=%d imm=%g region=%u\n", i,
                  names[static_cast<size_t>(in.op)], in.a, in.b, in.imm, in.region);
  }
  return out;
}

}  // namespace skope::vm
