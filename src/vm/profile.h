// Local profiling pass — the paper's gcov substitute (§III-B).
//
// One instrumented run on the "local machine" (the VM) collects branch
// outcome statistics, loop trip counts, call counts and library-call counts.
// This information is hardware independent; the skeleton annotator encodes it
// into the code skeleton, and it is reused for every target architecture.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "vm/interp.h"

namespace skope::vm {

struct BranchSiteStats {
  uint64_t takenCount = 0;  ///< condition evaluated true
  uint64_t total = 0;       ///< total evaluations

  /// Probability the condition is true. For a loop site this is the
  /// probability of staying in the loop.
  [[nodiscard]] double pTrue() const {
    return total == 0 ? 0.0 : static_cast<double>(takenCount) / static_cast<double>(total);
  }

  /// Mean trip count when this site is a loop condition: each entry
  /// contributes exactly one false evaluation, so entries = total - taken.
  [[nodiscard]] double meanTrips() const {
    uint64_t entries = total - takenCount;
    return entries == 0 ? 0.0
                        : static_cast<double>(takenCount) / static_cast<double>(entries);
  }
};

/// Aggregated results of one profiling run.
struct ProfileData {
  std::map<uint32_t, BranchSiteStats> branchSites;         ///< by site NodeId
  std::map<std::pair<uint32_t, int>, uint64_t> libCalls;   ///< (region, builtin) -> count
  std::map<std::pair<uint32_t, int>, uint64_t> calls;      ///< (region, callee fn) -> count
  OpCounters opCounters;                                   ///< copied from the VM after run

  [[nodiscard]] const BranchSiteStats* site(uint32_t id) const {
    auto it = branchSites.find(id);
    return it == branchSites.end() ? nullptr : &it->second;
  }
};

/// Tracer that fills a ProfileData.
class ProfileTracer : public Tracer {
 public:
  void onBranch(uint32_t region, uint32_t site, bool taken) override;
  void onLibCall(uint32_t region, int builtin) override;
  void onCall(uint32_t callerRegion, int calleeFunc) override;

  /// Moves the gathered data out; also snapshots `vm`'s op counters.
  [[nodiscard]] ProfileData finish(const Vm& vm);

 private:
  ProfileData data_;
};

/// Convenience: runs `main` once under a ProfileTracer with the given params.
ProfileData profileRun(const Module& mod, const std::map<std::string, double>& params,
                       uint64_t seed = 0x5eed);

/// Same run, but also fans the event stream out to `extra` (e.g. a
/// trace::TraceRecorder) via TeeTracer, and honors a dynamic instruction
/// budget (`maxOps` == 0 keeps the Vm default). `vmOut`, when non-null,
/// receives the Vm so the caller can snapshot run state (dynamicInstrs).
/// `cancel` interrupts the run with CancelledError at ~64K-instr granularity.
ProfileData profileRun(const Module& mod, const std::map<std::string, double>& params,
                       uint64_t seed, Tracer* extra, uint64_t maxOps,
                       const std::function<void(const Vm&)>& vmOut = nullptr,
                       const CancelToken& cancel = {});

}  // namespace skope::vm
