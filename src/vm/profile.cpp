#include "vm/profile.h"

#include "telemetry/telemetry.h"

namespace skope::vm {

void ProfileTracer::onBranch(uint32_t region, uint32_t site, bool taken) {
  (void)region;
  auto& s = data_.branchSites[site];
  s.total += 1;
  if (taken) s.takenCount += 1;
}

void ProfileTracer::onLibCall(uint32_t region, int builtin) {
  data_.libCalls[{region, builtin}] += 1;
}

void ProfileTracer::onCall(uint32_t callerRegion, int calleeFunc) {
  data_.calls[{callerRegion, calleeFunc}] += 1;
}

ProfileData ProfileTracer::finish(const Vm& vm) {
  data_.opCounters = vm.counters();
  return std::move(data_);
}

ProfileData profileRun(const Module& mod, const std::map<std::string, double>& params,
                       uint64_t seed) {
  return profileRun(mod, params, seed, nullptr, 0);
}

ProfileData profileRun(const Module& mod, const std::map<std::string, double>& params,
                       uint64_t seed, Tracer* extra, uint64_t maxOps,
                       const std::function<void(const Vm&)>& vmOut,
                       const CancelToken& cancel) {
  SKOPE_SPAN("vm/profile-run");
  Vm vm(mod);
  vm.bindParams(params);
  vm.setSeed(seed);
  if (maxOps != 0) vm.setMaxOps(maxOps);
  if (cancel.valid()) vm.setCancelToken(cancel);
  ProfileTracer tracer;
  if (extra != nullptr) {
    TeeTracer tee(&tracer, extra);
    vm.run(&tee);
  } else {
    vm.run(&tracer);
  }
  if (telemetry::enabled()) {
    telemetry::Registry::current().counter("vm/ops").add(vm.dynamicInstrs());
  }
  if (vmOut) vmOut(vm);
  return tracer.finish(vm);
}

}  // namespace skope::vm
