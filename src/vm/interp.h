// The MiniC virtual machine.
//
// Executes a compiled Module with optional event tracing. The VM natively
// accumulates per-region operation-mix counters (cheap array increments);
// heavier analyses (cache simulation, branch statistics, memory tracing)
// subscribe through the Tracer interface and receive only memory / branch /
// call events. The interpreter is compiled twice — a traced and an untraced
// loop — so the common untraced run never tests the tracer pointer per
// instruction.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/cancel.h"
#include "support/rng.h"
#include "vm/bytecode.h"

namespace skope::vm {

/// Event subscriber for a VM run. Default implementations ignore everything.
class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Array element read at virtual byte address `addr` from region `region`.
  virtual void onLoad(uint32_t region, uint64_t addr) { (void)region; (void)addr; }
  /// Array element write.
  virtual void onStore(uint32_t region, uint64_t addr) { (void)region; (void)addr; }
  /// Conditional branch at site `site` (AST NodeId of the if/for/while).
  /// For loops, `taken` means "stay in the loop".
  virtual void onBranch(uint32_t region, uint32_t site, bool taken) {
    (void)region; (void)site; (void)taken;
  }
  /// Builtin library call (index into minic::builtinTable()).
  virtual void onLibCall(uint32_t region, int builtin) { (void)region; (void)builtin; }
  /// User function call (index into Module::funcs).
  virtual void onCall(uint32_t callerRegion, int calleeFunc) {
    (void)callerRegion; (void)calleeFunc;
  }
};

/// Fans one event stream out to two subscribers (e.g. the branch profiler
/// and the memory-trace recorder sharing a single profiling run).
class TeeTracer : public Tracer {
 public:
  TeeTracer(Tracer* a, Tracer* b) : a_(a), b_(b) {}

  void onLoad(uint32_t region, uint64_t addr) override {
    a_->onLoad(region, addr);
    b_->onLoad(region, addr);
  }
  void onStore(uint32_t region, uint64_t addr) override {
    a_->onStore(region, addr);
    b_->onStore(region, addr);
  }
  void onBranch(uint32_t region, uint32_t site, bool taken) override {
    a_->onBranch(region, site, taken);
    b_->onBranch(region, site, taken);
  }
  void onLibCall(uint32_t region, int builtin) override {
    a_->onLibCall(region, builtin);
    b_->onLibCall(region, builtin);
  }
  void onCall(uint32_t callerRegion, int calleeFunc) override {
    a_->onCall(callerRegion, calleeFunc);
    b_->onCall(callerRegion, calleeFunc);
  }

 private:
  Tracer* a_;
  Tracer* b_;
};

/// Per-region dynamic operation counts gathered by every run. Stored as one
/// flat row-major array (region × op class) so the interpreter's hot loop
/// bumps a counter with a single indexed add.
struct OpCounters {
  /// numRegions() × kNumOpClasses, row-major; empty rows for ids that are
  /// not regions.
  std::vector<uint64_t> flat;

  void reset(size_t numRegions) { flat.assign(numRegions * kNumOpClasses, 0); }

  [[nodiscard]] size_t numRegions() const { return flat.size() / kNumOpClasses; }
  [[nodiscard]] const uint64_t* row(uint32_t region) const {
    return flat.data() + static_cast<size_t>(region) * kNumOpClasses;
  }
  [[nodiscard]] uint64_t get(uint32_t region, OpClass c) const {
    if (region >= numRegions()) return 0;
    return row(region)[static_cast<size_t>(c)];
  }
  [[nodiscard]] uint64_t regionTotal(uint32_t region) const;
  [[nodiscard]] uint64_t classTotal(OpClass c) const;
  [[nodiscard]] uint64_t grandTotal() const;
};

/// Execution engine for one Module. Typical use:
///   Vm vm(mod);
///   vm.bindParam("NX", 64);
///   vm.run(&tracer);
class Vm {
 public:
  /// `mod` and the Program it was compiled from must outlive the Vm.
  explicit Vm(const Module& mod);

  /// Binds one workload parameter. Unbound parameters fall back to their
  /// declared defaults; run() throws if any parameter is left unresolved.
  void bindParam(const std::string& name, double value);
  void bindParams(const std::map<std::string, double>& values);

  /// Reseeds the deterministic RNG used by the `rand` builtin.
  void setSeed(uint64_t seed) { rng_ = Rng(seed); }

  /// Aborts the run with Error after this many dynamic instructions
  /// (guards against runaway loops in user programs). Default 4e9; the
  /// skopec / sweep CLIs expose it as --max-ops.
  void setMaxOps(uint64_t maxOps) { maxOps_ = maxOps; }

  /// Cooperative cancellation: the exec loop polls `token` every ~64K
  /// dynamic instructions and throws CancelledError on expiry. The default
  /// null token costs one pointer test per poll and never reads the clock.
  void setCancelToken(CancelToken token) { cancel_ = std::move(token); }

  /// Executes main. Storage is (re)allocated and zeroed on each call.
  void run(Tracer* tracer = nullptr);

  [[nodiscard]] const OpCounters& counters() const { return counters_; }
  [[nodiscard]] uint64_t dynamicInstrs() const { return executed_; }

  // --- introspection for tests and workload drivers ---
  [[nodiscard]] double paramValue(const std::string& name) const;
  [[nodiscard]] double scalar(const std::string& name) const;
  [[nodiscard]] const std::vector<double>& arrayData(const std::string& name) const;
  [[nodiscard]] const ArrayInfo& arrayInfo(const std::string& name) const;

 private:
  void allocate();
  double evalDimExpr(const minic::ExprNode& e) const;
  /// The interpreter loop, instantiated with and without tracer dispatch so
  /// untraced runs pay no per-event null checks.
  template <bool Traced>
  double execFunc(int funcIndex);
  [[nodiscard]] size_t lookup(const std::unordered_map<std::string, size_t>& index,
                              const std::string& name, const char* what) const;
  [[noreturn]] void fail(const Instr& in, const std::string& msg) const;

  const Module& mod_;
  std::unordered_map<std::string, size_t> paramIndex_;
  std::unordered_map<std::string, size_t> scalarIndex_;
  std::unordered_map<std::string, size_t> arrayIndex_;
  std::vector<double> paramValues_;
  std::vector<bool> paramBound_;
  std::vector<double> globalScalars_;
  std::vector<std::vector<double>> arrays_;
  std::vector<ArrayInfo> arrayInfos_;

  std::vector<double> stack_;
  CancelToken cancel_;
  Rng rng_{0x5eed};
  Tracer* tracer_ = nullptr;
  OpCounters counters_;
  uint64_t executed_ = 0;
  uint64_t maxOps_ = 4'000'000'000ULL;
  int callDepth_ = 0;
  bool retHasValue_ = false;
};

}  // namespace skope::vm
