// The MiniC virtual machine.
//
// Executes a compiled Module with optional event tracing. The VM natively
// accumulates per-region operation-mix counters (cheap array increments);
// heavier analyses (cache simulation, branch statistics) subscribe through
// the Tracer interface and receive only memory / branch / call events.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "support/rng.h"
#include "vm/bytecode.h"

namespace skope::vm {

/// Event subscriber for a VM run. Default implementations ignore everything.
class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Array element read at virtual byte address `addr` from region `region`.
  virtual void onLoad(uint32_t region, uint64_t addr) { (void)region; (void)addr; }
  /// Array element write.
  virtual void onStore(uint32_t region, uint64_t addr) { (void)region; (void)addr; }
  /// Conditional branch at site `site` (AST NodeId of the if/for/while).
  /// For loops, `taken` means "stay in the loop".
  virtual void onBranch(uint32_t region, uint32_t site, bool taken) {
    (void)region; (void)site; (void)taken;
  }
  /// Builtin library call (index into minic::builtinTable()).
  virtual void onLibCall(uint32_t region, int builtin) { (void)region; (void)builtin; }
  /// User function call (index into Module::funcs).
  virtual void onCall(uint32_t callerRegion, int calleeFunc) {
    (void)callerRegion; (void)calleeFunc;
  }
};

/// Per-region dynamic operation counts gathered by every run.
struct OpCounters {
  /// Indexed by region id; empty rows for ids that are not regions.
  std::vector<std::array<uint64_t, kNumOpClasses>> byRegion;

  [[nodiscard]] uint64_t get(uint32_t region, OpClass c) const {
    if (region >= byRegion.size()) return 0;
    return byRegion[region][static_cast<size_t>(c)];
  }
  [[nodiscard]] uint64_t regionTotal(uint32_t region) const;
  [[nodiscard]] uint64_t classTotal(OpClass c) const;
  [[nodiscard]] uint64_t grandTotal() const;
};

/// Execution engine for one Module. Typical use:
///   Vm vm(mod);
///   vm.bindParam("NX", 64);
///   vm.run(&tracer);
class Vm {
 public:
  /// `mod` and the Program it was compiled from must outlive the Vm.
  explicit Vm(const Module& mod);

  /// Binds one workload parameter. Unbound parameters fall back to their
  /// declared defaults; run() throws if any parameter is left unresolved.
  void bindParam(const std::string& name, double value);
  void bindParams(const std::map<std::string, double>& values);

  /// Reseeds the deterministic RNG used by the `rand` builtin.
  void setSeed(uint64_t seed) { rng_ = Rng(seed); }

  /// Aborts the run with Error after this many dynamic instructions
  /// (guards against runaway loops in user programs). Default 4e9.
  void setMaxOps(uint64_t maxOps) { maxOps_ = maxOps; }

  /// Executes main. Storage is (re)allocated and zeroed on each call.
  void run(Tracer* tracer = nullptr);

  [[nodiscard]] const OpCounters& counters() const { return counters_; }
  [[nodiscard]] uint64_t dynamicInstrs() const { return executed_; }

  // --- introspection for tests and workload drivers ---
  [[nodiscard]] double paramValue(const std::string& name) const;
  [[nodiscard]] double scalar(const std::string& name) const;
  [[nodiscard]] const std::vector<double>& arrayData(const std::string& name) const;
  [[nodiscard]] const ArrayInfo& arrayInfo(const std::string& name) const;

 private:
  void allocate();
  double evalDimExpr(const minic::ExprNode& e) const;
  double execFunc(int funcIndex);
  [[noreturn]] void fail(const Instr& in, const std::string& msg) const;

  const Module& mod_;
  std::vector<double> paramValues_;
  std::vector<bool> paramBound_;
  std::vector<double> globalScalars_;
  std::vector<std::vector<double>> arrays_;
  std::vector<ArrayInfo> arrayInfos_;

  std::vector<double> stack_;
  Rng rng_{0x5eed};
  Tracer* tracer_ = nullptr;
  OpCounters counters_;
  uint64_t executed_ = 0;
  uint64_t maxOps_ = 4'000'000'000ULL;
  int callDepth_ = 0;
  bool retHasValue_ = false;
};

}  // namespace skope::vm
