#include "vm/builtins.h"

#include <cmath>

#include "support/diagnostics.h"

namespace skope::vm {

double callBuiltin(int index, const double* args, Rng& rng) {
  // Order must match minic::builtinTable().
  switch (index) {
    case 0: return std::exp(args[0]);
    case 1: return std::log(args[0]);
    case 2: return std::sqrt(args[0]);
    case 3: return std::sin(args[0]);
    case 4: return std::cos(args[0]);
    case 5: return std::pow(args[0], args[1]);
    case 6: return rng.uniform();
    case 7: return std::fabs(args[0]);
    case 8: return std::floor(args[0]);
    case 9: return std::fmin(args[0], args[1]);
    case 10: return std::fmax(args[0], args[1]);
    case 11: return std::fmin(args[0], args[1]);  // imin (int-valued doubles)
    case 12: return std::fmax(args[0], args[1]);  // imax
    case 13: return std::trunc(args[0]);          // itrunc
    default:
      throw Error("unknown builtin index " + std::to_string(index));
  }
}

}  // namespace skope::vm
