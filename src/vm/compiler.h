// MiniC AST -> bytecode compiler.
#pragma once

#include "minic/ast.h"
#include "vm/bytecode.h"

namespace skope::vm {

/// Compiles an analyzed Program into a Module.
///
/// Lifetime: the Module stores pointers to array-dimension expressions inside
/// `prog`, so `prog` must outlive the returned Module.
/// Throws Error on internal inconsistencies (which indicate the Program was
/// not run through sema, or sema reported errors that were ignored).
Module compile(const minic::Program& prog);

/// Disassembles one function for debugging and golden tests.
std::string disassemble(const Module& mod, const FuncCode& fn);

}  // namespace skope::vm
