#include "vm/bytecode.h"

#include "minic/builtins.h"
#include "support/text.h"

namespace skope::vm {

std::string_view opClassName(OpClass c) {
  switch (c) {
    case OpClass::IntAlu: return "int_alu";
    case OpClass::IntDiv: return "int_div";
    case OpClass::FpAdd: return "fp_add";
    case OpClass::FpMul: return "fp_mul";
    case OpClass::FpDiv: return "fp_div";
    case OpClass::Load: return "load";
    case OpClass::Store: return "store";
    case OpClass::Branch: return "branch";
    case OpClass::Call: return "call";
    case OpClass::LibCall: return "libcall";
    case OpClass::Conv: return "conv";
    case OpClass::Count_: break;
  }
  return "?";
}

std::string RegionInfo::label() const {
  if (kind == RegionKind::Function) return funcName;
  return format("%s@L%u", funcName.c_str(), line);
}

int Module::funcIndexOf(std::string_view name) const {
  for (size_t i = 0; i < funcs.size(); ++i) {
    if (funcs[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Module::totalStaticInstrs() const {
  size_t n = 0;
  for (const auto& [id, info] : regions) n += info.staticInstrs;
  return n;
}

std::string regionLabel(const Module& mod, uint32_t region) {
  if (isLibRegion(region)) {
    return "lib:" +
           std::string(minic::builtinTable()[static_cast<size_t>(libRegionBuiltin(region))].name);
  }
  auto it = mod.regions.find(region);
  return it != mod.regions.end() ? it->second.label() : format("region#%u", region);
}

size_t regionStaticInstrs(const Module& mod, uint32_t region) {
  if (isLibRegion(region)) {
    const auto& mix = minic::builtinTable()[static_cast<size_t>(libRegionBuiltin(region))].mix;
    return static_cast<size_t>(mix.flops + mix.iops + mix.loads + mix.stores);
  }
  auto it = mod.regions.find(region);
  return it != mod.regions.end() ? it->second.staticInstrs : 0;
}

}  // namespace skope::vm
