// Native implementations of the MiniC builtin functions (see
// minic/builtins.h for the registry and the modeling metadata).
#pragma once

#include "support/rng.h"

namespace skope::vm {

/// Invokes builtin `index` (into minic::builtinTable()) with `args`.
/// `rand` draws from `rng` so runs are reproducible.
double callBuiltin(int index, const double* args, Rng& rng);

}  // namespace skope::vm
