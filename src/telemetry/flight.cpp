#include "telemetry/flight.h"

#include <algorithm>
#include <thread>

#include "support/text.h"

namespace skope::telemetry {

FlightRecorder::FlightRecorder(size_t capacity)
    : perStripe_(std::max<size_t>(1, (capacity + kStripes - 1) / kStripes)) {
  for (Stripe& s : stripes_) s.ring.resize(perStripe_);
}

FlightRecorder::Stripe& FlightRecorder::myStripe() {
  // Threads hash onto a fixed stripe, so the common case (each pool worker
  // recording its own events) never contends.
  thread_local const size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripes_[idx];
}

void FlightRecorder::record(Kind kind, std::string_view name, double value,
                            std::string_view detail, uint64_t tsNs) {
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& s = myStripe();
  std::lock_guard<std::mutex> lock(s.mu);
  Event& ev = s.ring[s.next];
  s.next = (s.next + 1) % perStripe_;
  ev.seq = seq;
  ev.tsNs = tsNs;
  ev.kind = kind;
  ev.value = value;
  // assign() reuses each slot's string capacity once the ring has wrapped.
  ev.name.assign(name);
  ev.detail.assign(detail);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  out.reserve(kStripes * perStripe_);
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Event& ev : s.ring) {
      if (ev.seq != 0) out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::string formatFlightEvent(const FlightRecorder::Event& ev) {
  double tsMs = static_cast<double>(ev.tsNs) / 1e6;
  switch (ev.kind) {
    case FlightRecorder::Kind::Span:
      return format("+%.3fms span %s %.3fms", tsMs, ev.name.c_str(), ev.value);
    case FlightRecorder::Kind::Counter:
      return format("+%.3fms counter %s +%llu%s%s", tsMs, ev.name.c_str(),
                    static_cast<unsigned long long>(ev.value),
                    ev.detail.empty() ? "" : " — ", ev.detail.c_str());
    case FlightRecorder::Kind::Log:
      return format("+%.3fms log %s", tsMs, ev.detail.c_str());
  }
  return {};
}

std::vector<std::string> FlightRecorder::lastEvents(size_t n) const {
  std::vector<Event> all = snapshot();
  size_t keep = n == 0 ? all.size() : std::min(n, all.size());
  std::vector<std::string> out;
  out.reserve(keep);
  for (size_t i = all.size() - keep; i < all.size(); ++i) {
    out.push_back(formatFlightEvent(all[i]));
  }
  return out;
}

std::string FlightRecorder::dump(size_t n) const {
  return join(lastEvents(n), "\n");
}

void FlightRecorder::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (Event& ev : s.ring) ev.seq = 0;
    s.next = 0;
  }
}

}  // namespace skope::telemetry
