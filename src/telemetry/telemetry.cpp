#include "telemetry/telemetry.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/log.h"

namespace skope::telemetry {

namespace {

/// fetch_add for atomic<double> without relying on C++20 floating-point
/// atomic arithmetic support in older standard libraries.
void atomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// CAS-max for atomic<double>.
void atomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::atomic<uint64_t> g_nextRegistryUid{1};

/// Mirrors kept log lines into the current registry's flight recorder.
/// logging (skope_support) sits BELOW telemetry, so the dependency points
/// upward through logging::setEventHook — a plain function pointer installed
/// from this TU's static initializer (the hook holder in log.cpp is
/// constant-initialized, so cross-TU init order cannot bite).
struct LogHookInstaller {
  LogHookInstaller() {
    logging::setEventHook(+[](logging::Level /*level*/, const char* message) {
      Registry& reg = Registry::current();
      if (!reg.enabled()) return;
      reg.flight().record(FlightRecorder::Kind::Log, "log", 0, message,
                          reg.nowNs());
    });
  }
};
LogHookInstaller g_logHookInstaller;

}  // namespace

void Gauge::add(double v) { atomicAdd(value_, v); }

Histogram::Histogram(std::vector<double> upperEdges)
    : edges_(std::move(upperEdges)), counts_(edges_.size() + 1) {
  if (edges_.empty()) throw Error("histogram needs at least one bucket edge");
  for (size_t i = 1; i < edges_.size(); ++i) {
    if (!(edges_[i - 1] < edges_[i])) {
      throw Error("histogram bucket edges must be strictly increasing");
    }
  }
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // lower_bound: first edge >= v, so v lands in the bucket whose upper edge
  // it does not exceed (upper-inclusive); past the last edge -> overflow.
  size_t i = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sum_, v);
  // hasMax_ first: max() treats max_ as meaningless until a store happened,
  // so a racing reader at worst sees the old max (fine for a summary).
  hasMax_.store(true, std::memory_order_relaxed);
  atomicMax(max_, v);
}

std::vector<uint64_t> Histogram::counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::max() const {
  if (!hasMax_.load(std::memory_order_relaxed)) return 0;
  return max_.load(std::memory_order_relaxed);
}

bool Histogram::merge(const MetricsSnapshot::Hist& other) {
  if (other.edges != edges_) return false;
  for (size_t i = 0; i < counts_.size() && i < other.counts.size(); ++i) {
    counts_[i].fetch_add(other.counts[i], std::memory_order_relaxed);
  }
  total_.fetch_add(other.total, std::memory_order_relaxed);
  atomicAdd(sum_, other.sum);
  if (other.total > 0) {
    hasMax_.store(true, std::memory_order_relaxed);
    atomicMax(max_, other.max);
  }
  return true;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  hasMax_.store(false, std::memory_order_relaxed);
}

Registry::Registry(std::string requestId, size_t flightCapacity)
    : uid_(g_nextRegistryUid.fetch_add(1, std::memory_order_relaxed)),
      requestId_(std::move(requestId)),
      epoch_(Clock::now()),
      flight_(flightCapacity) {}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upperEdges) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upperEdges));
  return *slot;
}

const char* Registry::internName(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = interned_.find(name);
  if (it == interned_.end()) it = interned_.emplace(name).first;
  // std::set nodes are stable: the c_str() stays valid until the registry
  // dies (clear() keeps interned names).
  return it->c_str();
}

MetricsSnapshot Registry::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.requestId = requestId_;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = {h->edges(), h->counts(), h->total(), h->sum(), h->max()};
  }
  return snap;
}

std::vector<ThreadTrack> Registry::spanTracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadTrack> out;
  out.reserve(logs_.size());
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> logLock(log->mu);
    out.push_back({log->tid, log->name, log->events});
  }
  // Interned names point into this registry; a snapshot must not dangle
  // when a context registry is destroyed, so materialize them.
  for (ThreadTrack& track : out) {
    for (SpanEvent& ev : track.events) {
      if (!ev.interned) continue;
      ev.dynName = ev.staticName;
      ev.staticName = nullptr;
      ev.interned = false;
    }
  }
  return out;
}

void Registry::rollUpInto(Registry& parent) const {
  MetricsSnapshot snap = metrics();
  for (const auto& [name, v] : snap.counters) {
    if (v != 0) parent.counter(name).add(v);
  }
  for (const auto& [name, v] : snap.gauges) parent.gauge(name).set(v);
  for (const auto& [name, h] : snap.histograms) {
    parent.histogram(name, h.edges).merge(h);
  }
}

void Registry::nameCurrentThread(const std::string& name) {
  if (!enabled()) return;
  ThreadLog* log = threadLog();
  std::lock_guard<std::mutex> lock(log->mu);
  log->name = name;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> logLock(log->mu);
    log->events.clear();
  }
  flight_.clear();
}

Registry::ThreadLog* Registry::threadLog() {
  // Per-thread cache keyed on the registry's process-unique uid — NOT its
  // address, which a later registry could reuse. A small vector suffices:
  // a thread touches the global registry plus at most a few live contexts.
  struct CacheEntry {
    uint64_t uid;
    ThreadLog* log;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.uid == uid_) return e.log;
  }
  auto log = std::make_shared<ThreadLog>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    log->tid = static_cast<uint32_t>(logs_.size());
    logs_.push_back(log);
  }
  // Bound the cache: evicting a live registry's entry is harmless (the
  // thread would re-register a fresh track on its next span there).
  if (cache.size() >= 16) cache.erase(cache.begin());
  cache.push_back({uid_, log.get()});
  return log.get();
}

Span::Span(const char* prefix, const std::string& suffix) {
  Registry& reg = Registry::current();
  if (!reg.enabled()) return;
  std::string name(prefix);
  name += suffix;
  begin(reg, nullptr, name);
}

void Span::begin(Registry& reg, const char* staticName, std::string_view dynName) {
  reg_ = &reg;
  log_ = reg.threadLog();
  if (staticName != nullptr) {
    staticName_ = staticName;
  } else {
    staticName_ = reg.internName(dynName);
    interned_ = true;
  }
  depth_ = log_->depth++;
  startNs_ = reg.nowNs();
}

void Span::end() {
  Registry& reg = *reg_;
  uint64_t endNs = reg.nowNs();
  --log_->depth;
  {
    std::lock_guard<std::mutex> lock(log_->mu);
    log_->events.push_back(
        {staticName_, std::string(), startNs_, endNs - startNs_, depth_, interned_});
  }
  reg.flight().record(FlightRecorder::Kind::Span, staticName_,
                      static_cast<double>(endNs - startNs_) / 1e6, {}, endNs);
}

}  // namespace skope::telemetry
