#include "telemetry/telemetry.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace skope::telemetry {

namespace {

/// fetch_add for atomic<double> without relying on C++20 floating-point
/// atomic arithmetic support in older standard libraries.
void atomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double v) { atomicAdd(value_, v); }

Histogram::Histogram(std::vector<double> upperEdges)
    : edges_(std::move(upperEdges)), counts_(edges_.size() + 1) {
  if (edges_.empty()) throw Error("histogram needs at least one bucket edge");
  for (size_t i = 1; i < edges_.size(); ++i) {
    if (!(edges_[i - 1] < edges_[i])) {
      throw Error("histogram bucket edges must be strictly increasing");
    }
  }
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // lower_bound: first edge >= v, so v lands in the bucket whose upper edge
  // it does not exceed (upper-inclusive); past the last edge -> overflow.
  size_t i = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sum_, v);
}

std::vector<uint64_t> Histogram::counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry::Registry() : epoch_(Clock::now()) {}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upperEdges) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upperEdges));
  return *slot;
}

MetricsSnapshot Registry::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = {h->edges(), h->counts(), h->total(), h->sum()};
  }
  return snap;
}

std::vector<ThreadTrack> Registry::spanTracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadTrack> out;
  out.reserve(logs_.size());
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> logLock(log->mu);
    out.push_back({log->tid, log->name, log->events});
  }
  return out;
}

void Registry::nameCurrentThread(const std::string& name) {
  if (!enabled()) return;
  ThreadLog* log = threadLog();
  std::lock_guard<std::mutex> lock(log->mu);
  log->name = name;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> logLock(log->mu);
    log->events.clear();
  }
}

Registry::ThreadLog* Registry::threadLog() {
  // One cached slot per thread: correct for the global registry (the only
  // one spans use); a thread switching registries would just re-register.
  thread_local ThreadLog* cached = nullptr;
  thread_local Registry* cachedOwner = nullptr;
  if (cached != nullptr && cachedOwner == this) return cached;
  auto log = std::make_shared<ThreadLog>();
  std::lock_guard<std::mutex> lock(mu_);
  log->tid = static_cast<uint32_t>(logs_.size());
  logs_.push_back(log);
  cached = log.get();
  cachedOwner = this;
  return cached;
}

Span::Span(const char* prefix, const std::string& suffix) {
  if (!Registry::global().enabled()) return;
  std::string name(prefix);
  name += suffix;
  begin(nullptr, &name);
}

void Span::begin(const char* staticName, const std::string* dynName) {
  Registry& reg = Registry::global();
  log_ = reg.threadLog();
  staticName_ = staticName;
  if (dynName != nullptr) dynName_ = *dynName;
  depth_ = log_->depth++;
  startNs_ = reg.nowNs();
}

void Span::end() {
  uint64_t endNs = Registry::global().nowNs();
  --log_->depth;
  std::lock_guard<std::mutex> lock(log_->mu);
  log_->events.push_back(
      {staticName_, std::move(dynName_), startNs_, endNs - startNs_, depth_});
}

}  // namespace skope::telemetry
