#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "report/table.h"
#include "support/diagnostics.h"
#include "support/text.h"

namespace skope::telemetry {

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return format("%.6g", v);
}

/// Assigns each span's direct-child time to its parent so selfMs can be
/// computed per event. Events within one track are sorted by start time
/// (parents first on ties, via depth) and scanned with an interval stack.
std::vector<double> childNsPerEvent(const std::vector<SpanEvent>& events) {
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (events[a].startNs != events[b].startNs)
      return events[a].startNs < events[b].startNs;
    return events[a].depth < events[b].depth;
  });
  std::vector<double> childNs(events.size(), 0);
  std::vector<size_t> stack;  // indices of open ancestors
  for (size_t idx : order) {
    const SpanEvent& ev = events[idx];
    while (!stack.empty()) {
      const SpanEvent& top = events[stack.back()];
      if (top.startNs + top.durNs <= ev.startNs) {
        stack.pop_back();
      } else {
        break;
      }
    }
    if (!stack.empty()) childNs[stack.back()] += static_cast<double>(ev.durNs);
    stack.push_back(idx);
  }
  return childNs;
}

}  // namespace

HistogramSummary summarizeHistogram(const MetricsSnapshot::Hist& h) {
  HistogramSummary s;
  if (h.total == 0 || h.edges.empty() || h.counts.empty()) return s;
  s.max = h.max;
  auto quantile = [&](double q) {
    double rank = q * static_cast<double>(h.total);
    uint64_t cum = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      double cumBefore = static_cast<double>(cum);
      cum += h.counts[i];
      if (static_cast<double>(cum) < rank) continue;
      // Bucket bounds: the first bucket opens at 0 (or the first edge if it
      // is negative); the overflow bucket closes at the tracked max.
      double lo = i == 0 ? std::min(0.0, h.edges.front()) : h.edges[i - 1];
      double hi = i < h.edges.size() ? h.edges[i] : std::max(h.max, h.edges.back());
      double frac = (rank - cumBefore) / static_cast<double>(h.counts[i]);
      return std::min(lo + (hi - lo) * frac, h.max);
    }
    return h.max;
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

std::vector<StageStat> aggregateStages(const Registry& reg) {
  std::map<std::string, StageStat, std::less<>> byName;
  for (const ThreadTrack& track : reg.spanTracks()) {
    std::vector<double> childNs = childNsPerEvent(track.events);
    for (size_t i = 0; i < track.events.size(); ++i) {
      const SpanEvent& ev = track.events[i];
      auto it = byName.find(ev.name());
      if (it == byName.end()) {
        it = byName.emplace(std::string(ev.name()), StageStat{}).first;
        it->second.name = ev.name();
      }
      StageStat& s = it->second;
      s.count += 1;
      s.totalMs += static_cast<double>(ev.durNs) / 1e6;
      s.selfMs += std::max(0.0, (static_cast<double>(ev.durNs) - childNs[i]) / 1e6);
    }
  }
  std::vector<StageStat> out;
  out.reserve(byName.size());
  for (auto& [name, stat] : byName) out.push_back(std::move(stat));
  std::stable_sort(out.begin(), out.end(), [](const StageStat& a, const StageStat& b) {
    if (a.selfMs != b.selfMs) return a.selfMs > b.selfMs;
    return a.name < b.name;
  });
  return out;
}

std::string toChromeTrace(const Registry& reg) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"skope\"}}";
  for (const ThreadTrack& track : reg.spanTracks()) {
    std::string label =
        track.name.empty() ? format("thread %u", track.tid) : track.name;
    out += format(
        ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        track.tid, jsonEscape(label).c_str());
    for (const SpanEvent& ev : track.events) {
      out += format(
          ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"skope\","
          "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
          track.tid, jsonEscape(ev.name()).c_str(),
          static_cast<double>(ev.startNs) / 1e3, static_cast<double>(ev.durNs) / 1e3);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string toMetricsJson(const MetricsSnapshot& snap,
                          const std::vector<StageStat>& stages,
                          const std::string& benchName, double wallMs) {
  std::string out = "{\n  \"schema\": \"skope-metrics-v1\"";
  if (!snap.requestId.empty()) {
    out += format(",\n  \"request_id\": \"%s\"", jsonEscape(snap.requestId).c_str());
  }
  if (!benchName.empty()) {
    out += format(",\n  \"bench\": \"%s\"", jsonEscape(benchName).c_str());
  }
  if (wallMs >= 0) out += format(",\n  \"wall_ms\": %s", jsonNumber(wallMs).c_str());

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += format("%s\n    \"%s\": %llu", first ? "" : ",",
                  jsonEscape(name).c_str(), static_cast<unsigned long long>(v));
    first = false;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += format("%s\n    \"%s\": %s", first ? "" : ",", jsonEscape(name).c_str(),
                  jsonNumber(v).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    std::vector<std::string> edges, counts;
    for (double e : h.edges) edges.push_back(jsonNumber(e));
    for (uint64_t c : h.counts)
      counts.push_back(format("%llu", static_cast<unsigned long long>(c)));
    HistogramSummary sum = summarizeHistogram(h);
    out += format(
        "%s\n    \"%s\": {\"edges\": [%s], \"counts\": [%s], "
        "\"total\": %llu, \"sum\": %s, \"max\": %s, "
        "\"p50\": %s, \"p90\": %s, \"p99\": %s}",
        first ? "" : ",", jsonEscape(name).c_str(), join(edges, ", ").c_str(),
        join(counts, ", ").c_str(), static_cast<unsigned long long>(h.total),
        jsonNumber(h.sum).c_str(), jsonNumber(sum.max).c_str(),
        jsonNumber(sum.p50).c_str(), jsonNumber(sum.p90).c_str(),
        jsonNumber(sum.p99).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"stages\": [";
  first = true;
  for (const StageStat& s : stages) {
    out += format(
        "%s\n    {\"name\": \"%s\", \"count\": %llu, \"total_ms\": %s, "
        "\"self_ms\": %s}",
        first ? "" : ",", jsonEscape(s.name).c_str(),
        static_cast<unsigned long long>(s.count), jsonNumber(s.totalMs).c_str(),
        jsonNumber(s.selfMs).c_str());
    first = false;
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string toMetricsJson(const Registry& reg, const std::string& benchName,
                          double wallMs) {
  return toMetricsJson(reg.metrics(), aggregateStages(reg), benchName, wallMs);
}

namespace {

/// Prometheus metric-name mangling (docs/OBSERVABILITY.md): "skope_" prefix,
/// every character outside [a-zA-Z0-9_] becomes '_'. Distinct skope names
/// can collide after mangling ("a/b" and "a_b"); exposition stays
/// well-formed, the series just share a name.
std::string promName(std::string_view name) {
  std::string out = "skope_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string promLabelValue(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string promHelpText(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Renders the label block: {} elided, le ordered before request_id.
std::string promLabels(const std::string& le, const std::string& requestId) {
  std::vector<std::string> parts;
  if (!le.empty()) parts.push_back("le=\"" + le + "\"");
  if (!requestId.empty()) {
    parts.push_back("request_id=\"" + promLabelValue(requestId) + "\"");
  }
  if (parts.empty()) return "";
  return "{" + join(parts, ",") + "}";
}

}  // namespace

std::string toPrometheusText(const MetricsSnapshot& snap) {
  const std::string rid = snap.requestId;
  std::string out;
  auto head = [&](const std::string& mangled, std::string_view original,
                  const char* type) {
    out += format("# HELP %s skope metric %s\n", mangled.c_str(),
                  promHelpText(original).c_str());
    out += format("# TYPE %s %s\n", mangled.c_str(), type);
  };

  for (const auto& [name, v] : snap.counters) {
    std::string n = promName(name) + "_total";
    head(n, name, "counter");
    out += format("%s%s %llu\n", n.c_str(), promLabels("", rid).c_str(),
                  static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string n = promName(name);
    head(n, name, "gauge");
    out += format("%s%s %s\n", n.c_str(), promLabels("", rid).c_str(),
                  jsonNumber(v).c_str());
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string n = promName(name);
    head(n, name, "histogram");
    uint64_t cum = 0;
    for (size_t i = 0; i < h.edges.size() && i < h.counts.size(); ++i) {
      cum += h.counts[i];
      out += format("%s_bucket%s %llu\n", n.c_str(),
                    promLabels(jsonNumber(h.edges[i]), rid).c_str(),
                    static_cast<unsigned long long>(cum));
    }
    out += format("%s_bucket%s %llu\n", n.c_str(), promLabels("+Inf", rid).c_str(),
                  static_cast<unsigned long long>(h.total));
    out += format("%s_sum%s %s\n", n.c_str(), promLabels("", rid).c_str(),
                  jsonNumber(h.sum).c_str());
    out += format("%s_count%s %llu\n", n.c_str(), promLabels("", rid).c_str(),
                  static_cast<unsigned long long>(h.total));
    // Percentile summaries as derived gauges next to their histogram, so a
    // scrape gets p50/p90/p99/max without server-side histogram_quantile.
    HistogramSummary s = summarizeHistogram(h);
    const std::pair<const char*, double> percentiles[] = {
        {"_p50", s.p50}, {"_p90", s.p90}, {"_p99", s.p99}, {"_max", s.max}};
    for (const auto& [suffix, value] : percentiles) {
      std::string pn = n + suffix;
      head(pn, name, "gauge");
      out += format("%s%s %s\n", pn.c_str(), promLabels("", rid).c_str(),
                    jsonNumber(value).c_str());
    }
  }
  return out;
}

std::string toPrometheusText(const Registry& reg) {
  return toPrometheusText(reg.metrics());
}

std::string selfHotSpotTable(const Registry& reg) {
  std::vector<StageStat> stages = aggregateStages(reg);
  double totalSelf = 0;
  for (const StageStat& s : stages) totalSelf += s.selfMs;
  report::Table t({"#", "stage", "calls", "total ms", "self ms", "self %", "cum %"});
  double cum = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageStat& s = stages[i];
    double share = totalSelf > 0 ? s.selfMs / totalSelf : 0;
    cum += share;
    t.addRow({std::to_string(i + 1), s.name, format("%llu", static_cast<unsigned long long>(s.count)),
              format("%.3f", s.totalMs), format("%.3f", s.selfMs),
              format("%.1f%%", share * 100), format("%.1f%%", cum * 100)});
  }
  std::string out = "self hot spots (framework pipeline stages by exclusive time):\n";
  out += t.str();
  return out;
}

std::string selfHotSpotMarkdown(const Registry& reg) {
  std::vector<StageStat> stages = aggregateStages(reg);
  double totalSelf = 0;
  for (const StageStat& s : stages) totalSelf += s.selfMs;
  std::string out = "### Self hot spots (pipeline stages by exclusive time)\n\n";
  out += "| # | stage | calls | total ms | self ms | self % | cum % |\n";
  out += "|--:|:------|------:|---------:|--------:|-------:|------:|\n";
  double cum = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageStat& s = stages[i];
    double share = totalSelf > 0 ? s.selfMs / totalSelf : 0;
    cum += share;
    out += format("| %zu | %s | %llu | %.3f | %.3f | %.1f%% | %.1f%% |\n", i + 1,
                  s.name.c_str(), static_cast<unsigned long long>(s.count), s.totalMs,
                  s.selfMs, share * 100, cum * 100);
  }
  // Counters ride along so CI job summaries surface the work-avoidance
  // figures (sweep/memo-hit, roofline/batched-nodes, pool task counts)
  // next to the stage times.
  MetricsSnapshot snap = reg.metrics();
  if (!snap.counters.empty()) {
    out += "\n### Counters\n\n| counter | value |\n|:--------|------:|\n";
    for (const auto& [name, v] : snap.counters) {
      out += format("| %s | %llu |\n", name.c_str(),
                    static_cast<unsigned long long>(v));
    }
  }
  // Gauges too: point-in-time figures like artifact/store_bytes (the
  // artifact cache's on-disk footprint) belong in the same summary.
  if (!snap.gauges.empty()) {
    out += "\n### Gauges\n\n| gauge | value |\n|:------|------:|\n";
    for (const auto& [name, v] : snap.gauges) {
      out += format("| %s | %s |\n", name.c_str(), jsonNumber(v).c_str());
    }
  }
  if (!snap.histograms.empty()) {
    out += "\n### Histogram percentiles\n\n";
    out += "| histogram | count | p50 | p90 | p99 | max |\n";
    out += "|:----------|------:|----:|----:|----:|----:|\n";
    for (const auto& [name, h] : snap.histograms) {
      HistogramSummary s = summarizeHistogram(h);
      out += format("| %s | %llu | %s | %s | %s | %s |\n", name.c_str(),
                    static_cast<unsigned long long>(h.total),
                    jsonNumber(s.p50).c_str(), jsonNumber(s.p90).c_str(),
                    jsonNumber(s.p99).c_str(), jsonNumber(s.max).c_str());
    }
  }
  return out;
}

void writeExports(const Registry& reg, const std::string& tracePath,
                  const std::string& metricsPath, const std::string& selfReportPath,
                  MetricsFormat metricsFormat) {
  auto write = [](const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) throw Error("cannot write '" + path + "'");
    out << content;
  };
  if (!tracePath.empty()) write(tracePath, toChromeTrace(reg));
  if (!metricsPath.empty()) {
    write(metricsPath, metricsFormat == MetricsFormat::Prom ? toPrometheusText(reg)
                                                            : toMetricsJson(reg));
  }
  if (!selfReportPath.empty()) write(selfReportPath, selfHotSpotMarkdown(reg));
}

}  // namespace skope::telemetry
