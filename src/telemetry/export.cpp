#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "report/table.h"
#include "support/diagnostics.h"
#include "support/text.h"

namespace skope::telemetry {

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return format("%.6g", v);
}

/// Assigns each span's direct-child time to its parent so selfMs can be
/// computed per event. Events within one track are sorted by start time
/// (parents first on ties, via depth) and scanned with an interval stack.
std::vector<double> childNsPerEvent(const std::vector<SpanEvent>& events) {
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (events[a].startNs != events[b].startNs)
      return events[a].startNs < events[b].startNs;
    return events[a].depth < events[b].depth;
  });
  std::vector<double> childNs(events.size(), 0);
  std::vector<size_t> stack;  // indices of open ancestors
  for (size_t idx : order) {
    const SpanEvent& ev = events[idx];
    while (!stack.empty()) {
      const SpanEvent& top = events[stack.back()];
      if (top.startNs + top.durNs <= ev.startNs) {
        stack.pop_back();
      } else {
        break;
      }
    }
    if (!stack.empty()) childNs[stack.back()] += static_cast<double>(ev.durNs);
    stack.push_back(idx);
  }
  return childNs;
}

}  // namespace

std::vector<StageStat> aggregateStages(const Registry& reg) {
  std::map<std::string, StageStat, std::less<>> byName;
  for (const ThreadTrack& track : reg.spanTracks()) {
    std::vector<double> childNs = childNsPerEvent(track.events);
    for (size_t i = 0; i < track.events.size(); ++i) {
      const SpanEvent& ev = track.events[i];
      auto it = byName.find(ev.name());
      if (it == byName.end()) {
        it = byName.emplace(std::string(ev.name()), StageStat{}).first;
        it->second.name = ev.name();
      }
      StageStat& s = it->second;
      s.count += 1;
      s.totalMs += static_cast<double>(ev.durNs) / 1e6;
      s.selfMs += std::max(0.0, (static_cast<double>(ev.durNs) - childNs[i]) / 1e6);
    }
  }
  std::vector<StageStat> out;
  out.reserve(byName.size());
  for (auto& [name, stat] : byName) out.push_back(std::move(stat));
  std::stable_sort(out.begin(), out.end(), [](const StageStat& a, const StageStat& b) {
    if (a.selfMs != b.selfMs) return a.selfMs > b.selfMs;
    return a.name < b.name;
  });
  return out;
}

std::string toChromeTrace(const Registry& reg) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"skope\"}}";
  for (const ThreadTrack& track : reg.spanTracks()) {
    std::string label =
        track.name.empty() ? format("thread %u", track.tid) : track.name;
    out += format(
        ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        track.tid, jsonEscape(label).c_str());
    for (const SpanEvent& ev : track.events) {
      out += format(
          ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"skope\","
          "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
          track.tid, jsonEscape(ev.name()).c_str(),
          static_cast<double>(ev.startNs) / 1e3, static_cast<double>(ev.durNs) / 1e3);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string toMetricsJson(const Registry& reg, const std::string& benchName,
                          double wallMs) {
  MetricsSnapshot snap = reg.metrics();
  std::string out = "{\n  \"schema\": \"skope-metrics-v1\"";
  if (!benchName.empty()) {
    out += format(",\n  \"bench\": \"%s\"", jsonEscape(benchName).c_str());
  }
  if (wallMs >= 0) out += format(",\n  \"wall_ms\": %s", jsonNumber(wallMs).c_str());

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += format("%s\n    \"%s\": %llu", first ? "" : ",",
                  jsonEscape(name).c_str(), static_cast<unsigned long long>(v));
    first = false;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += format("%s\n    \"%s\": %s", first ? "" : ",", jsonEscape(name).c_str(),
                  jsonNumber(v).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    std::vector<std::string> edges, counts;
    for (double e : h.edges) edges.push_back(jsonNumber(e));
    for (uint64_t c : h.counts)
      counts.push_back(format("%llu", static_cast<unsigned long long>(c)));
    out += format(
        "%s\n    \"%s\": {\"edges\": [%s], \"counts\": [%s], "
        "\"total\": %llu, \"sum\": %s}",
        first ? "" : ",", jsonEscape(name).c_str(), join(edges, ", ").c_str(),
        join(counts, ", ").c_str(), static_cast<unsigned long long>(h.total),
        jsonNumber(h.sum).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"stages\": [";
  first = true;
  for (const StageStat& s : aggregateStages(reg)) {
    out += format(
        "%s\n    {\"name\": \"%s\", \"count\": %llu, \"total_ms\": %s, "
        "\"self_ms\": %s}",
        first ? "" : ",", jsonEscape(s.name).c_str(),
        static_cast<unsigned long long>(s.count), jsonNumber(s.totalMs).c_str(),
        jsonNumber(s.selfMs).c_str());
    first = false;
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string selfHotSpotTable(const Registry& reg) {
  std::vector<StageStat> stages = aggregateStages(reg);
  double totalSelf = 0;
  for (const StageStat& s : stages) totalSelf += s.selfMs;
  report::Table t({"#", "stage", "calls", "total ms", "self ms", "self %", "cum %"});
  double cum = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageStat& s = stages[i];
    double share = totalSelf > 0 ? s.selfMs / totalSelf : 0;
    cum += share;
    t.addRow({std::to_string(i + 1), s.name, format("%llu", static_cast<unsigned long long>(s.count)),
              format("%.3f", s.totalMs), format("%.3f", s.selfMs),
              format("%.1f%%", share * 100), format("%.1f%%", cum * 100)});
  }
  std::string out = "self hot spots (framework pipeline stages by exclusive time):\n";
  out += t.str();
  return out;
}

std::string selfHotSpotMarkdown(const Registry& reg) {
  std::vector<StageStat> stages = aggregateStages(reg);
  double totalSelf = 0;
  for (const StageStat& s : stages) totalSelf += s.selfMs;
  std::string out = "### Self hot spots (pipeline stages by exclusive time)\n\n";
  out += "| # | stage | calls | total ms | self ms | self % | cum % |\n";
  out += "|--:|:------|------:|---------:|--------:|-------:|------:|\n";
  double cum = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageStat& s = stages[i];
    double share = totalSelf > 0 ? s.selfMs / totalSelf : 0;
    cum += share;
    out += format("| %zu | %s | %llu | %.3f | %.3f | %.1f%% | %.1f%% |\n", i + 1,
                  s.name.c_str(), static_cast<unsigned long long>(s.count), s.totalMs,
                  s.selfMs, share * 100, cum * 100);
  }
  // Counters ride along so CI job summaries surface the work-avoidance
  // figures (sweep/memo-hit, roofline/batched-nodes, pool task counts)
  // next to the stage times.
  MetricsSnapshot snap = reg.metrics();
  if (!snap.counters.empty()) {
    out += "\n### Counters\n\n| counter | value |\n|:--------|------:|\n";
    for (const auto& [name, v] : snap.counters) {
      out += format("| %s | %llu |\n", name.c_str(),
                    static_cast<unsigned long long>(v));
    }
  }
  return out;
}

void writeExports(const Registry& reg, const std::string& tracePath,
                  const std::string& metricsPath, const std::string& selfReportPath) {
  auto write = [](const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) throw Error("cannot write '" + path + "'");
    out << content;
  };
  if (!tracePath.empty()) write(tracePath, toChromeTrace(reg));
  if (!metricsPath.empty()) write(metricsPath, toMetricsJson(reg));
  if (!selfReportPath.empty()) write(selfReportPath, selfHotSpotMarkdown(reg));
}

}  // namespace skope::telemetry
