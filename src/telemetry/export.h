// Exporters over a telemetry Registry snapshot.
//
//   * toChromeTrace — Chrome trace-event JSON ("X" complete events, one
//     track per recorded thread). Open in Perfetto (ui.perfetto.dev) or
//     chrome://tracing; see docs/OBSERVABILITY.md.
//   * toMetricsJson — counters / gauges / histograms / per-stage span
//     aggregates as one JSON object. This is the shared schema every
//     BENCH_*.json file uses (schema "skope-metrics-v1", top-level wall_ms).
//   * selfHotSpotTable / selfHotSpotMarkdown — the paper's hot-spot
//     criterion applied to the framework itself: pipeline stages ranked by
//     self (exclusive) time with coverage percentages.
#pragma once

#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace skope::telemetry {

/// Per-stage aggregate over every recorded span with a given name.
struct StageStat {
  std::string name;
  uint64_t count = 0;   ///< spans recorded
  double totalMs = 0;   ///< summed inclusive wall time
  double selfMs = 0;    ///< summed exclusive time (children subtracted)
};

/// Aggregates all recorded spans by name, sorted by selfMs descending
/// (ties by name for determinism).
std::vector<StageStat> aggregateStages(const Registry& reg);

/// Chrome trace-event JSON of every recorded span track.
std::string toChromeTrace(const Registry& reg);

/// Metrics + stage aggregates as JSON. `benchName` (when non-empty) and
/// `wallMs` (when >= 0) become top-level "bench" / "wall_ms" fields — the
/// contract shared by all BENCH_*.json emitters.
std::string toMetricsJson(const Registry& reg, const std::string& benchName = "",
                          double wallMs = -1);

/// Human-readable ranked self-hot-spot table (fixed-width, via src/report).
std::string selfHotSpotTable(const Registry& reg);

/// The same ranking as a GitHub-flavored markdown table (CI job summaries).
std::string selfHotSpotMarkdown(const Registry& reg);

/// Writes the requested exports; an empty path skips that export. Throws
/// Error when a file cannot be written. Shared by the skopec / sweep CLIs.
void writeExports(const Registry& reg, const std::string& tracePath,
                  const std::string& metricsPath,
                  const std::string& selfReportPath = "");

}  // namespace skope::telemetry
