// Exporters over a telemetry Registry snapshot.
//
//   * toChromeTrace — Chrome trace-event JSON ("X" complete events, one
//     track per recorded thread). Open in Perfetto (ui.perfetto.dev) or
//     chrome://tracing; see docs/OBSERVABILITY.md.
//   * toMetricsJson — counters / gauges / histograms (with percentile
//     summaries) / per-stage span aggregates as one JSON object. This is
//     the shared schema every BENCH_*.json file uses (schema
//     "skope-metrics-v1", top-level wall_ms).
//   * toPrometheusText — the metrics in Prometheus exposition format
//     (text/plain version 0.0.4): # TYPE lines, counters suffixed _total,
//     histograms as cumulative _bucket{le=...} series plus _sum/_count,
//     percentile summaries as derived gauges, and the registry's
//     request_id as a label. Name mangling is documented in
//     docs/OBSERVABILITY.md.
//   * selfHotSpotTable / selfHotSpotMarkdown — the paper's hot-spot
//     criterion applied to the framework itself: pipeline stages ranked by
//     self (exclusive) time with coverage percentages.
#pragma once

#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace skope::telemetry {

/// Per-stage aggregate over every recorded span with a given name.
struct StageStat {
  std::string name;
  uint64_t count = 0;   ///< spans recorded
  double totalMs = 0;   ///< summed inclusive wall time
  double selfMs = 0;    ///< summed exclusive time (children subtracted)
};

/// Deterministic percentile summary of a fixed-bucket histogram. Quantiles
/// interpolate linearly within the bucket holding the target rank (the
/// standard Prometheus histogram_quantile estimate); the overflow bucket
/// interpolates up to the tracked max, and every estimate is clamped to it,
/// so p99 never exceeds an observation that actually happened. All zeros
/// when the histogram is empty.
struct HistogramSummary {
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Summarizes one snapshot histogram. Pure function of the snapshot —
/// identical counts give identical percentiles on every platform.
[[nodiscard]] HistogramSummary summarizeHistogram(const MetricsSnapshot::Hist& h);

/// Aggregates all recorded spans by name, sorted by selfMs descending
/// (ties by name for determinism).
std::vector<StageStat> aggregateStages(const Registry& reg);

/// Chrome trace-event JSON of every recorded span track.
std::string toChromeTrace(const Registry& reg);

/// Metrics + stage aggregates as JSON. `benchName` (when non-empty) and
/// `wallMs` (when >= 0) become top-level "bench" / "wall_ms" fields — the
/// contract shared by all BENCH_*.json emitters. The snapshot's requestId
/// (when non-empty) becomes a top-level "request_id" field.
std::string toMetricsJson(const Registry& reg, const std::string& benchName = "",
                          double wallMs = -1);

/// Snapshot-based overload: callers that need a deterministic byte surface
/// (e.g. comparing two contexts' metrics at different thread counts) can
/// filter the snapshot first — say, drop the wall-clock-valued
/// "sweep/pool/*" entries — and render exactly what is left. `stages` may
/// be empty.
std::string toMetricsJson(const MetricsSnapshot& snap,
                          const std::vector<StageStat>& stages,
                          const std::string& benchName = "", double wallMs = -1);

/// Prometheus exposition text for the registry's metrics. Metric names are
/// mangled as "skope_" + name with every character outside [a-zA-Z0-9_]
/// replaced by '_'; counters additionally get the conventional "_total"
/// suffix. A non-empty request_id is attached as a {request_id="..."} label
/// on every sample. Each histogram also exports derived _p50/_p90/_p99/_max
/// gauges from summarizeHistogram().
std::string toPrometheusText(const Registry& reg);
std::string toPrometheusText(const MetricsSnapshot& snap);

/// Human-readable ranked self-hot-spot table (fixed-width, via src/report).
std::string selfHotSpotTable(const Registry& reg);

/// The same ranking as a GitHub-flavored markdown table (CI job summaries).
/// Appends a counters table and, when histograms exist, a percentile table.
std::string selfHotSpotMarkdown(const Registry& reg);

/// Which serialization writeExports uses for the metrics file.
enum class MetricsFormat {
  Json,  ///< skope-metrics-v1 JSON (the default, and the BENCH_*.json schema)
  Prom,  ///< Prometheus exposition text (--metrics-format=prom)
};

/// Writes the requested exports; an empty path skips that export. Throws
/// Error when a file cannot be written. Shared by the skopec / sweep CLIs.
void writeExports(const Registry& reg, const std::string& tracePath,
                  const std::string& metricsPath,
                  const std::string& selfReportPath = "",
                  MetricsFormat metricsFormat = MetricsFormat::Json);

}  // namespace skope::telemetry
