// Bounded flight recorder: the last N span / counter / log events of a
// registry, kept in a lock-striped ring buffer so recording from pool
// workers never serializes on one mutex. When something goes wrong — a
// CancelToken deadline fires, an injected fault trips, the sweep's per-task
// exception barrier catches — the recorder's tail is dumped alongside the
// status/error row, giving every non-ok config a replayable last-events
// trace (docs/OBSERVABILITY.md, "The flight recorder").
//
// Capacity is fixed at construction and storage is pre-sized: once every
// ring slot's strings have been written once, steady-state recording reuses
// their capacity instead of allocating. Events are globally sequenced, so a
// snapshot merges the stripes back into one record order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skope::telemetry {

class FlightRecorder {
 public:
  enum class Kind : uint8_t {
    Span,     ///< a finished span; value = duration ms
    Counter,  ///< an explicit counter event (e.g. sweep/failed); value = delta
    Log,      ///< a kept log line; detail = the message
  };

  /// One recorded event, in a stable value form (snapshot() copies, so a
  /// dump stays valid after the owning registry dies).
  struct Event {
    uint64_t seq = 0;   ///< global record order (0 = slot never written)
    uint64_t tsNs = 0;  ///< relative to the owning registry's epoch
    Kind kind = Kind::Span;
    double value = 0;
    std::string name;
    std::string detail;
  };

  /// `capacity` is the total slot count across stripes (rounded up to a
  /// multiple of the stripe count; minimum one slot per stripe).
  explicit FlightRecorder(size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Thread-safe; takes only the calling thread's stripe
  /// lock. Under heavy skew one thread's burst can evict slightly more than
  /// its share of history (eviction is per stripe, not global) — the
  /// recorder trades exact LRU for contention-free recording.
  void record(Kind kind, std::string_view name, double value,
              std::string_view detail, uint64_t tsNs);

  /// Every recorded event, oldest first (merged across stripes by seq).
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// The newest `n` events (oldest of them first), formatted one per line:
  ///   +<ts ms> span <name> <dur ms>
  ///   +<ts ms> counter <name> +<delta> — <detail>
  ///   +<ts ms> log <message>
  /// `n` == 0 means all.
  [[nodiscard]] std::vector<std::string> lastEvents(size_t n) const;

  /// lastEvents(n) joined with newlines (the dump format tests pin down).
  [[nodiscard]] std::string dump(size_t n = 0) const;

  void clear();

  [[nodiscard]] size_t capacity() const { return kStripes * perStripe_; }

 private:
  static constexpr size_t kStripes = 8;

  struct Stripe {
    mutable std::mutex mu;
    std::vector<Event> ring;  ///< pre-sized to perStripe_
    size_t next = 0;          ///< ring cursor
  };

  Stripe& myStripe();

  size_t perStripe_;
  std::atomic<uint64_t> seq_{1};
  std::array<Stripe, kStripes> stripes_;
};

/// Formats one event as the dump line documented on lastEvents().
[[nodiscard]] std::string formatFlightEvent(const FlightRecorder::Event& ev);

}  // namespace skope::telemetry
