// Self-instrumentation for the modeling framework: the paper explains where
// an application's time goes, this layer explains where OUR time goes.
//
// Three primitives, all thread-safe and all near-free when disabled:
//
//   * Spans — RAII wall-clock intervals (SKOPE_SPAN("bet/build")) recorded
//     into per-thread tracks with nesting depth. When the registry is
//     disabled (the default) a span construction is a single relaxed atomic
//     load: no clock read, no allocation, no lock.
//   * Metrics — a registry of named counters (monotonic uint64), gauges
//     (last-write double) and fixed-bucket histograms. Hot-path producers
//     guard their updates with telemetry::enabled() so disabled runs pay
//     nothing.
//   * Exporters (telemetry/export.h) — Chrome trace-event JSON for
//     Perfetto / chrome://tracing, a metrics JSON dump (the shared
//     BENCH_*.json schema), and the ranked self-hot-spot table.
//
// Naming convention (docs/OBSERVABILITY.md): lowercase "area/stage" paths,
// e.g. "frontend/parse", "backend/roofline", "sweep/pool/steals". Span names
// identify pipeline stages; per-item spans prefix the area ("config/<name>").
//
// Everything records into the process-wide Registry::global(); tests reset
// it with clear(). Compile out entirely with -DSKOPE_NO_TELEMETRY.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skope::telemetry {

using Clock = std::chrono::steady_clock;

/// One finished span. `staticName` (a string literal) is preferred; dynamic
/// names own their storage in `dynName`.
struct SpanEvent {
  const char* staticName = nullptr;
  std::string dynName;
  uint64_t startNs = 0;  ///< relative to the registry's epoch
  uint64_t durNs = 0;
  uint32_t depth = 0;    ///< nesting depth on its thread at begin time

  [[nodiscard]] std::string_view name() const {
    return staticName != nullptr ? std::string_view(staticName)
                                 : std::string_view(dynName);
  }
};

/// Monotonic event count. add() is lock-free; callers on hot paths should
/// batch (one add per run, not per event) and guard with enabled().
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double (e.g. a bench figure's wall_ms).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v);
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram with Prometheus-style upper-inclusive edges:
/// bucket i counts observations v with edges[i-1] < v <= edges[i]; the
/// final (edges.size()-th) bucket is the overflow for v > edges.back().
class Histogram {
 public:
  /// `upperEdges` must be non-empty and strictly increasing (throws Error).
  explicit Histogram(std::vector<double> upperEdges);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// edges().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<uint64_t> counts() const;
  [[nodiscard]] uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<double> sum_{0};
};

/// Snapshot of one thread's recorded spans (events in end order).
struct ThreadTrack {
  uint32_t tid = 0;   ///< sequential registration id, not the OS tid
  std::string name;   ///< from setThreadName(); empty = unnamed
  std::vector<SpanEvent> events;
};

/// Point-in-time copy of every metric, for the exporters.
struct MetricsSnapshot {
  struct Hist {
    std::vector<double> edges;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;
};

class Span;

class Registry {
 public:
  Registry();

  /// Relaxed read; the only cost telemetry adds to a disabled run.
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Looks up or creates a metric. References stay valid for the registry's
  /// lifetime (clear() resets values, it never destroys entries).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upperEdges` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> upperEdges);

  [[nodiscard]] MetricsSnapshot metrics() const;
  /// Tracks in registration (tid) order; tracks with no events are included
  /// so worker naming survives even if a worker recorded nothing.
  [[nodiscard]] std::vector<ThreadTrack> spanTracks() const;

  /// Labels the calling thread's track (shown in the Chrome trace). No-op
  /// while disabled.
  void nameCurrentThread(const std::string& name);

  /// Resets every metric value and drops all span events. Entries, thread
  /// registrations and the enabled flag are kept. Do not call with spans
  /// still open.
  void clear();

  /// The process-wide registry all spans and wired counters use.
  static Registry& global();

 private:
  friend class Span;

  struct ThreadLog {
    uint32_t tid = 0;
    uint32_t depth = 0;  ///< touched only by the owning thread
    std::mutex mu;       ///< guards events + name against snapshot readers
    std::string name;
    std::vector<SpanEvent> events;
  };

  /// The calling thread's log, registering it on first use.
  ThreadLog* threadLog();
  [[nodiscard]] uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_)
            .count());
  }

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards the three maps and logs_
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

/// RAII span over the global registry. Prefer the SKOPE_SPAN macro for
/// literal names; the (prefix, suffix) form concatenates only when enabled,
/// so dynamic-name call sites stay allocation-free while disabled.
class Span {
 public:
  explicit Span(const char* staticName) {
    if (Registry::global().enabled()) begin(staticName, nullptr);
  }
  explicit Span(const std::string& dynName) {
    if (Registry::global().enabled()) begin(nullptr, &dynName);
  }
  Span(const char* prefix, const std::string& suffix);
  ~Span() {
    if (log_ != nullptr) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* staticName, const std::string* dynName);
  void end();

  Registry::ThreadLog* log_ = nullptr;  ///< null = disabled at construction
  const char* staticName_ = nullptr;
  std::string dynName_;
  uint64_t startNs_ = 0;
  uint32_t depth_ = 0;
};

/// Shorthand for Registry::global().enabled(): the guard hot-path producers
/// put around counter updates.
[[nodiscard]] inline bool enabled() { return Registry::global().enabled(); }

/// Labels the calling thread's track in the global registry.
inline void setThreadName(const std::string& name) {
  Registry::global().nameCurrentThread(name);
}

#if defined(SKOPE_NO_TELEMETRY)
#define SKOPE_SPAN(name) ((void)0)
#else
#define SKOPE_SPAN_CONCAT_(a, b) a##b
#define SKOPE_SPAN_CONCAT(a, b) SKOPE_SPAN_CONCAT_(a, b)
/// Scoped span with a string-literal stage name.
#define SKOPE_SPAN(name) \
  ::skope::telemetry::Span SKOPE_SPAN_CONCAT(skopeSpan_, __LINE__)(name)
#endif

}  // namespace skope::telemetry
