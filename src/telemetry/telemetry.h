// Self-instrumentation for the modeling framework: the paper explains where
// an application's time goes, this layer explains where OUR time goes.
//
// Three primitives, all thread-safe and all near-free when disabled:
//
//   * Spans — RAII wall-clock intervals (SKOPE_SPAN("bet/build")) recorded
//     into per-thread tracks with nesting depth. When the registry is
//     disabled (the default) a span construction is a single relaxed atomic
//     load: no clock read, no allocation, no lock.
//   * Metrics — a registry of named counters (monotonic uint64), gauges
//     (last-write double) and fixed-bucket histograms. Hot-path producers
//     guard their updates with telemetry::enabled() so disabled runs pay
//     nothing.
//   * Exporters (telemetry/export.h) — Chrome trace-event JSON for
//     Perfetto / chrome://tracing, a metrics JSON dump (the shared
//     BENCH_*.json schema), Prometheus exposition text, and the ranked
//     self-hot-spot table.
//
// Naming convention (docs/OBSERVABILITY.md): lowercase "area/stage" paths,
// e.g. "frontend/parse", "backend/roofline", "sweep/pool/steals". Span names
// identify pipeline stages; per-item spans prefix the area ("config/<name>").
//
// Multi-tenancy: producers record into Registry::current(), which is
// Registry::global() unless a telemetry::Context is open on (or was handed
// to) the calling thread. A Context scopes its own Registry — carrying a
// correlation ID (request_id) — over the dynamic extent of a sweep / search
// / request, and WorkStealingPool propagates the submitting thread's current
// registry to its workers, so worker spans land in the submitting context.
// Tests reset the global registry with clear(). Compile the span macro out
// entirely with -DSKOPE_NO_TELEMETRY.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/flight.h"

namespace skope::telemetry {

using Clock = std::chrono::steady_clock;

/// One finished span. `staticName` points either at a string literal or
/// (when `interned` is set) into the owning registry's name interner;
/// snapshots materialize interned names into `dynName` so they survive the
/// registry (spanTracks()).
struct SpanEvent {
  const char* staticName = nullptr;
  std::string dynName;
  uint64_t startNs = 0;  ///< relative to the registry's epoch
  uint64_t durNs = 0;
  uint32_t depth = 0;    ///< nesting depth on its thread at begin time
  bool interned = false; ///< staticName points into the registry's interner

  [[nodiscard]] std::string_view name() const {
    return staticName != nullptr ? std::string_view(staticName)
                                 : std::string_view(dynName);
  }
};

/// Monotonic event count. add() is lock-free; callers on hot paths should
/// batch (one add per run, not per event) and guard with enabled().
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double (e.g. a bench figure's wall_ms).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v);
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Point-in-time copy of every metric, for the exporters and for rolling a
/// context's totals up into a parent registry.
struct MetricsSnapshot {
  struct Hist {
    std::vector<double> edges;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0;
    double max = 0;  ///< largest observation; 0 when total == 0
  };
  std::string requestId;  ///< the source registry's correlation ID
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;
};

/// Fixed-bucket histogram with Prometheus-style upper-inclusive edges:
/// bucket i counts observations v with edges[i-1] < v <= edges[i]; the
/// final (edges.size()-th) bucket is the overflow for v > edges.back().
/// The largest observation is tracked exactly, so percentile summaries can
/// clamp overflow-bucket interpolation to a real value.
class Histogram {
 public:
  /// `upperEdges` must be non-empty and strictly increasing (throws Error).
  explicit Histogram(std::vector<double> upperEdges);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// edges().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<uint64_t> counts() const;
  [[nodiscard]] uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest observation so far; 0 when no observations were recorded.
  [[nodiscard]] double max() const;
  /// Adds another histogram's buckets into this one (context rollup).
  /// Returns false — and changes nothing — when the edges differ.
  bool merge(const MetricsSnapshot::Hist& other);
  void reset();

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
  std::atomic<bool> hasMax_{false};
};

/// Snapshot of one thread's recorded spans (events in end order).
struct ThreadTrack {
  uint32_t tid = 0;   ///< sequential registration id, not the OS tid
  std::string name;   ///< from setThreadName(); empty = unnamed
  std::vector<SpanEvent> events;
};

class Span;

class Registry {
 public:
  /// `requestId` is the registry's correlation ID: empty for the global
  /// registry, set by Context for per-request registries. It labels the
  /// Prometheus export and the metrics JSON.
  explicit Registry(std::string requestId = {}, size_t flightCapacity = 256);

  /// Relaxed read; the only cost telemetry adds to a disabled run.
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& requestId() const { return requestId_; }

  /// Looks up or creates a metric. References stay valid for the registry's
  /// lifetime (clear() resets values, it never destroys entries).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upperEdges` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> upperEdges);

  /// Interns `name` in this registry: one stable, NUL-terminated copy per
  /// distinct name, alive until the registry dies. Dynamic span names go
  /// through here so hot per-config spans ("config/<name>") stop allocating
  /// per event — the per-thread event log stores only the pointer.
  const char* internName(std::string_view name);

  /// The bounded last-events ring (spans end into it; failure paths add
  /// counter events; kept log lines mirror into the current registry's).
  [[nodiscard]] FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const FlightRecorder& flight() const { return flight_; }

  /// Nanoseconds since this registry's construction (the timestamp base of
  /// every span and flight-recorder event it holds).
  [[nodiscard]] uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_)
            .count());
  }

  [[nodiscard]] MetricsSnapshot metrics() const;
  /// Tracks in registration (tid) order; tracks with no events are included
  /// so worker naming survives even if a worker recorded nothing. Interned
  /// span names are materialized into the returned events, so the snapshot
  /// stays valid after the registry (e.g. a closed Context) is destroyed.
  [[nodiscard]] std::vector<ThreadTrack> spanTracks() const;

  /// Adds this registry's counters and histograms into `parent` and writes
  /// its gauges over the parent's (last-write-wins, matching Gauge
  /// semantics). Histograms merge bucket-wise when the parent's edges match
  /// and are skipped otherwise. Span tracks and flight events stay local —
  /// rollup is for totals, not traces.
  void rollUpInto(Registry& parent) const;

  /// Labels the calling thread's track (shown in the Chrome trace). No-op
  /// while disabled.
  void nameCurrentThread(const std::string& name);

  /// Resets every metric value and drops all span and flight events.
  /// Entries, interned names, thread registrations and the enabled flag are
  /// kept. Do not call with spans still open.
  void clear();

  /// The process-wide registry, used whenever no Context is current.
  static Registry& global();

  /// The calling thread's effective registry: the innermost Context open on
  /// (or propagated to) this thread, else global(). This is what every
  /// producer — spans, counters, the pool's scheduling metrics — records
  /// into.
  static Registry& current();

 private:
  friend class Span;
  friend class ScopedRegistry;

  struct ThreadLog {
    uint32_t tid = 0;
    uint32_t depth = 0;  ///< touched only by the owning thread
    std::mutex mu;       ///< guards events + name against snapshot readers
    std::string name;
    std::vector<SpanEvent> events;
  };

  /// The calling thread's log, registering it on first use.
  ThreadLog* threadLog();

  const uint64_t uid_;  ///< process-unique; keys the thread-local log cache
  std::string requestId_;
  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  FlightRecorder flight_;
  mutable std::mutex mu_;  ///< guards the maps, logs_ and interned_
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::set<std::string, std::less<>> interned_;  ///< node-stable name storage
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

namespace detail {
/// The thread's current-registry override; nullptr means global(). Written
/// only by ScopedRegistry / Context on the owning thread.
inline thread_local Registry* tlsCurrent = nullptr;
}  // namespace detail

inline Registry& Registry::current() {
  return detail::tlsCurrent != nullptr ? *detail::tlsCurrent : global();
}

/// RAII: installs `reg` as the calling thread's current registry, restoring
/// the previous one on destruction. nullptr re-selects global(). This is the
/// propagation primitive WorkStealingPool uses to hand the submitting
/// thread's context to its workers (the pointer is captured before the
/// workers spawn, so the handoff is ordered by thread creation — TSan-clean).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* reg) : prev_(detail::tlsCurrent) {
    detail::tlsCurrent = reg;
  }
  ~ScopedRegistry() { detail::tlsCurrent = prev_; }

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

/// A request-scoped telemetry context: owns a Registry carrying a
/// correlation ID and makes it Registry::current() for the calling thread
/// (and, via the pool's propagation, for every worker executing this
/// context's tasks) until destroyed. Context registries are born enabled —
/// opening one IS the opt-in for that request.
///
/// On destruction the context's counters and histograms can roll up into a
/// parent registry (typically Registry::global()) so process-wide totals
/// still add up across requests; pass nullptr to keep the totals isolated.
///
/// Must be constructed and destroyed on the same thread, with no spans of
/// this context still open (the usual RAII stack discipline gives both).
class Context {
 public:
  explicit Context(std::string requestId, Registry* rollUpInto = nullptr,
                   size_t flightCapacity = 256)
      : reg_(std::move(requestId), flightCapacity), rollUpInto_(rollUpInto),
        scope_(&reg_) {
    reg_.setEnabled(true);
  }
  ~Context() {
    if (rollUpInto_ != nullptr) reg_.rollUpInto(*rollUpInto_);
  }

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] Registry& registry() { return reg_; }
  [[nodiscard]] const Registry& registry() const { return reg_; }
  [[nodiscard]] const std::string& requestId() const { return reg_.requestId(); }

 private:
  Registry reg_;
  Registry* rollUpInto_;
  ScopedRegistry scope_;  ///< declared last: uninstalls before reg_ dies
};

/// RAII span over the current registry. Prefer the SKOPE_SPAN macro for
/// literal names; the (prefix, suffix) form concatenates only when enabled,
/// so dynamic-name call sites stay allocation-free while disabled. Dynamic
/// names are interned in the owning registry (one allocation per distinct
/// name, none per event).
class Span {
 public:
  explicit Span(const char* staticName) {
    Registry& reg = Registry::current();
    if (reg.enabled()) begin(reg, staticName, {});
  }
  explicit Span(const std::string& dynName) {
    Registry& reg = Registry::current();
    if (reg.enabled()) begin(reg, nullptr, dynName);
  }
  Span(const char* prefix, const std::string& suffix);
  ~Span() {
    if (reg_ != nullptr) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(Registry& reg, const char* staticName, std::string_view dynName);
  void end();

  Registry* reg_ = nullptr;  ///< null = disabled at construction
  Registry::ThreadLog* log_ = nullptr;
  const char* staticName_ = nullptr;
  bool interned_ = false;
  uint64_t startNs_ = 0;
  uint32_t depth_ = 0;
};

/// Shorthand for Registry::current().enabled(): the guard hot-path producers
/// put around counter updates.
[[nodiscard]] inline bool enabled() { return Registry::current().enabled(); }

/// Labels the calling thread's track in the current registry.
inline void setThreadName(const std::string& name) {
  Registry::current().nameCurrentThread(name);
}

#if defined(SKOPE_NO_TELEMETRY)
#define SKOPE_SPAN(name) ((void)0)
#else
#define SKOPE_SPAN_CONCAT_(a, b) a##b
#define SKOPE_SPAN_CONCAT(a, b) SKOPE_SPAN_CONCAT_(a, b)
/// Scoped span with a string-literal stage name.
#define SKOPE_SPAN(name) \
  ::skope::telemetry::Span SKOPE_SPAN_CONCAT(skopeSpan_, __LINE__)(name)
#endif

}  // namespace skope::telemetry
