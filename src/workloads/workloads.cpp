#include "workloads/workloads.h"

namespace skope::workloads {

std::vector<const Workload*> allWorkloads() {
  return {&sord(), &chargei(), &srad(), &cfd(), &stassuij()};
}

}  // namespace skope::workloads
