#include "workloads/workloads.h"

namespace skope::workloads {

namespace {

// CFD — unstructured-grid finite-volume solver for the 3-D Euler equations
// (Rodinia's cfd miniapp shape). A main time-stepping loop updates pressure,
// momentum and density: per-face flux computation gathers state from an
// irregular neighbor table, a local time-step kernel scans cell volumes, and
// a velocity-recovery kernel performs a *series of divisions* per cell —
// this last one is the paper's example of the uniform-flop roofline
// under-projecting on BG/Q ("expected <3 % of runtime, took 15 %"), because
// XL expands each divide into a reciprocal-estimate + Newton sequence.
// Grid scaled from 97k cells.
constexpr const char* kSource = R"(
param int NEL = 24000;   // cells
param int NNB = 4;       // neighbors per cell
param int NSTEP = 3;

global int  nbr[NEL][NNB];       // neighbor table (irregular)
global real normx[NEL][NNB];     // face normals
global real dens[NEL];
global real momx[NEL];
global real momy[NEL];
global real ener[NEL];
global real flux_d[NEL];
global real flux_mx[NEL];
global real flux_my[NEL];
global real flux_e[NEL];
global real velx[NEL];
global real vely[NEL];
global real press[NEL];
global real volume[NEL];
global real dtloc[NEL];
global real resid;

func void init_mesh() {
  var int e; var int n;
  for (e = 0; e < NEL; e = e + 1) {
    dens[e] = 1.0 + 0.1 * rand();
    momx[e] = 0.3 * (rand() - 0.5);
    momy[e] = 0.3 * (rand() - 0.5);
    ener[e] = 2.5 + 0.2 * rand();
    volume[e] = 0.5 + rand();
    for (n = 0; n < NNB; n = n + 1) {
      var int k = rand() * (NEL - 1);
      nbr[e][n] = k;
      normx[e][n] = rand() - 0.5;
    }
  }
}

// Pressure from the equation of state (gamma-law): streaming, moderate mix.
func void compute_pressure() {
  var int e;
  for (e = 0; e < NEL; e = e + 1) {
    var real ke = 0.5 * (momx[e] * momx[e] + momy[e] * momy[e]) / dens[e];
    press[e] = 0.4 * (ener[e] - ke);
    if (press[e] < 0.001) { press[e] = 0.001; }
  }
}

// THE flux hot spot: per-face gather through the neighbor table — dominant
// and memory-irregular.
func void compute_flux() {
  var int e; var int n;
  for (e = 0; e < NEL; e = e + 1) {
    var real fd = 0.0;
    var real fmx = 0.0;
    var real fmy = 0.0;
    var real fe = 0.0;
    for (n = 0; n < NNB; n = n + 1) {
      var int k = nbr[e][n];
      var real nx = normx[e][n];
      var real pavg = 0.5 * (press[e] + press[k]);
      var real davg = 0.5 * (dens[e] + dens[k]);
      fd = fd + nx * (momx[k] - momx[e]);
      fmx = fmx + nx * (pavg + davg * velx[k] * velx[k]);
      fmy = fmy + nx * (pavg + davg * vely[k] * vely[k]);
      fe = fe + nx * (ener[k] + pavg) * velx[k];
    }
    flux_d[e] = fd;
    flux_mx[e] = fmx;
    flux_my[e] = fmy;
    flux_e[e] = fe;
  }
}

// Local CFL time step: one divide + sqrt per cell.
func void compute_timestep() {
  var int e;
  for (e = 0; e < NEL; e = e + 1) {
    var real c = sqrt(1.4 * press[e] / dens[e]);
    var real vmag = fabs(velx[e]) + fabs(vely[e]) + c;
    dtloc[e] = 0.5 * volume[e] / (vmag + 0.0001);
  }
}

// Conservative update from fluxes: streaming, vectorizable.
func void advance() {
  var int e;
  for (e = 0; e < NEL; e = e + 1) {
    dens[e] = dens[e] - dtloc[e] * flux_d[e] * 0.01;
    momx[e] = momx[e] - dtloc[e] * flux_mx[e] * 0.01;
    momy[e] = momy[e] - dtloc[e] * flux_my[e] * 0.01;
    ener[e] = ener[e] - dtloc[e] * flux_e[e] * 0.01;
  }
}

// Velocity recovery: the paper's division-heavy spot — several divides per
// cell and almost nothing else.
func void compute_velocity() {
  var int e;
  for (e = 0; e < NEL; e = e + 1) {
    velx[e] = momx[e] / dens[e];
    vely[e] = momy[e] / dens[e];
    dtloc[e] = dtloc[e] / (1.0 + fabs(flux_d[e]) / (dens[e] + 0.0001));
  }
}

// Residual reduction for convergence monitoring.
func real residual() {
  var int e;
  var real r = 0.0;
  for (e = 0; e < NEL; e = e + 1) {
    r = r + flux_d[e] * flux_d[e];
  }
  return r;
}

func void main() {
  init_mesh();
  var int s;
  for (s = 0; s < NSTEP; s = s + 1) {
    compute_pressure();
    compute_flux();
    compute_timestep();
    advance();
    compute_velocity();
    resid = resid + residual();
  }
}
)";

}  // namespace

const Workload& cfd() {
  static const Workload w = [] {
    Workload wl;
    wl.name = "CFD";
    wl.description =
        "Unstructured finite-volume Euler solver — irregular flux gather plus "
        "a division-heavy velocity recovery kernel";
    wl.source = kSource;
    wl.params = {{"NEL", 24000}, {"NNB", 4}, {"NSTEP", 3}};
    wl.seed = 0xcfd1;
    return wl;
  }();
  return w;
}

}  // namespace skope::workloads
