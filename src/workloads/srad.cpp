#include "workloads/workloads.h"

namespace skope::workloads {

namespace {

// SRAD — speckle-reducing anisotropic diffusion. Mirrors the Rodinia kernel
// the paper uses: the image is seeded with exponentially-distributed speckle
// (rand + exp — both library functions and both among the paper's top three
// measured hot spots), a sample window provides the noise signature, and the
// diffusion sweep computes gradients, a diffusion coefficient with exp(),
// and the update. Image scaled from 2048x2048 to keep the ground-truth
// simulation interactive; the sample window scales with it.
constexpr const char* kSource = R"(
param int NI = 256;
param int NJ = 256;
param int NITER = 2;
param int SAMPLE = 32;   // speckle sample window edge

global real img[NI][NJ];
global real dn[NI][NJ];
global real ds[NI][NJ];
global real de[NI][NJ];
global real dw[NI][NJ];
global real coef[NI][NJ];
global real meanROI;
global real varROI;
global real q0sqr;

// Speckle seeding: one rand() and one exp() per pixel (library hot spots).
func void init_image() {
  var int i; var int j;
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NJ; j = j + 1) {
      img[i][j] = exp(rand() * 0.8 - 0.4) * 128.0;
    }
  }
}

// Noise signature from the sample window (paper: 128x128 of 2048x2048).
func void sample_stats() {
  var int i; var int j;
  var real sum = 0.0;
  var real sum2 = 0.0;
  for (i = 0; i < SAMPLE; i = i + 1) {
    for (j = 0; j < SAMPLE; j = j + 1) {
      sum = sum + img[i][j];
      sum2 = sum2 + img[i][j] * img[i][j];
    }
  }
  var real n = SAMPLE * SAMPLE;
  meanROI = sum / n;
  varROI = sum2 / n - meanROI * meanROI;
  q0sqr = varROI / (meanROI * meanROI);
}

// Gradient + diffusion coefficient: the main compute hot spot; one exp()
// per pixel keeps lib:exp hot across the whole run.
func void compute_coefficients() {
  var int i; var int j;
  for (i = 1; i < NI - 1; i = i + 1) {
    for (j = 1; j < NJ - 1; j = j + 1) {
      var real c = img[i][j];
      dn[i][j] = img[i - 1][j] - c;
      ds[i][j] = img[i + 1][j] - c;
      dw[i][j] = img[i][j - 1] - c;
      de[i][j] = img[i][j + 1] - c;
      var real g2 = (dn[i][j] * dn[i][j] + ds[i][j] * ds[i][j]
                   + dw[i][j] * dw[i][j] + de[i][j] * de[i][j]) / (c * c);
      var real l = (dn[i][j] + ds[i][j] + dw[i][j] + de[i][j]) / c;
      var real num = 0.5 * g2 - 0.0625 * (l * l);
      var real den = 1.0 + 0.25 * l;
      var real qsqr = num / (den * den);
      coef[i][j] = exp(-(qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr) + 0.0001));
      if (coef[i][j] < 0.0) { coef[i][j] = 0.0; }
      if (coef[i][j] > 1.0) { coef[i][j] = 1.0; }
    }
  }
}

// Diffusion update sweep: streaming stencil, short vectorizable body.
func void diffuse() {
  var int i; var int j;
  for (i = 1; i < NI - 1; i = i + 1) {
    for (j = 1; j < NJ - 1; j = j + 1) {
      var real cn = coef[i][j];
      var real cs = coef[i + 1][j];
      var real ce = coef[i][j + 1];
      var real d = cn * dn[i][j] + cs * ds[i][j] + cn * dw[i][j] + ce * de[i][j];
      img[i][j] = img[i][j] + 0.0625 * d;
    }
  }
}

// Rodinia SRAD log-compresses the image before diffusing...
func void compress() {
  var int i; var int j;
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NJ; j = j + 1) {
      img[i][j] = log(img[i][j] + 1.0);
    }
  }
}

// ...and exp-expands it afterwards.
func void expand() {
  var int i; var int j;
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NJ; j = j + 1) {
      img[i][j] = exp(img[i][j]) - 1.0;
    }
  }
}

// Mirror boundary conditions around the frame.
func void boundary_reflect() {
  var int i; var int j;
  for (j = 0; j < NJ; j = j + 1) {
    img[0][j] = img[1][j];
    img[NI - 1][j] = img[NI - 2][j];
  }
  for (i = 0; i < NI; i = i + 1) {
    img[i][0] = img[i][1];
    img[i][NJ - 1] = img[i][NJ - 2];
  }
}

// Mean intensity diagnostic.
func real total_intensity() {
  var int i; var int j;
  var real s = 0.0;
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NJ; j = j + 1) { s = s + img[i][j]; }
  }
  return s / (NI * NJ);
}

global real meanOut;

func void main() {
  init_image();
  compress();
  var int iter;
  for (iter = 0; iter < NITER; iter = iter + 1) {
    sample_stats();
    compute_coefficients();
    diffuse();
    boundary_reflect();
  }
  expand();
  meanOut = total_intensity();
}
)";

}  // namespace

const Workload& srad() {
  static const Workload w = [] {
    Workload wl;
    wl.name = "SRAD";
    wl.description =
        "Speckle-reducing anisotropic diffusion — medical-imaging denoise "
        "with library exp/rand among the measured hot spots";
    wl.source = kSource;
    wl.params = {{"NI", 256}, {"NJ", 256}, {"NITER", 2}, {"SAMPLE", 32}};
    wl.seed = 0x56ad;
    return wl;
  }();
  return w;
}

}  // namespace skope::workloads
