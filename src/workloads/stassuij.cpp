#include "workloads/workloads.h"

namespace skope::workloads {

namespace {

// STASSUIJ — the two-body correlation kernel at the core of the Green's
// Function Monte Carlo application. Two algorithmic phases (paper §VI):
//   1. multiply a 132x132 *sparse* real matrix with a 132x2048 *dense*
//      complex matrix — per nonzero, a long unit-stride scaling loop over
//      the complex row. IBM XL vectorizes this inner loop aggressively,
//      which is why the paper's model (vectorization-blind) OVER-estimates
//      the top hot spot's time on BG/Q;
//   2. exchange groups of four elements within each row in a butterfly
//      pattern, with exchange indices stored in a separate array.
// Measured: top spot ~68 % of runtime, second ~23 %.
constexpr const char* kSource = R"(
param int NROW = 132;
param int NCOL = 512;     // complex columns (scaled from 2048)
param int NNZ = 8;        // nonzeros per sparse row
param int NPASS = 5;

global int  colidx[NROW][NNZ];   // sparse structure
global real aval[NROW][NNZ];     // sparse values
global real xre[NROW][NCOL];     // dense complex input (real part)
global real xim[NROW][NCOL];
global real yre[NROW][NCOL];     // accumulator
global real yim[NROW][NCOL];
global int  bfly[NCOL];          // butterfly exchange indices
global real norm;

func void init_data() {
  var int r; var int c; var int n;
  for (r = 0; r < NROW; r = r + 1) {
    for (c = 0; c < NCOL; c = c + 1) {
      xre[r][c] = rand() - 0.5;
      xim[r][c] = rand() - 0.5;
      yre[r][c] = 0.0;
      yim[r][c] = 0.0;
    }
    for (n = 0; n < NNZ; n = n + 1) {
      colidx[r][n] = rand() * (NROW - 1);
      aval[r][n] = rand() - 0.5;
    }
  }
  // butterfly pattern: swap within groups of four
  for (c = 0; c < NCOL; c = c + 1) {
    var int grp = c / 4;
    var int off = c % 4;
    bfly[c] = grp * 4 + (3 - off);
  }
}

// Phase 1 hot spot: per sparse nonzero, scale-and-accumulate one complex
// row — a long, simple, unit-stride loop (XL vectorizes this on BG/Q).
func void sparse_apply() {
  var int r; var int n; var int c;
  for (r = 0; r < NROW; r = r + 1) {
    for (n = 0; n < NNZ; n = n + 1) {
      var int src = colidx[r][n];
      var real s = aval[r][n];
      for (c = 0; c < NCOL; c = c + 1) {
        yre[r][c] = yre[r][c] + s * xre[src][c];
        yim[r][c] = yim[r][c] + s * xim[src][c];
      }
    }
  }
}

// Phase 2 hot spot: butterfly exchange of groups of four within each row,
// indices from a separate array (irregular but cache-resident).
func void butterfly_exchange() {
  var int r; var int c;
  for (r = 0; r < NROW; r = r + 1) {
    for (c = 0; c < NCOL; c = c + 1) {
      var int d = bfly[c];
      if (d > c) {
        var real tre = yre[r][c];
        var real tim = yim[r][c];
        yre[r][c] = yre[r][d];
        yim[r][c] = yim[r][d];
        yre[r][d] = tre;
        yim[r][d] = tim;
      }
    }
  }
}

// normalization reduction over the result
func real normalize() {
  var int r; var int c;
  var real s = 0.0;
  for (r = 0; r < NROW; r = r + 1) {
    for (c = 0; c < NCOL; c = c + 1) {
      s = s + yre[r][c] * yre[r][c] + yim[r][c] * yim[r][c];
    }
  }
  return s;
}

func void main() {
  init_data();
  var int p;
  for (p = 0; p < NPASS; p = p + 1) {
    sparse_apply();
    butterfly_exchange();
    norm = norm + normalize();
  }
}
)";

}  // namespace

const Workload& stassuij() {
  static const Workload w = [] {
    Workload wl;
    wl.name = "STASSUIJ";
    wl.description =
        "GFMC two-body correlation kernel — sparse x dense complex multiply "
        "plus butterfly element exchange";
    wl.source = kSource;
    wl.params = {{"NROW", 132}, {"NCOL", 512}, {"NNZ", 8}, {"NPASS", 5}};
    wl.seed = 0x57a5;
    return wl;
  }();
  return w;
}

}  // namespace skope::workloads
