#include "workloads/workloads.h"

namespace skope::workloads {

namespace {

// SORD mini-app: 3-D viscoelastic wave propagation on a structured grid with
// a rupturing fault plane. The real application (5139 lines of Fortran, 370
// functions) alternates strain / stress / attenuation / velocity kernels
// inside a time-stepping loop, with free-surface and absorbing boundaries,
// fault friction, and periodic checksums. The port keeps one function per
// physical phase — ~20 candidate hot-spot blocks whose mixes are deliberately
// diverse (memory-bound copies, div/sqrt-heavy friction, branchy viscoelastic
// updates, wide stencils, short vectorizable streams), because the paper's
// headline SORD result is that the hot-spot *ordering* differs between BG/Q
// and Xeon (only 4 of the top 10 are shared).
constexpr const char* kSource = R"(
param int NX = 40;
param int NY = 40;
param int NZ = 40;
param int NT = 4;
param int KFAULT = 20;

global real vx[NX][NY][NZ];
global real vy[NX][NY][NZ];
global real vz[NX][NY][NZ];
global real sxx[NX][NY][NZ];
global real syy[NX][NY][NZ];
global real szz[NX][NY][NZ];
global real sxy[NX][NY][NZ];
global real exx[NX][NY][NZ];
global real eyy[NX][NY][NZ];
global real ezz[NX][NY][NZ];
global real exy[NX][NY][NZ];
global real lam[NX][NY][NZ];
global real mu[NX][NY][NZ];
global real qfac[NX][NY][NZ];
global real memx[NX][NY][NZ];
global real tract[NX][NY];
global real slip[NX][NY];
global real halo[NX][NY];
global real energy;

func void init_grid() {
  var int i; var int j; var int k;
  for (i = 0; i < NX; i = i + 1) {
    for (j = 0; j < NY; j = j + 1) {
      for (k = 0; k < NZ; k = k + 1) {
        lam[i][j][k] = 30.0 + 5.0 * rand();
        mu[i][j][k] = 25.0 + 3.0 * rand();
        qfac[i][j][k] = rand();
        vx[i][j][k] = 0.001 * rand();
        vy[i][j][k] = 0.001 * rand();
        vz[i][j][k] = 0.001 * rand();
        memx[i][j][k] = 0.0;
      }
    }
  }
}

// Normal strain: 3-statement unit-stride body (vectorizable by GFortran,
// borderline for XL).
func void strain_normal() {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        exx[i][j][k] = vx[i + 1][j][k] - vx[i - 1][j][k];
        eyy[i][j][k] = vy[i][j + 1][k] - vy[i][j - 1][k];
        ezz[i][j][k] = vz[i][j][k + 1] - vz[i][j][k - 1];
      }
    }
  }
}

// Shear strain: wider cross-derivative stencil, more loads per point.
func void strain_shear() {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        exy[i][j][k] = 0.25 * (vx[i][j + 1][k] - vx[i][j - 1][k]
                     + vy[i + 1][j][k] - vy[i - 1][j][k])
                     + 0.125 * (vx[i + 1][j + 1][k] - vx[i - 1][j - 1][k]);
      }
    }
  }
}

// Hooke's law, normal components: compute-heavy streaming kernel.
func void stress_normal(real dt) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        var real tr = exx[i][j][k] + eyy[i][j][k] + ezz[i][j][k];
        var real l = lam[i][j][k];
        var real m = mu[i][j][k];
        sxx[i][j][k] = sxx[i][j][k] + dt * (l * tr + 2.0 * m * exx[i][j][k]);
        syy[i][j][k] = syy[i][j][k] + dt * (l * tr + 2.0 * m * eyy[i][j][k]);
        szz[i][j][k] = szz[i][j][k] + dt * (l * tr + 2.0 * m * ezz[i][j][k]);
      }
    }
  }
}

// Shear stress: one-statement body — vectorized by both compilers.
func void stress_shear(real dt) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        sxy[i][j][k] = sxy[i][j][k] + dt * 2.0 * mu[i][j][k] * exy[i][j][k];
      }
    }
  }
}

// Hourglass-mode filter: stencil smoothing with a magnitude guard branch.
func void hourglass_filter() {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        var real hg = sxx[i][j][k] - 0.25 * (sxx[i - 1][j][k] + sxx[i + 1][j][k]
                    + sxx[i][j - 1][k] + sxx[i][j + 1][k]);
        if (fabs(hg) > 0.08) {
          sxx[i][j][k] = sxx[i][j][k] - 0.1 * hg;
        }
      }
    }
  }
}

// Viscoelastic memory update: data-dependent branch on material quality and
// a division in the relaxation term (machine-sensitive cost).
func void apply_attenuation(real dt) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        if (qfac[i][j][k] < 0.4) {
          var real relax = 1.0 / (1.0 + 50.0 * qfac[i][j][k]);
          memx[i][j][k] = memx[i][j][k] * (1.0 - relax) + relax * sxx[i][j][k];
          sxx[i][j][k] = sxx[i][j][k] - dt * memx[i][j][k];
        }
      }
    }
  }
}

// Leapfrog x-velocity: 1-statement body, both compilers vectorize.
func void velocity_x(real dt) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        vx[i][j][k] = vx[i][j][k] + dt * (sxx[i + 1][j][k] - sxx[i][j][k] + sxy[i][j + 1][k] - sxy[i][j][k]);
      }
    }
  }
}

// y-velocity with an extra cross term: 2-statement body.
func void velocity_y(real dt) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        var real div = syy[i][j + 1][k] - syy[i][j][k] + sxy[i + 1][j][k] - sxy[i][j][k];
        vy[i][j][k] = vy[i][j][k] + dt * div;
      }
    }
  }
}

// z-velocity with buoyancy division: per-point divide, XL-hostile.
func void velocity_z(real dt) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        var real rho = 2.5 + 0.01 * mu[i][j][k];
        vz[i][j][k] = vz[i][j][k] + dt * (szz[i][j][k + 1] - szz[i][j][k]) / rho;
      }
    }
  }
}

// Rate-and-state style fault friction on the plane k = KFAULT: sqrt + divide
// per point, branch on yield.
func void fault_rupture(real dt) {
  var int i; var int j;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      var real tn = sxx[i][j][KFAULT];
      var real ts = sxy[i][j][KFAULT];
      var real taumag = sqrt(tn * tn + ts * ts) + 0.000001;
      var real strength = 0.6 * fabs(tn) + 0.1;
      if (taumag > strength) {
        var real excess = (taumag - strength) / taumag;
        slip[i][j] = slip[i][j] + dt * excess;
        sxy[i][j][KFAULT] = sxy[i][j][KFAULT] * (1.0 - excess);
        tract[i][j] = strength;
      }
    }
  }
}

// Absorbing sponge on the x-faces: strided access, memory-flavored.
func void absorb_x() {
  var int j; var int k; var int w;
  for (w = 0; w < 3; w = w + 1) {
    var real damp = 0.92 + 0.02 * w;
    for (j = 0; j < NY; j = j + 1) {
      for (k = 0; k < NZ; k = k + 1) {
        vx[w][j][k] = vx[w][j][k] * damp;
        vx[NX - 1 - w][j][k] = vx[NX - 1 - w][j][k] * damp;
      }
    }
  }
}

// Absorbing sponge on the y-faces: a different stride pattern.
func void absorb_y() {
  var int i; var int k; var int w;
  for (w = 0; w < 3; w = w + 1) {
    var real damp = 0.92 + 0.02 * w;
    for (i = 0; i < NX; i = i + 1) {
      for (k = 0; k < NZ; k = k + 1) {
        vy[i][w][k] = vy[i][w][k] * damp;
        vy[i][NY - 1 - w][k] = vy[i][NY - 1 - w][k] * damp;
      }
    }
  }
}

// Free surface: zero stresses on the top face (pure stores).
func void surface_free() {
  var int i; var int j;
  for (i = 0; i < NX; i = i + 1) {
    for (j = 0; j < NY; j = j + 1) {
      szz[i][j][NZ - 1] = 0.0;
      sxy[i][j][NZ - 1] = 0.0;
    }
  }
}

// MPI halo exchange stand-in: pack one strided face into a buffer.
func void halo_pack() {
  var int i; var int j;
  for (i = 0; i < NX; i = i + 1) {
    for (j = 0; j < NY; j = j + 1) {
      halo[i][j] = vx[i][j][0];
    }
  }
}

// ...and unpack it on the far face.
func void halo_unpack() {
  var int i; var int j;
  for (i = 0; i < NX; i = i + 1) {
    for (j = 0; j < NY; j = j + 1) {
      vx[i][j][NZ - 1] = halo[i][j];
    }
  }
}

// Point source injection near the hypocenter (Ricker-ish pulse via exp).
func void source_inject(real t) {
  var int di; var int dj;
  var real amp = t * exp(-(t) * 0.5);
  for (di = 0; di < 4; di = di + 1) {
    for (dj = 0; dj < 4; dj = dj + 1) {
      sxx[NX / 2 + di][NY / 2 + dj][KFAULT] = sxx[NX / 2 + di][NY / 2 + dj][KFAULT] + amp;
    }
  }
}

// Material state update, every other step: integer-divide heavy indexing
// into a material table (int division is ~50% pricier on the A2 core).
func void material_update(int t) {
  var int i; var int j; var int k;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        var int cell = (i * NY + j) * NZ + k;
        var int bin = cell % 7;
        mu[i][j][k] = mu[i][j][k] + 0.0001 * bin;
      }
    }
  }
}

// Energy-flux diagnostic: a 3-statement streaming body — GFortran vectorizes
// it on Xeon, XL declines on BG/Q, so its relative cost differs per machine.
func real energy_flux() {
  var int i; var int j; var int k;
  var real fx = 0.0;
  for (i = 1; i < NX - 1; i = i + 1) {
    for (j = 1; j < NY - 1; j = j + 1) {
      for (k = 1; k < NZ - 1; k = k + 1) {
        var real px = sxx[i][j][k] * vx[i][j][k];
        var real py = sxy[i][j][k] * vy[i][j][k];
        fx = fx + px + py;
      }
    }
  }
  return fx;
}

// Kinetic-energy reduction: streaming read-only pass, low intensity.
func real checksum() {
  var int i; var int j; var int k;
  var real e = 0.0;
  for (i = 0; i < NX; i = i + 1) {
    for (j = 0; j < NY; j = j + 1) {
      for (k = 0; k < NZ; k = k + 1) {
        e = e + vx[i][j][k] * vx[i][j][k] + vy[i][j][k] * vy[i][j][k];
      }
    }
  }
  return e;
}

func void main() {
  init_grid();
  var int t;
  var real dt = 0.004;
  for (t = 0; t < NT; t = t + 1) {
    source_inject(t + 1.0);
    strain_normal();
    strain_shear();
    stress_normal(dt);
    stress_shear(dt);
    hourglass_filter();
    apply_attenuation(dt);
    velocity_x(dt);
    velocity_y(dt);
    velocity_z(dt);
    fault_rupture(dt);
    absorb_x();
    absorb_y();
    surface_free();
    halo_pack();
    halo_unpack();
    if (t % 2 == 0) {
      material_update(t);
    }
    energy = energy + checksum() + energy_flux();
  }
}
)";

}  // namespace

const Workload& sord() {
  static const Workload w = [] {
    Workload wl;
    wl.name = "SORD";
    wl.description =
        "Support Operator Rupture Dynamics — 3-D viscoelastic earthquake "
        "simulation on a structured grid (full application, reduced port)";
    wl.source = kSource;
    wl.params = {{"NX", 40}, {"NY", 40}, {"NZ", 40}, {"NT", 4}, {"KFAULT", 20}};
    wl.seed = 0x50bd;
    return wl;
  }();
  return w;
}

}  // namespace skope::workloads
