#include "workloads/workloads.h"

namespace skope::workloads {

namespace {

// CHARGEI — the ion-density deposition function of the Gyrokinetic Toroidal
// Code (3-D particle-in-cell). The paper describes eight loop structures
// where some loops produce arrays consumed by others; measured behavior has
// two dominant hot spots (~44 % and ~38 %): the four-point charge scatter
// and the field gather, both irregular-access particle loops. The port keeps
// the eight-loop producer/consumer chain over a particle population and a
// flux-surface grid.
constexpr const char* kSource = R"(
param int MI = 60000;     // ions
param int MGRID = 16384;  // grid points on the poloidal plane
param int NSTEP = 2;

global real zion[MI];      // gyrocenter angle
global real zrad[MI];      // radial coordinate
global real weight[MI];    // particle weight
global real rhoi[MI];      // gyro-radius
global int  igrid[MI];     // cached grid index per particle
global real dense[MGRID];  // deposited ion density
global real phi[MGRID];    // field
global real smooth[MGRID];
global real efield[MI];    // gathered field per particle
global real dentot;

// loop 1: particle load
func void load_particles() {
  var int m;
  for (m = 0; m < MI; m = m + 1) {
    zion[m] = rand() * 6.2831853;
    zrad[m] = rand();
    weight[m] = rand() - 0.5;
    rhoi[m] = 0.0;
  }
}

// loop 2: gyro-radius and cached grid index (producer for loops 3 and 5)
func void gyro_radius() {
  var int m;
  for (m = 0; m < MI; m = m + 1) {
    var real z = zion[m];
    // 4th-order polynomial stand-in for the trig factors of the real code
    var real c = 1.0 - z * z * (0.5 - z * z * 0.0416666);
    rhoi[m] = 0.02 + 0.01 * c * zrad[m];
    var int ig = (zrad[m] * 0.999 + rhoi[m] * 0.001) * (MGRID - 4);
    igrid[m] = ig;
  }
}

// loop 3: zero the density array (consumer-side reset)
func void zero_density() {
  var int g;
  for (g = 0; g < MGRID; g = g + 1) { dense[g] = 0.0; }
}

// loop 4: THE deposition hot spot — 4-point scatter per ion, irregular
// stores through the cached index.
func void deposit_charge() {
  var int m;
  for (m = 0; m < MI; m = m + 1) {
    var int ig = igrid[m];
    var real w = weight[m];
    var real frac = zrad[m] * (MGRID - 4) - ig;
    var real w0 = w * (1.0 - frac) * 0.5;
    var real w1 = w * frac * 0.5;
    dense[ig] = dense[ig] + w0;
    dense[ig + 1] = dense[ig + 1] + w1;
    dense[ig + 2] = dense[ig + 2] + w0;
    dense[ig + 3] = dense[ig + 3] + w1;
  }
}

// loop 5: field solve stand-in — tridiagonal-ish smoothing sweep over grid
func void solve_field() {
  var int g;
  for (g = 1; g < MGRID - 1; g = g + 1) {
    phi[g] = 0.25 * dense[g - 1] + 0.5 * dense[g] + 0.25 * dense[g + 1];
  }
}

// loop 6: grid smoothing (producer for the gather)
func void smooth_field() {
  var int g;
  for (g = 2; g < MGRID - 2; g = g + 1) {
    smooth[g] = 0.0625 * (phi[g - 2] + phi[g + 2]) + 0.25 * (phi[g - 1] + phi[g + 1])
              + 0.375 * phi[g];
  }
}

// loop 7: the second dominant hot spot — per-ion field gather with
// irregular loads, plus the weight push.
func void gather_field() {
  var int m;
  for (m = 0; m < MI; m = m + 1) {
    var int ig = igrid[m];
    var real frac = zrad[m] * (MGRID - 4) - ig;
    var real e = smooth[ig] * (1.0 - frac) + smooth[ig + 1] * frac;
    efield[m] = e;
    weight[m] = weight[m] + 0.01 * e * (1.0 - weight[m] * weight[m]);
  }
}

// loop 8: diagnostic reduction
func real total_density() {
  var int g;
  var real s = 0.0;
  for (g = 0; g < MGRID; g = g + 1) { s = s + dense[g]; }
  return s;
}

func void main() {
  load_particles();
  var int step;
  for (step = 0; step < NSTEP; step = step + 1) {
    gyro_radius();
    zero_density();
    deposit_charge();
    solve_field();
    smooth_field();
    gather_field();
    dentot = dentot + total_density();
  }
}
)";

}  // namespace

const Workload& chargei() {
  static const Workload w = [] {
    Workload wl;
    wl.name = "CHARGEI";
    wl.description =
        "GTC ion-density deposition — particle-in-cell charge scatter/gather "
        "with eight producer/consumer loop structures";
    wl.source = kSource;
    wl.params = {{"MI", 60000}, {"MGRID", 16384}, {"NSTEP", 2}};
    wl.seed = 0xc4a6;
    return wl;
  }();
  return w;
}

}  // namespace skope::workloads
