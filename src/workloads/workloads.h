// The benchmark suite of the paper's evaluation (§VI), ported to MiniC.
//
// Each workload reproduces the control-flow structure, kernel mix and
// relative block sizes that the paper describes; grid/particle counts are
// scaled so a full ground-truth simulation stays interactive (the coverage
// fractions the experiments compare are ratios and survive scaling — see
// DESIGN.md). The `params` binding plays the role of the paper's developer-
// supplied hint file.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace skope::workloads {

struct Workload {
  std::string name;
  std::string description;
  std::string source;                      ///< MiniC program text
  std::map<std::string, double> params;    ///< full-run input (hint file)
  uint64_t seed = 0x5eed;                  ///< rand() seed for reproducibility
};

/// SORD — Support Operator Rupture Dynamics: 3-D viscoelastic wave
/// propagation over a structured grid (earthquake simulation). The full
/// application of the paper (reduced from 5139 lines / 370 functions to a
/// structurally faithful mini-app: time loop over strain / stress /
/// attenuation / velocity kernels, fault plane, absorbing boundaries).
const Workload& sord();

/// CHARGEI — the ion-density deposition function of the Gyrokinetic Toroidal
/// Code: eight loop structures over particles and grid, two dominant
/// gather/scatter hot spots.
const Workload& chargei();

/// SRAD — speckle-reducing anisotropic diffusion (medical imaging): image
/// statistics + diffusion sweeps; `exp` and `rand` library calls are among
/// the top measured hot spots.
const Workload& srad();

/// CFD — unstructured-grid finite-volume Euler solver: irregular
/// neighbor-gather flux kernel plus a division-heavy velocity recovery step
/// (the paper's example of roofline mis-projection on BG/Q).
const Workload& cfd();

/// STASSUIJ — Green's Function Monte Carlo two-body correlation kernel:
/// sparse × dense complex multiply followed by a butterfly exchange driven by
/// an index array.
const Workload& stassuij();

/// All five, in the paper's order.
std::vector<const Workload*> allWorkloads();

}  // namespace skope::workloads
