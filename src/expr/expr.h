// Symbolic expressions over named workload parameters.
//
// Code skeletons express loop bounds, branch probabilities, and data sizes as
// functions of the input (e.g. `NX*NY - 1`, `ITERS/2`). This module provides
// an immutable expression tree with construction helpers, algebraic
// simplification, evaluation under a parameter environment, and a small
// recursive-descent parser for the textual form used by the skeleton language.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace skope {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binding of parameter names to numeric values, used to evaluate expressions.
class ParamEnv {
 public:
  ParamEnv() = default;
  explicit ParamEnv(std::map<std::string, double> values) : values_(std::move(values)) {}

  void set(const std::string& name, double value) { values_[name] = value; }
  [[nodiscard]] std::optional<double> lookup(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) != 0; }
  [[nodiscard]] const std::map<std::string, double>& values() const { return values_; }

 private:
  std::map<std::string, double> values_;
};

/// Operator of an interior expression node.
enum class ExprOp {
  Const,   ///< numeric literal; value in Expr::value
  Param,   ///< named parameter; name in Expr::name
  Add, Sub, Mul, Div, Mod,
  Min, Max,
  Neg,     ///< unary minus
  Ceil,    ///< ceil(a / b) — common for blocked loop bounds
  Log2,    ///< log2(a) — butterfly-style loop depths
};

/// Immutable expression node. Use the free helpers (constant(), param(),
/// add()...) to build trees; they fold constants eagerly.
class Expr {
 public:
  ExprOp op = ExprOp::Const;
  double value = 0.0;              ///< for Const
  std::string name;                ///< for Param
  std::vector<ExprPtr> operands;   ///< for everything else

  /// Evaluates under `env`. Throws Error if a referenced parameter is unbound
  /// or a division by zero occurs.
  [[nodiscard]] double eval(const ParamEnv& env) const;

  /// Collects the set of parameter names referenced by the tree.
  void collectParams(std::vector<std::string>& out) const;

  /// True if the expression contains no Param nodes.
  [[nodiscard]] bool isConstant() const;

  /// Renders to the textual syntax accepted by parseExpr().
  [[nodiscard]] std::string str() const;

 private:
  [[nodiscard]] std::string strPrec(int parentPrec) const;
};

// Construction helpers. Binary helpers constant-fold when both sides are
// Const, and apply cheap identities (x+0, x*1, x*0).
ExprPtr constant(double v);
ExprPtr param(std::string name);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr divide(ExprPtr a, ExprPtr b);
ExprPtr mod(ExprPtr a, ExprPtr b);
ExprPtr exprMin(ExprPtr a, ExprPtr b);
ExprPtr exprMax(ExprPtr a, ExprPtr b);
ExprPtr neg(ExprPtr a);
ExprPtr ceilDiv(ExprPtr a, ExprPtr b);
ExprPtr log2e(ExprPtr a);

/// Parses the textual expression syntax: numbers, identifiers, + - * / %,
/// parentheses, and the functions min(a,b), max(a,b), ceildiv(a,b), log2(a).
/// Throws Error on malformed input.
ExprPtr parseExpr(std::string_view text);

/// Non-throwing evaluation: nullopt when a referenced parameter is unbound or
/// the arithmetic is undefined (division by zero, log2 of a non-positive
/// value). Used by consumers that probe partially bound environments — e.g.
/// the layer-condition cache model evaluating stride expressions under a BET
/// context snapshot that may lack a formal.
std::optional<double> tryEval(const ExprPtr& e, const ParamEnv& env);

/// True when every parameter referenced by `e` is bound in `env` (cheaper
/// than tryEval when the value itself is not needed).
bool fullyBound(const ExprPtr& e, const ParamEnv& env);

}  // namespace skope
