#include "expr/expr.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "support/text.h"

namespace skope {

std::optional<double> ParamEnv::lookup(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double Expr::eval(const ParamEnv& env) const {
  switch (op) {
    case ExprOp::Const:
      return value;
    case ExprOp::Param: {
      auto v = env.lookup(name);
      if (!v) throw Error("unbound parameter '" + name + "' in expression");
      return *v;
    }
    case ExprOp::Add: return operands[0]->eval(env) + operands[1]->eval(env);
    case ExprOp::Sub: return operands[0]->eval(env) - operands[1]->eval(env);
    case ExprOp::Mul: return operands[0]->eval(env) * operands[1]->eval(env);
    case ExprOp::Div: {
      double d = operands[1]->eval(env);
      if (d == 0.0) throw Error("division by zero in expression " + str());
      return operands[0]->eval(env) / d;
    }
    case ExprOp::Mod: {
      double d = operands[1]->eval(env);
      if (d == 0.0) throw Error("modulo by zero in expression " + str());
      return std::fmod(operands[0]->eval(env), d);
    }
    case ExprOp::Min: return std::min(operands[0]->eval(env), operands[1]->eval(env));
    case ExprOp::Max: return std::max(operands[0]->eval(env), operands[1]->eval(env));
    case ExprOp::Neg: return -operands[0]->eval(env);
    case ExprOp::Ceil: {
      double d = operands[1]->eval(env);
      if (d == 0.0) throw Error("ceildiv by zero in expression " + str());
      return std::ceil(operands[0]->eval(env) / d);
    }
    case ExprOp::Log2: {
      double a = operands[0]->eval(env);
      if (a <= 0.0) throw Error("log2 of non-positive value in expression " + str());
      return std::log2(a);
    }
  }
  throw Error("corrupt expression node");
}

void Expr::collectParams(std::vector<std::string>& out) const {
  if (op == ExprOp::Param) {
    if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
    return;
  }
  for (const auto& o : operands) o->collectParams(out);
}

bool Expr::isConstant() const {
  if (op == ExprOp::Param) return false;
  for (const auto& o : operands) {
    if (!o->isConstant()) return false;
  }
  return true;
}

std::optional<double> tryEval(const ExprPtr& e, const ParamEnv& env) {
  if (!e) return std::nullopt;
  if (!fullyBound(e, env)) return std::nullopt;
  try {
    return e->eval(env);
  } catch (const Error&) {
    return std::nullopt;  // division by zero / log2 domain
  }
}

bool fullyBound(const ExprPtr& e, const ParamEnv& env) {
  if (!e) return false;
  if (e->op == ExprOp::Param) return env.has(e->name);
  for (const auto& o : e->operands) {
    if (!fullyBound(o, env)) return false;
  }
  return true;
}

namespace {

int precedence(ExprOp op) {
  switch (op) {
    case ExprOp::Add:
    case ExprOp::Sub:
      return 1;
    case ExprOp::Mul:
    case ExprOp::Div:
    case ExprOp::Mod:
      return 2;
    case ExprOp::Neg:
      return 3;
    default:
      return 4;  // atoms and function-call syntax never need parentheses
  }
}

const char* infixToken(ExprOp op) {
  switch (op) {
    case ExprOp::Add: return " + ";
    case ExprOp::Sub: return " - ";
    case ExprOp::Mul: return "*";
    case ExprOp::Div: return "/";
    case ExprOp::Mod: return "%";
    default: return "?";
  }
}

}  // namespace

std::string Expr::strPrec(int parentPrec) const {
  int myPrec = precedence(op);
  std::string out;
  switch (op) {
    case ExprOp::Const: {
      if (value == std::floor(value) && std::abs(value) < 1e15) {
        out = format("%lld", static_cast<long long>(value));
      } else {
        out = humanDouble(value, 6);
      }
      break;
    }
    case ExprOp::Param:
      out = name;
      break;
    case ExprOp::Neg:
      out = "-" + operands[0]->strPrec(myPrec);
      break;
    case ExprOp::Min:
      out = "min(" + operands[0]->strPrec(0) + ", " + operands[1]->strPrec(0) + ")";
      break;
    case ExprOp::Max:
      out = "max(" + operands[0]->strPrec(0) + ", " + operands[1]->strPrec(0) + ")";
      break;
    case ExprOp::Ceil:
      out = "ceildiv(" + operands[0]->strPrec(0) + ", " + operands[1]->strPrec(0) + ")";
      break;
    case ExprOp::Log2:
      out = "log2(" + operands[0]->strPrec(0) + ")";
      break;
    default:
      out = operands[0]->strPrec(myPrec) + infixToken(op) +
            operands[1]->strPrec(myPrec + 1);
      break;
  }
  if (myPrec < parentPrec) return "(" + out + ")";
  return out;
}

std::string Expr::str() const { return strPrec(0); }

namespace {

ExprPtr makeNode(ExprOp op, std::vector<ExprPtr> operands) {
  auto e = std::make_shared<Expr>();
  e->op = op;
  e->operands = std::move(operands);
  return e;
}

bool isConst(const ExprPtr& e, double v) {
  return e->op == ExprOp::Const && e->value == v;
}

}  // namespace

ExprPtr constant(double v) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::Const;
  e->value = v;
  return e;
}

ExprPtr param(std::string name) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::Param;
  e->name = std::move(name);
  return e;
}

ExprPtr add(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const) return constant(a->value + b->value);
  if (isConst(a, 0)) return b;
  if (isConst(b, 0)) return a;
  return makeNode(ExprOp::Add, {std::move(a), std::move(b)});
}

ExprPtr sub(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const) return constant(a->value - b->value);
  if (isConst(b, 0)) return a;
  return makeNode(ExprOp::Sub, {std::move(a), std::move(b)});
}

ExprPtr mul(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const) return constant(a->value * b->value);
  if (isConst(a, 0) || isConst(b, 0)) return constant(0);
  if (isConst(a, 1)) return b;
  if (isConst(b, 1)) return a;
  return makeNode(ExprOp::Mul, {std::move(a), std::move(b)});
}

ExprPtr divide(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const && b->value != 0.0) {
    return constant(a->value / b->value);
  }
  if (isConst(b, 1)) return a;
  return makeNode(ExprOp::Div, {std::move(a), std::move(b)});
}

ExprPtr mod(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const && b->value != 0.0) {
    return constant(std::fmod(a->value, b->value));
  }
  return makeNode(ExprOp::Mod, {std::move(a), std::move(b)});
}

ExprPtr exprMin(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const) {
    return constant(std::min(a->value, b->value));
  }
  return makeNode(ExprOp::Min, {std::move(a), std::move(b)});
}

ExprPtr exprMax(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const) {
    return constant(std::max(a->value, b->value));
  }
  return makeNode(ExprOp::Max, {std::move(a), std::move(b)});
}

ExprPtr neg(ExprPtr a) {
  if (a->op == ExprOp::Const) return constant(-a->value);
  return makeNode(ExprOp::Neg, {std::move(a)});
}

ExprPtr ceilDiv(ExprPtr a, ExprPtr b) {
  if (a->op == ExprOp::Const && b->op == ExprOp::Const && b->value != 0.0) {
    return constant(std::ceil(a->value / b->value));
  }
  return makeNode(ExprOp::Ceil, {std::move(a), std::move(b)});
}

ExprPtr log2e(ExprPtr a) {
  if (a->op == ExprOp::Const && a->value > 0.0) return constant(std::log2(a->value));
  return makeNode(ExprOp::Log2, {std::move(a)});
}

// ---------------------------------------------------------------------------
// Textual parser (recursive descent).
// ---------------------------------------------------------------------------

namespace {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  ExprPtr parse() {
    auto e = parseAdditive();
    skipWs();
    if (pos_ != text_.size()) {
      throw Error("trailing characters in expression: '" +
                  std::string(text_.substr(pos_)) + "'");
    }
    return e;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  ExprPtr parseAdditive() {
    auto lhs = parseMultiplicative();
    while (true) {
      if (consume('+')) {
        lhs = add(lhs, parseMultiplicative());
      } else if (consume('-')) {
        lhs = sub(lhs, parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    auto lhs = parseUnary();
    while (true) {
      if (consume('*')) {
        lhs = mul(lhs, parseUnary());
      } else if (consume('/')) {
        lhs = divide(lhs, parseUnary());
      } else if (consume('%')) {
        lhs = mod(lhs, parseUnary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseUnary() {
    if (consume('-')) return neg(parseUnary());
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    skipWs();
    if (pos_ >= text_.size()) throw Error("unexpected end of expression");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto e = parseAdditive();
      if (!consume(')')) throw Error("missing ')' in expression");
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return parseNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return parseIdent();
    throw Error(std::string("unexpected character '") + c + "' in expression");
  }

  ExprPtr parseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return constant(std::stod(std::string(text_.substr(start, pos_ - start))));
  }

  ExprPtr parseIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    if (peek() != '(') return param(std::move(name));

    consume('(');
    std::vector<ExprPtr> args;
    if (peek() != ')') {
      args.push_back(parseAdditive());
      while (consume(',')) args.push_back(parseAdditive());
    }
    if (!consume(')')) throw Error("missing ')' after arguments of " + name);

    auto want = [&](size_t n) {
      if (args.size() != n) {
        throw Error(name + " expects " + std::to_string(n) + " argument(s), got " +
                    std::to_string(args.size()));
      }
    };
    if (name == "min") { want(2); return exprMin(args[0], args[1]); }
    if (name == "max") { want(2); return exprMax(args[0], args[1]); }
    if (name == "ceildiv") { want(2); return ceilDiv(args[0], args[1]); }
    if (name == "log2") { want(1); return log2e(args[0]); }
    throw Error("unknown function '" + name + "' in expression");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

ExprPtr parseExpr(std::string_view text) { return ExprParser(text).parse(); }

}  // namespace skope
