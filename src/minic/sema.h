// Semantic analysis for MiniC: name resolution, local slot allocation, type
// checking and inference, and structural validation (break/continue placement,
// array dimensionality, entry point presence).
//
// Sema mutates the AST in place, filling the `localSlot` / `globalIndex` /
// `arrayIndex` / `builtinIndex` / `callee` / `type` fields that the bytecode
// compiler and the skeleton translator rely on. Call analyze() exactly once
// per Program before handing it to any downstream pass.
#pragma once

#include "minic/ast.h"
#include "support/diagnostics.h"

namespace skope::minic {

/// Runs all semantic checks over `prog`. Diagnostics accumulate in `diags`;
/// the AST annotations are only trustworthy if `!diags.hasErrors()`.
void analyze(Program& prog, DiagSink& diags);

/// Convenience wrapper: analyze and throw Error on the first problem.
void analyzeOrThrow(Program& prog);

}  // namespace skope::minic
