// Pretty-printer: renders a (parsed, optionally analyzed) Program back to
// MiniC surface syntax. Round-tripping through the printer is exercised by the
// frontend tests.
#pragma once

#include <string>

#include "minic/ast.h"

namespace skope::minic {

std::string printExpr(const ExprNode& e);
std::string printProgram(const Program& prog);

}  // namespace skope::minic
