#include "minic/sema.h"

#include <map>

#include "minic/builtins.h"

namespace skope::minic {

namespace {

class Sema {
 public:
  Sema(Program& prog, DiagSink& diags) : prog_(prog), diags_(diags) {}

  void run() {
    checkTopLevelNames();
    checkArrayDims();
    for (auto& f : prog_.funcs) checkFunc(*f);
    checkEntryPoint();
  }

  void checkEntryPoint() {
    const FuncDecl* mainFn = prog_.findFunc("main");
    if (!mainFn) {
      error(SourceLoc{prog_.sourceName, 1, 1}, "program has no 'main' function");
      return;
    }
    if (!mainFn->params.empty()) {
      error(mainFn->loc, "'main' must take no parameters");
    }
    if (mainFn->retType != Type::Void) {
      error(mainFn->loc, "'main' must return void");
    }
  }

 private:
  void error(const SourceLoc& loc, std::string msg) { diags_.error(loc, std::move(msg)); }

  void checkTopLevelNames() {
    std::map<std::string, SourceLoc> seen;
    auto define = [&](const std::string& name, const SourceLoc& loc, const char* what) {
      auto [it, inserted] = seen.emplace(name, loc);
      if (!inserted) {
        error(loc, std::string(what) + " '" + name + "' redefines a symbol declared at " +
                       it->second.str());
      }
    };
    for (const auto& p : prog_.params) define(p.name, p.loc, "param");
    for (const auto& g : prog_.globals) define(g.name, g.loc, "global");
    for (const auto& f : prog_.funcs) define(f->name, f->loc, "function");
  }

  /// Array dimensions may only reference params and literals, so that storage
  /// can be sized before any user code runs.
  void checkArrayDims() {
    for (auto& g : prog_.globals) {
      for (auto& dim : g.dims) {
        checkDimExpr(*dim, g.name);
      }
    }
  }

  void checkDimExpr(ExprNode& e, const std::string& arrayName) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = Type::Int;
        return;
      case ExprKind::VarRef: {
        int pi = prog_.paramIndexOf(e.name);
        if (pi < 0) {
          error(e.loc, "dimension of array '" + arrayName +
                           "' may only reference params; '" + e.name + "' is not a param");
          return;
        }
        if (prog_.params[pi].type != Type::Int) {
          error(e.loc, "array dimension param '" + e.name + "' must be int");
        }
        e.globalIndex = pi;
        e.type = Type::Int;
        return;
      }
      case ExprKind::Binary:
        if (e.bin == BinOp::Add || e.bin == BinOp::Sub || e.bin == BinOp::Mul ||
            e.bin == BinOp::Div || e.bin == BinOp::Mod) {
          checkDimExpr(*e.args[0], arrayName);
          checkDimExpr(*e.args[1], arrayName);
          e.type = Type::Int;
          return;
        }
        [[fallthrough]];
      default:
        error(e.loc, "unsupported expression in dimension of array '" + arrayName +
                         "' (params, literals, and + - * / % only)");
    }
  }

  // --- function-body analysis ---

  struct Scope {
    std::map<std::string, int> locals;  // name -> slot
  };

  void checkFunc(FuncDecl& f) {
    curFunc_ = &f;
    nextSlot_ = 0;
    loopDepth_ = 0;
    scopes_.clear();
    scopes_.emplace_back();
    slotTypes_.clear();
    for (const auto& p : f.params) {
      if (p.name.empty()) continue;
      if (!declareLocal(p.name)) {
        error(f.loc, "duplicate parameter '" + p.name + "' in function '" + f.name + "'");
      } else {
        slotTypes_[lookupLocal(p.name)] = p.type;
      }
    }
    checkStmts(f.body);
    f.numLocalSlots = nextSlot_;
    scopes_.clear();
    curFunc_ = nullptr;
  }

  bool declareLocal(const std::string& name) {
    auto& scope = scopes_.back();
    if (scope.locals.count(name)) return false;
    scope.locals[name] = nextSlot_++;
    return true;
  }

  int lookupLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->locals.find(name);
      if (f != it->locals.end()) return f->second;
    }
    return -1;
  }

  void checkStmts(std::vector<StmtUP>& stmts) {
    for (auto& s : stmts) checkStmt(*s);
  }

  void checkStmt(StmtNode& s) {
    switch (s.kind) {
      case StmtKind::Block:
        scopes_.emplace_back();
        checkStmts(s.body);
        scopes_.pop_back();
        return;

      case StmtKind::VarDecl: {
        if (s.rhs) {
          checkExpr(*s.rhs);
          requireNumeric(*s.rhs, "initializer");
        }
        if (prog_.findParam(s.lhsName) || prog_.findGlobal(s.lhsName)) {
          error(s.loc, "local '" + s.lhsName + "' shadows a top-level symbol");
        }
        if (!declareLocal(s.lhsName)) {
          error(s.loc, "redeclaration of '" + s.lhsName + "' in the same scope");
        }
        s.localSlot = lookupLocal(s.lhsName);
        slotTypes_[s.localSlot] = s.declType;
        return;
      }

      case StmtKind::Assign: {
        for (auto& ix : s.lhsIndices) {
          checkExpr(*ix);
          requireInt(*ix, "array index");
        }
        checkExpr(*s.rhs);
        requireNumeric(*s.rhs, "assigned value");
        resolveAssignTarget(s);
        return;
      }

      case StmtKind::ExprStmt:
        checkExpr(*s.rhs);
        return;

      case StmtKind::If:
        checkExpr(*s.cond);
        requireNumeric(*s.cond, "if condition");
        scopes_.emplace_back();
        checkStmts(s.body);
        scopes_.pop_back();
        scopes_.emplace_back();
        checkStmts(s.elseBody);
        scopes_.pop_back();
        return;

      case StmtKind::For: {
        scopes_.emplace_back();
        checkStmt(*s.init);
        checkExpr(*s.cond);
        requireNumeric(*s.cond, "for condition");
        checkStmt(*s.step);
        ++loopDepth_;
        scopes_.emplace_back();
        checkStmts(s.body);
        scopes_.pop_back();
        --loopDepth_;
        scopes_.pop_back();
        return;
      }

      case StmtKind::While:
        checkExpr(*s.cond);
        requireNumeric(*s.cond, "while condition");
        ++loopDepth_;
        scopes_.emplace_back();
        checkStmts(s.body);
        scopes_.pop_back();
        --loopDepth_;
        return;

      case StmtKind::Return: {
        if (s.rhs) {
          checkExpr(*s.rhs);
          requireNumeric(*s.rhs, "return value");
          if (curFunc_->retType == Type::Void) {
            error(s.loc, "void function '" + curFunc_->name + "' returns a value");
          }
        } else if (curFunc_->retType != Type::Void) {
          error(s.loc, "non-void function '" + curFunc_->name + "' returns nothing");
        }
        return;
      }

      case StmtKind::Break:
      case StmtKind::Continue:
        if (loopDepth_ == 0) {
          error(s.loc, std::string(s.kind == StmtKind::Break ? "break" : "continue") +
                           " outside of a loop");
        }
        return;
    }
  }

  void resolveAssignTarget(StmtNode& s) {
    if (!s.lhsIndices.empty()) {
      int ai = prog_.globalIndexOf(s.lhsName);
      if (ai < 0 || !prog_.globals[ai].isArray()) {
        error(s.loc, "'" + s.lhsName + "' is not a global array");
        return;
      }
      if (prog_.globals[ai].dims.size() != s.lhsIndices.size()) {
        error(s.loc, "array '" + s.lhsName + "' has " +
                         std::to_string(prog_.globals[ai].dims.size()) +
                         " dimension(s), indexed with " + std::to_string(s.lhsIndices.size()));
        return;
      }
      s.arrayIndex = ai;
      return;
    }
    int slot = lookupLocal(s.lhsName);
    if (slot >= 0) {
      s.localSlot = slot;
      return;
    }
    int gi = prog_.globalIndexOf(s.lhsName);
    if (gi >= 0) {
      if (prog_.globals[gi].isArray()) {
        error(s.loc, "cannot assign whole array '" + s.lhsName + "'");
        return;
      }
      s.globalIndex = gi;
      return;
    }
    if (prog_.findParam(s.lhsName)) {
      error(s.loc, "param '" + s.lhsName + "' is read-only");
      return;
    }
    error(s.loc, "assignment to undeclared variable '" + s.lhsName + "'");
  }

  void requireNumeric(const ExprNode& e, const char* what) {
    if (e.type == Type::Void) {
      error(e.loc, std::string(what) + " has no value (void expression)");
    }
  }

  void requireInt(const ExprNode& e, const char* what) {
    if (e.type != Type::Int) {
      error(e.loc, std::string(what) + " must be int, got " + std::string(typeName(e.type)));
    }
  }

  void checkExpr(ExprNode& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = Type::Int;
        return;
      case ExprKind::RealLit:
        e.type = Type::Real;
        return;

      case ExprKind::VarRef: {
        int slot = lookupLocal(e.name);
        if (slot >= 0) {
          e.localSlot = slot;
          e.type = localTypeOf(e.name);
          return;
        }
        const ParamDecl* p = prog_.findParam(e.name);
        if (p) {
          e.paramIndex = prog_.paramIndexOf(e.name);
          e.type = p->type;
          return;
        }
        int gi = prog_.globalIndexOf(e.name);
        if (gi >= 0) {
          const GlobalDecl& g = prog_.globals[gi];
          if (g.isArray()) {
            error(e.loc, "array '" + e.name + "' used without indices");
            e.type = g.elemType;
            return;
          }
          e.globalIndex = gi;
          e.type = g.elemType;
          return;
        }
        error(e.loc, "use of undeclared variable '" + e.name + "'");
        e.type = Type::Real;
        return;
      }

      case ExprKind::ArrayRef: {
        for (auto& ix : e.args) {
          checkExpr(*ix);
          requireInt(*ix, "array index");
        }
        int ai = prog_.globalIndexOf(e.name);
        if (ai < 0 || !prog_.globals[ai].isArray()) {
          error(e.loc, "'" + e.name + "' is not a global array");
          e.type = Type::Real;
          return;
        }
        if (prog_.globals[ai].dims.size() != e.args.size()) {
          error(e.loc, "array '" + e.name + "' has " +
                           std::to_string(prog_.globals[ai].dims.size()) +
                           " dimension(s), indexed with " + std::to_string(e.args.size()));
        }
        e.arrayIndex = ai;
        e.type = prog_.globals[ai].elemType;
        return;
      }

      case ExprKind::Unary: {
        checkExpr(*e.args[0]);
        requireNumeric(*e.args[0], "operand");
        e.type = (e.un == UnOp::Not) ? Type::Int : e.args[0]->type;
        return;
      }

      case ExprKind::Binary: {
        checkExpr(*e.args[0]);
        checkExpr(*e.args[1]);
        requireNumeric(*e.args[0], "left operand");
        requireNumeric(*e.args[1], "right operand");
        Type a = e.args[0]->type;
        Type b = e.args[1]->type;
        switch (e.bin) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
          case BinOp::Div:
            e.type = (a == Type::Real || b == Type::Real) ? Type::Real : Type::Int;
            return;
          case BinOp::Mod:
            if (a != Type::Int || b != Type::Int) {
              error(e.loc, "operands of % must be int (use floor() for reals)");
            }
            e.type = Type::Int;
            return;
          default:  // comparisons and logical ops yield int 0/1
            e.type = Type::Int;
            return;
        }
      }

      case ExprKind::Call: {
        for (auto& a : e.args) {
          checkExpr(*a);
          requireNumeric(*a, "argument");
        }
        int bi = findBuiltin(e.name);
        if (bi >= 0) {
          const BuiltinInfo& info = builtinTable()[bi];
          if (static_cast<int>(e.args.size()) != info.arity) {
            error(e.loc, "builtin '" + e.name + "' expects " + std::to_string(info.arity) +
                             " argument(s), got " + std::to_string(e.args.size()));
          }
          e.builtinIndex = bi;
          e.type = info.retType;
          return;
        }
        const FuncDecl* f = prog_.findFunc(e.name);
        if (!f) {
          error(e.loc, "call to undeclared function '" + e.name + "'");
          e.type = Type::Real;
          return;
        }
        if (f->params.size() != e.args.size()) {
          error(e.loc, "function '" + e.name + "' expects " +
                           std::to_string(f->params.size()) + " argument(s), got " +
                           std::to_string(e.args.size()));
        }
        e.callee = f;
        e.type = f->retType;
        return;
      }
    }
  }

  Type localTypeOf(const std::string& name) const {
    // Local types are tracked in a side map keyed by slot, filled at
    // declaration time.
    auto it = slotTypes_.find(lookupLocal(name));
    return it != slotTypes_.end() ? it->second : Type::Real;
  }

 public:
  // slot -> type, exposed so declareLocal-adjacent code can record types.
  std::map<int, Type> slotTypes_;

 private:
  Program& prog_;
  DiagSink& diags_;
  FuncDecl* curFunc_ = nullptr;
  std::vector<Scope> scopes_;
  int nextSlot_ = 0;
  int loopDepth_ = 0;
};

}  // namespace

void analyze(Program& prog, DiagSink& diags) {
  Sema sema(prog, diags);
  sema.run();
}

void analyzeOrThrow(Program& prog) {
  DiagSink diags;
  analyze(prog, diags);
  diags.throwIfErrors();
}

}  // namespace skope::minic
