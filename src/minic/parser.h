// Recursive-descent parser for MiniC.
//
// Grammar (EBNF):
//   program     := topdecl*
//   topdecl     := paramDecl | globalDecl | funcDecl
//   paramDecl   := 'param' type ident ('=' expr)? ';'
//   globalDecl  := 'global' type ident ('[' expr ']')* ';'
//   funcDecl    := 'func' rettype ident '(' funcParams? ')' block
//   funcParams  := type ident (',' type ident)*
//   block       := '{' stmt* '}'
//   stmt        := varDecl | ifStmt | forStmt | whileStmt | returnStmt
//                | 'break' ';' | 'continue' ';' | block | simpleStmt ';'
//   varDecl     := 'var' type ident ('=' expr)? ';'
//   ifStmt      := 'if' '(' expr ')' block ('else' (ifStmt | block))?
//   forStmt     := 'for' '(' assign ';' expr ';' assign ')' block
//   whileStmt   := 'while' '(' expr ')' block
//   returnStmt  := 'return' expr? ';'
//   simpleStmt  := assign | callExpr
//   assign      := lvalue '=' expr
//   lvalue      := ident ('[' expr ']')*
//   expr        := C-style precedence: || && == != < <= > >= + - * / % unary
//   primary     := literal | lvalue | ident '(' args ')' | '(' expr ')'
#pragma once

#include <memory>
#include <string_view>

#include "minic/ast.h"

namespace skope::minic {

/// Parses `source` into a Program. Throws Error with location info on the
/// first syntax error. The returned Program owns a copy of the source text so
/// token string_views remain valid for its lifetime.
std::unique_ptr<Program> parseProgram(std::string_view source,
                                      std::string_view fileName = "<input>");

}  // namespace skope::minic
