// Registry of MiniC builtin (library) functions.
//
// Builtins stand in for the math library of the paper's workloads (SRAD's
// `exp` and `rand` are two of its measured hot spots). Each entry carries a
// *static* fallback operation mix used by the skeleton translator when no
// profiled mix is available; the semi-analytic path of §IV-C replaces this
// with a mix measured by sampling the VM (see src/libmodel).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "minic/ast.h"

namespace skope::minic {

/// Static per-call instruction mix of a builtin, in the same units the
/// translator uses for user code (see skeleton::BlockMetrics).
struct BuiltinMix {
  double flops = 0;    ///< floating point operations
  double iops = 0;     ///< fixed point / integer operations
  double loads = 0;    ///< data elements read
  double stores = 0;   ///< data elements written
};

struct BuiltinInfo {
  std::string_view name;
  int arity = 1;
  Type retType = Type::Real;
  /// True for functions that the framework treats as opaque library calls and
  /// models semi-analytically (transcendentals, rand); false for cheap
  /// intrinsics folded into the caller's op mix (fabs, floor, min, max).
  bool isLibraryCall = false;
  BuiltinMix mix;
};

/// The full builtin table. Indices into this table are what
/// ExprNode::builtinIndex refers to.
const std::vector<BuiltinInfo>& builtinTable();

/// Returns the index of `name` in builtinTable(), or -1.
int findBuiltin(std::string_view name);

}  // namespace skope::minic
