#include "minic/lexer.h"

#include <cctype>
#include <map>

namespace skope::minic {

std::string_view tokName(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::KwFunc: return "'func'";
    case Tok::KwVar: return "'var'";
    case Tok::KwParam: return "'param'";
    case Tok::KwGlobal: return "'global'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwInt: return "'int'";
    case Tok::KwReal: return "'real'";
    case Tok::KwVoid: return "'void'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

namespace {

const std::map<std::string_view, Tok>& keywords() {
  static const std::map<std::string_view, Tok> kw = {
      {"func", Tok::KwFunc},     {"var", Tok::KwVar},
      {"param", Tok::KwParam},   {"global", Tok::KwGlobal},
      {"if", Tok::KwIf},         {"else", Tok::KwElse},
      {"for", Tok::KwFor},       {"while", Tok::KwWhile},
      {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue},
      {"int", Tok::KwInt},       {"real", Tok::KwReal},
      {"void", Tok::KwVoid},
  };
  return kw;
}

}  // namespace

Lexer::Lexer(std::string_view source, std::string_view fileName)
    : src_(source), file_(fileName) {}

SourceLoc Lexer::here() const { return SourceLoc{file_, line_, col_}; }

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char c) {
  if (peek() != c) return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (pos_ < src_.size()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < src_.size() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc start = here();
      advance();
      advance();
      while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (pos_ >= src_.size()) throw Error(start, "unterminated block comment");
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc loc = here();
  if (pos_ >= src_.size()) return Token{Tok::Eof, {}, loc, 0.0};

  size_t start = pos_;
  char c = advance();

  auto tok = [&](Tok kind) {
    return Token{kind, src_.substr(start, pos_ - start), loc, 0.0};
  };

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
    std::string_view text = src_.substr(start, pos_ - start);
    auto it = keywords().find(text);
    if (it != keywords().end()) return Token{it->second, text, loc, 0.0};
    return Token{Tok::Ident, text, loc, 0.0};
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
    bool isReal = (c == '.');
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (!isReal && peek() == '.' ) {
      isReal = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      isReal = true;
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        throw Error(loc, "malformed exponent in numeric literal");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    Token t = tok(isReal ? Tok::RealLit : Tok::IntLit);
    t.numValue = std::stod(std::string(t.text));
    return t;
  }

  switch (c) {
    case '(': return tok(Tok::LParen);
    case ')': return tok(Tok::RParen);
    case '{': return tok(Tok::LBrace);
    case '}': return tok(Tok::RBrace);
    case '[': return tok(Tok::LBracket);
    case ']': return tok(Tok::RBracket);
    case ',': return tok(Tok::Comma);
    case ';': return tok(Tok::Semicolon);
    case '+': return tok(Tok::Plus);
    case '-': return tok(Tok::Minus);
    case '*': return tok(Tok::Star);
    case '/': return tok(Tok::Slash);
    case '%': return tok(Tok::Percent);
    case '=': return tok(match('=') ? Tok::EqEq : Tok::Assign);
    case '!': return tok(match('=') ? Tok::NotEq : Tok::Bang);
    case '<': return tok(match('=') ? Tok::Le : Tok::Lt);
    case '>': return tok(match('=') ? Tok::Ge : Tok::Gt);
    case '&':
      if (match('&')) return tok(Tok::AmpAmp);
      throw Error(loc, "expected '&&'");
    case '|':
      if (match('|')) return tok(Tok::PipePipe);
      throw Error(loc, "expected '||'");
    default:
      throw Error(loc, std::string("unexpected character '") + c + "'");
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  while (true) {
    out.push_back(next());
    if (out.back().kind == Tok::Eof) break;
  }
  return out;
}

}  // namespace skope::minic
