#include "minic/ast.h"

namespace skope::minic {

std::string_view typeName(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::Int: return "int";
    case Type::Real: return "real";
  }
  return "?";
}

std::string_view binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

const FuncDecl* Program::findFunc(std::string_view name) const {
  for (const auto& f : funcs) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

const ParamDecl* Program::findParam(std::string_view name) const {
  for (const auto& p : params) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const GlobalDecl* Program::findGlobal(std::string_view name) const {
  for (const auto& g : globals) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

int Program::globalIndexOf(std::string_view name) const {
  for (size_t i = 0; i < globals.size(); ++i) {
    if (globals[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Program::paramIndexOf(std::string_view name) const {
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void forEachStmt(const std::vector<StmtUP>& stmts,
                 const std::function<void(const StmtNode&)>& fn) {
  for (const auto& s : stmts) {
    fn(*s);
    if (s->init) fn(*s->init);
    if (s->step) fn(*s->step);
    forEachStmt(s->body, fn);
    forEachStmt(s->elseBody, fn);
  }
}

size_t Program::countStatements() const {
  size_t n = 0;
  for (const auto& f : funcs) {
    ++n;  // the function header itself
    forEachStmt(f->body, [&](const StmtNode&) { ++n; });
  }
  return n;
}

}  // namespace skope::minic
