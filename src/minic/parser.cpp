#include "minic/parser.h"

#include "minic/lexer.h"

namespace skope::minic {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::unique_ptr<Program> prog)
      : toks_(std::move(tokens)), prog_(std::move(prog)) {}

  std::unique_ptr<Program> run() {
    while (!at(Tok::Eof)) {
      if (at(Tok::KwParam)) {
        parseParamDecl();
      } else if (at(Tok::KwGlobal)) {
        parseGlobalDecl();
      } else if (at(Tok::KwFunc)) {
        parseFuncDecl();
      } else {
        throw Error(cur().loc, "expected 'param', 'global' or 'func' at top level");
      }
    }
    return std::move(prog_);
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok kind) const { return cur().kind == kind; }

  Token eat(Tok kind) {
    if (!at(kind)) {
      throw Error(cur().loc, "expected " + std::string(tokName(kind)) + ", found " +
                                 std::string(tokName(cur().kind)) +
                                 (cur().text.empty() ? "" : " '" + std::string(cur().text) + "'"));
    }
    return toks_[pos_++];
  }

  bool accept(Tok kind) {
    if (!at(kind)) return false;
    ++pos_;
    return true;
  }

  NodeId freshId() { return prog_->nextNodeId++; }

  Type parseType() {
    if (accept(Tok::KwInt)) return Type::Int;
    if (accept(Tok::KwReal)) return Type::Real;
    if (accept(Tok::KwVoid)) return Type::Void;
    throw Error(cur().loc, "expected a type ('int', 'real' or 'void')");
  }

  void parseParamDecl() {
    Token kw = eat(Tok::KwParam);
    ParamDecl d;
    d.id = freshId();
    d.loc = kw.loc;
    d.type = parseType();
    if (d.type == Type::Void) throw Error(kw.loc, "parameters cannot be void");
    d.name = std::string(eat(Tok::Ident).text);
    if (accept(Tok::Assign)) {
      Token lit = cur();
      bool negate = accept(Tok::Minus);
      if (at(Tok::IntLit) || at(Tok::RealLit)) {
        d.defaultValue = (negate ? -1.0 : 1.0) * eat(cur().kind).numValue;
      } else {
        throw Error(lit.loc, "param default must be a numeric literal");
      }
    }
    eat(Tok::Semicolon);
    prog_->params.push_back(std::move(d));
  }

  void parseGlobalDecl() {
    Token kw = eat(Tok::KwGlobal);
    GlobalDecl d;
    d.id = freshId();
    d.loc = kw.loc;
    d.elemType = parseType();
    if (d.elemType == Type::Void) throw Error(kw.loc, "globals cannot be void");
    d.name = std::string(eat(Tok::Ident).text);
    while (accept(Tok::LBracket)) {
      d.dims.push_back(parseExpr());
      eat(Tok::RBracket);
    }
    if (d.dims.size() > 3) throw Error(d.loc, "arrays support at most 3 dimensions");
    eat(Tok::Semicolon);
    prog_->globals.push_back(std::move(d));
  }

  void parseFuncDecl() {
    Token kw = eat(Tok::KwFunc);
    auto f = std::make_unique<FuncDecl>();
    f->id = freshId();
    f->loc = kw.loc;
    f->retType = parseType();
    f->name = std::string(eat(Tok::Ident).text);
    eat(Tok::LParen);
    if (!at(Tok::RParen)) {
      do {
        FuncParam p;
        p.type = parseType();
        if (p.type == Type::Void) throw Error(cur().loc, "function parameters cannot be void");
        p.name = std::string(eat(Tok::Ident).text);
        f->params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    eat(Tok::RParen);
    f->body = parseBlockBody();
    prog_->funcs.push_back(std::move(f));
  }

  std::vector<StmtUP> parseBlockBody() {
    eat(Tok::LBrace);
    std::vector<StmtUP> body;
    while (!at(Tok::RBrace)) body.push_back(parseStmt());
    eat(Tok::RBrace);
    return body;
  }

  StmtUP makeStmt(StmtKind kind, SourceLoc loc) {
    auto s = std::make_unique<StmtNode>();
    s->id = freshId();
    s->loc = loc;
    s->kind = kind;
    return s;
  }

  StmtUP parseStmt() {
    SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case Tok::KwVar: return parseVarDecl();
      case Tok::KwIf: return parseIf();
      case Tok::KwFor: return parseFor();
      case Tok::KwWhile: return parseWhile();
      case Tok::KwReturn: {
        eat(Tok::KwReturn);
        auto s = makeStmt(StmtKind::Return, loc);
        if (!at(Tok::Semicolon)) s->rhs = parseExpr();
        eat(Tok::Semicolon);
        return s;
      }
      case Tok::KwBreak: {
        eat(Tok::KwBreak);
        eat(Tok::Semicolon);
        return makeStmt(StmtKind::Break, loc);
      }
      case Tok::KwContinue: {
        eat(Tok::KwContinue);
        eat(Tok::Semicolon);
        return makeStmt(StmtKind::Continue, loc);
      }
      case Tok::LBrace: {
        auto s = makeStmt(StmtKind::Block, loc);
        s->body = parseBlockBody();
        return s;
      }
      default: {
        auto s = parseSimpleStmt();
        eat(Tok::Semicolon);
        return s;
      }
    }
  }

  StmtUP parseVarDecl() {
    SourceLoc loc = eat(Tok::KwVar).loc;
    auto s = makeStmt(StmtKind::VarDecl, loc);
    s->declType = parseType();
    if (s->declType == Type::Void) throw Error(loc, "variables cannot be void");
    s->lhsName = std::string(eat(Tok::Ident).text);
    if (accept(Tok::Assign)) s->rhs = parseExpr();
    eat(Tok::Semicolon);
    return s;
  }

  StmtUP parseIf() {
    SourceLoc loc = eat(Tok::KwIf).loc;
    auto s = makeStmt(StmtKind::If, loc);
    eat(Tok::LParen);
    s->cond = parseExpr();
    eat(Tok::RParen);
    s->body = parseBlockBody();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        s->elseBody.push_back(parseIf());
      } else {
        s->elseBody = parseBlockBody();
      }
    }
    return s;
  }

  StmtUP parseFor() {
    SourceLoc loc = eat(Tok::KwFor).loc;
    auto s = makeStmt(StmtKind::For, loc);
    eat(Tok::LParen);
    s->init = parseSimpleStmt();
    if (s->init->kind != StmtKind::Assign) {
      throw Error(s->init->loc, "for-init must be an assignment");
    }
    eat(Tok::Semicolon);
    s->cond = parseExpr();
    eat(Tok::Semicolon);
    s->step = parseSimpleStmt();
    if (s->step->kind != StmtKind::Assign) {
      throw Error(s->step->loc, "for-step must be an assignment");
    }
    eat(Tok::RParen);
    s->body = parseBlockBody();
    return s;
  }

  StmtUP parseWhile() {
    SourceLoc loc = eat(Tok::KwWhile).loc;
    auto s = makeStmt(StmtKind::While, loc);
    eat(Tok::LParen);
    s->cond = parseExpr();
    eat(Tok::RParen);
    s->body = parseBlockBody();
    return s;
  }

  /// assignment or bare call
  StmtUP parseSimpleStmt() {
    SourceLoc loc = cur().loc;
    Token ident = eat(Tok::Ident);

    if (at(Tok::LParen)) {
      // bare call for side effects
      auto s = makeStmt(StmtKind::ExprStmt, loc);
      s->rhs = parseCallRest(ident);
      return s;
    }

    auto s = makeStmt(StmtKind::Assign, loc);
    s->lhsName = std::string(ident.text);
    while (accept(Tok::LBracket)) {
      s->lhsIndices.push_back(parseExpr());
      eat(Tok::RBracket);
    }
    eat(Tok::Assign);
    s->rhs = parseExpr();
    return s;
  }

  // ---- expressions ----

  ExprUP makeExpr(ExprKind kind, SourceLoc loc) {
    auto e = std::make_unique<ExprNode>();
    e->id = freshId();
    e->loc = loc;
    e->kind = kind;
    return e;
  }

  ExprUP parseExpr() { return parseOr(); }

  ExprUP parseBinaryChain(ExprUP (Parser::*sub)(),
                          std::initializer_list<std::pair<Tok, BinOp>> ops) {
    auto lhs = (this->*sub)();
    while (true) {
      bool matched = false;
      for (auto [tok, op] : ops) {
        if (at(tok)) {
          SourceLoc loc = eat(tok).loc;
          auto e = makeExpr(ExprKind::Binary, loc);
          e->bin = op;
          e->args.push_back(std::move(lhs));
          e->args.push_back((this->*sub)());
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprUP parseOr() {
    return parseBinaryChain(&Parser::parseAnd, {{Tok::PipePipe, BinOp::Or}});
  }
  ExprUP parseAnd() {
    return parseBinaryChain(&Parser::parseEquality, {{Tok::AmpAmp, BinOp::And}});
  }
  ExprUP parseEquality() {
    return parseBinaryChain(&Parser::parseRelational,
                            {{Tok::EqEq, BinOp::Eq}, {Tok::NotEq, BinOp::Ne}});
  }
  ExprUP parseRelational() {
    return parseBinaryChain(&Parser::parseAdditive,
                            {{Tok::Lt, BinOp::Lt},
                             {Tok::Le, BinOp::Le},
                             {Tok::Gt, BinOp::Gt},
                             {Tok::Ge, BinOp::Ge}});
  }
  ExprUP parseAdditive() {
    return parseBinaryChain(&Parser::parseMultiplicative,
                            {{Tok::Plus, BinOp::Add}, {Tok::Minus, BinOp::Sub}});
  }
  ExprUP parseMultiplicative() {
    return parseBinaryChain(&Parser::parseUnary, {{Tok::Star, BinOp::Mul},
                                                  {Tok::Slash, BinOp::Div},
                                                  {Tok::Percent, BinOp::Mod}});
  }

  ExprUP parseUnary() {
    if (at(Tok::Minus)) {
      SourceLoc loc = eat(Tok::Minus).loc;
      auto e = makeExpr(ExprKind::Unary, loc);
      e->un = UnOp::Neg;
      e->args.push_back(parseUnary());
      return e;
    }
    if (at(Tok::Bang)) {
      SourceLoc loc = eat(Tok::Bang).loc;
      auto e = makeExpr(ExprKind::Unary, loc);
      e->un = UnOp::Not;
      e->args.push_back(parseUnary());
      return e;
    }
    return parsePrimary();
  }

  ExprUP parseCallRest(const Token& ident) {
    auto e = makeExpr(ExprKind::Call, ident.loc);
    e->name = std::string(ident.text);
    eat(Tok::LParen);
    if (!at(Tok::RParen)) {
      do {
        e->args.push_back(parseExpr());
      } while (accept(Tok::Comma));
    }
    eat(Tok::RParen);
    return e;
  }

  ExprUP parsePrimary() {
    SourceLoc loc = cur().loc;
    if (at(Tok::IntLit)) {
      auto e = makeExpr(ExprKind::IntLit, loc);
      e->numValue = eat(Tok::IntLit).numValue;
      return e;
    }
    if (at(Tok::RealLit)) {
      auto e = makeExpr(ExprKind::RealLit, loc);
      e->numValue = eat(Tok::RealLit).numValue;
      return e;
    }
    if (at(Tok::LParen)) {
      eat(Tok::LParen);
      auto e = parseExpr();
      eat(Tok::RParen);
      return e;
    }
    if (at(Tok::Ident)) {
      Token ident = eat(Tok::Ident);
      if (at(Tok::LParen)) return parseCallRest(ident);
      if (at(Tok::LBracket)) {
        auto e = makeExpr(ExprKind::ArrayRef, loc);
        e->name = std::string(ident.text);
        while (accept(Tok::LBracket)) {
          e->args.push_back(parseExpr());
          eat(Tok::RBracket);
        }
        return e;
      }
      auto e = makeExpr(ExprKind::VarRef, loc);
      e->name = std::string(ident.text);
      return e;
    }
    throw Error(loc, "expected an expression, found " + std::string(tokName(cur().kind)));
  }

  std::vector<Token> toks_;
  std::unique_ptr<Program> prog_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Program> parseProgram(std::string_view source, std::string_view fileName) {
  auto prog = std::make_unique<Program>();
  prog->sourceName = std::string(fileName);
  // Tokens carry string_views into `source`; AST nodes copy names out, so the
  // caller's buffer only needs to live for the duration of this call.
  Lexer lexer(source, prog->sourceName);
  return Parser(lexer.tokenize(), std::move(prog)).run();
}

}  // namespace skope::minic
