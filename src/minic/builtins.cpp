#include "minic/builtins.h"

namespace skope::minic {

const std::vector<BuiltinInfo>& builtinTable() {
  // The fallback mixes approximate a typical scalar libm implementation:
  // a polynomial-core transcendental is a few dozen fused multiply-adds plus
  // range-reduction integer work and a table lookup.
  static const std::vector<BuiltinInfo> table = {
      {"exp", 1, Type::Real, true, {22, 6, 2, 0}},
      {"log", 1, Type::Real, true, {24, 8, 2, 0}},
      {"sqrt", 1, Type::Real, true, {14, 2, 0, 0}},
      {"sin", 1, Type::Real, true, {20, 8, 2, 0}},
      {"cos", 1, Type::Real, true, {20, 8, 2, 0}},
      {"pow", 2, Type::Real, true, {48, 12, 4, 0}},
      {"rand", 0, Type::Real, true, {4, 10, 1, 1}},
      {"fabs", 1, Type::Real, false, {1, 0, 0, 0}},
      {"floor", 1, Type::Real, false, {1, 0, 0, 0}},
      {"fmin", 2, Type::Real, false, {1, 0, 0, 0}},
      {"fmax", 2, Type::Real, false, {1, 0, 0, 0}},
      {"imin", 2, Type::Int, false, {0, 1, 0, 0}},
      {"imax", 2, Type::Int, false, {0, 1, 0, 0}},
      {"itrunc", 1, Type::Int, false, {0, 1, 0, 0}},
  };
  return table;
}

int findBuiltin(std::string_view name) {
  const auto& table = builtinTable();
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace skope::minic
