// Abstract syntax tree for MiniC.
//
// Every node carries a NodeId that is unique within its Program. Loop and
// function NodeIds double as *region ids*: the simulator (ground-truth
// profiler), the skeleton translator, and the BET all attribute costs to the
// same region ids, which is what makes model-vs-measurement hot-spot
// comparison exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace skope::minic {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0;

/// Scalar value types. Arrays are declared separately with an element type.
enum class Type { Void, Int, Real };

std::string_view typeName(Type t);

struct ExprNode;
struct StmtNode;
struct FuncDecl;
using ExprUP = std::unique_ptr<ExprNode>;
using StmtUP = std::unique_ptr<StmtNode>;

enum class ExprKind {
  IntLit,    ///< numValue
  RealLit,   ///< numValue
  VarRef,    ///< name; resolved to a local slot or global scalar
  ArrayRef,  ///< name + index args; resolved to a global array
  Unary,     ///< un + args[0]
  Binary,    ///< bin + args[0], args[1]
  Call,      ///< name + args; builtin or user function
};

enum class BinOp { Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
enum class UnOp { Neg, Not };

std::string_view binOpName(BinOp op);

/// Expression node. Children live in `args`; for Binary they are the two
/// operands, for ArrayRef the index expressions, for Call the arguments.
struct ExprNode {
  NodeId id = kInvalidNode;
  SourceLoc loc;
  ExprKind kind = ExprKind::IntLit;
  double numValue = 0.0;
  std::string name;
  BinOp bin = BinOp::Add;
  UnOp un = UnOp::Neg;
  std::vector<ExprUP> args;

  // --- filled in by Sema ---
  Type type = Type::Void;
  int localSlot = -1;            ///< VarRef to a local/function parameter
  int paramIndex = -1;           ///< VarRef to a workload `param` declaration
  int globalIndex = -1;          ///< VarRef to a global scalar
  int arrayIndex = -1;           ///< ArrayRef target
  int builtinIndex = -1;         ///< Call to a builtin (index into builtin table)
  const FuncDecl* callee = nullptr;  ///< Call to a user function
};

enum class StmtKind {
  Block,     ///< body
  VarDecl,   ///< name, declType, optional init in rhs
  Assign,    ///< lhsName (+ lhsIndices for array element), rhs
  ExprStmt,  ///< rhs (evaluated for side effects — user calls)
  If,        ///< cond, thenBlock, optional elseBlock
  For,       ///< init (Assign), cond, step (Assign), body
  While,     ///< cond, body
  Return,    ///< optional rhs
  Break,
  Continue,
};

/// Statement node. A single struct with a kind tag keeps traversal code in
/// one switch per pass, which the passes in translate/ and vm/ rely on.
struct StmtNode {
  NodeId id = kInvalidNode;
  SourceLoc loc;
  StmtKind kind = StmtKind::Block;

  // VarDecl / Assign
  std::string lhsName;
  Type declType = Type::Void;
  std::vector<ExprUP> lhsIndices;

  ExprUP rhs;    ///< init value / assigned value / returned value / expr
  ExprUP cond;   ///< If / For / While condition

  StmtUP init;   ///< For init assignment
  StmtUP step;   ///< For step assignment

  std::vector<StmtUP> body;      ///< Block / For / While body
  std::vector<StmtUP> elseBody;  ///< If else-branch

  // --- filled in by Sema ---
  int localSlot = -1;    ///< VarDecl slot; Assign to local
  int globalIndex = -1;  ///< Assign to global scalar
  int arrayIndex = -1;   ///< Assign to array element
};

/// `param int N;` — a workload input parameter, bound by the hint file /
/// WorkloadInput before execution. Params behave as read-only global scalars.
struct ParamDecl {
  NodeId id = kInvalidNode;
  SourceLoc loc;
  std::string name;
  Type type = Type::Int;
  std::optional<double> defaultValue;
};

/// `global real u[NX][NY];` — a global array (or scalar when dims is empty).
/// Dimension expressions may reference params and integer literals.
struct GlobalDecl {
  NodeId id = kInvalidNode;
  SourceLoc loc;
  std::string name;
  Type elemType = Type::Real;
  std::vector<ExprUP> dims;  ///< empty => global scalar

  [[nodiscard]] bool isArray() const { return !dims.empty(); }
};

/// A function parameter (scalars only; arrays are globals by design).
struct FuncParam {
  std::string name;
  Type type = Type::Int;
};

struct FuncDecl {
  NodeId id = kInvalidNode;
  SourceLoc loc;
  std::string name;
  Type retType = Type::Void;
  std::vector<FuncParam> params;
  std::vector<StmtUP> body;

  // --- filled in by Sema ---
  int numLocalSlots = 0;  ///< params + declared locals
};

/// A full translation unit.
struct Program {
  std::string sourceName;
  std::vector<ParamDecl> params;
  std::vector<GlobalDecl> globals;
  std::vector<std::unique_ptr<FuncDecl>> funcs;
  NodeId nextNodeId = 1;

  [[nodiscard]] const FuncDecl* findFunc(std::string_view name) const;
  [[nodiscard]] const ParamDecl* findParam(std::string_view name) const;
  [[nodiscard]] const GlobalDecl* findGlobal(std::string_view name) const;
  [[nodiscard]] int globalIndexOf(std::string_view name) const;
  [[nodiscard]] int paramIndexOf(std::string_view name) const;

  /// Total number of statements (the paper's "source code statements" metric
  /// used in the BET-size comparison of §IV-B).
  [[nodiscard]] size_t countStatements() const;
};

/// Calls `fn` for every statement in the subtree rooted at each element of
/// `stmts`, pre-order.
void forEachStmt(const std::vector<StmtUP>& stmts,
                 const std::function<void(const StmtNode&)>& fn);

}  // namespace skope::minic
