#include "minic/printer.h"

#include <cmath>
#include <sstream>

#include "support/text.h"

namespace skope::minic {

namespace {

void printExprTo(std::ostringstream& os, const ExprNode& e);

void printArgs(std::ostringstream& os, const std::vector<ExprUP>& args, const char* open,
               const char* close, const char* sep) {
  os << open;
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << sep;
    printExprTo(os, *args[i]);
  }
  os << close;
}

void printExprTo(std::ostringstream& os, const ExprNode& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      os << static_cast<long long>(e.numValue);
      return;
    case ExprKind::RealLit: {
      std::string s = humanDouble(e.numValue, 17);
      os << s;
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) os << ".0";
      return;
    }
    case ExprKind::VarRef:
      os << e.name;
      return;
    case ExprKind::ArrayRef:
      os << e.name;
      for (const auto& ix : e.args) {
        os << '[';
        printExprTo(os, *ix);
        os << ']';
      }
      return;
    case ExprKind::Unary:
      os << (e.un == UnOp::Neg ? "-" : "!") << '(';
      printExprTo(os, *e.args[0]);
      os << ')';
      return;
    case ExprKind::Binary:
      os << '(';
      printExprTo(os, *e.args[0]);
      os << ' ' << binOpName(e.bin) << ' ';
      printExprTo(os, *e.args[1]);
      os << ')';
      return;
    case ExprKind::Call:
      os << e.name;
      printArgs(os, e.args, "(", ")", ", ");
      return;
  }
}

class ProgramPrinter {
 public:
  std::string run(const Program& prog) {
    for (const auto& p : prog.params) {
      os_ << "param " << typeName(p.type) << ' ' << p.name;
      if (p.defaultValue) os_ << " = " << humanDouble(*p.defaultValue, 17);
      os_ << ";\n";
    }
    for (const auto& g : prog.globals) {
      os_ << "global " << typeName(g.elemType) << ' ' << g.name;
      for (const auto& d : g.dims) {
        os_ << '[';
        printExprTo(os_, *d);
        os_ << ']';
      }
      os_ << ";\n";
    }
    for (const auto& f : prog.funcs) {
      os_ << "\nfunc " << typeName(f->retType) << ' ' << f->name << '(';
      for (size_t i = 0; i < f->params.size(); ++i) {
        if (i) os_ << ", ";
        os_ << typeName(f->params[i].type) << ' ' << f->params[i].name;
      }
      os_ << ") {\n";
      indent_ = 1;
      printStmts(f->body);
      os_ << "}\n";
    }
    return os_.str();
  }

 private:
  void line() {
    for (int i = 0; i < indent_; ++i) os_ << "  ";
  }

  void printStmts(const std::vector<StmtUP>& stmts) {
    for (const auto& s : stmts) printStmt(*s);
  }

  void printBlock(const std::vector<StmtUP>& body) {
    os_ << "{\n";
    ++indent_;
    printStmts(body);
    --indent_;
    line();
    os_ << "}";
  }

  void printAssignInline(const StmtNode& s) {
    os_ << s.lhsName;
    for (const auto& ix : s.lhsIndices) {
      os_ << '[';
      printExprTo(os_, *ix);
      os_ << ']';
    }
    os_ << " = ";
    printExprTo(os_, *s.rhs);
  }

  void printStmt(const StmtNode& s) {
    switch (s.kind) {
      case StmtKind::Block:
        line();
        printBlock(s.body);
        os_ << "\n";
        return;
      case StmtKind::VarDecl:
        line();
        os_ << "var " << typeName(s.declType) << ' ' << s.lhsName;
        if (s.rhs) {
          os_ << " = ";
          printExprTo(os_, *s.rhs);
        }
        os_ << ";\n";
        return;
      case StmtKind::Assign:
        line();
        printAssignInline(s);
        os_ << ";\n";
        return;
      case StmtKind::ExprStmt:
        line();
        printExprTo(os_, *s.rhs);
        os_ << ";\n";
        return;
      case StmtKind::If:
        line();
        os_ << "if (";
        printExprTo(os_, *s.cond);
        os_ << ") ";
        printBlock(s.body);
        if (!s.elseBody.empty()) {
          os_ << " else ";
          printBlock(s.elseBody);
        }
        os_ << "\n";
        return;
      case StmtKind::For:
        line();
        os_ << "for (";
        printAssignInline(*s.init);
        os_ << "; ";
        printExprTo(os_, *s.cond);
        os_ << "; ";
        printAssignInline(*s.step);
        os_ << ") ";
        printBlock(s.body);
        os_ << "\n";
        return;
      case StmtKind::While:
        line();
        os_ << "while (";
        printExprTo(os_, *s.cond);
        os_ << ") ";
        printBlock(s.body);
        os_ << "\n";
        return;
      case StmtKind::Return:
        line();
        os_ << "return";
        if (s.rhs) {
          os_ << ' ';
          printExprTo(os_, *s.rhs);
        }
        os_ << ";\n";
        return;
      case StmtKind::Break:
        line();
        os_ << "break;\n";
        return;
      case StmtKind::Continue:
        line();
        os_ << "continue;\n";
        return;
    }
  }

  std::ostringstream os_;
  int indent_ = 0;
};

}  // namespace

std::string printExpr(const ExprNode& e) {
  std::ostringstream os;
  printExprTo(os, e);
  return os.str();
}

std::string printProgram(const Program& prog) { return ProgramPrinter().run(prog); }

}  // namespace skope::minic
