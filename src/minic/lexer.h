// Lexer for MiniC, the small C-like workload language that stands in for the
// paper's C/Fortran inputs (ROSE frontend substitute, see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.h"

namespace skope::minic {

enum class Tok {
  // literals / identifiers
  Ident, IntLit, RealLit,
  // keywords
  KwFunc, KwVar, KwParam, KwGlobal, KwIf, KwElse, KwFor, KwWhile,
  KwReturn, KwBreak, KwContinue, KwInt, KwReal, KwVoid,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon,
  Assign,                       // =
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Lt, Le, Gt, Ge,
  AmpAmp, PipePipe, Bang,
  Eof,
};

/// Human-readable token name for diagnostics.
std::string_view tokName(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  std::string_view text;   ///< slice of the source buffer
  SourceLoc loc;
  double numValue = 0.0;   ///< for IntLit / RealLit
};

/// Tokenizes an entire buffer up front. The source buffer must outlive the
/// returned tokens (they hold string_views into it).
class Lexer {
 public:
  Lexer(std::string_view source, std::string_view fileName);

  /// Lexes the whole input; the last token is always Eof.
  /// Throws Error on an unrecognized character or malformed literal.
  std::vector<Token> tokenize();

 private:
  Token next();
  void skipWhitespaceAndComments();
  [[nodiscard]] SourceLoc here() const;
  char peek(size_t ahead = 0) const;
  char advance();
  bool match(char c);

  std::string_view src_;
  std::string_view file_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

}  // namespace skope::minic
