#include "libmodel/libmodel.h"

#include "minic/builtins.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "support/rng.h"
#include "vm/compiler.h"
#include "vm/interp.h"

namespace skope::libmodel {

namespace {

// Reference libm kernels in MiniC. Each kernel_* function reproduces the
// dynamic shape of a scalar software implementation: range reduction with
// data-dependent loops, a fixed polynomial core, and table-free arithmetic.
// main() evaluates the kernel selected by FN over SAMPLES pseudo-random
// inputs produced by an inline LCG (so the `rand` builtin never pollutes the
// counters being measured).
constexpr std::string_view kKernelSource = R"(
param int FN;       // which kernel to profile
param int SAMPLES;  // how many calls to average over
param int SEED;
global real sink;   // keeps results live

func real kernel_exp(real x) {
  // range reduction: x = k*ln2 + r, |r| <= ln2/2
  var real ln2 = 0.6931471805599453;
  var real r = x;
  var int k = 0;
  while (r > 0.34657) { r = r - ln2; k = k + 1; }
  while (r < -0.34657) { r = r + ln2; k = k - 1; }
  // degree-6 polynomial core (Horner)
  var real p = 1.0 + r * (1.0 + r * (0.5 + r * (0.1666666 + r * (0.0416666 +
               r * (0.0083333 + r * 0.0013888)))));
  // scale by 2^k with a data-dependent loop
  var int i;
  if (k >= 0) {
    for (i = 0; i < k; i = i + 1) { p = p * 2.0; }
  } else {
    for (i = 0; i < -(k); i = i + 1) { p = p * 0.5; }
  }
  return p;
}

func real kernel_log(real x) {
  // normalize m into [1,2): data-dependent iteration count
  var real m = x;
  var real e = 0.0;
  var real ln2 = 0.6931471805599453;
  while (m >= 2.0) { m = m * 0.5; e = e + 1.0; }
  while (m < 1.0) { m = m * 2.0; e = e - 1.0; }
  // atanh-based series around 1
  var real t = (m - 1.0) / (m + 1.0);
  var real t2 = t * t;
  var real s = t * (2.0 + t2 * (0.6666666 + t2 * (0.4 + t2 * (0.2857142 + t2 * 0.2222222))));
  return e * ln2 + s;
}

func real kernel_sqrt(real x) {
  // Newton iterations from a crude seed
  var real g = x;
  if (g > 1.0) { g = g * 0.5; } else { g = g * 2.0; }
  var int i;
  for (i = 0; i < 5; i = i + 1) { g = 0.5 * (g + x / g); }
  return g;
}

func real kernel_sin(real x) {
  // range reduce to [-pi, pi]
  var real twopi = 6.283185307179586;
  var real r = x - floor(x * 0.15915494309189535) * twopi;
  if (r > 3.141592653589793) { r = r - twopi; }
  var real r2 = r * r;
  return r * (1.0 - r2 * (0.1666666 - r2 * (0.0083333 - r2 * 0.0001984)));
}

func real kernel_cos(real x) {
  var real twopi = 6.283185307179586;
  var real r = x - floor(x * 0.15915494309189535) * twopi;
  if (r > 3.141592653589793) { r = r - twopi; }
  var real r2 = r * r;
  return 1.0 - r2 * (0.5 - r2 * (0.0416666 - r2 * (0.0013888 - r2 * 0.0000248)));
}

func real kernel_pow(real a, real b) {
  return kernel_exp(b * kernel_log(a));
}

func real kernel_rand(real state) {
  // 32-bit LCG step + scale to [0,1)
  var int s = state;
  s = (s * 16807) % 2147483647;
  if (s < 0) { s = -(s); }
  return s * 4.656612875245797e-10;
}

func void main() {
  var int i;
  var real lcg = SEED;
  var real acc = 0.0;
  for (i = 0; i < SAMPLES; i = i + 1) {
    // inline LCG for input generation (kept in main so its cost is not
    // attributed to the kernels)
    var int g = lcg;
    g = (g * 16807 + 12345) % 2147483647;
    if (g < 0) { g = -(g); }
    lcg = g;
    var real u = g * 4.656612875245797e-10;   // [0,1)
    if (FN == 0) { acc = acc + kernel_exp(u * 8.0 - 4.0); }
    if (FN == 1) { acc = acc + kernel_log(u * 99.9 + 0.1); }
    if (FN == 2) { acc = acc + kernel_sqrt(u * 100.0 + 0.001); }
    if (FN == 3) { acc = acc + kernel_sin(u * 20.0 - 10.0); }
    if (FN == 4) { acc = acc + kernel_cos(u * 20.0 - 10.0); }
    if (FN == 5) { acc = acc + kernel_pow(u * 4.0 + 0.1, u * 3.0 - 1.5); }
    if (FN == 6) { acc = acc + kernel_rand(g); }
  }
  sink = acc;
}
)";

struct KernelBinding {
  const char* builtinName;
  int fnSelector;
  const char* kernelFunc;
};

constexpr KernelBinding kBindings[] = {
    {"exp", 0, "kernel_exp"},   {"log", 1, "kernel_log"},  {"sqrt", 2, "kernel_sqrt"},
    {"sin", 3, "kernel_sin"},   {"cos", 4, "kernel_cos"},  {"pow", 5, "kernel_pow"},
    {"rand", 6, "kernel_rand"},
};

}  // namespace

std::string_view referenceKernelSource() { return kKernelSource; }

LibProfile profileLibraryFunctions(size_t samplesPerFunc, uint64_t seed) {
  auto prog = minic::parseProgram(kKernelSource, "libm_kernels.mc");
  minic::analyzeOrThrow(*prog);
  vm::Module mod = vm::compile(*prog);

  LibProfile out;
  Rng rng(seed);
  for (const KernelBinding& kb : kBindings) {
    int bi = minic::findBuiltin(kb.builtinName);
    if (bi < 0) continue;

    vm::Vm machine(mod);
    machine.bindParam("FN", kb.fnSelector);
    machine.bindParam("SAMPLES", static_cast<double>(samplesPerFunc));
    machine.bindParam("SEED", static_cast<double>(rng.below(1u << 30)));
    machine.run();

    // Inclusive mix of the kernel: its function region plus every loop region
    // inside functions with matching names (kernel_pow includes its callees'
    // own regions only via their separate entries — composition is charged to
    // the callee kernels, matching how the real libm would be profiled).
    const vm::OpCounters& oc = machine.counters();
    skel::SkMetrics mix;
    double calls = static_cast<double>(samplesPerFunc);
    for (const auto& [id, info] : mod.regions) {
      if (info.funcName != kb.kernelFunc) continue;
      mix.flops += static_cast<double>(oc.get(id, vm::OpClass::FpAdd) +
                                       oc.get(id, vm::OpClass::FpMul));
      mix.fpdivs += static_cast<double>(oc.get(id, vm::OpClass::FpDiv));
      mix.iops += static_cast<double>(oc.get(id, vm::OpClass::IntAlu) +
                                      oc.get(id, vm::OpClass::IntDiv) +
                                      oc.get(id, vm::OpClass::Branch) +
                                      oc.get(id, vm::OpClass::Conv));
      mix.loads += static_cast<double>(oc.get(id, vm::OpClass::Load));
      mix.stores += static_cast<double>(oc.get(id, vm::OpClass::Store));
    }
    out.mixes[bi] = mix.scaled(1.0 / calls);
    out.samples[bi] = samplesPerFunc;
  }

  // kernel_pow composes kernel_exp and kernel_log; fold their per-call mixes
  // in so pow's mix reflects the full call as a real profiler would see it.
  int powIdx = minic::findBuiltin("pow");
  int expIdx = minic::findBuiltin("exp");
  int logIdx = minic::findBuiltin("log");
  if (out.has(powIdx) && out.has(expIdx) && out.has(logIdx)) {
    out.mixes[powIdx] += out.mixes[expIdx];
    out.mixes[powIdx] += out.mixes[logIdx];
  }
  return out;
}

}  // namespace skope::libmodel
