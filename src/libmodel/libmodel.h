// Semi-analytic modeling of library functions (paper §IV-C).
//
// Library functions (libm transcendentals, rand) are opaque to source
// analysis but can dominate run time — in SRAD, `exp` and `rand` are two of
// the top three measured hot spots. The paper profiles their dynamic
// instruction mix once with hardware counters on a local machine, assumes the
// mix is hardware-independent, and feeds it to the roofline model.
//
// Our substitute for "hardware counters on the local machine": reference
// implementations of each kernel written in MiniC (range reduction +
// polynomial cores, Newton iterations, an LCG for rand) are executed in the
// instrumented VM over a spread of random inputs; the per-call average of the
// VM's op counters is the empirical mix. Functions whose dynamic behavior is
// input-dependent (e.g. exp's scaling loop) are averaged over many samples,
// exactly as §IV-C prescribes.
#pragma once

#include <map>

#include "roofline/estimate.h"

namespace skope::libmodel {

struct LibProfile {
  roofline::LibMixes mixes;        ///< builtin index -> mean per-call mix
  std::map<int, size_t> samples;   ///< builtin index -> #sampled calls

  [[nodiscard]] bool has(int builtinIndex) const {
    return mixes.count(builtinIndex) != 0;
  }
};

/// Profiles all library builtins that have reference kernels. Deterministic
/// for a fixed (samplesPerFunc, seed).
LibProfile profileLibraryFunctions(size_t samplesPerFunc = 64, uint64_t seed = 0x11b);

/// The MiniC source of the reference kernels (exposed for tests/examples).
std::string_view referenceKernelSource();

}  // namespace skope::libmodel
