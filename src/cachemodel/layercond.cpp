#include "cachemodel/layercond.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::cachemodel {

namespace {

constexpr double kElemBytes = 8;       // the VM stores every element as 8 bytes
constexpr double kCanonicalLine = 64;  // line size for config-independent volumes

/// Cold-footprint geometry of a reference set: R runs of ~sigma line-occupied
/// bytes each, spread over an extent of E bytes. lines is the distinct line
/// count of the base offsets alone.
struct Geometry {
  double runs = 1;
  double sigma = kCanonicalLine;  ///< line-occupied bytes per run
  double extent = kCanonicalLine;
  double lines = 1;
};

/// Clusters the sorted byte offsets at `line` granularity: offsets more than
/// one line apart start a new run. Offsets are relative to the array base,
/// which the VM page-aligns, so line boundaries at multiples of `line` are
/// exact for every power-of-two line size up to the page.
Geometry clusterOffsets(const std::vector<double>& offsets, double line) {
  Geometry g;
  if (offsets.empty()) return g;
  auto lineOf = [line](double b) { return std::floor(b / line); };
  double runs = 0, lines = 0, sigmaSum = 0;
  double runFirst = offsets.front(), prev = offsets.front();
  auto closeRun = [&](double last) {
    runs += 1;
    double runLines = lineOf(last + kElemBytes - 1) - lineOf(runFirst) + 1;
    lines += runLines;
    sigmaSum += runLines * line;
  };
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] - prev > line) {
      closeRun(prev);
      runFirst = offsets[i];
    }
    prev = offsets[i];
  }
  closeRun(prev);
  g.runs = runs;
  g.lines = lines;
  g.sigma = sigmaSum / runs;
  g.extent = offsets.back() - offsets.front() + line;
  return g;
}

/// Advances the cold-footprint geometry across one loop (no cache: pure
/// distinct-bytes accounting). Shared by the volume precompute and the
/// per-level miss walk.
void advanceFootprint(Geometry& g, double trip, double strideBytes, bool random,
                      double arrayBytes, double line) {
  double f = std::max(trip, 1.0);
  double s = std::fabs(strideBytes);
  double cap = std::max(arrayBytes, line);
  if (random) {
    g.runs = 1;
    g.sigma = cap;
    g.extent = cap;
    return;
  }
  if (s == 0 || f <= 1) return;
  if (s <= g.sigma + line) {
    // Overlapping sweep: each run extends by s per iteration.
    double grown = g.sigma + (f - 1) * s;
    double spacing = g.runs > 1 ? (g.extent - g.sigma) / (g.runs - 1) : 0;
    g.extent += (f - 1) * s;
    if (g.runs > 1 && grown + line >= spacing) {
      g.runs = 1;
      g.sigma = g.extent;
    } else {
      g.sigma = grown;
    }
  } else {
    // Disjoint replication: f fresh copies of the current pattern.
    g.runs *= f;
    g.extent += (f - 1) * s;
  }
  if (g.runs * g.sigma > cap) {
    g.runs = std::max(cap / g.sigma, 1.0);
  }
}

double footprintBytes(const Geometry& g, double arrayBytes, double line) {
  return std::min(g.runs * g.sigma, std::max(arrayBytes, line));
}

}  // namespace

LayerConditionModel::LayerConditionModel(const minic::Program& prog,
                                         const bet::Bet& bet,
                                         const std::map<std::string, double>& params,
                                         const LayerConditionOptions& options)
    : options_(options), paramsEnv_(params) {
  const ParamEnv& env = paramsEnv_;

  arrayBytes_.resize(prog.globals.size(), 0);
  for (size_t i = 0; i < prog.globals.size(); ++i) {
    if (!prog.globals[i].isArray()) continue;
    auto elems = tryEval(totalElems(prog.globals[i]), env);
    arrayBytes_[i] = elems ? *elems * kElemBytes : 0;
  }

  ExtractionResult extracted = extractAccesses(prog);
  stats_.affineRefs = extracted.affineRefs;
  stats_.indirectRefs = extracted.indirectRefs;
  stats_.opaqueRefs = extracted.opaqueRefs;

  std::map<uint32_t, std::vector<const AccessPattern*>> byRegion;
  for (const auto& ap : extracted.accesses) byRegion[ap.region].push_back(&ap);

  // Anchor every reference at the BET nodes of its region; each mount of a
  // function yields its own chain (own trip counts, own context bindings).
  if (bet.root) {
    std::vector<const bet::BetNode*> path;
    std::function<void(const bet::BetNode&)> walk = [&](const bet::BetNode& n) {
      path.push_back(&n);
      if (n.kind == bet::BetKind::Loop || n.kind == bet::BetKind::Func) {
        auto it = byRegion.find(n.origin);
        if (it != byRegion.end()) {
          for (const AccessPattern* ap : it->second) anchorAccess(*ap, n, path);
        }
      }
      for (const auto& k : n.kids) walk(*k);
      path.pop_back();
    };
    walk(*bet.root);
  }

  for (auto& g : groups_) {
    std::sort(g.offsets.begin(), g.offsets.end());
    g.offsets.erase(std::unique(g.offsets.begin(), g.offsets.end()), g.offsets.end());
    double c = g.count();
    stats_.dynamicRefs += c;
    if (g.opaque) stats_.opaqueDynamicRefs += c;
  }
  stats_.groups = groups_.size();

  buildVolumes();

  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::current();
    reg.counter("cachemodel/affine-refs").add(stats_.affineRefs);
    reg.counter("cachemodel/indirect-refs").add(stats_.indirectRefs);
    reg.counter("cachemodel/opaque-refs").add(stats_.opaqueRefs);
  }
}

void LayerConditionModel::anchorAccess(const AccessPattern& ap,
                                       const bet::BetNode& node,
                                       const std::vector<const bet::BetNode*>& path) {
  if (ap.arrayIndex < 0 ||
      static_cast<size_t>(ap.arrayIndex) >= arrayBytes_.size()) {
    return;
  }

  // Workload params first, then the anchor's context snapshot on top: the
  // snapshot closes over formals and Set variables at this mount and wins
  // where both bind a name.
  ParamEnv env = paramsEnv_;
  for (const auto& [k, v] : node.context) env.set(k, v);

  std::vector<ChainLoop> chain;
  double mult = 1;
  size_t j = 0;
  for (const bet::BetNode* n : path) {
    mult *= std::clamp(n->prob, 0.0, 1.0);
    if (n->kind != bet::BetKind::Loop) continue;
    ChainLoop cl;
    cl.node = n;
    cl.trip = std::max(n->numIter, 0.0);
    if (j < ap.loops.size() && n->origin == ap.loops[j].loopId) {
      bool random = static_cast<int>(j) < ap.randomDepth;
      auto stride = tryEval(ap.loops[j].strideElems, env);
      if (stride && !random) {
        cl.strideBytes = std::fabs(*stride) * kElemBytes;
      } else {
        cl.random = true;  // unknown stride or randomized base
      }
      ++j;
    }  // else: a caller's loop — the reference is invariant across it
    chain.push_back(cl);
  }

  // Branch arms inside the innermost loop: profiled arm probabilities live
  // in the anchor's subtree.
  double weight = 1;
  for (const auto& [ifId, thenArm] : ap.branchPath) {
    bet::BetKind want = thenArm ? bet::BetKind::BranchThen : bet::BetKind::BranchElse;
    double p = -1;
    node.visit([&](const bet::BetNode& n) {
      if (p < 0 && n.kind == want && n.origin == ifId) p = std::clamp(n.prob, 0.0, 1.0);
    });
    if (p >= 0) weight *= p;
  }

  auto offset = tryEval(ap.offsetElems, env);
  double offsetBytes = offset ? *offset * kElemBytes : 0;

  std::string key = format("%p|%d", static_cast<const void*>(&node), ap.arrayIndex);
  for (const auto& cl : chain) {
    key += format("|%.6g:%.6g:%d", cl.trip, cl.strideBytes, cl.random ? 1 : 0);
  }
  auto [it, inserted] = groupIndex_.emplace(key, groups_.size());
  if (inserted) {
    Group g;
    g.arrayIndex = ap.arrayIndex;
    g.region = ap.region;
    g.arrayBytes = arrayBytes_[static_cast<size_t>(ap.arrayIndex)];
    g.chain = std::move(chain);
    g.mult = mult;
    groups_.push_back(std::move(g));
  }
  Group& g = groups_[it->second];
  g.refsPerIter += weight;
  g.offsets.push_back(offsetBytes);
  g.opaque = g.opaque || ap.opaque;
}

double LayerConditionModel::footprintBelow(const Group& g, size_t fromChainPos) const {
  Geometry geo = clusterOffsets(g.offsets, kCanonicalLine);
  for (size_t k = g.chain.size(); k-- > 0;) {
    if (fromChainPos != kWholeChain && k <= fromChainPos) break;
    const ChainLoop& cl = g.chain[k];
    advanceFootprint(geo, cl.trip, cl.strideBytes, cl.random, g.arrayBytes,
                     kCanonicalLine);
  }
  return footprintBytes(geo, g.arrayBytes, kCanonicalLine);
}

void LayerConditionModel::buildVolumes() {
  // V_oneIter(betLoop) = sum over arrays of the largest one-iteration
  // footprint any group under the loop has — the "what must survive between
  // carried reuses" quantity of the layer condition.
  std::map<const bet::BetNode*, std::map<int, double>> perArray;
  std::map<int, double> touched;  ///< full-run footprint per array
  for (const auto& g : groups_) {
    if (g.count() <= 0) continue;
    for (size_t k = 0; k < g.chain.size(); ++k) {
      double fb = footprintBelow(g, k);
      auto& slot = perArray[g.chain[k].node][g.arrayIndex];
      slot = std::max(slot, fb);
    }
    double full = footprintBelow(g, kWholeChain);
    auto& t = touched[g.arrayIndex];
    t = std::max(t, full);
  }
  for (const auto& [node, arrays] : perArray) {
    double v = 0;
    for (const auto& [arr, bytes] : arrays) v += bytes;
    oneIterVolume_[node] = v;
  }
  workingSetBytes_ = 0;
  for (const auto& [arr, bytes] : touched) {
    touchedBytes_[arr] = bytes;
    workingSetBytes_ += bytes;
  }
}

double LayerConditionModel::levelMisses(const CacheLevelDesc& level,
                                        std::map<uint32_t, double>* regionMisses) const {
  const double ceff = static_cast<double>(level.sizeBytes) * options_.capacityFraction;
  const double line = std::max<double>(level.lineBytes, 1);
  double total = 0;

  for (const auto& g : groups_) {
    double trips = 1;
    for (const auto& cl : g.chain) trips *= std::max(cl.trip, 0.0);
    if (g.refsPerIter <= 0 || trips <= 0) continue;

    Geometry geo = clusterOffsets(g.offsets, line);
    double m = geo.lines;
    bool randomApplied = false;
    for (size_t k = g.chain.size(); k-- > 0;) {
      const ChainLoop& cl = g.chain[k];
      double f = std::max(cl.trip, 0.0);
      if (f <= 0) {
        m = 0;
        break;
      }
      double lo = std::min(f, 1.0);
      auto vit = oneIterVolume_.find(cl.node);
      double vol = vit != oneIterVolume_.end() ? vit->second : 0;
      bool fits = vol <= ceff;
      double s = cl.strideBytes;

      if (cl.random) {
        double fa = std::max(g.arrayBytes, line);
        if (fa <= ceff) {
          // The array stays resident once touched: cold fill, then hits.
          m = std::min(m * f, fa / line + m);
        } else if (!randomApplied) {
          // Uniform random draws over a too-big array: each draw hits with
          // probability ceff/fa. Applied once; outer loops just repeat draws.
          m = std::max(m * f * (1.0 - ceff / fa), std::min(m * f, fa / line));
          randomApplied = true;
        } else {
          m *= f;
        }
        advanceFootprint(geo, f, 0, /*random=*/true, g.arrayBytes, line);
      } else if (s == 0) {
        // Temporal reuse carried by this loop.
        m = fits ? m * lo : m * f;
      } else if (s <= geo.sigma + line) {
        // Overlapping sweep: iterations share most of their footprint.
        double before = footprintBytes(geo, g.arrayBytes, line);
        advanceFootprint(geo, f, s, false, g.arrayBytes, line);
        double after = footprintBytes(geo, g.arrayBytes, line);
        m = fits ? m * lo + std::max(after - before, 0.0) / line : m * f;
      } else {
        // Disjoint strides: every iteration touches fresh lines.
        advanceFootprint(geo, f, s, false, g.arrayBytes, line);
        m *= f;
      }
    }
    // A reference fetches at most one line, so misses never exceed the
    // group's dynamic reference count.
    m = std::min(m, g.refsPerIter * trips);
    double contrib = m * g.mult;
    total += contrib;
    if (regionMisses) (*regionMisses)[g.region] += contrib;
  }

  // Whole-working-set clamp: when everything the run touches fits this
  // level, steady state leaves only compulsory misses — cross-phase reuse
  // the per-group chains cannot see (each phase counts its own cold sweep).
  if (workingSetBytes_ > 0 && workingSetBytes_ <= ceff) {
    double compulsory = 0;
    for (const auto& [arr, bytes] : touchedBytes_) compulsory += bytes / line;
    if (total > compulsory && total > 0) {
      double scale = compulsory / total;
      if (regionMisses) {
        for (auto& [region, misses] : *regionMisses) misses *= scale;
      }
      total = compulsory;
    }
  }
  return total;
}

trace::CachePrediction LayerConditionModel::evaluate(const MachineModel& machine) const {
  if (telemetry::enabled()) {
    telemetry::Registry::current().counter("cachemodel/evaluations").add(1);
  }
  trace::CachePrediction pred;

  std::map<uint32_t, double> countByRegion;
  double accesses = 0;
  for (const auto& g : groups_) {
    double c = g.count();
    accesses += c;
    countByRegion[g.region] += c;
  }

  std::map<uint32_t, double> l1ByRegion, llcByRegion;
  double l1 = levelMisses(machine.l1, &l1ByRegion);
  // The LLC is evaluated against the same global reference stream (the same
  // inclusive-LRU approximation the reuse-distance model documents).
  double llc = levelMisses(machine.llc, &llcByRegion);

  l1 = std::min(l1, accesses);
  llc = std::min(llc, l1);

  pred.accesses = static_cast<uint64_t>(std::llround(accesses));
  pred.l1Misses = l1;
  pred.llcMisses = llc;
  pred.l1MissRate = accesses > 0 ? std::clamp(l1 / accesses, 0.0, 1.0) : 0;
  pred.llcMissRate = l1 > 0 ? std::clamp(llc / l1, 0.0, 1.0) : 0;

  for (const auto& [region, count] : countByRegion) {
    trace::CachePrediction::Region r;
    r.accesses = static_cast<uint64_t>(std::llround(count));
    r.l1Misses = std::min(l1ByRegion[region], count);
    r.llcMisses = std::min(llcByRegion[region], r.l1Misses);
    pred.regions[region] = r;
  }
  return pred;
}

bool LayerConditionModel::usable() const {
  return stats_.dynamicRefs > 0 &&
         stats_.modeledFraction() >= options_.minModeledFraction;
}

}  // namespace skope::cachemodel
