// Analytic layer-condition cache model — the third cache model, O(1)/config.
//
// Where `simulate` executes the workload per machine and `reuse-dist` replays
// a recorded trace, this model predicts per-level hit ratios *symbolically*,
// from the loop bounds and strides of the skeleton's array references
// (Kerncraft-style layer conditions; see docs/CACHE_MODELS.md). Nothing is
// executed and no trace is recorded: evaluation cost is O(references x loop
// depth) per cache geometry, independent of the input size — which is what
// makes million-config cache-axis sweeps feasible.
//
// Construction (once per workload):
//   1. extractAccesses() pulls every array reference's loop nest and
//      symbolic per-loop strides out of the MiniC AST (src/cachemodel/access.h).
//   2. Each reference is anchored at the BET nodes of its innermost loop;
//      the BET contributes numeric trip counts, mount multiplicities, branch
//      probabilities and the context bindings that close over formals.
//   3. References sharing an anchor, array and stride chain merge into a
//      *group*; per-BET-loop one-iteration data volumes are precomputed for
//      the layer-condition tests.
//
// evaluate(machine) then walks each group's loop chain innermost-out per
// cache level: a loop whose one-iteration volume fits the level's effective
// capacity turns carried reuse into hits (misses stay at the cold-footprint
// count); one that does not multiplies the inner miss count by its trip
// count. Data-dependent (indirect) references take a randomized-base tier:
// uniform access over the array, hit probability capacity/footprint.
//
// The model is deliberately binary where real caches are gradual —
// borderline layer conditions, associativity conflicts and replacement noise
// are part of the documented error envelope (bench_cachemodel measures it
// against exact trace replay on all five workloads).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bet/bet.h"
#include "cachemodel/access.h"
#include "machine/machine.h"
#include "minic/ast.h"
#include "trace/cache_model.h"

namespace skope::cachemodel {

struct LayerConditionOptions {
  /// Effective-capacity derating: the layer-condition tests use
  /// capacityFraction x sizeBytes. 1.0 models an ideal fully-associative
  /// LRU level; lower values emulate conflict/replacement pressure.
  double capacityFraction = 1.0;
  /// usable() requires at least this fraction of the (estimated) dynamic
  /// references to be non-opaque.
  double minModeledFraction = 0.5;
};

/// Build-time classification of the workload's reference population.
struct LayerConditionStats {
  size_t affineRefs = 0;    ///< static refs, fully affine
  size_t indirectRefs = 0;  ///< static refs on the randomized-base tier
  size_t opaqueRefs = 0;    ///< static refs with unanalyzable indices
  double dynamicRefs = 0;   ///< estimated dynamic references (all groups)
  double opaqueDynamicRefs = 0;  ///< estimated dynamic refs from opaque sites
  size_t groups = 0;        ///< anchored reference groups

  [[nodiscard]] double modeledFraction() const {
    return dynamicRefs > 0 ? 1.0 - opaqueDynamicRefs / dynamicRefs : 0.0;
  }
};

/// One layer-condition model per (program, BET, parameter binding); any
/// number of threads may call evaluate() concurrently (it is pure).
class LayerConditionModel {
 public:
  LayerConditionModel(const minic::Program& prog, const bet::Bet& bet,
                      const std::map<std::string, double>& params,
                      const LayerConditionOptions& options = {});

  /// Predicts L1 / LLC hit behavior of `machine`'s hierarchy. Returns the
  /// same shape as the reuse-distance model so downstream consumers
  /// (RooflineParams substitution, reports) are shared. Thread-safe, O(1)
  /// in the input size.
  [[nodiscard]] trace::CachePrediction evaluate(const MachineModel& machine) const;

  [[nodiscard]] const LayerConditionStats& stats() const { return stats_; }

  /// True when enough of the dynamic reference stream is analyzable for the
  /// prediction to be trusted; consumers below the threshold should fall
  /// back to trace replay (the sweep engine does, with a telemetry counter).
  [[nodiscard]] bool usable() const;

 private:
  /// One numeric loop of a group's chain, outermost first.
  struct ChainLoop {
    const bet::BetNode* node = nullptr;
    double trip = 1;         ///< expected iterations
    double strideBytes = 0;  ///< |per-iteration byte stride|; 0 = invariant
    bool random = false;     ///< base re-randomized each iteration
  };

  /// References sharing (anchor, array, chain shape): the unit the
  /// per-level walk runs over.
  struct Group {
    int arrayIndex = -1;
    uint32_t region = 0;
    double arrayBytes = 0;
    std::vector<ChainLoop> chain;
    std::vector<double> offsets;  ///< distinct byte offsets, sorted
    double refsPerIter = 0;       ///< static refs x inner-branch probability
    double mult = 1;              ///< ancestor execution-probability product
    bool opaque = false;

    [[nodiscard]] double count() const {
      double c = refsPerIter * mult;
      for (const auto& l : chain) c *= std::max(l.trip, 0.0);
      return c;
    }
  };

  /// Sentinel for footprintBelow: include the whole chain (no prefix cut).
  static constexpr size_t kWholeChain = static_cast<size_t>(-1);

  void anchorAccess(const AccessPattern& ap, const bet::BetNode& node,
                    const std::vector<const bet::BetNode*>& path);
  void buildVolumes();
  /// Cold footprint (bytes) of the chain suffix strictly below position
  /// `fromChainPos` (kWholeChain = the entire chain), at canonical line size.
  [[nodiscard]] double footprintBelow(const Group& g, size_t fromChainPos) const;
  double levelMisses(const CacheLevelDesc& level,
                     std::map<uint32_t, double>* regionMisses) const;

  LayerConditionOptions options_;
  LayerConditionStats stats_;
  std::vector<Group> groups_;
  std::map<std::string, size_t> groupIndex_;  ///< construction-time dedupe
  std::vector<double> arrayBytes_;  ///< per minic global, 0 for scalars
  /// One-iteration data volume per BET loop node appearing in any chain
  /// (the layer-condition "what must fit" quantity), in bytes.
  std::map<const bet::BetNode*, double> oneIterVolume_;
  std::map<int, double> touchedBytes_;  ///< full-run footprint per array
  double workingSetBytes_ = 0;          ///< sum of touchedBytes_
  ParamEnv paramsEnv_;                  ///< workload parameter binding
};

}  // namespace skope::cachemodel
