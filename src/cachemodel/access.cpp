#include "cachemodel/access.h"

#include <algorithm>
#include <map>

namespace skope::cachemodel {

using minic::BinOp;
using minic::ExprKind;
using minic::ExprNode;
using minic::FuncDecl;
using minic::GlobalDecl;
using minic::Program;
using minic::StmtKind;
using minic::StmtNode;

namespace {

/// Symbolizes an expression over params and integer literals only — the
/// shape global array dimensions are declared in.
ExprPtr symbolizeDim(const ExprNode& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
      return constant(e.numValue);
    case ExprKind::VarRef:
      // Sema restricts dim expressions to params, but records the param index
      // in globalIndex (checkDimExpr) — accept the name unconditionally.
      return param(e.name);
    case ExprKind::Unary:
      if (e.un == minic::UnOp::Neg) {
        auto a = symbolizeDim(*e.args[0]);
        return a ? neg(a) : nullptr;
      }
      return nullptr;
    case ExprKind::Binary: {
      auto a = symbolizeDim(*e.args[0]);
      auto b = symbolizeDim(*e.args[1]);
      if (!a || !b) return nullptr;
      switch (e.bin) {
        case BinOp::Add: return add(a, b);
        case BinOp::Sub: return sub(a, b);
        case BinOp::Mul: return mul(a, b);
        case BinOp::Div: return divide(a, b);
        default: return nullptr;
      }
    }
    default:
      return nullptr;
  }
}

/// Affine decomposition of one index expression: sum over induction-variable
/// slots of coeff * var, plus a symbolic constant. A null coefficient means
/// "this loop variable appears but its coefficient is unknown" (the model
/// randomizes that loop). `randomizeBelow` is the deepest loop-stack depth
/// at which an unknown (data-dependent) base input was last assigned.
struct Lin {
  std::map<int, ExprPtr> co;  ///< induction slot -> element coefficient
  ExprPtr c0 = constant(0);   ///< symbolic constant term (null = unknown)
  int randomizeBelow = 0;
  bool opaque = false;

  [[nodiscard]] bool pureSymbolic() const {
    return co.empty() && randomizeBelow == 0 && !opaque && c0;
  }
};

class FuncExtractor {
 public:
  FuncExtractor(const Program& prog, const FuncDecl& fn, ExtractionResult& out)
      : prog_(prog), fn_(fn), out_(out) {
    for (size_t i = 0; i < fn_.params.size(); ++i) {
      tracked_[static_cast<int>(i)] = fn_.params[i].name;
    }
  }

  void run() { walkStmts(fn_.body); }

 private:
  struct LoopFrame {
    uint32_t id = 0;
    int slot = -1;       ///< induction local slot (-1 for while)
    ExprPtr start;       ///< induction start value (null = unknown)
    ExprPtr step;        ///< signed per-iteration step (null = unknown)
  };
  struct BranchFrame {
    uint32_t id = 0;
    bool thenArm = true;
    size_t loopDepth = 0;  ///< loop-stack size when the arm was entered
  };

  // ---- symbolic tracking, mirroring translate::FuncTranslator ----

  ExprPtr symbolize(const ExprNode& e) const {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
        return constant(e.numValue);
      case ExprKind::VarRef:
        if (e.paramIndex >= 0) return param(e.name);
        if (e.localSlot >= 0 && !inductionOf_.count(e.localSlot)) {
          auto it = tracked_.find(e.localSlot);
          if (it != tracked_.end()) return param(it->second);
        }
        return nullptr;
      case ExprKind::Binary: {
        auto a = symbolize(*e.args[0]);
        auto b = symbolize(*e.args[1]);
        if (!a || !b) return nullptr;
        switch (e.bin) {
          case BinOp::Add: return add(a, b);
          case BinOp::Sub: return sub(a, b);
          case BinOp::Mul: return mul(a, b);
          case BinOp::Div: return divide(a, b);
          case BinOp::Mod: return mod(a, b);
          default: return nullptr;
        }
      }
      case ExprKind::Unary:
        if (e.un == minic::UnOp::Neg) {
          auto a = symbolize(*e.args[0]);
          return a ? neg(a) : nullptr;
        }
        return nullptr;
      default:
        return nullptr;
    }
  }

  void trackAssign(int slot, const std::string& name, const ExprNode& rhs) {
    if (slot < 0 || inductionOf_.count(slot)) return;
    auto sym = symbolize(rhs);
    if (sym) {
      tracked_[slot] = name;
    } else {
      tracked_.erase(slot);
      assignDepth_[slot] = loops_.size();
    }
  }

  // ---- affine index decomposition ----

  Lin decompose(const ExprNode& e) const {
    Lin r;
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
        r.c0 = constant(e.numValue);
        return r;
      case ExprKind::VarRef: {
        if (e.paramIndex >= 0) {
          r.c0 = param(e.name);
          return r;
        }
        if (e.localSlot >= 0) {
          if (inductionOf_.count(e.localSlot)) {
            r.co[e.localSlot] = constant(1);
            return r;
          }
          auto it = tracked_.find(e.localSlot);
          if (it != tracked_.end()) {
            r.c0 = param(it->second);
            return r;
          }
          // Data-dependent local: unknown base, re-randomized by the loops
          // enclosing its last assignment.
          auto d = assignDepth_.find(e.localSlot);
          r.randomizeBelow = d != assignDepth_.end() ? static_cast<int>(d->second) : 0;
          return r;
        }
        // Global scalar used as an index: its value can change anywhere, so
        // treat it as re-randomized every iteration.
        r.randomizeBelow = static_cast<int>(loops_.size());
        return r;
      }
      case ExprKind::ArrayRef:
        // Direct indirection a[b[i]]: the value is a fresh load each time.
        r.randomizeBelow = static_cast<int>(loops_.size());
        return r;
      case ExprKind::Unary: {
        if (e.un != minic::UnOp::Neg) {
          r.opaque = true;
          return r;
        }
        Lin a = decompose(*e.args[0]);
        for (auto& [slot, c] : a.co) c = c ? neg(c) : nullptr;
        a.c0 = a.c0 ? neg(a.c0) : nullptr;
        return a;
      }
      case ExprKind::Binary: {
        Lin a = decompose(*e.args[0]);
        Lin b = decompose(*e.args[1]);
        switch (e.bin) {
          case BinOp::Add:
          case BinOp::Sub: {
            Lin out;
            out.randomizeBelow = std::max(a.randomizeBelow, b.randomizeBelow);
            out.opaque = a.opaque || b.opaque;
            out.co = std::move(a.co);
            for (auto& [slot, c] : b.co) {
              ExprPtr bc = c && e.bin == BinOp::Sub ? neg(c) : c;
              auto it = out.co.find(slot);
              if (it == out.co.end()) {
                out.co[slot] = bc;
              } else {
                it->second = (it->second && bc) ? add(it->second, bc) : nullptr;
              }
            }
            if (a.c0 && b.c0) {
              out.c0 = e.bin == BinOp::Add ? add(a.c0, b.c0) : sub(a.c0, b.c0);
            } else {
              out.c0 = nullptr;
            }
            return out;
          }
          case BinOp::Mul: {
            // One side must be free of loop variables; it scales the other.
            const Lin* varside = &a;
            const Lin* scalar = &b;
            if (!b.co.empty()) std::swap(varside, scalar);
            if (!scalar->co.empty()) {  // loop var x loop var: not affine
              Lin out;
              out.opaque = true;
              return out;
            }
            Lin out;
            out.randomizeBelow = std::max(a.randomizeBelow, b.randomizeBelow);
            out.opaque = a.opaque || b.opaque;
            bool scalarKnown = scalar->pureSymbolic();
            for (const auto& [slot, c] : varside->co) {
              out.co[slot] = (c && scalarKnown) ? mul(c, scalar->c0) : nullptr;
            }
            out.c0 = (varside->c0 && scalarKnown) ? mul(varside->c0, scalar->c0)
                                                  : nullptr;
            return out;
          }
          case BinOp::Div: {
            if (!b.co.empty() || b.randomizeBelow > 0 || b.opaque || !b.c0) {
              Lin out;
              out.opaque = true;
              return out;
            }
            // i / C is a staircase; coeff / C models its average stride,
            // which is what the footprint arithmetic needs.
            Lin out;
            out.randomizeBelow = a.randomizeBelow;
            out.opaque = a.opaque;
            for (const auto& [slot, c] : a.co) {
              out.co[slot] = c ? divide(c, b.c0) : nullptr;
            }
            out.c0 = a.c0 ? divide(a.c0, b.c0) : nullptr;
            return out;
          }
          case BinOp::Mod: {
            if (a.co.empty() && a.randomizeBelow == 0 && !a.opaque &&
                b.pureSymbolic() && a.c0) {
              Lin out;
              out.c0 = mod(a.c0, b.c0);
              return out;
            }
            Lin out;  // (i % C) wraps: not affine
            out.opaque = true;
            return out;
          }
          default: {
            Lin out;
            out.opaque = true;
            return out;
          }
        }
      }
      default: {
        r.opaque = true;
        return r;
      }
    }
  }

  // ---- reference recording ----

  void recordAccess(const ExprNode* site, int arrayIndex,
                    const std::vector<minic::ExprUP>& indices, bool isStore,
                    uint32_t /*stmtId*/) {
    (void)site;
    AccessPattern ap;
    ap.arrayIndex = arrayIndex;
    ap.isStore = isStore;
    ap.funcId = fn_.id;
    ap.region = loops_.empty() ? fn_.id : loops_.back().id;

    const GlobalDecl& decl = prog_.globals[static_cast<size_t>(arrayIndex)];
    bool dimsOk = decl.dims.size() == indices.size();

    Lin flat;
    if (dimsOk) {
      for (size_t d = 0; d < indices.size() && !flat.opaque; ++d) {
        ExprPtr stride = dimStrideElems(decl, d);
        if (!stride) {
          flat.opaque = true;
          break;
        }
        Lin ix = decompose(*indices[d]);
        flat.opaque = flat.opaque || ix.opaque;
        flat.randomizeBelow = std::max(flat.randomizeBelow, ix.randomizeBelow);
        for (const auto& [slot, c] : ix.co) {
          ExprPtr term = c ? mul(c, stride) : nullptr;
          auto it = flat.co.find(slot);
          if (it == flat.co.end()) {
            flat.co[slot] = term;
          } else {
            it->second = (it->second && term) ? add(it->second, term) : nullptr;
          }
        }
        if (flat.c0 && ix.c0) {
          flat.c0 = add(flat.c0, mul(ix.c0, stride));
        } else {
          flat.c0 = nullptr;
        }
      }
    } else {
      flat.opaque = true;
    }

    ExprPtr offset = flat.c0;
    for (const auto& frame : loops_) {
      LoopTerm term;
      term.loopId = frame.id;
      auto it = frame.slot >= 0 ? flat.co.find(frame.slot) : flat.co.end();
      if (it == flat.co.end()) {
        term.strideElems = constant(0);  // invariant under this loop
      } else if (it->second && frame.step) {
        term.strideElems = mul(it->second, frame.step);
        // Fold the start value into the constant offset so that offset
        // differences between nest-mates stay meaningful.
        offset = (offset && frame.start) ? add(offset, mul(it->second, frame.start))
                                         : nullptr;
      } else {
        term.strideElems = nullptr;  // unknown stride -> randomized tier
      }
      ap.loops.push_back(std::move(term));
    }
    ap.offsetElems = offset ? offset : constant(0);
    ap.opaque = flat.opaque;
    ap.randomDepth = ap.opaque ? static_cast<int>(ap.loops.size())
                               : std::min(flat.randomizeBelow,
                                          static_cast<int>(ap.loops.size()));

    for (const auto& bf : branches_) {
      if (bf.loopDepth == loops_.size()) ap.branchPath.emplace_back(bf.id, bf.thenArm);
    }

    if (ap.opaque) {
      ++out_.opaqueRefs;
    } else if (ap.randomDepth > 0 ||
               std::any_of(ap.loops.begin(), ap.loops.end(),
                           [](const LoopTerm& t) { return !t.strideElems; })) {
      ++out_.indirectRefs;
    } else {
      ++out_.affineRefs;
    }
    out_.accesses.push_back(std::move(ap));
  }

  /// Finds every ArrayRef load in `e` (including index sub-expressions).
  void scanLoads(const ExprNode& e) {
    if (e.kind == ExprKind::ArrayRef) {
      for (const auto& ix : e.args) scanLoads(*ix);
      if (e.arrayIndex >= 0) {
        recordAccess(&e, e.arrayIndex, e.args, /*isStore=*/false, 0);
      }
      return;
    }
    for (const auto& a : e.args) scanLoads(*a);
  }

  // ---- statement walk ----

  void walkStmts(const std::vector<minic::StmtUP>& stmts) {
    for (const auto& s : stmts) walkStmt(*s);
  }

  void walkStmt(const StmtNode& s) {
    switch (s.kind) {
      case StmtKind::Block:
        walkStmts(s.body);
        return;
      case StmtKind::VarDecl:
        if (s.rhs) {
          scanLoads(*s.rhs);
          trackAssign(s.localSlot, s.lhsName, *s.rhs);
        }
        return;
      case StmtKind::Assign:
        for (const auto& ix : s.lhsIndices) scanLoads(*ix);
        scanLoads(*s.rhs);
        if (s.arrayIndex >= 0) {
          recordAccess(nullptr, s.arrayIndex, s.lhsIndices, /*isStore=*/true, s.id);
        } else if (s.localSlot >= 0) {
          trackAssign(s.localSlot, s.lhsName, *s.rhs);
        }
        return;
      case StmtKind::ExprStmt:
        scanLoads(*s.rhs);
        return;
      case StmtKind::If: {
        scanLoads(*s.cond);
        branches_.push_back({s.id, true, loops_.size()});
        walkStmts(s.body);
        branches_.back().thenArm = false;
        walkStmts(s.elseBody);
        branches_.pop_back();
        return;
      }
      case StmtKind::For: {
        scanLoads(*s.init->rhs);
        LoopFrame frame;
        frame.id = s.id;
        frame.slot = s.init->localSlot;
        frame.start = symbolize(*s.init->rhs);
        frame.step = deriveStep(s, frame.slot);
        bool wasInduction = frame.slot >= 0 && inductionOf_.count(frame.slot) != 0;
        bool wasTracked = frame.slot >= 0 && tracked_.count(frame.slot) != 0;
        std::string trackedName = wasTracked ? tracked_[frame.slot] : "";
        if (frame.slot >= 0) {
          inductionOf_[frame.slot] = loops_.size();
          tracked_.erase(frame.slot);
        }
        loops_.push_back(std::move(frame));
        scanLoads(*s.cond);
        if (s.step && s.step->rhs) scanLoads(*s.step->rhs);
        walkStmts(s.body);
        int slot = loops_.back().slot;
        loops_.pop_back();
        if (slot >= 0 && !wasInduction) inductionOf_.erase(slot);
        if (wasTracked) tracked_[slot] = trackedName;
        return;
      }
      case StmtKind::While: {
        loops_.push_back({s.id, -1, nullptr, nullptr});
        scanLoads(*s.cond);
        walkStmts(s.body);
        loops_.pop_back();
        return;
      }
      case StmtKind::Return:
        if (s.rhs) scanLoads(*s.rhs);
        return;
      case StmtKind::Break:
      case StmtKind::Continue:
        return;
    }
  }

  /// Signed symbolic step of `for (i = ...; ...; i = i +- C)`.
  ExprPtr deriveStep(const StmtNode& s, int loopVar) const {
    if (loopVar < 0 || !s.step || !s.step->rhs) return nullptr;
    const ExprNode& step = *s.step->rhs;
    if (s.step->localSlot != loopVar || step.kind != ExprKind::Binary) return nullptr;
    if (step.bin != BinOp::Add && step.bin != BinOp::Sub) return nullptr;
    auto isVar = [&](const ExprNode& e) {
      return e.kind == ExprKind::VarRef && e.localSlot == loopVar;
    };
    ExprPtr c;
    if (isVar(*step.args[0])) {
      c = symbolize(*step.args[1]);
    } else if (isVar(*step.args[1]) && step.bin == BinOp::Add) {
      c = symbolize(*step.args[0]);
    }
    if (!c) return nullptr;
    return step.bin == BinOp::Sub ? neg(c) : c;
  }

  const Program& prog_;
  const FuncDecl& fn_;
  ExtractionResult& out_;
  std::vector<LoopFrame> loops_;
  std::vector<BranchFrame> branches_;
  std::map<int, std::string> tracked_;
  std::map<int, size_t> inductionOf_;   ///< slot -> loop-stack index
  std::map<int, size_t> assignDepth_;   ///< untracked slot -> depth of last assign
};

}  // namespace

ExprPtr dimStrideElems(const minic::GlobalDecl& decl, size_t dim) {
  ExprPtr stride = constant(1);
  for (size_t j = dim + 1; j < decl.dims.size(); ++j) {
    ExprPtr d = symbolizeDim(*decl.dims[j]);
    if (!d) return nullptr;
    stride = mul(stride, d);
  }
  return stride;
}

ExprPtr totalElems(const minic::GlobalDecl& decl) {
  ExprPtr total = constant(1);
  for (const auto& d : decl.dims) {
    ExprPtr e = symbolizeDim(*d);
    if (!e) return nullptr;
    total = mul(total, e);
  }
  return total;
}

ExtractionResult extractAccesses(const minic::Program& prog) {
  ExtractionResult out;
  for (const auto& fn : prog.funcs) {
    FuncExtractor(prog, *fn, out).run();
  }
  return out;
}

}  // namespace skope::cachemodel
