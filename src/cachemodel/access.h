// Symbolic array-access descriptors extracted from the MiniC AST.
//
// The layer-condition cache model (src/cachemodel/layercond.h) needs, for
// every array reference, the loop nest it sits in and the per-loop byte
// stride as a *symbolic expression* over workload parameters — no trace, no
// execution. This pass mirrors the skeleton translator's context tracking
// (src/translate): function formals and symbolically-assigned locals are
// usable in index expressions; loop induction variables become affine terms;
// anything data-dependent (a value loaded from another array, an untracked
// local) degrades the reference to the "randomized base" tier at the loops
// that reassign it, which the model treats as uniform access over the array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "minic/ast.h"

namespace skope::cachemodel {

/// One enclosing loop of a reference, outermost-first.
struct LoopTerm {
  uint32_t loopId = 0;    ///< AST NodeId of the For/While (a BET Loop origin)
  /// Per-iteration element stride of the flattened offset under this loop
  /// (index coefficient x loop step, symbolic over params/formals/context
  /// vars). constant(0) when the offset is invariant under the loop; null
  /// when the stride is unknown (while-loops, unknown coefficients) — the
  /// model falls back to the randomized tier for such loops.
  ExprPtr strideElems;
};

/// One static array reference (a load of an ArrayRef or a store of an array
/// Assign) with its flattened, row-major affine decomposition.
struct AccessPattern {
  int arrayIndex = -1;      ///< into minic::Program::globals
  bool isStore = false;
  uint32_t funcId = 0;      ///< owning FuncDecl id
  uint32_t region = 0;      ///< innermost loop id, or funcId outside loops —
                            ///< the VM's region attribution for this ref
  std::vector<LoopTerm> loops;  ///< enclosing AST loops, outermost first
  /// Constant element offset from the array base at the first iteration of
  /// every enclosing loop (loop starts folded in). Only offset *differences*
  /// within a loop nest are meaningful; unknown bases collapse to 0.
  ExprPtr offsetElems;
  /// Loops with chain index < randomDepth re-randomize the reference's base
  /// each iteration (an index input is reassigned data-dependently inside
  /// them). 0 = fully affine; loops.size() = random every iteration.
  int randomDepth = 0;
  /// True when an index was structurally unanalyzable (mod of a loop
  /// variable, opaque call, ...) — randomDepth is loops.size() and the
  /// reference counts against the model's coverage.
  bool opaque = false;
  /// Branch arms strictly inside the innermost loop that guard this
  /// reference: (If statement id, true = then-arm). The model multiplies in
  /// the BET's profiled arm probabilities.
  std::vector<std::pair<uint32_t, bool>> branchPath;
};

struct ExtractionResult {
  std::vector<AccessPattern> accesses;
  /// Static-reference classification (diagnostics / telemetry).
  size_t affineRefs = 0;    ///< fully affine in the enclosing induction vars
  size_t indirectRefs = 0;  ///< randomized base from a data-dependent input
  size_t opaqueRefs = 0;    ///< structurally unanalyzable index
};

/// Walks every function of `prog` and extracts all array references. The
/// program must be sema-checked (arrayIndex / localSlot / paramIndex
/// resolved). Never throws: unanalyzable references come back opaque.
ExtractionResult extractAccesses(const minic::Program& prog);

/// Row-major element "stride" of dimension `dim` of `decl` — the product of
/// the dimension extents after it (symbolic over params). Exposed for tests.
ExprPtr dimStrideElems(const minic::GlobalDecl& decl, size_t dim);

/// Total element count of `decl` (product of its extents), or null when a
/// dimension expression is not symbolizable.
ExprPtr totalElems(const minic::GlobalDecl& decl);

}  // namespace skope::cachemodel
