// Fixed-width text tables for experiment output.
#pragma once

#include <string>
#include <vector>

namespace skope::report {

/// Builds an aligned text table: set a header, append rows, render.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  void addRow(std::vector<std::string> cells);

  /// Renders with column widths fit to content, a separator under the header.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] size_t numRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skope::report
