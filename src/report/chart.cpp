#include "report/chart.h"

#include <algorithm>
#include <cmath>

#include "support/text.h"

namespace skope::report {

std::string barChart(const std::vector<BarSegments>& bars,
                     const std::vector<std::string>& segmentNames, size_t width) {
  static const char fills[] = {'#', '=', '.', '+', '~', 'o'};
  double maxTotal = 0;
  size_t labelWidth = 0;
  for (const auto& b : bars) {
    double total = 0;
    for (double s : b.segments) total += s;
    maxTotal = std::max(maxTotal, total);
    labelWidth = std::max(labelWidth, b.label.size());
  }
  std::string out;
  if (!segmentNames.empty()) {
    out += "legend:";
    for (size_t i = 0; i < segmentNames.size(); ++i) {
      out += format(" %c=%s", fills[i % sizeof(fills)], segmentNames[i].c_str());
    }
    out += "\n";
  }
  if (maxTotal <= 0) return out;
  for (const auto& b : bars) {
    out += padRight(b.label, labelWidth) + " |";
    double total = 0;
    for (size_t i = 0; i < b.segments.size(); ++i) {
      auto cols = static_cast<size_t>(std::round(b.segments[i] / maxTotal *
                                                 static_cast<double>(width)));
      out += std::string(cols, fills[i % sizeof(fills)]);
      total += b.segments[i];
    }
    out += format("  (%.3g)\n", total);
  }
  return out;
}

std::string seriesChart(const std::vector<Series>& series, size_t height) {
  size_t n = 0;
  for (const auto& s : series) n = std::max(n, s.values.size());
  if (n == 0 || series.empty()) return "(no data)\n";

  static const char marks[] = {'P', 'p', 'M', 'm', 'x', 'o'};
  std::string out;
  out += "legend:";
  for (size_t i = 0; i < series.size(); ++i) {
    out += format(" %c=%s", marks[i % sizeof(marks)], series[i].name.c_str());
  }
  out += "\n";

  // grid rows from 100% down to 0%
  for (size_t row = 0; row <= height; ++row) {
    double level = 1.0 - static_cast<double>(row) / static_cast<double>(height);
    out += format("%5.0f%% |", level * 100);
    for (size_t x = 0; x < n; ++x) {
      char cell = ' ';
      for (size_t si = 0; si < series.size(); ++si) {
        if (x >= series[si].values.size()) continue;
        double v = series[si].values[x];
        // a mark sits in this row if the value rounds to this grid level
        auto vRow = static_cast<size_t>(std::round((1.0 - v) * static_cast<double>(height)));
        if (vRow == row) cell = marks[si % sizeof(marks)];
      }
      out += cell;
      out += ' ';
    }
    out += "\n";
  }
  out += "       +";
  for (size_t x = 0; x < n; ++x) out += "--";
  out += "\n        ";
  for (size_t x = 0; x < n; ++x) out += format("%-2zu", (x + 1) % 100);
  out += " (top-k hot spots)\n";
  return out;
}

}  // namespace skope::report
