#include "report/table.h"

#include <algorithm>

#include "support/text.h"

namespace skope::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }

  auto renderRow = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < header_.size(); ++i) {
      if (i) line += "  ";
      line += padRight(i < cells.size() ? cells[i] : "", widths[i]);
    }
    // trim trailing spaces
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = renderRow(header_);
  size_t total = 0;
  for (size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

}  // namespace skope::report
