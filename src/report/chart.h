// ASCII charts for experiment output: horizontal bar charts (per-hot-spot
// breakdowns, Figs. 6-8) and multi-series step charts (coverage curves,
// Figs. 4, 10-13).
#pragma once

#include <string>
#include <vector>

namespace skope::report {

/// One horizontal bar split into labeled segments (e.g. Tc / Tm / To).
struct BarSegments {
  std::string label;
  std::vector<double> segments;
};

/// Renders stacked horizontal bars. `segmentNames` labels the legend;
/// segment k of every bar is drawn with the k-th fill character.
std::string barChart(const std::vector<BarSegments>& bars,
                     const std::vector<std::string>& segmentNames, size_t width = 60);

/// One line series over x = 1..n (values in [0, 1] render best).
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Renders several series as rows of a grid: one column per x index, one
/// printed line per series, values scaled to a 0..100% axis.
std::string seriesChart(const std::vector<Series>& series, size_t height = 16);

}  // namespace skope::report
